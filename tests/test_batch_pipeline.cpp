#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dataplane/pipeline.hpp"
#include "dataplane/sublabel.hpp"
#include "obs/metrics.hpp"
#include "te/dijkstra.hpp"
#include "sim/convergence.hpp"
#include "sim/emulation.hpp"
#include "sim/packet_score.hpp"
#include "topo/prefix.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"
#include "util/rng.hpp"

namespace dsdn::dataplane {
namespace {

using metrics::PriorityClass;

// ---- SnapshotHub: epochs, COW sharing, pinned reads ----

std::shared_ptr<RouterDataplane> blank_router(
    const topo::Topology& t, const std::vector<topo::Prefix>& prefixes,
    topo::NodeId n) {
  auto rd = std::make_shared<RouterDataplane>();
  rd->transit = build_transit_fib(t, n);
  for (topo::NodeId m = 0; m < t.num_nodes(); ++m)
    rd->ingress.set_prefix(prefixes[m], m);
  return rd;
}

struct Fig5Hub {
  topo::Topology topo = topo::make_fig5();
  std::vector<topo::Prefix> prefixes = topo::assign_router_prefixes(topo);
  SnapshotHub hub{topo, 1};

  Fig5Hub() {
    std::vector<std::shared_ptr<const RouterDataplane>> routers;
    for (topo::NodeId n = 0; n < 3; ++n)
      routers.push_back(blank_router(topo, prefixes, n));
    hub.publish_all(std::move(routers));
  }

  // Copy of router `n`'s current tables with one route installed.
  RouterDataplane with_route(topo::NodeId headend, topo::NodeId egress,
                             const te::Path& path) {
    RouterDataplane rd = hub.acquire(0)->at(headend);
    EncapEntry entry;
    entry.routes.push_back({encode_strict_route(path), 1.0});
    rd.ingress.set_routes(egress, PriorityClass::kHigh, entry);
    return rd;
  }

  PacketSpec spec_to(topo::NodeId dst, std::uint64_t entropy = 1) {
    PacketSpec s;
    s.dst_ip = topo::host_in(prefixes[dst]);
    s.entropy = entropy;
    s.ingress = 0;
    return s;
  }
};

TEST(SnapshotHub, PublishRouterBumpsEpochAndSharesUnchangedRouters) {
  Fig5Hub f;
  const auto before = f.hub.acquire(0);
  te::Path direct;
  direct.links = {f.topo.find_link(0, 1)};
  const std::uint64_t e = f.hub.publish_router(0, f.with_route(0, 1, direct));
  const auto after = f.hub.acquire(0);
  EXPECT_EQ(after->epoch, e);
  EXPECT_GT(after->epoch, before->epoch);
  // Copy-on-write: only router 0 was replaced.
  EXPECT_NE(after->routers[0].get(), before->routers[0].get());
  EXPECT_EQ(after->routers[1].get(), before->routers[1].get());
  EXPECT_EQ(after->routers[2].get(), before->routers[2].get());
}

TEST(SnapshotHub, AcquiredSnapshotIsUnaffectedByLaterPublishes) {
  Fig5Hub f;
  const auto pinned = f.hub.acquire(0);
  const std::uint64_t pinned_epoch = pinned->epoch;
  te::Path direct;
  direct.links = {f.topo.find_link(0, 1)};
  f.hub.publish_router(0, f.with_route(0, 1, direct));
  f.hub.publish_link_state(f.topo);
  // The pinned snapshot still reads the old tables and old epoch.
  EXPECT_EQ(pinned->epoch, pinned_epoch);
  EXPECT_FALSE(pinned->at(0).ingress.lookup_stack(
      topo::host_in(f.prefixes[1]), PriorityClass::kHigh, 1));
  EXPECT_TRUE(f.hub.acquire(0)->at(0).ingress.lookup_stack(
      topo::host_in(f.prefixes[1]), PriorityClass::kHigh, 1));
}

TEST(SnapshotHub, PublishLinkStateCapturesTopologyFlags) {
  Fig5Hub f;
  const topo::LinkId l = f.topo.find_link(0, 1);
  EXPECT_TRUE(f.hub.acquire(0)->up(l));
  f.topo.set_duplex_up(l, false);
  f.hub.publish_link_state(f.topo);
  const auto snap = f.hub.acquire(0);
  EXPECT_FALSE(snap->up(l));
  // Tables are shared with the previous epoch (COW at link granularity).
  EXPECT_EQ(snap->routers[0].get(), f.hub.acquire(0)->routers[0].get());
}

TEST(SnapshotHub, PerCoreSlotsSeeEveryPublish) {
  const auto topo = topo::make_fig5();
  SnapshotHub hub(topo, 4);
  EXPECT_EQ(hub.num_cores(), 4u);
  const std::uint64_t e = hub.publish_link_state(topo);
  for (std::size_t c = 0; c < 4; ++c)
    EXPECT_EQ(hub.acquire(c)->epoch, e);
}

// ---- Pipeline basics on the Fig 5 fabric ----

TEST(BatchPipeline, DeliversAlongStrictRoute) {
  Fig5Hub f;
  te::Path via;
  via.links = {f.topo.find_link(0, 2), f.topo.find_link(2, 1)};
  f.hub.publish_router(0, f.with_route(0, 1, via));

  PipelineOptions po;
  po.record_traces = true;
  BatchPipeline pipe(f.topo, &f.hub, po);
  const std::vector<PacketSpec> specs{f.spec_to(1)};
  const auto v = pipe.process(specs);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(v[0].final_node, 1u);
  EXPECT_EQ(v[0].hops, 2u);
  EXPECT_EQ(pipe.traces()[0], (std::vector<topo::NodeId>{0, 2, 1}));
  EXPECT_EQ(pipe.stats().last_epoch, f.hub.epoch());
}

TEST(BatchPipeline, CutMidPathTakesSnapshotBypass) {
  // The satellite-3 scenario: a transit link dies after the headend
  // pushed its stack. The dataplane-local port-down flag (link state in
  // the snapshot) fires before any control-plane reprogram, and the
  // router's own BypassFib repairs around the dead link.
  Fig5Hub f;
  const topo::LinkId cut = f.topo.find_link(0, 1);
  te::Path direct;
  direct.links = {cut};
  RouterDataplane r0 = f.with_route(0, 1, direct);
  te::Path via;
  via.links = {f.topo.find_link(0, 2), f.topo.find_link(2, 1)};
  r0.bypass.set_bypasses(cut, {{encode_strict_route(via), 1.0}});
  f.hub.publish_router(0, r0);

  f.topo.set_duplex_up(cut, false);
  f.hub.publish_link_state(f.topo);

  PipelineOptions po;
  po.record_traces = true;
  BatchPipeline pipe(f.topo, &f.hub, po);
  const auto v = pipe.process(std::vector<PacketSpec>{f.spec_to(1)});
  EXPECT_EQ(v[0].outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(v[0].frr_activations, 1u);
  EXPECT_EQ(pipe.traces()[0], (std::vector<topo::NodeId>{0, 2, 1}));
}

TEST(BatchPipeline, DownLinkWithoutBypassDropsAndCounts) {
  Fig5Hub f;
  const topo::LinkId cut = f.topo.find_link(0, 1);
  te::Path direct;
  direct.links = {cut};
  f.hub.publish_router(0, f.with_route(0, 1, direct));
  f.topo.set_duplex_up(cut, false);
  f.hub.publish_link_state(f.topo);

  auto& counter = obs::Registry::global().counter("dataplane.down_link_drops");
  const std::uint64_t before = counter.value();
  BatchPipeline pipe(f.topo, &f.hub, {});
  const auto v = pipe.process(std::vector<PacketSpec>{f.spec_to(1)});
  EXPECT_EQ(v[0].outcome, ForwardOutcome::kDroppedLinkDownNoBypass);
  EXPECT_EQ(counter.value(), before + 1);
  EXPECT_EQ(pipe.stats().by_outcome[static_cast<std::size_t>(
                ForwardOutcome::kDroppedLinkDownNoBypass)],
            1u);
}

TEST(BatchPipeline, StatsAccountEveryPacketOnce) {
  Fig5Hub f;
  te::Path via;
  via.links = {f.topo.find_link(0, 2), f.topo.find_link(2, 1)};
  f.hub.publish_router(0, f.with_route(0, 1, via));
  BatchPipeline pipe(f.topo, &f.hub, {});
  std::vector<PacketSpec> specs;
  for (std::uint64_t e = 0; e < 100; ++e) specs.push_back(f.spec_to(1, e));
  specs.push_back(f.spec_to(0));  // local delivery
  PacketSpec unroutable = f.spec_to(1);
  unroutable.dst_ip = topo::parse_ipv4("192.168.1.1");
  specs.push_back(unroutable);
  pipe.process(specs);

  const PipelineStats s = pipe.stats();
  EXPECT_EQ(s.packets, specs.size());
  EXPECT_EQ(s.delivered, 101u);
  EXPECT_EQ(s.dropped, 1u);
  EXPECT_EQ(s.batches, (specs.size() + kBatchSize - 1) / kBatchSize);
  std::uint64_t by_outcome_sum = 0;
  for (const std::uint64_t c : s.by_outcome) by_outcome_sum += c;
  EXPECT_EQ(by_outcome_sum, s.packets);
}

// ---- Slow path: stacks deeper than the inline array ----

TEST(BatchPipeline, DeepStackTakesSlowPathWithIdenticalVerdict) {
  // A 69-label strict route (line of 70 nodes) overflows kInlineLabels;
  // the packet must rerun on the scalar slow path and still match the
  // scalar Forwarder bit for bit.
  const auto topo = topo::make_line(70);
  const auto prefixes = topo::assign_router_prefixes(topo);
  SnapshotHub hub(topo, 1);
  std::vector<std::shared_ptr<const RouterDataplane>> routers;
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n)
    routers.push_back(blank_router(topo, prefixes, n));
  te::Path path;
  for (topo::NodeId i = 0; i + 1 < 70; ++i)
    path.links.push_back(topo.find_link(i, i + 1));
  ASSERT_GT(path.hops(), kInlineLabels);
  auto r0 = std::make_shared<RouterDataplane>(*routers[0]);
  EncapEntry entry;
  entry.routes.push_back(
      {encode_strict_route(path, /*enforce_depth=*/false), 1.0});
  r0->ingress.set_routes(69, PriorityClass::kHigh, entry);
  routers[0] = r0;
  hub.publish_all(std::move(routers));

  PacketSpec spec;
  spec.dst_ip = topo::host_in(prefixes[69]);
  spec.ttl = 300;
  spec.ingress = 0;
  PipelineOptions po;
  po.record_traces = true;
  BatchPipeline pipe(topo, &hub, po);
  const auto v = pipe.process(std::vector<PacketSpec>{spec});
  EXPECT_EQ(v[0].outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(v[0].final_node, 69u);
  EXPECT_EQ(v[0].hops, 69u);
  EXPECT_EQ(pipe.stats().slow_path_packets, 1u);

  const SnapshotView view(hub.acquire(0));
  const Forwarder fwd(topo, &view);
  Packet pkt;
  pkt.dst_ip = spec.dst_ip;
  pkt.ttl = spec.ttl;
  pkt.entropy = spec.entropy;
  const ForwardResult r = fwd.forward(pkt, 0);
  EXPECT_EQ(r.outcome, v[0].outcome);
  EXPECT_EQ(r.final_node, v[0].final_node);
  EXPECT_EQ(r.hops, v[0].hops);
  EXPECT_EQ(r.latency_s, v[0].latency_s);
  EXPECT_EQ(r.trace, pipe.traces()[0]);
}

// ---- Differential: batched pipeline vs scalar forwarder ----

// Rate-weighted random packets, the sampling the bench and packet_score
// use.
std::vector<PacketSpec> random_specs(const sim::DsdnEmulation& emu,
                                     std::size_t n, std::uint64_t seed) {
  const auto& demands = emu.demands().demands();
  std::vector<double> weights;
  for (const auto& d : demands)
    weights.push_back(d.src != d.dst && d.rate_gbps > 0 ? d.rate_gbps : 0.0);
  const int ttl = static_cast<int>(4 * emu.network().num_nodes() + 16);
  util::Rng rng(util::splitmix64(seed));
  std::vector<PacketSpec> specs;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& d = demands[rng.weighted_pick(weights)];
    PacketSpec s;
    s.dst_ip = emu.address_of(d.dst);
    s.priority = d.priority;
    s.entropy = rng.engine()();
    s.ttl = ttl;
    s.ingress = d.src;
    specs.push_back(s);
  }
  return specs;
}

// Asserts bit-for-bit parity between the batched pipeline and the scalar
// Forwarder run over the same pinned snapshot.
void expect_parity(const sim::DsdnEmulation& emu,
                   std::span<const PacketSpec> specs, const char* what) {
  PipelineOptions po;
  po.record_traces = true;
  BatchPipeline pipe(emu.network(), emu.fib_hub(), po);
  const auto verdicts = pipe.process(specs);

  const SnapshotView view(emu.fib_hub()->acquire(0));
  const Forwarder fwd(emu.network(), &view);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Packet pkt;
    pkt.dst_ip = specs[i].dst_ip;
    pkt.priority = specs[i].priority;
    pkt.entropy = specs[i].entropy;
    pkt.ttl = specs[i].ttl;
    const ForwardResult r = fwd.forward(pkt, specs[i].ingress);
    ASSERT_EQ(r.outcome, verdicts[i].outcome) << what << " packet " << i;
    ASSERT_EQ(r.final_node, verdicts[i].final_node) << what << " packet " << i;
    ASSERT_EQ(r.hops, verdicts[i].hops) << what << " packet " << i;
    ASSERT_EQ(r.frr_activations, verdicts[i].frr_activations)
        << what << " packet " << i;
    ASSERT_EQ(r.latency_s, verdicts[i].latency_s) << what << " packet " << i;
    ASSERT_EQ(r.trace, pipe.traces()[i]) << what << " packet " << i;
  }
}

TEST(BatchPipeline, DifferentialAgainstScalarAcrossSeedsAndChurn) {
  // The parity contract of pipeline.hpp, enforced over randomized Abilene
  // traffic: 24 seeds on the converged network, then more across a fiber
  // cut (stale-route FRR era and reconverged era) and its repair.
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 1.0;
  gp.target_max_utilization = 0.5;
  sim::DsdnEmulation emu(topo, traffic::generate_gravity(topo, gp));
  emu.enable_fib_snapshots(1);
  emu.bootstrap();

  for (std::uint64_t seed = 1; seed <= 24; ++seed)
    expect_parity(emu, random_specs(emu, 48, seed), "converged");

  const auto fibers = sim::pick_failure_fibers(emu.network(), 2, 77);
  ASSERT_FALSE(fibers.empty());
  emu.fail_fiber(fibers[0]);
  for (std::uint64_t seed = 30; seed <= 35; ++seed)
    expect_parity(emu, random_specs(emu, 48, seed), "after cut");
  emu.repair_fiber(fibers[0]);
  for (std::uint64_t seed = 40; seed <= 45; ++seed)
    expect_parity(emu, random_specs(emu, 48, seed), "after repair");
}

TEST(BatchPipeline, DifferentialOnB4AtScale) {
  // One pass at B4 scale: same fabric and sampling as bench_dataplane_pps.
  const auto topo = topo::make_b4_like();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.1;
  gp.seed = 0xB4;
  sim::DsdnEmulation emu(topo, traffic::generate_gravity(topo, gp).aggregated());
  emu.enable_fib_snapshots(1);
  emu.bootstrap();
  for (std::uint64_t seed = 1; seed <= 4; ++seed)
    expect_parity(emu, random_specs(emu, 64, seed), "b4");
}

TEST(BatchPipeline, DifferentialOnSegmentRoutingFleet) {
  // Same parity contract, but the fleet runs segment routing: headends
  // push 1-3 node-segment labels and every hop re-picks among the
  // snapshot's up ECMP members. Scalar forwarder and batched pipeline
  // (fast path and slow path) must agree bit for bit, across a cut
  // (where SR's re-pick-on-down local repair kicks in) and its repair.
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 1.0;
  gp.target_max_utilization = 0.5;
  sim::EmulationConfig cfg;
  cfg.algorithms.assign(topo.num_nodes(),
                        core::PathingAlgorithm::kSegmentRouting);
  sim::DsdnEmulation emu(topo, traffic::generate_gravity(topo, gp), cfg);
  emu.enable_fib_snapshots(1);
  emu.bootstrap();

  // The fleet really forwards on segment stacks.
  std::size_t sr_stacks = 0;
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_GT(emu.at(n).sr.num_targets(), 0u);
    for (const auto& [key, entry] : emu.at(n).ingress.encap_table()) {
      for (const auto& route : entry.routes) {
        if (!route.stack.empty() &&
            is_node_segment_label(route.stack.labels()[0])) {
          ++sr_stacks;
        }
      }
    }
  }
  EXPECT_GT(sr_stacks, 0u);

  for (std::uint64_t seed = 1; seed <= 12; ++seed)
    expect_parity(emu, random_specs(emu, 48, seed), "sr converged");

  const auto fibers = sim::pick_failure_fibers(emu.network(), 2, 19);
  ASSERT_FALSE(fibers.empty());
  emu.fail_fiber(fibers[0]);
  for (std::uint64_t seed = 20; seed <= 25; ++seed)
    expect_parity(emu, random_specs(emu, 48, seed), "sr after cut");
  emu.repair_fiber(fibers[0]);
  for (std::uint64_t seed = 30; seed <= 35; ++seed)
    expect_parity(emu, random_specs(emu, 48, seed), "sr after repair");
}

TEST(BatchPipeline, SrRepickOnStaleSnapshotMatchesScalar) {
  // The transient era the swarm's packet scoring exercises: link state is
  // republished (port-down detection) before any controller reprograms,
  // so SR entries still list the dead member and the dataplane must skip
  // it. Parity must hold on exactly that stale snapshot.
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 1.0;
  gp.target_max_utilization = 0.5;
  sim::EmulationConfig cfg;
  cfg.algorithms.assign(topo.num_nodes(),
                        core::PathingAlgorithm::kSegmentRouting);
  sim::DsdnEmulation emu(topo, traffic::generate_gravity(topo, gp), cfg);
  emu.enable_fib_snapshots(1);
  emu.bootstrap();

  // Freeze the converged SR tables, then kill a link only in the
  // *snapshot's* link state: acquire() sees stale members + fresh flags.
  auto topo_down = emu.network();
  const auto fibers = sim::pick_failure_fibers(topo_down, 1, 7);
  ASSERT_FALSE(fibers.empty());
  topo_down.set_duplex_up(fibers[0], false);
  emu.fib_hub()->publish_link_state(topo_down);

  PipelineOptions po;
  po.record_traces = true;
  BatchPipeline pipe(topo_down, emu.fib_hub(), po);
  const auto specs = random_specs(emu, 256, 0xA11CE);
  const auto verdicts = pipe.process(specs);
  const SnapshotView view(emu.fib_hub()->acquire(0));
  const Forwarder fwd(topo_down, &view);
  for (std::size_t i = 0; i < specs.size(); ++i) {
    Packet pkt;
    pkt.dst_ip = specs[i].dst_ip;
    pkt.priority = specs[i].priority;
    pkt.entropy = specs[i].entropy;
    pkt.ttl = specs[i].ttl;
    const ForwardResult r = fwd.forward(pkt, specs[i].ingress);
    ASSERT_EQ(r.outcome, verdicts[i].outcome) << "packet " << i;
    ASSERT_EQ(r.hops, verdicts[i].hops) << "packet " << i;
    ASSERT_EQ(r.trace, pipe.traces()[i]) << "packet " << i;
    // Stale SR walks may dead-end but must never cycle.
    ASSERT_NE(r.outcome, ForwardOutcome::kDroppedLoop) << "packet " << i;
  }
}

// ---- Sublabel batching: scalar walk vs batched rounds (Appendix A) ----

struct SublabelFabric {
  topo::Topology topo;
  SublabelAssignment assignment;
  std::vector<SublabelFib> fibs;

  explicit SublabelFabric(topo::Topology t) : topo(std::move(t)) {
    assignment = assign_sublabels(topo);
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n)
      fibs.push_back(SublabelFib::build(topo, n, assignment));
  }

  void rebuild_fibs() {
    fibs.clear();
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n)
      fibs.push_back(SublabelFib::build(topo, n, assignment));
  }
};

// Bit-for-bit: batched process_sublabel vs the scalar forward_sublabel.
void expect_sublabel_parity(const SublabelFabric& f,
                            std::span<const SublabelSpec> specs,
                            const char* what) {
  SnapshotHub hub(f.topo, 1);
  BatchPipeline pipe(f.topo, &hub, {});
  std::vector<SublabelForwardResult> batched;
  pipe.process_sublabel(specs, f.fibs, batched);
  ASSERT_EQ(batched.size(), specs.size());
  std::size_t delivered = 0;
  for (std::size_t i = 0; i < specs.size(); ++i) {
    const SublabelForwardResult r =
        forward_sublabel(f.topo, f.fibs, specs[i].start, specs[i].stack);
    ASSERT_EQ(r.delivered, batched[i].delivered) << what << " packet " << i;
    ASSERT_EQ(r.final_node, batched[i].final_node) << what << " packet " << i;
    ASSERT_EQ(r.hops, batched[i].hops) << what << " packet " << i;
    ASSERT_EQ(r.trace, batched[i].trace) << what << " packet " << i;
    delivered += r.delivered ? 1 : 0;
  }
  const PipelineStats s = pipe.stats();
  EXPECT_EQ(s.sublabel_packets, specs.size());
  EXPECT_EQ(s.sublabel_delivered, delivered);
}

std::vector<SublabelSpec> random_sublabel_specs(const SublabelFabric& f,
                                                std::size_t n,
                                                std::uint64_t seed) {
  util::Rng rng(util::splitmix64(seed));
  std::vector<SublabelSpec> specs;
  while (specs.size() < n) {
    const auto src =
        static_cast<topo::NodeId>(rng.uniform_int(0, f.topo.num_nodes() - 1));
    const auto dst =
        static_cast<topo::NodeId>(rng.uniform_int(0, f.topo.num_nodes() - 1));
    if (src == dst) continue;
    const auto path = te::shortest_path(f.topo, src, dst);
    if (!path) continue;
    SublabelSpec s;
    s.start = src;
    s.stack = encode_sublabel_route(*path, f.assignment);
    // A third of the packets get one label corrupted: both walks must
    // reach the identical miss/drop verdict.
    if (rng.uniform_int(0, 2) == 0 && s.stack.depth() > 0) {
      std::vector<Label> labels = s.stack.labels();
      const auto idx = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(labels.size()) - 1));
      labels[idx] ^= static_cast<Label>(rng.uniform_int(1, kMaxLabelValue));
      labels[idx] &= kMaxLabelValue;
      s.stack = LabelStack(std::move(labels));
    }
    specs.push_back(std::move(s));
  }
  return specs;
}

TEST(BatchPipeline, SublabelDifferentialAgainstScalarWalk) {
  SublabelFabric f(topo::make_abilene());
  for (std::uint64_t seed = 1; seed <= 8; ++seed)
    expect_sublabel_parity(f, random_sublabel_specs(f, 64, seed), "abilene");

  // A dead link mid-path: the batched walk must stop exactly where the
  // scalar walk does (liveness reads the live topology, not a snapshot --
  // sublabel tables are static).
  f.topo.set_duplex_up(f.topo.find_link(0, 1), false);
  for (std::uint64_t seed = 11; seed <= 14; ++seed)
    expect_sublabel_parity(f, random_sublabel_specs(f, 64, seed),
                           "abilene cut");
}

TEST(BatchPipeline, SublabelDeepStackFallsBackToScalarSlowPath) {
  // A 139-hop line path compresses to 70 sublabel-pair labels -- past the
  // 64-label inline array -- so the batch must route it through the
  // scalar fallback and still match forward_sublabel bit for bit.
  SublabelFabric f(topo::make_line(140));
  te::Path path;
  for (topo::NodeId i = 0; i + 1 < 140; ++i)
    path.links.push_back(f.topo.find_link(i, i + 1));
  SublabelSpec deep;
  deep.start = 0;
  deep.stack = encode_sublabel_route(path, f.assignment);
  ASSERT_GT(deep.stack.depth(), kInlineLabels);

  SnapshotHub hub(f.topo, 1);
  BatchPipeline pipe(f.topo, &hub, {});
  std::vector<SublabelForwardResult> out;
  pipe.process_sublabel(std::vector<SublabelSpec>{deep}, f.fibs, out);
  ASSERT_EQ(out.size(), 1u);
  const SublabelForwardResult r =
      forward_sublabel(f.topo, f.fibs, deep.start, deep.stack);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(out[0].delivered, r.delivered);
  EXPECT_EQ(out[0].final_node, r.final_node);
  EXPECT_EQ(out[0].hops, r.hops);
  EXPECT_EQ(out[0].trace, r.trace);
  EXPECT_EQ(pipe.stats().slow_path_packets, 1u);
  EXPECT_EQ(pipe.stats().sublabel_packets, 1u);
  EXPECT_EQ(pipe.stats().sublabel_delivered, 1u);
}

// ---- Reprogram during forward: the TSan stress ----

TEST(BatchPipeline, ReprogramDuringForwardNeverTearsABatch) {
  // A publisher flips router 0 between two valid programs (direct route
  // vs via-R2 route) while two forwarding cores drain batches. Every
  // packet must deliver -- a torn epoch would surface as an unknown
  // label or a not-local drop -- and epochs must advance monotonically.
  // Runs under TSan in tier-1 (scripts/tier1.sh).
  Fig5Hub f;
  te::Path direct;
  direct.links = {f.topo.find_link(0, 1)};
  te::Path via;
  via.links = {f.topo.find_link(0, 2), f.topo.find_link(2, 1)};
  const RouterDataplane prog_a = f.with_route(0, 1, direct);
  const RouterDataplane prog_b = f.with_route(0, 1, via);

  SnapshotHub hub(f.topo, 2);
  {
    std::vector<std::shared_ptr<const RouterDataplane>> routers;
    for (topo::NodeId n = 0; n < 3; ++n)
      routers.push_back(blank_router(f.topo, f.prefixes, n));
    hub.publish_all(std::move(routers));
  }
  hub.publish_router(0, prog_a);
  const std::uint64_t epoch0 = hub.epoch();

  std::vector<PacketSpec> pool;
  for (std::uint64_t e = 0; e < 256; ++e) pool.push_back(f.spec_to(1, e));

  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> bad{0};
  std::vector<std::unique_ptr<BatchPipeline>> pipes;
  for (std::size_t c = 0; c < 2; ++c) {
    PipelineOptions po;
    po.core = c;
    pipes.push_back(std::make_unique<BatchPipeline>(f.topo, &hub, po));
  }
  // Publisher keeps flipping programs until every forwarding core has
  // finished its rounds (fixed round count so the test is meaningful on
  // a single-CPU machine too).
  std::uint64_t publishes = 0;
  std::thread publisher([&] {
    while (!done.load(std::memory_order_relaxed)) {
      hub.publish_router(0, (publishes & 1) ? prog_b : prog_a);
      ++publishes;
    }
  });
  std::vector<std::thread> cores;
  for (std::size_t c = 0; c < 2; ++c) {
    cores.emplace_back([&, c] {
      std::vector<PacketVerdict> out;
      for (int round = 0; round < 100; ++round) {
        pipes[c]->process(pool, out);
        for (const PacketVerdict& v : out)
          if (v.outcome != ForwardOutcome::kDelivered)
            bad.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : cores) t.join();
  done.store(true, std::memory_order_relaxed);
  publisher.join();

  EXPECT_EQ(bad.load(), 0u);
  EXPECT_GT(publishes, 0u);
  EXPECT_EQ(hub.epoch(), epoch0 + publishes);
  for (const auto& p : pipes) {
    const PipelineStats s = p->stats();
    EXPECT_EQ(s.packets, 100u * pool.size());
    EXPECT_EQ(s.delivered, s.packets);
    EXPECT_GE(s.last_epoch, epoch0);
  }
}

}  // namespace
}  // namespace dsdn::dataplane

namespace dsdn::sim {
namespace {

TEST(PacketScore, CleanAfterBootstrapAndChurn) {
  // Packet-level cross-check of the structural invariants (and of
  // flow_eval's structural loss scoring): at every quiescent point, all
  // sampled packets either deliver or legitimately lack an ingress
  // route; loops, unknown labels and dead-link walks are violations.
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 1.0;
  gp.target_max_utilization = 0.5;
  DsdnEmulation emu(topo, traffic::generate_gravity(topo, gp));
  emu.enable_fib_snapshots(1);
  emu.bootstrap();

  PacketScoreOptions options;
  options.packets = 512;
  const PacketScoreReport clean = score_packets(emu, options);
  EXPECT_TRUE(clean.ok()) << (clean.violations.empty()
                                  ? ""
                                  : clean.violations.front());
  EXPECT_EQ(clean.packets, 512u);
  EXPECT_GT(clean.delivered, 0u);

  const auto fibers = pick_failure_fibers(emu.network(), 1, 5);
  ASSERT_FALSE(fibers.empty());
  emu.fail_fiber(fibers[0]);
  EXPECT_TRUE(score_packets(emu, options).ok());
  emu.repair_fiber(fibers[0]);
  const PacketScoreReport repaired = score_packets(emu, options);
  EXPECT_TRUE(repaired.ok());
  // Deterministic: same emulation state + options, same report.
  EXPECT_EQ(score_packets(emu, options).delivered, repaired.delivered);
}

TEST(PacketScore, RequiresSnapshotHub) {
  const auto topo = topo::make_fig5();
  traffic::GravityParams gp;
  gp.pair_fraction = 1.0;
  DsdnEmulation emu(topo, traffic::generate_gravity(topo, gp));
  emu.bootstrap();
  EXPECT_THROW(score_packets(emu), std::invalid_argument);
}

}  // namespace
}  // namespace dsdn::sim
