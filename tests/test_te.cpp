#include <gtest/gtest.h>

#include "te/dijkstra.hpp"
#include "te/ksp.hpp"
#include "te/parallel_solver.hpp"
#include "te/path_cache.hpp"
#include "te/solver.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::te {
namespace {

using metrics::PriorityClass;

topo::Topology diamond() {
  // a -> {b, c} -> d, with the b branch cheaper.
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, 10, 1.0);
  t.add_duplex(b, d, 10, 1.0);
  t.add_duplex(a, c, 10, 2.0);
  t.add_duplex(c, d, 10, 2.0);
  return t;
}

TEST(Dijkstra, FindsCheapestPath) {
  const auto t = diamond();
  const auto p = shortest_path(t, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_sequence(t), (std::vector<topo::NodeId>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(p->igp_cost(t), 2.0);
}

TEST(Dijkstra, RespectsDownLinks) {
  auto t = diamond();
  t.set_duplex_up(t.find_link(0, 1), false);
  const auto p = shortest_path(t, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_sequence(t), (std::vector<topo::NodeId>{0, 2, 3}));
}

TEST(Dijkstra, ReturnsNulloptWhenDisconnected) {
  auto t = diamond();
  t.set_duplex_up(t.find_link(0, 1), false);
  t.set_duplex_up(t.find_link(0, 2), false);
  EXPECT_FALSE(shortest_path(t, 0, 3).has_value());
}

TEST(Dijkstra, CapacityConstraintDivertsPath) {
  const auto t = diamond();
  std::vector<double> residual(t.num_links(), 100.0);
  residual[t.find_link(0, 1)] = 0.5;  // cheap branch has no room
  SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = 1.0;
  const auto p = shortest_path(t, 0, 3, c);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_sequence(t), (std::vector<topo::NodeId>{0, 2, 3}));
}

TEST(Dijkstra, LinkAllowedMaskExcludes) {
  const auto t = diamond();
  std::vector<char> allowed(t.num_links(), 1);
  allowed[t.find_link(0, 1)] = 0;
  SpConstraints c;
  c.link_allowed = &allowed;
  const auto p = shortest_path(t, 0, 3, c);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_sequence(t).at(1), 2u);
}

TEST(Dijkstra, RejectsSrcEqualsDst) {
  const auto t = diamond();
  EXPECT_THROW(shortest_path(t, 0, 0), std::invalid_argument);
}

TEST(Dijkstra, TreeMatchesPointQueries) {
  const auto t = topo::make_abilene();
  const auto tree = shortest_path_tree(t, 0);
  for (topo::NodeId d = 1; d < t.num_nodes(); ++d) {
    const auto p = shortest_path(t, 0, d);
    ASSERT_TRUE(p.has_value());
    EXPECT_DOUBLE_EQ(tree[d].igp_cost(t), p->igp_cost(t)) << "dst " << d;
  }
}

TEST(Dijkstra, MinLatencyDiffersFromMinCost) {
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  t.add_duplex(a, b, 10, /*igp=*/1.0, /*delay=*/0.050);  // cheap but slow
  t.add_duplex(a, c, 10, 5.0, 0.001);
  t.add_duplex(c, b, 10, 5.0, 0.001);
  EXPECT_EQ(shortest_path(t, a, b)->hops(), 1u);
  EXPECT_EQ(min_latency_path(t, a, b)->hops(), 2u);
}

TEST(PathValidity, DetectsLoopsAndBreaks) {
  const auto t = diamond();
  Path good;
  good.links = {t.find_link(0, 1), t.find_link(1, 3)};
  EXPECT_TRUE(good.is_valid(t));
  Path broken;
  broken.links = {t.find_link(0, 1), t.find_link(2, 3)};  // discontinuous
  EXPECT_FALSE(broken.is_valid(t));
  Path looped;
  looped.links = {t.find_link(0, 1), t.find_link(1, 0)};  // returns to 0
  EXPECT_FALSE(looped.is_valid(t));
}

TEST(Ksp, ReturnsOrderedLooplessPaths) {
  const auto t = diamond();
  const auto paths = k_shortest_paths(t, 0, 3, 5);
  ASSERT_EQ(paths.size(), 2u);  // only two loopless routes exist
  EXPECT_LE(paths[0].igp_cost(t), paths[1].igp_cost(t));
  for (const auto& p : paths) EXPECT_TRUE(p.is_valid(t));
  EXPECT_NE(paths[0], paths[1]);
}

TEST(Ksp, RingHasExactlyTwoPaths) {
  const auto t = topo::make_ring(6);
  const auto paths = k_shortest_paths(t, 0, 3, 10);
  ASSERT_EQ(paths.size(), 2u);
  EXPECT_EQ(paths[0].hops() + paths[1].hops(), 6u);
}

TEST(Ksp, KZeroAndDisconnected) {
  const auto t = diamond();
  EXPECT_TRUE(k_shortest_paths(t, 0, 3, 0).empty());
  auto broken = t;
  broken.set_duplex_up(broken.find_link(0, 1), false);
  broken.set_duplex_up(broken.find_link(0, 2), false);
  EXPECT_TRUE(k_shortest_paths(broken, 0, 3, 4).empty());
}

TEST(Ksp, ProducesDistinctPathsOnRealTopology) {
  const auto t = topo::make_geant();
  const auto paths = k_shortest_paths(t, 0, 15, 8);
  EXPECT_GE(paths.size(), 3u);
  for (std::size_t i = 0; i < paths.size(); ++i) {
    EXPECT_TRUE(paths[i].is_valid(t));
    for (std::size_t j = i + 1; j < paths.size(); ++j) {
      EXPECT_NE(paths[i], paths[j]);
    }
    if (i > 0) {
      EXPECT_GE(paths[i].igp_cost(t), paths[i - 1].igp_cost(t));
    }
  }
}

TEST(PathCache, HitsWhenFeasibleMissesWhenNot) {
  const auto t = diamond();
  PathCache cache(t);
  std::vector<double> residual(t.num_links(), 100.0);
  SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = 1.0;

  const auto p1 = cache.get(t, 0, 3, c);
  ASSERT_TRUE(p1.has_value());
  EXPECT_EQ(cache.hits(), 1u);

  residual[t.find_link(0, 1)] = 0.0;  // cached path now infeasible
  const auto p2 = cache.get(t, 0, 3, c);
  ASSERT_TRUE(p2.has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(p2->node_sequence(t).at(1), 2u);
}

TEST(PathCache, SurvivesLinkLossAndRestoration) {
  // The cache needs no rebuild across full loss and restoration (§5.3).
  auto t = diamond();
  PathCache cache(t);
  SpConstraints c;
  const topo::LinkId fiber = t.find_link(0, 1);
  t.set_duplex_up(fiber, false);
  const auto down = cache.get(t, 0, 3, c);
  ASSERT_TRUE(down.has_value());
  EXPECT_EQ(down->node_sequence(t).at(1), 2u);
  t.set_duplex_up(fiber, true);
  cache.reset_counters();
  const auto up = cache.get(t, 0, 3, c);
  ASSERT_TRUE(up.has_value());
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(up->node_sequence(t).at(1), 1u);
}

// ---- Solver ----

traffic::TrafficMatrix single_demand(double rate) {
  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, rate});
  return tm;
}

TEST(Solver, SatisfiableDemandFullyAllocated) {
  const auto t = diamond();
  Solver solver;
  const auto sol = solver.solve(t, single_demand(5.0));
  ASSERT_EQ(sol.allocations.size(), 1u);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 5.0, 1e-6);
  ASSERT_FALSE(sol.allocations[0].paths.empty());
  for (const auto& wp : sol.allocations[0].paths) {
    EXPECT_TRUE(wp.path.is_valid(t));
    EXPECT_EQ(wp.path.src(t), 0u);
    EXPECT_EQ(wp.path.dst(t), 3u);
  }
}

TEST(Solver, OverloadSplitsAcrossParallelPaths) {
  const auto t = diamond();  // 10G per branch
  Solver solver;
  const auto sol = solver.solve(t, single_demand(15.0));
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 15.0, 1e-6);
  EXPECT_GE(sol.allocations[0].paths.size(), 2u);
  // No link oversubscribed.
  for (double r : sol.residual_capacity(t)) EXPECT_GE(r, -1e-6);
}

TEST(Solver, CapsAtNetworkCapacity) {
  const auto t = diamond();
  Solver solver;
  const auto sol = solver.solve(t, single_demand(50.0));
  // Both branches total 20G.
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 20.0, 0.1);
  for (double r : sol.residual_capacity(t)) EXPECT_GE(r, -1e-6);
}

TEST(Solver, MaxMinFairWithinClass) {
  // Two equal-priority demands share one 10G bottleneck: ~5G each.
  const auto t = topo::make_line(2, 10.0);
  traffic::TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 20.0});
  tm.add({0, 1, PriorityClass::kHigh, 20.0});
  Solver solver;
  const auto sol = solver.solve(t, tm);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 5.0, 0.8);
  EXPECT_NEAR(sol.allocations[1].allocated_gbps, 5.0, 0.8);
  EXPECT_NEAR(sol.total_allocated_gbps(), 10.0, 1e-6);
}

TEST(Solver, MaxMinSmallDemandSatisfiedFirst) {
  // Max-min: a 1G demand is fully served; the elephant gets the rest.
  const auto t = topo::make_line(2, 10.0);
  traffic::TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 1.0});
  tm.add({0, 1, PriorityClass::kHigh, 100.0});
  Solver solver;
  const auto sol = solver.solve(t, tm);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 1.0, 0.05);
  EXPECT_NEAR(sol.allocations[1].allocated_gbps, 9.0, 0.05);
}

TEST(Solver, StrictPriorityAcrossClasses) {
  // High-priority demand takes the bottleneck before low priority.
  const auto t = topo::make_line(2, 10.0);
  traffic::TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kLow, 10.0});
  tm.add({0, 1, PriorityClass::kHigh, 8.0});
  Solver solver;
  const auto sol = solver.solve(t, tm);
  EXPECT_NEAR(sol.allocations[1].allocated_gbps, 8.0, 1e-6);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 2.0, 0.05);
}

TEST(Solver, DeterministicAcrossRuns) {
  const auto t = topo::make_geant();
  const auto tm = traffic::generate_gravity(t);
  Solver solver;
  const auto a = solver.solve(t, tm);
  const auto b = solver.solve(t, tm);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_EQ(a.allocations[i].paths.size(), b.allocations[i].paths.size());
    EXPECT_DOUBLE_EQ(a.allocations[i].allocated_gbps,
                     b.allocations[i].allocated_gbps);
    for (std::size_t p = 0; p < a.allocations[i].paths.size(); ++p) {
      EXPECT_EQ(a.allocations[i].paths[p].path,
                b.allocations[i].paths[p].path);
      EXPECT_DOUBLE_EQ(a.allocations[i].paths[p].weight,
                       b.allocations[i].paths[p].weight);
    }
  }
}

TEST(Solver, ParallelMatchesSerial) {
  // The consensus-free property requires identical output regardless of
  // thread count (path search is parallel, allocation serialized).
  const auto t = topo::make_geant();
  const auto tm = traffic::generate_gravity(t);
  SolverOptions serial;
  serial.num_threads = 1;
  SolverOptions parallel;
  parallel.num_threads = 4;
  const auto a = Solver(serial).solve(t, tm);
  const auto b = Solver(parallel).solve(t, tm);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.allocations[i].allocated_gbps,
                     b.allocations[i].allocated_gbps);
  }
}

TEST(Solver, CachedSolveRemainsFeasibleAndComplete) {
  const auto t = topo::make_geant();
  const auto tm = traffic::generate_gravity(t);
  PathCache cache(t);
  SolverOptions with_cache;
  with_cache.cache = &cache;
  const auto cached = Solver(with_cache).solve(t, tm);
  const auto plain = Solver().solve(t, tm);
  EXPECT_NEAR(cached.total_allocated_gbps(), plain.total_allocated_gbps(),
              plain.total_allocated_gbps() * 0.02);
  for (double r : cached.residual_capacity(t)) EXPECT_GE(r, -1e-6);
  EXPECT_GT(cache.hits(), 0u);
}

TEST(Solver, WeightsSumToOnePerDemand) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  const auto sol = Solver().solve(t, tm);
  for (const auto& a : sol.allocations) {
    if (a.allocated_gbps <= 0) continue;
    double w = 0;
    for (const auto& wp : a.paths) w += wp.weight;
    EXPECT_NEAR(w, 1.0, 1e-6);
  }
}

TEST(Solver, StatsPopulated) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  SolveStats stats;
  Solver().solve(t, tm, &stats);
  EXPECT_GT(stats.rounds, 0u);
  EXPECT_GT(stats.path_searches, 0u);
  EXPECT_GT(stats.wall_time_s, 0.0);
  EXPECT_GE(stats.wall_time_s,
            stats.path_search_time_s);  // components within total
}

TEST(Solver, FixedQuantumWorkScalesWithDemand) {
  // The Fig 14 mechanism: with a fixed progressive-filling quantum, more
  // offered demand means more waterfill rounds and more path searches.
  const auto t = topo::make_geant();
  const auto tm = traffic::generate_gravity(t);
  double max_rate = 0;
  for (const auto& d : tm.demands()) max_rate = std::max(max_rate, d.rate_gbps);
  SolverOptions opt;
  opt.quantum_gbps = max_rate / 8.0;
  SolveStats light, heavy;
  Solver(opt).solve(t, tm.scaled(0.5), &light);
  Solver(opt).solve(t, tm.scaled(2.0), &heavy);
  EXPECT_GT(heavy.path_searches, light.path_searches);
}

TEST(Solver, DownLinkNeverCarriesTraffic) {
  auto t = topo::make_abilene();
  const auto fiber = t.find_link(0, 1);
  t.set_duplex_up(fiber, false);
  const auto tm = traffic::generate_gravity(topo::make_abilene());
  const auto sol = Solver().solve(t, tm);
  for (const auto& a : sol.allocations) {
    for (const auto& wp : a.paths) {
      for (topo::LinkId l : wp.path.links) {
        EXPECT_TRUE(t.link(l).up);
      }
    }
  }
}

TEST(Solver, ResidualOverrideStillClampsDownLinks) {
  // Regression: the down-link zeroing used to live only in the
  // default-residual branch, so a what-if solve seeded with a stale
  // residual snapshot could place traffic on links that had since gone
  // down. The clamp must apply to the override branch too.
  auto t = diamond();
  std::vector<double> residual(t.num_links());
  for (const auto& l : t.links()) residual[l.id] = l.capacity_gbps;
  // The b branch goes down *after* the residual snapshot was taken.
  t.set_duplex_up(t.find_link(0, 1), false);

  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, 4.0});
  const auto sol = Solver().solve(t, tm, nullptr, &residual);
  ASSERT_EQ(sol.allocations.size(), 1u);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 4.0, 1e-6);
  for (const auto& wp : sol.allocations[0].paths) {
    for (topo::LinkId l : wp.path.links) EXPECT_TRUE(t.link(l).up);
  }
}

TEST(Solver, RoundCapFreezesAreCounted) {
  // With max_rounds=1 and a tiny fixed quantum, the 8G demand cannot
  // finish in one round: it is frozen part-filled and must show up in
  // SolveStats::frozen_demands.
  const auto t = diamond();
  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, 8.0});
  SolverOptions opt;
  opt.max_rounds = 1;
  opt.quantum_gbps = 0.5;
  SolveStats stats;
  const auto sol = Solver(opt).solve(t, tm, &stats);
  EXPECT_EQ(stats.frozen_demands, 1u);
  EXPECT_EQ(stats.frozen_round_cap, 1u);
  EXPECT_EQ(stats.frozen_no_path, 0u);
  EXPECT_LT(sol.allocations[0].allocated_gbps, 8.0);

  // An unconstrained solve freezes nothing.
  SolveStats ok;
  Solver().solve(t, tm, &ok);
  EXPECT_EQ(ok.frozen_demands, 0u);
}

TEST(Solver, NoPathFreezesAreCounted) {
  // Starvation accounting: a demand that exhausts the network's capacity
  // is frozen because no feasible path remains -- a different cause than
  // the round cap, and one that used to exit the active set uncounted.
  const auto t = topo::make_line(2, 10.0);  // one 10G bottleneck
  traffic::TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 20.0});
  for (SolverBackend backend : {SolverBackend::kLegacy, SolverBackend::kBatch}) {
    SolverOptions opt;
    opt.backend = backend;
    SolveStats stats;
    const auto sol = Solver(opt).solve(t, tm, &stats);
    EXPECT_NEAR(sol.allocations[0].allocated_gbps, 10.0, 1e-6);
    EXPECT_EQ(stats.frozen_no_path, 1u);
    EXPECT_EQ(stats.frozen_round_cap, 0u);
    EXPECT_EQ(stats.frozen_demands, 1u);
  }
}

TEST(Solver, DrainedRoundPathIsResearchedNotSpun) {
  // Two same-priority demands contend for one bottleneck link. With a
  // full-rate quantum the first demand drains the link in the serialized
  // grant loop; the second demand's round path is then infeasible. It
  // must be re-searched (and here frozen as no-path) in the same round,
  // not kept spinning on a sub-epsilon grant until max_rounds fires.
  const auto t = topo::make_line(2, 10.0);
  traffic::TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 10.0});
  tm.add({0, 1, PriorityClass::kHigh, 10.0});
  for (SolverBackend backend : {SolverBackend::kLegacy, SolverBackend::kBatch}) {
    SolverOptions opt;
    opt.backend = backend;
    opt.quantum_gbps = 10.0;
    SolveStats stats;
    const auto sol = Solver(opt).solve(t, tm, &stats);
    EXPECT_EQ(stats.rounds, 1u);  // no wasted spin rounds
    EXPECT_EQ(stats.frozen_no_path, 1u);
    EXPECT_EQ(stats.frozen_round_cap, 0u);
    EXPECT_NEAR(sol.allocations[0].allocated_gbps, 10.0, 1e-6);
    EXPECT_NEAR(sol.allocations[1].allocated_gbps, 0.0, 1e-9);
  }
}

TEST(Solver, DrainedRoundPathResearchFindsAlternate) {
  // Same contention, but an alternate branch exists: the re-search must
  // divert the drained demand onto it within the same round instead of
  // wasting a round on a zero grant.
  const auto t = diamond();  // two 10G branches
  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, 10.0});
  tm.add({0, 3, PriorityClass::kHigh, 10.0});
  for (SolverBackend backend : {SolverBackend::kLegacy, SolverBackend::kBatch}) {
    SolverOptions opt;
    opt.backend = backend;
    opt.quantum_gbps = 10.0;
    SolveStats stats;
    const auto sol = Solver(opt).solve(t, tm, &stats);
    EXPECT_EQ(stats.rounds, 1u);
    EXPECT_EQ(stats.frozen_demands, 0u);
    EXPECT_NEAR(sol.allocations[0].allocated_gbps, 10.0, 1e-6);
    EXPECT_NEAR(sol.allocations[1].allocated_gbps, 10.0, 1e-6);
    for (double r : sol.residual_capacity(t)) EXPECT_GE(r, -1e-6);
  }
}

TEST(Solver, PooledAndUnpooledStatsAgree) {
  // wall_time_s must measure the solve, not thread spawning: a solve
  // with a solver-owned pool reports the same work statistics as one
  // reusing an external pool, and neither folds pool setup into wall
  // time (the clock starts after the pool exists).
  const auto t = diamond();
  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, 5.0});

  SolverOptions unpooled;
  unpooled.backend = SolverBackend::kLegacy;
  unpooled.num_threads = 4;
  SolveStats a;
  Solver(unpooled).solve(t, tm, &a);

  ThreadPool shared(4);
  SolverOptions pooled = unpooled;
  pooled.pool = &shared;
  SolveStats b;
  Solver(pooled).solve(t, tm, &b);

  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.path_searches, b.path_searches);
  EXPECT_EQ(a.frozen_demands, b.frozen_demands);
  EXPECT_GT(a.wall_time_s, 0.0);
  EXPECT_GT(b.wall_time_s, 0.0);
  // A trivial solve is microseconds; spawning 3 workers is what used to
  // dominate the unpooled number. Generous bound so the assertion only
  // trips on accounting regressions, not scheduler noise.
  EXPECT_LT(a.wall_time_s, 0.25);
  EXPECT_LT(b.wall_time_s, 0.25);
}

}  // namespace
}  // namespace dsdn::te

#include <atomic>
#include <thread>

#include "te/parallel_solver.hpp"

namespace dsdn::te {
namespace {

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(101);
  pool.parallel_for(101, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, InlineWhenSingleThreaded) {
  ThreadPool pool(1);
  const auto caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.parallel_for(8, [&](std::size_t i) {
    seen[i] = std::this_thread::get_id();
  });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPool, HandlesFewerItemsThanWorkersAndZero) {
  ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
  pool.parallel_for(0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 3);
}

TEST(ThreadPool, ZeroThreadsMeansInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.n_threads(), 1u);
  int sum = 0;
  pool.parallel_for(5, [&](std::size_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 10);
}

}  // namespace
}  // namespace dsdn::te
