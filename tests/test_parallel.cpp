// Concurrency suite for the persistent TE thread pool (and the hot-path
// fixes that ride on it): worker reuse, dynamic balancing, exception
// propagation, nesting, EventQueue move semantics, and PathCache miss
// memoization / invalidation. Written TSan-friendly -- shared state is
// atomics or per-index slots -- and run under -DDSDN_SANITIZE=thread by
// scripts/tier1.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>

#include "core/introspection.hpp"
#include "sim/event_queue.hpp"
#include "te/parallel_solver.hpp"
#include "te/path_cache.hpp"
#include "te/solver.hpp"
#include "topo/topology.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn {
namespace {

topo::Topology diamond(double b_metric = 1.0, double c_metric = 2.0) {
  // a -> {b, c} -> d; by default the b branch is cheaper.
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, 10, b_metric);
  t.add_duplex(b, d, 10, b_metric);
  t.add_duplex(a, c, 10, c_metric);
  t.add_duplex(c, d, 10, c_metric);
  return t;
}

// ---- persistent pool ----

std::set<std::thread::id> participant_ids(te::ThreadPool& pool,
                                          std::size_t width) {
  std::mutex mu;
  std::set<std::thread::id> ids;
  std::atomic<std::size_t> arrived{0};
  // One index per participant; each invocation blocks until all `width`
  // have been entered, so every pool worker (and the caller) must show
  // up -- no participant can grab a second index early.
  pool.parallel_for(width, [&](std::size_t) {
    {
      std::lock_guard<std::mutex> lk(mu);
      ids.insert(std::this_thread::get_id());
    }
    arrived.fetch_add(1);
    while (arrived.load() < width) std::this_thread::yield();
  });
  return ids;
}

TEST(ThreadPoolPersistent, WorkerThreadIdsStableAcrossCalls) {
  te::ThreadPool pool(4);
  const auto first = participant_ids(pool, 4);
  ASSERT_EQ(first.size(), 4u);  // 3 pool workers + the caller
  EXPECT_EQ(first.count(std::this_thread::get_id()), 1u);
  // Workers are started at most once per pool lifetime: later calls run
  // on exactly the same threads.
  for (int call = 0; call < 3; ++call) {
    EXPECT_EQ(participant_ids(pool, 4), first) << "call " << call;
  }
}

TEST(ThreadPoolPersistent, DynamicSchedulingRebalancesSkewedWork) {
  te::ThreadPool pool(4);
  constexpr std::size_t kN = 64;
  std::vector<std::thread::id> owner(kN);
  pool.parallel_for(kN, [&](std::size_t i) {
    owner[i] = std::this_thread::get_id();
    if (i == 0) std::this_thread::sleep_for(std::chrono::milliseconds(50));
  });
  // With dynamic block grabbing, the thread stuck on the expensive index
  // holds only its small block while the others drain the rest. Static
  // contiguous chunking would pin kN/4 = 16 indices on that thread.
  const std::size_t on_slow_thread =
      static_cast<std::size_t>(std::count(owner.begin(), owner.end(),
                                          owner[0]));
  EXPECT_LE(on_slow_thread, 8u);
}

TEST(ThreadPoolPersistent, ExceptionPropagatesAndPoolSurvives) {
  te::ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37)
                                     throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool is fully usable afterward.
  std::atomic<int> ran{0};
  pool.parallel_for(50, [&](std::size_t) { ran.fetch_add(1); });
  EXPECT_EQ(ran.load(), 50);
}

TEST(ThreadPoolPersistent, ExceptionPropagatesFromInlinePath) {
  te::ThreadPool pool(1);
  EXPECT_THROW(
      pool.parallel_for(3, [](std::size_t) { throw std::logic_error("x"); }),
      std::logic_error);
}

TEST(ThreadPoolPersistent, NestedParallelForRunsInline) {
  te::ThreadPool pool(4);
  std::atomic<int> total{0};
  pool.parallel_for(8, [&](std::size_t) {
    // Re-entering the same pool from a worker must neither deadlock nor
    // lose indices.
    pool.parallel_for(8, [&](std::size_t) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolPersistent, ZeroOneAndFewerItemsThanWorkers) {
  te::ThreadPool pool(8);
  std::atomic<int> count{0};
  pool.parallel_for(0, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.parallel_for(1, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
  pool.parallel_for(3, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 4);
}

TEST(ThreadPoolPersistent, StressManySmallCalls) {
  te::ThreadPool pool(4);
  std::atomic<std::size_t> sum{0};
  for (int rep = 0; rep < 500; ++rep) {
    pool.parallel_for(
        16, [&](std::size_t i) {
          sum.fetch_add(i + 1, std::memory_order_relaxed);
        });
  }
  EXPECT_EQ(sum.load(), 500u * (16u * 17u / 2u));
}

TEST(ThreadPoolPersistent, StatsCountTasksCallsAndBalance) {
  te::ThreadPool pool(2);
  std::atomic<int> sink{0};
  pool.parallel_for(10, [&](std::size_t) { sink.fetch_add(1); });
  pool.parallel_for(1, [&](std::size_t) { sink.fetch_add(1); });
  const auto s = pool.stats();
  EXPECT_EQ(s.workers, 2u);
  EXPECT_EQ(s.parallel_calls, 2u);
  EXPECT_EQ(s.inline_calls, 1u);  // the n == 1 call
  EXPECT_EQ(s.tasks_executed, 11u);
  std::uint64_t per_worker_total = 0;
  for (const auto& w : s.per_worker) per_worker_total += w.tasks;
  EXPECT_EQ(per_worker_total, s.tasks_executed);
  EXPECT_GE(s.imbalance(), 1.0);

  const std::string rendered = core::render_pool_stats(s);
  EXPECT_NE(rendered.find("2 workers"), std::string::npos);
  EXPECT_NE(rendered.find("(caller)"), std::string::npos);

  pool.reset_stats();
  EXPECT_EQ(pool.stats().tasks_executed, 0u);
}

// ---- solver on a shared pool ----

TEST(SolverPool, ExternalPoolSharedAcrossSolvesMatchesOwned) {
  const auto t = topo::make_geant();
  const auto tm = traffic::generate_gravity(t);

  te::SolverOptions owned;
  owned.num_threads = 4;
  const auto a = te::Solver(owned).solve(t, tm);

  te::ThreadPool shared(4);
  te::SolverOptions external;
  external.pool = &shared;
  te::SolveStats stats;
  const auto b = te::Solver(external).solve(t, tm, &stats);
  const auto c = te::Solver(external).solve(t, tm);  // pool reused

  EXPECT_GT(stats.pool_parallel_calls, 0u);
  EXPECT_GT(stats.pool_tasks, 0u);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.allocations[i].allocated_gbps,
                     b.allocations[i].allocated_gbps);
    EXPECT_DOUBLE_EQ(b.allocations[i].allocated_gbps,
                     c.allocations[i].allocated_gbps);
  }
}

TEST(SolverPool, CachedParallelMatchesCachedSerial) {
  // Determinism across thread counts must survive the cache's miss
  // memoization: each (src, dst, class) demand owns its repair slot, so
  // the memo state seen at every get is interleaving-independent.
  const auto t = topo::make_geant();
  traffic::GravityParams gp;
  gp.target_max_utilization = 1.3;  // force saturation -> misses/repairs
  const auto tm = traffic::generate_gravity(t, gp);

  te::PathCache c1(t), c2(t);
  te::SolverOptions serial;
  serial.num_threads = 1;
  serial.cache = &c1;
  te::SolverOptions parallel;
  parallel.num_threads = 4;
  parallel.cache = &c2;
  const auto a = te::Solver(serial).solve(t, tm);
  const auto b = te::Solver(parallel).solve(t, tm);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.allocations[i].allocated_gbps,
                     b.allocations[i].allocated_gbps);
  }
  EXPECT_GT(c2.repair_hits() + c2.misses(), 0u);
}

// ---- EventQueue move semantics ----

std::atomic<int> g_copies{0};

struct CopyCounter {
  std::vector<int> payload = std::vector<int>(64, 7);
  CopyCounter() = default;
  CopyCounter(const CopyCounter& o) : payload(o.payload) {
    g_copies.fetch_add(1);
  }
  CopyCounter(CopyCounter&&) noexcept = default;
  CopyCounter& operator=(const CopyCounter&) = default;
  CopyCounter& operator=(CopyCounter&&) noexcept = default;
};

TEST(EventQueueMove, StepMovesCallbackOutInsteadOfCopying) {
  sim::EventQueue q;
  int fired = 0;
  for (int i = 0; i < 100; ++i) {
    q.schedule(static_cast<double>(i), [cc = CopyCounter{}, &fired] {
      ++fired;
      (void)cc;
    });
  }
  const int copies_after_scheduling = g_copies.load();
  EXPECT_EQ(q.run(), 100u);
  EXPECT_EQ(fired, 100);
  // The hot loop must not copy captured state: schedule moves the
  // callback into the heap entry and step() moves it back out.
  EXPECT_EQ(g_copies.load(), copies_after_scheduling);
}

TEST(EventQueueMove, CallbackMayStillScheduleDuringStep) {
  // Regression guard for the pop-before-invoke invariant.
  sim::EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&] {
    order.push_back(1);
    q.schedule_in(0.0, [&] { order.push_back(2); });
    q.schedule_in(1.0, [&] { order.push_back(3); });
  });
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

// ---- PathCache miss memoization & invalidation ----

TEST(PathCacheRepair, MissMemoizedForRepeatedSaturation) {
  const auto t = diamond();
  te::PathCache cache(t);
  std::vector<double> residual(t.num_links(), 100.0);
  residual[t.find_link(0, 1)] = 0.0;  // primary path saturated
  te::SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = 1.0;

  const auto first = cache.get(t, 0, 3, c);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->node_sequence(t).at(1), 2u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.repair_hits(), 0u);

  // Same saturation on the next round: served from the memo, no second
  // Dijkstra.
  const auto second = cache.get(t, 0, 3, c);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(*second, *first);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.repair_hits(), 1u);
}

TEST(PathCacheRepair, MemoRevalidatedNeverReturnsInfeasible) {
  const auto t = diamond();
  te::PathCache cache(t);
  std::vector<double> residual(t.num_links(), 100.0);
  te::SpConstraints c;
  c.residual_gbps = &residual;
  c.min_residual = 1.0;

  residual[t.find_link(0, 1)] = 0.0;
  ASSERT_TRUE(cache.get(t, 0, 3, c).has_value());  // memoizes via c-branch

  residual[t.find_link(0, 2)] = 0.0;  // now the memoized path is dead too
  EXPECT_FALSE(cache.get(t, 0, 3, c).has_value());
  EXPECT_EQ(cache.misses(), 2u);  // recomputed, did not trust the memo

  residual[t.find_link(0, 2)] = 100.0;  // memo becomes feasible again
  const auto back = cache.get(t, 0, 3, c);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->node_sequence(t).at(1), 2u);
  EXPECT_EQ(cache.repair_hits(), 1u);
}

TEST(PathCacheInvalidate, GetRacesInvalidateSafely) {
  // Regression (TSan): get() used to read paths_[idx] without holding
  // the lock invalidate() rebuilt it under, so a concurrent epoch flip
  // could hand a reader a half-written Path. The table is now an
  // immutable snapshot swapped atomically; readers pin one snapshot per
  // lookup and every returned path must still be feasible for the
  // topology the reader passed in.
  const auto a = diamond(/*b_metric=*/1.0, /*c_metric=*/2.0);
  const auto b = diamond(/*b_metric=*/5.0, /*c_metric=*/1.0);
  te::PathCache cache(a);

  constexpr int kReaders = 4;
  constexpr int kFlips = 200;
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      // Half the readers exercise the repair branch too.
      std::vector<double> residual(a.num_links(), 100.0);
      te::SpConstraints c;
      if (r % 2 == 1) {
        residual[a.find_link(0, 1)] = 0.0;
        c.residual_gbps = &residual;
        c.min_residual = 1.0;
      }
      while (!stop.load(std::memory_order_relaxed)) {
        for (topo::NodeId s = 0; s < a.num_nodes(); ++s) {
          for (topo::NodeId d = 0; d < a.num_nodes(); ++d) {
            if (s == d) continue;
            const auto p = cache.get(a, s, d, c);
            // The diamond is connected, so a path must always come back,
            // and it must be valid *for the reader's topology* no matter
            // which table snapshot served it.
            if (!p.has_value() || !p->is_valid(a) || p->src(a) != s ||
                p->dst(a) != d) {
              bad.fetch_add(1);
            }
          }
        }
      }
    });
  }

  for (int i = 0; i < kFlips; ++i) {
    cache.invalidate(i % 2 == 0 ? b : a);
  }
  stop.store(true);
  for (auto& t : readers) t.join();

  EXPECT_EQ(bad.load(), 0);
  EXPECT_EQ(cache.epoch(), static_cast<std::uint64_t>(kFlips));
}

TEST(PathCacheInvalidate, MetricChangeRebuildsPrimaryAndDropsMemo) {
  const auto before = diamond(/*b_metric=*/1.0, /*c_metric=*/2.0);
  te::PathCache cache(before);
  EXPECT_EQ(cache.epoch(), 0u);

  // Warm a repair memo under saturation.
  std::vector<double> residual(before.num_links(), 100.0);
  residual[before.find_link(0, 1)] = 0.0;
  te::SpConstraints constrained;
  constrained.residual_gbps = &residual;
  constrained.min_residual = 1.0;
  ASSERT_TRUE(cache.get(before, 0, 3, constrained).has_value());
  EXPECT_EQ(cache.misses(), 1u);

  // Metrics flip: the c branch becomes the shortest path. The stale
  // primary entries would keep steering traffic over the b branch
  // forever; invalidate() rebuilds them and starts a new epoch.
  const auto after = diamond(/*b_metric=*/5.0, /*c_metric=*/1.0);
  cache.invalidate(after);
  EXPECT_EQ(cache.epoch(), 1u);
  cache.reset_counters();

  const auto p = cache.get(after, 0, 3, te::SpConstraints{});
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_sequence(after).at(1), 2u);  // rebuilt primary
  EXPECT_EQ(cache.hits(), 1u);

  // Repair memos did not survive the epoch: saturating the new primary
  // forces a fresh Dijkstra, not a repair hit.
  std::vector<double> residual2(after.num_links(), 100.0);
  residual2[after.find_link(0, 2)] = 0.0;
  te::SpConstraints constrained2;
  constrained2.residual_gbps = &residual2;
  constrained2.min_residual = 1.0;
  const auto q = cache.get(after, 0, 3, constrained2);
  ASSERT_TRUE(q.has_value());
  EXPECT_EQ(q->node_sequence(after).at(1), 1u);
  EXPECT_EQ(cache.repair_hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace dsdn
