#include <gtest/gtest.h>

#include "core/upgrade.hpp"
#include "core/wire.hpp"
#include "util/rng.hpp"

namespace dsdn::core {
namespace {

using metrics::PriorityClass;

NodeStateUpdate sample_nsu() {
  NodeStateUpdate nsu;
  nsu.origin = 42;
  nsu.seq = 77;
  nsu.links.push_back({3, 9, true, 100.0, 2.5, 0.004, 17});
  nsu.links.push_back({4, 11, false, 40.0, 1.0, 0.012, 18});
  nsu.prefixes.push_back({topo::parse_ipv4("10.0.42.0"), 24});
  nsu.demands.push_back({9, PriorityClass::kHigh, 3.25});
  nsu.demands.push_back({11, PriorityClass::kLow, 0.5});
  nsu.tlvs.push_back(make_algorithm_tlv(PathingAlgorithm::kMaxMinFairTe));
  nsu.tlvs.push_back({0xBEEF, "opaque-extension-payload"});
  return nsu;
}

bool nsu_equal(const NodeStateUpdate& a, const NodeStateUpdate& b) {
  if (a.origin != b.origin || a.seq != b.seq) return false;
  if (a.links.size() != b.links.size()) return false;
  for (std::size_t i = 0; i < a.links.size(); ++i) {
    const auto& x = a.links[i];
    const auto& y = b.links[i];
    if (x.link != y.link || x.peer != y.peer || x.up != y.up ||
        x.capacity_gbps != y.capacity_gbps || x.igp_metric != y.igp_metric ||
        x.delay_s != y.delay_s || x.sublabel != y.sublabel) {
      return false;
    }
  }
  if (a.prefixes != b.prefixes) return false;
  if (a.demands.size() != b.demands.size()) return false;
  for (std::size_t i = 0; i < a.demands.size(); ++i) {
    if (a.demands[i].egress != b.demands[i].egress ||
        a.demands[i].priority != b.demands[i].priority ||
        a.demands[i].rate_gbps != b.demands[i].rate_gbps) {
      return false;
    }
  }
  return a.tlvs == b.tlvs;
}

TEST(Wire, RoundTripsFullNsu) {
  const auto nsu = sample_nsu();
  const auto bytes = serialize_nsu(nsu);
  const auto back = parse_nsu(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(nsu_equal(nsu, *back));
  EXPECT_EQ(validate_nsu(*back), NsuValidity::kValid);
}

TEST(Wire, RoundTripsEmptySections) {
  NodeStateUpdate minimal;
  minimal.origin = 1;
  minimal.seq = 1;
  const auto back = parse_nsu(serialize_nsu(minimal));
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(nsu_equal(minimal, *back));
}

TEST(Wire, RejectsBadMagicAndVersion) {
  auto bytes = serialize_nsu(sample_nsu());
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_FALSE(parse_nsu(bad_magic).has_value());
  auto bad_version = bytes;
  bad_version[4] = 0x7F;
  EXPECT_FALSE(parse_nsu(bad_version).has_value());
}

TEST(Wire, TruncationNeverYieldsTheOriginal) {
  // Any strict prefix either fails to parse or parses to a structurally
  // different (shorter) message -- a truncated NSU can never be mistaken
  // for the full one. (A cut landing exactly on a section boundary is a
  // well-formed shorter message; TLV framing cannot detect that, which
  // is gRPC's job -- it delivers whole messages.)
  const auto original = sample_nsu();
  const auto bytes = serialize_nsu(original);
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    std::vector<std::uint8_t> truncated(bytes.begin(),
                                        bytes.begin() +
                                            static_cast<std::ptrdiff_t>(cut));
    const auto parsed = parse_nsu(truncated);
    if (parsed) {
      EXPECT_FALSE(nsu_equal(original, *parsed)) << "cut at " << cut;
    }
  }
}

TEST(Wire, RejectsOversizedLengthField) {
  auto bytes = serialize_nsu(sample_nsu());
  // The first section's length field sits after magic+version+origin+seq
  // + section type = 4+2+4+8+2 = 20.
  bytes[20] = 0xFF;
  bytes[21] = 0xFF;
  EXPECT_FALSE(parse_nsu(bytes).has_value());
  const auto result = decode_nsu(bytes);
  EXPECT_EQ(result.error.status, DecodeStatus::kBadSectionLength);
}

TEST(DecodeError, TruncatedHeaderReportsTruncatedStatus) {
  const auto bytes = serialize_nsu(sample_nsu());
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{5},
                          std::size_t{10}, std::size_t{17}}) {
    const auto result = decode_nsu(
        std::span<const std::uint8_t>(bytes.data(), cut));
    ASSERT_FALSE(result) << "cut at " << cut;
    EXPECT_EQ(result.error.status, DecodeStatus::kTruncated) << "cut " << cut;
    EXPECT_LE(result.error.offset, cut);
    EXPECT_EQ(result.error.section, 0) << "header failures carry section 0";
  }
}

TEST(DecodeError, EveryFailingPrefixCarriesStatusAndOffset) {
  // Any strict prefix that fails must say why and where; the offset must
  // point inside the truncated buffer, never past it.
  const auto bytes = serialize_nsu(sample_nsu());
  for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
    const auto result =
        decode_nsu(std::span<const std::uint8_t>(bytes.data(), cut));
    if (result) continue;  // boundary cuts are shorter valid messages
    EXPECT_NE(result.error.status, DecodeStatus::kOk) << "cut " << cut;
    EXPECT_LE(result.error.offset, cut) << "cut " << cut;
  }
}

TEST(DecodeError, BadMagicAndVersionStatuses) {
  auto bytes = serialize_nsu(sample_nsu());
  auto bad_magic = bytes;
  bad_magic[0] ^= 0xFF;
  EXPECT_EQ(decode_nsu(bad_magic).error.status, DecodeStatus::kBadMagic);
  auto bad_version = bytes;
  bad_version[4] = 0x7F;
  EXPECT_EQ(decode_nsu(bad_version).error.status, DecodeStatus::kBadVersion);
}

TEST(DecodeError, InflatedCountReportsBadCountInLinksSection) {
  NodeStateUpdate nsu;
  nsu.origin = 1;
  nsu.seq = 1;
  nsu.links.push_back({3, 9, true, 100.0, 2.5, 0.004, 17});
  auto bytes = serialize_nsu(nsu);
  // The links count u32 follows the 18-byte header and the 6-byte
  // section type+length.
  bytes[24] = 0xFF;
  bytes[25] = 0xFF;
  const auto result = decode_nsu(bytes);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error.status, DecodeStatus::kBadCount);
  EXPECT_EQ(result.error.section, kSectionLinks);
}

TEST(DecodeError, InvalidPriorityClassReportsBadValueInDemandsSection) {
  NodeStateUpdate nsu;
  nsu.origin = 1;
  nsu.seq = 1;
  nsu.demands.push_back({2, PriorityClass::kHigh, 1.0});
  auto bytes = serialize_nsu(nsu);
  // Layout: 18-byte header, empty links section (6+4), empty prefixes
  // section (6+4), demands type+length (6) + count (4) + egress (4),
  // then the priority class byte.
  const std::size_t cls_at = 18 + 10 + 10 + 6 + 4 + 4;
  ASSERT_LT(cls_at, bytes.size());
  bytes[cls_at] = 0x7F;
  const auto result = decode_nsu(bytes);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error.status, DecodeStatus::kBadValue);
  EXPECT_EQ(result.error.section, kSectionDemands);
  // The whole 13-byte demand record is read before the value check, so
  // the offset points just past it.
  EXPECT_EQ(result.error.offset, cls_at + 9);
}

TEST(DecodeError, OversizedBufferReportsOversized) {
  std::vector<std::uint8_t> huge(kMaxWireSize + 1, 0);
  const auto result = decode_nsu(huge);
  ASSERT_FALSE(result);
  EXPECT_EQ(result.error.status, DecodeStatus::kOversized);
}

TEST(DecodeError, ToStringNamesStatusAndSection) {
  const DecodeError err{DecodeStatus::kBadCount, 24, kSectionLinks};
  const auto text = err.to_string();
  EXPECT_NE(text.find("bad-count"), std::string::npos) << text;
  EXPECT_NE(text.find("links"), std::string::npos) << text;
  EXPECT_NE(text.find("24"), std::string::npos) << text;
}

TEST(Wire, SkipsKnownSectionTrailerForForwardCompat) {
  // A newer controller appends extra bytes *inside* a known section
  // (after the records the length field accounts for): current decoders
  // must keep the records and skip the trailer.
  std::vector<std::uint8_t> bytes;
  auto push_u16 = [&](std::uint16_t v) {
    bytes.push_back(static_cast<std::uint8_t>(v));
    bytes.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  auto push_u32 = [&](std::uint32_t v) {
    push_u16(static_cast<std::uint16_t>(v));
    push_u16(static_cast<std::uint16_t>(v >> 16));
  };
  push_u32(kWireMagic);
  push_u16(kWireVersion);
  push_u32(11);  // origin
  push_u32(5);   // seq lo
  push_u32(0);   // seq hi
  push_u16(kSectionPrefixes);
  push_u32(4 + 5 + 3);  // count + one prefix + a 3-byte trailer
  push_u32(1);
  push_u32(topo::parse_ipv4("10.9.0.0"));
  bytes.push_back(16);
  bytes.insert(bytes.end(), {0xAA, 0xBB, 0xCC});

  const auto result = decode_nsu(bytes);
  ASSERT_TRUE(result) << result.error.to_string();
  EXPECT_EQ(result.nsu->origin, 11u);
  EXPECT_EQ(result.nsu->seq, 5u);
  ASSERT_EQ(result.nsu->prefixes.size(), 1u);
  EXPECT_EQ(result.nsu->prefixes[0].len, 16u);
}

TEST(Wire, RejectsInvalidPriorityClass) {
  NodeStateUpdate nsu;
  nsu.origin = 1;
  nsu.seq = 1;
  nsu.demands.push_back({2, PriorityClass::kHigh, 1.0});
  auto bytes = serialize_nsu(nsu);
  // Corrupt the priority byte (egress u32 follows the demand count u32 in
  // the demands section); find it by scanning for the only 0x00 class
  // byte pattern -- simpler: flip every byte one at a time and require
  // that no single-byte corruption ever crashes (and this specific field
  // gets rejected somewhere in the sweep).
  std::size_t rejected = 0;
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    auto corrupt = bytes;
    corrupt[i] = 0x6B;
    const auto parsed = parse_nsu(corrupt);  // must not crash
    if (!parsed.has_value()) ++rejected;
  }
  EXPECT_GT(rejected, 0u);
}

TEST(Wire, SkipsUnknownSectionsForForwardCompat) {
  // A future controller appends a section type we don't know: current
  // parsers must skip it and keep everything else.
  auto bytes = serialize_nsu(sample_nsu());
  const std::uint16_t future_type = 0x7777;
  bytes.push_back(static_cast<std::uint8_t>(future_type));
  bytes.push_back(static_cast<std::uint8_t>(future_type >> 8));
  const std::uint32_t len = 3;
  for (int i = 0; i < 4; ++i)
    bytes.push_back(static_cast<std::uint8_t>(len >> (8 * i)));
  bytes.insert(bytes.end(), {0xAA, 0xBB, 0xCC});
  const auto back = parse_nsu(bytes);
  ASSERT_TRUE(back.has_value());
  EXPECT_TRUE(nsu_equal(sample_nsu(), *back));
}

TEST(Wire, FuzzRandomBuffersNeverCrash) {
  util::Rng rng(0xF422);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> garbage(
        static_cast<std::size_t>(rng.uniform_int(0, 256)));
    for (auto& b : garbage)
      b = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    (void)parse_nsu(garbage);  // must neither crash nor hang
  }
  SUCCEED();
}

TEST(Wire, FuzzMutatedValidBuffersNeverCrash) {
  const auto bytes = serialize_nsu(sample_nsu());
  util::Rng rng(0xF423);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = bytes;
    const int flips = 1 + static_cast<int>(rng.uniform_int(0, 4));
    for (int f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    }
    const auto parsed = parse_nsu(mutated);
    // Anything that *does* parse must still pass the semantic validator
    // or be rejected by it -- either way, no crash and no acceptance of
    // structurally inconsistent data downstream.
    if (parsed) (void)validate_nsu(*parsed);
  }
  SUCCEED();
}

TEST(Wire, RejectsMessagesAboveSizeCap) {
  std::vector<std::uint8_t> huge(kMaxWireSize + 1, 0);
  EXPECT_FALSE(parse_nsu(huge).has_value());
}

TEST(Wire, SizeTracksWireSizeEstimate) {
  // nsu_wire_size() is the back-of-envelope used for the footnote-3
  // overhead math; the real encoding should be in the same ballpark.
  const auto nsu = sample_nsu();
  const auto actual = serialize_nsu(nsu).size();
  const auto estimate = nsu_wire_size(nsu);
  EXPECT_GT(actual, estimate / 3);
  EXPECT_LT(actual, estimate * 3);
}

}  // namespace
}  // namespace dsdn::core
