#include <gtest/gtest.h>

#include "rsvp/rsvp_te.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::rsvp {
namespace {

RsvpParams fast_params(std::uint64_t seed = 11) {
  RsvpParams p;
  p.seed = seed;
  return p;
}

TEST(RsvpTe, EstablishesAllLspsOnHealthyNetwork) {
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.5;
  const auto tm = traffic::generate_gravity(topo, gp);
  RsvpTeNetwork net(&topo, tm, fast_params());
  const auto established = net.establish_all();
  EXPECT_EQ(established, tm.size());
  EXPECT_EQ(net.established_count(), tm.size());
}

TEST(RsvpTe, ReservationsNeverExceedCapacity) {
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.9;
  const auto tm = traffic::generate_gravity(topo, gp);
  RsvpTeNetwork net(&topo, tm, fast_params());
  net.establish_all();
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_LE(net.reserved()[l],
              topo.link(static_cast<topo::LinkId>(l)).capacity_gbps + 1e-6);
  }
}

TEST(RsvpTe, FailureTriggersRestorationOfAffectedLsps) {
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.5;
  const auto tm = traffic::generate_gravity(topo, gp);
  RsvpTeNetwork net(&topo, tm, fast_params());
  net.establish_all();

  // Fail a well-connected core fiber.
  const topo::LinkId fiber = topo.find_link(
      topo::NodeId(5), topo.up_neighbors(5).front());
  const auto result = net.fail_fiber(fiber);
  EXPECT_GT(result.affected_lsps, 0u);
  EXPECT_EQ(result.restored_lsps, result.affected_lsps);
  EXPECT_GT(result.convergence_time_s, 0.0);
  // Restored LSPs avoid the failed fiber.
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_LE(net.reserved()[l],
              topo.link(static_cast<topo::LinkId>(l)).capacity_gbps + 1e-6);
  }
}

TEST(RsvpTe, UnaffectedLspsUntouched) {
  const auto topo = topo::make_geant();
  const auto tm = traffic::generate_gravity(topo);
  RsvpTeNetwork net(&topo, tm, fast_params());
  net.establish_all();
  const std::size_t before = net.established_count();
  // Fail a leaf-ish fiber: most LSPs are unaffected.
  const auto result = net.fail_fiber(topo.find_link(
      topo::NodeId(3), topo.up_neighbors(3).front()));
  EXPECT_EQ(net.established_count(),
            before - result.affected_lsps + result.restored_lsps);
}

TEST(RsvpTe, ContentionCausesCrankbacksUnderPressure) {
  // At high utilization, simultaneous restoration must collide: the
  // signaling stampede (§5.1.2).
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.95;
  gp.seed = 3;
  const auto tm = traffic::generate_gravity(topo, gp);
  RsvpTeNetwork net(&topo, tm, fast_params(17));
  net.establish_all();
  // Pick the fiber carrying the most reservations.
  topo::LinkId busiest = 0;
  double best = -1;
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const auto& link = topo.link(static_cast<topo::LinkId>(l));
    if (link.reverse != topo::kInvalidLink && link.id < link.reverse &&
        net.reserved()[l] > best) {
      best = net.reserved()[l];
      busiest = static_cast<topo::LinkId>(l);
    }
  }
  const auto result = net.fail_fiber(busiest);
  EXPECT_GT(result.affected_lsps, 5u);
  EXPECT_GT(result.crankbacks + result.retries, 0u);
}

TEST(RsvpTe, RepairRestoresCapacityForNewLsps) {
  const auto topo = topo::make_ring(4);
  traffic::TrafficMatrix tm;
  tm.add({0, 1, metrics::PriorityClass::kHigh, 60.0});
  RsvpTeNetwork net(&topo, tm, fast_params());
  net.establish_all();
  const topo::LinkId fiber = topo.find_link(0, 1);
  net.fail_fiber(fiber);
  net.repair_fiber(fiber);
  // Reserve again from scratch on a fresh network sharing the repaired
  // state: establish a second network over the same scratch state is not
  // exposed; instead verify reservations stayed within capacity.
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    EXPECT_LE(net.reserved()[l],
              topo.link(static_cast<topo::LinkId>(l)).capacity_gbps + 1e-6);
  }
}

TEST(RsvpTe, DeterministicUnderSeed) {
  const auto topo = topo::make_geant();
  const auto tm = traffic::generate_gravity(topo);
  RsvpTeNetwork n1(&topo, tm, fast_params(42));
  RsvpTeNetwork n2(&topo, tm, fast_params(42));
  n1.establish_all();
  n2.establish_all();
  const topo::LinkId fiber = topo.find_link(
      topo::NodeId(0), topo.up_neighbors(0).front());
  const auto r1 = n1.fail_fiber(fiber);
  const auto r2 = n2.fail_fiber(fiber);
  EXPECT_DOUBLE_EQ(r1.convergence_time_s, r2.convergence_time_s);
  EXPECT_EQ(r1.crankbacks, r2.crankbacks);
}

}  // namespace
}  // namespace dsdn::rsvp
