#include <gtest/gtest.h>

#include <algorithm>

#include "hier/plane_runtime.hpp"
#include "hier/scenario.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::hier {
namespace {

using metrics::PriorityClass;

TEST(PlaceFlow, RendezvousMovesOnlyTheFailedPlanesFlows) {
  // HRW property: when plane 2 dies, exactly the flows whose all-alive
  // argmax was 2 re-place; every other flow keeps its plane. When it
  // returns, the same set -- and only it -- moves home.
  std::vector<char> all(4, 1);
  std::vector<char> degraded = all;
  degraded[2] = 0;
  std::size_t moved = 0, kept = 0;
  for (topo::NodeId src = 0; src < 40; ++src) {
    for (topo::NodeId dst = 0; dst < 40; ++dst) {
      if (src == dst) continue;
      std::size_t before = place_flow(src, dst, PriorityClass::kHigh, all);
      std::size_t after = place_flow(src, dst, PriorityClass::kHigh, degraded);
      if (before == 2) {
        EXPECT_NE(after, 2u);
        ++moved;
      } else {
        EXPECT_EQ(after, before);
        ++kept;
      }
      EXPECT_EQ(place_flow(src, dst, PriorityClass::kHigh, all), before);
    }
  }
  EXPECT_GT(moved, 0u);
  EXPECT_GT(kept, 0u);
  // Roughly 1/4 of flows lived on plane 2.
  double fraction = static_cast<double>(moved) /
                    static_cast<double>(moved + kept);
  EXPECT_NEAR(fraction, 0.25, 0.06);
  EXPECT_THROW(place_flow(0, 1, PriorityClass::kHigh, {0, 0}),
               std::logic_error);
}

class PlaneRuntimeTest : public ::testing::Test {
 protected:
  PlaneRuntimeTest() : base_(topo::make_abilene()) {
    traffic::GravityParams gp;
    gp.pair_fraction = 0.6;
    gp.seed = 0xF10;
    tm_ = traffic::generate_gravity(base_, gp).aggregated();
    PlaneRuntimeConfig config;
    config.planes = 3;
    config.score_packets = 128;
    runtime_ = std::make_unique<PlaneRuntime>(base_, tm_, config);
    runtime_->bootstrap();
  }

  topo::Topology base_;
  traffic::TrafficMatrix tm_;
  std::unique_ptr<PlaneRuntime> runtime_;
};

TEST_F(PlaneRuntimeTest, BootstrapPlacesEveryFlowWhereHrwSays) {
  EXPECT_TRUE(runtime_->all_planes_converged());
  EXPECT_EQ(runtime_->total_flows(), tm_.size());
  EXPECT_NEAR(runtime_->total_rate_gbps(), tm_.total_rate_gbps(), 1e-9);
  for (std::size_t p = 0; p < runtime_->num_planes(); ++p) {
    for (const auto& d : runtime_->plane_demands(p)) {
      EXPECT_EQ(runtime_->plane_of(d.src, d.dst, d.priority), p);
    }
  }
}

TEST_F(PlaneRuntimeTest, SendPacketUsesTheSnapshotOfTheFlowsPlane) {
  for (const auto& d : tm_.demands()) {
    const auto r = runtime_->send_packet(d.src, d.dst, d.priority);
    EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered)
        << d.src << "->" << d.dst;
  }
}

TEST_F(PlaneRuntimeTest, FailPlaneRebalancesOntoSurvivorsAndRestores) {
  const std::size_t flows_before = runtime_->total_flows();
  const double rate_before = runtime_->total_rate_gbps();
  const std::size_t victim_flows = runtime_->plane_demands(1).size();

  const auto report = runtime_->fail_plane(1);
  EXPECT_EQ(report.moved_flows, victim_flows);
  EXPECT_LT(report.exposed_fraction, 1.0 / 3.0 + 0.12);
  EXPECT_EQ(report.score_hard_drops, 0u);
  EXPECT_GT(report.scored_packets, 0u);
  EXPECT_FALSE(runtime_->plane_alive(1));
  EXPECT_EQ(runtime_->num_alive(), 2u);
  // Conservation: nothing lost in the drain -> re-place -> reprogram.
  EXPECT_EQ(runtime_->total_flows(), flows_before);
  EXPECT_NEAR(runtime_->total_rate_gbps(), rate_before, 1e-9);
  EXPECT_TRUE(runtime_->plane_demands(1).empty());
  // Survivors carry everything and still deliver.
  for (const auto& d : tm_.demands()) {
    const auto r = runtime_->send_packet(d.src, d.dst, d.priority);
    EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
  }

  const auto back = runtime_->restore_plane(1);
  EXPECT_EQ(back.moved_flows, victim_flows);
  EXPECT_TRUE(runtime_->plane_alive(1));
  EXPECT_EQ(runtime_->total_flows(), flows_before);
  // Exactly the original placement is restored (HRW stability).
  EXPECT_EQ(runtime_->plane_demands(1).size(), victim_flows);
  for (std::size_t p = 0; p < runtime_->num_planes(); ++p) {
    for (const auto& d : runtime_->plane_demands(p)) {
      EXPECT_EQ(runtime_->plane_of(d.src, d.dst, d.priority), p);
    }
  }
  EXPECT_THROW(runtime_->restore_plane(1), std::invalid_argument);
}

TEST_F(PlaneRuntimeTest, LastLivePlaneCannotFail) {
  runtime_->fail_plane(0);
  runtime_->fail_plane(1);
  EXPECT_THROW(runtime_->fail_plane(2), std::invalid_argument);
}

TEST_F(PlaneRuntimeTest, ConduitCutHitsEveryPlaneButPlaneCutOnlyOne) {
  const topo::LinkId fiber = base_.find_link(0, base_.up_neighbors(0)[0]);
  const auto msgs2 = runtime_->plane(2).messages_delivered();
  runtime_->fail_fiber_in_plane(0, fiber);
  EXPECT_FALSE(runtime_->plane(0).network().link(fiber).up);
  EXPECT_TRUE(runtime_->plane(1).network().link(fiber).up);
  EXPECT_EQ(runtime_->plane(2).messages_delivered(), msgs2);
  runtime_->repair_fiber_in_plane(0, fiber);

  runtime_->fail_conduit(fiber);
  for (std::size_t p = 0; p < 3; ++p) {
    EXPECT_FALSE(runtime_->plane(p).network().link(fiber).up) << p;
  }
  runtime_->repair_conduit(fiber);
  EXPECT_TRUE(runtime_->all_planes_converged());
}

TEST(PlaneScenario, SeededRunsReplayBitIdentically) {
  const auto base = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  gp.seed = 0xABE;
  const auto tm = traffic::generate_gravity(base, gp).aggregated();
  PlaneScenarioOptions options;
  options.planes = 3;
  options.n_events = 6;
  options.score_packets = 64;
  const auto a = run_plane_scenario(base, tm, options, 7);
  const auto b = run_plane_scenario(base, tm, options, 7);
  for (const auto& v : a.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(a.ok());
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_GT(a.events_applied, 0u);
  EXPECT_GT(a.invariant_checks, 0u);
}

TEST(PlaneScenario, SmallSwarmIsClean) {
  const auto base = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  gp.seed = 0xABE;
  const auto tm = traffic::generate_gravity(base, gp).aggregated();
  PlaneScenarioOptions options;
  options.planes = 3;
  options.n_events = 5;
  options.score_packets = 64;
  // Parity (cold re-solve per plane per event) off to keep CI fast; the
  // tier-1 swarm leg runs with it on.
  options.invariants.check_solution_parity = false;
  const auto failure = run_plane_swarm(base, tm, options, 1, 4);
  if (failure) {
    for (const auto& v : failure->result.violations) {
      ADD_FAILURE() << "seed " << failure->seed << ": " << v;
    }
  }
  EXPECT_FALSE(failure.has_value());
}

}  // namespace
}  // namespace dsdn::hier
