#include <gtest/gtest.h>

#include "sim/emulation.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::sim {
namespace {

using dataplane::ForwardOutcome;
using metrics::PriorityClass;

DsdnEmulation make_emulation(topo::Topology topo, double util = 0.5) {
  traffic::GravityParams gp;
  gp.target_max_utilization = util;
  auto tm = traffic::generate_gravity(topo, gp);
  return DsdnEmulation(std::move(topo), std::move(tm));
}

TEST(Emulation, BootstrapConvergesAllViews) {
  auto emu = make_emulation(topo::make_abilene());
  emu.bootstrap();
  EXPECT_TRUE(emu.views_converged());
  EXPECT_GT(emu.messages_delivered(), emu.network().num_nodes());
  EXPECT_GT(emu.sim_time(), 0.0);
}

TEST(Emulation, AllPairsDeliverAfterBootstrap) {
  auto emu = make_emulation(topo::make_abilene());
  emu.bootstrap();
  const auto& topo = emu.network();
  std::size_t delivered = 0, total = 0;
  for (topo::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d || topo.node(s).metro == topo.node(d).metro) continue;
      ++total;
      const auto r = emu.send_packet(s, emu.address_of(d));
      if (r.outcome == ForwardOutcome::kDelivered && r.final_node == d)
        ++delivered;
    }
  }
  EXPECT_EQ(delivered, total);
}

TEST(Emulation, PacketsFollowLoopFreePaths) {
  auto emu = make_emulation(topo::make_geant());
  emu.bootstrap();

  for (topo::NodeId d = 1; d < 8; ++d) {
    const auto r = emu.send_packet(0, emu.address_of(d), PriorityClass::kHigh,
                                   /*entropy=*/d * 77);
    ASSERT_EQ(r.outcome, ForwardOutcome::kDelivered);
    std::set<topo::NodeId> seen(r.trace.begin(), r.trace.end());
    EXPECT_EQ(seen.size(), r.trace.size()) << "loop in trace";
  }
}

TEST(Emulation, FiberCutReconvergesAndRestoresDelivery) {
  auto emu = make_emulation(topo::make_abilene());
  emu.bootstrap();
  const auto& topo = emu.network();

  // Cut seattle-sunnyvale (both are border nodes with alternates).
  const topo::LinkId fiber = topo.find_link(0, 1);
  ASSERT_NE(fiber, topo::kInvalidLink);
  emu.fail_fiber(fiber);
  EXPECT_TRUE(emu.views_converged());

  // Traffic between the endpoints still flows, not over the dead fiber.
  const auto r = emu.send_packet(0, emu.address_of(1));
  ASSERT_EQ(r.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(r.final_node, 1u);
  EXPECT_GT(r.hops, 1u);  // must detour

  emu.repair_fiber(fiber);
  EXPECT_TRUE(emu.views_converged());
  const auto r2 = emu.send_packet(0, emu.address_of(1));
  EXPECT_EQ(r2.outcome, ForwardOutcome::kDelivered);
}

TEST(Emulation, ConsensusFreeIdenticalSolutions) {
  // With converged views, every controller computes the identical
  // full-network TE solution (§3.1): verify via per-controller digests of
  // their own installed routes against a central solve.
  auto emu = make_emulation(topo::make_abilene());
  emu.bootstrap();
  const auto& topo = emu.network();
  // Every router's StateDb must agree with every other's.
  const auto digest0 = emu.controller(0).state().digest();
  for (topo::NodeId n = 1; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(emu.controller(n).state().digest(), digest0);
  }
}

TEST(Emulation, CrashRecoveryRejoinsNetwork) {
  auto emu = make_emulation(topo::make_abilene());
  emu.bootstrap();
  emu.crash_and_recover(3);
  EXPECT_TRUE(emu.views_converged());
  // The recovered router still originates and forwards.
  const auto r = emu.send_packet(3, emu.address_of(7));
  EXPECT_EQ(r.outcome, ForwardOutcome::kDelivered);
}

TEST(Emulation, ColdRestartRebuildsStateFromReflooding) {
  // Unlike crash_and_recover (out-of-band neighbor DB copy), a cold
  // restart rebuilds the StateDb purely from NSUs the neighbors reflood
  // over the wire, and discards all warm-start TE state.
  topo::Topology topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.5;
  auto tm = traffic::generate_gravity(topo, gp);
  EmulationConfig cfg;
  cfg.incremental_te = true;
  DsdnEmulation emu(topo, std::move(tm), cfg);
  emu.bootstrap();

  // Churn once so every controller holds warm solver state.
  const topo::LinkId fiber = emu.network().find_link(0, 1);
  emu.fail_fiber(fiber);
  emu.repair_fiber(fiber);
  {
    const te::IncrementalSolver* inc = emu.controller(3).incremental_solver();
    ASSERT_NE(inc, nullptr);
    ASSERT_GT(inc->incremental_solves(), 0u);
  }
  const std::uint64_t seq_before = emu.controller(3).state().seq_of(3);
  ASSERT_GT(seq_before, 0u);

  emu.crash_and_cold_restart(3);

  // Back in agreement with everyone, with a full database again.
  EXPECT_TRUE(emu.views_converged());
  const core::Controller& restarted = emu.controller(3);
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    EXPECT_GT(restarted.state().seq_of(n), 0u) << "missing origin " << n;
  }
  // Its own-LSP sequence advanced past the echoed pre-crash NSU, so the
  // post-restart origination superseded the stale copy everywhere.
  EXPECT_GT(restarted.state().seq_of(3), seq_before);
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    EXPECT_EQ(emu.controller(n).state().seq_of(3),
              restarted.state().seq_of(3));
  }

  // Warm-start state died with the old instance: the fresh controller's
  // first recompute was a cold full solve.
  const te::IncrementalSolver* inc = restarted.incremental_solver();
  ASSERT_NE(inc, nullptr);
  EXPECT_GE(inc->full_solves(), 1u);
  EXPECT_EQ(inc->incremental_solves(), 0u);

  // And the restarted router forwards like everyone else.
  const auto r = emu.send_packet(3, emu.address_of(7));
  EXPECT_EQ(r.outcome, ForwardOutcome::kDelivered);
  const auto inbound = emu.send_packet(0, emu.address_of(3));
  EXPECT_EQ(inbound.outcome, ForwardOutcome::kDelivered);
}

TEST(Emulation, FrrCoversWindowBetweenFailureAndReconvergence) {
  // Program routes on the healthy network, cut a fiber *without*
  // letting headends reconverge (we bypass fail_fiber's NSU flood), and
  // check that FRR still delivers the stale-routed packet.
  auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  auto tm = traffic::generate_gravity(topo, gp);
  DsdnEmulation emu(topo, tm);
  emu.bootstrap();

  // Find the fiber carrying 0 -> 10 traffic (seattle -> newyork).
  const auto before = emu.send_packet(0, emu.address_of(10));
  ASSERT_EQ(before.outcome, ForwardOutcome::kDelivered);

  // Kill the first hop of the installed path directly in ground truth.
  auto& net = const_cast<topo::Topology&>(emu.network());
  const topo::LinkId first_hop = net.find_link(before.trace[0], before.trace[1]);
  ASSERT_NE(first_hop, topo::kInvalidLink);
  net.set_duplex_up(first_hop, false);

  const auto during = emu.send_packet(0, emu.address_of(10));
  EXPECT_EQ(during.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(during.final_node, 10u);
  EXPECT_GE(during.frr_activations, 1u);
}

TEST(Emulation, EcmpSpreadsEntropyAcrossRoutes) {
  // On an overloaded network TE must split flows off the shortest path;
  // distinct entropy values should then exercise distinct paths somewhere.
  auto emu = make_emulation(topo::make_abilene(), /*util=*/1.4);
  emu.bootstrap();
  bool found_split = false;
  const auto n = emu.network().num_nodes();
  for (topo::NodeId s = 0; s < n && !found_split; ++s) {
    for (topo::NodeId d = 0; d < n && !found_split; ++d) {
      if (s == d) continue;
      std::set<std::vector<topo::NodeId>> traces;
      for (std::uint64_t e = 0; e < 64; ++e) {
        const auto r = emu.send_packet(s, emu.address_of(d),
                                       PriorityClass::kLow, e * 131);
        if (r.outcome == ForwardOutcome::kDelivered) traces.insert(r.trace);
      }
      if (traces.size() > 1) found_split = true;
    }
  }
  EXPECT_TRUE(found_split);
}

TEST(Emulation, MessageComplexityLinearInLinksPerOrigination) {
  // Flooding delivers each NSU at most once per link: bootstrap of n
  // routers sends O(n * links) messages, not more.
  auto emu = make_emulation(topo::make_abilene());
  emu.bootstrap();
  const auto& t = emu.network();
  EXPECT_LE(emu.messages_delivered(), t.num_nodes() * t.num_links());
}

}  // namespace
}  // namespace dsdn::sim

namespace dsdn::sim {
namespace {

TEST(Emulation, ControllersProgramLocalBypasses) {
  auto emu = make_emulation(topo::make_abilene());
  emu.bootstrap();
  // Every router with >= 2 up links should protect its links locally.
  std::size_t protected_links = 0;
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    protected_links += emu.at(n).bypass.num_protected_links();
  }
  EXPECT_GT(protected_links, emu.network().num_links() / 2);
}

TEST(Emulation, PartialCapacityLossRebalancesTraffic) {
  // One fat demand on a direct link; halving the link's capacity must
  // push part of the demand onto an alternate path after reconvergence.
  topo::Topology topo = topo::make_fig5();  // R0-R1 direct + via R2
  traffic::TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 80.0});
  DsdnEmulation emu(topo, tm);
  emu.bootstrap();

  const topo::LinkId direct = emu.network().find_link(0, 1);
  // Healthy: everything fits the 100G direct link.
  std::set<std::vector<topo::NodeId>> healthy_paths;
  for (std::uint64_t e = 0; e < 64; ++e) {
    healthy_paths.insert(
        emu.send_packet(0, emu.address_of(1), PriorityClass::kHigh, e)
            .trace);
  }
  EXPECT_EQ(healthy_paths.size(), 1u);

  emu.degrade_fiber(direct, 50.0);
  EXPECT_TRUE(emu.views_converged());
  // Every controller's view reflects the degraded capacity.
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    EXPECT_DOUBLE_EQ(emu.controller(n).state().view().link(direct)
                         .capacity_gbps,
                     50.0);
  }
  // The 80G demand no longer fits one 50G link: flows must now split.
  std::set<std::vector<topo::NodeId>> degraded_paths;
  for (std::uint64_t e = 0; e < 64; ++e) {
    const auto r =
        emu.send_packet(0, emu.address_of(1), PriorityClass::kHigh, e * 31);
    EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
    degraded_paths.insert(r.trace);
  }
  EXPECT_GT(degraded_paths.size(), 1u);

  // Restoration returns all traffic to the direct path.
  emu.degrade_fiber(direct, 100.0);
  std::set<std::vector<topo::NodeId>> restored_paths;
  for (std::uint64_t e = 0; e < 64; ++e) {
    restored_paths.insert(
        emu.send_packet(0, emu.address_of(1), PriorityClass::kHigh, e)
            .trace);
  }
  EXPECT_EQ(restored_paths.size(), 1u);
}

TEST(Emulation, IncrementalTeConvergesUnderChurn) {
  // Full network emulation with warm-start TE and the differential
  // checker armed (te_diff_check makes a violation throw): fiber cut,
  // repair, and a crash recovery must all converge with every router
  // delivering, and routers must actually take the warm path after the
  // initial bootstrap solve.
  topo::Topology topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.5;
  auto tm = traffic::generate_gravity(topo, gp);
  EmulationConfig cfg;
  cfg.incremental_te = true;
  cfg.te_diff_check = true;
  DsdnEmulation emu(topo, std::move(tm), cfg);
  emu.bootstrap();
  EXPECT_TRUE(emu.views_converged());

  const topo::LinkId fiber = emu.network().find_link(0, 1);
  emu.fail_fiber(fiber);
  EXPECT_TRUE(emu.views_converged());
  const auto r = emu.send_packet(0, emu.address_of(1));
  ASSERT_EQ(r.outcome, ForwardOutcome::kDelivered);

  emu.repair_fiber(fiber);
  EXPECT_TRUE(emu.views_converged());

  // A crashed controller restarts cold and still rejoins.
  emu.crash_and_recover(3);
  EXPECT_TRUE(emu.views_converged());

  std::size_t warm_solves = 0, violations = 0;
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    const te::IncrementalSolver* inc = emu.controller(n).incremental_solver();
    ASSERT_NE(inc, nullptr);
    warm_solves += inc->incremental_solves();
    violations += inc->checker_violations();
  }
  EXPECT_GT(warm_solves, 0u);
  EXPECT_EQ(violations, 0u);

  // Consensus-free property holds on the warm path: identical digests.
  const auto digest0 = emu.controller(0).state().digest();
  for (topo::NodeId n = 1; n < emu.network().num_nodes(); ++n) {
    EXPECT_EQ(emu.controller(n).state().digest(), digest0);
  }
}

TEST(Emulation, FleetWideSurgeFloodsOnlyDemandOrigins) {
  // Regression (flood amplification): a fleet-wide surge used to
  // re-originate every router, including routers with no demand rows at
  // all. The per-origin diff must keep silent routers silent -- their
  // own NSU sequence numbers do not move.
  auto topo = topo::make_ring(5);
  traffic::TrafficMatrix tm;
  tm.add({0, 2, PriorityClass::kHigh, 5.0});
  tm.add({1, 3, PriorityClass::kLow, 3.0});
  DsdnEmulation emu(std::move(topo), std::move(tm));
  emu.bootstrap();

  std::vector<std::uint64_t> seq_before;
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    seq_before.push_back(emu.controller(n).state().seq_of(n));
  }

  emu.scale_demands(2.0);  // origin == kInvalidNode: everyone surges
  EXPECT_TRUE(emu.views_converged());
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    const std::uint64_t seq = emu.controller(n).state().seq_of(n);
    if (n <= 1) {
      EXPECT_EQ(seq, seq_before[n] + 1) << "origin " << n;
    } else {
      EXPECT_EQ(seq, seq_before[n]) << "demand-less router " << n
                                    << " re-originated";
    }
  }
  // The doubled demand reached every view.
  EXPECT_NEAR(emu.controller(4).state().demands().total_rate_gbps(), 16.0,
              1e-9);

  // A no-op surge floods nothing anywhere.
  const std::size_t messages_before = emu.messages_delivered();
  emu.scale_demands(1.0);
  EXPECT_EQ(emu.messages_delivered(), messages_before);
}

}  // namespace
}  // namespace dsdn::sim
