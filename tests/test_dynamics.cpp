#include <gtest/gtest.h>

#include <cmath>

#include "traffic/dynamics.hpp"
#include "traffic/gravity.hpp"
#include "topo/zoo.hpp"

namespace dsdn::traffic {
namespace {

using metrics::PriorityClass;

TrafficMatrix small_base() {
  TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 10.0});
  tm.add({0, 2, PriorityClass::kLow, 4.0});
  tm.add({1, 2, PriorityClass::kHigh, 6.0});
  tm.add({2, 0, PriorityClass::kHigh, 8.0});
  return tm;
}

TEST(Dynamics, ValidatesOptions) {
  EXPECT_THROW(
      DemandDynamics(small_base(), {.diurnal_amplitude = 1.0}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      DemandDynamics(small_base(), {.regional_max_shift = -0.1}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      DemandDynamics(small_base(), {.flash_prob_per_epoch = 1.5}, 1),
      std::invalid_argument);
  EXPECT_THROW(
      DemandDynamics(TrafficMatrix{}, {.flash_prob_per_epoch = 0.5}, 1),
      std::invalid_argument);
}

TEST(Dynamics, IdentityWhenAllProcessesDisabled) {
  DemandDynamics dyn(small_base(), {}, 42);
  const auto base = small_base().aggregated();
  for (std::uint64_t e : {0u, 1u, 17u, 300u}) {
    EXPECT_EQ(dyn.matrix_at(e).demands(), base.demands()) << "epoch " << e;
  }
}

TEST(Dynamics, DiurnalCycleOscillatesAndAveragesOut) {
  DemandDynamicsOptions opt;
  opt.diurnal_amplitude = 0.4;
  opt.diurnal_period_epochs = 24.0;
  DemandDynamics dyn(small_base(), opt, 7);

  const double base_total = small_base().total_rate_gbps();
  double lo = 1e18, hi = 0.0, sum = 0.0;
  for (std::uint64_t e = 0; e < 24; ++e) {
    const double t = dyn.matrix_at(e).total_rate_gbps();
    lo = std::min(lo, t);
    hi = std::max(hi, t);
    sum += t;
  }
  EXPECT_LT(lo, base_total);
  EXPECT_GT(hi, base_total);
  // Per-origin phases differ, but each origin averages to its base over
  // a full period.
  EXPECT_NEAR(sum / 24.0, base_total, 0.02 * base_total);
  // One full period later the matrix repeats (up to sin() rounding on
  // the shifted argument -- bit identity only holds for equal epochs).
  EXPECT_NEAR(dyn.matrix_at(27).total_rate_gbps(),
              dyn.matrix_at(3).total_rate_gbps(),
              1e-9 * base_total);
}

TEST(Dynamics, RegionalShiftRampsMonotonically) {
  DemandDynamicsOptions opt;
  opt.regional_max_shift = 0.5;
  opt.regional_horizon_epochs = 100;
  DemandDynamics dyn(small_base(), opt, 11);

  // Every row moves monotonically toward (1 +/- 0.5) * base and clamps
  // at the horizon.
  const auto at0 = dyn.matrix_at(0).demands();
  const auto at50 = dyn.matrix_at(50).demands();
  const auto at100 = dyn.matrix_at(100).demands();
  const auto at200 = dyn.matrix_at(200).demands();
  ASSERT_EQ(at0.size(), at100.size());
  bool some_up = false, some_down = false;
  for (std::size_t i = 0; i < at0.size(); ++i) {
    if (at100[i].rate_gbps > at0[i].rate_gbps) {
      some_up = true;
      EXPECT_GT(at50[i].rate_gbps, at0[i].rate_gbps);
      EXPECT_LT(at50[i].rate_gbps, at100[i].rate_gbps);
    } else {
      some_down = true;
      EXPECT_LT(at50[i].rate_gbps, at0[i].rate_gbps);
    }
    EXPECT_DOUBLE_EQ(at100[i].rate_gbps, at200[i].rate_gbps);
  }
  EXPECT_TRUE(some_up || some_down);
}

TEST(Dynamics, FlashCrowdsRampHoldDecayAndVanish) {
  // A single pre-drawn event (low probability, tiny horizon makes one
  // event overwhelmingly likely to be isolated enough to observe).
  DemandDynamicsOptions opt;
  opt.flash_prob_per_epoch = 0.2;
  opt.flash_ramp_epochs = 2;
  opt.flash_hold_epochs = 3;
  opt.flash_decay_epochs = 4;
  opt.horizon_epochs = 64;
  DemandDynamics dyn(small_base(), opt, 123);

  ASSERT_FALSE(dyn.flash_events().empty());
  const auto& ev = dyn.flash_events().front();
  const double base_total = small_base().total_rate_gbps();

  // Before its start the event contributes nothing.
  if (ev.start_epoch > 0) {
    EXPECT_GE(dyn.matrix_at(ev.start_epoch - 1).total_rate_gbps(),
              base_total - 1e-9);
  }
  // During hold, total demand strictly exceeds the base.
  const std::uint64_t hold_epoch = ev.start_epoch + ev.ramp;
  EXPECT_GT(dyn.matrix_at(hold_epoch).total_rate_gbps(), base_total);
  // The ramp is monotone up into the hold plateau.
  if (ev.ramp >= 2) {
    EXPECT_LT(dyn.matrix_at(ev.start_epoch).total_rate_gbps(),
              dyn.matrix_at(hold_epoch).total_rate_gbps());
  }
}

TEST(Dynamics, NewFlowFlashTargetsKeyAbsentFromBase) {
  DemandDynamicsOptions opt;
  opt.flash_prob_per_epoch = 0.5;
  opt.flash_new_flow_prob = 1.0;
  opt.horizon_epochs = 64;
  DemandDynamics dyn(small_base(), opt, 99);

  const auto base = small_base().aggregated();
  bool found_new = false;
  for (const auto& ev : dyn.flash_events()) {
    if (!ev.new_row) continue;
    found_new = true;
    for (const auto& d : base.demands()) {
      EXPECT_FALSE(d.src == ev.row.src && d.dst == ev.row.dst &&
                   d.priority == ev.row.priority)
          << "flash event targets a base key";
    }
    EXPECT_NE(ev.row.src, ev.row.dst);
  }
  EXPECT_TRUE(found_new);
}

TEST(Dynamics, BitIdenticalUnderSameSeed) {
  // Property: generator output is bit-identical under the same seed,
  // including across option processes and a real topology base.
  const auto topo = topo::make_abilene();
  const auto base = generate_gravity(topo, {.seed = 5});

  DemandDynamicsOptions opt;
  opt.diurnal_amplitude = 0.3;
  opt.regional_max_shift = 0.2;
  opt.flash_prob_per_epoch = 0.1;
  opt.jitter_sigma = 0.05;
  opt.horizon_epochs = 128;

  for (std::uint64_t seed : {1ull, 42ull, 0xDEADBEEFull}) {
    DemandDynamics a(base, opt, seed);
    DemandDynamics b(base, opt, seed);
    ASSERT_EQ(a.flash_events().size(), b.flash_events().size());
    for (std::uint64_t e = 0; e < 128; e += 7) {
      const auto ma = a.matrix_at(e);
      const auto mb = b.matrix_at(e);
      ASSERT_EQ(ma.size(), mb.size());
      // operator== on Demand is exact (bit identity on the rate).
      EXPECT_EQ(ma.demands(), mb.demands()) << "seed " << seed
                                            << " epoch " << e;
    }
  }

  // And a different seed actually changes the output.
  DemandDynamics a(base, opt, 1);
  DemandDynamics c(base, opt, 2);
  EXPECT_NE(a.matrix_at(13).demands(), c.matrix_at(13).demands());
}

}  // namespace
}  // namespace dsdn::traffic
