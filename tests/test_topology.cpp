#include <gtest/gtest.h>

#include "topo/builder.hpp"
#include "topo/prefix.hpp"
#include "topo/synthetic.hpp"
#include "topo/topology.hpp"
#include "topo/zoo.hpp"

namespace dsdn::topo {
namespace {

TEST(Topology, AddNodesAndLinks) {
  Topology t;
  const NodeId a = t.add_node("a", "metro-a");
  const NodeId b = t.add_node("b");
  const LinkId l = t.add_link(a, b, 100.0, 2.0, 0.005);
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_links(), 1u);
  EXPECT_EQ(t.link(l).src, a);
  EXPECT_EQ(t.link(l).dst, b);
  EXPECT_EQ(t.node(b).metro, "b");  // metro defaults to name
  EXPECT_EQ(t.node(a).metro, "metro-a");
  t.validate();
}

TEST(Topology, RejectsBadLinks) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  EXPECT_THROW(t.add_link(a, a, 10), std::invalid_argument);
  EXPECT_THROW(t.add_link(a, 99, 10), std::out_of_range);
  EXPECT_THROW(t.add_link(a, b, 0.0), std::invalid_argument);
}

TEST(Topology, DuplexCrossReferences) {
  Topology t;
  const NodeId a = t.add_node("a");
  const NodeId b = t.add_node("b");
  const LinkId fwd = t.add_duplex(a, b, 10);
  const LinkId rev = t.link(fwd).reverse;
  ASSERT_NE(rev, kInvalidLink);
  EXPECT_EQ(t.link(rev).src, b);
  EXPECT_EQ(t.link(rev).reverse, fwd);
}

TEST(Topology, SetDuplexUpTogglesBothDirections) {
  Topology t = make_line(3);
  const LinkId l = t.find_link(0, 1);
  ASSERT_NE(l, kInvalidLink);
  t.set_duplex_up(l, false);
  EXPECT_FALSE(t.link(l).up);
  EXPECT_FALSE(t.link(t.link(l).reverse).up);
  EXPECT_EQ(t.find_link(0, 1), kInvalidLink);  // find_link skips down links
  t.set_duplex_up(l, true);
  EXPECT_NE(t.find_link(0, 1), kInvalidLink);
}

TEST(Topology, UpNeighborsReflectLinkState) {
  Topology t = make_ring(4);
  EXPECT_EQ(t.up_neighbors(0).size(), 2u);
  t.set_duplex_up(t.find_link(0, 1), false);
  EXPECT_EQ(t.up_neighbors(0).size(), 1u);
}

TEST(Builder, BuildsFromSpecsWithImplicitNodes) {
  Topology t = build_from_specs({{"x", "", 2.0}}, {{"x", "y", 40, 1, 3.0}});
  EXPECT_EQ(t.num_nodes(), 2u);
  EXPECT_EQ(t.num_links(), 2u);  // duplex
  EXPECT_DOUBLE_EQ(t.link(0).capacity_gbps, 40.0);
  EXPECT_NEAR(t.link(0).delay_s, 0.003, 1e-12);
}

TEST(Builder, RejectsDuplicateNames) {
  EXPECT_THROW(build_from_specs({{"x", "", 1.0}, {"x", "", 1.0}}, {}), std::invalid_argument);
}

TEST(Builder, ConnectivityAndDiameter) {
  Topology line = make_line(5);
  EXPECT_TRUE(is_strongly_connected(line));
  EXPECT_EQ(hop_diameter(line), 4u);
  line.set_duplex_up(line.find_link(1, 2), false);
  EXPECT_FALSE(is_strongly_connected(line));
}

TEST(Zoo, AbileneMatchesHistoricalShape) {
  const Topology t = make_abilene();
  EXPECT_EQ(t.num_nodes(), 11u);
  EXPECT_EQ(t.num_links(), 28u);  // 14 circuits, duplex
  EXPECT_TRUE(is_strongly_connected(t));
  t.validate();
}

TEST(Zoo, CatalogNodeCountsMatchPaper) {
  for (const auto& entry : zoo_catalog()) {
    const Topology t = entry.factory();
    EXPECT_EQ(t.num_nodes(), entry.expected_nodes) << entry.name;
    EXPECT_TRUE(is_strongly_connected(t)) << entry.name;
    t.validate();
  }
}

TEST(Synthetic, B4LikeScale) {
  const Topology t = make_b4_like();
  // O(100) nodes (§5.1.1).
  EXPECT_GE(t.num_nodes(), 80u);
  EXPECT_LE(t.num_nodes(), 150u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_GT(t.metros().size(), 20u);
}

TEST(Synthetic, B2LargerThanB4PerPaper) {
  // §5.3: B2 has ~6x more nodes and ~10x more links than B4.
  const Topology b4 = make_b4_like();
  const Topology b2 = make_b2_like();
  const double node_ratio = static_cast<double>(b2.num_nodes()) /
                            static_cast<double>(b4.num_nodes());
  const double link_ratio = static_cast<double>(b2.num_links()) /
                            static_cast<double>(b4.num_links());
  EXPECT_GE(node_ratio, 4.0);
  EXPECT_LE(node_ratio, 12.0);
  EXPECT_GE(link_ratio, 4.0);
  EXPECT_TRUE(is_strongly_connected(b2));
}

TEST(Synthetic, GrowthSnapshotsGrow) {
  const auto snaps = b2_growth_snapshots(6, 0.5);
  ASSERT_EQ(snaps.size(), 6u);
  for (std::size_t i = 1; i < snaps.size(); ++i) {
    EXPECT_GT(snaps[i].topo.num_nodes(), snaps[i - 1].topo.num_nodes());
  }
}

TEST(Synthetic, GeneratorsAreDeterministic) {
  const Topology a = make_b4_like();
  const Topology b = make_b4_like();
  ASSERT_EQ(a.num_links(), b.num_links());
  for (std::size_t l = 0; l < a.num_links(); ++l) {
    EXPECT_EQ(a.link(static_cast<LinkId>(l)).src,
              b.link(static_cast<LinkId>(l)).src);
    EXPECT_EQ(a.link(static_cast<LinkId>(l)).dst,
              b.link(static_cast<LinkId>(l)).dst);
  }
}

TEST(Synthetic, Fig5HasParallelPaths) {
  const Topology t = make_fig5();
  EXPECT_EQ(t.num_nodes(), 3u);
  EXPECT_TRUE(is_strongly_connected(t));
  EXPECT_NE(t.find_link(0, 1), kInvalidLink);  // direct
  EXPECT_NE(t.find_link(0, 2), kInvalidLink);  // via R2
}

TEST(Prefix, ParseAndFormatRoundTrip) {
  EXPECT_EQ(format_ipv4(parse_ipv4("10.1.2.3")), "10.1.2.3");
  EXPECT_THROW(parse_ipv4("300.1.1.1"), std::invalid_argument);
}

TEST(Prefix, ContainsRespectsMask) {
  Prefix p{parse_ipv4("10.1.2.0"), 24};
  EXPECT_TRUE(p.contains(parse_ipv4("10.1.2.77")));
  EXPECT_FALSE(p.contains(parse_ipv4("10.1.3.77")));
  EXPECT_EQ(p.to_string(), "10.1.2.0/24");
}

TEST(Prefix, LongestPrefixMatchWins) {
  PrefixTable table;
  table.insert({parse_ipv4("10.0.0.0"), 8}, 1);
  table.insert({parse_ipv4("10.1.0.0"), 16}, 2);
  table.insert({parse_ipv4("10.1.2.0"), 24}, 3);
  EXPECT_EQ(table.lookup(parse_ipv4("10.1.2.9")).value(), 3u);
  EXPECT_EQ(table.lookup(parse_ipv4("10.1.9.9")).value(), 2u);
  EXPECT_EQ(table.lookup(parse_ipv4("10.9.9.9")).value(), 1u);
  EXPECT_FALSE(table.lookup(parse_ipv4("11.0.0.1")).has_value());
}

TEST(Prefix, InsertReplacesAndEraseRemoves) {
  PrefixTable table;
  Prefix p{parse_ipv4("10.1.2.0"), 24};
  table.insert(p, 1);
  table.insert(p, 2);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.lookup(parse_ipv4("10.1.2.1")).value(), 2u);
  table.erase(p);
  EXPECT_FALSE(table.lookup(parse_ipv4("10.1.2.1")).has_value());
}

TEST(Prefix, RouterPrefixesAreUniqueAndCoverHosts) {
  const Topology t = make_b4_like();
  const auto prefixes = assign_router_prefixes(t);
  ASSERT_EQ(prefixes.size(), t.num_nodes());
  PrefixTable table;
  for (NodeId n = 0; n < t.num_nodes(); ++n) table.insert(prefixes[n], n);
  EXPECT_EQ(table.size(), t.num_nodes());  // no collisions
  for (NodeId n = 0; n < t.num_nodes(); ++n) {
    EXPECT_EQ(table.lookup(host_in(prefixes[n])).value(), n);
  }
}

}  // namespace
}  // namespace dsdn::topo
