// Seed-swarm runner for the deterministic scenario harness: N seeds x
// {Abilene, B4-like, B2-small}, each seed a long-horizon churn schedule
// executed with the full invariant suite after every event. On the
// first failing seed it prints the minimal event-schedule prefix (greedy
// event bisection) plus the exact command to replay it, and exits 1.
//
//   scenario_swarm [--topo abilene|b4|b2small|all] [--seeds N]
//                  [--start S] [--events N] [--lossy] [--bug]
//                  [--no-parity] [--artifact-dir DIR] [--planes K]
//                  [--closed-loop] [--epochs N] [--sr]
//
// --sr runs every seed with a mixed-algorithm fleet: most routers run
// segment routing, a third stay on strict max-min TE, and every seventh
// is a legacy shortest-path box -- so churn, crashes, and lossy floods
// all exercise the SR dataplane and the mixed-fleet consensus story.
//
// --planes K > 0 switches to the hierarchical plane swarm: the same
// topologies, but each seed drives K sharded dSDN planes through
// plane-local cuts, cross-plane SRLG conduit cuts, and plane
// crash/rebalance/restore (hier/scenario.hpp) instead of the flat
// single-plane schedule.
//
// --closed-loop switches to the online-TE swarm: each seed drives the
// closed loop (estimated demand only, diurnal + flash-crowd dynamics,
// hybrid recompute policy, --events link-churn events) for --epochs
// measurement epochs with the invariant suite sampled along the way
// (sim/online.hpp). A seed fails on any invariant violation.
//
// --bug plants the kSkipReprogramOnCut fault (a router that skips
// down-link zeroing) to prove the swarm catches real bugs and shrinks
// them; the run is then *expected* to fail.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "hier/scenario.hpp"
#include "sim/online.hpp"
#include "sim/scenario.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace {

using namespace dsdn;

struct SwarmConfig {
  const char* name;
  topo::Topology topo;
  traffic::TrafficMatrix tm;
  sim::ScenarioOptions options;
};

// --sr fleet assignment: deterministic per node id so every seed (and
// every replay) sees the same mixed fleet.
std::vector<core::PathingAlgorithm> sr_fleet(std::size_t num_nodes) {
  std::vector<core::PathingAlgorithm> algos(num_nodes);
  for (std::size_t n = 0; n < num_nodes; ++n) {
    if (n % 3 == 1) {
      algos[n] = core::PathingAlgorithm::kMaxMinFairTe;
    } else if (n % 7 == 5) {
      algos[n] = core::PathingAlgorithm::kShortestPath;
    } else {
      algos[n] = core::PathingAlgorithm::kSegmentRouting;
    }
  }
  return algos;
}

SwarmConfig make_config(const std::string& name, std::size_t n_events,
                        bool lossy, bool bug, bool parity) {
  SwarmConfig cfg;
  cfg.name = "";
  if (name == "abilene") {
    cfg.topo = topo::make_abilene();
    traffic::GravityParams gp;
    gp.target_max_utilization = 0.5;
    cfg.tm = traffic::generate_gravity(cfg.topo, gp);
  } else if (name == "b4") {
    cfg.topo = topo::make_b4_like();
    traffic::GravityParams gp;
    gp.pair_fraction = 0.15;
    gp.target_max_utilization = 0.5;
    cfg.tm = traffic::generate_gravity(cfg.topo, gp);
  } else if (name == "b2small") {
    topo::B2LikeParams bp;
    bp.scale = 0.125;  // ~120 routers: B2's style at CI-budget size
    cfg.topo = topo::make_b2_like(bp);
    traffic::GravityParams gp;
    gp.pair_fraction = 0.05;
    gp.target_max_utilization = 0.5;
    cfg.tm = traffic::generate_gravity(cfg.topo, gp);
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", name.c_str());
    std::exit(2);
  }
  cfg.options.n_events = n_events;
  cfg.options.lossy_flooding = lossy;
  cfg.options.invariants.check_solution_parity = parity;
  if (bug) cfg.options.bug = sim::ScenarioBug::kSkipReprogramOnCut;
  return cfg;
}

// Default event counts scale down with topology size: every event pays
// a full reconvergence (flood + recompute on every router).
std::size_t default_events(const std::string& name) {
  if (name == "abilene") return 24;
  if (name == "b4") return 10;
  return 8;  // b2small
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> topos = {"abilene"};
  std::size_t n_seeds = 32;
  std::uint64_t start = 1;
  std::size_t events = 0;  // 0 = per-topology default
  bool lossy = false;
  bool bug = false;
  bool parity = true;
  std::string artifact_dir;
  std::size_t planes = 0;      // > 0: hierarchical plane swarm
  bool closed_loop = false;    // online-TE closed loop instead of churn
  std::uint64_t epochs = 64;   // measurement epochs per closed-loop seed
  bool sr = false;             // mixed SR / strict-TE / shortest-path fleet

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--topo") {
      const std::string t = next();
      topos = t == "all" ? std::vector<std::string>{"abilene", "b4",
                                                    "b2small"}
                         : std::vector<std::string>{t};
    } else if (arg == "--seeds") {
      n_seeds = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--events") {
      events = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--lossy") {
      lossy = true;
    } else if (arg == "--bug") {
      bug = true;
    } else if (arg == "--no-parity") {
      parity = false;
    } else if (arg == "--artifact-dir") {
      artifact_dir = next();
    } else if (arg == "--planes") {
      planes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--closed-loop") {
      closed_loop = true;
    } else if (arg == "--epochs") {
      epochs = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--sr") {
      sr = true;
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (planes > 0 && bug) {
    std::fprintf(stderr, "--bug is a flat-scenario fault; drop --planes\n");
    return 2;
  }
  if (closed_loop && (planes > 0 || bug)) {
    std::fprintf(stderr, "--closed-loop composes with neither --planes "
                         "nor --bug\n");
    return 2;
  }
  if (sr && (planes > 0 || closed_loop)) {
    std::fprintf(stderr, "--sr is a flat-scenario fleet; drop --planes / "
                         "--closed-loop\n");
    return 2;
  }

  bool failed = false;
  for (const std::string& name : topos) {
    if (closed_loop) {
      const std::size_t churn = events ? events : 4;
      SwarmConfig cfg = make_config(name, churn, lossy, false, parity);
      sim::OnlineTeOptions options;
      options.epochs = epochs;
      options.dynamics.diurnal_amplitude = 0.25;
      options.dynamics.diurnal_period_epochs = 96.0;
      options.dynamics.flash_prob_per_epoch = 0.03;
      options.estimator.alpha = 0.4;
      options.estimator.floor_gbps = 0.005;  // workload-relative (see bench)
      options.policy.kind = te::RecomputeTrigger::kHybrid;
      options.policy.period_epochs = 16;
      options.policy.drift_threshold = 0.10;
      options.churn_events = churn;
      options.check_every = 16;
      options.invariants.check_solution_parity = parity;
      std::printf("[%s] %zu nodes, %zu links, %zu demands; closed loop, "
                  "%zu seeds x %llu epochs, %zu churn events\n",
                  name.c_str(), cfg.topo.num_nodes(), cfg.topo.num_links(),
                  cfg.tm.size(), n_seeds,
                  static_cast<unsigned long long>(epochs), churn);
      std::fflush(stdout);

      double worst_regret = 0.0;
      std::size_t recomputes = 0, checks = 0, applied = 0;
      bool topo_failed = false;
      for (std::uint64_t seed = start; seed < start + n_seeds; ++seed) {
        const sim::OnlineTeResult r =
            sim::run_online_te(cfg.topo, cfg.tm, options, seed);
        worst_regret = std::max(worst_regret, r.regret_fraction);
        recomputes += r.recomputes;
        checks += r.invariant_checks;
        applied += r.churn_applied;
        if (!r.ok()) {
          failed = topo_failed = true;
          std::printf("[%s] FAIL at seed %llu (epoch horizon %llu)\n",
                      name.c_str(), static_cast<unsigned long long>(seed),
                      static_cast<unsigned long long>(r.epochs));
          for (const auto& v : r.violations)
            std::printf("  violation: %s\n", v.c_str());
          std::printf("  replay: scenario_swarm --topo %s --closed-loop "
                      "--seeds 1 --start %llu --epochs %llu --events %zu%s\n",
                      name.c_str(), static_cast<unsigned long long>(seed),
                      static_cast<unsigned long long>(epochs), churn,
                      parity ? "" : " --no-parity");
          break;
        }
      }
      if (!topo_failed) {
        std::printf("[%s] PASS: closed-loop seeds [%llu, %llu) clean "
                    "(%zu invariant checks, %zu churn events, "
                    "%zu recomputes, worst regret %.2f%%)\n",
                    name.c_str(), static_cast<unsigned long long>(start),
                    static_cast<unsigned long long>(start + n_seeds), checks,
                    applied, recomputes, 100.0 * worst_regret);
      }
      if (topo_failed) break;
      continue;
    }
    if (planes > 0) {
      // Hierarchical plane swarm: plane-targeted events + the cross-plane
      // checker battery (conservation, HRW placement, blast radius).
      const std::size_t n_events = events ? events : 8;
      SwarmConfig cfg = make_config(name, n_events, lossy, false, parity);
      hier::PlaneScenarioOptions options;
      options.planes = planes;
      options.n_events = n_events;
      options.invariants.check_solution_parity = parity;
      std::printf("[%s] %zu nodes, %zu links, %zu demands; %zu planes, "
                  "%zu seeds x %zu events\n",
                  name.c_str(), cfg.topo.num_nodes(), cfg.topo.num_links(),
                  cfg.tm.size(), planes, n_seeds, n_events);
      std::fflush(stdout);
      const auto failure = hier::run_plane_swarm(cfg.topo, cfg.tm, options,
                                                 start, n_seeds);
      if (failure) {
        failed = true;
        std::printf("[%s] FAIL at seed %llu\n", name.c_str(),
                    static_cast<unsigned long long>(failure->seed));
        for (const auto& e : failure->result.events)
          std::printf("  event: %s\n", e.c_str());
        for (const auto& v : failure->result.violations)
          std::printf("  violation: %s\n", v.c_str());
        std::printf("  replay: scenario_swarm --topo %s --planes %zu "
                    "--seeds 1 --start %llu --events %zu%s\n",
                    name.c_str(), planes,
                    static_cast<unsigned long long>(failure->seed), n_events,
                    parity ? "" : " --no-parity");
        break;
      }
      std::printf("[%s] PASS: plane seeds [%llu, %llu) clean\n", name.c_str(),
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(start + n_seeds));
      continue;
    }
    const std::size_t n_events = events ? events : default_events(name);
    SwarmConfig cfg = make_config(name, n_events, lossy, bug, parity);
    if (sr) cfg.options.algorithms = sr_fleet(cfg.topo.num_nodes());
    std::printf("[%s] %zu nodes, %zu links, %zu demands; %zu seeds x %zu "
                "events%s%s%s\n",
                name.c_str(), cfg.topo.num_nodes(), cfg.topo.num_links(),
                cfg.tm.size(), n_seeds, n_events, lossy ? ", lossy" : "",
                bug ? ", bug planted" : "",
                sr ? ", mixed SR fleet" : "");
    std::fflush(stdout);

    const std::optional<sim::SwarmFailure> failure = sim::run_seed_swarm(
        cfg.topo, cfg.tm, cfg.options, start, n_seeds);
    if (failure) {
      failed = true;
      std::printf("[%s] FAIL at seed %llu "
                  "(first violation after event #%d)\n%s",
                  name.c_str(),
                  static_cast<unsigned long long>(failure->seed),
                  failure->result.first_violation_event,
                  failure->reproducer.c_str());
      std::printf("  replay: scenario_swarm --topo %s --seeds 1 --start "
                  "%llu --events %zu%s%s%s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(failure->seed), n_events,
                  lossy ? " --lossy" : "", bug ? " --bug" : "",
                  sr ? " --sr" : "");
      if (bug) continue;  // expected to fail; keep demonstrating
      break;
    }
    std::printf("[%s] PASS: seeds [%llu, %llu) clean\n", name.c_str(),
                static_cast<unsigned long long>(start),
                static_cast<unsigned long long>(start + n_seeds));

    if (!artifact_dir.empty()) {
      const sim::Scenario scenario(cfg.topo, cfg.tm, cfg.options, start);
      const sim::ScenarioResult result = scenario.run();
      const obs::RunArtifact artifact = scenario.artifact(
          result, "scenario_" + name + (sr ? "_sr" : ""));
      if (!artifact.write(artifact_dir)) {
        std::fprintf(stderr, "[%s] artifact write failed\n", name.c_str());
      }
    }
  }
  return failed ? 1 : 0;
}
