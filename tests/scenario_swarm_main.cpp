// Seed-swarm runner for the deterministic scenario harness: N seeds x
// {Abilene, B4-like, B2-small}, each seed a long-horizon churn schedule
// executed with the full invariant suite after every event. On the
// first failing seed it prints the minimal event-schedule prefix (greedy
// event bisection) plus the exact command to replay it, and exits 1.
//
//   scenario_swarm [--topo abilene|b4|b2small|all] [--seeds N]
//                  [--start S] [--events N] [--lossy] [--bug]
//                  [--no-parity] [--artifact-dir DIR] [--planes K]
//
// --planes K > 0 switches to the hierarchical plane swarm: the same
// topologies, but each seed drives K sharded dSDN planes through
// plane-local cuts, cross-plane SRLG conduit cuts, and plane
// crash/rebalance/restore (hier/scenario.hpp) instead of the flat
// single-plane schedule.
//
// --bug plants the kSkipReprogramOnCut fault (a router that skips
// down-link zeroing) to prove the swarm catches real bugs and shrinks
// them; the run is then *expected* to fail.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "hier/scenario.hpp"
#include "sim/scenario.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace {

using namespace dsdn;

struct SwarmConfig {
  const char* name;
  topo::Topology topo;
  traffic::TrafficMatrix tm;
  sim::ScenarioOptions options;
};

SwarmConfig make_config(const std::string& name, std::size_t n_events,
                        bool lossy, bool bug, bool parity) {
  SwarmConfig cfg;
  cfg.name = "";
  if (name == "abilene") {
    cfg.topo = topo::make_abilene();
    traffic::GravityParams gp;
    gp.target_max_utilization = 0.5;
    cfg.tm = traffic::generate_gravity(cfg.topo, gp);
  } else if (name == "b4") {
    cfg.topo = topo::make_b4_like();
    traffic::GravityParams gp;
    gp.pair_fraction = 0.15;
    gp.target_max_utilization = 0.5;
    cfg.tm = traffic::generate_gravity(cfg.topo, gp);
  } else if (name == "b2small") {
    topo::B2LikeParams bp;
    bp.scale = 0.125;  // ~120 routers: B2's style at CI-budget size
    cfg.topo = topo::make_b2_like(bp);
    traffic::GravityParams gp;
    gp.pair_fraction = 0.05;
    gp.target_max_utilization = 0.5;
    cfg.tm = traffic::generate_gravity(cfg.topo, gp);
  } else {
    std::fprintf(stderr, "unknown topology '%s'\n", name.c_str());
    std::exit(2);
  }
  cfg.options.n_events = n_events;
  cfg.options.lossy_flooding = lossy;
  cfg.options.invariants.check_solution_parity = parity;
  if (bug) cfg.options.bug = sim::ScenarioBug::kSkipReprogramOnCut;
  return cfg;
}

// Default event counts scale down with topology size: every event pays
// a full reconvergence (flood + recompute on every router).
std::size_t default_events(const std::string& name) {
  if (name == "abilene") return 24;
  if (name == "b4") return 10;
  return 8;  // b2small
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> topos = {"abilene"};
  std::size_t n_seeds = 32;
  std::uint64_t start = 1;
  std::size_t events = 0;  // 0 = per-topology default
  bool lossy = false;
  bool bug = false;
  bool parity = true;
  std::string artifact_dir;
  std::size_t planes = 0;  // > 0: hierarchical plane swarm

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--topo") {
      const std::string t = next();
      topos = t == "all" ? std::vector<std::string>{"abilene", "b4",
                                                    "b2small"}
                         : std::vector<std::string>{t};
    } else if (arg == "--seeds") {
      n_seeds = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--start") {
      start = std::strtoull(next(), nullptr, 10);
    } else if (arg == "--events") {
      events = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else if (arg == "--lossy") {
      lossy = true;
    } else if (arg == "--bug") {
      bug = true;
    } else if (arg == "--no-parity") {
      parity = false;
    } else if (arg == "--artifact-dir") {
      artifact_dir = next();
    } else if (arg == "--planes") {
      planes = static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return 2;
    }
  }

  if (planes > 0 && bug) {
    std::fprintf(stderr, "--bug is a flat-scenario fault; drop --planes\n");
    return 2;
  }

  bool failed = false;
  for (const std::string& name : topos) {
    if (planes > 0) {
      // Hierarchical plane swarm: plane-targeted events + the cross-plane
      // checker battery (conservation, HRW placement, blast radius).
      const std::size_t n_events = events ? events : 8;
      SwarmConfig cfg = make_config(name, n_events, lossy, false, parity);
      hier::PlaneScenarioOptions options;
      options.planes = planes;
      options.n_events = n_events;
      options.invariants.check_solution_parity = parity;
      std::printf("[%s] %zu nodes, %zu links, %zu demands; %zu planes, "
                  "%zu seeds x %zu events\n",
                  name.c_str(), cfg.topo.num_nodes(), cfg.topo.num_links(),
                  cfg.tm.size(), planes, n_seeds, n_events);
      std::fflush(stdout);
      const auto failure = hier::run_plane_swarm(cfg.topo, cfg.tm, options,
                                                 start, n_seeds);
      if (failure) {
        failed = true;
        std::printf("[%s] FAIL at seed %llu\n", name.c_str(),
                    static_cast<unsigned long long>(failure->seed));
        for (const auto& e : failure->result.events)
          std::printf("  event: %s\n", e.c_str());
        for (const auto& v : failure->result.violations)
          std::printf("  violation: %s\n", v.c_str());
        std::printf("  replay: scenario_swarm --topo %s --planes %zu "
                    "--seeds 1 --start %llu --events %zu%s\n",
                    name.c_str(), planes,
                    static_cast<unsigned long long>(failure->seed), n_events,
                    parity ? "" : " --no-parity");
        break;
      }
      std::printf("[%s] PASS: plane seeds [%llu, %llu) clean\n", name.c_str(),
                  static_cast<unsigned long long>(start),
                  static_cast<unsigned long long>(start + n_seeds));
      continue;
    }
    const std::size_t n_events = events ? events : default_events(name);
    SwarmConfig cfg = make_config(name, n_events, lossy, bug, parity);
    std::printf("[%s] %zu nodes, %zu links, %zu demands; %zu seeds x %zu "
                "events%s%s\n",
                name.c_str(), cfg.topo.num_nodes(), cfg.topo.num_links(),
                cfg.tm.size(), n_seeds, n_events, lossy ? ", lossy" : "",
                bug ? ", bug planted" : "");
    std::fflush(stdout);

    const std::optional<sim::SwarmFailure> failure = sim::run_seed_swarm(
        cfg.topo, cfg.tm, cfg.options, start, n_seeds);
    if (failure) {
      failed = true;
      std::printf("[%s] FAIL at seed %llu "
                  "(first violation after event #%d)\n%s",
                  name.c_str(),
                  static_cast<unsigned long long>(failure->seed),
                  failure->result.first_violation_event,
                  failure->reproducer.c_str());
      std::printf("  replay: scenario_swarm --topo %s --seeds 1 --start "
                  "%llu --events %zu%s%s\n",
                  name.c_str(),
                  static_cast<unsigned long long>(failure->seed), n_events,
                  lossy ? " --lossy" : "", bug ? " --bug" : "");
      if (bug) continue;  // expected to fail; keep demonstrating
      break;
    }
    std::printf("[%s] PASS: seeds [%llu, %llu) clean\n", name.c_str(),
                static_cast<unsigned long long>(start),
                static_cast<unsigned long long>(start + n_seeds));

    if (!artifact_dir.empty()) {
      const sim::Scenario scenario(cfg.topo, cfg.tm, cfg.options, start);
      const sim::ScenarioResult result = scenario.run();
      const obs::RunArtifact artifact =
          scenario.artifact(result, "scenario_" + name);
      if (!artifact.write(artifact_dir)) {
        std::fprintf(stderr, "[%s] artifact write failed\n", name.c_str());
      }
    }
  }
  return failed ? 1 : 0;
}
