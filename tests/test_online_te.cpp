#include <gtest/gtest.h>

#include "sim/online.hpp"
#include "te/recompute_policy.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::te {
namespace {

using metrics::PriorityClass;

traffic::TrafficMatrix tm_of(std::vector<traffic::Demand> rows) {
  return traffic::TrafficMatrix(std::move(rows));
}

TEST(RecomputePolicy, ValidatesOptions) {
  EXPECT_THROW(RecomputePolicy({.period_epochs = 0}), std::invalid_argument);
  EXPECT_THROW(RecomputePolicy({.drift_threshold = -1.0}),
               std::invalid_argument);
}

TEST(RecomputePolicy, DriftFractionCoversUnionOfKeys) {
  const auto solved = tm_of({{0, 1, PriorityClass::kHigh, 10.0},
                             {0, 2, PriorityClass::kLow, 10.0}});
  // Unchanged view: zero drift.
  EXPECT_DOUBLE_EQ(RecomputePolicy::drift_fraction(solved, solved), 0.0);
  // One row moves by 5: 5/20.
  const auto moved = tm_of({{0, 1, PriorityClass::kHigh, 15.0},
                            {0, 2, PriorityClass::kLow, 10.0}});
  EXPECT_DOUBLE_EQ(RecomputePolicy::drift_fraction(solved, moved), 0.25);
  // A vanished row counts in full; so does a brand-new one.
  const auto swapped = tm_of({{0, 1, PriorityClass::kHigh, 10.0},
                              {3, 2, PriorityClass::kLow, 10.0}});
  EXPECT_DOUBLE_EQ(RecomputePolicy::drift_fraction(solved, swapped), 1.0);
  // Empty baseline: any nonzero view is full drift.
  EXPECT_DOUBLE_EQ(RecomputePolicy::drift_fraction(tm_of({}), solved), 1.0);
  EXPECT_DOUBLE_EQ(RecomputePolicy::drift_fraction(tm_of({}), tm_of({})),
                   0.0);
}

TEST(RecomputePolicy, PeriodicFiresOnCadence) {
  RecomputePolicy p({.kind = RecomputeTrigger::kPeriodic,
                     .period_epochs = 3});
  const auto view = tm_of({{0, 1, PriorityClass::kHigh, 10.0}});
  // No baseline yet: always fires.
  EXPECT_TRUE(p.on_epoch(view));
  p.note_recompute(view);
  EXPECT_FALSE(p.on_epoch(view));
  EXPECT_FALSE(p.on_epoch(view));
  EXPECT_TRUE(p.on_epoch(view));  // third epoch since the solve
  p.note_recompute(view);
  EXPECT_FALSE(p.on_epoch(view));
}

TEST(RecomputePolicy, ThresholdFiresOnDriftOnly) {
  RecomputePolicy p({.kind = RecomputeTrigger::kThreshold,
                     .drift_threshold = 0.2});
  const auto view = tm_of({{0, 1, PriorityClass::kHigh, 10.0}});
  EXPECT_TRUE(p.on_epoch(view));
  p.note_recompute(view);
  // 10% drift: below the bar, forever.
  const auto small = tm_of({{0, 1, PriorityClass::kHigh, 11.0}});
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(p.on_epoch(small));
  // 30% drift fires.
  const auto big = tm_of({{0, 1, PriorityClass::kHigh, 13.0}});
  EXPECT_TRUE(p.on_epoch(big));
}

TEST(RecomputePolicy, HybridCapsStaleness) {
  RecomputePolicy p({.kind = RecomputeTrigger::kHybrid,
                     .period_epochs = 4,
                     .drift_threshold = 0.2});
  const auto view = tm_of({{0, 1, PriorityClass::kHigh, 10.0}});
  EXPECT_TRUE(p.on_epoch(view));
  p.note_recompute(view);
  const auto small = tm_of({{0, 1, PriorityClass::kHigh, 10.5}});
  EXPECT_FALSE(p.on_epoch(small));
  EXPECT_FALSE(p.on_epoch(small));
  EXPECT_FALSE(p.on_epoch(small));
  EXPECT_TRUE(p.on_epoch(small));  // staleness cap at 4 epochs
  p.note_recompute(small);
  // Drift fires immediately regardless of staleness.
  const auto big = tm_of({{0, 1, PriorityClass::kHigh, 20.0}});
  EXPECT_TRUE(p.on_epoch(big));
}

TEST(RecomputePolicy, EmptyBaselineNeverDefersNonEmptyView) {
  // The bootstrap solve runs before the first measurement epoch, so a
  // policy can be seeded with an empty solved matrix. Deferring the
  // first real view against it would leave the fleet on an empty
  // routing for a whole period (regression: 100% regret at epoch 0).
  RecomputePolicy p({.kind = RecomputeTrigger::kPeriodic,
                     .period_epochs = 8});
  p.note_recompute(tm_of({}));
  const auto view = tm_of({{0, 1, PriorityClass::kHigh, 10.0}});
  EXPECT_TRUE(p.on_epoch(view));
  p.note_recompute(view);
  EXPECT_FALSE(p.on_epoch(view));  // a real baseline defers as usual
}

TEST(RecomputePolicy, ResetForgetsBaseline) {
  RecomputePolicy p({.kind = RecomputeTrigger::kThreshold,
                     .drift_threshold = 100.0});
  const auto view = tm_of({{0, 1, PriorityClass::kHigh, 10.0}});
  EXPECT_TRUE(p.on_epoch(view));
  p.note_recompute(view);
  EXPECT_FALSE(p.on_epoch(view));  // threshold unreachable
  p.reset();
  EXPECT_TRUE(p.on_epoch(view));  // no baseline again: must fire
}

}  // namespace
}  // namespace dsdn::te

namespace dsdn::sim {
namespace {

using metrics::PriorityClass;

OnlineTeOptions small_options() {
  OnlineTeOptions opt;
  opt.epochs = 32;
  opt.check_every = 8;
  // Slow enough that per-epoch drift sits well under a 10% threshold,
  // so deferring policies have something to defer.
  opt.dynamics.diurnal_amplitude = 0.3;
  opt.dynamics.diurnal_period_epochs = 64.0;
  opt.dynamics.flash_prob_per_epoch = 0.08;
  opt.estimator.alpha = 0.4;
  opt.estimator.floor_gbps = 0.05;
  return opt;
}

TEST(OnlineTe, ClosedLoopRunsCleanWithHybridPolicy) {
  const auto topo = topo::make_abilene();
  const auto base = traffic::generate_gravity(topo, {.seed = 7});

  OnlineTeOptions opt = small_options();
  opt.policy.kind = te::RecomputeTrigger::kHybrid;
  opt.policy.period_epochs = 8;
  opt.policy.drift_threshold = 0.10;
  opt.churn_events = 3;

  const OnlineTeResult r = run_online_te(topo, base, opt, 1);
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_EQ(r.epochs, opt.epochs);
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_GT(r.omniscient_gbps_sum, 0.0);
  EXPECT_GT(r.achieved_gbps_sum, 0.0);
  EXPECT_LT(r.regret_fraction, 0.5);
}

TEST(OnlineTe, DeferringPolicySavesRecomputes) {
  const auto topo = topo::make_abilene();
  const auto base = traffic::generate_gravity(topo, {.seed = 7});

  OnlineTeOptions every = small_options();
  every.policy.kind = te::RecomputeTrigger::kEvery;
  const OnlineTeResult r_every = run_online_te(topo, base, every, 3);
  ASSERT_TRUE(r_every.ok());

  OnlineTeOptions hybrid = small_options();
  hybrid.policy.kind = te::RecomputeTrigger::kHybrid;
  hybrid.policy.period_epochs = 8;
  hybrid.policy.drift_threshold = 0.10;
  const OnlineTeResult r_hybrid = run_online_te(topo, base, hybrid, 3);
  ASSERT_TRUE(r_hybrid.ok());

  // Same demand process, far fewer solves, bounded extra regret.
  EXPECT_LT(r_hybrid.recomputes, r_every.recomputes / 2);
  EXPECT_LT(r_hybrid.regret_fraction, r_every.regret_fraction + 0.10);
}

TEST(OnlineTe, BitIdenticalUnderSameSeed) {
  const auto topo = topo::make_abilene();
  const auto base = traffic::generate_gravity(topo, {.seed = 9});

  OnlineTeOptions opt = small_options();
  opt.epochs = 16;
  opt.policy.kind = te::RecomputeTrigger::kHybrid;
  opt.churn_events = 2;

  const OnlineTeResult a = run_online_te(topo, base, opt, 11);
  const OnlineTeResult b = run_online_te(topo, base, opt, 11);
  EXPECT_EQ(a.fingerprint(), b.fingerprint());
  EXPECT_EQ(a.recomputes, b.recomputes);
  EXPECT_EQ(a.churn_applied, b.churn_applied);
  EXPECT_DOUBLE_EQ(a.achieved_gbps_sum, b.achieved_gbps_sum);

  const OnlineTeResult c = run_online_te(topo, base, opt, 12);
  EXPECT_NE(a.fingerprint(), c.fingerprint());
}

TEST(OnlineTe, CrashBarrierResetsPoliciesFleetWide) {
  // A crash/recovery mid-loop must reset every controller's policy at
  // the same barrier the warm-TE state resets: afterwards the fleet
  // still agrees (converged digests, parity clean).
  const auto topo = topo::make_ring(6);
  traffic::TrafficMatrix base;
  base.add({0, 3, PriorityClass::kHigh, 8.0});
  base.add({1, 4, PriorityClass::kLow, 4.0});

  EmulationConfig cfg;
  cfg.recompute_policy.kind = te::RecomputeTrigger::kThreshold;
  cfg.recompute_policy.drift_threshold = 0.5;
  DsdnEmulation emu(topo, base, cfg);
  emu.enable_in_band_measurement({.alpha = 0.5, .floor_gbps = 0.01});
  emu.bootstrap();
  for (int e = 0; e < 4; ++e) {
    emu.observe_traffic(base);
    emu.measurement_epoch();
  }
  emu.crash_and_recover(2);
  EXPECT_TRUE(emu.views_converged());
  for (int e = 0; e < 4; ++e) {
    emu.observe_traffic(base);
    emu.measurement_epoch();
  }
  InvariantOptions inv;
  inv.parity_against_solved_demands = true;
  const InvariantReport rep = check_invariants(emu, inv);
  EXPECT_TRUE(rep.ok()) << (rep.violations.empty() ? ""
                                                   : rep.violations.front());
}

}  // namespace
}  // namespace dsdn::sim
