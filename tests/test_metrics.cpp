#include <gtest/gtest.h>

#include "metrics/calibration.hpp"
#include "metrics/distribution.hpp"
#include "metrics/slo.hpp"

namespace dsdn::metrics {
namespace {

TEST(Distribution, BasicStats) {
  EmpiricalDistribution d({1, 2, 3, 4, 5});
  EXPECT_EQ(d.size(), 5u);
  EXPECT_DOUBLE_EQ(d.mean(), 3.0);
  EXPECT_DOUBLE_EQ(d.min(), 1.0);
  EXPECT_DOUBLE_EQ(d.max(), 5.0);
  EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(Distribution, PercentileInterpolates) {
  EmpiricalDistribution d({0, 10});
  EXPECT_DOUBLE_EQ(d.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(d.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(d.percentile(100), 10.0);
  EXPECT_THROW(d.percentile(101), std::invalid_argument);
}

TEST(Distribution, PercentileExactAtOneTwoAndHundredSamples) {
  // n = 1: every percentile is the lone sample.
  EmpiricalDistribution one({7.5});
  for (double p : {0.0, 1.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(one.percentile(p), 7.5) << "p=" << p;
  }

  // n = 2: linear interpolation between the two order statistics,
  // rank = p/100 * (n-1).
  EmpiricalDistribution two({10.0, 20.0});
  EXPECT_DOUBLE_EQ(two.percentile(0), 10.0);
  EXPECT_DOUBLE_EQ(two.percentile(25), 12.5);
  EXPECT_DOUBLE_EQ(two.percentile(50), 15.0);
  EXPECT_DOUBLE_EQ(two.percentile(75), 17.5);
  EXPECT_DOUBLE_EQ(two.percentile(100), 20.0);

  // n = 100 over 0..99: rank = p/100 * 99 lands exactly on a sample
  // whenever p is a multiple of 100/99ths -- check a mix of exact and
  // interpolated ranks.
  std::vector<double> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  EmpiricalDistribution hundred(v);
  EXPECT_DOUBLE_EQ(hundred.percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(hundred.percentile(100), 99.0);
  EXPECT_DOUBLE_EQ(hundred.percentile(50), 49.5);    // rank 49.5
  EXPECT_DOUBLE_EQ(hundred.percentile(99), 98.01);   // rank 98.01
  EXPECT_DOUBLE_EQ(hundred.percentile(10), 9.9);     // rank 9.9
  EXPECT_DOUBLE_EQ(hundred.median(), 49.5);
}

TEST(Distribution, BatchPercentilesMatchSingleQueries) {
  EmpiricalDistribution d;
  std::uint64_t x = 88172645463325252ull;
  for (int i = 0; i < 1000; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    d.add(static_cast<double>(x % 10000));
  }
  const double ps[] = {0, 1, 25, 50, 75, 99, 99.9, 100};
  const auto batch = d.percentiles(ps);
  ASSERT_EQ(batch.size(), 8u);
  for (std::size_t i = 0; i < batch.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], d.percentile(ps[i])) << "p=" << ps[i];
  }
  EXPECT_THROW(d.percentiles(std::vector<double>{50.0, 101.0}),
               std::invalid_argument);
  EXPECT_THROW(EmpiricalDistribution().percentiles(ps), std::logic_error);
}

TEST(Distribution, SortedCacheSurvivesInterleavedAppends) {
  // The incremental tail merge: add/query/add/query must equal the
  // sort-from-scratch answer at every step.
  EmpiricalDistribution incremental;
  std::vector<double> all;
  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  for (int i = 0; i < 500; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const double v = static_cast<double>(x % 1000) - 500.0;
    incremental.add(v);
    all.push_back(v);
    if (i % 7 == 0) {
      EmpiricalDistribution fresh(all);
      EXPECT_DOUBLE_EQ(incremental.percentile(50), fresh.percentile(50));
      EXPECT_DOUBLE_EQ(incremental.percentile(99), fresh.percentile(99));
    }
  }
  // Descending input (worst case for an append-sorted tail).
  EmpiricalDistribution desc;
  for (int i = 100; i > 0; --i) {
    desc.add(static_cast<double>(i));
    EXPECT_DOUBLE_EQ(desc.max(), 100.0);
    EXPECT_DOUBLE_EQ(desc.percentile(0), static_cast<double>(i));
  }
}

TEST(Distribution, EmptyThrows) {
  EmpiricalDistribution d;
  EXPECT_THROW(d.mean(), std::logic_error);
  EXPECT_THROW(d.percentile(50), std::logic_error);
}

TEST(Distribution, CdfMonotone) {
  EmpiricalDistribution d({1, 2, 2, 3});
  EXPECT_DOUBLE_EQ(d.cdf(0.5), 0.0);
  EXPECT_DOUBLE_EQ(d.cdf(2), 0.75);
  EXPECT_DOUBLE_EQ(d.cdf(10), 1.0);
}

TEST(Distribution, AddInvalidatesSortCache) {
  EmpiricalDistribution d({5});
  EXPECT_DOUBLE_EQ(d.median(), 5.0);
  d.add(1);
  EXPECT_DOUBLE_EQ(d.median(), 3.0);
}

TEST(Distribution, ScaledMultipliesAllSamples) {
  EmpiricalDistribution d({1, 2});
  const auto s = d.scaled(10.0);
  EXPECT_DOUBLE_EQ(s.mean(), 15.0);
  EXPECT_DOUBLE_EQ(d.mean(), 1.5);  // original untouched
}

TEST(Distribution, SampleDrawsFromData) {
  EmpiricalDistribution d({7, 7, 7});
  util::Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(d.sample(rng), 7.0);
}

TEST(Slo, ThresholdsLoosenOneNinePerClass) {
  EXPECT_DOUBLE_EQ(slo_loss_threshold(PriorityClass::kHigh), 1e-4);
  EXPECT_DOUBLE_EQ(slo_loss_threshold(PriorityClass::kIntermediate), 1e-3);
  EXPECT_DOUBLE_EQ(slo_loss_threshold(PriorityClass::kLow), 1e-2);
}

TEST(Slo, BadSecondsIntegratorMatchesPaperExample) {
  // Paper example (§5.2): 100 groups over 10 s; 50 violate for 5 s, then
  // 10 violate for another 5 s => 50/100*5 + 10/100*5 = 3 bad seconds.
  BadSecondsIntegrator integ(0.0);
  integ.advance(5.0, 0.5);
  integ.advance(10.0, 0.1);
  EXPECT_DOUBLE_EQ(integ.bad_seconds(), 3.0);
}

TEST(Slo, IntegratorRejectsBackwardTimeAndBadRadius) {
  BadSecondsIntegrator integ(1.0);
  EXPECT_THROW(integ.advance(0.5, 0.1), std::invalid_argument);
  EXPECT_THROW(integ.advance(2.0, 1.5), std::invalid_argument);
}

TEST(Calibration, CsdnTpropMedianNearCalibratedValue) {
  CsdnCalibration calib;
  util::Rng rng(5);
  EmpiricalDistribution d;
  for (int i = 0; i < 20000; ++i) d.add(sample_csdn_tprop(calib, rng));
  EXPECT_NEAR(d.median(), calib.tprop_median_s, calib.tprop_median_s * 0.1);
}

TEST(Calibration, DsdnVsCsdnComponentOrdering) {
  // The calibrated models must encode the paper's orderings: dSDN Tprog
  // orders of magnitude below cSDN programming, dSDN Tcomp ~35% above.
  CsdnCalibration cs;
  DsdnCalibration ds;
  EXPECT_LT(ds.tprog_median_s * 100, cs.transit_router_median_s * 10);
  EXPECT_NEAR(ds.tcomp_median_s / cs.tcomp_median_s, 1.35, 0.01);
}

TEST(Calibration, ProgrammingModelHeterogeneousAcrossRouters) {
  CsdnCalibration calib;
  util::Rng rng(9);
  ProgrammingLatencyModel model(calib, 50, rng);
  // Collect per-router medians; Fig 19 reports ~10x spread across routers.
  double lo = 1e18, hi = 0;
  util::Rng sampler(10);
  for (std::size_t r = 0; r < 50; ++r) {
    EmpiricalDistribution d;
    for (int i = 0; i < 300; ++i) d.add(model.sample_transit(r, sampler));
    lo = std::min(lo, d.median());
    hi = std::max(hi, d.median());
  }
  EXPECT_GT(hi / lo, 5.0);
}

TEST(Calibration, ProgrammingModelTailStretch) {
  // Per-router p99 should sit several x above the median (paper: 4x-11x).
  CsdnCalibration calib;
  util::Rng rng(9);
  ProgrammingLatencyModel model(calib, 4, rng);
  util::Rng sampler(12);
  EmpiricalDistribution d;
  for (int i = 0; i < 20000; ++i) d.add(model.sample_transit(0, sampler));
  EXPECT_GT(d.percentile(99) / d.median(), 3.0);
}

TEST(Calibration, ProgrammingModelValidatesIndices) {
  CsdnCalibration calib;
  util::Rng rng(9);
  ProgrammingLatencyModel model(calib, 4, rng);
  EXPECT_THROW(model.sample_transit(4, rng), std::out_of_range);
  EXPECT_THROW(ProgrammingLatencyModel(calib, 0, rng), std::invalid_argument);
}

TEST(Calibration, RouterCpuRatioMatchesPaper) {
  EXPECT_NEAR(kRouterCpuSpeedRatio, 1.9 / 2.8, 1e-12);
}

}  // namespace
}  // namespace dsdn::metrics

namespace dsdn::metrics {
namespace {

TEST(Timeline, RenderScalesToMaxAndShowsPercent) {
  std::vector<BlastSample> samples = {{0.0, 0.5}, {1.0, 0.25}, {2.0, 0.0}};
  const auto text = render_timeline(samples, 8);
  EXPECT_NE(text.find("50.00%"), std::string::npos);
  EXPECT_NE(text.find("25.00%"), std::string::npos);
  EXPECT_NE(text.find("0.00%"), std::string::npos);
  // The largest sample gets the full bar width.
  EXPECT_NE(text.find("########"), std::string::npos);
}

TEST(Timeline, EmptyAndAllZeroAreSafe) {
  EXPECT_EQ(render_timeline({}), "");
  const auto flat = render_timeline({{0.0, 0.0}});
  EXPECT_NE(flat.find("0.00%"), std::string::npos);
}

}  // namespace
}  // namespace dsdn::metrics
