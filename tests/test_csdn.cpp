#include <gtest/gtest.h>

#include "csdn/controller.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::csdn {
namespace {

TEST(Cpn, PartitionBookkeeping) {
  metrics::CsdnCalibration calib;
  ControlPlaneNetwork cpn(calib);
  EXPECT_TRUE(cpn.can_reach_controller(3));
  cpn.set_partitioned(3, true);
  EXPECT_FALSE(cpn.can_reach_controller(3));
  EXPECT_EQ(cpn.num_partitioned(), 1u);
  cpn.set_partitioned(3, false);
  EXPECT_TRUE(cpn.can_reach_controller(3));
}

TEST(Programming, PathGatedBySlowestTransit) {
  const auto topo = topo::make_line(5);
  metrics::CsdnCalibration calib;
  util::Rng boot(1);
  metrics::ProgrammingLatencyModel model(calib, topo.num_nodes(), boot);
  util::Rng rng(2);
  te::Path p;
  for (std::size_t i = 0; i + 1 < 5; ++i)
    p.links.push_back(topo.find_link(static_cast<topo::NodeId>(i),
                                     static_cast<topo::NodeId>(i + 1)));
  const auto t = two_phase_program(topo, p, model, rng);
  EXPECT_GT(t.transit_complete_s, 0.0);
  EXPECT_GT(t.enabled_s, t.transit_complete_s);  // encap comes after acks
}

TEST(Programming, SingleHopPathHasNoTransitPhase) {
  const auto topo = topo::make_line(2);
  metrics::CsdnCalibration calib;
  util::Rng boot(1);
  metrics::ProgrammingLatencyModel model(calib, topo.num_nodes(), boot);
  util::Rng rng(2);
  te::Path p;
  p.links = {topo.find_link(0, 1)};
  const auto t = two_phase_program(topo, p, model, rng);
  EXPECT_DOUBLE_EQ(t.transit_complete_s, 0.0);
  EXPECT_GT(t.enabled_s, 0.0);
}

TEST(Programming, LongerPathsSlowerInExpectation) {
  const auto topo = topo::make_line(12);
  metrics::CsdnCalibration calib;
  util::Rng boot(1);
  metrics::ProgrammingLatencyModel model(calib, topo.num_nodes(), boot);
  util::Rng rng(2);
  te::Path shortp, longp;
  shortp.links = {topo.find_link(0, 1), topo.find_link(1, 2)};
  for (std::size_t i = 0; i + 1 < 12; ++i)
    longp.links.push_back(topo.find_link(static_cast<topo::NodeId>(i),
                                         static_cast<topo::NodeId>(i + 1)));
  double short_sum = 0, long_sum = 0;
  for (int i = 0; i < 200; ++i) {
    short_sum += two_phase_program(topo, shortp, model, rng).enabled_s;
    long_sum += two_phase_program(topo, longp, model, rng).enabled_s;
  }
  EXPECT_GT(long_sum, short_sum);  // max over more transits stochastically dominates
}

TEST(CsdnController, SolveMatchesSharedSolver) {
  const auto topo = topo::make_abilene();
  const auto tm = traffic::generate_gravity(topo);
  metrics::CsdnCalibration calib;
  CsdnController controller(&topo, calib, {}, 5);
  const auto central = controller.solve(tm);
  const auto direct = te::Solver().solve(topo, tm);
  ASSERT_EQ(central.allocations.size(), direct.allocations.size());
  for (std::size_t i = 0; i < central.allocations.size(); ++i) {
    EXPECT_DOUBLE_EQ(central.allocations[i].allocated_gbps,
                     direct.allocations[i].allocated_gbps);
  }
}

TEST(CsdnController, ReconvergenceTimingOrdered) {
  const auto topo = topo::make_abilene();
  const auto tm = traffic::generate_gravity(topo);
  metrics::CsdnCalibration calib;
  CsdnController controller(&topo, calib, {}, 5);
  const auto solution = controller.solve(tm);
  std::vector<char> changed(solution.allocations.size(), 1);
  const auto timing = controller.time_reconvergence(100.0, solution, changed);
  EXPECT_GT(timing.t_learned, 100.0);
  EXPECT_GT(timing.t_computed, timing.t_learned);
  EXPECT_GE(timing.t_converged, timing.t_computed);
  EXPECT_EQ(timing.demand_switch.size(), solution.allocations.size());
  for (const auto& [demand, when] : timing.demand_switch) {
    EXPECT_GE(when, timing.t_computed);
    EXPECT_LE(when, timing.t_converged);
  }
}

TEST(CsdnController, UnchangedDemandsNotReprogrammed) {
  const auto topo = topo::make_abilene();
  const auto tm = traffic::generate_gravity(topo);
  metrics::CsdnCalibration calib;
  CsdnController controller(&topo, calib, {}, 5);
  const auto solution = controller.solve(tm);
  std::vector<char> changed(solution.allocations.size(), 0);
  changed[0] = 1;
  const auto timing = controller.time_reconvergence(0.0, solution, changed);
  EXPECT_EQ(timing.demand_switch.size(), 1u);
}

TEST(CsdnController, PartitionedHeadendFailsStatic) {
  const auto topo = topo::make_abilene();
  const auto tm = traffic::generate_gravity(topo);
  metrics::CsdnCalibration calib;
  CsdnController controller(&topo, calib, {}, 5);
  const auto solution = controller.solve(tm);
  const topo::NodeId victim = solution.allocations[0].demand.src;
  controller.cpn().set_partitioned(victim, true);
  std::vector<char> changed(solution.allocations.size(), 1);
  const auto timing = controller.time_reconvergence(0.0, solution, changed);
  for (const auto& [demand, when] : timing.demand_switch) {
    EXPECT_NE(solution.allocations[demand].demand.src, victim);
  }
}

TEST(ChangedDemands, DetectsPathAndWeightChanges) {
  te::Solution a, b;
  te::Allocation alloc;
  alloc.demand = {0, 1, metrics::PriorityClass::kHigh, 1.0};
  alloc.allocated_gbps = 1.0;
  te::WeightedPath wp;
  wp.path.links = {4};
  wp.weight = 1.0;
  alloc.paths.push_back(wp);
  a.allocations.push_back(alloc);
  b.allocations.push_back(alloc);
  EXPECT_EQ(changed_demands(a, b), (std::vector<char>{0}));
  b.allocations[0].paths[0].weight = 0.5;
  EXPECT_EQ(changed_demands(a, b), (std::vector<char>{1}));
  b = a;
  b.allocations[0].paths[0].path.links = {5};
  EXPECT_EQ(changed_demands(a, b), (std::vector<char>{1}));
}

}  // namespace
}  // namespace dsdn::csdn
