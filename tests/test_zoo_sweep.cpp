// Parameterized end-to-end sweep across the external (TopologyZoo)
// networks: every subsystem -- TE, sublabels, FRR planning, the full
// controller emulation -- must hold its invariants on every topology we
// ship, not just the fixtures it was developed against.

#include <gtest/gtest.h>

#include "dataplane/sublabel.hpp"
#include "sim/convergence.hpp"
#include "sim/emulation.hpp"
#include "te/solver.hpp"
#include "topo/builder.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn {
namespace {

class ZooSweep : public ::testing::TestWithParam<std::size_t> {
 protected:
  topo::Topology topo_ = topo::zoo_catalog()[GetParam()].factory();
  const char* name_ = topo::zoo_catalog()[GetParam()].name;
};

TEST_P(ZooSweep, SolverFeasibleAtEveryLoadLevel) {
  for (const double util : {0.3, 0.9, 1.8}) {
    traffic::GravityParams gp;
    gp.target_max_utilization = util;
    const auto tm = traffic::generate_gravity(topo_, gp);
    const auto sol = te::Solver().solve(topo_, tm);
    for (double r : sol.residual_capacity(topo_)) {
      EXPECT_GE(r, -1e-6) << name_ << " util " << util;
    }
    EXPECT_GT(sol.total_allocated_gbps(), 0.0);
  }
}

TEST_P(ZooSweep, SublabelDataPlaneDeliversDiameterPath) {
  const auto a = dataplane::assign_sublabels(topo_);
  std::vector<dataplane::SublabelFib> fibs;
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    fibs.push_back(dataplane::SublabelFib::build(topo_, n, a));
  }
  // The longest shortest path from node 0.
  const auto tree = te::shortest_path_tree(topo_, 0);
  const te::Path* longest = nullptr;
  for (const auto& p : tree) {
    if (!p.empty() && (!longest || p.hops() > longest->hops())) longest = &p;
  }
  ASSERT_NE(longest, nullptr) << name_;
  const auto r = dataplane::forward_sublabel(
      topo_, fibs, 0, dataplane::encode_sublabel_route(*longest, a));
  EXPECT_TRUE(r.delivered) << name_;
  EXPECT_EQ(r.final_node, longest->dst(topo_)) << name_;
}

TEST_P(ZooSweep, FailureDrillThroughRealControllers) {
  // Full controller emulation is O(nodes * solve); cap at ESNet size.
  if (topo_.num_nodes() > 70) GTEST_SKIP() << "emulation sweep capped";
  traffic::GravityParams gp;
  gp.pair_fraction = topo_.num_nodes() > 30 ? 0.1 : 0.5;
  auto tm = traffic::generate_gravity(topo_, gp);
  sim::DsdnEmulation wan(topo_, tm);
  wan.bootstrap();
  ASSERT_TRUE(wan.views_converged()) << name_;

  const auto fibers = sim::pick_failure_fibers(wan.network(), 2, GetParam());
  for (topo::LinkId fiber : fibers) {
    wan.fail_fiber(fiber);
    ASSERT_TRUE(wan.views_converged()) << name_;
  }
  util::Rng rng(GetParam() + 100);
  const auto& demands = wan.demands().demands();
  for (int i = 0; i < 25; ++i) {
    const auto& d = rng.pick(demands);
    const auto r = wan.send_packet(d.src, wan.address_of(d.dst), d.priority);
    EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered)
        << name_ << " " << d.src << "->" << d.dst;
  }
  for (topo::LinkId fiber : fibers) wan.repair_fiber(fiber);
  EXPECT_TRUE(wan.views_converged()) << name_;
}

TEST_P(ZooSweep, BypassPlansCoverAndAvoidProtectees) {
  const auto plan = dataplane::BypassPlan::compute(
      topo_, dataplane::BypassStrategy::kCapacityAware);
  for (const topo::Link& l : topo_.links()) {
    for (const te::Path& p : plan.candidates(l.id)) {
      EXPECT_EQ(p.src(topo_), l.src);
      EXPECT_EQ(p.dst(topo_), l.dst);
      for (topo::LinkId bl : p.links) {
        EXPECT_NE(bl, l.id);
        EXPECT_NE(bl, l.reverse);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllZooTopologies, ZooSweep,
                         ::testing::Range<std::size_t>(0, 4),
                         [](const auto& suite_info) {
                           return std::string(
                               topo::zoo_catalog()[suite_info.param].name);
                         });

}  // namespace
}  // namespace dsdn
