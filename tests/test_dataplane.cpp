#include <gtest/gtest.h>

#include "dataplane/fib.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/label.hpp"
#include "obs/metrics.hpp"
#include "te/dijkstra.hpp"
#include "topo/prefix.hpp"
#include "topo/synthetic.hpp"

namespace dsdn::dataplane {
namespace {

using metrics::PriorityClass;

TEST(Label, LinkLabelRoundTripAvoidsReservedRange) {
  EXPECT_GE(link_label(0), kReservedLabels);
  EXPECT_EQ(label_link(link_label(12345)), 12345u);
  EXPECT_THROW(label_link(3), std::invalid_argument);
}

TEST(Label, StackIsLifoWithTopFirst) {
  LabelStack s;
  s.push(100);
  s.push(200);  // new top
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_EQ(s.top(), 200u);
  EXPECT_EQ(s.pop(), 200u);
  EXPECT_EQ(s.pop(), 100u);
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.pop(), std::logic_error);
  EXPECT_THROW(s.top(), std::logic_error);
}

TEST(Label, PushAllOnTopPreservesBypassOrder) {
  LabelStack inner({5, 6});
  LabelStack bypass({1, 2});
  inner.push_all_on_top(bypass);
  EXPECT_EQ(inner.labels(), (std::vector<Label>{1, 2, 5, 6}));
}

TEST(Label, EncodeDecodeStrictRoute) {
  const auto t = topo::make_line(4);
  te::Path p;
  p.links = {t.find_link(0, 1), t.find_link(1, 2), t.find_link(2, 3)};
  const LabelStack s = encode_strict_route(p);
  EXPECT_EQ(s.depth(), 3u);
  EXPECT_EQ(decode_strict_route(s), p);
}

TEST(Label, EncodeEnforcesTwelveLabelLimit) {
  const auto t = topo::make_line(15);
  te::Path p;
  for (std::size_t i = 0; i + 1 < 15; ++i)
    p.links.push_back(t.find_link(static_cast<topo::NodeId>(i),
                                  static_cast<topo::NodeId>(i + 1)));
  ASSERT_GT(p.hops(), kMaxLabelDepth);
  EXPECT_THROW(encode_strict_route(p), std::length_error);
  EXPECT_EQ(encode_strict_route(p, /*enforce_depth=*/false).depth(),
            p.hops());
}

TEST(IngressFib, TwoStageLookupPicksRouteByPrefix) {
  IngressFib fib;
  topo::Prefix p{topo::parse_ipv4("10.0.1.0"), 24};
  fib.set_prefix(p, /*egress=*/7);
  EncapEntry entry;
  entry.routes.push_back({LabelStack({21}), 1.0});
  fib.set_routes(7, PriorityClass::kHigh, entry);

  const auto hit =
      fib.lookup(topo::parse_ipv4("10.0.1.9"), PriorityClass::kHigh, 1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->labels(), (std::vector<Label>{21}));
  // Unknown destination and unprogrammed class miss.
  EXPECT_FALSE(
      fib.lookup(topo::parse_ipv4("10.0.2.9"), PriorityClass::kHigh, 1)
          .has_value());
  EXPECT_FALSE(
      fib.lookup(topo::parse_ipv4("10.0.1.9"), PriorityClass::kLow, 1)
          .has_value());
}

TEST(IngressFib, WeightedChoiceIsDeterministicInEntropy) {
  IngressFib fib;
  topo::Prefix p{topo::parse_ipv4("10.0.1.0"), 24};
  fib.set_prefix(p, 7);
  EncapEntry entry;
  entry.routes.push_back({LabelStack({1}), 0.5});
  entry.routes.push_back({LabelStack({2}), 0.5});
  fib.set_routes(7, PriorityClass::kHigh, entry);
  const auto a =
      fib.lookup(topo::parse_ipv4("10.0.1.9"), PriorityClass::kHigh, 99);
  const auto b =
      fib.lookup(topo::parse_ipv4("10.0.1.9"), PriorityClass::kHigh, 99);
  EXPECT_EQ(a->labels(), b->labels());
}

TEST(IngressFib, HashingSpreadsFlowsAcrossRoutes) {
  IngressFib fib;
  topo::Prefix p{topo::parse_ipv4("10.0.1.0"), 24};
  fib.set_prefix(p, 7);
  EncapEntry entry;
  entry.routes.push_back({LabelStack({1}), 0.5});
  entry.routes.push_back({LabelStack({2}), 0.5});
  fib.set_routes(7, PriorityClass::kHigh, entry);
  int first = 0;
  const int n = 2000;
  for (int e = 0; e < n; ++e) {
    const auto s =
        fib.lookup(topo::parse_ipv4("10.0.1.9"), PriorityClass::kHigh,
                   static_cast<std::uint64_t>(e));
    if (s->labels()[0] == 1) ++first;
  }
  EXPECT_NEAR(static_cast<double>(first) / n, 0.5, 0.07);
}

TEST(IngressFib, RejectsBadWeights) {
  IngressFib fib;
  EncapEntry entry;
  entry.routes.push_back({LabelStack({1}), -1.0});
  EXPECT_THROW(fib.set_routes(1, PriorityClass::kHigh, entry),
               std::invalid_argument);
  EncapEntry zeros;
  zeros.routes.push_back({LabelStack({1}), 0.0});
  EXPECT_THROW(fib.set_routes(1, PriorityClass::kHigh, zeros),
               std::invalid_argument);
}

TEST(TransitFib, StaticEntriesCoverLocalLinks) {
  const auto t = topo::make_ring(5);
  const TransitFib fib = build_transit_fib(t, 2);
  EXPECT_EQ(fib.size(), t.node(2).out_links.size());
  for (topo::LinkId l : t.node(2).out_links) {
    EXPECT_EQ(fib.lookup(link_label(l)).value(), l);
  }
  EXPECT_FALSE(fib.lookup(link_label(9999)).has_value());
}

// ---- End-to-end forwarding (the Fig 5 walk) ----

struct Fig5Fixture {
  topo::Topology topo = topo::make_fig5();
  std::vector<topo::Prefix> prefixes = topo::assign_router_prefixes(topo);
  VectorDataplanes routers{3};

  Fig5Fixture() {
    for (topo::NodeId n = 0; n < 3; ++n) {
      auto& rd = routers.mutable_at(n);
      rd.transit = build_transit_fib(topo, n);
      for (topo::NodeId m = 0; m < 3; ++m) rd.ingress.set_prefix(prefixes[m], m);
    }
  }

  void install_route(topo::NodeId headend, topo::NodeId egress,
                     const te::Path& path, double weight = 1.0) {
    EncapEntry entry;
    entry.routes.push_back({encode_strict_route(path), weight});
    routers.mutable_at(headend).ingress.set_routes(
        egress, PriorityClass::kHigh, entry);
  }
};

TEST(Forwarder, DeliversAlongStrictRoute) {
  Fig5Fixture f;
  // R0 -> R2 -> R1 (the paper's A,D,G style indirect route).
  te::Path via;
  via.links = {f.topo.find_link(0, 2), f.topo.find_link(2, 1)};
  f.install_route(0, 1, via);

  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  const auto r = fwd.forward(pkt, 0);
  EXPECT_EQ(r.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(r.final_node, 1u);
  EXPECT_EQ(r.trace, (std::vector<topo::NodeId>{0, 2, 1}));
  EXPECT_EQ(r.hops, 2u);
}

TEST(Forwarder, LocalDeliveryWithoutWanHop) {
  Fig5Fixture f;
  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[0]);
  const auto r = fwd.forward(pkt, 0);
  EXPECT_EQ(r.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(r.hops, 0u);
}

TEST(Forwarder, UnknownDestinationDropped) {
  Fig5Fixture f;
  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::parse_ipv4("192.168.1.1");
  EXPECT_EQ(fwd.forward(pkt, 0).outcome,
            ForwardOutcome::kDroppedNoIngressRoute);
}

TEST(Forwarder, DownLinkWithoutBypassDrops) {
  Fig5Fixture f;
  te::Path direct;
  direct.links = {f.topo.find_link(0, 1)};
  f.install_route(0, 1, direct);
  f.topo.set_duplex_up(direct.links[0], false);

  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  EXPECT_EQ(fwd.forward(pkt, 0).outcome,
            ForwardOutcome::kDroppedLinkDownNoBypass);
}

TEST(Forwarder, FrrBypassRepairsAroundFailure) {
  Fig5Fixture f;
  te::Path direct;
  direct.links = {f.topo.find_link(0, 1)};
  f.install_route(0, 1, direct);

  // Precompute bypasses on the healthy network, then cut the link.
  const auto bypasses =
      BypassPlan::compute(f.topo, BypassStrategy::kShortestPath);
  f.topo.set_duplex_up(direct.links[0], false);

  const Forwarder fwd(f.topo, &f.routers, &bypasses);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  const auto r = fwd.forward(pkt, 0);
  EXPECT_EQ(r.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(r.final_node, 1u);
  EXPECT_EQ(r.frr_activations, 1u);
  // The repair detours via R2.
  EXPECT_EQ(r.trace, (std::vector<topo::NodeId>{0, 2, 1}));
}

TEST(Forwarder, StaleRouteToWrongEgressDetected) {
  Fig5Fixture f;
  // Route for R1 traffic that actually terminates at R2.
  te::Path wrong;
  wrong.links = {f.topo.find_link(0, 2)};
  f.install_route(0, 1, wrong);
  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  EXPECT_EQ(fwd.forward(pkt, 0).outcome, ForwardOutcome::kDroppedNotLocal);
}

TEST(Forwarder, UnknownLabelDropped) {
  Fig5Fixture f;
  EncapEntry entry;
  entry.routes.push_back({LabelStack({link_label(9999)}), 1.0});
  f.routers.mutable_at(0).ingress.set_routes(1, PriorityClass::kHigh, entry);
  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  EXPECT_EQ(fwd.forward(pkt, 0).outcome,
            ForwardOutcome::kDroppedUnknownLabel);
}

TEST(Forwarder, TtlGuardsAgainstForwardingLoops) {
  Fig5Fixture f;
  // A malicious/corrupt stack that ping-pongs R0 <-> R2 cannot loop
  // forever thanks to TTL. Build it directly (strict routes from the TE
  // layer are loop-free by construction; this is defense in depth).
  std::vector<Label> labels;
  for (int i = 0; i < 50; ++i) {
    labels.push_back(link_label(f.topo.find_link(0, 2)));
    labels.push_back(link_label(f.topo.find_link(2, 0)));
  }
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  pkt.stack = LabelStack(labels);
  pkt.ttl = 16;
  const Forwarder fwd(f.topo, &f.routers);
  EXPECT_EQ(fwd.forward(pkt, 0).outcome, ForwardOutcome::kDroppedTtlExpired);
}

TEST(Forwarder, FibCycleDetectedAsLoopDespiteGenerousTtl) {
  // Regression: with a caller ttl far above the topology hop bound, a
  // cycling label stack used to burn the whole ttl budget and report
  // kDroppedTtlExpired. The hop bound (4n+8) now fires first and names
  // the real failure. TtlGuardsAgainstForwardingLoops above keeps the
  // small-ttl path: a ttl below the bound still wins.
  Fig5Fixture f;
  std::vector<Label> labels;
  for (int i = 0; i < 200; ++i) {
    labels.push_back(link_label(f.topo.find_link(0, 2)));
    labels.push_back(link_label(f.topo.find_link(2, 0)));
  }
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  pkt.stack = LabelStack(labels);
  pkt.ttl = 10000;
  const Forwarder fwd(f.topo, &f.routers);
  const auto r = fwd.forward(pkt, 0);
  EXPECT_EQ(r.outcome, ForwardOutcome::kDroppedLoop);
  EXPECT_EQ(r.hops, forward_hop_bound(f.topo) + 1);
  EXPECT_STREQ(forward_outcome_name(r.outcome), "loop");
}

TEST(Forwarder, DownLinkDropBumpsObservabilityCounter) {
  Fig5Fixture f;
  te::Path direct;
  direct.links = {f.topo.find_link(0, 1)};
  f.install_route(0, 1, direct);
  f.topo.set_duplex_up(direct.links[0], false);

  auto& counter = obs::Registry::global().counter("dataplane.down_link_drops");
  const std::uint64_t before = counter.value();
  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  EXPECT_EQ(fwd.forward(pkt, 0).outcome,
            ForwardOutcome::kDroppedLinkDownNoBypass);
  EXPECT_EQ(counter.value(), before + 1);
}

TEST(Forwarder, LatencyAccumulatesLinkDelays) {
  Fig5Fixture f;
  te::Path via;
  via.links = {f.topo.find_link(0, 2), f.topo.find_link(2, 1)};
  f.install_route(0, 1, via);
  const Forwarder fwd(f.topo, &f.routers);
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  const auto r = fwd.forward(pkt, 0);
  EXPECT_NEAR(r.latency_s, via.latency_s(f.topo), 1e-12);
}

}  // namespace
}  // namespace dsdn::dataplane

namespace dsdn::dataplane {
namespace {

TEST(BypassFib, SelectAndProtects) {
  BypassFib fib;
  EXPECT_FALSE(fib.protects(3));
  EXPECT_FALSE(fib.select(3, 1).has_value());
  fib.set_bypasses(3, {{LabelStack({21, 22}), 1.0}});
  EXPECT_TRUE(fib.protects(3));
  const auto s = fib.select(3, 1);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->labels(), (std::vector<Label>{21, 22}));
  EXPECT_EQ(fib.num_protected_links(), 1u);
}

TEST(BypassFib, WeightedSelectionSpreadsAcrossRoutes) {
  BypassFib fib;
  fib.set_bypasses(7, {{LabelStack({1}), 1.0}, {LabelStack({2}), 1.0}});
  std::set<std::vector<Label>> seen;
  for (std::uint64_t e = 0; e < 64; ++e) {
    seen.insert(fib.select(7, e)->labels());
  }
  EXPECT_EQ(seen.size(), 2u);
}

TEST(BypassFib, ValidationAndClear) {
  BypassFib fib;
  EXPECT_THROW(fib.set_bypasses(1, {{LabelStack({1}), -1.0}}),
               std::invalid_argument);
  EXPECT_THROW(fib.set_bypasses(1, {{LabelStack({1}), 0.0}}),
               std::invalid_argument);
  fib.set_bypasses(1, {{LabelStack({1}), 1.0}});
  fib.set_bypasses(1, {});  // empty set removes protection
  EXPECT_FALSE(fib.protects(1));
  fib.set_bypasses(2, {{LabelStack({1}), 1.0}});
  fib.clear();
  EXPECT_EQ(fib.num_protected_links(), 0u);
}

TEST(Forwarder, LocalBypassFibPreferredOverGlobalPlan) {
  // The router's own table, not the simulation-level plan, does repair.
  Fig5Fixture f;
  te::Path direct;
  direct.links = {f.topo.find_link(0, 1)};
  f.install_route(0, 1, direct);
  // Local bypass via R2.
  te::Path via;
  via.links = {f.topo.find_link(0, 2), f.topo.find_link(2, 1)};
  f.routers.mutable_at(0).bypass.set_bypasses(
      direct.links[0], {{encode_strict_route(via), 1.0}});
  f.topo.set_duplex_up(direct.links[0], false);
  const Forwarder fwd(f.topo, &f.routers);  // no global plan at all
  Packet pkt;
  pkt.dst_ip = topo::host_in(f.prefixes[1]);
  const auto r = fwd.forward(pkt, 0);
  EXPECT_EQ(r.outcome, ForwardOutcome::kDelivered);
  EXPECT_EQ(r.frr_activations, 1u);
  EXPECT_EQ(r.trace, (std::vector<topo::NodeId>{0, 2, 1}));
}

}  // namespace
}  // namespace dsdn::dataplane
