#include <gtest/gtest.h>

#include <algorithm>

#include "shard/sharded_wan.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"
#include "util/rng.hpp"

namespace dsdn::shard {
namespace {

using metrics::PriorityClass;

TEST(Planes, SplitPreservesStructureAndStripesCapacity) {
  const auto base = topo::make_geant();
  const auto planes = make_planes(base, 4);
  ASSERT_EQ(planes.size(), 4u);
  for (const auto& plane : planes) {
    EXPECT_EQ(plane.num_nodes(), base.num_nodes());
    EXPECT_EQ(plane.num_links(), base.num_links());
  }
  // Capacity striping: each plane link carries ~1/k of the base fiber
  // (remainder units may bump one plane by a kbps) and the stripes sum
  // back to the base capacity exactly.
  for (topo::LinkId l = 0; l < base.num_links(); ++l) {
    double sum = 0.0;
    for (const auto& plane : planes) {
      EXPECT_NEAR(plane.link(l).capacity_gbps,
                  base.link(l).capacity_gbps / 4.0, 1e-5);
      sum += plane.link(l).capacity_gbps;
    }
    EXPECT_NEAR(sum, base.link(l).capacity_gbps, 1e-9);
  }
  EXPECT_THROW(make_planes(base, 0), std::invalid_argument);
}

TEST(Planes, StripingConservesCapacityWithIndivisibleRemainder) {
  // 10 Gbps across k=3 does not divide evenly (naive /k loses a third of
  // a kbps per fiber); quantized striping must conserve the total.
  topo::Topology base;
  base.add_node("a");
  base.add_node("b");
  base.add_node("c");
  base.add_duplex(0, 1, 10.0);
  base.add_duplex(1, 2, 99.999999);  // fractional-kbps stress
  base.add_duplex(0, 2, 0.001);      // 1000 units across 3 planes
  const auto planes = make_planes(base, 3);
  for (topo::LinkId l = 0; l < base.num_links(); ++l) {
    double sum = 0.0;
    double lo = 1e18, hi = 0.0;
    for (const auto& plane : planes) {
      sum += plane.link(l).capacity_gbps;
      lo = std::min(lo, plane.link(l).capacity_gbps);
      hi = std::max(hi, plane.link(l).capacity_gbps);
    }
    EXPECT_NEAR(sum, base.link(l).capacity_gbps, 1e-9) << "link " << l;
    // Remainder distribution is fair: stripes differ by at most one unit.
    EXPECT_LE(hi - lo, 1e-6 + 1e-12) << "link " << l;
  }
}

TEST(Planes, FlowHashBalancesRateAcrossPlanes) {
  // No plane may carry more than 1/K + epsilon of the total rate -- the
  // property that makes 1/K capacity stripes sufficient.
  const auto base = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 1.0;  // every metro pair, for a stable estimate
  const auto tm = traffic::generate_gravity(base, gp).aggregated();
  for (std::size_t k : {2, 4, 8}) {
    const auto split = split_demands(tm, k);
    for (std::size_t p = 0; p < k; ++p) {
      EXPECT_LT(split[p].total_rate_gbps(),
                tm.total_rate_gbps() * (1.0 / static_cast<double>(k) + 0.10))
          << "k=" << k << " plane " << p;
    }
  }
}

TEST(Planes, PacketAndDemandPlaneAgreeOverSeededFlowKeys) {
  // plane_of_flow is the one hash both sides use; over seeded random flow
  // keys it must be stable call-to-call and in range.
  util::Rng rng(0x5EED);
  for (int i = 0; i < 1000; ++i) {
    const auto src = static_cast<topo::NodeId>(rng.uniform_int(0, 4000));
    const auto dst = static_cast<topo::NodeId>(rng.uniform_int(0, 4000));
    const auto priority =
        rng.bernoulli(0.5) ? PriorityClass::kHigh : PriorityClass::kLow;
    for (std::size_t k : {1, 3, 4}) {
      const std::size_t p = plane_of_flow(src, dst, priority, k);
      EXPECT_LT(p, k);
      EXPECT_EQ(plane_of_flow(src, dst, priority, k), p);
    }
  }
}

TEST(Planes, DemandSplitIsPartitionAndConsistentWithFlowHash) {
  const auto base = topo::make_geant();
  const auto tm = traffic::generate_gravity(base);
  const auto split = split_demands(tm, 4);
  std::size_t total = 0;
  double volume = 0;
  for (std::size_t p = 0; p < split.size(); ++p) {
    total += split[p].size();
    volume += split[p].total_rate_gbps();
    for (const auto& d : split[p].demands()) {
      EXPECT_EQ(plane_of_flow(d.src, d.dst, d.priority, 4), p);
    }
  }
  EXPECT_EQ(total, tm.size());
  EXPECT_NEAR(volume, tm.total_rate_gbps(), 1e-6);
  // Hashing spreads flows across all planes (within a loose band).
  for (const auto& plane_tm : split) {
    EXPECT_GT(plane_tm.size(), tm.size() / 16);
  }
}

class ShardedWanTest : public ::testing::Test {
 protected:
  ShardedWanTest() {
    base_ = topo::make_geant();
    traffic::GravityParams gp;
    gp.pair_fraction = 0.4;
    tm_ = traffic::generate_gravity(base_, gp).aggregated();
    wan_ = std::make_unique<ShardedWan>(base_, tm_, 3);
    wan_->bootstrap();
  }

  // Delivery rate over sampled demands of one plane.
  double delivery_rate(std::size_t plane) {
    const auto& demands = wan_->plane_demands(plane).demands();
    if (demands.empty()) return 1.0;
    std::size_t ok = 0;
    for (const auto& d : demands) {
      const auto r = wan_->send_packet(d.src, d.dst, d.priority);
      if (r.outcome == dataplane::ForwardOutcome::kDelivered) ++ok;
    }
    return static_cast<double>(ok) / static_cast<double>(demands.size());
  }

  topo::Topology base_;
  traffic::TrafficMatrix tm_;
  std::unique_ptr<ShardedWan> wan_;
};

TEST_F(ShardedWanTest, AllPlanesBootAndDeliver) {
  EXPECT_TRUE(wan_->all_planes_converged());
  for (std::size_t p = 0; p < wan_->num_planes(); ++p) {
    EXPECT_DOUBLE_EQ(delivery_rate(p), 1.0) << "plane " << p;
  }
}

TEST_F(ShardedWanTest, FailureContainedToOnePlane) {
  // Cut a fiber in plane 1 only. Planes 0 and 2 must be bit-identical
  // undisturbed: no NSUs, no recomputation, no delivery impact.
  const auto msgs0 = wan_->plane(0).messages_delivered();
  const auto msgs2 = wan_->plane(2).messages_delivered();
  const auto digest0 = wan_->plane(0).controller(0).state().digest();

  const topo::LinkId fiber = wan_->plane(1).network().find_link(
      5, wan_->plane(1).network().up_neighbors(5).front());
  wan_->fail_fiber_in_plane(1, fiber);

  EXPECT_TRUE(wan_->all_planes_converged());
  EXPECT_EQ(wan_->plane(0).messages_delivered(), msgs0);
  EXPECT_EQ(wan_->plane(2).messages_delivered(), msgs2);
  EXPECT_EQ(wan_->plane(0).controller(0).state().digest(), digest0);
  // All planes still deliver (plane 1 reconverged around the cut).
  for (std::size_t p = 0; p < wan_->num_planes(); ++p) {
    EXPECT_DOUBLE_EQ(delivery_rate(p), 1.0) << "plane " << p;
  }
  wan_->repair_fiber_in_plane(1, fiber);
  EXPECT_TRUE(wan_->all_planes_converged());
}

TEST_F(ShardedWanTest, ControllerCrashContainedToOnePlane) {
  const auto digest2 = wan_->plane(2).controller(0).state().digest();
  wan_->plane(0).crash_and_recover(4);
  EXPECT_TRUE(wan_->all_planes_converged());
  EXPECT_EQ(wan_->plane(2).controller(0).state().digest(), digest2);
}

TEST_F(ShardedWanTest, PacketsRouteOnTheirDemandsPlane) {
  // Every sampled flow must find its route on the plane its key hashes
  // to -- the consistency contract between split_demands and send_packet.
  for (std::size_t p = 0; p < wan_->num_planes(); ++p) {
    for (const auto& d : wan_->plane_demands(p).demands()) {
      EXPECT_EQ(plane_of_flow(d.src, d.dst, d.priority, wan_->num_planes()),
                p);
    }
  }
}

}  // namespace
}  // namespace dsdn::shard
