#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "hier/solver.hpp"
#include "te/parallel_solver.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::hier {
namespace {

// Every node assigned, every region non-empty and connected over
// intra-region links, no metro split across regions.
void expect_partition_sane(const topo::Topology& topo,
                           const RegionPartition& part) {
  ASSERT_EQ(part.region_of.size(), topo.num_nodes());
  ASSERT_EQ(part.members.size(), part.n_regions);
  std::size_t total = 0;
  for (std::size_t r = 0; r < part.n_regions; ++r) {
    EXPECT_FALSE(part.members[r].empty()) << "region " << r;
    total += part.members[r].size();
    for (topo::NodeId n : part.members[r]) {
      EXPECT_EQ(part.region_of[n], r);
    }
    // Connectivity: BFS from the first member over intra-region links.
    std::set<topo::NodeId> seen{part.members[r].front()};
    std::vector<topo::NodeId> queue{part.members[r].front()};
    while (!queue.empty()) {
      topo::NodeId n = queue.back();
      queue.pop_back();
      for (topo::LinkId lid : topo.node(n).out_links) {
        const topo::Link& l = topo.link(lid);
        if (part.region_of[l.dst] != r || seen.count(l.dst)) continue;
        seen.insert(l.dst);
        queue.push_back(l.dst);
      }
    }
    EXPECT_EQ(seen.size(), part.members[r].size())
        << "region " << r << " disconnected";
  }
  EXPECT_EQ(total, topo.num_nodes());
  // Metro atomicity.
  std::map<std::string, std::uint32_t> metro_region;
  for (const topo::Node& n : topo.nodes()) {
    if (n.metro.empty()) continue;
    auto [it, inserted] = metro_region.emplace(n.metro, part.region_of[n.id]);
    EXPECT_EQ(it->second, part.region_of[n.id])
        << "metro " << n.metro << " split";
  }
}

TEST(Partition, B4RegionsAreConnectedMetroAtomicAndBalanced) {
  const auto topo = topo::make_b4_like();
  const auto part = partition_regions(topo);
  expect_partition_sane(topo, part);
  EXPECT_GE(part.n_regions, 2u);
  // Balance: largest region within ~3x of the smallest (farthest-first
  // seeds + capped growth; loose bound, metros are atomic).
  std::size_t lo = topo.num_nodes(), hi = 0;
  for (const auto& m : part.members) {
    lo = std::min(lo, m.size());
    hi = std::max(hi, m.size());
  }
  EXPECT_LE(hi, 3 * lo + 10);
}

TEST(Partition, DeterministicAndHonorsRequestedCount) {
  const auto topo = topo::make_b2_like({.scale = 0.25});
  PartitionOptions options;
  options.n_regions = 6;
  const auto a = partition_regions(topo, options);
  const auto b = partition_regions(topo, options);
  EXPECT_EQ(a.region_of, b.region_of);
  EXPECT_EQ(a.n_regions, 6u);
  expect_partition_sane(topo, a);
}

TEST(Partition, ZooTopologyWithoutMetrosDegradesToNodeGranularity) {
  const auto topo = topo::make_abilene();
  PartitionOptions options;
  options.n_regions = 3;
  const auto part = partition_regions(topo, options);
  expect_partition_sane(topo, part);
  EXPECT_EQ(part.n_regions, 3u);
}

TEST(Logical, AggregatesBorderCapacityAndTransit) {
  const auto topo = topo::make_b4_like();
  const auto part = partition_regions(topo);
  const auto logical = build_logical(topo, part);
  ASSERT_EQ(logical.graph.num_nodes(), part.n_regions);
  ASSERT_EQ(logical.members.size(), logical.graph.num_links());

  // Every logical link's capacity is the sum of its up members, and
  // members map back through logical_of.
  for (topo::LinkId ll = 0; ll < logical.graph.num_links(); ++ll) {
    double cap = 0.0;
    for (topo::LinkId m : logical.members[ll]) {
      EXPECT_TRUE(topo.link(m).up);
      EXPECT_EQ(logical.logical_of[m], ll);
      EXPECT_NE(part.region_of[topo.link(m).src],
                part.region_of[topo.link(m).dst]);
      cap += topo.link(m).capacity_gbps;
    }
    EXPECT_NEAR(logical.graph.link(ll).capacity_gbps, cap, 1e-9);
  }
  // Transit matrix: diagonal infinite, off-diagonal positive for borders
  // of a connected region.
  for (const LogicalNode& ln : logical.nodes) {
    for (std::size_t i = 0; i < ln.borders.size(); ++i) {
      EXPECT_TRUE(std::isinf(ln.transit(i, i)));
      for (std::size_t j = 0; j < ln.borders.size(); ++j) {
        if (i != j) EXPECT_GT(ln.transit(i, j), 0.0);
      }
    }
  }
}

TEST(Logical, DownedFiberLeavesTheLogicalView) {
  auto topo = topo::make_b4_like();
  const auto part = partition_regions(topo);
  const auto before = build_logical(topo, part);
  // Cut one inter-region fiber and rebuild.
  topo::LinkId cut = topo::kInvalidLink;
  for (const topo::Link& l : topo.links()) {
    if (part.region_of[l.src] != part.region_of[l.dst] &&
        l.reverse != topo::kInvalidLink && l.id < l.reverse) {
      cut = l.id;
      break;
    }
  }
  ASSERT_NE(cut, topo::kInvalidLink);
  topo.set_duplex_up(cut, false);
  const auto after = build_logical(topo, part);
  EXPECT_EQ(after.logical_of[cut], topo::kInvalidLink);
  // The affected logical link lost exactly that member's capacity (or
  // disappeared entirely).
  topo::LinkId ll = before.logical_of[cut];
  double lost = topo.link(cut).capacity_gbps;
  bool found = false;
  for (topo::LinkId al = 0; al < after.graph.num_links(); ++al) {
    if (after.graph.link(al).src == before.graph.link(ll).src &&
        after.graph.link(al).dst == before.graph.link(ll).dst) {
      EXPECT_NEAR(after.graph.link(al).capacity_gbps,
                  before.graph.link(ll).capacity_gbps - lost, 1e-9);
      found = true;
    }
  }
  if (!found) {
    EXPECT_NEAR(before.graph.link(ll).capacity_gbps, lost, 1e-9);
  }
}

class HierSolveTest : public ::testing::Test {
 protected:
  HierSolveTest() : topo_(topo::make_b4_like()) {
    traffic::GravityParams gp;
    gp.pair_fraction = 0.2;
    gp.seed = 0x41E5;
    tm_ = traffic::generate_gravity(topo_, gp).aggregated();
    hierarchy_ = build_hierarchy(topo_);
  }

  topo::Topology topo_;
  traffic::TrafficMatrix tm_;
  Hierarchy hierarchy_;
};

TEST_F(HierSolveTest, SolutionIsFeasibleOrderedAndWithinGapBound) {
  HierSolveStats stats;
  const auto hier = solve_hierarchical(topo_, tm_, hierarchy_, {}, &stats);
  const auto flat = te::Solver().solve(topo_, tm_);

  GapOptions gap_options;
  gap_options.max_gap_fraction = 0.25;  // B4 is small; bench gates 0.10 at B2+
  const auto report =
      check_optimality_gap(topo_, tm_, hier, flat, gap_options);
  for (const auto& v : report.violations) ADD_FAILURE() << v;
  EXPECT_TRUE(report.ok());
  EXPECT_GT(report.hier_total_gbps, 0.0);
  EXPECT_EQ(stats.n_regions, hierarchy_.partition.n_regions);
  EXPECT_GT(stats.segment_demands, 0u);
}

TEST_F(HierSolveTest, DeterministicAcrossRunsAndPoolSizes) {
  const auto a = solve_hierarchical(topo_, tm_, hierarchy_);
  te::ThreadPool pool(4);
  HierOptions options;
  options.pool = &pool;
  const auto b = solve_hierarchical(topo_, tm_, hierarchy_, options);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.allocations[i].allocated_gbps,
                     b.allocations[i].allocated_gbps);
    EXPECT_EQ(a.allocations[i].paths, b.allocations[i].paths);
  }
}

TEST_F(HierSolveTest, GapHarnessCatchesPlantedViolations) {
  auto hier = solve_hierarchical(topo_, tm_, hierarchy_);
  const auto flat = te::Solver().solve(topo_, tm_);

  // Over-allocation past the demanded rate.
  auto broken = hier;
  std::size_t victim = 0;
  for (std::size_t i = 0; i < broken.allocations.size(); ++i) {
    if (broken.allocations[i].allocated_gbps > 0) {
      victim = i;
      break;
    }
  }
  broken.allocations[victim].allocated_gbps =
      broken.allocations[victim].demand.rate_gbps * 2.0;
  EXPECT_FALSE(check_optimality_gap(topo_, tm_, broken, flat).ok());

  // A path over a down link.
  auto stale = hier;
  topo::Topology cut_topo = topo_;
  topo::LinkId used = topo::kInvalidLink;
  for (const auto& a : stale.allocations) {
    if (!a.paths.empty() && !a.paths[0].path.empty()) {
      used = a.paths[0].path.links[0];
      break;
    }
  }
  ASSERT_NE(used, topo::kInvalidLink);
  cut_topo.set_duplex_up(used, false);
  EXPECT_FALSE(check_optimality_gap(cut_topo, tm_, stale, flat).ok());

  // Reordered allocations.
  auto shuffled = hier;
  ASSERT_GE(shuffled.allocations.size(), 2u);
  std::swap(shuffled.allocations[0], shuffled.allocations[1]);
  EXPECT_FALSE(check_optimality_gap(topo_, tm_, shuffled, flat).ok());
}

TEST(HierSolve, IntraRegionOnlyWorkloadSkipsTheTopSolve) {
  const auto topo = topo::make_b4_like();
  const auto hierarchy = build_hierarchy(topo);
  // Demands confined to one region.
  std::uint32_t r = 0;
  const auto& members = hierarchy.partition.members[r];
  ASSERT_GE(members.size(), 2u);
  traffic::TrafficMatrix tm;
  tm.add({members[0], members[1], metrics::PriorityClass::kHigh, 5.0});
  HierSolveStats stats;
  const auto sol = solve_hierarchical(topo, tm, hierarchy, {}, &stats);
  EXPECT_EQ(stats.logical_demands, 0u);
  ASSERT_EQ(sol.allocations.size(), 1u);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 5.0, 1e-6);
  for (const auto& wp : sol.allocations[0].paths) {
    for (topo::LinkId l : wp.path.links) {
      EXPECT_EQ(hierarchy.partition.region_of[topo.link(l).src], r);
      EXPECT_EQ(hierarchy.partition.region_of[topo.link(l).dst], r);
    }
  }
}

}  // namespace
}  // namespace dsdn::hier
