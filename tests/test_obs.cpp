// Tests for the observability subsystem (src/obs): registry semantics,
// sharded-counter exactness under threads, span tracer nesting and ring
// wraparound, JSON exporter golden files, run artifacts, and the
// DSDN_OBS_DISABLED kill switch (via tests/obs_disabled_probe.cpp).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>

#include "obs/artifact.hpp"
#include "obs/export.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dsdn::obs::testprobe {
// Defined in obs_disabled_probe.cpp, compiled with -DDSDN_OBS_DISABLED.
int run_probe_spans(int n);
}  // namespace dsdn::obs::testprobe

namespace {

using namespace dsdn;

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, CounterFindOrCreateIsStable) {
  obs::Registry reg;
  obs::Counter& a = reg.counter("te.test.counter");
  obs::Counter& b = reg.counter("te.test.counter");
  EXPECT_EQ(&a, &b);
  a.add(3);
  b.inc();
  EXPECT_EQ(a.value(), 4u);
  a.reset();
  EXPECT_EQ(b.value(), 0u);
}

TEST(ObsRegistry, CrossKindRegistrationThrows) {
  obs::Registry reg;
  reg.counter("x");
  EXPECT_THROW(reg.gauge("x"), std::logic_error);
  EXPECT_THROW(reg.histogram("x"), std::logic_error);
  reg.gauge("y");
  EXPECT_THROW(reg.counter("y"), std::logic_error);
  reg.histogram("z");
  EXPECT_THROW(reg.counter("z"), std::logic_error);
  EXPECT_THROW(reg.gauge("z"), std::logic_error);
}

TEST(ObsRegistry, GaugeSetAndAdd) {
  obs::Registry reg;
  obs::Gauge& g = reg.gauge("queue.depth");
  g.set(4.0);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  g.add(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 6.5);
  g.reset();
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(ObsRegistry, HistogramBucketsAndOverflow) {
  obs::Registry reg;
  const double bounds[] = {1.0, 2.0};
  obs::Histogram& h = reg.histogram("lat", bounds);
  h.record(0.5);   // <= 1.0
  h.record(1.0);   // boundary: belongs to the <= 1.0 bucket
  h.record(1.5);   // <= 2.0
  h.record(5.0);   // overflow
  const obs::HistogramData d = h.data();
  ASSERT_EQ(d.bounds, (std::vector<double>{1.0, 2.0}));
  ASSERT_EQ(d.counts, (std::vector<std::uint64_t>{2, 1, 1}));
  EXPECT_EQ(d.count, 4u);
  EXPECT_DOUBLE_EQ(d.sum, 8.0);
}

TEST(ObsRegistry, HistogramDefaultBoundsAreSorted) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("t");
  const auto& b = h.bounds();
  ASSERT_GE(b.size(), 10u);
  EXPECT_TRUE(std::is_sorted(b.begin(), b.end()));
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  EXPECT_DOUBLE_EQ(b.back(), 100.0);
}

TEST(ObsRegistry, SnapshotDiffMetersAnInterval) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Gauge& g = reg.gauge("g");
  const double bounds[] = {1.0};
  obs::Histogram& h = reg.histogram("h", bounds);
  c.add(5);
  g.set(1.0);
  h.record(0.5);
  const obs::Snapshot before = reg.snapshot();
  c.add(3);
  g.set(9.0);
  h.record(0.5);
  h.record(2.0);
  const obs::Snapshot delta = reg.snapshot().diff(before);
  EXPECT_EQ(delta.counters.at("c"), 3u);
  EXPECT_DOUBLE_EQ(delta.gauges.at("g"), 9.0);  // gauges keep later value
  EXPECT_EQ(delta.histograms.at("h").counts,
            (std::vector<std::uint64_t>{1, 1}));
  EXPECT_EQ(delta.histograms.at("h").count, 2u);
  EXPECT_DOUBLE_EQ(delta.histograms.at("h").sum, 2.5);
}

TEST(ObsRegistry, DiffClampsAtZeroAfterMidIntervalReset) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  c.add(5);
  const obs::Snapshot before = reg.snapshot();
  reg.reset();
  c.add(1);
  const obs::Snapshot delta = reg.snapshot().diff(before);
  EXPECT_EQ(delta.counters.at("c"), 0u);  // 1 - 5, clamped
}

TEST(ObsRegistry, DiffKeepsMetricsAbsentFromEarlier) {
  obs::Registry reg;
  const obs::Snapshot before = reg.snapshot();
  reg.counter("late").add(7);
  const obs::Snapshot delta = reg.snapshot().diff(before);
  EXPECT_EQ(delta.counters.at("late"), 7u);
}

TEST(ObsRegistry, ResetZeroesValuesButKeepsHandles) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("c");
  obs::Histogram& h = reg.histogram("h");
  c.add(10);
  h.record(0.1);
  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(h.count(), 0u);
  c.inc();  // handle survives the reset
  EXPECT_EQ(reg.snapshot().counters.at("c"), 1u);
}

// The shard-merge stress: concurrent writers through one handle must
// lose no increments once joined. Run under TSan in tier-1.
TEST(ObsRegistry, ShardedCounterExactUnderThreads) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("stress.counter");
  obs::Histogram& h = reg.histogram("stress.histogram");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        c.inc();
        if (i % 64 == 0) h.record(1e-4);
      }
    });
  }
  // Concurrent snapshots must be safe (approximate but race-free).
  for (int i = 0; i < 50; ++i) {
    const obs::Snapshot s = reg.snapshot();
    EXPECT_LE(s.counters.at("stress.counter"),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(),
            static_cast<std::uint64_t>(kThreads) * (kPerThread / 64 + 1));
}

// ------------------------------------------------------------------ tracer

TEST(ObsTracer, RecordsNestedSpans) {
  auto& tracer = obs::Tracer::global();
  tracer.enable();
  {
    DSDN_TRACE_SPAN("outer");
    DSDN_TRACE_SPAN("inner");
  }
  tracer.disable();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  // Ordered by begin: outer opened first, closed last.
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_STREQ(events[1].name, "inner");
  EXPECT_LE(events[0].begin_ns, events[1].begin_ns);
  EXPECT_GE(events[0].end_ns, events[1].end_ns);
  EXPECT_EQ(events[0].tid, events[1].tid);
  tracer.clear();
}

TEST(ObsTracer, DisabledRecordsNothing) {
  auto& tracer = obs::Tracer::global();
  tracer.enable();
  tracer.disable();
  tracer.clear();
  {
    DSDN_TRACE_SPAN("ignored");
  }
  EXPECT_EQ(tracer.total_recorded(), 0u);
  EXPECT_TRUE(tracer.events().empty());
}

TEST(ObsTracer, RingWrapsAndCountsDropped) {
  auto& tracer = obs::Tracer::global();
  tracer.enable(/*ring_capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    DSDN_TRACE_SPAN("wrap");
  }
  tracer.disable();
  EXPECT_EQ(tracer.events().size(), 8u);  // most recent capacity spans
  EXPECT_EQ(tracer.total_recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  tracer.clear();
  EXPECT_TRUE(tracer.events().empty());
  EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, MergesSpansAcrossThreads) {
  auto& tracer = obs::Tracer::global();
  tracer.enable();
  std::thread worker([] {
    DSDN_TRACE_SPAN("from_worker");
  });
  worker.join();
  {
    DSDN_TRACE_SPAN("from_main");
  }
  tracer.disable();
  const auto events = tracer.events();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].tid, events[1].tid);
  tracer.clear();
}

TEST(ObsTracer, ChromeTraceJsonRoundTrips) {
  auto& tracer = obs::Tracer::global();
  tracer.enable();
  {
    DSDN_TRACE_SPAN("te.solve");
  }
  tracer.disable();
  const std::string json = tracer.chrome_trace_json();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"te.solve\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);

  const auto path =
      std::filesystem::temp_directory_path() / "dsdn_obs_trace_test.json";
  ASSERT_TRUE(tracer.write_chrome_trace(path.string()));
  std::ifstream in(path);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  EXPECT_EQ(contents, json);
  std::filesystem::remove(path);
  tracer.clear();
}

// ------------------------------------------------- DSDN_OBS_DISABLED probe

TEST(ObsKillSwitch, ProbeTuRecordsNoSpans) {
  auto& tracer = obs::Tracer::global();
  tracer.enable();
  const std::size_t before = tracer.total_recorded();
  EXPECT_EQ(obs::testprobe::run_probe_spans(1000), 499500);
  tracer.disable();
  EXPECT_EQ(tracer.total_recorded(), before);
  tracer.clear();
}

// --------------------------------------------------------------- exporters

TEST(ObsJson, EscapesControlCharacters) {
  EXPECT_EQ(obs::json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(obs::json_escape(std::string_view("\x01", 1)), "\\u0001");
}

TEST(ObsJson, NonFiniteDoublesBecomeNull) {
  obs::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(1.5);
  w.end_array();
  EXPECT_EQ(std::move(w).str(), "[null,null,1.5]");
}

TEST(ObsExport, ToJsonGolden) {
  obs::Registry reg;
  reg.counter("flood.retransmits").add(3);
  reg.gauge("pool.workers").set(8.0);
  const double bounds[] = {1.0, 2.0};
  obs::Histogram& h = reg.histogram("te.wall_s", bounds);
  h.record(0.5);
  h.record(1.5);
  h.record(5.0);
  EXPECT_EQ(obs::to_json(reg.snapshot()),
            "{\"counters\":{\"flood.retransmits\":3},"
            "\"gauges\":{\"pool.workers\":8},"
            "\"histograms\":{\"te.wall_s\":{\"bounds\":[1,2],"
            "\"counts\":[1,1,1],\"count\":3,\"sum\":7}}}");
}

TEST(ObsExport, ToTextListsEveryMetric) {
  obs::Registry reg;
  reg.counter("a.count").add(2);
  reg.gauge("b.level").set(1.25);
  reg.histogram("c.lat").record(0.01);
  const std::string text = obs::to_text(reg.snapshot());
  EXPECT_NE(text.find("a.count"), std::string::npos);
  EXPECT_NE(text.find("b.level"), std::string::npos);
  EXPECT_NE(text.find("c.lat"), std::string::npos);
  EXPECT_NE(text.find("n=1"), std::string::npos);
}

TEST(ObsExport, HistogramQuantileInterpolates) {
  obs::HistogramData h;
  h.bounds = {1.0, 2.0};
  h.counts = {0, 10, 0};
  h.count = 10;
  // All mass in (1, 2]: quantiles interpolate linearly across the bucket.
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 0.5), 1.5);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(h, 1.0), 2.0);
  // Overflow-bucket mass reports the last finite bound.
  obs::HistogramData ovf;
  ovf.bounds = {1.0};
  ovf.counts = {0, 4};
  ovf.count = 4;
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(ovf, 0.9), 1.0);
  EXPECT_DOUBLE_EQ(obs::histogram_quantile(obs::HistogramData{}, 0.5), 0.0);
}

// --------------------------------------------------------------- artifacts

TEST(ObsArtifact, GoldenJson) {
  obs::RunArtifact a("unit");
  a.param("scale", std::string("quick"));
  a.param("nodes", std::uint64_t{99});
  a.param("ratio", 1.5);
  a.param("bypasses", true);
  a.metric("speedup", 2.0);
  EXPECT_EQ(a.to_json(),
            "{\"name\":\"unit\",\"schema_version\":1,"
            "\"params\":{\"scale\":\"quick\",\"nodes\":99,\"ratio\":1.5,"
            "\"bypasses\":true},"
            "\"metrics\":{\"speedup\":2},"
            "\"series\":{},"
            "\"registry\":{\"counters\":{},\"gauges\":{},"
            "\"histograms\":{}}}");
}

TEST(ObsArtifact, SeriesReportsPercentileSweep) {
  metrics::EmpiricalDistribution d;
  for (int i = 1; i <= 100; ++i) d.add(static_cast<double>(i));
  obs::RunArtifact a("unit");
  a.series("lat_s", d);
  const std::string json = a.to_json();
  EXPECT_NE(json.find("\"lat_s\":{\"n\":100,"), std::string::npos);
  EXPECT_NE(json.find("\"p50\":50.5"), std::string::npos);
  EXPECT_NE(json.find("\"p99.9\":"), std::string::npos);
  EXPECT_NE(json.find("\"min\":1"), std::string::npos);
  EXPECT_NE(json.find("\"max\":100"), std::string::npos);
}

TEST(ObsArtifact, WritesFileNamedAfterRun) {
  obs::RunArtifact a("write_test");
  a.metric("x", 1.0);
  const auto dir = std::filesystem::temp_directory_path() / "dsdn_obs_art";
  std::filesystem::create_directories(dir);
  ASSERT_TRUE(a.write(dir.string()));
  const auto path = dir / "BENCH_write_test.json";
  EXPECT_TRUE(std::filesystem::exists(path));
  EXPECT_GT(std::filesystem::file_size(path), 0u);
  std::filesystem::remove_all(dir);
}

TEST(ObsArtifact, AttachedRegistryIsEmbedded) {
  obs::Registry reg;
  reg.counter("program.retries").add(4);
  obs::RunArtifact a("unit");
  a.attach_registry(reg.snapshot());
  EXPECT_NE(a.to_json().find("\"program.retries\":4"), std::string::npos);
}

}  // namespace
