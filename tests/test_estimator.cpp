#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "sim/emulation.hpp"
#include "topo/synthetic.hpp"
#include "traffic/estimator.hpp"

namespace dsdn::traffic {
namespace {

using metrics::PriorityClass;

TEST(Estimator, ValidatesConstructionAndInput) {
  EXPECT_THROW(DemandEstimator(0, {.alpha = 0.0}), std::invalid_argument);
  EXPECT_THROW(DemandEstimator(0, {.alpha = 1.5}), std::invalid_argument);
  DemandEstimator est(0);
  EXPECT_THROW(est.observe(0, PriorityClass::kHigh, 1.0),
               std::invalid_argument);  // egress == self
  EXPECT_THROW(est.observe(1, PriorityClass::kHigh, -1.0),
               std::invalid_argument);
}

TEST(Estimator, ConvergesToSteadyRate) {
  DemandEstimator est(0, {.alpha = 0.3});
  for (int epoch = 0; epoch < 40; ++epoch) {
    est.observe(5, PriorityClass::kHigh, 10.0);
    est.roll_epoch();
  }
  EXPECT_NEAR(est.estimate(5, PriorityClass::kHigh), 10.0, 0.01);
}

TEST(Estimator, SmoothsBursts) {
  DemandEstimator est(0, {.alpha = 0.3});
  for (int epoch = 0; epoch < 20; ++epoch) {
    est.observe(5, PriorityClass::kHigh, 10.0);
    est.roll_epoch();
  }
  // One 10x burst epoch moves the estimate by only ~alpha of the jump.
  est.observe(5, PriorityClass::kHigh, 100.0);
  est.roll_epoch();
  const double after = est.estimate(5, PriorityClass::kHigh);
  EXPECT_GT(after, 10.0);
  EXPECT_LT(after, 40.0);
}

TEST(Estimator, DecaysAndDropsIdleKeys) {
  DemandEstimator est(0, {.alpha = 0.5, .floor_gbps = 0.01});
  est.observe(5, PriorityClass::kLow, 4.0);
  est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 1u);
  for (int epoch = 0; epoch < 12; ++epoch) est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 0u);
  EXPECT_DOUBLE_EQ(est.estimate(5, PriorityClass::kLow), 0.0);
}

TEST(Estimator, KeysAggregateByEgressAndClass) {
  DemandEstimator est(0);
  est.observe(5, PriorityClass::kHigh, 1.0);
  est.observe(5, PriorityClass::kHigh, 2.0);  // same key, additive
  est.observe(5, PriorityClass::kLow, 7.0);
  est.observe(6, PriorityClass::kHigh, 3.0);
  est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 3u);
  const auto adverts = est.advertised();
  double total = 0;
  for (const auto& a : adverts) total += a.rate_gbps;
  EXPECT_NEAR(total, 0.3 * (3.0 + 7.0 + 3.0), 1e-9);
}

TEST(Estimator, DrivesControllerThroughTelemetry) {
  // End to end: controller originates NSUs whose demand section comes
  // from the estimator, and its TE programs routes for the estimated
  // flows.
  const auto topo = topo::make_ring(4);
  const auto prefixes = topo::assign_router_prefixes(topo);
  DemandEstimator est(0, {.alpha = 1.0});  // instant tracking for the test
  EstimatingTelemetry telemetry(&topo, prefixes, &est);

  core::ControllerConfig cc;
  cc.self = 0;
  core::Controller controller(cc, topo);

  // Before any traffic: nothing to advertise, nothing programmed.
  controller.originate(telemetry);
  auto result = controller.recompute();
  EXPECT_EQ(result.own_allocations, 0u);

  // Traffic shows up in-band; the next NSU advertises it and TE places it.
  est.observe(2, PriorityClass::kHigh, 5.0);
  est.roll_epoch();
  const auto directive = controller.originate(telemetry);
  ASSERT_EQ(directive.nsu.demands.size(), 1u);
  EXPECT_DOUBLE_EQ(directive.nsu.demands[0].rate_gbps, 5.0);
  result = controller.recompute();
  EXPECT_EQ(result.own_allocations, 1u);
  EXPECT_GT(result.encap.routes_installed, 0u);
}

}  // namespace
}  // namespace dsdn::traffic

namespace dsdn::sim {
namespace {

using metrics::PriorityClass;

TEST(InBandMeasurement, ClosedLoopTracksShiftingDemand) {
  // The full loop: traffic is observed in-band, estimators feed NSUs,
  // every headend re-solves, and routing follows the demand as it moves.
  auto topo = topo::make_fig5();
  traffic::TrafficMatrix unused;  // oracle matrix not consulted
  DsdnEmulation wan(topo, unused);
  wan.enable_in_band_measurement({.alpha = 1.0});
  wan.bootstrap();

  // Epoch 1: traffic 0 -> 1 appears.
  traffic::TrafficMatrix epoch1;
  epoch1.add({0, 1, PriorityClass::kHigh, 10.0});
  wan.observe_traffic(epoch1);
  wan.measurement_epoch();
  EXPECT_TRUE(wan.views_converged());
  const auto r1 = wan.send_packet(0, wan.address_of(1));
  EXPECT_EQ(r1.outcome, dataplane::ForwardOutcome::kDelivered);

  // Epoch 2: that flow dies; a new 2 -> 1 flow appears. The stale route
  // ages out of the advertisements; the new one gets programmed.
  traffic::TrafficMatrix epoch2;
  epoch2.add({2, 1, PriorityClass::kLow, 5.0});
  wan.observe_traffic(epoch2);
  wan.measurement_epoch();
  const auto r2 = wan.send_packet(2, wan.address_of(1), PriorityClass::kLow);
  EXPECT_EQ(r2.outcome, dataplane::ForwardOutcome::kDelivered);
  // 0 -> 1 high-priority routing disappeared with its demand (alpha = 1
  // drops it after one silent epoch).
  const auto r3 = wan.send_packet(0, wan.address_of(1));
  EXPECT_EQ(r3.outcome, dataplane::ForwardOutcome::kDroppedNoIngressRoute);
}

TEST(InBandMeasurement, EstimatedDemandMatchesAdvertisedDemand) {
  auto topo = topo::make_ring(4);
  traffic::TrafficMatrix unused;
  DsdnEmulation wan(topo, unused);
  wan.enable_in_band_measurement({.alpha = 0.5});
  wan.bootstrap();

  traffic::TrafficMatrix offered;
  offered.add({0, 2, PriorityClass::kHigh, 8.0});
  for (int epoch = 0; epoch < 10; ++epoch) {
    wan.observe_traffic(offered);
    wan.measurement_epoch();
  }
  // Every controller's global demand view converged on the estimate.
  for (topo::NodeId n = 0; n < wan.network().num_nodes(); ++n) {
    const auto tm = wan.controller(n).state().demands();
    ASSERT_EQ(tm.size(), 1u) << "controller " << n;
    EXPECT_NEAR(tm.demands()[0].rate_gbps, 8.0, 0.1);
  }
}

}  // namespace
}  // namespace dsdn::sim
