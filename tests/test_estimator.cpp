#include <gtest/gtest.h>

#include <cmath>

#include "core/controller.hpp"
#include "sim/emulation.hpp"
#include "topo/synthetic.hpp"
#include "traffic/estimator.hpp"

namespace dsdn::traffic {
namespace {

using metrics::PriorityClass;

TEST(Estimator, ValidatesConstructionAndInput) {
  EXPECT_THROW(DemandEstimator(0, {.alpha = 0.0}), std::invalid_argument);
  EXPECT_THROW(DemandEstimator(0, {.alpha = 1.5}), std::invalid_argument);
  DemandEstimator est(0);
  EXPECT_THROW(est.observe(0, PriorityClass::kHigh, 1.0),
               std::invalid_argument);  // egress == self
  EXPECT_THROW(est.observe(1, PriorityClass::kHigh, -1.0),
               std::invalid_argument);
}

TEST(Estimator, ConvergesToSteadyRate) {
  DemandEstimator est(0, {.alpha = 0.3});
  for (int epoch = 0; epoch < 40; ++epoch) {
    est.observe(5, PriorityClass::kHigh, 10.0);
    est.roll_epoch();
  }
  EXPECT_NEAR(est.estimate(5, PriorityClass::kHigh), 10.0, 0.01);
}

TEST(Estimator, SmoothsBursts) {
  DemandEstimator est(0, {.alpha = 0.3});
  for (int epoch = 0; epoch < 20; ++epoch) {
    est.observe(5, PriorityClass::kHigh, 10.0);
    est.roll_epoch();
  }
  // One 10x burst epoch moves the estimate by only ~alpha of the jump.
  est.observe(5, PriorityClass::kHigh, 100.0);
  est.roll_epoch();
  const double after = est.estimate(5, PriorityClass::kHigh);
  EXPECT_GT(after, 10.0);
  EXPECT_LT(after, 40.0);
}

TEST(Estimator, DecaysAndDropsIdleKeys) {
  DemandEstimator est(0, {.alpha = 0.5, .floor_gbps = 0.01});
  est.observe(5, PriorityClass::kLow, 4.0);
  est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 1u);
  for (int epoch = 0; epoch < 12; ++epoch) est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 0u);
  EXPECT_DOUBLE_EQ(est.estimate(5, PriorityClass::kLow), 0.0);
}

TEST(Estimator, DecayToDropTimingIsExact) {
  // alpha=0.5, floor=0.01, one observation of 4.0, then silence. After
  // the admission roll the raw EWMA is 2.0 at age 1; k silent rolls
  // later the corrected estimate is 4.0 * 0.5^(k+1) / (1 - 0.5^(k+1)):
  // still >= floor after 7 silent rolls (0.0157), below on the 8th
  // (0.0078).
  DemandEstimator est(0, {.alpha = 0.5, .floor_gbps = 0.01});
  est.observe(5, PriorityClass::kLow, 4.0);
  est.roll_epoch();
  for (int silent = 0; silent < 7; ++silent) est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 1u);
  EXPECT_NEAR(est.estimate(5, PriorityClass::kLow),
              4.0 * std::pow(0.5, 8) / (1.0 - std::pow(0.5, 8)), 1e-12);
  est.roll_epoch();  // 8th silent epoch crosses the floor
  EXPECT_EQ(est.num_tracked(), 0u);
}

TEST(Estimator, KeysAggregateByEgressAndClass) {
  DemandEstimator est(0);
  est.observe(5, PriorityClass::kHigh, 1.0);
  est.observe(5, PriorityClass::kHigh, 2.0);  // same key, additive
  est.observe(5, PriorityClass::kLow, 7.0);
  est.observe(6, PriorityClass::kHigh, 3.0);
  est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 3u);
  const auto adverts = est.advertised();
  double total = 0;
  for (const auto& a : adverts) total += a.rate_gbps;
  // Bias-corrected first-epoch estimates equal the samples themselves.
  EXPECT_NEAR(total, 3.0 + 7.0 + 3.0, 1e-9);
}

TEST(Estimator, AdmitsSteadyFlowInAdmissionDeadBand) {
  // Regression (admission dead-band): alpha=0.3, rate=1.0, floor=0.5 so
  // alpha*r = 0.3 < floor <= r. Pre-fix, admission gated on the first
  // EWMA step alpha*sample and this steady flow was never tracked.
  DemandEstimator est(0, {.alpha = 0.3, .floor_gbps = 0.5});
  for (int epoch = 0; epoch < 5; ++epoch) {
    est.observe(3, PriorityClass::kHigh, 1.0);
    est.roll_epoch();
    EXPECT_EQ(est.num_tracked(), 1u) << "epoch " << epoch;
  }
  EXPECT_NEAR(est.estimate(3, PriorityClass::kHigh), 1.0, 1e-9);
}

TEST(Estimator, ColdStartBiasCorrected) {
  // Regression (cold-start undershoot): a raw EWMA needs ~1/alpha
  // epochs to approach a constant rate; the corrected estimate must be
  // within 5% of the true rate after 3 epochs (it is exact for constant
  // input, so assert much tighter too).
  DemandEstimator est(0, {.alpha = 0.3});
  for (int epoch = 0; epoch < 3; ++epoch) {
    est.observe(7, PriorityClass::kLow, 10.0);
    est.roll_epoch();
  }
  const double e = est.estimate(7, PriorityClass::kLow);
  EXPECT_NEAR(e, 10.0, 0.05 * 10.0);
  EXPECT_NEAR(e, 10.0, 1e-9);  // exact for constant input
}

TEST(Estimator, RollEpochWithZeroObservations) {
  DemandEstimator est(0, {.alpha = 0.3});
  est.roll_epoch();  // no observations at all: must be a no-op
  EXPECT_EQ(est.num_tracked(), 0u);
  EXPECT_TRUE(est.advertised().empty());
  est.observe(5, PriorityClass::kHigh, 2.0);
  est.roll_epoch();
  EXPECT_EQ(est.num_tracked(), 1u);
  est.roll_epoch();  // silent epoch decays but keeps the key
  EXPECT_EQ(est.num_tracked(), 1u);
  EXPECT_GT(est.estimate(5, PriorityClass::kHigh), 0.0);
  EXPECT_LT(est.estimate(5, PriorityClass::kHigh), 2.0);
}

TEST(Estimator, AdvertisedRoundTripsThroughNsuAndStateDb) {
  // advertised() -> NSU -> remote StateDb must reproduce estimate()
  // bit-for-bit: the corrected value is computed once at advertisement
  // time and carried verbatim on the wire.
  const auto topo = topo::make_ring(4);
  const auto prefixes = topo::assign_router_prefixes(topo);
  DemandEstimator est(0, {.alpha = 0.3, .floor_gbps = 0.05});
  EstimatingTelemetry telemetry(&topo, prefixes, &est);

  for (int epoch = 0; epoch < 4; ++epoch) {
    est.observe(2, PriorityClass::kHigh, 3.7);
    est.observe(3, PriorityClass::kLow, 0.9);
    est.roll_epoch();
  }

  core::ControllerConfig cc0;
  cc0.self = 0;
  core::Controller origin(cc0, topo);
  core::ControllerConfig cc1;
  cc1.self = 1;
  core::Controller remote(cc1, topo);

  const auto directive = origin.originate(telemetry);
  ASSERT_EQ(directive.nsu.demands.size(), 2u);
  remote.handle_nsu(directive.nsu, topo::kInvalidLink);

  const auto tm = remote.state().demands();
  ASSERT_EQ(tm.size(), 2u);
  for (const auto& d : tm.demands()) {
    EXPECT_EQ(d.src, 0u);
    EXPECT_DOUBLE_EQ(d.rate_gbps, est.estimate(d.dst, d.priority));
  }
}

TEST(Estimator, DrivesControllerThroughTelemetry) {
  // End to end: controller originates NSUs whose demand section comes
  // from the estimator, and its TE programs routes for the estimated
  // flows.
  const auto topo = topo::make_ring(4);
  const auto prefixes = topo::assign_router_prefixes(topo);
  DemandEstimator est(0, {.alpha = 1.0});  // instant tracking for the test
  EstimatingTelemetry telemetry(&topo, prefixes, &est);

  core::ControllerConfig cc;
  cc.self = 0;
  core::Controller controller(cc, topo);

  // Before any traffic: nothing to advertise, nothing programmed.
  controller.originate(telemetry);
  auto result = controller.recompute();
  EXPECT_EQ(result.own_allocations, 0u);

  // Traffic shows up in-band; the next NSU advertises it and TE places it.
  est.observe(2, PriorityClass::kHigh, 5.0);
  est.roll_epoch();
  const auto directive = controller.originate(telemetry);
  ASSERT_EQ(directive.nsu.demands.size(), 1u);
  EXPECT_DOUBLE_EQ(directive.nsu.demands[0].rate_gbps, 5.0);
  result = controller.recompute();
  EXPECT_EQ(result.own_allocations, 1u);
  EXPECT_GT(result.encap.routes_installed, 0u);
}

}  // namespace
}  // namespace dsdn::traffic

namespace dsdn::sim {
namespace {

using metrics::PriorityClass;

TEST(InBandMeasurement, ClosedLoopTracksShiftingDemand) {
  // The full loop: traffic is observed in-band, estimators feed NSUs,
  // every headend re-solves, and routing follows the demand as it moves.
  auto topo = topo::make_fig5();
  traffic::TrafficMatrix unused;  // oracle matrix not consulted
  DsdnEmulation wan(topo, unused);
  wan.enable_in_band_measurement({.alpha = 1.0});
  wan.bootstrap();

  // Epoch 1: traffic 0 -> 1 appears.
  traffic::TrafficMatrix epoch1;
  epoch1.add({0, 1, PriorityClass::kHigh, 10.0});
  wan.observe_traffic(epoch1);
  wan.measurement_epoch();
  EXPECT_TRUE(wan.views_converged());
  const auto r1 = wan.send_packet(0, wan.address_of(1));
  EXPECT_EQ(r1.outcome, dataplane::ForwardOutcome::kDelivered);

  // Epoch 2: that flow dies; a new 2 -> 1 flow appears. The stale route
  // ages out of the advertisements; the new one gets programmed.
  traffic::TrafficMatrix epoch2;
  epoch2.add({2, 1, PriorityClass::kLow, 5.0});
  wan.observe_traffic(epoch2);
  wan.measurement_epoch();
  const auto r2 = wan.send_packet(2, wan.address_of(1), PriorityClass::kLow);
  EXPECT_EQ(r2.outcome, dataplane::ForwardOutcome::kDelivered);
  // 0 -> 1 high-priority routing disappeared with its demand (alpha = 1
  // drops it after one silent epoch).
  const auto r3 = wan.send_packet(0, wan.address_of(1));
  EXPECT_EQ(r3.outcome, dataplane::ForwardOutcome::kDroppedNoIngressRoute);
}

TEST(InBandMeasurement, EstimatedDemandMatchesAdvertisedDemand) {
  auto topo = topo::make_ring(4);
  traffic::TrafficMatrix unused;
  DsdnEmulation wan(topo, unused);
  wan.enable_in_band_measurement({.alpha = 0.5});
  wan.bootstrap();

  traffic::TrafficMatrix offered;
  offered.add({0, 2, PriorityClass::kHigh, 8.0});
  for (int epoch = 0; epoch < 10; ++epoch) {
    wan.observe_traffic(offered);
    wan.measurement_epoch();
  }
  // Every controller's global demand view converged on the estimate.
  for (topo::NodeId n = 0; n < wan.network().num_nodes(); ++n) {
    const auto tm = wan.controller(n).state().demands();
    ASSERT_EQ(tm.size(), 1u) << "controller " << n;
    EXPECT_NEAR(tm.demands()[0].rate_gbps, 8.0, 0.1);
  }
}

}  // namespace
}  // namespace dsdn::sim
