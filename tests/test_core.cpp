#include <gtest/gtest.h>

#include "core/bus.hpp"
#include "core/controller.hpp"
#include "core/nsu.hpp"
#include "core/state_db.hpp"
#include "topo/synthetic.hpp"
#include "traffic/gravity.hpp"
#include "util/rng.hpp"

namespace dsdn::core {
namespace {

using metrics::PriorityClass;

NodeStateUpdate minimal_nsu(topo::NodeId origin, std::uint64_t seq) {
  NodeStateUpdate nsu;
  nsu.origin = origin;
  nsu.seq = seq;
  return nsu;
}

TEST(Nsu, ValidatorAcceptsWellFormed) {
  NodeStateUpdate nsu = minimal_nsu(1, 1);
  nsu.links.push_back({0, 2, true, 100.0, 1.0, 0.001, 0});
  nsu.prefixes.push_back({topo::parse_ipv4("10.0.0.0"), 24});
  nsu.demands.push_back({2, PriorityClass::kHigh, 1.0});
  EXPECT_EQ(validate_nsu(nsu), NsuValidity::kValid);
}

TEST(Nsu, ValidatorCatchesMalformations) {
  NodeStateUpdate bad_origin = minimal_nsu(topo::kInvalidNode, 1);
  EXPECT_EQ(validate_nsu(bad_origin), NsuValidity::kBadOrigin);

  NodeStateUpdate dup = minimal_nsu(1, 1);
  dup.links.push_back({7, 2, true, 1, 1, 0, 0});
  dup.links.push_back({7, 3, true, 1, 1, 0, 0});
  EXPECT_EQ(validate_nsu(dup), NsuValidity::kDuplicateLinkAdvert);

  NodeStateUpdate neg_cap = minimal_nsu(1, 1);
  neg_cap.links.push_back({7, 2, true, -5, 1, 0, 0});
  EXPECT_EQ(validate_nsu(neg_cap), NsuValidity::kNegativeCapacity);

  NodeStateUpdate neg_dem = minimal_nsu(1, 1);
  neg_dem.demands.push_back({2, PriorityClass::kHigh, -1});
  EXPECT_EQ(validate_nsu(neg_dem), NsuValidity::kNegativeDemand);

  NodeStateUpdate self_dem = minimal_nsu(1, 1);
  self_dem.demands.push_back({1, PriorityClass::kHigh, 1});
  EXPECT_EQ(validate_nsu(self_dem), NsuValidity::kSelfDemand);

  NodeStateUpdate bad_prefix = minimal_nsu(1, 1);
  bad_prefix.prefixes.push_back({0, 40});
  EXPECT_EQ(validate_nsu(bad_prefix), NsuValidity::kBadPrefix);
}

TEST(Nsu, WireSizeTracksContent) {
  NodeStateUpdate small = minimal_nsu(1, 1);
  NodeStateUpdate big = small;
  for (int i = 0; i < 100; ++i)
    big.demands.push_back(
        {static_cast<topo::NodeId>(i + 2), PriorityClass::kHigh, 1.0});
  EXPECT_GT(nsu_wire_size(big), nsu_wire_size(small) + 1000);
}

// A 6-node ring as the configured inventory for StateDb tests.
topo::Topology ring6() {
  topo::Topology t;
  for (int i = 0; i < 6; ++i) {
    t.add_node("r" + std::to_string(i), "m" + std::to_string(i));
  }
  for (topo::NodeId i = 0; i < 6; ++i) t.add_duplex(i, (i + 1) % 6, 100.0);
  return t;
}

NodeStateUpdate content_nsu(const topo::Topology& t, topo::NodeId origin,
                            std::uint64_t seq, double cap) {
  NodeStateUpdate nsu = minimal_nsu(origin, seq);
  const topo::NodeId peer = (origin + 1) % 6;
  nsu.links.push_back({t.find_link(origin, peer), peer, true, cap, 1.0,
                       0.001, 0});
  return nsu;
}

TEST(StateDb, DuplicateApplyIsIdempotent) {
  const auto topo = ring6();
  StateDb db(topo);
  const auto nsu = content_nsu(topo, 1, 5, 100.0);
  EXPECT_TRUE(db.apply(nsu));
  const auto digest = db.digest();
  // Exact duplicate (same seq): rejected as stale, state untouched.
  EXPECT_FALSE(db.apply(nsu));
  EXPECT_EQ(db.digest(), digest);
  EXPECT_EQ(db.rejected_stale(), 1u);
  EXPECT_EQ(db.num_origins(), 1u);
}

TEST(StateDb, StaleSeqNeverOverwritesNewerState) {
  const auto topo = ring6();
  StateDb db(topo);
  EXPECT_TRUE(db.apply(content_nsu(topo, 1, 9, 400.0)));
  const auto digest = db.digest();
  // An older seq with different (attacker-chosen) content must bounce.
  EXPECT_FALSE(db.apply(content_nsu(topo, 1, 3, 777.0)));
  EXPECT_EQ(db.digest(), digest);
  ASSERT_NE(db.latest(1), nullptr);
  EXPECT_EQ(db.latest(1)->seq, 9u);
  EXPECT_DOUBLE_EQ(db.latest(1)->links[0].capacity_gbps, 400.0);
  EXPECT_EQ(db.rejected_stale(), 1u);
}

TEST(StateDb, ReorderedDeliveryConvergesToSameDigest) {
  // Flooding gives no ordering guarantee; any interleaving of the same
  // NSU set must land every replica on the same digest (the paper's
  // consensus-free convergence invariant).
  const auto topo = ring6();
  std::vector<NodeStateUpdate> updates;
  for (topo::NodeId origin = 1; origin <= 4; ++origin) {
    for (std::uint64_t seq = 1; seq <= 3; ++seq) {
      updates.push_back(
          content_nsu(topo, origin, seq, 100.0 * static_cast<double>(seq)));
    }
  }
  StateDb in_order(topo);
  for (const auto& u : updates) in_order.apply(u);

  StateDb reversed(topo);
  for (auto it = updates.rbegin(); it != updates.rend(); ++it)
    reversed.apply(*it);

  StateDb shuffled(topo);
  util::Rng rng(0x0DD);
  auto perm = updates;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[static_cast<std::size_t>(
                               rng.uniform_int(0, static_cast<std::int64_t>(
                                                      i - 1)))]);
  }
  for (const auto& u : perm) shuffled.apply(u);

  EXPECT_EQ(in_order.digest(), reversed.digest());
  EXPECT_EQ(in_order.digest(), shuffled.digest());
  // Every replica kept only the newest seq per origin.
  for (topo::NodeId origin = 1; origin <= 4; ++origin) {
    ASSERT_NE(reversed.latest(origin), nullptr);
    EXPECT_EQ(reversed.latest(origin)->seq, 3u);
  }
  // Reversed delivery saw 2 stale updates per origin.
  EXPECT_EQ(reversed.rejected_stale(), 8u);
}

TEST(StateDb, TakeDeltaStartsFullThenTracksChanges) {
  const auto topo = ring6();
  StateDb db(topo);
  // The first delta is always full: nothing has been recomputed yet.
  te::ViewDelta first = db.take_delta();
  EXPECT_TRUE(first.full);
  // Nothing happened since the drain: the next delta is empty.
  te::ViewDelta quiet = db.take_delta();
  EXPECT_FALSE(quiet.full);
  EXPECT_TRUE(quiet.empty());

  // A link-down advert marks exactly that link.
  NodeStateUpdate down = content_nsu(topo, 1, 1, 100.0);
  down.links[0].up = false;
  EXPECT_TRUE(db.apply(down));
  te::ViewDelta d = db.take_delta();
  EXPECT_FALSE(d.full);
  ASSERT_EQ(d.changed_links.size(), 1u);
  EXPECT_EQ(d.changed_links[0], topo.find_link(1, 2));
  // A first-heard origin with no demand rows is NOT a demand change: the
  // assembled traffic matrix is identical either way. (The delta is a
  // diff of recompute-to-recompute state, not of arrival events.)
  EXPECT_TRUE(d.changed_demand_origins.empty());
}

TEST(StateDb, TakeDeltaIsArrivalOrderInvariant) {
  // A flap's down-NSU and up-NSU can arrive in either order under lossy
  // flooding (the late down-NSU is rejected as stale). Both receivers
  // end with the same digest, and they MUST derive the same delta from
  // it -- the delta picks the warm solver's released set, and differing
  // released sets let two headends jointly overcommit a link (found by
  // the scenario swarm, seed 56 on lossy Abilene).
  const auto topo = ring6();
  StateDb in_order(topo);
  StateDb reordered(topo);
  NodeStateUpdate down = content_nsu(topo, 1, 2, 100.0);
  down.links[0].up = false;
  const NodeStateUpdate up = content_nsu(topo, 1, 3, 100.0);
  in_order.take_delta();
  reordered.take_delta();

  EXPECT_TRUE(in_order.apply(down));
  EXPECT_TRUE(in_order.apply(up));
  EXPECT_TRUE(reordered.apply(up));
  EXPECT_FALSE(reordered.apply(down));  // stale
  ASSERT_EQ(in_order.digest(), reordered.digest());

  const te::ViewDelta a = in_order.take_delta();
  const te::ViewDelta b = reordered.take_delta();
  EXPECT_EQ(a.changed_links, b.changed_links);
  EXPECT_EQ(a.changed_demand_origins, b.changed_demand_origins);
  // And since the flap netted out, neither reports the link as changed:
  // the previous solution is still valid for the (unchanged) view.
  EXPECT_TRUE(a.empty());
}

TEST(StateDb, TakeDeltaIgnoresNoopAndStaleUpdates) {
  const auto topo = ring6();
  StateDb db(topo);
  EXPECT_TRUE(db.apply(content_nsu(topo, 2, 1, 100.0)));
  db.take_delta();  // drain the initial full delta

  // Re-advertising the identical link state (newer seq) changes nothing.
  EXPECT_TRUE(db.apply(content_nsu(topo, 2, 2, 100.0)));
  te::ViewDelta noop = db.take_delta();
  EXPECT_TRUE(noop.changed_links.empty());
  EXPECT_TRUE(noop.changed_demand_origins.empty());

  // Stale updates never mark the delta.
  EXPECT_FALSE(db.apply(content_nsu(topo, 2, 1, 55.0)));
  EXPECT_TRUE(db.take_delta().empty());

  // A capacity change does mark the link.
  EXPECT_TRUE(db.apply(content_nsu(topo, 2, 3, 40.0)));
  te::ViewDelta cap = db.take_delta();
  ASSERT_EQ(cap.changed_links.size(), 1u);
  EXPECT_EQ(cap.changed_links[0], topo.find_link(2, 3));
}

TEST(StateDb, TakeDeltaTracksDemandChurn) {
  const auto topo = ring6();
  StateDb db(topo);
  NodeStateUpdate nsu = minimal_nsu(3, 1);
  nsu.demands.push_back({0, PriorityClass::kHigh, 2.0});
  EXPECT_TRUE(db.apply(nsu));
  db.take_delta();

  // Same rows under a newer seq: no demand change.
  nsu.seq = 2;
  EXPECT_TRUE(db.apply(nsu));
  EXPECT_TRUE(db.take_delta().changed_demand_origins.empty());

  // A re-rated row marks the origin.
  nsu.seq = 3;
  nsu.demands[0].rate_gbps = 5.0;
  EXPECT_TRUE(db.apply(nsu));
  te::ViewDelta d = db.take_delta();
  ASSERT_EQ(d.changed_demand_origins.size(), 1u);
  EXPECT_EQ(d.changed_demand_origins[0], 3u);

  // A dropped row also marks it.
  nsu.seq = 4;
  nsu.demands.clear();
  EXPECT_TRUE(db.apply(nsu));
  d = db.take_delta();
  ASSERT_EQ(d.changed_demand_origins.size(), 1u);
  EXPECT_EQ(d.changed_demand_origins[0], 3u);
}

TEST(Bus, PublishReachesSubscribersInOrder) {
  Bus bus;
  std::vector<int> order;
  bus.subscribe("t", [&](const std::any&) { order.push_back(1); });
  bus.subscribe("t", [&](const std::any&) { order.push_back(2); });
  bus.publish_as<int>("t", 0);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Bus, UnsubscribeStopsDelivery) {
  Bus bus;
  int hits = 0;
  const auto token = bus.subscribe("t", [&](const std::any&) { ++hits; });
  bus.publish_as<int>("t", 0);
  bus.unsubscribe("t", token);
  bus.publish_as<int>("t", 0);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(bus.num_subscribers("t"), 0u);
}

TEST(Bus, TypedPayloadRoundTrips) {
  Bus bus;
  std::uint64_t got = 0;
  bus.subscribe("d", [&](const std::any& m) {
    got = std::any_cast<std::uint64_t>(m);
  });
  bus.publish_as<std::uint64_t>("d", 42);
  EXPECT_EQ(got, 42u);
}

// ---- StateDb ----

class StateDbTest : public ::testing::Test {
 protected:
  topo::Topology topo_ = topo::make_ring(4);
  StateDb db_{topo_};
};

TEST_F(StateDbTest, AcceptsFreshRejectsStale) {
  EXPECT_TRUE(db_.apply(minimal_nsu(1, 5)));
  EXPECT_FALSE(db_.apply(minimal_nsu(1, 5)));  // duplicate
  EXPECT_FALSE(db_.apply(minimal_nsu(1, 3)));  // stale
  EXPECT_TRUE(db_.apply(minimal_nsu(1, 6)));
  EXPECT_EQ(db_.accepted(), 2u);
  EXPECT_EQ(db_.rejected_stale(), 2u);
  EXPECT_EQ(db_.seq_of(1), 6u);
}

TEST_F(StateDbTest, RejectsMalformed) {
  EXPECT_FALSE(db_.apply(minimal_nsu(topo::kInvalidNode, 1)));
  EXPECT_EQ(db_.rejected_invalid(), 1u);
}

TEST_F(StateDbTest, LinkStateUpdatesView) {
  const topo::LinkId l = topo_.find_link(0, 1);
  NodeStateUpdate nsu = minimal_nsu(0, 1);
  nsu.links.push_back({l, 1, /*up=*/false, 100, 1, 0.001, 0});
  EXPECT_TRUE(db_.apply(nsu));
  EXPECT_FALSE(db_.view().link(l).up);
  // A newer NSU restores it.
  NodeStateUpdate fresh = minimal_nsu(0, 2);
  fresh.links.push_back({l, 1, true, 100, 1, 0.001, 0});
  EXPECT_TRUE(db_.apply(fresh));
  EXPECT_TRUE(db_.view().link(l).up);
}

TEST_F(StateDbTest, DemandsAggregateAcrossOrigins) {
  NodeStateUpdate a = minimal_nsu(0, 1);
  a.demands.push_back({2, PriorityClass::kHigh, 3.0});
  NodeStateUpdate b = minimal_nsu(1, 1);
  b.demands.push_back({3, PriorityClass::kLow, 2.0});
  db_.apply(a);
  db_.apply(b);
  const auto tm = db_.demands();
  EXPECT_EQ(tm.size(), 2u);
  EXPECT_DOUBLE_EQ(tm.total_rate_gbps(), 5.0);
}

TEST_F(StateDbTest, DigestOrderInsensitive) {
  StateDb other(topo_);
  NodeStateUpdate a = minimal_nsu(0, 1);
  a.demands.push_back({2, PriorityClass::kHigh, 3.0});
  NodeStateUpdate b = minimal_nsu(1, 4);
  b.prefixes.push_back({topo::parse_ipv4("10.0.0.0"), 24});
  db_.apply(a);
  db_.apply(b);
  other.apply(b);
  other.apply(a);
  EXPECT_EQ(db_.digest(), other.digest());
}

TEST_F(StateDbTest, DigestDetectsDivergence) {
  StateDb other(topo_);
  db_.apply(minimal_nsu(0, 1));
  other.apply(minimal_nsu(0, 2));
  EXPECT_NE(db_.digest(), other.digest());
}

TEST_F(StateDbTest, LoadFromNeighborConverges) {
  NodeStateUpdate a = minimal_nsu(0, 3);
  a.demands.push_back({2, PriorityClass::kHigh, 1.0});
  db_.apply(a);
  StateDb fresh(topo_);
  fresh.load_from(db_);
  EXPECT_EQ(fresh.digest(), db_.digest());
  EXPECT_TRUE(fresh.heard_from(0));
}

TEST_F(StateDbTest, PrefixEntriesDeterministicOrder) {
  NodeStateUpdate b = minimal_nsu(1, 1);
  b.prefixes.push_back({topo::parse_ipv4("10.0.1.0"), 24});
  NodeStateUpdate a = minimal_nsu(0, 1);
  a.prefixes.push_back({topo::parse_ipv4("10.0.0.0"), 24});
  db_.apply(b);
  db_.apply(a);
  const auto entries = db_.prefix_entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].second, 0u);  // ordered by origin
  EXPECT_EQ(entries[1].second, 1u);
}

// ---- Controller ----

struct ControllerFixture {
  topo::Topology topo = topo::make_ring(4);
  traffic::TrafficMatrix tm;
  std::vector<topo::Prefix> prefixes = topo::assign_router_prefixes(topo);
  SimTelemetry telemetry{&topo, &tm, prefixes};

  ControllerFixture() {
    tm.add({0, 2, PriorityClass::kHigh, 1.0});
    tm.add({1, 3, PriorityClass::kLow, 2.0});
  }

  Controller make(topo::NodeId self) {
    ControllerConfig cc;
    cc.self = self;
    return Controller(cc, topo);
  }
};

TEST(Controller, OriginateFloodsOnAllUpLinks) {
  ControllerFixture f;
  Controller c = f.make(0);
  const auto d = c.originate(f.telemetry);
  EXPECT_EQ(d.nsu.origin, 0u);
  EXPECT_EQ(d.nsu.seq, 1u);
  EXPECT_EQ(d.out_links.size(), f.topo.node(0).out_links.size());
  EXPECT_FALSE(d.nsu.links.empty());
  EXPECT_EQ(d.nsu.demands.size(), 1u);  // the 0->2 demand
}

TEST(Controller, HandleNsuFloodsExceptArrivalReverse) {
  ControllerFixture f;
  Controller c1 = f.make(1);
  Controller c0 = f.make(0);
  const auto origin = c0.originate(f.telemetry);
  const topo::LinkId arrival = f.topo.find_link(0, 1);
  const auto onward = c1.handle_nsu(origin.nsu, arrival);
  ASSERT_FALSE(onward.empty());
  for (topo::LinkId l : onward.out_links) {
    EXPECT_NE(l, f.topo.link(arrival).reverse);
  }
}

TEST(Controller, StaleNsuStopsFlooding) {
  ControllerFixture f;
  Controller c1 = f.make(1);
  Controller c0 = f.make(0);
  const auto origin = c0.originate(f.telemetry);
  const topo::LinkId arrival = f.topo.find_link(0, 1);
  EXPECT_FALSE(c1.handle_nsu(origin.nsu, arrival).empty());
  // Second copy (e.g. around the ring): suppressed.
  EXPECT_TRUE(c1.handle_nsu(origin.nsu, f.topo.find_link(2, 1)).empty());
}

TEST(Controller, OwnEchoNeverRefloods) {
  ControllerFixture f;
  Controller c0 = f.make(0);
  const auto origin = c0.originate(f.telemetry);
  EXPECT_TRUE(c0.handle_nsu(origin.nsu, f.topo.find_link(1, 0)).empty());
}

TEST(Controller, RecomputeProgramsOwnPathsOnly) {
  ControllerFixture f;
  Controller c0 = f.make(0);
  Controller c1 = f.make(1);
  // Give both controllers the full network view: each originates its own
  // local state (a controller never accepts an echo of its own origin),
  // and third-party NSUs are delivered to both.
  {
    const auto d0 = c0.originate(f.telemetry);
    c1.handle_nsu(d0.nsu, topo::kInvalidLink);
    const auto d1 = c1.originate(f.telemetry);
    c0.handle_nsu(d1.nsu, topo::kInvalidLink);
    for (topo::NodeId n = 2; n < f.topo.num_nodes(); ++n) {
      Controller tmp = f.make(n);
      const auto d = tmp.originate(f.telemetry);
      c0.handle_nsu(d.nsu, topo::kInvalidLink);
      c1.handle_nsu(d.nsu, topo::kInvalidLink);
    }
  }
  const auto r0 = c0.recompute();
  const auto r1 = c1.recompute();
  EXPECT_EQ(r0.own_allocations, 1u);  // only 0->2
  EXPECT_EQ(r1.own_allocations, 1u);  // only 1->3
  EXPECT_GT(r0.encap.routes_installed, 0u);
  // Transit tables are static per own links.
  EXPECT_EQ(c0.dataplane().transit.size(), f.topo.node(0).out_links.size());
}

TEST(Controller, BusPublishesLifecycleTopics) {
  ControllerFixture f;
  Controller c = f.make(0);
  int state_changes = 0, solutions = 0;
  c.bus().subscribe(topics::kStateChanged,
                    [&](const std::any&) { ++state_changes; });
  c.bus().subscribe(topics::kSolutionReady,
                    [&](const std::any&) { ++solutions; });
  c.originate(f.telemetry);
  c.recompute();
  EXPECT_EQ(state_changes, 1);
  EXPECT_EQ(solutions, 1);
}

TEST(Controller, RecoverFromNeighborRestoresSeq) {
  ControllerFixture f;
  Controller c0 = f.make(0);
  Controller c1 = f.make(1);
  // c0 originates three times; c1 hears them all.
  for (int i = 0; i < 3; ++i) {
    const auto d = c0.originate(f.telemetry);
    c1.handle_nsu(d.nsu, f.topo.find_link(0, 1));
  }
  // c0 crashes and restarts fresh.
  Controller reborn = f.make(0);
  reborn.recover_from(c1);
  EXPECT_EQ(reborn.state().seq_of(0), 3u);
  // Its next origination must not be mistaken for stale.
  const auto d = reborn.originate(f.telemetry);
  EXPECT_GT(d.nsu.seq, 3u);
  EXPECT_FALSE(c1.handle_nsu(d.nsu, f.topo.find_link(0, 1)).empty());
}

TEST(Controller, CustomSolveApiIsUsed) {
  // Operator-defined control logic: swap the solver implementation.
  class NullSolver final : public SolveApi {
   public:
    mutable int calls = 0;
    te::Solution solve(const topo::Topology&, const traffic::TrafficMatrix&,
                       te::SolveStats*) const override {
      ++calls;
      return {};
    }
  };
  ControllerFixture f;
  Controller c = f.make(0);
  auto solver = std::make_unique<NullSolver>();
  NullSolver* raw = solver.get();
  c.set_solve_api(std::move(solver));
  c.originate(f.telemetry);
  c.recompute();
  EXPECT_EQ(raw->calls, 1);
  EXPECT_THROW(c.set_solve_api(nullptr), std::invalid_argument);
}

TEST(Controller, OpaqueTlvsSurviveValidationAndApply) {
  ControllerFixture f;
  StateDb db(f.topo);
  NodeStateUpdate nsu = minimal_nsu(2, 1);
  nsu.tlvs.push_back({0xBEEF, "future-algorithm-id"});
  EXPECT_EQ(validate_nsu(nsu), NsuValidity::kValid);
  EXPECT_TRUE(db.apply(nsu));
}

}  // namespace
}  // namespace dsdn::core

#include "core/introspection.hpp"

namespace dsdn::core {
namespace {

TEST(Introspection, StatusReflectsControllerState) {
  ControllerFixture f;
  Controller c = f.make(0);
  c.originate(f.telemetry);
  c.recompute();
  const auto status = collect_status(c);
  EXPECT_EQ(status.self, 0u);
  EXPECT_EQ(status.origins_heard, 1u);
  EXPECT_EQ(status.nsus_accepted, 1u);
  EXPECT_EQ(status.transit_entries, f.topo.node(0).out_links.size());
  EXPECT_GT(status.prefixes, 0u);
  EXPECT_EQ(status.links_up_in_view + status.links_down_in_view,
            f.topo.num_links());

  // Programming accounting flows from the controller's lifetime totals.
  EXPECT_EQ(status.recomputes, 1u);
  EXPECT_GT(status.routes_installed, 0u);
  EXPECT_EQ(status.install_retries, 0u);
  EXPECT_EQ(status.installs_gave_up, 0u);

  const auto text = render_status(status, c.state().view());
  EXPECT_NE(text.find("origins heard"), std::string::npos);
  EXPECT_NE(text.find("FRR-protected"), std::string::npos);
  EXPECT_NE(text.find("routes installed"), std::string::npos);
  EXPECT_NE(text.find("retransmits"), std::string::npos);
}

TEST(Introspection, RenderStatusGolden) {
  // Full-output golden: every field, including the programming and
  // flooding counter lines, in their operator-facing layout.
  const topo::Topology view = topo::make_ring(4);
  ControllerStatus s;
  s.self = 0;
  s.view_digest = 0x1f;
  s.origins_heard = 3;
  s.nsus_accepted = 5;
  s.nsus_rejected_stale = 2;
  s.nsus_rejected_invalid = 1;
  s.links_up_in_view = 7;
  s.links_down_in_view = 1;
  s.prefixes = 4;
  s.encap_entries = 6;
  s.transit_entries = 2;
  s.protected_links = 3;
  s.recomputes = 9;
  s.routes_installed = 12;
  s.install_retries = 4;
  s.installs_gave_up = 1;
  s.routes_too_deep = 2;
  s.flood_transmissions = 120;
  s.flood_retransmits = 6;
  s.flood_gave_up = 1;
  s.flood_decode_errors = 3;
  s.te_frozen_demands = 2;
  s.te_frozen_no_path = 1;
  s.te_frozen_round_cap = 1;
  s.te_incremental_solves = 8;
  s.te_full_solves = 1;
  s.te_incremental_fallbacks = 1;
  s.te_last_reuse_fraction = 0.875;
  EXPECT_EQ(
      render_status(s, view),
      "dSDN controller @ n0 (router 0)\n"
      "  view digest     : 1f\n"
      "  origins heard   : 3 / 4\n"
      "  NSUs            : 5 accepted, 2 stale, 1 invalid\n"
      "  view link state : 7 up, 1 down\n"
      "  FIBs            : 4 prefixes, 6 encap groups, 2 transit labels, "
      "3 FRR-protected links\n"
      "  programming     : 9 recomputes, 12 routes installed, 4 retries, "
      "1 gave up, 2 too deep\n"
      "  flooding        : 120 transmissions, 6 retransmits, 1 gave up, "
      "3 decode errors\n"
      "  TE solver       : 2 frozen demands (1 no-path, 1 round-cap); "
      "incremental 8 warm / "
      "1 full (1 fallbacks), last reuse 87.5%\n");
}

TEST(Introspection, MergeFloodCountersReadsHostRegistry) {
  obs::Registry host;
  host.counter("flood.transmissions").add(10);
  host.counter("flood.retransmits").add(2);
  host.counter("flood.gave_up").add(1);
  ControllerStatus s;
  merge_flood_counters(s, host.snapshot());
  EXPECT_EQ(s.flood_transmissions, 10u);
  EXPECT_EQ(s.flood_retransmits, 2u);
  EXPECT_EQ(s.flood_gave_up, 1u);
  EXPECT_EQ(s.flood_decode_errors, 0u);  // absent counter reads as zero
}

TEST(Introspection, FleetDigestCountsConvergence) {
  ControllerFixture f;
  Controller a = f.make(0);
  Controller b = f.make(1);
  const auto d0 = a.originate(f.telemetry);
  b.handle_nsu(d0.nsu, topo::kInvalidLink);
  const auto d1 = b.originate(f.telemetry);
  a.handle_nsu(d1.nsu, topo::kInvalidLink);
  const auto text = render_fleet_digest(
      {collect_status(a), collect_status(b)});
  EXPECT_NE(text.find("2 controllers, 2 sharing"), std::string::npos);
}

}  // namespace
}  // namespace dsdn::core
