// Compiled with -DDSDN_OBS_DISABLED (see tests/CMakeLists.txt): proves
// the observability kill switch really compiles spans to nothing.
//
//  - The static_assert shows DSDN_TRACE_SPAN is legal inside a constexpr
//    function, which only ((void)0) is -- a ScopedSpan would touch the
//    runtime tracer and fail to be a constant expression.
//  - run_probe_spans() executes span sites; test_obs.cpp calls it with
//    the tracer *enabled* and checks that nothing was recorded.
//
// This TU links into the same binary as TUs built without the define;
// the class definitions are identical either way, so there is no ODR
// hazard -- only the macro expansion differs.

#ifndef DSDN_OBS_DISABLED
#error "obs_disabled_probe.cpp must be compiled with -DDSDN_OBS_DISABLED"
#endif

#include "obs/trace.hpp"

namespace dsdn::obs::testprobe {

constexpr int constexpr_with_span() {
  DSDN_TRACE_SPAN("probe.constexpr");
  return 42;
}
static_assert(constexpr_with_span() == 42,
              "DSDN_TRACE_SPAN must expand to a constant expression when "
              "DSDN_OBS_DISABLED is set");

int run_probe_spans(int n) {
  int acc = 0;
  for (int i = 0; i < n; ++i) {
    DSDN_TRACE_SPAN("probe.loop");
    acc += i;
  }
  return acc;
}

}  // namespace dsdn::obs::testprobe
