// Cross-cutting property tests for the invariants called out in DESIGN.md
// §5, swept across seeds/topologies with parameterized gtest.

#include <gtest/gtest.h>

#include <set>

#include "dataplane/sublabel.hpp"
#include "sim/convergence.hpp"
#include "sim/emulation.hpp"
#include "sim/flow_eval.hpp"
#include "te/ksp.hpp"
#include "te/solver.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn {
namespace {

using metrics::PriorityClass;

// ---------- TE solver properties over random workloads ----------

class SolverPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SolverPropertyTest, CapacityNeverExceededAndPathsValid) {
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.seed = GetParam();
  gp.target_max_utilization = 0.4 + 0.25 * static_cast<double>(GetParam() % 5);
  const auto tm = traffic::generate_gravity(topo, gp);
  const auto sol = te::Solver().solve(topo, tm);

  for (double r : sol.residual_capacity(topo)) EXPECT_GE(r, -1e-6);
  for (const auto& a : sol.allocations) {
    EXPECT_LE(a.allocated_gbps, a.demand.rate_gbps + 1e-6);
    for (const auto& wp : a.paths) {
      EXPECT_TRUE(wp.path.is_valid(topo));
      EXPECT_EQ(wp.path.src(topo), a.demand.src);
      EXPECT_EQ(wp.path.dst(topo), a.demand.dst);
      EXPECT_GT(wp.weight, 0.0);
      EXPECT_LE(wp.weight, 1.0 + 1e-9);
    }
  }
}

TEST_P(SolverPropertyTest, HigherClassNeverStarvedByLower) {
  // Strict priority: summed over the network, the high class's admitted
  // fraction is >= the low class's.
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.seed = GetParam() ^ 0xFACE;
  gp.target_max_utilization = 1.6;  // force scarcity
  const auto tm = traffic::generate_gravity(topo, gp);
  const auto sol = te::Solver().solve(topo, tm);
  double offered[metrics::kNumPriorityClasses] = {};
  double admitted[metrics::kNumPriorityClasses] = {};
  for (const auto& a : sol.allocations) {
    offered[static_cast<int>(a.demand.priority)] += a.demand.rate_gbps;
    admitted[static_cast<int>(a.demand.priority)] += a.allocated_gbps;
  }
  const double high_frac = admitted[0] / offered[0];
  const double low_frac = admitted[2] / offered[2];
  EXPECT_GE(high_frac + 1e-9, low_frac);
}

TEST_P(SolverPropertyTest, CacheNeverChangesFeasibility) {
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.seed = GetParam();
  const auto tm = traffic::generate_gravity(topo, gp);
  te::PathCache cache(topo);
  te::SolverOptions opt;
  opt.cache = &cache;
  const auto sol = te::Solver(opt).solve(topo, tm);
  for (double r : sol.residual_capacity(topo)) EXPECT_GE(r, -1e-6);
  const auto plain = te::Solver().solve(topo, tm);
  EXPECT_NEAR(sol.total_allocated_gbps(), plain.total_allocated_gbps(),
              plain.total_allocated_gbps() * 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SolverPropertyTest,
                         ::testing::Range<std::uint64_t>(1, 9));

// ---------- k-shortest-path properties ----------

class KspPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KspPropertyTest, PathsSortedDistinctLoopless) {
  const auto topo = topo::make_cogentco();
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    const auto s = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.num_nodes()) - 1));
    const auto d = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.num_nodes()) - 1));
    if (s == d) continue;
    const auto paths = te::k_shortest_paths(topo, s, d, 6);
    ASSERT_FALSE(paths.empty());
    std::set<std::vector<topo::LinkId>> seen;
    double last_cost = 0;
    for (const auto& p : paths) {
      EXPECT_TRUE(p.is_valid(topo));
      EXPECT_EQ(p.src(topo), s);
      EXPECT_EQ(p.dst(topo), d);
      EXPECT_TRUE(seen.insert(p.links).second);
      EXPECT_GE(p.igp_cost(topo) + 1e-9, last_cost);
      last_cost = p.igp_cost(topo);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KspPropertyTest,
                         ::testing::Values(3, 17, 31));

// ---------- Sublabel properties over random graphs ----------

class SublabelPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SublabelPropertyTest, RandomGraphLabelingLocallyUnique) {
  topo::detail::GeoNetworkParams params;
  params.n_nodes = 60;
  params.n_hubs = 12;
  params.extra_core_chords = 10;
  params.seed = GetParam();
  const auto topo = topo::detail::make_geo_network(params);
  const auto a = dataplane::assign_sublabels(topo);
  for (const auto& n : topo.nodes()) {
    std::set<dataplane::Sublabel> seen;
    for (auto l : n.in_links) EXPECT_TRUE(seen.insert(a.link_sublabel[l]).second);
    for (auto l : n.out_links) EXPECT_TRUE(seen.insert(a.link_sublabel[l]).second);
  }
  // Tables build without ambiguity on every router.
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_NO_THROW(dataplane::SublabelFib::build(topo, n, a));
  }
}

TEST_P(SublabelPropertyTest, EncodedPathsForwardToIntendedEgress) {
  topo::detail::GeoNetworkParams params;
  params.n_nodes = 40;
  params.n_hubs = 10;
  params.seed = GetParam() ^ 0xABCD;
  const auto topo = topo::detail::make_geo_network(params);
  const auto a = dataplane::assign_sublabels(topo);
  std::vector<dataplane::SublabelFib> fibs;
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n)
    fibs.push_back(dataplane::SublabelFib::build(topo, n, a));

  util::Rng rng(GetParam());
  for (int trial = 0; trial < 25; ++trial) {
    const auto s = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.num_nodes()) - 1));
    const auto d = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(topo.num_nodes()) - 1));
    if (s == d) continue;
    const auto p = te::shortest_path(topo, s, d);
    if (!p) continue;
    const auto r = dataplane::forward_sublabel(
        topo, fibs, s, dataplane::encode_sublabel_route(*p, a));
    EXPECT_TRUE(r.delivered);
    EXPECT_EQ(r.final_node, d);
    EXPECT_EQ(r.hops, p->hops());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SublabelPropertyTest,
                         ::testing::Values(0x11, 0x22, 0x33, 0x44));

// ---------- Consensus-free convergence over random failures ----------

class EmulationPropertyTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(EmulationPropertyTest, ViewsAndDeliveryConvergeAfterRandomFailures) {
  auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.3;
  gp.seed = GetParam();
  auto tm = traffic::generate_gravity(topo, gp);
  sim::DsdnEmulation emu(topo, tm);
  emu.bootstrap();

  // Fail two random (connectivity-preserving) fibers, then repair one.
  const auto fibers =
      sim::pick_failure_fibers(emu.network(), 2, GetParam());
  for (topo::LinkId f : fibers) emu.fail_fiber(f);
  EXPECT_TRUE(emu.views_converged());
  if (!fibers.empty()) emu.repair_fiber(fibers.front());
  EXPECT_TRUE(emu.views_converged());

  // Sample deliveries over pairs that actually have measured demand (a
  // headend only programs routes for demands it carries); they must still
  // deliver despite the failures.
  util::Rng rng(GetParam() ^ 0x77);
  const auto& demands = emu.demands().demands();
  for (int trial = 0; trial < 20; ++trial) {
    const auto& dem = rng.pick(demands);
    const auto r =
        emu.send_packet(dem.src, emu.address_of(dem.dst), dem.priority);
    EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered)
        << dem.src << "->" << dem.dst << ": "
        << dataplane::forward_outcome_name(r.outcome);
    EXPECT_EQ(r.final_node, dem.dst);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EmulationPropertyTest,
                         ::testing::Values(5, 6, 7));

// ---------- Loss-evaluation properties ----------

class LossPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LossPropertyTest, LossBoundedAndMonotoneInDemand) {
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.seed = GetParam();
  gp.target_max_utilization = 0.8;
  const auto tm = traffic::generate_gravity(topo, gp);
  const auto sol = te::Solver().solve(topo, tm);
  const auto routing = sim::InstalledRouting::from_solution(sol);

  const auto r1 = sim::evaluate_loss(topo, tm, routing);
  for (double l : r1.loss) {
    EXPECT_GE(l, 0.0);
    EXPECT_LE(l, 1.0);
  }
  // Scaling offered traffic (same routing) cannot reduce any loss.
  const auto heavier = tm.scaled(2.0);
  const auto r2 = sim::evaluate_loss(topo, heavier, routing);
  double mean1 = 0, mean2 = 0;
  for (double l : r1.loss) mean1 += l;
  for (double l : r2.loss) mean2 += l;
  EXPECT_GE(mean2 + 1e-9, mean1);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LossPropertyTest, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dsdn
