#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/format.hpp"
#include "util/rng.hpp"

namespace dsdn::util {
namespace {

TEST(Rng, DeterministicUnderSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.uniform_int(0, 1000000), b.uniform_int(0, 1000000));
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform_int(0, 1 << 30) == b.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng parent1(7), parent2(7);
  Rng c1 = parent1.split();
  Rng c2 = parent2.split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c1.uniform_int(0, 1 << 30), c2.uniform_int(0, 1 << 30));
  }
  // Indexed splits with distinct indices differ.
  Rng s0 = parent1.split(0);
  Rng s1 = parent1.split(1);
  EXPECT_NE(s0.uniform_int(0, 1 << 30), s1.uniform_int(0, 1 << 30));
}

TEST(Rng, IndexedSplitsAreNotAdjacentSeedStreams) {
  // Child streams must come from splitmix64(seed ^ f(index)), not from
  // seed + index: seeding a PCG/LCG family with adjacent integers
  // produces visibly correlated streams. Verify split(i) disagrees with
  // a raw Rng(seed + i) and that sibling splits are decorrelated.
  const std::uint64_t seed = 1234;
  Rng parent(seed);
  for (std::uint64_t i = 0; i < 4; ++i) {
    Rng child = parent.split(i);
    Rng naive(seed + i);
    int same = 0;
    for (int k = 0; k < 100; ++k) {
      if (child.uniform_int(0, 1 << 30) == naive.uniform_int(0, 1 << 30))
        ++same;
    }
    EXPECT_LT(same, 3) << "split(" << i << ") matches naive seed+" << i;
  }
  // Sibling decorrelation: adjacent indexed splits share almost no draws.
  Rng s0 = parent.split(100);
  Rng s1 = parent.split(101);
  int same = 0;
  for (int k = 0; k < 200; ++k) {
    if (s0.uniform_int(0, 1 << 30) == s1.uniform_int(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(0, 4));
  EXPECT_EQ(seen.size(), 5u);
  EXPECT_EQ(*seen.begin(), 0);
  EXPECT_EQ(*seen.rbegin(), 4);
}

TEST(Rng, UniformIntRejectsInvertedRange) {
  Rng rng(3);
  EXPECT_THROW(rng.uniform_int(5, 4), std::invalid_argument);
}

TEST(Rng, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, ExponentialRejectsNonPositiveMean) {
  Rng rng(1);
  EXPECT_THROW(rng.exponential(0.0), std::invalid_argument);
}

TEST(Rng, LognormalMedianApproximatelyCorrect) {
  Rng rng(13);
  std::vector<double> v;
  for (int i = 0; i < 20001; ++i) v.push_back(rng.lognormal_median(2.0, 0.8));
  std::nth_element(v.begin(), v.begin() + v.size() / 2, v.end());
  EXPECT_NEAR(v[v.size() / 2], 2.0, 0.15);
}

TEST(Rng, ParetoLowerBoundHolds) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(rng.pareto(1.5, 2.0), 1.5);
  }
}

TEST(Rng, WeightedPickRespectsWeights) {
  Rng rng(19);
  std::vector<double> w = {0.0, 9.0, 1.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) ++counts[rng.weighted_pick(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_GT(counts[1], counts[2] * 5);
}

TEST(Rng, WeightedPickRejectsAllZero) {
  Rng rng(19);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(rng.weighted_pick(w), std::invalid_argument);
}

TEST(Rng, PickRejectsEmpty) {
  Rng rng(19);
  std::vector<int> empty;
  EXPECT_THROW(rng.pick(empty), std::invalid_argument);
}

TEST(Splitmix, KnownAvalanche) {
  // Consecutive inputs produce wildly different outputs.
  EXPECT_NE(splitmix64(1) >> 32, splitmix64(2) >> 32);
  EXPECT_NE(splitmix64(0), 0u);
}

TEST(Format, DurationUnits) {
  EXPECT_EQ(format_duration(0.0000005), "0.5 us");
  EXPECT_EQ(format_duration(0.0025), "2.50 ms");
  EXPECT_EQ(format_duration(1.5), "1.50 s");
}

TEST(Format, PadHelpers) {
  EXPECT_EQ(pad_left("x", 3), "  x");
  EXPECT_EQ(pad_right("x", 3), "x  ");
  EXPECT_EQ(pad_left("xyz", 2), "xyz");
}

TEST(Format, RenderTableAlignsAndValidates) {
  const auto table = render_table({"a", "bb"}, {{"1", "2"}, {"33", "4"}});
  EXPECT_NE(table.find("| a "), std::string::npos);
  EXPECT_NE(table.find("| 33 | 4 "), std::string::npos);
  EXPECT_THROW(render_table({"a"}, {{"1", "2"}}), std::invalid_argument);
}

}  // namespace
}  // namespace dsdn::util
