#include <gtest/gtest.h>

#include "dataplane/frr.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"

namespace dsdn::dataplane {
namespace {

TEST(WidestPath, MaximizesBottleneck) {
  // Two routes a->d: short/narrow vs long/wide.
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, 1.0);   // narrow
  t.add_duplex(b, d, 1.0);
  t.add_duplex(a, c, 50.0);  // wide
  t.add_duplex(c, d, 50.0);
  std::vector<double> residual(t.num_links());
  for (std::size_t l = 0; l < t.num_links(); ++l)
    residual[l] = t.link(static_cast<topo::LinkId>(l)).capacity_gbps;
  const auto p = widest_path(t, a, d, residual);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->node_sequence(t).at(1), c);
}

TEST(WidestPath, DisconnectedReturnsNullopt) {
  topo::Topology t;
  t.add_node("a");
  t.add_node("b");
  std::vector<double> residual;
  EXPECT_FALSE(widest_path(t, 0, 1, residual).has_value());
}

TEST(BypassPlan, ShortestStrategyAvoidsProtectedFiber) {
  const auto t = topo::make_ring(5);
  const auto plan = BypassPlan::compute(t, BypassStrategy::kShortestPath);
  for (const topo::Link& l : t.links()) {
    const auto& cands = plan.candidates(l.id);
    ASSERT_EQ(cands.size(), 1u) << "link " << l.id;
    const te::Path& p = cands.front();
    EXPECT_EQ(p.src(t), l.src);
    EXPECT_EQ(p.dst(t), l.dst);
    // The bypass must not use the protected fiber in either direction.
    for (topo::LinkId bl : p.links) {
      EXPECT_NE(bl, l.id);
      EXPECT_NE(bl, l.reverse);
    }
  }
}

TEST(BypassPlan, CoversAllUpLinksOnRealTopology) {
  const auto t = topo::make_geant();
  const auto plan = BypassPlan::compute(t, BypassStrategy::kShortestPath);
  std::size_t protectable = 0;
  for (const topo::Link& l : t.links()) {
    if (!plan.candidates(l.id).empty()) ++protectable;
  }
  // GEANT is 2-edge-connected except possibly a few spurs.
  EXPECT_GT(protectable, t.num_links() * 3 / 4);
}

TEST(BypassPlan, CapacityAwarePrefersSparePath) {
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  const topo::LinkId protectee = t.add_duplex(a, d, 10.0);
  t.add_duplex(a, b, 10.0);
  t.add_duplex(b, d, 10.0);
  t.add_duplex(a, c, 10.0);
  t.add_duplex(c, d, 10.0);
  // The b route is nearly full; c has spare capacity.
  std::vector<double> residual(t.num_links(), 10.0);
  residual[t.find_link(a, b)] = 0.5;
  const auto shortest =
      BypassPlan::compute(t, BypassStrategy::kShortestPath, residual);
  const auto aware =
      BypassPlan::compute(t, BypassStrategy::kCapacityAware, residual);
  const auto aware_path =
      aware.select(t, protectee, 1.0, 1, residual);
  ASSERT_TRUE(aware_path.has_value());
  EXPECT_EQ(aware_path->node_sequence(t).at(1), c);
  // Shortest-path FRR is oblivious: it may pick either 2-hop route.
  ASSERT_EQ(shortest.candidates(protectee).size(), 1u);
}

TEST(BypassPlan, KShortestAdmitsByCapacity) {
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  const topo::LinkId protectee = t.add_duplex(a, d, 10.0);
  t.add_duplex(a, b, 10.0, /*igp=*/1.0);
  t.add_duplex(b, d, 10.0, 1.0);
  t.add_duplex(a, c, 10.0, 5.0);  // longer
  t.add_duplex(c, d, 10.0, 5.0);
  std::vector<double> residual(t.num_links(), 10.0);
  const auto plan =
      BypassPlan::compute(t, BypassStrategy::kKShortestPaths, residual, 4);
  // Flow that fits the shortest candidate: take it.
  auto small = plan.select(t, protectee, 2.0, 1, residual);
  ASSERT_TRUE(small.has_value());
  EXPECT_EQ(small->node_sequence(t).at(1), b);
  // Flow too big for the b route once it's drained: falls to the widest.
  residual[t.find_link(a, b)] = 0.1;
  auto big = plan.select(t, protectee, 2.0, 1, residual);
  ASSERT_TRUE(big.has_value());
  EXPECT_EQ(big->node_sequence(t).at(1), c);
}

TEST(BypassPlan, KCapacityAwareLoadBalances) {
  const auto t = topo::make_full_mesh(5, 100.0);
  std::vector<double> residual(t.num_links(), 100.0);
  const auto plan =
      BypassPlan::compute(t, BypassStrategy::kKCapacityAware, residual, 8);
  const topo::LinkId protectee = t.find_link(0, 1);
  ASSERT_GT(plan.candidates(protectee).size(), 1u);
  // Different entropies spread across candidates.
  std::set<std::vector<topo::LinkId>> picked;
  for (std::uint64_t e = 0; e < 64; ++e) {
    const auto p = plan.select(t, protectee, 1.0, e, residual);
    ASSERT_TRUE(p.has_value());
    picked.insert(p->links);
  }
  EXPECT_GT(picked.size(), 1u);
}

TEST(BypassPlan, SelectReturnsNulloptWhenCandidatesDead) {
  auto t = topo::make_ring(4);
  const topo::LinkId protectee = t.find_link(0, 1);
  const auto plan = BypassPlan::compute(t, BypassStrategy::kShortestPath);
  ASSERT_FALSE(plan.candidates(protectee).empty());
  // Kill a link on the (only) bypass: selection must fail, not loop.
  t.set_duplex_up(t.find_link(3, 2), false);
  EXPECT_FALSE(plan.select(t, protectee, 1.0, 1, {}).has_value());
}

TEST(BypassPlan, StrategyNamesDistinct) {
  std::set<std::string> names;
  for (auto s : {BypassStrategy::kShortestPath, BypassStrategy::kCapacityAware,
                 BypassStrategy::kKShortestPaths,
                 BypassStrategy::kKCapacityAware}) {
    names.insert(bypass_strategy_name(s));
  }
  EXPECT_EQ(names.size(), 4u);
}

}  // namespace
}  // namespace dsdn::dataplane
