#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sim/scenario.hpp"
#include "te/batch_solver.hpp"
#include "te/incremental.hpp"
#include "te/path_cache.hpp"
#include "te/solver.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::te {
namespace {

using metrics::PriorityClass;

// Exact (bitwise) solution equality: the batch backend's contract is
// that cacheless solves reproduce the legacy waterfill to the last ULP,
// so every router may pick either backend without breaking the
// consensus-free property.
void expect_bit_identical(const Solution& a, const Solution& b,
                          const std::string& context) {
  ASSERT_EQ(a.allocations.size(), b.allocations.size()) << context;
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    const Allocation& x = a.allocations[i];
    const Allocation& y = b.allocations[i];
    ASSERT_EQ(x.allocated_gbps, y.allocated_gbps)
        << context << " alloc " << i;
    ASSERT_EQ(x.paths.size(), y.paths.size()) << context << " alloc " << i;
    for (std::size_t p = 0; p < x.paths.size(); ++p) {
      ASSERT_EQ(x.paths[p].path, y.paths[p].path)
          << context << " alloc " << i << " path " << p;
      ASSERT_EQ(x.paths[p].weight, y.paths[p].weight)
          << context << " alloc " << i << " path " << p;
    }
  }
}

SolverOptions backend_options(SolverBackend backend,
                              std::size_t num_threads = 1) {
  SolverOptions opt;
  opt.backend = backend;
  opt.num_threads = num_threads;
  return opt;
}

TEST(BatchSolver, BitIdenticalToLegacyAcrossSeedsAndThreadCounts) {
  // The satellite-4 determinism sweep: for 16 gravity seeds on two real
  // topologies, the batch solver at pool sizes 1/4/8 must reproduce the
  // legacy solver bit-for-bit (the batched SSSP must introduce no
  // ordering nondeterminism).
  const topo::Topology topos[] = {topo::make_abilene(), topo::make_geant()};
  for (const auto& t : topos) {
    for (std::uint64_t seed = 0; seed < 16; ++seed) {
      traffic::GravityParams gp;
      gp.seed = seed;
      gp.target_max_utilization = 0.9;  // some contention every seed
      const auto tm = traffic::generate_gravity(t, gp);
      const auto reference =
          Solver(backend_options(SolverBackend::kLegacy)).solve(t, tm);
      for (std::size_t threads : {std::size_t{1}, std::size_t{4},
                                  std::size_t{8}}) {
        const auto batch =
            Solver(backend_options(SolverBackend::kBatch, threads))
                .solve(t, tm);
        expect_bit_identical(reference, batch,
                             "seed " + std::to_string(seed) + " threads " +
                                 std::to_string(threads) + " nodes " +
                                 std::to_string(t.num_nodes()));
      }
    }
  }
}

TEST(BatchSolver, BitIdenticalUnderOverloadAndDownLinks) {
  // Heavy contention drives the drained-path re-search and no-path
  // freeze codepaths in both backends; a down fiber exercises the CSR
  // up-link filtering. Parity must survive all of it.
  auto t = topo::make_geant();
  t.set_duplex_up(t.links().front().id, false);
  traffic::GravityParams gp;
  gp.seed = 7;
  gp.target_max_utilization = 2.0;  // well past capacity
  const auto tm = traffic::generate_gravity(t, gp);
  SolveStats legacy_stats, batch_stats;
  const auto legacy = Solver(backend_options(SolverBackend::kLegacy))
                          .solve(t, tm, &legacy_stats);
  const auto batch = Solver(backend_options(SolverBackend::kBatch, 4))
                         .solve(t, tm, &batch_stats);
  expect_bit_identical(legacy, batch, "overload");
  EXPECT_EQ(legacy_stats.rounds, batch_stats.rounds);
  // Validated cross-round path reuse makes batch searches a subset of the
  // legacy one-search-per-active-demand-per-round count.
  EXPECT_LE(batch_stats.path_searches, legacy_stats.path_searches);
  EXPECT_GT(batch_stats.path_searches, 0u);
  EXPECT_EQ(legacy_stats.frozen_no_path, batch_stats.frozen_no_path);
  EXPECT_EQ(legacy_stats.frozen_round_cap, batch_stats.frozen_round_cap);
  EXPECT_GT(legacy_stats.frozen_demands, 0u);  // the sweep has teeth
}

TEST(BatchSolver, BitIdenticalWithResidualOverride) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  std::vector<double> residual(t.num_links());
  for (const auto& l : t.links()) residual[l.id] = l.capacity_gbps * 0.5;
  const auto legacy = Solver(backend_options(SolverBackend::kLegacy))
                          .solve(t, tm, nullptr, &residual);
  const auto batch = Solver(backend_options(SolverBackend::kBatch))
                         .solve(t, tm, nullptr, &residual);
  expect_bit_identical(legacy, batch, "residual override");
}

TEST(BatchSolver, CachedSolvesMatchCachedLegacy) {
  // With a PathCache both backends delegate the search step to the
  // cache per demand, so parity holds there too (independent cache
  // instances keep the memoization histories identical).
  const auto t = topo::make_geant();
  const auto tm = traffic::generate_gravity(t);
  PathCache cache_a(t), cache_b(t);
  SolverOptions legacy = backend_options(SolverBackend::kLegacy);
  legacy.cache = &cache_a;
  SolverOptions batch = backend_options(SolverBackend::kBatch);
  batch.cache = &cache_b;
  expect_bit_identical(Solver(legacy).solve(t, tm),
                       Solver(batch).solve(t, tm), "cached");
  EXPECT_GT(cache_b.hits(), 0u);
}

TEST(BatchSolver, DiffCheckerParityOverScenarioEras) {
  // Walk the PR 5 scenario harness's deterministic cut/repair schedule,
  // solving each topology era with the batch backend and validating it
  // through the DiffChecker against a legacy reference solve -- zero
  // violations, and (cacheless) exact parity era by era.
  const auto base = topo::make_abilene();
  const auto tm = traffic::generate_gravity(base);
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    sim::Scenario scenario(base, tm, sim::ScenarioOptions{}, seed);
    auto era = base;
    std::size_t eras_checked = 0;
    for (const auto& ev : scenario.schedule()) {
      if (ev.kind == sim::ScenarioEventKind::kFiberCut) {
        for (topo::LinkId l : ev.fibers) era.set_duplex_up(l, false);
      } else if (ev.kind == sim::ScenarioEventKind::kFiberRepair) {
        for (topo::LinkId l : ev.fibers) era.set_duplex_up(l, true);
      } else {
        continue;
      }
      const auto batch =
          Solver(backend_options(SolverBackend::kBatch, 4)).solve(era, tm);
      const auto report = DiffChecker::check(
          era, tm, batch, backend_options(SolverBackend::kLegacy));
      EXPECT_TRUE(report.ok())
          << "seed " << seed << " era " << eras_checked << ": "
          << (report.violations.empty() ? "" : report.violations.front());
      expect_bit_identical(
          Solver(backend_options(SolverBackend::kLegacy)).solve(era, tm),
          batch, "era " + std::to_string(eras_checked));
      ++eras_checked;
    }
    EXPECT_GT(eras_checked, 0u) << "seed " << seed;
  }
}

TEST(BatchSolver, AcceleratorBackendSeamIsHonored) {
  // A custom backend must receive every batched SSSP call; delegating to
  // the CPU reference keeps results bit-identical, which is exactly the
  // contract a GPU backend has to meet.
  class CountingBackend final : public BatchSolverBackend {
   public:
    const char* name() const override { return "counting"; }
    void sssp(const BatchGraph& g, const std::vector<double>& residual,
              double min_residual, std::uint32_t src,
              const std::uint32_t* targets, std::size_t num_targets,
              SsspWorkspace& ws) const override {
      ++calls;
      targets_seen += num_targets;
      cpu_batch_backend().sssp(g, residual, min_residual, src, targets,
                               num_targets, ws);
    }
    mutable std::size_t calls = 0;
    mutable std::size_t targets_seen = 0;
  };

  const auto t = topo::make_geant();
  const auto tm = traffic::generate_gravity(t);
  CountingBackend counting;
  SolverOptions opt = backend_options(SolverBackend::kBatch);
  opt.batch_backend = &counting;
  const auto via_stub = Solver(opt).solve(t, tm);
  EXPECT_GT(counting.calls, 0u);
  // Bucketing is what makes it a *batch* backend: strictly fewer SSSP
  // runs than demand searches.
  EXPECT_GT(counting.targets_seen, counting.calls);
  expect_bit_identical(
      Solver(backend_options(SolverBackend::kBatch)).solve(t, tm), via_stub,
      "backend stub");
}

TEST(BatchSolver, EmitsBatchCounters) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  Solver(backend_options(SolverBackend::kBatch)).solve(t, tm);
  const auto snap = obs::Registry::global().snapshot();
  const auto counter = [&](const char* name) {
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? std::uint64_t{0} : it->second;
  };
  EXPECT_GT(counter("te.batch.solves"), 0u);
  EXPECT_GT(counter("te.batch.sssp_batches"), 0u);
  EXPECT_GT(counter("te.batch.interned_paths"), 0u);
  EXPECT_GT(counter("te.solver.solves"), 0u);  // shared counters still move
}

TEST(BatchSolver, SsspWorkspaceReuseAcrossEpochs) {
  // The workspace's epoch stamping must isolate runs: a second SSSP on
  // the same scratch must not see the first run's dist/pred state.
  const auto t = topo::make_abilene();
  BatchSolver solver{SolverOptions{}};
  const auto tm1 = traffic::generate_gravity(t);
  traffic::GravityParams gp;
  gp.seed = 99;
  const auto tm2 = traffic::generate_gravity(t, gp);
  const auto first = solver.solve(t, tm1);
  const auto again = solver.solve(t, tm1);
  solver.solve(t, tm2);  // interleave different demand set
  const auto third = solver.solve(t, tm1);
  expect_bit_identical(first, again, "workspace reuse");
  expect_bit_identical(first, third, "workspace reuse after interleave");
}

}  // namespace
}  // namespace dsdn::te
