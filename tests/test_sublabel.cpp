#include <gtest/gtest.h>

#include <set>

#include "dataplane/sublabel.hpp"
#include "te/dijkstra.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "util/rng.hpp"

namespace dsdn::dataplane {
namespace {

// Builds the per-router sublabel FIBs for a whole topology.
std::vector<SublabelFib> build_all_fibs(const topo::Topology& t,
                                        const SublabelAssignment& a) {
  std::vector<SublabelFib> fibs;
  fibs.reserve(t.num_nodes());
  for (topo::NodeId n = 0; n < t.num_nodes(); ++n) {
    fibs.push_back(SublabelFib::build(t, n, a));
  }
  return fibs;
}

TEST(Sublabel, PackUnpackRoundTrip) {
  const Label l = pack_sublabels(513, 7);
  EXPECT_EQ(unpack_sublabels(l), (std::pair<Sublabel, Sublabel>{513, 7}));
  EXPECT_THROW(pack_sublabels(1024, 0), std::invalid_argument);
}

TEST(Sublabel, AssignmentGivesEveryLinkANonNullSublabel) {
  const auto t = topo::make_b4_like();
  const auto a = assign_sublabels(t);
  ASSERT_EQ(a.link_sublabel.size(), t.num_links());
  for (Sublabel s : a.link_sublabel) {
    EXPECT_NE(s, kNullSublabel);
    EXPECT_LE(s, kMaxSublabel);
  }
}

TEST(Sublabel, LocalUniquenessAtEveryNode) {
  // Appendix A.2's requirement: at any node, the sublabels of its ingress
  // and egress links are mutually unique.
  const auto t = topo::make_cogentco();
  const auto a = assign_sublabels(t);
  for (const topo::Node& n : t.nodes()) {
    std::set<Sublabel> seen;
    for (topo::LinkId l : n.in_links) {
      EXPECT_TRUE(seen.insert(a.link_sublabel[l]).second)
          << "collision at node " << n.name;
    }
    for (topo::LinkId l : n.out_links) {
      EXPECT_TRUE(seen.insert(a.link_sublabel[l]).second)
          << "collision at node " << n.name;
    }
  }
}

TEST(Sublabel, SublabelCountWithinDegreeBound) {
  // Greedy fiber coloring uses O(k) values: the paper derives 2k for an
  // optimal coloring; greedy stays within 2*(2k-1).
  const auto t = topo::make_b2_like();
  const auto a = assign_sublabels(t);
  const std::size_t k = t.max_degree();
  EXPECT_LE(a.num_sublabels_used(), 2 * (2 * k - 1));
  // And comfortably inside 10 bits even at B2 scale.
  EXPECT_LE(a.num_sublabels_used(), static_cast<std::size_t>(kMaxSublabel));
}

TEST(Sublabel, TableSizeWithinTwoKSquared) {
  // Appendix A: per-router table <= ~2k^2 entries, independent of network
  // size.
  const auto t = topo::make_b4_like();
  const auto a = assign_sublabels(t);
  for (topo::NodeId n = 0; n < t.num_nodes(); ++n) {
    const auto fib = SublabelFib::build(t, n, a);
    const std::size_t k = std::max(t.node(n).out_links.size(),
                                   t.node(n).in_links.size());
    std::size_t neighbor_degree_sum = 0;
    for (topo::LinkId l : t.node(n).out_links) {
      neighbor_degree_sum += t.node(t.link(l).dst).out_links.size();
    }
    // k(k-1) row-1 entries + row-2 entries + k + k null rows.
    EXPECT_LE(fib.size(), k * k + k * neighbor_degree_sum + 2 * k);
  }
}

TEST(Sublabel, TableBuildDetectsNoAmbiguity) {
  // build() throws on ambiguous keys; it must succeed on every topology
  // we ship.
  for (const auto& entry : topo::zoo_catalog()) {
    const auto t = entry.factory();
    const auto a = assign_sublabels(t);
    EXPECT_NO_THROW(build_all_fibs(t, a)) << entry.name;
  }
}

TEST(Sublabel, EncodeHalvesLabelCount) {
  const auto t = topo::make_line(9);
  te::Path p;
  for (std::size_t i = 0; i + 1 < 9; ++i)
    p.links.push_back(t.find_link(static_cast<topo::NodeId>(i),
                                  static_cast<topo::NodeId>(i + 1)));
  const auto a = assign_sublabels(t);
  const LabelStack s = encode_sublabel_route(p, a);
  EXPECT_EQ(s.depth(), 4u);  // ceil(8/2)
}

TEST(Sublabel, ForwardsOddLengthPath) {
  const auto t = topo::make_line(4);  // 3 hops: odd
  const auto a = assign_sublabels(t);
  const auto fibs = build_all_fibs(t, a);
  te::Path p;
  p.links = {t.find_link(0, 1), t.find_link(1, 2), t.find_link(2, 3)};
  const auto r = forward_sublabel(t, fibs, 0, encode_sublabel_route(p, a));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.final_node, 3u);
  EXPECT_EQ(r.trace, (std::vector<topo::NodeId>{0, 1, 2, 3}));
}

TEST(Sublabel, ForwardsEvenLengthPath) {
  const auto t = topo::make_line(5);  // 4 hops: even
  const auto a = assign_sublabels(t);
  const auto fibs = build_all_fibs(t, a);
  te::Path p;
  for (std::size_t i = 0; i + 1 < 5; ++i)
    p.links.push_back(t.find_link(static_cast<topo::NodeId>(i),
                                  static_cast<topo::NodeId>(i + 1)));
  const auto r = forward_sublabel(t, fibs, 0, encode_sublabel_route(p, a));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.final_node, 4u);
}

TEST(Sublabel, SingleHopPath) {
  const auto t = topo::make_line(2);
  const auto a = assign_sublabels(t);
  const auto fibs = build_all_fibs(t, a);
  te::Path p;
  p.links = {t.find_link(0, 1)};
  const auto r = forward_sublabel(t, fibs, 0, encode_sublabel_route(p, a));
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.final_node, 1u);
}

TEST(Sublabel, LongPathBeyondTwelveLabelsWorks) {
  // The whole point of sublabels: a 20-hop path fits in 10 labels.
  const auto t = topo::make_line(21);
  const auto a = assign_sublabels(t);
  const auto fibs = build_all_fibs(t, a);
  te::Path p;
  for (std::size_t i = 0; i + 1 < 21; ++i)
    p.links.push_back(t.find_link(static_cast<topo::NodeId>(i),
                                  static_cast<topo::NodeId>(i + 1)));
  ASSERT_GT(p.hops(), kMaxLabelDepth);
  const LabelStack s = encode_sublabel_route(p, a);
  EXPECT_LE(s.depth(), kMaxLabelDepth);
  const auto r = forward_sublabel(t, fibs, 0, s);
  EXPECT_TRUE(r.delivered);
  EXPECT_EQ(r.final_node, 20u);
}

TEST(Sublabel, OutOfRangeNodeIsAMissNotAnOobRead) {
  // Regression: the walk indexed fibs[at] without a bounds check, so a
  // start node (or a mid-walk hop) outside the table set read out of
  // range. Both cases must report a clean non-delivery at the offending
  // node instead.
  const auto t = topo::make_line(4);
  const auto a = assign_sublabels(t);
  auto fibs = build_all_fibs(t, a);
  te::Path p;
  p.links = {t.find_link(0, 1), t.find_link(1, 2), t.find_link(2, 3)};
  const LabelStack stack = encode_sublabel_route(p, a);

  // Start node beyond the table set.
  const auto start_oob = forward_sublabel(t, fibs, 99, stack);
  EXPECT_FALSE(start_oob.delivered);
  EXPECT_EQ(start_oob.final_node, 99u);

  // Tables covering only a prefix of the topology: the walk leaves the
  // covered range mid-path and must stop at the first uncovered node.
  fibs.resize(2);
  const auto mid_oob = forward_sublabel(t, fibs, 0, stack);
  EXPECT_FALSE(mid_oob.delivered);
  EXPECT_EQ(mid_oob.final_node, 2u);
}

TEST(Sublabel, EncodeDecodeRoundtripProperty) {
  // Property sweep: 10k randomized sublabel sequences -- every length up
  // to the 2*kMaxLabelDepth a full stack can carry, boundary values 1
  // and kMaxSublabel mixed in -- pack into label stacks exactly the way
  // encode_sublabel_route does (null pad on odd lengths) and decode
  // back. The roundtrip must be lossless.
  util::Rng rng(0xD0C0DE);
  for (int trial = 0; trial < 10000; ++trial) {
    const auto len = static_cast<std::size_t>(
        rng.uniform_int(1, static_cast<std::int64_t>(2 * kMaxLabelDepth)));
    std::vector<Sublabel> seq(len);
    for (Sublabel& s : seq) {
      // ~10% boundary values, otherwise uniform over the valid range.
      const double roll = rng.uniform();
      if (roll < 0.05) {
        s = 1;
      } else if (roll < 0.10) {
        s = kMaxSublabel;
      } else {
        s = static_cast<Sublabel>(rng.uniform_int(1, kMaxSublabel));
      }
    }
    std::vector<Label> labels;
    labels.reserve((len + 1) / 2);
    for (std::size_t i = 0; i < len; i += 2) {
      const Sublabel s2 = i + 1 < len ? seq[i + 1] : kNullSublabel;
      labels.push_back(pack_sublabels(seq[i], s2));
    }
    const LabelStack stack(std::move(labels));
    EXPECT_EQ(decode_sublabel_route(stack), seq) << "trial " << trial;
  }
}

TEST(Sublabel, DecodeRejectsMalformedStacks) {
  // A null first sublabel can't come from any encoding.
  EXPECT_THROW(decode_sublabel_route(
                   LabelStack({pack_sublabels(kNullSublabel, 7)})),
               std::invalid_argument);
  // Nor can a null pad anywhere but the final label.
  EXPECT_THROW(decode_sublabel_route(LabelStack({
                   pack_sublabels(3, kNullSublabel),
                   pack_sublabels(5, 6),
               })),
               std::invalid_argument);
  // Empty stack decodes to the empty sequence.
  EXPECT_TRUE(decode_sublabel_route(LabelStack{}).empty());
}

TEST(Sublabel, DecodeInvertsEncodeOnRealPaths) {
  // End-to-end flavor of the property: encode real strict routes on a
  // real topology and check decode returns the path's sublabels.
  const auto t = topo::make_geant();
  const auto a = assign_sublabels(t);
  util::Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const auto src = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(t.num_nodes()) - 1));
    const auto dst = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(t.num_nodes()) - 1));
    if (src == dst) continue;
    const auto p = te::shortest_path(t, src, dst);
    ASSERT_TRUE(p.has_value());
    std::vector<Sublabel> expected;
    for (topo::LinkId l : p->links) expected.push_back(a.link_sublabel[l]);
    EXPECT_EQ(decode_sublabel_route(encode_sublabel_route(*p, a)), expected);
  }
}

class SublabelRandomPathTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SublabelRandomPathTest, RandomShortestPathsForwardCorrectly) {
  // Property: on a real topology, any strict route encodes and forwards
  // to exactly its intended egress through the sublabel data plane.
  const auto t = topo::make_geant();
  const auto a = assign_sublabels(t);
  const auto fibs = build_all_fibs(t, a);
  util::Rng rng(GetParam());
  for (int trial = 0; trial < 40; ++trial) {
    const auto src = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(t.num_nodes()) - 1));
    const auto dst = static_cast<topo::NodeId>(
        rng.uniform_int(0, static_cast<std::int64_t>(t.num_nodes()) - 1));
    if (src == dst) continue;
    const auto p = te::shortest_path(t, src, dst);
    ASSERT_TRUE(p.has_value());
    const auto r =
        forward_sublabel(t, fibs, src, encode_sublabel_route(*p, a));
    EXPECT_TRUE(r.delivered) << src << "->" << dst;
    EXPECT_EQ(r.final_node, dst);
    EXPECT_EQ(r.hops, p->hops());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SublabelRandomPathTest,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dsdn::dataplane
