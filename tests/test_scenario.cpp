#include <gtest/gtest.h>

#include <algorithm>

#include "sim/scenario.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::sim {
namespace {

traffic::TrafficMatrix tm_for(const topo::Topology& t,
                              double pair_fraction = 1.0) {
  traffic::GravityParams gp;
  gp.pair_fraction = pair_fraction;
  gp.target_max_utilization = 0.5;
  return traffic::generate_gravity(t, gp);
}

std::string schedule_text(const Scenario& s) {
  std::string out;
  for (const ScenarioEvent& ev : s.schedule()) out += ev.to_string() + ";";
  return out;
}

std::size_t kept_count(const std::vector<char>& mask) {
  return static_cast<std::size_t>(std::count(mask.begin(), mask.end(), 1));
}

TEST(Scenario, ScheduleIsDeterministicPerSeed) {
  const auto topo = topo::make_abilene();
  const auto tm = tm_for(topo);
  const Scenario a(topo, tm, {}, 42);
  const Scenario b(topo, tm, {}, 42);
  ASSERT_EQ(a.schedule().size(), b.schedule().size());
  EXPECT_EQ(schedule_text(a), schedule_text(b));

  const Scenario c(topo, tm, {}, 43);
  EXPECT_NE(schedule_text(a), schedule_text(c));
}

TEST(Scenario, ScheduleMixesEventKinds) {
  // A long enough horizon should exercise more than fiber churn.
  const auto topo = topo::make_abilene();
  ScenarioOptions options;
  options.n_events = 48;
  const Scenario s(topo, tm_for(topo), options, 7);
  ASSERT_EQ(s.schedule().size(), 48u);
  std::size_t kinds_seen = 0;
  for (int k = 0; k < 8; ++k) {
    const auto kind = static_cast<ScenarioEventKind>(k);
    if (std::any_of(s.schedule().begin(), s.schedule().end(),
                    [&](const ScenarioEvent& e) { return e.kind == kind; }))
      ++kinds_seen;
  }
  EXPECT_GE(kinds_seen, 5u);
}

TEST(Scenario, CleanRunHoldsAllInvariants) {
  const auto topo = topo::make_abilene();
  const Scenario s(topo, tm_for(topo), {}, 11);
  const ScenarioResult r = s.run();
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  EXPECT_GT(r.events_applied, 0u);
  EXPECT_GT(r.invariant_checks, 0u);
  EXPECT_NE(r.final_digest, 0u);
}

TEST(Scenario, CongestionStarvedScavengerIsNotABlackhole) {
  // Regression (swarm seed 43 on lossy Abilene): three stacked demand
  // surges oversubscribe the network, strict priority starves several
  // class-2 demands to 100% loss on healthy, correctly installed routes.
  // That is QoS doing its job -- the blackhole invariant must only flag
  // *structural* total loss (no working installed path).
  const auto topo = topo::make_abilene();
  ScenarioOptions options;
  options.n_events = 24;
  options.lossy_flooding = true;
  const Scenario s(topo, tm_for(topo), options, 43);
  const ScenarioResult r = s.run();
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  // The starvation itself is real and visible through max loss.
  EXPECT_GT(r.max_loss, 0.99);
}

TEST(Scenario, ReplayIsBitIdenticalIncludingLossyFlooding) {
  const auto topo = topo::make_abilene();
  const auto tm = tm_for(topo);
  ScenarioOptions options;
  options.lossy_flooding = true;
  const Scenario s(topo, tm, options, 1234);
  const ScenarioResult r1 = s.run();
  const ScenarioResult r2 = s.run();
  EXPECT_EQ(r1.fingerprint(), r2.fingerprint());
  EXPECT_EQ(r1.final_digest, r2.final_digest);
  EXPECT_EQ(r1.messages, r2.messages);
  EXPECT_EQ(r1.sim_time_s, r2.sim_time_s);
  // And an independently constructed Scenario replays identically too.
  const Scenario again(topo, tm, options, 1234);
  EXPECT_EQ(again.run().fingerprint(), r1.fingerprint());
}

TEST(Scenario, MaskedRunGuardsInapplicableEvents) {
  // Keeping a repair without the cut that preceded it must skip the
  // repair (the fiber is still up), not corrupt the run.
  const auto topo = topo::make_abilene();
  const auto tm = tm_for(topo);
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Scenario s(topo, tm, {}, seed);
    const auto& schedule = s.schedule();
    const auto it = std::find_if(
        schedule.begin(), schedule.end(), [](const ScenarioEvent& e) {
          return e.kind == ScenarioEventKind::kFiberRepair;
        });
    if (it == schedule.end()) continue;
    std::vector<char> keep(schedule.size(), 0);
    keep[static_cast<std::size_t>(it - schedule.begin())] = 1;
    const ScenarioResult r = s.run_masked(keep);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.events_applied, 0u);
    EXPECT_EQ(r.events_skipped, 1u);
    return;
  }
  FAIL() << "no seed in [1,32] scheduled a fiber repair";
}

TEST(Scenario, SmallSwarmAcrossThreeTopologies) {
  {
    const auto topo = topo::make_abilene();
    EXPECT_FALSE(run_seed_swarm(topo, tm_for(topo), {}, 1, 3).has_value());
  }
  {
    const auto topo = topo::make_b4_like();
    ScenarioOptions options;
    options.n_events = 6;
    EXPECT_FALSE(
        run_seed_swarm(topo, tm_for(topo, 0.15), options, 1, 1).has_value());
  }
  {
    topo::B2LikeParams bp;
    bp.scale = 0.125;
    const auto topo = topo::make_b2_like(bp);
    ScenarioOptions options;
    options.n_events = 5;
    EXPECT_FALSE(
        run_seed_swarm(topo, tm_for(topo, 0.05), options, 1, 1).has_value());
  }
}

TEST(Scenario, InjectedBugIsCaughtAndShrunkToShortReproducer) {
  // The acceptance bug: a router that skips reprogramming after fiber
  // cuts keeps stale routes over dead links. The swarm must catch it and
  // the bisection shrinker must cut the history to <= 5 events.
  const auto topo = topo::make_abilene();
  const auto tm = tm_for(topo);
  ScenarioOptions options;
  options.bug = ScenarioBug::kSkipReprogramOnCut;
  options.bug_node = 0;
  const auto failure = run_seed_swarm(topo, tm, options, 1, 8);
  ASSERT_TRUE(failure.has_value());
  EXPECT_FALSE(failure->result.ok());
  EXPECT_FALSE(failure->reproducer.empty());
  ASSERT_LE(kept_count(failure->minimal_mask), 5u);
  ASSERT_GE(kept_count(failure->minimal_mask), 1u);

  // The shrunk reproducer still fails, and every kept event matters:
  // dropping any one of them makes the failure disappear or the shrinker
  // would have dropped it.
  const Scenario s(topo, tm, options, failure->seed);
  EXPECT_FALSE(s.run_masked(failure->minimal_mask).ok());
  for (std::size_t i = 0; i < failure->minimal_mask.size(); ++i) {
    if (!failure->minimal_mask[i]) continue;
    std::vector<char> without = failure->minimal_mask;
    without[i] = 0;
    EXPECT_TRUE(s.run_masked(without).ok())
        << "shrunk mask still failed without event " << i
        << ": not minimal";
  }
}

TEST(Scenario, BugFreeRunOfFailingSeedPasses) {
  // The same seed without the planted bug is clean: the checkers react
  // to the bug, not to the churn.
  const auto topo = topo::make_abilene();
  const auto tm = tm_for(topo);
  ScenarioOptions buggy;
  buggy.bug = ScenarioBug::kSkipReprogramOnCut;
  const auto failure = run_seed_swarm(topo, tm, buggy, 1, 8);
  ASSERT_TRUE(failure.has_value());
  const Scenario clean(topo, tm, {}, failure->seed);
  EXPECT_TRUE(clean.run().ok());
}

TEST(Scenario, ArtifactCarriesScenarioCounters) {
  const auto topo = topo::make_abilene();
  const Scenario s(topo, tm_for(topo), {}, 5);
  const ScenarioResult r = s.run();
  const obs::RunArtifact artifact = s.artifact(r, "scenario_unit");
  const std::string json = artifact.to_json();
  EXPECT_NE(json.find("\"seed\""), std::string::npos);
  EXPECT_NE(json.find("scenario.events_applied"), std::string::npos);
  EXPECT_NE(json.find("scenario.invariant_checks"), std::string::npos);
  EXPECT_NE(json.find("scenario.max_loss_window"), std::string::npos);
  EXPECT_NE(json.find("max_loss_window"), std::string::npos);
}

TEST(Scenario, PacketScoringCrossChecksEveryQuiescentPoint) {
  // With packet_scoring on, every invariant checkpoint also drives
  // sampled packets through the batched dataplane over RCU snapshots; a
  // clean history must stay clean at packet level, the scored count must
  // land in the fingerprint, and replay must stay bit-identical.
  const auto topo = topo::make_abilene();
  const auto tm = tm_for(topo);
  ScenarioOptions options;
  options.n_events = 8;
  options.packet_scoring = true;
  options.packets_per_check = 128;
  const Scenario s(topo, tm, options, 21);
  const ScenarioResult r = s.run();
  EXPECT_TRUE(r.ok()) << (r.violations.empty() ? "" : r.violations.front());
  // One batch of packets_per_check per checkpoint (bootstrap + events).
  EXPECT_GE(r.packets_scored, options.packets_per_check * (r.events_applied + 1));
  EXPECT_EQ(r.packets_scored % options.packets_per_check, 0u);
  EXPECT_EQ(s.run().fingerprint(), r.fingerprint());

  // Same seed without scoring: different fingerprint (scored packets are
  // part of the replay identity), same invariant verdict.
  ScenarioOptions plain = options;
  plain.packet_scoring = false;
  const Scenario p(topo, tm, plain, 21);
  const ScenarioResult pr = p.run();
  EXPECT_TRUE(pr.ok());
  EXPECT_EQ(pr.packets_scored, 0u);
  EXPECT_NE(pr.fingerprint(), r.fingerprint());
}

TEST(Invariants, CleanBootstrapPasses) {
  const auto topo = topo::make_abilene();
  DsdnEmulation emu(topo, tm_for(topo));
  emu.bootstrap();
  const InvariantReport rep = check_invariants(emu);
  EXPECT_TRUE(rep.ok()) << (rep.violations.empty() ? ""
                                                   : rep.violations.front());
  EXPECT_GT(rep.checks_run, 0u);
}

TEST(Invariants, StaleFibOverDownLinkIsCaught) {
  // Manually recreate the down-link-zeroing bug: snapshot a router's
  // encap FIB, cut a fiber it uses, then put the stale FIB back.
  const auto topo = topo::make_abilene();
  DsdnEmulation emu(topo, tm_for(topo));
  emu.bootstrap();
  ASSERT_TRUE(check_invariants(emu).ok());

  // Pick a fiber whose cut keeps the network connected and which some
  // router's installed route crosses; node 0's first route works on
  // Abilene -- derive the link from its own FIB to stay topology-agnostic.
  const auto& encap = emu.at(0).ingress.encap_table();
  ASSERT_FALSE(encap.empty());
  const dataplane::LabelStack& stack =
      encap.begin()->second.routes.front().stack;
  const topo::LinkId victim = dataplane::decode_strict_route(stack)
                                  .links.front();

  const dataplane::IngressFib stale = emu.at(0).ingress;
  emu.fail_fiber(victim);
  ASSERT_TRUE(check_invariants(emu).ok());  // honest reconvergence is fine
  emu.mutable_controller(0).mutable_dataplane().ingress = stale;
  const InvariantReport rep = check_invariants(emu);
  ASSERT_FALSE(rep.ok());
  EXPECT_NE(rep.violations.front().find("down link"), std::string::npos);
}

}  // namespace
}  // namespace dsdn::sim
