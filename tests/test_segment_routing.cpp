#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>

#include "core/controller.hpp"
#include "core/upgrade.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/label.hpp"
#include "sim/invariants.hpp"
#include "te/dijkstra.hpp"
#include "te/segment_routing.hpp"
#include "topo/prefix.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"
#include "util/rng.hpp"

namespace dsdn {
namespace {

using dataplane::ForwardOutcome;
using metrics::PriorityClass;

// ---- Node-segment label space ----

TEST(SrLabel, NodeSegmentsRoundTripAndStayDisjointFromLinkLabels) {
  for (topo::NodeId n : {0u, 1u, 77u, (1u << 19) - 1}) {
    const dataplane::Label l = dataplane::node_segment_label(n);
    EXPECT_TRUE(dataplane::is_node_segment_label(l));
    EXPECT_EQ(dataplane::segment_node(l), n);
  }
  // Ordinary link labels live strictly below the segment base.
  for (topo::LinkId lid : {0u, 15u, 1000u}) {
    const dataplane::Label l = dataplane::link_label(lid);
    EXPECT_FALSE(dataplane::is_node_segment_label(l));
    EXPECT_EQ(dataplane::label_link(l), lid);
  }
  // The spaces cannot collide: a link id that would reach the segment
  // base refuses to encode, and cross-decodes throw.
  EXPECT_THROW(dataplane::link_label(dataplane::kNodeSegmentBase),
               std::overflow_error);
  EXPECT_THROW(dataplane::segment_node(dataplane::link_label(5)),
               std::invalid_argument);
  EXPECT_THROW(dataplane::label_link(dataplane::node_segment_label(5)),
               std::invalid_argument);
  EXPECT_THROW(dataplane::node_segment_label(1u << 19), std::overflow_error);
}

TEST(SrLabel, EncodeSegmentRouteIsOutermostFirstNodeSids) {
  const auto stack = dataplane::encode_segment_route({4, 9, 2});
  ASSERT_EQ(stack.depth(), 3u);
  EXPECT_EQ(stack.labels()[0], dataplane::node_segment_label(4));
  EXPECT_EQ(stack.labels()[1], dataplane::node_segment_label(9));
  EXPECT_EQ(stack.labels()[2], dataplane::node_segment_label(2));
  EXPECT_THROW(
      dataplane::encode_segment_route(std::vector<topo::NodeId>(13, 1)),
      std::length_error);
}

// ---- Segment-stack TLV (wire coexistence) ----

TEST(SrTlv, SegmentStackRoundTrips) {
  for (const std::vector<topo::NodeId>& segs :
       {std::vector<topo::NodeId>{7}, std::vector<topo::NodeId>{3, 7},
        std::vector<topo::NodeId>{1, 5, 9}}) {
    const core::OpaqueTlv tlv = core::make_segment_stack_tlv(segs);
    EXPECT_EQ(tlv.type, core::kSegmentStackTlvType);
    const auto parsed = core::parse_segment_stack_tlv(tlv, 16);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, segs);
  }
}

TEST(SrTlv, MalformedSegmentStacksAreRejected) {
  EXPECT_THROW(core::make_segment_stack_tlv({}), std::length_error);
  EXPECT_THROW(core::make_segment_stack_tlv({1, 2, 3, 4}), std::length_error);
  EXPECT_THROW(core::make_segment_stack_tlv({0x10000}), std::out_of_range);

  const auto good = core::make_segment_stack_tlv({3, 7});
  // Wrong TLV type.
  core::OpaqueTlv wrong_type = good;
  wrong_type.type = 0x1234;
  EXPECT_FALSE(core::parse_segment_stack_tlv(wrong_type, 16));
  // Truncated payload: count says 2, only one id present.
  core::OpaqueTlv truncated = good;
  truncated.value.resize(3);
  EXPECT_FALSE(core::parse_segment_stack_tlv(truncated, 16));
  // Oversized payload: trailing junk past the declared count.
  core::OpaqueTlv oversized = good;
  oversized.value += '\x00';
  EXPECT_FALSE(core::parse_segment_stack_tlv(oversized, 16));
  // Depth out of [1,3].
  core::OpaqueTlv zero = good;
  zero.value[0] = 0;
  zero.value.resize(1);
  EXPECT_FALSE(core::parse_segment_stack_tlv(zero, 16));
  core::OpaqueTlv deep = good;
  deep.value[0] = 4;
  deep.value.resize(1 + 2 * 4, '\x01');
  EXPECT_FALSE(core::parse_segment_stack_tlv(deep, 16));
  // Middlepoint id out of range for the topology.
  EXPECT_FALSE(
      core::parse_segment_stack_tlv(core::make_segment_stack_tlv({15}), 15));
  EXPECT_FALSE(core::parse_segment_stack_tlv({core::kSegmentStackTlvType, ""},
                                             16));
}

// ---- Underlay / middlepoint determinism ----

TEST(SrUnderlay, EcmpMembersAreShortestPathDagEdgesSortedByLinkId) {
  const auto topo = topo::make_abilene();
  const auto underlay = te::SrUnderlay::build(topo);
  ASSERT_EQ(underlay.num_nodes(), topo.num_nodes());
  for (topo::NodeId u = 0; u < topo.num_nodes(); ++u) {
    for (topo::NodeId t = 0; t < topo.num_nodes(); ++t) {
      const auto members = underlay.ecmp_members(topo, u, t);
      if (u == t) {
        EXPECT_TRUE(members.empty());
        continue;
      }
      ASSERT_TRUE(underlay.reachable(u, t));
      ASSERT_FALSE(members.empty()) << u << "->" << t;
      EXPECT_TRUE(std::is_sorted(members.begin(), members.end()));
      for (topo::LinkId lid : members) {
        const auto& l = topo.link(lid);
        EXPECT_EQ(l.src, u);
        EXPECT_TRUE(l.up);
        // On a shortest path: stepping the link loses no distance.
        EXPECT_LE(l.igp_metric + underlay.dist(l.dst, t),
                  underlay.dist(u, t) + te::sr_eps(underlay.dist(u, t)));
      }
      // And the distance agrees with a straight Dijkstra run.
      const auto sp = te::shortest_path(topo, u, t);
      ASSERT_TRUE(sp.has_value());
      EXPECT_NEAR(underlay.dist(u, t), sp->igp_cost(topo), 1e-9);
    }
  }
}

TEST(SrUnderlay, MiddlepointRankingIsDeterministicAndDeduplicated) {
  const auto topo = topo::make_geant();
  const auto underlay = te::SrUnderlay::build(topo);
  const auto a = te::rank_middlepoints(underlay, 8);
  const auto b = te::rank_middlepoints(underlay, 8);
  EXPECT_EQ(a, b);
  EXPECT_LE(a.size(), 8u);
  EXPECT_EQ(std::set<topo::NodeId>(a.begin(), a.end()).size(), a.size());
  for (topo::NodeId m : a) EXPECT_LT(m, topo.num_nodes());
  // Prefix property: asking for fewer returns the top of the same order.
  const auto top3 = te::rank_middlepoints(underlay, 3);
  ASSERT_EQ(top3.size(), 3u);
  EXPECT_TRUE(std::equal(top3.begin(), top3.end(), a.begin()));
}

TEST(SrCandidates, OrderedByCostWithDirectRouteFirstAmongEquals) {
  const auto topo = topo::make_abilene();
  const auto underlay = te::SrUnderlay::build(topo);
  const auto mids = te::rank_middlepoints(underlay, 8);
  te::SrOptions opts;
  for (topo::NodeId src = 0; src < topo.num_nodes(); ++src) {
    for (topo::NodeId dst = 0; dst < topo.num_nodes(); ++dst) {
      if (src == dst) continue;
      const auto cands =
          te::segment_route_candidates(underlay, src, dst, mids, opts);
      ASSERT_FALSE(cands.empty());
      EXPECT_LE(cands.size(), opts.max_candidates);
      // The direct [dst] route is always a candidate, and no cheaper
      // candidate exists (middlepoint detours only add cost).
      EXPECT_EQ(cands.front().segments, std::vector<topo::NodeId>{dst});
      for (std::size_t i = 0; i < cands.size(); ++i) {
        EXPECT_GE(cands[i].segments.size(), 1u);
        EXPECT_LE(cands[i].segments.size(), opts.max_segments);
        EXPECT_EQ(cands[i].segments.back(), dst);
        if (i) EXPECT_GE(cands[i].cost, cands[i - 1].cost - 1e-12);
      }
    }
  }
}

// ---- Expansion parity: SR stacks vs strict full stacks (satellite 1) ----

// Programs the full dataplane for one converged view: prefixes, transit
// tables, and the per-target SR FIBs every router derives from the same
// underlay -- exactly what core::Programmer::program_sr installs.
dataplane::VectorDataplanes program_all(const topo::Topology& topo,
                                        const te::SrUnderlay& underlay) {
  const auto prefixes = topo::assign_router_prefixes(topo);
  dataplane::VectorDataplanes routers(topo.num_nodes());
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    auto& hw = routers.mutable_at(n);
    hw.transit = dataplane::build_transit_fib(topo, n);
    for (topo::NodeId m = 0; m < topo.num_nodes(); ++m)
      hw.ingress.set_prefix(prefixes[m], m);
    for (topo::NodeId t = 0; t < topo.num_nodes(); ++t) {
      if (t == n) continue;
      std::vector<dataplane::SrNextHop> members;
      for (topo::LinkId lid : underlay.ecmp_members(topo, n, t))
        members.push_back({lid, topo.link(lid).dst});
      hw.sr.set_members(t, std::move(members));
    }
  }
  return routers;
}

dataplane::ForwardResult inject(const topo::Topology& topo,
                                const dataplane::VectorDataplanes& routers,
                                topo::NodeId src, topo::NodeId dst,
                                dataplane::LabelStack stack,
                                std::uint64_t entropy) {
  const dataplane::Forwarder fwd(topo, &routers);
  dataplane::Packet pkt;
  pkt.dst_ip = topo::host_in(topo::assign_router_prefixes(topo)[dst]);
  pkt.entropy = entropy;
  pkt.stack = std::move(stack);
  pkt.ttl = static_cast<int>(dataplane::forward_hop_bound(topo)) + 1;
  return fwd.forward(pkt, src);
}

void expect_expansion_parity(const topo::Topology& topo, const char* name) {
  const auto underlay = te::SrUnderlay::build(topo);
  const auto routers = program_all(topo, underlay);
  const auto mids = te::rank_middlepoints(underlay, 8);
  const te::SrOptions opts;
  util::Rng rng(0x5E63'0A17 ^ topo.num_nodes());

  for (int trial = 0; trial < 64; ++trial) {
    const auto src =
        static_cast<topo::NodeId>(rng.uniform_int(0, topo.num_nodes() - 1));
    const auto dst =
        static_cast<topo::NodeId>(rng.uniform_int(0, topo.num_nodes() - 1));
    if (src == dst) continue;
    const auto cands =
        te::segment_route_candidates(underlay, src, dst, mids, opts);
    ASSERT_FALSE(cands.empty()) << name;
    const auto& route = cands[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(cands.size()) - 1))];
    const auto expansions =
        te::expand_segment_route(topo, underlay, src, route.segments, opts);
    // A middlepoint detour whose every ECMP combination revisits a node
    // expands to nothing; the solver never installs such a candidate, so
    // the dataplane never forwards it. The direct route always expands
    // (shortest-path DAG walks are loop-free by construction).
    if (route.segments.size() == 1) ASSERT_FALSE(expansions.empty()) << name;
    if (expansions.empty()) continue;
    const std::uint64_t entropy = rng.engine()();

    // The segment stack itself must deliver over the SR FIBs...
    const auto sr = inject(topo, routers, src, dst,
                           dataplane::encode_segment_route(route.segments),
                           entropy);
    ASSERT_EQ(sr.outcome, ForwardOutcome::kDelivered)
        << name << " " << src << "->" << dst;
    EXPECT_EQ(sr.final_node, dst);
    if (route.segments.size() == 1) {
      // A single-segment walk stays inside one shortest-path DAG, so it
      // can never revisit a node. (Multi-segment walks may legally cross
      // themselves between segments; termination is covered by the hop
      // bound below.)
      std::set<topo::NodeId> seen(sr.trace.begin(), sr.trace.end());
      EXPECT_EQ(seen.size(), sr.trace.size()) << name << ": SR walk looped";
    }

    double frac = 0.0;
    for (const auto& wp : expansions) {
      // Every concrete expansion is a valid loop-free up-link path from
      // src to dst...
      ASSERT_TRUE(wp.path.is_valid(topo)) << name;
      EXPECT_EQ(wp.path.src(topo), src);
      EXPECT_EQ(wp.path.dst(topo), dst);
      frac += wp.weight;
      // ...and its strict full stack delivers to the same node.
      const auto strict =
          inject(topo, routers, src, dst,
                 dataplane::encode_strict_route(wp.path, false), entropy);
      ASSERT_EQ(strict.outcome, ForwardOutcome::kDelivered) << name;
      EXPECT_EQ(strict.final_node, sr.final_node) << name;
    }
    EXPECT_NEAR(frac, 1.0, 1e-9) << name;

    // The SR walk's own trace is one of the ECMP DAG's paths: every hop
    // taken was a member of the current segment's DAG, so it must match
    // some expansion when the expansion enumeration wasn't truncated.
    EXPECT_LE(sr.hops, dataplane::forward_hop_bound(topo));
  }
}

TEST(SrExpansion, ParityWithStrictStacksOnAbilene) {
  expect_expansion_parity(topo::make_abilene(), "abilene");
}

TEST(SrExpansion, ParityWithStrictStacksOnGeant) {
  expect_expansion_parity(topo::make_geant(), "geant");
}

TEST(SrExpansion, ParityWithStrictStacksOnB4) {
  expect_expansion_parity(topo::make_b4_like(), "b4");
}

TEST(SrExpansion, StaleFibsAfterCutNeverLoopAndStrictParityOnDrop) {
  // A link dies but the SR FIBs still carry the old view: the dataplane
  // re-picks among surviving ECMP members (SR's local repair) or drops
  // on a dead end -- it must never loop, and when every path from the
  // old DAG is dead the strict stack drops too.
  auto topo = topo::make_abilene();
  const auto underlay = te::SrUnderlay::build(topo);
  const auto routers = program_all(topo, underlay);
  util::Rng rng(0xDEAD'FEED);
  for (topo::LinkId cut = 0; cut < topo.num_links(); cut += 2) {
    topo.set_duplex_up(cut, false);
    for (int trial = 0; trial < 16; ++trial) {
      const auto src =
          static_cast<topo::NodeId>(rng.uniform_int(0, topo.num_nodes() - 1));
      const auto dst =
          static_cast<topo::NodeId>(rng.uniform_int(0, topo.num_nodes() - 1));
      if (src == dst) continue;
      const auto r =
          inject(topo, routers, src, dst,
                 dataplane::encode_segment_route({dst}), rng.engine()());
      EXPECT_NE(r.outcome, ForwardOutcome::kDroppedLoop);
      EXPECT_NE(r.outcome, ForwardOutcome::kDroppedTtlExpired);
      EXPECT_TRUE(r.outcome == ForwardOutcome::kDelivered ||
                  r.outcome == ForwardOutcome::kDroppedLinkDownNoBypass)
          << forward_outcome_name(r.outcome);
      if (r.outcome == ForwardOutcome::kDelivered)
        EXPECT_EQ(r.final_node, dst);
    }
    topo.set_duplex_up(cut, true);
  }
}

// ---- SrSolver: conservation and the consensus-free property ----

TEST(SrSolver, PlacesSegmentsWithinCapacityAndConservation) {
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.5;
  const auto tm = traffic::generate_gravity(topo, gp).aggregated();
  const te::SrSolver solver;
  const te::Solution sol = solver.solve(topo, tm);
  ASSERT_EQ(sol.allocations.size(), tm.size());

  std::vector<double> load(topo.num_links(), 0.0);
  for (std::size_t i = 0; i < sol.allocations.size(); ++i) {
    const auto& a = sol.allocations[i];
    EXPECT_EQ(a.demand.src, tm.demands()[i].src);
    EXPECT_LE(a.allocated_gbps, a.demand.rate_gbps + 1e-9);
    double w = 0.0;
    for (const auto& wp : a.paths) {
      ASSERT_FALSE(wp.segments.empty());
      EXPECT_LE(wp.segments.size(), 3u);
      EXPECT_EQ(wp.segments.back(), a.demand.dst);
      ASSERT_TRUE(wp.path.is_valid(topo));
      w += wp.weight;
      for (topo::LinkId l : wp.path.links)
        load[l] += a.allocated_gbps * wp.weight;
    }
    if (!a.paths.empty()) EXPECT_NEAR(w, 1.0, 1e-6);
  }
  for (topo::LinkId l = 0; l < topo.num_links(); ++l)
    EXPECT_LE(load[l], topo.link(l).capacity_gbps + 1e-6) << "link " << l;
  // The gravity matrix leaves headroom; SR must serve nearly all of it.
  double offered = 0.0;
  for (const auto& d : tm.demands()) offered += d.rate_gbps;
  EXPECT_GT(sol.total_allocated_gbps(), 0.9 * offered);
}

TEST(SrSolver, DeterministicAcrossRepeatSolves) {
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.4;
  const auto tm = traffic::generate_gravity(topo, gp).aggregated();
  const te::SrSolver solver;
  const auto a = solver.solve(topo, tm);
  const auto b = solver.solve(topo, tm);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_EQ(a.allocations[i].allocated_gbps, b.allocations[i].allocated_gbps);
    EXPECT_EQ(a.allocations[i].paths, b.allocations[i].paths);
  }
}

// ---- The SR-vs-strict differential oracle (the tentpole) ----

TEST(SrOracle, SameViewSameDeliveredSetAndBoundedThroughputGap) {
  // Two fleets on the identical converged view and demand matrix: one
  // all-strict-TE, one all-SR. The delivered set (demands whose packets
  // actually arrive through the programmed dataplane) must be identical,
  // and SR's admitted throughput must stay within 10% of strict TE's.
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.target_max_utilization = 0.5;
  const auto tm = traffic::generate_gravity(topo, gp).aggregated();

  sim::DsdnEmulation strict(topo, tm);
  sim::EmulationConfig sr_cfg;
  sr_cfg.algorithms.assign(topo.num_nodes(),
                           core::PathingAlgorithm::kSegmentRouting);
  sim::DsdnEmulation sr(topo, tm, sr_cfg);
  strict.bootstrap();
  sr.bootstrap();
  ASSERT_TRUE(strict.views_converged());
  ASSERT_TRUE(sr.views_converged());

  const auto delivered_set = [&](const sim::DsdnEmulation& emu) {
    std::set<std::size_t> delivered;
    const auto& rows = emu.demands().demands();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto r = emu.send_packet(rows[i].src,
                                     emu.address_of(rows[i].dst),
                                     rows[i].priority, 0x9E37 + i);
      if (r.outcome == ForwardOutcome::kDelivered) delivered.insert(i);
    }
    return delivered;
  };

  const auto check_era = [&](const char* era) {
    EXPECT_EQ(delivered_set(strict), delivered_set(sr)) << era;
    const double strict_gbps =
        te::Solver().solve(strict.network(), tm).total_allocated_gbps();
    const double sr_gbps =
        te::SrSolver().solve(sr.network(), tm).total_allocated_gbps();
    EXPECT_GE(sr_gbps, 0.9 * strict_gbps) << era;
    // And both fleets are invariant-clean (FIB walks, conservation,
    // blackholes, cold-solve parity) on the same view.
    EXPECT_TRUE(sim::check_invariants(strict).ok()) << era;
    const sim::InvariantReport sr_rep = sim::check_invariants(sr);
    EXPECT_TRUE(sr_rep.ok())
        << era << ": " << (sr_rep.ok() ? "" : sr_rep.violations.front());
  };

  check_era("converged");
  strict.fail_fiber(0);
  sr.fail_fiber(0);
  check_era("after cut");
  strict.repair_fiber(0);
  sr.repair_fiber(0);
  check_era("after repair");
}

// ---- Mixed three-algorithm fleets (satellite 2) ----

TEST(SrMixedFleet, ThreeAlgorithmConsensusOverSixteenSeedsOfChurn) {
  // The rollout differential: every router, running its own algorithm on
  // its own converged view, predicts the identical global placement --
  // across 16 seeded fleets and cut/repair eras. check_invariants runs
  // capacity conservation and the DiffChecker-based cold-solve parity
  // (zero violations allowed), plus SR FIB walks.
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  gp.target_max_utilization = 0.5;
  const auto tm = traffic::generate_gravity(topo, gp).aggregated();

  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    util::Rng rng(util::splitmix64(seed));
    sim::EmulationConfig cfg;
    cfg.algorithms.resize(topo.num_nodes());
    for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
      cfg.algorithms[n] =
          static_cast<core::PathingAlgorithm>(rng.uniform_int(0, 2));
    }
    // Force all three algorithms to appear somewhere.
    cfg.algorithms[0] = core::PathingAlgorithm::kMaxMinFairTe;
    cfg.algorithms[1] = core::PathingAlgorithm::kShortestPath;
    cfg.algorithms[2] = core::PathingAlgorithm::kSegmentRouting;

    sim::DsdnEmulation emu(topo, tm, cfg);
    emu.bootstrap();
    const topo::LinkId fiber =
        static_cast<topo::LinkId>(rng.uniform_int(0, topo.num_links() - 1));

    const auto check_era = [&](const char* era) {
      ASSERT_TRUE(emu.views_converged()) << "seed " << seed << " " << era;
      const sim::InvariantReport rep = sim::check_invariants(emu);
      ASSERT_TRUE(rep.ok()) << "seed " << seed << " " << era << ": "
                            << rep.violations.front();
    };
    check_era("bootstrap");
    emu.fail_fiber(fiber);
    check_era("cut");
    emu.repair_fiber(fiber);
    check_era("repair");

    // Explicit consensus probe on the converged view: re-solving with
    // each router's own view yields one identical global placement.
    if (seed <= 4) {
      const auto algo_of = [&](topo::NodeId n) { return cfg.algorithms[n]; };
      const core::MixedAlgorithmSolver solver(cfg.solver_options, algo_of);
      const te::Solution ref =
          solver.solve(emu.controller(0).state().view(), tm, nullptr);
      for (topo::NodeId n = 1; n < topo.num_nodes(); ++n) {
        const te::Solution mine =
            solver.solve(emu.controller(n).state().view(), tm, nullptr);
        ASSERT_EQ(mine.allocations.size(), ref.allocations.size());
        for (std::size_t i = 0; i < ref.allocations.size(); ++i) {
          ASSERT_EQ(mine.allocations[i].allocated_gbps,
                    ref.allocations[i].allocated_gbps)
              << "seed " << seed << " router " << n << " demand " << i;
          ASSERT_EQ(mine.allocations[i].paths, ref.allocations[i].paths)
              << "seed " << seed << " router " << n << " demand " << i;
        }
      }
    }
  }
}

TEST(SrMixedFleet, SrRoutersProgramSegmentFibsAndAdvertiseTlv) {
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.3;
  const auto tm = traffic::generate_gravity(topo, gp).aggregated();
  sim::EmulationConfig cfg;
  cfg.algorithms.assign(topo.num_nodes(), core::PathingAlgorithm::kMaxMinFairTe);
  cfg.algorithms[3] = core::PathingAlgorithm::kSegmentRouting;
  sim::DsdnEmulation emu(topo, tm, cfg);
  emu.bootstrap();
  // Everyone programs the segment FIB (any router can be mid-path for an
  // SR headend), and every router's view agrees on who runs what.
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    EXPECT_EQ(emu.at(n).sr.num_targets(), topo.num_nodes() - 1);
    const auto map =
        core::algorithm_map_from_state(emu.controller(n).state());
    ASSERT_EQ(map.size(), topo.num_nodes());
    for (topo::NodeId m = 0; m < topo.num_nodes(); ++m)
      EXPECT_EQ(map[m], cfg.algorithms[m]) << "router " << n << " about " << m;
  }
  // SR stacks really are installed at the SR headend: at least one encap
  // route is a pure node-segment stack of depth <= 3.
  bool saw_sr_stack = false;
  for (const auto& [key, entry] : emu.at(3).ingress.encap_table()) {
    for (const auto& route : entry.routes) {
      if (!route.stack.empty() &&
          dataplane::is_node_segment_label(route.stack.labels()[0])) {
        saw_sr_stack = true;
        EXPECT_LE(route.stack.depth(), 3u);
        for (dataplane::Label l : route.stack.labels())
          EXPECT_TRUE(dataplane::is_node_segment_label(l));
      }
    }
  }
  EXPECT_TRUE(saw_sr_stack);
}

TEST(SrMixedFleet, AlgorithmsVectorSizeMismatchThrows) {
  const auto topo = topo::make_fig5();
  traffic::GravityParams gp;
  gp.pair_fraction = 1.0;
  sim::EmulationConfig cfg;
  cfg.algorithms.assign(2, core::PathingAlgorithm::kSegmentRouting);
  EXPECT_THROW(
      sim::DsdnEmulation(topo, traffic::generate_gravity(topo, gp), cfg),
      std::invalid_argument);
}

}  // namespace
}  // namespace dsdn
