#include <gtest/gtest.h>

#include "sim/convergence.hpp"
#include "sim/event_queue.hpp"
#include "sim/failure.hpp"
#include "sim/flow_eval.hpp"
#include "sim/transient.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::sim {
namespace {

using metrics::PriorityClass;

TEST(EventQueue, RunsInTimeOrderWithStableTies) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&] { order.push_back(3); });
  q.schedule(1.0, [&] { order.push_back(1); });
  q.schedule(1.0, [&] { order.push_back(2); });  // same time, FIFO
  q.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
}

TEST(EventQueue, CallbacksCanScheduleMore) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] {
    ++fired;
    q.schedule_in(0.5, [&] { ++fired; });
  });
  EXPECT_EQ(q.run(), 2u);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(q.now(), 1.5);
}

TEST(EventQueue, SameTimestampFifoStressWithNestedScheduling) {
  // Determinism backbone of the whole emulation: at equal timestamps the
  // queue is strictly FIFO in scheduling order, including events
  // scheduled from *within* callbacks running at that same timestamp.
  EventQueue q;
  std::vector<int> order;
  constexpr int kFirstWave = 200;
  constexpr int kNested = 50;
  for (int i = 0; i < kFirstWave; ++i) {
    q.schedule(1.0, [&order, &q, i] {
      order.push_back(i);
      if (i < kNested) {
        // now() == 1.0: same-timestamp events appended from a callback
        // land after everything already scheduled, in this order.
        q.schedule(1.0, [&order, i] { order.push_back(1000 + i); });
      }
    });
  }
  EXPECT_EQ(q.run(), static_cast<std::size_t>(kFirstWave + kNested));
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kFirstWave + kNested));
  for (int i = 0; i < kFirstWave; ++i) EXPECT_EQ(order[i], i);
  for (int i = 0; i < kNested; ++i) EXPECT_EQ(order[kFirstWave + i], 1000 + i);
  EXPECT_DOUBLE_EQ(q.now(), 1.0);
}

TEST(EventQueue, RejectsPastScheduling) {
  EventQueue q;
  q.schedule(1.0, [] {});
  q.run();
  EXPECT_THROW(q.schedule(0.5, [] {}), std::invalid_argument);
}

TEST(EventQueue, RunUntilHonorsHorizon) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&] { ++fired; });
  q.schedule(5.0, [&] { ++fired; });
  q.run_until(2.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 2.0);
  EXPECT_EQ(q.pending(), 1u);
}

TEST(Failures, EventsOrderedAndAlternating) {
  const auto topo = topo::make_geant();
  FailureParams p;
  p.days = 365;
  p.mttf_days = 30;
  const auto events = generate_failures(topo, p);
  ASSERT_GT(events.size(), 10u);
  std::map<topo::LinkId, bool> down;
  double last = 0;
  for (const auto& e : events) {
    EXPECT_GE(e.time_s, last);
    last = e.time_s;
    if (e.up) {
      EXPECT_TRUE(down[e.fiber]);  // repair only after failure
      down[e.fiber] = false;
    } else {
      EXPECT_FALSE(down[e.fiber]);  // no double failure
      down[e.fiber] = true;
    }
  }
}

TEST(Failures, ChurnMultiplierScalesRate) {
  const auto topo = topo::make_geant();
  FailureParams base;
  base.days = 200;
  FailureParams churned = base;
  churned.churn_multiplier = 10.0;
  const auto a = generate_failures(topo, base);
  const auto b = generate_failures(topo, churned);
  EXPECT_GT(b.size(), a.size() * 4);
}

TEST(Failures, OnlyDuplexRepresentativesFail) {
  const auto topo = topo::make_geant();
  FailureParams p;
  p.days = 500;
  p.mttf_days = 20;
  for (const auto& e : generate_failures(topo, p)) {
    const auto& l = topo.link(e.fiber);
    EXPECT_TRUE(l.reverse == topo::kInvalidLink || l.id < l.reverse);
  }
}

// ---- flow evaluation ----

struct EvalFixture {
  topo::Topology topo = topo::make_fig5();  // R0->R1 direct + via R2
  traffic::TrafficMatrix tm;

  EvalFixture() {
    tm.add({0, 1, PriorityClass::kHigh, 50.0});
  }

  InstalledRouting route_via(std::initializer_list<topo::LinkId> links) {
    InstalledRouting r;
    te::WeightedPath wp;
    wp.path.links = links;
    wp.weight = 1.0;
    r.rows.push_back({wp});
    return r;
  }
};

TEST(FlowEval, HealthyRoutingHasNoLoss) {
  EvalFixture f;
  const auto routing = f.route_via({f.topo.find_link(0, 1)});
  const auto report = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_DOUBLE_EQ(report.loss[0], 0.0);
  EXPECT_DOUBLE_EQ(report.utilization[f.topo.find_link(0, 1)], 0.5);
}

TEST(FlowEval, DownLinkWithoutBypassIsTotalLoss) {
  EvalFixture f;
  const topo::LinkId direct = f.topo.find_link(0, 1);
  const auto routing = f.route_via({direct});
  f.topo.set_duplex_up(direct, false);
  const auto report = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_DOUBLE_EQ(report.loss[0], 1.0);
}

TEST(FlowEval, BypassAbsorbsFailure) {
  EvalFixture f;
  const topo::LinkId direct = f.topo.find_link(0, 1);
  const auto routing = f.route_via({direct});
  const auto bypasses = dataplane::BypassPlan::compute(
      f.topo, dataplane::BypassStrategy::kShortestPath);
  f.topo.set_duplex_up(direct, false);
  const auto report = evaluate_loss(f.topo, f.tm, routing, &bypasses);
  EXPECT_DOUBLE_EQ(report.loss[0], 0.0);  // 50G fits the 100G detour
}

TEST(FlowEval, CongestionDropsProportionally) {
  EvalFixture f;
  // Push 150G down a 100G link: 1/3 loss.
  f.tm = traffic::TrafficMatrix();
  f.tm.add({0, 1, PriorityClass::kHigh, 150.0});
  const auto routing = f.route_via({f.topo.find_link(0, 1)});
  const auto report = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_NEAR(report.loss[0], 1.0 / 3.0, 1e-9);
}

TEST(FlowEval, StrictPriorityProtectsHighClass) {
  EvalFixture f;
  f.tm = traffic::TrafficMatrix();
  f.tm.add({0, 1, PriorityClass::kHigh, 80.0});
  f.tm.add({0, 1, PriorityClass::kLow, 80.0});
  InstalledRouting routing;
  te::WeightedPath wp;
  wp.path.links = {f.topo.find_link(0, 1)};
  routing.rows.push_back({wp});
  routing.rows.push_back({wp});
  const auto report = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_DOUBLE_EQ(report.loss[0], 0.0);          // high untouched
  EXPECT_NEAR(report.loss[1], 0.75, 1e-9);        // low gets 20 of 80
}

TEST(FlowEval, MissingRoutingIsBlackhole) {
  EvalFixture f;
  InstalledRouting routing;
  routing.rows.push_back({});  // nothing installed
  const auto report = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_DOUBLE_EQ(report.loss[0], 1.0);
}

TEST(FlowEval, ZeroRateDemandIsNeverCharged) {
  // Regression: a demand offering 0 Gbps used to be scored loss = 1.0
  // when its route set was empty or partially installed -- it offers
  // nothing, so it can lose nothing.
  EvalFixture f;
  f.tm = traffic::TrafficMatrix();
  f.tm.add({0, 1, PriorityClass::kHigh, 0.0});
  InstalledRouting none;
  none.rows.push_back({});
  EXPECT_DOUBLE_EQ(evaluate_loss(f.topo, f.tm, none).loss[0], 0.0);

  const auto partial = f.route_via({f.topo.find_link(0, 1)});
  EXPECT_DOUBLE_EQ(evaluate_loss(f.topo, f.tm, partial).loss[0], 0.0);
}

TEST(FlowEval, PartialInstallChargesMissingWeightProportionally) {
  // Only 60% of the demand's route set made it into the FIB: the
  // missing 40% is charged as loss, not lumped into a full blackhole.
  EvalFixture f;
  InstalledRouting routing;
  te::WeightedPath wp;
  wp.path.links = {f.topo.find_link(0, 1)};
  wp.weight = 0.6;
  routing.rows.push_back({wp});
  const auto report = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_NEAR(report.loss[0], 0.4, 1e-9);
}

TEST(FlowEval, ZeroWeightRoutesCarryNothing) {
  // A row whose only route has weight 0 effectively installs nothing:
  // the whole demand is missing weight, hence full loss.
  EvalFixture f;
  InstalledRouting routing;
  te::WeightedPath wp;
  wp.path.links = {f.topo.find_link(0, 1)};
  wp.weight = 0.0;
  routing.rows.push_back({wp});
  const auto report = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_DOUBLE_EQ(report.loss[0], 1.0);
  // And the zero-weight portion must not have offered load to the link.
  EXPECT_DOUBLE_EQ(report.utilization[f.topo.find_link(0, 1)], 0.0);
}

TEST(FlowEval, StructuralOnlyScoringIgnoresCongestion) {
  // With congestion scoring off, an oversubscribed link grants every
  // class in full: only structural failures (missing routes, dead paths,
  // missing weight) count. The invariant checkers rely on this to avoid
  // flagging strict-priority starvation as a blackhole.
  EvalFixture f;
  f.tm = traffic::TrafficMatrix();
  f.tm.add({0, 1, PriorityClass::kHigh, 200.0});  // saturates the link
  f.tm.add({0, 1, PriorityClass::kLow, 50.0});    // starved under QoS
  InstalledRouting routing;
  te::WeightedPath wp;
  wp.path.links = {f.topo.find_link(0, 1)};
  routing.rows.push_back({wp});
  routing.rows.push_back({wp});
  const auto congested = evaluate_loss(f.topo, f.tm, routing);
  EXPECT_DOUBLE_EQ(congested.loss[1], 1.0);  // scavenger loses everything

  LossOptions structural;
  structural.congestion = false;
  const auto report =
      evaluate_loss(f.topo, f.tm, routing, nullptr, structural);
  EXPECT_DOUBLE_EQ(report.loss[0], 0.0);
  EXPECT_DOUBLE_EQ(report.loss[1], 0.0);
  // Utilization still reports the true offered load for diagnostics.
  EXPECT_GT(report.utilization[f.topo.find_link(0, 1)], 1.0);

  // Structural failures still count: a 60%-weight partial install loses
  // its missing share even without congestion scoring.
  InstalledRouting partial;
  te::WeightedPath part = wp;
  part.weight = 0.6;
  partial.rows.push_back({part});
  partial.rows.push_back({});
  const auto sp = evaluate_loss(f.topo, f.tm, partial, nullptr, structural);
  EXPECT_NEAR(sp.loss[0], 0.4, 1e-9);
  EXPECT_DOUBLE_EQ(sp.loss[1], 1.0);  // nothing installed at all
}

TEST(FlowEval, BlastRadiusCountsViolatingGroups) {
  EvalFixture f;
  const auto groups =
      traffic::group_flows_of_class(f.topo, f.tm, PriorityClass::kHigh);
  ASSERT_EQ(groups.size(), 1u);
  LossReport clean;
  clean.loss = {0.0};
  EXPECT_DOUBLE_EQ(blast_radius(f.tm, groups, clean), 0.0);
  LossReport dirty;
  dirty.loss = {0.5};
  EXPECT_DOUBLE_EQ(blast_radius(f.tm, groups, dirty), 1.0);
}

TEST(FlowEval, LatencyInflationDetectsDetour) {
  EvalFixture f;
  const auto direct = f.route_via({f.topo.find_link(0, 1)});
  const auto detour =
      f.route_via({f.topo.find_link(0, 2), f.topo.find_link(2, 1)});
  const double inflation =
      median_latency_inflation(f.topo, f.tm, direct, detour, nullptr);
  EXPECT_NEAR(inflation, 2.0, 1e-9);  // 2 hops of 1ms vs 1 hop
}

// ---- convergence measurement ----

TEST(Convergence, NsuArrivalMonotoneInDistance) {
  const auto topo = topo::make_line(6);
  metrics::DsdnCalibration calib;
  util::Rng rng(4);
  const auto arrival = nsu_arrival_times(topo, 0, calib, rng);
  EXPECT_DOUBLE_EQ(arrival[0], 0.0);
  for (std::size_t i = 1; i < arrival.size(); ++i) {
    EXPECT_GT(arrival[i], arrival[i - 1]);
  }
}

TEST(Convergence, NsuArrivalInfiniteWhenUnreachable) {
  auto topo = topo::make_line(3);
  topo.set_duplex_up(topo.find_link(1, 2), false);
  metrics::DsdnCalibration calib;
  util::Rng rng(4);
  const auto arrival = nsu_arrival_times(topo, 0, calib, rng);
  EXPECT_FALSE(std::isfinite(arrival[2]));
}

TEST(Convergence, PickFailureFibersPreserveConnectivity) {
  const auto topo = topo::make_geant();
  const auto fibers = pick_failure_fibers(topo, 10, 1);
  ASSERT_EQ(fibers.size(), 10u);
  auto scratch = topo;
  for (topo::LinkId f : fibers) {
    scratch.set_duplex_up(f, false);
    EXPECT_TRUE(topo::is_strongly_connected(scratch));
    scratch.set_duplex_up(f, true);
  }
}

TEST(Convergence, DsdnComponentsHaveExpectedShape) {
  const auto topo = topo::make_geant();
  DsdnConvergenceConfig cfg;
  cfg.n_events = 20;
  const auto d = measure_dsdn_convergence(topo, cfg);
  EXPECT_GT(d.tprop.size(), 100u);
  EXPECT_GT(d.total.size(), 10u);
  // Local programming is milliseconds-scale.
  EXPECT_LT(d.tprog.median(), 0.5);
  // Total >= any component median.
  EXPECT_GT(d.total.median(), d.tcomp.median());
}

TEST(Convergence, CsdnSlowerThanDsdnOnSameNetwork) {
  // The headline §5.1.1 result must hold on our synthetic stand-ins.
  const auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  const auto tm = traffic::generate_gravity(topo, gp);

  DsdnConvergenceConfig dcfg;
  dcfg.n_events = 15;
  const auto dsdn = measure_dsdn_convergence(topo, dcfg);

  CsdnConvergenceConfig ccfg;
  ccfg.n_events = 15;
  const auto csdn = measure_csdn_convergence(topo, tm, ccfg);

  EXPECT_GT(csdn.tprop.median() / dsdn.tprop.median(), 3.0);
  EXPECT_GT(csdn.tprog.median() / dsdn.tprog.median(), 10.0);
  EXPECT_GT(csdn.total.median() / dsdn.total.median(), 5.0);
}

// ---- transient impact ----

struct TransientFixture {
  topo::Topology topo = topo::make_geant();
  traffic::TrafficMatrix tm;

  TransientFixture() {
    traffic::GravityParams gp;
    gp.pair_fraction = 0.4;
    gp.target_max_utilization = 0.6;
    tm = traffic::generate_gravity(topo, gp);
  }

  TransientConfig config(Scheme scheme) const {
    TransientConfig c;
    c.scheme = scheme;
    c.failures.days = 40;
    c.failures.mttf_days = 60;
    c.failures.seed = 5;
    c.seed = 6;
    return c;
  }
};

TEST(Transient, OmniscientLowerBoundsBothSchemes) {
  TransientFixture f;
  SolutionProvider provider(&f.tm, {});
  auto run = [&](Scheme s) {
    TransientSimulator sim(f.topo, f.tm, f.config(s), &provider);
    return sim.run();
  };
  const auto omni = run(Scheme::kOmniscient);
  const auto csdn = run(Scheme::kCsdn);
  const auto dsdn = run(Scheme::kDsdn);

  for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
    const auto cls = static_cast<PriorityClass>(c);
    const double o = omni.bad_seconds_distribution(cls).mean();
    const double cs = csdn.bad_seconds_distribution(cls).mean();
    const double ds = dsdn.bad_seconds_distribution(cls).mean();
    EXPECT_LE(o, cs + 1e-9) << "class " << c;
    EXPECT_LE(o, ds + 1e-9) << "class " << c;
  }
  // And the paper's central claim: dSDN beats cSDN.
  const double cs_low =
      csdn.bad_seconds_distribution(PriorityClass::kLow).mean();
  const double ds_low =
      dsdn.bad_seconds_distribution(PriorityClass::kLow).mean();
  EXPECT_LT(ds_low, cs_low);
  EXPECT_GT(provider.hits(), 0u);  // cache shared across schemes
}

TEST(Transient, LowerClassesSufferMore) {
  TransientFixture f;
  SolutionProvider provider(&f.tm, {});
  TransientSimulator sim(f.topo, f.tm, f.config(Scheme::kCsdn), &provider);
  const auto r = sim.run();
  const double high =
      r.bad_seconds_distribution(PriorityClass::kHigh).mean();
  const double low = r.bad_seconds_distribution(PriorityClass::kLow).mean();
  EXPECT_LE(high, low + 1e-9);
}

TEST(Transient, TimelineRecordsSelectedEvent) {
  TransientFixture f;
  auto cfg = f.config(Scheme::kDsdn);
  cfg.timeline_event = 0;
  TransientSimulator sim(f.topo, f.tm, cfg);
  const auto r = sim.run();
  ASSERT_FALSE(r.events.empty());
  EXPECT_FALSE(r.timeline.empty());
  for (const auto& s : r.timeline) {
    EXPECT_GE(s.time, 0.0);
    EXPECT_GE(s.blast_radius, 0.0);
    EXPECT_LE(s.blast_radius, 1.0);
  }
}

TEST(Transient, DeterministicUnderSeed) {
  TransientFixture f;
  TransientSimulator a(f.topo, f.tm, f.config(Scheme::kDsdn));
  TransientSimulator b(f.topo, f.tm, f.config(Scheme::kDsdn));
  const auto ra = a.run();
  const auto rb = b.run();
  ASSERT_EQ(ra.events.size(), rb.events.size());
  for (std::size_t i = 0; i < ra.events.size(); ++i) {
    for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
      EXPECT_DOUBLE_EQ(ra.events[i].bad_seconds[c],
                       rb.events[i].bad_seconds[c]);
    }
  }
}

TEST(Transient, BypassesReduceImpact) {
  TransientFixture f;
  SolutionProvider provider(&f.tm, {});
  auto cfg_plain = f.config(Scheme::kCsdn);
  auto cfg_bypass = cfg_plain;
  cfg_bypass.use_bypasses = true;
  TransientSimulator plain(f.topo, f.tm, cfg_plain, &provider);
  TransientSimulator byp(f.topo, f.tm, cfg_bypass, &provider);
  const double loss_plain =
      plain.run().bad_seconds_distribution(PriorityClass::kLow).mean();
  const double loss_byp =
      byp.run().bad_seconds_distribution(PriorityClass::kLow).mean();
  EXPECT_LE(loss_byp, loss_plain + 1e-9);
}

}  // namespace
}  // namespace dsdn::sim
