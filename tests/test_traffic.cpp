#include <gtest/gtest.h>

#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/flow_group.hpp"
#include "traffic/gravity.hpp"
#include "traffic/matrix.hpp"

namespace dsdn::traffic {
namespace {

using metrics::PriorityClass;

TEST(Matrix, AddValidatesInput) {
  TrafficMatrix tm;
  EXPECT_THROW(tm.add({0, 0, PriorityClass::kHigh, 1.0}),
               std::invalid_argument);
  EXPECT_THROW(tm.add({0, 1, PriorityClass::kHigh, -1.0}),
               std::invalid_argument);
  tm.add({0, 1, PriorityClass::kHigh, 1.0});
  EXPECT_EQ(tm.size(), 1u);
}

TEST(Matrix, ScaledMultipliesRates) {
  TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 2.0});
  tm.add({1, 0, PriorityClass::kLow, 3.0});
  const auto scaled = tm.scaled(1.5);
  EXPECT_DOUBLE_EQ(scaled.total_rate_gbps(), 7.5);
  EXPECT_DOUBLE_EQ(tm.total_rate_gbps(), 5.0);
  EXPECT_THROW(tm.scaled(-1.0), std::invalid_argument);
}

TEST(Matrix, FromFiltersBySource) {
  TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 1.0});
  tm.add({2, 1, PriorityClass::kHigh, 1.0});
  tm.add({0, 2, PriorityClass::kLow, 1.0});
  EXPECT_EQ(tm.from(0).size(), 2u);
  EXPECT_EQ(tm.from(1).size(), 0u);
}

TEST(Matrix, AggregatedMergesDuplicateKeys) {
  TrafficMatrix tm;
  tm.add({0, 1, PriorityClass::kHigh, 1.0});
  tm.add({0, 1, PriorityClass::kHigh, 2.5});
  tm.add({0, 1, PriorityClass::kLow, 1.0});
  const auto agg = tm.aggregated();
  EXPECT_EQ(agg.size(), 2u);
  EXPECT_DOUBLE_EQ(agg.total_rate_gbps(), 4.5);
}

TEST(Gravity, NormalizesToTargetUtilization) {
  const auto topo = topo::make_abilene();
  GravityParams params;
  params.target_max_utilization = 0.5;
  const auto tm = generate_gravity(topo, params);
  EXPECT_GT(tm.size(), 0u);
  EXPECT_NEAR(shortest_path_max_utilization(topo, tm), 0.5, 1e-9);
}

TEST(Gravity, EmitsAllConfiguredClasses) {
  const auto topo = topo::make_abilene();
  const auto tm = generate_gravity(topo);
  bool seen[metrics::kNumPriorityClasses] = {};
  for (const Demand& d : tm.demands()) seen[static_cast<int>(d.priority)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(Gravity, PairFractionSparsifies) {
  const auto topo = topo::make_geant();
  GravityParams dense;
  GravityParams sparse;
  sparse.pair_fraction = 0.2;
  const auto tm_dense = generate_gravity(topo, dense);
  const auto tm_sparse = generate_gravity(topo, sparse);
  EXPECT_LT(tm_sparse.size(), tm_dense.size() / 2);
}

TEST(Gravity, DeterministicUnderSeed) {
  const auto topo = topo::make_abilene();
  const auto a = generate_gravity(topo);
  const auto b = generate_gravity(topo);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.demands()[i].rate_gbps, b.demands()[i].rate_gbps);
  }
}

TEST(Gravity, SkipsIntraMetroPairs) {
  // Two routers in one metro exchange no WAN traffic.
  topo::Topology t;
  const auto a = t.add_node("a1", "m1");
  const auto b = t.add_node("a2", "m1");
  const auto c = t.add_node("b1", "m2");
  t.add_duplex(a, b, 100);
  t.add_duplex(b, c, 100);
  const auto tm = generate_gravity(t);
  for (const Demand& d : tm.demands()) {
    EXPECT_NE(t.node(d.src).metro, t.node(d.dst).metro);
  }
}

TEST(FlowGroups, PartitionCoversEveryDemandOnce) {
  const auto topo = topo::make_b4_like();
  GravityParams params;
  params.pair_fraction = 0.1;
  const auto tm = generate_gravity(topo, params);
  const auto groups = group_flows(topo, tm);
  std::size_t covered = 0;
  double volume = 0;
  for (const auto& g : groups) {
    covered += g.demand_indices.size();
    volume += g.total_rate_gbps;
  }
  EXPECT_EQ(covered, tm.size());
  EXPECT_NEAR(volume, tm.total_rate_gbps(), 1e-6);
}

TEST(FlowGroups, KeyedByClassAndMetroPair) {
  const auto topo = topo::make_abilene();
  const auto tm = generate_gravity(topo);
  for (const auto& g : group_flows(topo, tm)) {
    for (std::size_t idx : g.demand_indices) {
      const Demand& d = tm.demands()[idx];
      EXPECT_EQ(d.priority, g.key.priority);
      EXPECT_EQ(topo.node(d.src).metro, g.key.src_metro);
      EXPECT_EQ(topo.node(d.dst).metro, g.key.dst_metro);
    }
  }
}

TEST(FlowGroups, ClassFilterWorks) {
  const auto topo = topo::make_abilene();
  const auto tm = generate_gravity(topo);
  const auto high =
      group_flows_of_class(topo, tm, PriorityClass::kHigh);
  EXPECT_GT(high.size(), 0u);
  for (const auto& g : high) {
    EXPECT_EQ(g.key.priority, PriorityClass::kHigh);
  }
}

}  // namespace
}  // namespace dsdn::traffic
