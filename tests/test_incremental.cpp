// Warm-start incremental TE recompute: equivalence with the full
// solver, affected-set classification, fallback behavior, and the
// DiffChecker contract under randomized link-flap / demand-churn
// sequences (the ISSUE 4 acceptance suite).

#include <gtest/gtest.h>

#include <cmath>

#include "te/incremental.hpp"
#include "te/solver.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"
#include "util/rng.hpp"

namespace dsdn::te {
namespace {

using metrics::PriorityClass;

topo::Topology diamond() {
  // a -> {b, c} -> d, 10G per link, with the b branch cheaper.
  topo::Topology t;
  const auto a = t.add_node("a");
  const auto b = t.add_node("b");
  const auto c = t.add_node("c");
  const auto d = t.add_node("d");
  t.add_duplex(a, b, 10, 1.0);
  t.add_duplex(b, d, 10, 1.0);
  t.add_duplex(a, c, 10, 2.0);
  t.add_duplex(c, d, 10, 2.0);
  return t;
}

ViewDelta link_delta(const topo::Topology& t, topo::LinkId fiber) {
  ViewDelta d;
  d.full = false;
  d.changed_links = {fiber, t.link(fiber).reverse};
  return d;
}

ViewDelta demand_delta(topo::NodeId origin) {
  ViewDelta d;
  d.full = false;
  d.changed_demand_origins = {origin};
  return d;
}

TEST(IncrementalSolver, ColdSolveMatchesFullSolver) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  IncrementalSolver inc;
  IncrementalStats stats;
  const Solution warm = inc.solve(t, tm, ViewDelta{}, &stats);
  const Solution ref = Solver().solve(t, tm);

  EXPECT_FALSE(stats.incremental);
  EXPECT_EQ(stats.total_demands, tm.size());
  EXPECT_EQ(inc.full_solves(), 1u);
  // The solver is deterministic, so a full-delta warm solve is the
  // identical solution, allocation by allocation.
  ASSERT_EQ(warm.allocations.size(), ref.allocations.size());
  for (std::size_t i = 0; i < warm.allocations.size(); ++i) {
    EXPECT_DOUBLE_EQ(warm.allocations[i].allocated_gbps,
                     ref.allocations[i].allocated_gbps);
    EXPECT_EQ(warm.allocations[i].paths, ref.allocations[i].paths);
  }
}

TEST(IncrementalSolver, EmptyDeltaReusesEveryAllocation) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  IncrementalSolver inc;
  const Solution first = inc.solve(t, tm, ViewDelta{});

  ViewDelta empty;
  empty.full = false;
  IncrementalStats stats;
  const Solution second = inc.solve(t, tm, empty, &stats);

  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.affected_demands, 0u);
  EXPECT_EQ(stats.reused_allocations, tm.size());
  EXPECT_DOUBLE_EQ(stats.reuse_fraction, 1.0);
  ASSERT_EQ(second.allocations.size(), first.allocations.size());
  for (std::size_t i = 0; i < first.allocations.size(); ++i) {
    EXPECT_EQ(second.allocations[i].paths, first.allocations[i].paths);
  }
}

TEST(IncrementalSolver, SingleLinkFailureReleasesOnlyTouchedDemands) {
  auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  IncrementalOptions io;
  io.full_solve_threshold = 1.0;  // never fall back: observe the reuse
  IncrementalSolver inc(io);
  const Solution before = inc.solve(t, tm, ViewDelta{});

  const auto fiber = t.find_link(0, 1);
  t.set_duplex_up(fiber, false);
  IncrementalStats stats;
  const Solution after = inc.solve(t, tm, link_delta(t, fiber), &stats);

  EXPECT_TRUE(stats.incremental);
  EXPECT_FALSE(stats.fallback);
  EXPECT_GT(stats.affected_demands, 0u);
  EXPECT_GT(stats.reused_allocations, 0u);
  // Exactly the demands whose previous paths crossed the failed fiber
  // (either direction) were released; everything else kept its paths.
  const auto rev = t.link(fiber).reverse;
  ASSERT_EQ(after.allocations.size(), before.allocations.size());
  for (std::size_t i = 0; i < before.allocations.size(); ++i) {
    bool touched = false;
    for (const auto& wp : before.allocations[i].paths) {
      for (topo::LinkId l : wp.path.links) {
        if (l == fiber || l == rev) touched = true;
      }
    }
    if (!touched) {
      EXPECT_EQ(after.allocations[i].paths, before.allocations[i].paths)
          << "untouched demand " << i << " was re-routed";
    }
    for (const auto& wp : after.allocations[i].paths) {
      for (topo::LinkId l : wp.path.links) {
        EXPECT_TRUE(t.link(l).up);
      }
    }
  }
  // The merged solution honors the full-solver invariants.
  const auto report = DiffChecker::check(t, tm, after, SolverOptions{});
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(IncrementalSolver, RepairTriggersFullSolve) {
  auto t = diamond();
  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, 15.0});  // needs both 10G branches
  IncrementalOptions io;
  io.full_solve_threshold = 1.0;
  IncrementalSolver inc(io);
  const Solution full = inc.solve(t, tm, ViewDelta{});
  EXPECT_NEAR(full.allocations[0].allocated_gbps, 15.0, 0.1);

  // The c branch fails: only 10G fit.
  const auto fiber = t.find_link(0, 2);
  t.set_duplex_up(fiber, false);
  const Solution degraded = inc.solve(t, tm, link_delta(t, fiber));
  EXPECT_NEAR(degraded.allocations[0].allocated_gbps, 10.0, 0.1);

  // Repair: freed capacity cascades through the waterfill (kept
  // allocations on detours would block what a cold solve places through
  // the restored link), so the solver must take the full solve.
  t.set_duplex_up(fiber, true);
  IncrementalStats stats;
  const Solution repaired = inc.solve(t, tm, link_delta(t, fiber), &stats);
  EXPECT_FALSE(stats.incremental);
  EXPECT_TRUE(stats.fallback);
  EXPECT_NEAR(repaired.allocations[0].allocated_gbps, 15.0, 0.1);
}

TEST(IncrementalSolver, FallbackWhenDeltaTouchesTooMuch) {
  auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  IncrementalOptions io;
  io.full_solve_threshold = 0.0;  // any affected demand forces fallback
  IncrementalSolver inc(io);
  inc.solve(t, tm, ViewDelta{});

  const auto fiber = t.find_link(0, 1);
  t.set_duplex_up(fiber, false);
  IncrementalStats stats;
  const Solution sol = inc.solve(t, tm, link_delta(t, fiber), &stats);

  EXPECT_TRUE(stats.fallback);
  EXPECT_FALSE(stats.incremental);
  EXPECT_EQ(stats.reused_allocations, 0u);
  EXPECT_EQ(inc.fallbacks(), 1u);
  EXPECT_EQ(inc.full_solves(), 2u);
  // The fallback is a plain full solve: identical to the scratch solver.
  const Solution ref = Solver().solve(t, tm);
  ASSERT_EQ(sol.allocations.size(), ref.allocations.size());
  for (std::size_t i = 0; i < sol.allocations.size(); ++i) {
    EXPECT_EQ(sol.allocations[i].paths, ref.allocations[i].paths);
  }
}

TEST(IncrementalSolver, DemandChurnAddsAndDropsRows) {
  const auto t = topo::make_abilene();
  traffic::TrafficMatrix tm;
  tm.add({0, 5, PriorityClass::kHigh, 1.0});
  tm.add({3, 8, PriorityClass::kLow, 2.0});
  IncrementalOptions io;
  io.full_solve_threshold = 1.0;
  IncrementalSolver inc(io);
  inc.solve(t, tm, ViewDelta{});

  // Origin 7 starts advertising: only the new row is affected.
  tm.add({7, 2, PriorityClass::kIntermediate, 3.0});
  IncrementalStats stats;
  Solution sol = inc.solve(t, tm, demand_delta(7), &stats);
  EXPECT_TRUE(stats.incremental);
  EXPECT_EQ(stats.affected_demands, 1u);
  EXPECT_EQ(stats.reused_allocations, 2u);
  ASSERT_EQ(sol.allocations.size(), 3u);
  EXPECT_GT(sol.allocations[2].allocated_gbps, 0.0);

  // Origin 0 re-rates its row upward and origin 3 withdraws entirely.
  // The withdrawal gives its allocation back, so the solver takes the
  // full solve (freed-capacity fallback); the solution keeps shape: one
  // allocation per remaining demand.
  traffic::TrafficMatrix smaller;
  smaller.add({0, 5, PriorityClass::kHigh, 4.0});
  smaller.add({7, 2, PriorityClass::kIntermediate, 3.0});
  ViewDelta d;
  d.full = false;
  d.changed_demand_origins = {0, 3};
  sol = inc.solve(t, smaller, d, &stats);
  EXPECT_FALSE(stats.incremental);
  EXPECT_TRUE(stats.fallback);
  ASSERT_EQ(sol.allocations.size(), 2u);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps, 4.0, 1e-6);
  const auto report = DiffChecker::check(t, smaller, sol, SolverOptions{});
  EXPECT_TRUE(report.ok()) << report.violations.front();
}

TEST(IncrementalSolver, DuplicateDemandRowsDisableWarmStart) {
  // Two identical (src, dst, class) rows cannot be keyed; the solver
  // must stay correct by refusing to warm-start, not by mis-merging.
  const auto t = diamond();
  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, 2.0});
  tm.add({0, 3, PriorityClass::kHigh, 3.0});
  IncrementalSolver inc;
  inc.solve(t, tm, ViewDelta{});

  ViewDelta empty;
  empty.full = false;
  IncrementalStats stats;
  const Solution sol = inc.solve(t, tm, empty, &stats);
  EXPECT_FALSE(stats.incremental);
  EXPECT_EQ(inc.full_solves(), 2u);
  ASSERT_EQ(sol.allocations.size(), 2u);
  EXPECT_NEAR(sol.allocations[0].allocated_gbps + sol.allocations[1].allocated_gbps,
              5.0, 1e-6);
}

TEST(IncrementalSolver, ResetDropsWarmState) {
  const auto t = topo::make_abilene();
  const auto tm = traffic::generate_gravity(t);
  IncrementalSolver inc;
  inc.solve(t, tm, ViewDelta{});
  inc.reset();
  ViewDelta empty;
  empty.full = false;
  IncrementalStats stats;
  inc.solve(t, tm, empty, &stats);
  EXPECT_FALSE(stats.incremental);
  EXPECT_EQ(inc.full_solves(), 2u);
}

TEST(DiffChecker, CatchesViolations) {
  const auto t = diamond();
  traffic::TrafficMatrix tm;
  tm.add({0, 3, PriorityClass::kHigh, 4.0});
  Solution sol = Solver().solve(t, tm);
  ASSERT_TRUE(DiffChecker::check(t, tm, sol, SolverOptions{}).ok());

  // Over-allocation.
  Solution over = sol;
  over.allocations[0].allocated_gbps = 9.0;
  auto report = DiffChecker::check(t, tm, over, SolverOptions{});
  EXPECT_FALSE(report.ok());

  // Shape mismatch.
  Solution short_sol;
  EXPECT_FALSE(DiffChecker::check(t, tm, short_sol, SolverOptions{}).ok());

  // Path over a down link.
  auto broken_topo = t;
  broken_topo.set_duplex_up(t.find_link(0, 1), false);
  report = DiffChecker::check(broken_topo, tm, sol, SolverOptions{});
  EXPECT_FALSE(report.ok());

  // Capacity conservation: duplicate the placed load way past 10G.
  Solution heavy = sol;
  heavy.allocations[0].allocated_gbps = 4.0;
  for (auto& wp : heavy.allocations[0].paths) wp.weight *= 4.0;
  report = DiffChecker::check(t, tm, heavy, SolverOptions{});
  EXPECT_FALSE(report.ok());
}

// ---- Randomized churn: the acceptance suite ----
//
// A long random sequence of connectivity-preserving link flaps, repairs,
// and demand re-rates. Every step runs the incremental solver with
// diff_check on and asserts zero DiffChecker violations -- i.e. the
// warm-start path never produces an infeasible or capacity-violating
// solution and stays within throughput tolerance of the full solver.
void churn_suite(topo::Topology t, traffic::TrafficMatrix tm,
                 std::size_t n_steps, std::uint64_t seed) {
  IncrementalOptions io;
  io.diff_check = true;
  io.diff_check_fatal = false;
  IncrementalSolver inc(io);
  inc.solve(t, tm, ViewDelta{});

  // Duplex fiber representatives that are safe to fail.
  std::vector<topo::LinkId> fibers;
  for (const auto& l : t.links()) {
    if (l.reverse != topo::kInvalidLink && l.id < l.reverse)
      fibers.push_back(l.id);
  }
  util::Rng rng(seed);
  std::vector<topo::LinkId> downed;
  std::size_t incremental_steps = 0;
  for (std::size_t step = 0; step < n_steps; ++step) {
    ViewDelta delta;
    delta.full = false;
    const double roll = rng.uniform();
    if (roll < 0.4 && !downed.empty()) {
      // Repair a random downed fiber.
      const std::size_t k = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(downed.size()) - 1));
      const topo::LinkId f = downed[k];
      downed.erase(downed.begin() + static_cast<std::ptrdiff_t>(k));
      t.set_duplex_up(f, true);
      delta.changed_links = {f, t.link(f).reverse};
    } else if (roll < 0.7) {
      // Fail a random fiber, but never disconnect the graph.
      const topo::LinkId f = rng.pick(fibers);
      if (!t.link(f).up) continue;
      t.set_duplex_up(f, false);
      if (!topo::is_strongly_connected(t)) {
        t.set_duplex_up(f, true);
        continue;
      }
      downed.push_back(f);
      delta.changed_links = {f, t.link(f).reverse};
    } else {
      // Re-rate every demand of a random origin.
      const auto& rows = tm.demands();
      if (rows.empty()) continue;
      const topo::NodeId origin =
          rows[static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(rows.size()) - 1))]
              .src;
      traffic::TrafficMatrix next;
      for (const auto& d : rows) {
        traffic::Demand nd = d;
        if (d.src == origin) nd.rate_gbps *= rng.uniform(0.5, 1.5);
        next.add(nd);
      }
      tm = std::move(next);
      delta.changed_demand_origins = {origin};
    }

    IncrementalStats stats;
    inc.solve(t, tm, delta, &stats);
    ASSERT_EQ(stats.checker_violations, 0u)
        << "step " << step << " violated the differential check";
    if (stats.incremental) ++incremental_steps;
  }
  EXPECT_EQ(inc.checker_violations(), 0u);
  // The suite must actually exercise the warm path, not fall back on
  // every step.
  EXPECT_GT(incremental_steps, n_steps / 4);
}

TEST(IncrementalChurn, AbileneRandomizedFlapsAndDemandChurn) {
  const auto t = topo::make_abilene();
  churn_suite(t, traffic::generate_gravity(t), 60, 0xAB11E7E);
}

TEST(IncrementalChurn, B4LikeRandomizedFlapsAndDemandChurn) {
  // A scaled-down B4-like instance (same generator, fewer metros) keeps
  // the per-step full reference solve affordable in CI.
  topo::B4LikeParams params;
  params.n_metros = 8;
  params.routers_per_metro = 2;
  const auto t = topo::make_b4_like(params);
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  churn_suite(t, traffic::generate_gravity(t, gp), 40, 0xB4B4B4);
}

}  // namespace
}  // namespace dsdn::te
