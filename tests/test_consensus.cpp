// The consensus-free contrast of §3.1: per-hop destination forwarding can
// loop or dead-end while router views diverge; strict source routing
// structurally cannot loop, no matter how stale the headend's view is.

#include <gtest/gtest.h>

#include "dataplane/forwarder.hpp"
#include "isis/per_hop.hpp"
#include "sim/convergence.hpp"
#include "te/dijkstra.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "util/rng.hpp"

namespace dsdn {
namespace {

using isis::PerHopOutcome;

std::vector<isis::NextHopTable> tables_from_view(const topo::Topology& view) {
  std::vector<isis::NextHopTable> tables;
  for (topo::NodeId n = 0; n < view.num_nodes(); ++n) {
    tables.push_back(isis::compute_next_hops(view, n));
  }
  return tables;
}

TEST(PerHop, DeliversWhenAllViewsAgree) {
  const auto topo = topo::make_geant();
  const auto tables = tables_from_view(topo);
  for (topo::NodeId d = 1; d < 10; ++d) {
    const auto r = isis::forward_per_hop(topo, tables, 0, d);
    EXPECT_EQ(r.outcome, PerHopOutcome::kDelivered);
    EXPECT_EQ(r.trace.back(), d);
  }
}

TEST(PerHop, MicroLoopUnderDivergentViews) {
  // Classic micro-loop: a line 0-1-2-3 plus a long backup 0-3. Cut the
  // 2-3 link. Router 2 has reconverged (sends 3-bound traffic back toward
  // 0 to use the backup); router 1 has NOT (still forwards toward 2).
  // A packet for 3 entering at 1 ping-pongs 1 -> 2 -> 1.
  topo::Topology t;
  for (int i = 0; i < 4; ++i) t.add_node("n" + std::to_string(i));
  t.add_duplex(0, 1, 100, 1.0);
  t.add_duplex(1, 2, 100, 1.0);
  t.add_duplex(2, 3, 100, 1.0);
  t.add_duplex(0, 3, 100, 10.0);  // expensive backup

  topo::Topology stale = t;   // pre-failure view
  topo::Topology fresh = t;   // post-failure view
  fresh.set_duplex_up(fresh.find_link(2, 3), false);

  std::vector<isis::NextHopTable> tables;
  tables.push_back(isis::compute_next_hops(fresh, 0));
  tables.push_back(isis::compute_next_hops(stale, 1));  // NOT converged
  tables.push_back(isis::compute_next_hops(fresh, 2));
  tables.push_back(isis::compute_next_hops(fresh, 3));

  topo::Topology ground = fresh;
  const auto r = isis::forward_per_hop(ground, tables, 1, 3);
  EXPECT_EQ(r.outcome, PerHopOutcome::kLoop);
}

TEST(PerHop, SourceRoutingNeverLoopsUnderTheSameDivergence) {
  // The same scenario through the dSDN data plane: the stale headend's
  // source route marches straight to the dead link and stops there --
  // deterministically, with no loop, regardless of what other routers
  // believe.
  topo::Topology t;
  for (int i = 0; i < 4; ++i) t.add_node("n" + std::to_string(i));
  t.add_duplex(0, 1, 100, 1.0);
  t.add_duplex(1, 2, 100, 1.0);
  t.add_duplex(2, 3, 100, 1.0);
  t.add_duplex(0, 3, 100, 10.0);
  const auto prefixes = topo::assign_router_prefixes(t);

  dataplane::VectorDataplanes routers(t.num_nodes());
  for (topo::NodeId n = 0; n < t.num_nodes(); ++n) {
    auto& rd = routers.mutable_at(n);
    rd.transit = dataplane::build_transit_fib(t, n);
    for (topo::NodeId m = 0; m < t.num_nodes(); ++m)
      rd.ingress.set_prefix(prefixes[m], m);
  }
  // Stale headend 1 still uses the pre-failure route 1->2->3.
  te::Path stale_route;
  stale_route.links = {t.find_link(1, 2), t.find_link(2, 3)};
  dataplane::EncapEntry entry;
  entry.routes.push_back(
      {dataplane::encode_strict_route(stale_route), 1.0});
  routers.mutable_at(1).ingress.set_routes(
      3, metrics::PriorityClass::kHigh, entry);

  t.set_duplex_up(t.find_link(2, 3), false);
  const dataplane::Forwarder fwd(t, &routers);
  dataplane::Packet pkt;
  pkt.dst_ip = topo::host_in(prefixes[3]);
  const auto r = fwd.forward(pkt, 1);
  // Drop at the dead link (no bypass installed), never a TTL/loop event.
  EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDroppedLinkDownNoBypass);
  std::set<topo::NodeId> seen(r.trace.begin(), r.trace.end());
  EXPECT_EQ(seen.size(), r.trace.size());
}

class ConsensusSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ConsensusSweep, RandomPartialConvergenceStates) {
  // Property: across random failures and random subsets of converged
  // routers, per-hop forwarding produces loops/dead-ends in some states;
  // source routes never revisit a node -- their only failure mode is
  // stopping at the dead link.
  auto topo = topo::make_geant();
  util::Rng rng(GetParam());

  const auto fibers = sim::pick_failure_fibers(topo, 1, GetParam());
  ASSERT_FALSE(fibers.empty());
  topo::Topology stale_view = topo;  // everyone's pre-failure view
  topo.set_duplex_up(fibers.front(), false);

  // Random subset of routers has reconverged onto the post-failure view.
  std::vector<isis::NextHopTable> tables;
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    tables.push_back(isis::compute_next_hops(
        rng.bernoulli(0.5) ? topo : stale_view, n));
  }

  std::size_t sr_loops = 0;
  for (topo::NodeId s = 0; s < topo.num_nodes(); ++s) {
    for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
      if (s == d) continue;
      // Per-hop: whatever happens, it must terminate with a verdict
      // (the walk itself detects loops rather than running forever).
      (void)isis::forward_per_hop(topo, tables, s, d);
      // Source route from a stale headend: walk it manually on ground
      // truth; it must never revisit a node.
      const auto route = te::shortest_path(stale_view, s, d);
      if (!route) continue;
      std::set<topo::NodeId> seen{s};
      topo::NodeId at = s;
      for (topo::LinkId l : route->links) {
        if (!topo.link(l).up) break;  // stops at the dead link
        at = topo.link(l).dst;
        if (!seen.insert(at).second) {
          ++sr_loops;
          break;
        }
      }
    }
  }
  EXPECT_EQ(sr_loops, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConsensusSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dsdn
