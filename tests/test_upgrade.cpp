#include <gtest/gtest.h>

#include "core/controller.hpp"
#include "core/upgrade.hpp"
#include "te/dijkstra.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn::core {
namespace {

using metrics::PriorityClass;

TEST(UpgradeTlv, RoundTrips) {
  NodeStateUpdate nsu;
  nsu.origin = 3;
  nsu.seq = 1;
  nsu.tlvs.push_back(make_algorithm_tlv(PathingAlgorithm::kShortestPath));
  EXPECT_EQ(validate_nsu(nsu), NsuValidity::kValid);
  EXPECT_EQ(parse_algorithm_tlv(nsu), PathingAlgorithm::kShortestPath);
}

TEST(UpgradeTlv, AbsentOrGarbledIsNullopt) {
  NodeStateUpdate none;
  EXPECT_FALSE(parse_algorithm_tlv(none).has_value());
  NodeStateUpdate garbled;
  garbled.tlvs.push_back({kAlgorithmTlvType, "xx"});  // wrong length
  EXPECT_FALSE(parse_algorithm_tlv(garbled).has_value());
  NodeStateUpdate bogus;
  bogus.tlvs.push_back({kAlgorithmTlvType, std::string(1, '\x7f')});
  EXPECT_FALSE(parse_algorithm_tlv(bogus).has_value());
  NodeStateUpdate other_type;
  other_type.tlvs.push_back({0x1234, std::string(1, '\x01')});
  EXPECT_FALSE(parse_algorithm_tlv(other_type).has_value());
}

TEST(UpgradeTlv, StateDbMapUsesFallbackForSilentRouters) {
  const auto topo = topo::make_ring(4);
  StateDb db(topo);
  NodeStateUpdate legacy;
  legacy.origin = 2;
  legacy.seq = 1;
  legacy.tlvs.push_back(make_algorithm_tlv(PathingAlgorithm::kShortestPath));
  db.apply(legacy);
  const auto map = algorithm_map_from_state(db);
  EXPECT_EQ(map[0], PathingAlgorithm::kMaxMinFairTe);  // fallback
  EXPECT_EQ(map[2], PathingAlgorithm::kShortestPath);
}

TEST(MixedSolver, AllTeMatchesStockSolver) {
  const auto topo = topo::make_geant();
  const auto tm = traffic::generate_gravity(topo);
  MixedAlgorithmSolver mixed(
      {}, [](topo::NodeId) { return PathingAlgorithm::kMaxMinFairTe; });
  const auto a = mixed.solve(topo, tm, nullptr);
  const auto b = te::Solver().solve(topo, tm);
  ASSERT_EQ(a.allocations.size(), b.allocations.size());
  for (std::size_t i = 0; i < a.allocations.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.allocations[i].allocated_gbps,
                     b.allocations[i].allocated_gbps);
  }
}

TEST(MixedSolver, LegacyRouterDemandsPinnedToShortestPath) {
  const auto topo = topo::make_geant();
  const auto tm = traffic::generate_gravity(topo).aggregated();
  const topo::NodeId legacy_router = 4;
  MixedAlgorithmSolver mixed({}, [&](topo::NodeId n) {
    return n == legacy_router ? PathingAlgorithm::kShortestPath
                              : PathingAlgorithm::kMaxMinFairTe;
  });
  const auto sol = mixed.solve(topo, tm, nullptr);
  for (const auto& a : sol.allocations) {
    if (a.demand.src != legacy_router) continue;
    ASSERT_EQ(a.paths.size(), 1u) << "legacy demand must be single-path";
    const auto sp = te::shortest_path(topo, a.demand.src, a.demand.dst);
    ASSERT_TRUE(sp.has_value());
    EXPECT_EQ(a.paths[0].path, *sp);
    EXPECT_DOUBLE_EQ(a.allocated_gbps, a.demand.rate_gbps);
  }
}

TEST(MixedSolver, TeTrafficAvoidsCapacityConsumedByLegacy) {
  // Two demands share a 10G bottleneck a->b; the legacy router's demand
  // is pinned there, so the TE demand must route around (or shrink).
  topo::Topology topo;
  const auto a = topo.add_node("a", "ma");
  const auto b = topo.add_node("b", "mb");
  const auto c = topo.add_node("c", "mc");
  const auto d = topo.add_node("d", "md");
  topo.add_duplex(a, b, 10, 1.0);   // shortest a->b
  topo.add_duplex(a, c, 10, 2.0);
  topo.add_duplex(c, b, 10, 2.0);
  topo.add_duplex(d, a, 10, 1.0);   // d's traffic enters via a
  traffic::TrafficMatrix tm;
  tm.add({d, b, PriorityClass::kHigh, 8.0});  // legacy (via a, then a->b)
  tm.add({a, b, PriorityClass::kHigh, 8.0});  // TE
  MixedAlgorithmSolver mixed({}, [&](topo::NodeId n) {
    return n == d ? PathingAlgorithm::kShortestPath
                  : PathingAlgorithm::kMaxMinFairTe;
  });
  const auto sol = mixed.solve(topo, tm, nullptr);
  // The TE demand found only 2G left on a->b; most must detour via c.
  const auto& te_alloc = sol.allocations[1];
  EXPECT_NEAR(te_alloc.allocated_gbps, 8.0, 0.1);
  double via_c = 0.0;
  for (const auto& wp : te_alloc.paths) {
    if (wp.path.node_sequence(topo) ==
        std::vector<topo::NodeId>({a, c, b})) {
      via_c += wp.weight;
    }
  }
  EXPECT_GT(via_c, 0.5);
}

TEST(MixedSolver, ConsensusAcrossMixedControllers) {
  // The rollout invariant: a legacy router's own shortest-path choice is
  // exactly what upgraded routers predict for it, so the union of
  // everyone's own rows is one coherent placement.
  const auto topo = topo::make_abilene();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.5;
  const auto tm = traffic::generate_gravity(topo, gp).aggregated();
  const topo::NodeId legacy_router = 7;
  auto algo_of = [&](topo::NodeId n) {
    return n == legacy_router ? PathingAlgorithm::kShortestPath
                              : PathingAlgorithm::kMaxMinFairTe;
  };
  MixedAlgorithmSolver upgraded({}, algo_of);
  const auto prediction = upgraded.solve(topo, tm, nullptr);
  // What the legacy router actually installs for itself:
  for (const auto& alloc : prediction.allocations) {
    if (alloc.demand.src != legacy_router || alloc.paths.empty()) continue;
    const auto own = te::shortest_path(topo, alloc.demand.src,
                                       alloc.demand.dst);
    ASSERT_TRUE(own.has_value());
    EXPECT_EQ(alloc.paths[0].path, *own);
  }
}

TEST(MixedSolver, PluggedIntoControllerViaSolveApi) {
  const auto topo = topo::make_ring(4);
  traffic::TrafficMatrix tm;
  tm.add({0, 2, PriorityClass::kHigh, 1.0});
  const auto prefixes = topo::assign_router_prefixes(topo);
  SimTelemetry telemetry(&topo, &tm, prefixes);

  ControllerConfig cc;
  cc.self = 0;
  Controller controller(cc, topo);
  controller.set_solve_api(std::make_unique<MixedAlgorithmSolver>(
      te::SolverOptions{},
      [](topo::NodeId n) {
        return n == 1 ? PathingAlgorithm::kShortestPath
                      : PathingAlgorithm::kMaxMinFairTe;
      }));
  controller.originate(telemetry);
  const auto result = controller.recompute();
  EXPECT_EQ(result.own_allocations, 1u);
  EXPECT_GT(result.encap.routes_installed, 0u);
}

}  // namespace
}  // namespace dsdn::core
