// Failure-injection tests for the §3.2 fault-tolerance story: malformed
// NSUs, stale replays, partitions with concurrent changes (database
// resync on adjacency-up), and multi-controller crash recovery.

#include <gtest/gtest.h>

#include "core/wire.hpp"
#include "sim/emulation.hpp"
#include "topo/builder.hpp"
#include "topo/synthetic.hpp"
#include "topo/zoo.hpp"
#include "traffic/gravity.hpp"

namespace dsdn {
namespace {

using metrics::PriorityClass;

// Two 4-rings bridged by a single fiber: cutting the bridge partitions
// the network into two islands.
topo::Topology bridged_rings() {
  topo::Topology t;
  for (int i = 0; i < 8; ++i) {
    t.add_node("r" + std::to_string(i), "m" + std::to_string(i));
  }
  // Ring A: 0-1-2-3, Ring B: 4-5-6-7.
  for (int base : {0, 4}) {
    for (int i = 0; i < 4; ++i) {
      t.add_duplex(static_cast<topo::NodeId>(base + i),
                   static_cast<topo::NodeId>(base + (i + 1) % 4), 100.0);
    }
  }
  t.add_duplex(1, 5, 100.0);  // the bridge
  return t;
}

traffic::TrafficMatrix cross_traffic() {
  traffic::TrafficMatrix tm;
  tm.add({0, 6, PriorityClass::kHigh, 1.0});
  tm.add({6, 0, PriorityClass::kHigh, 1.0});
  tm.add({2, 3, PriorityClass::kLow, 0.5});
  tm.add({4, 7, PriorityClass::kLow, 0.5});
  return tm;
}

TEST(FaultInjection, PartitionHealResyncsChangesMadeOnBothSides) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  wan.bootstrap();
  ASSERT_TRUE(wan.views_converged());

  const topo::LinkId bridge = wan.network().find_link(1, 5);
  ASSERT_NE(bridge, topo::kInvalidLink);
  const topo::LinkId in_a = wan.network().find_link(2, 3);
  const topo::LinkId in_b = wan.network().find_link(6, 7);

  // Partition, then change state on BOTH islands while they cannot hear
  // each other.
  wan.fail_fiber(bridge);
  EXPECT_FALSE(wan.views_converged());  // islands inevitably diverge
  wan.fail_fiber(in_a);
  wan.fail_fiber(in_b);

  // Heal the partition: adjacency-up resync must carry each island's
  // updates across, reconverging every view.
  wan.repair_fiber(bridge);
  EXPECT_TRUE(wan.views_converged());

  // And the merged view must know about both intra-island failures:
  // cross-island traffic routes around them.
  const auto r = wan.send_packet(0, wan.address_of(6));
  EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
  for (std::size_t i = 0; i + 1 < r.trace.size(); ++i) {
    const auto l = wan.network().find_link(r.trace[i], r.trace[i + 1]);
    ASSERT_NE(l, topo::kInvalidLink);
    EXPECT_TRUE(wan.network().link(l).up);
  }
}

TEST(FaultInjection, MalformedNsuRejectedWithoutStateDamage) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  wan.bootstrap();
  auto& victim = wan.mutable_controller(0);
  const auto digest_before = victim.state().digest();

  core::NodeStateUpdate evil;
  evil.origin = 3;
  evil.seq = 1u << 30;  // would supersede everything if accepted
  evil.links.push_back({2, 1, true, -100.0, 1, 0.001, 0});  // negative cap
  const auto onward = victim.handle_nsu(evil, topo::kInvalidLink);
  EXPECT_TRUE(onward.empty());  // not reflooded
  EXPECT_EQ(victim.state().digest(), digest_before);
  EXPECT_GT(victim.state().rejected_invalid(), 0u);
}

TEST(FaultInjection, StaleReplayIgnoredEverywhere) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  wan.bootstrap();
  // Capture node 3's current NSU, then replay it with an *older* seq.
  auto& victim = wan.mutable_controller(0);
  const core::NodeStateUpdate* current = victim.state().latest(3);
  ASSERT_NE(current, nullptr);
  core::NodeStateUpdate replay = *current;
  replay.seq = 0;
  replay.links.clear();  // an attacker-chosen different payload
  const auto digest_before = victim.state().digest();
  EXPECT_TRUE(victim.handle_nsu(replay, topo::kInvalidLink).empty());
  EXPECT_EQ(victim.state().digest(), digest_before);
}

TEST(FaultInjection, GarbledWireBytesNeverReachTheStateDb) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  wan.bootstrap();
  const core::NodeStateUpdate* nsu = wan.controller(0).state().latest(3);
  ASSERT_NE(nsu, nullptr);
  auto bytes = core::serialize_nsu(*nsu);
  util::Rng rng(0xBAD);
  std::size_t parsed_ok = 0;
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupt = bytes;
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corrupt.size()) - 1));
    corrupt[at] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
    const auto parsed = core::parse_nsu(corrupt);
    if (!parsed) continue;
    // Whatever still parses must clear the semantic validator before a
    // StateDb would accept it; count how often both layers pass.
    if (core::validate_nsu(*parsed) == core::NsuValidity::kValid)
      ++parsed_ok;
  }
  // Single-byte flips in float payloads legitimately survive (they are
  // just different numbers); structural corruption must not.
  EXPECT_LT(parsed_ok, 500u);
}

TEST(FaultInjection, ConcurrentCrashOfMultipleControllers) {
  auto topo = topo::make_geant();
  traffic::GravityParams gp;
  gp.pair_fraction = 0.3;
  auto tm = traffic::generate_gravity(topo, gp);
  sim::DsdnEmulation wan(topo, tm);
  wan.bootstrap();

  wan.crash_and_recover(3);
  wan.crash_and_recover(9);
  wan.crash_and_recover(15);
  EXPECT_TRUE(wan.views_converged());

  util::Rng rng(0xCC);
  for (int i = 0; i < 20; ++i) {
    const auto& d = rng.pick(wan.demands().demands());
    const auto r =
        wan.send_packet(d.src, wan.address_of(d.dst), d.priority);
    EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
  }
}

TEST(FaultyFlooding, ConvergesUnderFivePercentDropWithBoundedRetransmits) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  sim::LinkFaultProfile lossy;
  lossy.drop = 0.05;
  wan.enable_fault_injection(lossy, /*seed=*/0xF10D);
  wan.bootstrap();
  EXPECT_TRUE(wan.views_converged());

  const auto& fs = wan.flood_stats();
  EXPECT_GT(fs.retransmits, 0u);       // losses actually happened
  EXPECT_EQ(fs.gave_up, 0u);           // 5% never exhausts 5 retransmits here
  EXPECT_GT(wan.faulty_bus()->stats().dropped, 0u);

  // A failure event still converges and routes around under loss.
  const topo::LinkId in_a = wan.network().find_link(2, 3);
  wan.fail_fiber(in_a);
  EXPECT_TRUE(wan.views_converged());
  const auto r = wan.send_packet(0, wan.address_of(6));
  EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
}

TEST(FaultyFlooding, LossyRunsAreBitIdenticalUnderSameSeed) {
  sim::LinkFaultProfile chaos;
  chaos.drop = 0.08;
  chaos.duplicate = 0.10;
  chaos.corrupt = 0.05;
  chaos.reorder = 0.15;
  chaos.jitter_s = 0.003;

  auto run = [&](std::uint64_t seed) {
    sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
    wan.enable_fault_injection(chaos, seed);
    wan.bootstrap();
    wan.fail_fiber(wan.network().find_link(2, 3));
    std::vector<std::uint64_t> digests;
    for (topo::NodeId n = 0; n < 8; ++n)
      digests.push_back(wan.controller(n).state().digest());
    return std::make_tuple(digests, wan.messages_delivered(),
                           wan.flood_stats(), wan.faulty_bus()->stats(),
                           wan.sim_time());
  };

  const auto a = run(0x5EED);
  const auto b = run(0x5EED);
  EXPECT_EQ(std::get<0>(a), std::get<0>(b));
  EXPECT_EQ(std::get<1>(a), std::get<1>(b));
  EXPECT_TRUE(std::get<2>(a) == std::get<2>(b));
  EXPECT_TRUE(std::get<3>(a) == std::get<3>(b));
  EXPECT_DOUBLE_EQ(std::get<4>(a), std::get<4>(b));
}

TEST(FaultyFlooding, CorruptedCopiesAreRejectedYetViewsConverge) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  sim::LinkFaultProfile garbling;
  garbling.corrupt = 0.20;
  wan.enable_fault_injection(garbling, /*seed=*/0xC0);
  wan.bootstrap();
  EXPECT_TRUE(wan.views_converged());
  EXPECT_GT(wan.flood_stats().decode_errors, 0u);
  // Corrupted transfers look like losses to the sender and get retried.
  EXPECT_GT(wan.flood_stats().retransmits, 0u);
  const auto r = wan.send_packet(0, wan.address_of(6));
  EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
}

TEST(FaultyFlooding, DuplicatedAndReorderedCopiesAreIdempotent) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  sim::LinkFaultProfile messy;
  messy.duplicate = 0.30;
  messy.reorder = 0.30;
  wan.enable_fault_injection(messy, /*seed=*/0xD0B);
  wan.bootstrap();
  EXPECT_TRUE(wan.views_converged());
  EXPECT_GT(wan.faulty_bus()->stats().duplicated, 0u);
  EXPECT_GT(wan.faulty_bus()->stats().reordered, 0u);
  // Duplicates inflate deliveries but StateDb stale-rejection keeps every
  // view identical; traffic still routes.
  const auto r = wan.send_packet(6, wan.address_of(0));
  EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
}

TEST(FaultyFlooding, BlackholedLinkGivesUpAfterBoundedRetransmits) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  wan.enable_fault_injection(sim::LinkFaultProfile{}, /*seed=*/0xB1);
  sim::LinkFaultProfile blackhole;
  blackhole.drop = 1.0;
  const topo::LinkId bridge = wan.network().find_link(1, 5);
  ASSERT_NE(bridge, topo::kInvalidLink);
  wan.set_link_fault_profile(bridge, blackhole);

  // bootstrap() must terminate (retransmits are bounded) even though one
  // flooding direction never delivers, and the sender must account the
  // abandoned transfers.
  wan.bootstrap();
  EXPECT_GT(wan.flood_stats().gave_up, 0u);
  EXPECT_EQ(wan.flood_stats().retransmits,
            wan.flood_stats().gave_up * 5u);  // max_retransmits each
  // Island B is missing island-A state that only crosses 1->5.
  EXPECT_FALSE(wan.views_converged());
}

TEST(FaultInjection, CrashDuringPartitionRecoversAfterHeal) {
  sim::DsdnEmulation wan(bridged_rings(), cross_traffic());
  wan.bootstrap();
  const topo::LinkId bridge = wan.network().find_link(1, 5);
  wan.fail_fiber(bridge);
  // A controller crashes inside island B and recovers from an island-B
  // neighbor (its only reachable source of state).
  wan.crash_and_recover(6);
  wan.repair_fiber(bridge);
  EXPECT_TRUE(wan.views_converged());
  const auto r = wan.send_packet(6, wan.address_of(0));
  EXPECT_EQ(r.outcome, dataplane::ForwardOutcome::kDelivered);
}

}  // namespace
}  // namespace dsdn
