// Fuzz target for the NSU wire codec (core/wire). Properties enforced
// on every input, under ASan:
//   1. decode_nsu never reads out of bounds, crashes, or hangs;
//   2. decode failure always carries a non-kOk status inside the buffer;
//   3. anything that decodes re-serializes and re-decodes to the same
//      NSU (canonical round-trip), and survives validate_nsu;
//   4. every truncated prefix of a decodable input either decodes or
//      returns DecodeError -- never UB;
//   5. the coexistence TLV parsers (algorithm + segment stack) accept or
//      reject every decoded NSU's TLVs without UB, and anything they
//      accept is in range (algorithm enum value, stack depth 1-3, node
//      ids below the probe bound).
//
// Built by -DDSDN_FUZZ=ON: with Clang this links libFuzzer
// (-fsanitize=fuzzer); with GCC it links the deterministic standalone
// driver (standalone_driver.cpp), which replays the checked-in corpus
// plus seeded mutations -- same entry point either way.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <span>
#include <vector>

#include "core/upgrade.hpp"
#include "core/wire.hpp"

namespace {

using dsdn::core::DecodeStatus;

void check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "fuzz_wire: property violated: %s\n", what);
    std::abort();
  }
}

bool nsu_equivalent(const dsdn::core::NodeStateUpdate& a,
                    const dsdn::core::NodeStateUpdate& b) {
  // Structural equality via the canonical encoding.
  return dsdn::core::serialize_nsu(a) == dsdn::core::serialize_nsu(b);
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::uint8_t> bytes(data, size);
  const auto result = dsdn::core::decode_nsu(bytes);
  if (!result) {
    check(result.error.status != DecodeStatus::kOk,
          "failed decode must carry a status");
    check(result.error.offset <= size, "error offset inside the buffer");
    return 0;
  }

  // Round-trip: the decoded NSU's canonical encoding decodes to itself.
  (void)dsdn::core::validate_nsu(*result.nsu);

  // Coexistence TLVs: strict parsers over arbitrary decoded TLV bytes.
  if (const auto algo = dsdn::core::parse_algorithm_tlv(*result.nsu)) {
    const int v = static_cast<int>(*algo);
    check(v >= 0 && v <= 2, "parsed algorithm TLV carries a known value");
  }
  for (const auto& tlv : result.nsu->tlvs) {
    constexpr std::size_t kProbeNodes = 64;
    if (const auto stack =
            dsdn::core::parse_segment_stack_tlv(tlv, kProbeNodes)) {
      check(!stack->empty() && stack->size() <= 3,
            "accepted segment stack depth in [1,3]");
      for (const auto node : *stack)
        check(node < kProbeNodes, "accepted segment node id in range");
    }
  }
  const auto canonical = dsdn::core::serialize_nsu(*result.nsu);
  const auto again = dsdn::core::decode_nsu(canonical);
  check(static_cast<bool>(again), "canonical bytes must decode");
  check(nsu_equivalent(*result.nsu, *again.nsu), "round-trip stability");

  // Truncation: every strict prefix decodes or errors -- never crashes
  // or reads out of bounds. (A cut at a section boundary is a well-formed
  // shorter message -- TLV framing cannot detect that, delivery of whole
  // messages is gRPC's job -- so prefix-vs-original equality is asserted
  // only in test_wire on inputs crafted with non-empty trailing sections.
  // Swept fully only for small inputs; the sweep is quadratic.)
  if (size > 4096) return 0;
  for (std::size_t cut = 0; cut < size; ++cut) {
    const auto truncated = dsdn::core::decode_nsu(bytes.first(cut));
    if (truncated) {
      const auto reencoded = dsdn::core::serialize_nsu(*truncated.nsu);
      check(static_cast<bool>(dsdn::core::decode_nsu(reencoded)),
            "truncated decode must re-encode decodably");
    } else {
      check(truncated.error.status != DecodeStatus::kOk,
            "truncated prefix must carry a status");
    }
  }
  return 0;
}
