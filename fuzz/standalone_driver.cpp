// Deterministic corpus driver for fuzz targets when libFuzzer is
// unavailable (GCC builds). Mimics the libFuzzer CLI shape used by
// scripts/tier1.sh:
//
//   fuzz_wire [-max_total_time=SECONDS] [-runs=N] corpus_dir_or_file...
//
// Passes every corpus input to LLVMFuzzerTestOneInput, then spends the
// remaining budget on seeded deterministic mutations of the corpus
// (byte flips, truncations, splices, length-field tweaks). Exit 0 iff
// no property aborted the process.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/rng.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

namespace fs = std::filesystem;

std::vector<std::uint8_t> read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void run_one(const std::vector<std::uint8_t>& bytes) {
  LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
}

std::vector<std::uint8_t> mutate(const std::vector<std::uint8_t>& base,
                                 dsdn::util::Rng& rng) {
  auto out = base;
  switch (rng.uniform_int(0, 4)) {
    case 0:  // byte flips
      for (int f = 0, n = 1 + static_cast<int>(rng.uniform_int(0, 7));
           f < n && !out.empty(); ++f) {
        out[static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(out.size()) - 1))] =
            static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      break;
    case 1:  // truncate
      if (!out.empty()) {
        out.resize(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1)));
      }
      break;
    case 2:  // append garbage
      for (int i = 0, n = 1 + static_cast<int>(rng.uniform_int(0, 31));
           i < n; ++i) {
        out.push_back(static_cast<std::uint8_t>(rng.uniform_int(0, 255)));
      }
      break;
    case 3:  // stomp a 4-byte window (hits length/count fields)
      if (out.size() >= 4) {
        const auto at = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 4));
        for (int i = 0; i < 4; ++i)
          out[at + i] = static_cast<std::uint8_t>(rng.uniform_int(0, 255));
      }
      break;
    default:  // splice with itself
      if (!out.empty()) {
        const auto cut = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(out.size()) - 1));
        out.insert(out.end(), base.begin(),
                   base.begin() + static_cast<std::ptrdiff_t>(base.size() -
                                                              cut));
      }
      break;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  double max_seconds = 30.0;
  long long max_runs = -1;
  std::vector<std::vector<std::uint8_t>> corpus;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("-max_total_time=", 0) == 0) {
      max_seconds = std::atof(arg.c_str() + std::strlen("-max_total_time="));
    } else if (arg.rfind("-runs=", 0) == 0) {
      max_runs = std::atoll(arg.c_str() + std::strlen("-runs="));
    } else if (arg.rfind("-", 0) == 0) {
      std::fprintf(stderr, "ignoring unknown flag %s\n", arg.c_str());
    } else if (fs::is_directory(arg)) {
      std::vector<fs::path> files;
      for (const auto& e : fs::directory_iterator(arg)) {
        if (e.is_regular_file()) files.push_back(e.path());
      }
      std::sort(files.begin(), files.end());  // deterministic order
      for (const auto& f : files) corpus.push_back(read_file(f));
    } else if (fs::is_regular_file(arg)) {
      corpus.push_back(read_file(arg));
    } else {
      std::fprintf(stderr, "no such corpus path: %s\n", arg.c_str());
      return 2;
    }
  }
  if (corpus.empty()) {
    std::fprintf(stderr, "usage: %s [-max_total_time=S] [-runs=N] corpus...\n",
                 argv[0]);
    return 2;
  }

  // Pass 1: every corpus input verbatim.
  for (const auto& bytes : corpus) run_one(bytes);
  std::printf("corpus pass: %zu inputs ok\n", corpus.size());

  // Pass 2: seeded deterministic mutations until the time/run budget.
  dsdn::util::Rng rng(0xD5DF22ULL ^ corpus.size());
  const auto start = std::chrono::steady_clock::now();
  long long runs = 0;
  while (true) {
    if (max_runs >= 0 && runs >= max_runs) break;
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (max_runs < 0 && elapsed >= max_seconds) break;
    const auto& base = corpus[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(corpus.size()) - 1))];
    run_one(mutate(base, rng));
    ++runs;
  }
  std::printf("mutation pass: %lld runs ok\n", runs);
  return 0;
}
