// Regenerates the checked-in wire-codec fuzz corpus (tests/corpus/wire).
// Run from anywhere: gen_corpus <output_dir>. Seeds cover every section
// type, the forward-compat paths (unknown section, section trailer), and
// historically interesting malformations (truncation, bad counts,
// oversized length fields).

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/upgrade.hpp"
#include "core/wire.hpp"

using namespace dsdn;

namespace {

void write(const std::filesystem::path& dir, const std::string& name,
           const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(dir / name, std::ios::binary);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("  %-28s %zu bytes\n", name.c_str(), bytes.size());
}

void push_u16(std::vector<std::uint8_t>& b, std::uint16_t v) {
  b.push_back(static_cast<std::uint8_t>(v));
  b.push_back(static_cast<std::uint8_t>(v >> 8));
}

void push_u32(std::vector<std::uint8_t>& b, std::uint32_t v) {
  push_u16(b, static_cast<std::uint16_t>(v));
  push_u16(b, static_cast<std::uint16_t>(v >> 16));
}

core::NodeStateUpdate full_nsu() {
  core::NodeStateUpdate nsu;
  nsu.origin = 7;
  nsu.seq = 4242;
  nsu.links.push_back({1, 2, true, 400.0, 1.5, 0.004, 3});
  nsu.links.push_back({2, 3, false, 100.0, 2.0, 0.009, 0});
  nsu.links.push_back({9, 5, true, 800.0, 1.0, 0.001, 12});
  nsu.prefixes.push_back({topo::parse_ipv4("10.1.7.0"), 24});
  nsu.prefixes.push_back({topo::parse_ipv4("10.2.0.0"), 16});
  nsu.demands.push_back({2, metrics::PriorityClass::kHigh, 12.5});
  nsu.demands.push_back({3, metrics::PriorityClass::kLow, 0.25});
  nsu.tlvs.push_back(
      core::make_algorithm_tlv(core::PathingAlgorithm::kShortestPath));
  nsu.tlvs.push_back({0xFEED, "future-extension-bytes"});
  return nsu;
}

// An SR-fleet NSU: algorithm TLV value 2 plus a well-formed node-segment
// stack TLV (the rollout-audit encoding the decoders must accept).
core::NodeStateUpdate sr_nsu() {
  core::NodeStateUpdate nsu;
  nsu.origin = 4;
  nsu.seq = 77;
  nsu.links.push_back({4, 6, true, 200.0, 1.0, 0.003, 1});
  nsu.tlvs.push_back(
      core::make_algorithm_tlv(core::PathingAlgorithm::kSegmentRouting));
  nsu.tlvs.push_back(core::make_segment_stack_tlv({3, 9, 6}));
  return nsu;
}

// Hand-built segment-stack TLV payload (bypassing the checked encoder)
// so malformed stacks reach the parser through the full wire decode.
core::OpaqueTlv raw_segment_stack(std::initializer_list<std::uint8_t> bytes) {
  return {core::kSegmentStackTlvType,
          std::string(bytes.begin(), bytes.end())};
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <output_dir>\n", argv[0]);
    return 2;
  }
  const std::filesystem::path dir = argv[1];
  std::filesystem::create_directories(dir);
  std::printf("writing corpus to %s\n", dir.string().c_str());

  write(dir, "full.bin", core::serialize_nsu(full_nsu()));

  core::NodeStateUpdate minimal;
  minimal.origin = 1;
  minimal.seq = 1;
  write(dir, "minimal.bin", core::serialize_nsu(minimal));

  core::NodeStateUpdate links_only;
  links_only.origin = 3;
  links_only.seq = 9;
  for (std::uint32_t i = 0; i < 16; ++i) {
    links_only.links.push_back(
        {i, i + 1, (i % 3) != 0, 100.0 * i, 1.0, 0.001 * i,
         static_cast<std::uint16_t>(i)});
  }
  write(dir, "links_only.bin", core::serialize_nsu(links_only));

  // Unknown section appended (forward compat skip path).
  {
    auto bytes = core::serialize_nsu(full_nsu());
    push_u16(bytes, 0x7777);
    push_u32(bytes, 5);
    bytes.insert(bytes.end(), {0xDE, 0xAD, 0xBE, 0xEF, 0x01});
    write(dir, "unknown_section.bin", bytes);
  }

  // Known section with a newer-version trailer (skip-forward path).
  {
    std::vector<std::uint8_t> bytes;
    push_u32(bytes, core::kWireMagic);
    push_u16(bytes, core::kWireVersion);
    push_u32(bytes, 11);  // origin
    push_u32(bytes, 5);   // seq lo
    push_u32(bytes, 0);   // seq hi
    push_u16(bytes, core::kSectionPrefixes);
    push_u32(bytes, 4 + 5 + 3);  // count + one prefix + 3 trailer bytes
    push_u32(bytes, 1);
    push_u32(bytes, topo::parse_ipv4("10.9.0.0"));
    bytes.push_back(16);
    bytes.insert(bytes.end(), {0xAA, 0xBB, 0xCC});
    write(dir, "section_trailer.bin", bytes);
  }

  // Truncated mid-record (must yield DecodeError, never UB).
  {
    auto bytes = core::serialize_nsu(full_nsu());
    bytes.resize(bytes.size() / 2);
    write(dir, "truncated.bin", bytes);
  }

  // Count field inflated past the section window.
  {
    auto bytes = core::serialize_nsu(links_only);
    // Count sits right after magic+version+origin+seq+type+length = 24.
    bytes[24] = 0xFF;
    bytes[25] = 0xFF;
    write(dir, "bad_count.bin", bytes);
  }

  // Section length field inflated past the buffer.
  {
    auto bytes = core::serialize_nsu(minimal);
    bytes[20] = 0xFF;
    bytes[21] = 0xFF;
    write(dir, "bad_section_length.bin", bytes);
  }

  // SR coexistence seeds: the good encoding, then the malformations the
  // strict parser must reject (truncated stack, depth past 3, depth 0,
  // out-of-range middlepoint id, trailing junk).
  write(dir, "sr_full.bin", core::serialize_nsu(sr_nsu()));
  {
    core::NodeStateUpdate nsu = sr_nsu();
    nsu.tlvs.back() = raw_segment_stack({3, 0x03, 0x00, 0x09, 0x00});
    write(dir, "sr_stack_truncated.bin", core::serialize_nsu(nsu));
  }
  {
    core::NodeStateUpdate nsu = sr_nsu();
    nsu.tlvs.back() = raw_segment_stack(
        {4, 1, 0, 2, 0, 3, 0, 4, 0});
    write(dir, "sr_stack_too_deep.bin", core::serialize_nsu(nsu));
  }
  {
    core::NodeStateUpdate nsu = sr_nsu();
    nsu.tlvs.back() = raw_segment_stack({0});
    write(dir, "sr_stack_empty.bin", core::serialize_nsu(nsu));
  }
  {
    core::NodeStateUpdate nsu = sr_nsu();
    // Node id 0xFFFF: out of range for any swarm topology.
    nsu.tlvs.back() = raw_segment_stack({1, 0xFF, 0xFF});
    write(dir, "sr_stack_bad_node.bin", core::serialize_nsu(nsu));
  }
  {
    core::NodeStateUpdate nsu = sr_nsu();
    nsu.tlvs.back() = raw_segment_stack({1, 0x03, 0x00, 0xAA});
    write(dir, "sr_stack_trailing.bin", core::serialize_nsu(nsu));
  }
  {
    // Algorithm TLV with an unknown future value (3): parse must yield
    // nullopt, not UB -- the fallback path of mixed fleets.
    core::NodeStateUpdate nsu = sr_nsu();
    nsu.tlvs.front() = {core::kAlgorithmTlvType, std::string(1, '\x03')};
    write(dir, "sr_algorithm_future.bin", core::serialize_nsu(nsu));
  }

  write(dir, "empty.bin", {});
  write(dir, "garbage.bin",
        {0x4E, 0x44, 0x53, 0x44, 0x01, 0x00, 0x6B, 0x6B, 0x6B, 0x6B, 0x6B,
         0x6B, 0x6B, 0x6B, 0x6B, 0x6B, 0x6B, 0x6B, 0x6B});
  return 0;
}
