#include "util/rng.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace dsdn::util {

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

Rng Rng::split() {
  ++split_counter_;
  return Rng(splitmix64(seed_ ^ splitmix64(split_counter_)));
}

Rng Rng::split(std::uint64_t stream_index) const {
  return Rng(splitmix64(seed_ ^ splitmix64(stream_index + 0x1234567ULL)));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("uniform_int: lo > hi");
  std::uniform_int_distribution<std::int64_t> d(lo, hi);
  return d(engine_);
}

double Rng::uniform(double lo, double hi) {
  std::uniform_real_distribution<double> d(lo, hi);
  return d(engine_);
}

bool Rng::bernoulli(double p) {
  std::bernoulli_distribution d(std::clamp(p, 0.0, 1.0));
  return d(engine_);
}

double Rng::exponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("exponential: mean <= 0");
  std::exponential_distribution<double> d(1.0 / mean);
  return d(engine_);
}

double Rng::lognormal_median(double median, double sigma) {
  if (median <= 0) throw std::invalid_argument("lognormal: median <= 0");
  std::lognormal_distribution<double> d(std::log(median), sigma);
  return d(engine_);
}

double Rng::normal(double mean, double stddev) {
  std::normal_distribution<double> d(mean, stddev);
  return d(engine_);
}

double Rng::pareto(double x_m, double alpha) {
  if (x_m <= 0 || alpha <= 0) throw std::invalid_argument("pareto: bad params");
  const double u = uniform(std::numeric_limits<double>::min(), 1.0);
  return x_m / std::pow(u, 1.0 / alpha);
}

int Rng::poisson(double mean) {
  if (mean < 0) throw std::invalid_argument("poisson: mean < 0");
  if (mean == 0) return 0;
  std::poisson_distribution<int> d(mean);
  return d(engine_);
}

std::size_t Rng::weighted_pick(std::span<const double> weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  if (total <= 0) throw std::invalid_argument("weighted_pick: no positive weight");
  double target = uniform(0.0, total);
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace dsdn::util
