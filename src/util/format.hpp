#pragma once

// Small text-formatting helpers used by the benchmark harnesses to print
// paper-style tables without pulling in a formatting library.

#include <string>
#include <vector>

namespace dsdn::util {

// Formats seconds with an adaptive unit (us / ms / s) for readability.
std::string format_duration(double seconds);

// Fixed-width, right-aligned cell.
std::string pad_left(const std::string& s, std::size_t width);
std::string pad_right(const std::string& s, std::size_t width);

// Formats a double with the given number of decimals.
std::string format_double(double v, int decimals = 2);

// Renders an aligned ASCII table. All rows must have the same arity as
// the header.
std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows);

}  // namespace dsdn::util
