#include "util/format.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace dsdn::util {

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
  return buf;
}

std::string format_duration(double seconds) {
  if (!std::isfinite(seconds)) return "inf";
  const double abs = std::fabs(seconds);
  if (abs < 1e-3) return format_double(seconds * 1e6, 1) + " us";
  if (abs < 1.0) return format_double(seconds * 1e3, 2) + " ms";
  return format_double(seconds, 2) + " s";
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

std::string render_table(const std::vector<std::string>& header,
                         const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(header.size());
  for (std::size_t c = 0; c < header.size(); ++c) widths[c] = header[c].size();
  for (const auto& row : rows) {
    if (row.size() != header.size())
      throw std::invalid_argument("render_table: row arity mismatch");
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "| " : " | ") << pad_right(row[c], widths[c]);
    }
    out << " |\n";
  };
  emit_row(header);
  for (std::size_t c = 0; c < header.size(); ++c) {
    out << (c == 0 ? "|-" : "-|-") << std::string(widths[c], '-');
  }
  out << "-|\n";
  for (const auto& row : rows) emit_row(row);
  return out.str();
}

}  // namespace dsdn::util
