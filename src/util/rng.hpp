#pragma once

// Deterministic, splittable random number generation.
//
// Every stochastic component in this repository (traffic generation,
// failure injection, latency sampling) draws from an explicitly-seeded
// Rng so that simulations are reproducible bit-for-bit. Rng::split()
// derives an independent child stream, letting parallel components
// consume randomness without perturbing each other.

#include <algorithm>
#include <cstdint>
#include <random>
#include <span>
#include <stdexcept>
#include <vector>

namespace dsdn::util {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : engine_(seed), seed_(seed) {}

  // Derives an independent stream. Children of distinct indices (or
  // successive calls) are decorrelated via splitmix64 of the parent seed.
  Rng split();
  Rng split(std::uint64_t stream_index) const;

  std::uint64_t seed() const { return seed_; }

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double uniform(double lo = 0.0, double hi = 1.0);

  bool bernoulli(double p);

  // Exponential with the given mean (not rate). Requires mean > 0.
  double exponential(double mean);

  // Lognormal parameterized by the *median* and the shape sigma of the
  // underlying normal, which is the natural way to read values off a
  // log-scaled CDF plot.
  double lognormal_median(double median, double sigma);

  double normal(double mean, double stddev);

  // Pareto with scale x_m > 0 and shape alpha > 0 (heavy tail for
  // alpha <= 2); used for programming-latency tails.
  double pareto(double x_m, double alpha);

  int poisson(double mean);

  // Picks an index in [0, weights.size()) proportionally to weights.
  // Requires at least one strictly positive weight.
  std::size_t weighted_pick(std::span<const double> weights);

  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("pick from empty vector");
    return items[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(items.size()) - 1))];
  }

  template <typename T>
  void shuffle(std::vector<T>& items) {
    std::shuffle(items.begin(), items.end(), engine_);
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uint64_t seed_;
  std::uint64_t split_counter_ = 0;
};

// splitmix64: the standard seed-scrambling finalizer.
std::uint64_t splitmix64(std::uint64_t x);

}  // namespace dsdn::util
