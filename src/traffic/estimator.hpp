#pragma once

// In-band demand measurement (§3.2): dSDN does not collect demand from an
// external service -- each router measures the traffic it actually
// forwards, aggregated by (egress router, priority class), and advertises
// the estimate in its NSUs.
//
// DemandEstimator models the measurement pipeline: per-epoch byte counts
// are folded into an exponentially weighted moving average, so the
// advertised demand tracks real traffic with bounded lag and smooths out
// bursts (TE should not chase noise). Entries that stop receiving
// traffic decay toward zero and are eventually dropped, keeping the NSU
// small.
//
// Two closed-loop correctness properties (the PR 9 estimator bugfixes):
//
//  - Admission uses the *projected steady state*, not the first EWMA
//    step. A key's first raw EWMA value is alpha * sample, so gating
//    admission on `alpha * sample >= floor` permanently excluded every
//    steady flow with `alpha * rate < floor <= rate` even though its
//    steady-state estimate is the full rate.
//  - Estimates are bias-corrected during warm-up. A raw EWMA seeded at
//    alpha * sample undershoots a constant rate r by (1-alpha)^n after n
//    epochs (~1/alpha epochs of under-provisioning for every new flow in
//    the closed loop); estimate()/advertised() divide the raw value by
//    1 - (1-alpha)^n, which is exact for constant input from the very
//    first epoch.

#include <map>

#include "core/local_state.hpp"
#include "core/nsu.hpp"
#include "traffic/matrix.hpp"

namespace dsdn::traffic {

class DemandEstimator {
 public:
  struct Options {
    // EWMA weight of the newest epoch (0 < alpha <= 1).
    double alpha = 0.3;
    // Estimates below this rate are dropped from the advertisement.
    double floor_gbps = 1e-6;
  };

  explicit DemandEstimator(topo::NodeId self)
      : DemandEstimator(self, Options{}) {}
  DemandEstimator(topo::NodeId self, Options options);

  topo::NodeId self() const { return self_; }

  // Accumulates observed traffic toward `egress` during the current
  // epoch (Gbps averaged over the epoch; additive across calls).
  void observe(topo::NodeId egress, metrics::PriorityClass priority,
               double rate_gbps);

  // Closes the epoch: folds accumulated observations into the EWMA.
  // Keys with no observation this epoch decay toward zero.
  void roll_epoch();

  // Current smoothed estimates (bias-corrected), ready for an NSU.
  std::vector<core::DemandAdvert> advertised() const;

  // Convenience: the bias-corrected estimate for one key (0 when absent).
  double estimate(topo::NodeId egress, metrics::PriorityClass priority) const;

  std::size_t num_tracked() const { return ewma_.size(); }

 private:
  using Key = std::pair<topo::NodeId, int>;

  struct Entry {
    double ewma = 0.0;       // raw EWMA (uncorrected)
    std::uint32_t age = 0;   // epochs since admission (>= 1 once tracked)
  };

  double corrected(const Entry& e) const;

  topo::NodeId self_;
  Options options_;
  std::map<Key, Entry> ewma_;
  std::map<Key, double> epoch_accum_;
};

// TelemetrySource whose demand section comes from an estimator instead
// of ground truth -- what a production LocalState would wire to the
// forwarding counters.
class EstimatingTelemetry final : public core::TelemetrySource {
 public:
  EstimatingTelemetry(const topo::Topology* topo,
                      std::vector<topo::Prefix> router_prefixes,
                      const DemandEstimator* estimator);

  std::vector<core::LinkAdvert> read_links(topo::NodeId self) const override;
  std::vector<topo::Prefix> read_prefixes(topo::NodeId self) const override;
  std::vector<core::DemandAdvert> read_demands(
      topo::NodeId self) const override;

 private:
  const topo::Topology* topo_;
  std::vector<topo::Prefix> router_prefixes_;
  const DemandEstimator* estimator_;
};

}  // namespace dsdn::traffic
