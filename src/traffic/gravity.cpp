#include "traffic/gravity.hpp"

#include <cmath>
#include <stdexcept>

#include "te/dijkstra.hpp"

namespace dsdn::traffic {

double shortest_path_max_utilization(const topo::Topology& topo,
                                     const TrafficMatrix& tm) {
  std::vector<double> load(topo.num_links(), 0.0);
  // One Dijkstra per distinct source.
  std::vector<char> have_tree(topo.num_nodes(), 0);
  std::vector<std::vector<te::Path>> trees(topo.num_nodes());
  for (const Demand& d : tm.demands()) {
    if (!have_tree[d.src]) {
      trees[d.src] = te::shortest_path_tree(topo, d.src);
      have_tree[d.src] = 1;
    }
    const te::Path& p = trees[d.src][d.dst];
    for (topo::LinkId l : p.links) load[l] += d.rate_gbps;
  }
  double worst = 0.0;
  for (std::size_t l = 0; l < load.size(); ++l) {
    worst = std::max(
        worst, load[l] / topo.link(static_cast<topo::LinkId>(l)).capacity_gbps);
  }
  return worst;
}

TrafficMatrix generate_gravity(const topo::Topology& topo,
                               const GravityParams& params) {
  if (topo.num_nodes() < 2)
    throw std::invalid_argument("generate_gravity: need >= 2 nodes");
  util::Rng rng(params.seed);

  double weight_total = 0.0;
  for (const topo::Node& n : topo.nodes()) weight_total += n.gravity_weight;

  TrafficMatrix tm;
  for (topo::NodeId i = 0; i < topo.num_nodes(); ++i) {
    for (topo::NodeId j = 0; j < topo.num_nodes(); ++j) {
      if (i == j) continue;
      // Only generate traffic between distinct metros: intra-metro traffic
      // stays on the DC fabric, not the WAN.
      if (topo.node(i).metro == topo.node(j).metro) continue;
      if (params.pair_fraction < 1.0 && !rng.bernoulli(params.pair_fraction))
        continue;
      const double gravity = topo.node(i).gravity_weight *
                             topo.node(j).gravity_weight / weight_total;
      const double jitter = rng.lognormal_median(1.0, params.jitter_sigma);
      const double pair_rate = gravity * jitter;
      for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
        const double rate = pair_rate * params.class_share[c];
        if (rate <= 0.0) continue;
        tm.add(Demand{i, j, static_cast<metrics::PriorityClass>(c), rate});
      }
    }
  }
  if (tm.empty()) return tm;

  // Normalize: pin shortest-path max utilization to the target.
  const double raw_util = shortest_path_max_utilization(topo, tm);
  if (raw_util <= 0.0) return tm;
  return tm.scaled(params.target_max_utilization / raw_util);
}

}  // namespace dsdn::traffic
