#include "traffic/dynamics.hpp"

#include <cmath>
#include <numbers>
#include <set>
#include <stdexcept>
#include <tuple>

#include "util/rng.hpp"

namespace dsdn::traffic {
namespace {

constexpr std::uint64_t kPhaseSalt = 0xD1'52'4A'11ULL;
constexpr std::uint64_t kShiftSalt = 0x5EC'0'1A8ULL;
constexpr std::uint64_t kFlashSalt = 0xF1A5'8C'20'0DULL;
constexpr std::uint64_t kJitterSalt = 0x71'77'E2ULL;

// Hash of (seed, salt, x) mapped to [0, 1).
double hashed_unit(std::uint64_t seed, std::uint64_t salt, std::uint64_t x) {
  const std::uint64_t h = util::splitmix64(seed ^ salt ^ (x * 0x9E3779B97F4A7C15ULL));
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

DemandDynamics::DemandDynamics(TrafficMatrix base,
                               DemandDynamicsOptions options,
                               std::uint64_t seed)
    : base_(base.aggregated()), options_(options), seed_(seed) {
  if (options.diurnal_amplitude < 0.0 || options.diurnal_amplitude >= 1.0)
    throw std::invalid_argument("DemandDynamics: diurnal_amplitude in [0,1)");
  if (options.diurnal_amplitude > 0.0 && options.diurnal_period_epochs <= 0.0)
    throw std::invalid_argument("DemandDynamics: diurnal period <= 0");
  if (options.regional_max_shift < 0.0 || options.regional_max_shift >= 1.0)
    throw std::invalid_argument("DemandDynamics: regional_max_shift in [0,1)");
  if (options.regional_max_shift > 0.0 && options.regional_horizon_epochs == 0)
    throw std::invalid_argument("DemandDynamics: regional horizon == 0");
  if (options.flash_prob_per_epoch < 0.0 || options.flash_prob_per_epoch > 1.0)
    throw std::invalid_argument("DemandDynamics: flash_prob in [0,1]");
  if (options.flash_prob_per_epoch > 0.0 && base_.empty())
    throw std::invalid_argument("DemandDynamics: flash crowds need a base");

  // Pre-draw flash-crowd events over the horizon. A single child stream
  // drawn in epoch order keeps the whole schedule a function of the
  // seed alone.
  if (options_.flash_prob_per_epoch > 0.0) {
    util::Rng rng(util::splitmix64(seed_ ^ kFlashSalt));
    double mean_rate = 0.0;
    std::set<std::tuple<topo::NodeId, topo::NodeId, int>> base_keys;
    std::set<topo::NodeId> nodes;
    for (const auto& d : base_.demands()) {
      mean_rate += d.rate_gbps;
      base_keys.insert({d.src, d.dst, static_cast<int>(d.priority)});
      nodes.insert(d.src);
      nodes.insert(d.dst);
    }
    mean_rate /= static_cast<double>(base_.size());
    const std::vector<topo::NodeId> node_list(nodes.begin(), nodes.end());

    for (std::uint64_t e = 0; e < options_.horizon_epochs; ++e) {
      if (!rng.bernoulli(options_.flash_prob_per_epoch)) continue;
      FlashEvent ev;
      ev.start_epoch = e;
      ev.ramp = options_.flash_ramp_epochs;
      ev.hold = options_.flash_hold_epochs;
      ev.decay = options_.flash_decay_epochs;
      const double peak = mean_rate * rng.lognormal_median(
                                          options_.flash_magnitude_median,
                                          options_.flash_magnitude_sigma);
      if (rng.bernoulli(options_.flash_new_flow_prob) &&
          node_list.size() >= 2) {
        // A brand-new flow: pick a (src, dst, class) key absent from the
        // base so the estimator's new-key admission path is exercised.
        ev.new_row = true;
        for (int attempt = 0; attempt < 16; ++attempt) {
          const topo::NodeId src = rng.pick(node_list);
          const topo::NodeId dst = rng.pick(node_list);
          const int pc = static_cast<int>(
              rng.uniform_int(0, metrics::kNumPriorityClasses - 1));
          if (src == dst) continue;
          if (base_keys.contains({src, dst, pc})) continue;
          ev.row = Demand{src, dst, static_cast<metrics::PriorityClass>(pc),
                          peak};
          break;
        }
        if (ev.row.src == topo::kInvalidNode) ev.new_row = false;
      }
      if (!ev.new_row) {
        ev.row = rng.pick(base_.demands());
        ev.row.rate_gbps = peak;
      }
      flash_events_.push_back(ev);
    }
  }
}

double DemandDynamics::drift_factor(topo::NodeId src,
                                    std::uint64_t epoch) const {
  double f = 1.0;
  if (options_.diurnal_amplitude > 0.0) {
    const double phase = hashed_unit(seed_, kPhaseSalt, src);
    f *= 1.0 + options_.diurnal_amplitude *
                   std::sin(2.0 * std::numbers::pi *
                            (static_cast<double>(epoch) /
                                 options_.diurnal_period_epochs +
                             phase));
  }
  if (options_.regional_max_shift > 0.0) {
    const double dir =
        hashed_unit(seed_, kShiftSalt, src) < 0.5 ? -1.0 : 1.0;
    const double progress =
        std::min(1.0, static_cast<double>(epoch) /
                          static_cast<double>(
                              options_.regional_horizon_epochs));
    f *= 1.0 + dir * options_.regional_max_shift * progress;
  }
  return f;
}

double DemandDynamics::envelope(const FlashEvent& ev,
                                std::uint64_t epoch) const {
  if (epoch < ev.start_epoch) return 0.0;
  const std::uint64_t t = epoch - ev.start_epoch;
  if (t < ev.ramp)
    return static_cast<double>(t + 1) / static_cast<double>(ev.ramp);
  if (t < static_cast<std::uint64_t>(ev.ramp) + ev.hold) return 1.0;
  const std::uint64_t into_decay = t - ev.ramp - ev.hold;
  if (into_decay >= ev.decay) return 0.0;
  return 1.0 - static_cast<double>(into_decay + 1) /
                   static_cast<double>(ev.decay + 1);
}

TrafficMatrix DemandDynamics::matrix_at(std::uint64_t epoch) const {
  std::vector<Demand> rows = base_.demands();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    double f = drift_factor(rows[i].src, epoch);
    if (options_.jitter_sigma > 0.0) {
      util::Rng jr(util::splitmix64(
          seed_ ^ kJitterSalt ^
          util::splitmix64(epoch * 0x2545F4914F6CDD1DULL + i)));
      f *= jr.lognormal_median(1.0, options_.jitter_sigma);
    }
    rows[i].rate_gbps *= std::max(0.0, f);
  }
  for (const auto& ev : flash_events_) {
    const double env = envelope(ev, epoch);
    if (env <= 0.0) continue;
    Demand d = ev.row;
    d.rate_gbps *= env;
    rows.push_back(d);
  }
  return TrafficMatrix(std::move(rows)).aggregated();
}

}  // namespace dsdn::traffic
