#pragma once

// Gravity-model traffic generation [52], as used by the paper for the
// external Fig 15 topologies and by us for the synthetic B4/B2 stand-ins.
//
// The demand between routers i and j is proportional to
// w_i * w_j / sum, where w is the node's gravity weight; the whole matrix
// is then normalized so that the network's maximum-utilized link sits at
// `target_max_utilization` when all demand follows IGP shortest paths --
// a simple, reproducible way to pin "how loaded" a scenario is.

#include "traffic/matrix.hpp"
#include "util/rng.hpp"

namespace dsdn::traffic {

struct GravityParams {
  // Fraction of router pairs that exchange traffic (sparsifies the matrix
  // for big topologies; 1.0 = all pairs).
  double pair_fraction = 1.0;
  // Per-class share of each pair's demand, highest class first. Must sum
  // to ~1. Defaults mirror a production-like mix: little strict-priority
  // traffic, lots of best effort.
  double class_share[metrics::kNumPriorityClasses] = {0.2, 0.3, 0.5};
  // Normalization target: max link utilization under shortest-path
  // placement of the full matrix.
  double target_max_utilization = 0.6;
  // Lognormal jitter applied per pair so the matrix isn't perfectly
  // smooth (sigma of the underlying normal).
  double jitter_sigma = 0.35;
  std::uint64_t seed = 42;
};

TrafficMatrix generate_gravity(const topo::Topology& topo,
                               const GravityParams& params = {});

// Max link utilization if `tm` were placed on IGP shortest paths (ties
// broken deterministically). Exposed for tests and normalization.
double shortest_path_max_utilization(const topo::Topology& topo,
                                     const TrafficMatrix& tm);

}  // namespace dsdn::traffic
