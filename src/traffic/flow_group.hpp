#pragma once

// Flow groups for SLO accounting (§5.2): flows are grouped by (priority
// class, source metro, destination metro). Each demand belongs to exactly
// one group; a group "violates its SLO" when more than 5% of its flow
// volume loses traffic beyond the class threshold.

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "traffic/matrix.hpp"

namespace dsdn::traffic {

struct FlowGroupKey {
  metrics::PriorityClass priority = metrics::PriorityClass::kHigh;
  std::string src_metro;
  std::string dst_metro;

  auto operator<=>(const FlowGroupKey&) const = default;
};

struct FlowGroup {
  FlowGroupKey key;
  // Indices into the TrafficMatrix's demand vector.
  std::vector<std::size_t> demand_indices;
  double total_rate_gbps = 0.0;
};

// Partitions the matrix into flow groups.
std::vector<FlowGroup> group_flows(const topo::Topology& topo,
                                   const TrafficMatrix& tm);

// Groups restricted to one priority class.
std::vector<FlowGroup> group_flows_of_class(const topo::Topology& topo,
                                            const TrafficMatrix& tm,
                                            metrics::PriorityClass c);

}  // namespace dsdn::traffic
