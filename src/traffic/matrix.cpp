#include "traffic/matrix.hpp"

#include <map>
#include <stdexcept>
#include <tuple>

namespace dsdn::traffic {

TrafficMatrix::TrafficMatrix(std::vector<Demand> demands)
    : demands_(std::move(demands)) {}

void TrafficMatrix::add(const Demand& d) {
  if (d.src == d.dst)
    throw std::invalid_argument("TrafficMatrix: src == dst");
  if (d.rate_gbps < 0)
    throw std::invalid_argument("TrafficMatrix: negative rate");
  demands_.push_back(d);
}

double TrafficMatrix::total_rate_gbps() const {
  double total = 0.0;
  for (const Demand& d : demands_) total += d.rate_gbps;
  return total;
}

TrafficMatrix TrafficMatrix::scaled(double factor) const {
  if (factor < 0) throw std::invalid_argument("scaled: negative factor");
  TrafficMatrix out;
  out.demands_.reserve(demands_.size());
  for (Demand d : demands_) {
    d.rate_gbps *= factor;
    out.demands_.push_back(d);
  }
  return out;
}

void TrafficMatrix::scale_rate(topo::NodeId src, double factor) {
  if (factor < 0) throw std::invalid_argument("scale_rate: negative factor");
  for (Demand& d : demands_) {
    if (src == topo::kInvalidNode || d.src == src) d.rate_gbps *= factor;
  }
}

std::vector<Demand> TrafficMatrix::from(topo::NodeId src) const {
  std::vector<Demand> out;
  for (const Demand& d : demands_) {
    if (d.src == src) out.push_back(d);
  }
  return out;
}

TrafficMatrix TrafficMatrix::aggregated() const {
  std::map<std::tuple<topo::NodeId, topo::NodeId, int>, double> agg;
  for (const Demand& d : demands_) {
    agg[{d.src, d.dst, static_cast<int>(d.priority)}] += d.rate_gbps;
  }
  TrafficMatrix out;
  for (const auto& [key, rate] : agg) {
    out.demands_.push_back(Demand{
        std::get<0>(key), std::get<1>(key),
        static_cast<metrics::PriorityClass>(std::get<2>(key)), rate});
  }
  return out;
}

}  // namespace dsdn::traffic
