#include "traffic/flow_group.hpp"

namespace dsdn::traffic {

std::vector<FlowGroup> group_flows(const topo::Topology& topo,
                                   const TrafficMatrix& tm) {
  std::map<FlowGroupKey, FlowGroup> groups;
  const auto& demands = tm.demands();
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Demand& d = demands[i];
    FlowGroupKey key{d.priority, topo.node(d.src).metro,
                     topo.node(d.dst).metro};
    FlowGroup& g = groups[key];
    g.key = key;
    g.demand_indices.push_back(i);
    g.total_rate_gbps += d.rate_gbps;
  }
  std::vector<FlowGroup> out;
  out.reserve(groups.size());
  for (auto& [key, g] : groups) out.push_back(std::move(g));
  return out;
}

std::vector<FlowGroup> group_flows_of_class(const topo::Topology& topo,
                                            const TrafficMatrix& tm,
                                            metrics::PriorityClass c) {
  std::vector<FlowGroup> out;
  for (FlowGroup& g : group_flows(topo, tm)) {
    if (g.key.priority == c) out.push_back(std::move(g));
  }
  return out;
}

}  // namespace dsdn::traffic
