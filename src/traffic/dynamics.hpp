#pragma once

// Demand dynamics for closed-loop online TE ("Near-optimal Online
// Traffic Engineering" direction): the oracle traffic matrix evolves
// epoch by epoch while controllers only ever see what their in-band
// DemandEstimator advertises.
//
// DemandDynamics composes three drift processes over a base matrix:
//
//  - Diurnal cycle: per-origin sinusoid with a hashed phase, so regions
//    peak at different times of day (a WAN spans time zones).
//  - Regional shift: a secular ramp that grows some origins and shrinks
//    others over the horizon -- the slow capacity-planning drift TE has
//    to keep absorbing.
//  - Flash crowds: pre-drawn transient events with a ramp/hold/decay
//    envelope that either multiply an existing row or create a brand-new
//    (src, dst, class) row, exercising estimator admission from zero.
//
// matrix_at(epoch) is a pure function of (base, options, seed, epoch):
// two instances built with the same inputs produce bit-identical
// matrices for every epoch (property-tested), so scenario replays and
// the PR 5 churn schedule compose deterministically with demand drift.

#include <cstdint>
#include <vector>

#include "traffic/matrix.hpp"

namespace dsdn::traffic {

struct DemandDynamicsOptions {
  // Diurnal sinusoid: factor 1 + A * sin(2*pi*(epoch/period + phase(src)))
  // per origin. 0 disables; must stay in [0, 1).
  double diurnal_amplitude = 0.0;
  double diurnal_period_epochs = 96.0;

  // Regional shift: origins ramp linearly to (1 +/- max_shift) over
  // `regional_horizon_epochs`, direction hashed per origin. 0 disables;
  // must stay in [0, 1).
  double regional_max_shift = 0.0;
  std::uint32_t regional_horizon_epochs = 256;

  // Flash crowds: per-epoch Bernoulli draw; peak adds
  // lognormal(median, sigma) * mean base row rate on top of the target
  // row, ramping up/holding/decaying linearly.
  double flash_prob_per_epoch = 0.0;
  double flash_magnitude_median = 3.0;
  double flash_magnitude_sigma = 0.5;
  std::uint32_t flash_ramp_epochs = 3;
  std::uint32_t flash_hold_epochs = 8;
  std::uint32_t flash_decay_epochs = 12;
  // Probability a flash targets a brand-new (src, dst, class) row not in
  // the base matrix instead of boosting an existing one.
  double flash_new_flow_prob = 0.25;

  // Per-(row, epoch) multiplicative lognormal noise. 0 disables.
  double jitter_sigma = 0.0;

  // Flash events are pre-drawn for start epochs in [0, horizon_epochs).
  std::uint32_t horizon_epochs = 512;
};

class DemandDynamics {
 public:
  struct FlashEvent {
    std::uint64_t start_epoch = 0;
    std::uint32_t ramp = 0, hold = 0, decay = 0;
    Demand row;        // rate_gbps is the *peak added* rate
    bool new_row = false;  // row absent from the base matrix
  };

  // `base` is aggregated on construction (duplicate keys merged).
  DemandDynamics(TrafficMatrix base, DemandDynamicsOptions options,
                 std::uint64_t seed);

  // The oracle matrix at `epoch`. Pure: same (base, options, seed,
  // epoch) always yields bit-identical output.
  TrafficMatrix matrix_at(std::uint64_t epoch) const;

  const TrafficMatrix& base() const { return base_; }
  const std::vector<FlashEvent>& flash_events() const {
    return flash_events_;
  }
  std::uint64_t seed() const { return seed_; }

 private:
  double drift_factor(topo::NodeId src, std::uint64_t epoch) const;
  double envelope(const FlashEvent& ev, std::uint64_t epoch) const;

  TrafficMatrix base_;
  DemandDynamicsOptions options_;
  std::uint64_t seed_;
  std::vector<FlashEvent> flash_events_;
};

}  // namespace dsdn::traffic
