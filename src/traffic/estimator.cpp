#include "traffic/estimator.hpp"

#include <cmath>
#include <stdexcept>

namespace dsdn::traffic {

DemandEstimator::DemandEstimator(topo::NodeId self, Options options)
    : self_(self), options_(options) {
  if (options.alpha <= 0.0 || options.alpha > 1.0)
    throw std::invalid_argument("DemandEstimator: alpha out of (0,1]");
}

void DemandEstimator::observe(topo::NodeId egress,
                              metrics::PriorityClass priority,
                              double rate_gbps) {
  if (egress == self_)
    throw std::invalid_argument("observe: egress == self");
  if (rate_gbps < 0) throw std::invalid_argument("observe: negative rate");
  epoch_accum_[{egress, static_cast<int>(priority)}] += rate_gbps;
}

double DemandEstimator::corrected(const Entry& e) const {
  // Warm-up bias correction: a raw EWMA seeded at alpha * sample carries
  // an implicit zero prior with weight (1-alpha)^age; dividing by the
  // observed mass 1 - (1-alpha)^age removes it (exact for constant input).
  const double mass = 1.0 - std::pow(1.0 - options_.alpha,
                                     static_cast<double>(e.age));
  return e.ewma / mass;
}

void DemandEstimator::roll_epoch() {
  // Update every tracked key; unobserved keys decay toward zero. The
  // drop rule applies to the bias-corrected estimate so that warm-up
  // undershoot cannot evict a flow the steady state would keep.
  for (auto it = ewma_.begin(); it != ewma_.end();) {
    const auto obs = epoch_accum_.find(it->first);
    const double sample = obs == epoch_accum_.end() ? 0.0 : obs->second;
    it->second.ewma = (1.0 - options_.alpha) * it->second.ewma +
                      options_.alpha * sample;
    ++it->second.age;
    if (corrected(it->second) < options_.floor_gbps) {
      it = ewma_.erase(it);
    } else {
      ++it;
    }
  }
  // Brand-new keys: admit on the *projected steady state* (the sample
  // itself -- for a constant flow the EWMA converges to the full rate),
  // not on the first EWMA step alpha * sample, which would permanently
  // exclude any steady flow with alpha * rate < floor <= rate.
  for (const auto& [key, sample] : epoch_accum_) {
    if (!ewma_.contains(key) && sample >= options_.floor_gbps) {
      ewma_[key] = Entry{options_.alpha * sample, 1};
    }
  }
  epoch_accum_.clear();
}

std::vector<core::DemandAdvert> DemandEstimator::advertised() const {
  std::vector<core::DemandAdvert> out;
  out.reserve(ewma_.size());
  for (const auto& [key, entry] : ewma_) {
    out.push_back(core::DemandAdvert{key.first,
                                     static_cast<metrics::PriorityClass>(
                                         key.second),
                                     corrected(entry)});
  }
  return out;
}

double DemandEstimator::estimate(topo::NodeId egress,
                                 metrics::PriorityClass priority) const {
  const auto it = ewma_.find({egress, static_cast<int>(priority)});
  return it == ewma_.end() ? 0.0 : corrected(it->second);
}

EstimatingTelemetry::EstimatingTelemetry(
    const topo::Topology* topo, std::vector<topo::Prefix> router_prefixes,
    const DemandEstimator* estimator)
    : topo_(topo),
      router_prefixes_(std::move(router_prefixes)),
      estimator_(estimator) {}

std::vector<core::LinkAdvert> EstimatingTelemetry::read_links(
    topo::NodeId self) const {
  std::vector<core::LinkAdvert> out;
  for (topo::LinkId lid : topo_->node(self).out_links) {
    const topo::Link& l = topo_->link(lid);
    core::LinkAdvert la;
    la.link = lid;
    la.peer = l.dst;
    la.up = l.up;
    la.capacity_gbps = l.capacity_gbps;
    la.igp_metric = l.igp_metric;
    la.delay_s = l.delay_s;
    out.push_back(la);
  }
  return out;
}

std::vector<topo::Prefix> EstimatingTelemetry::read_prefixes(
    topo::NodeId self) const {
  if (self < router_prefixes_.size()) return {router_prefixes_[self]};
  return {};
}

std::vector<core::DemandAdvert> EstimatingTelemetry::read_demands(
    topo::NodeId self) const {
  if (estimator_->self() != self)
    throw std::logic_error("EstimatingTelemetry: estimator/router mismatch");
  return estimator_->advertised();
}

}  // namespace dsdn::traffic
