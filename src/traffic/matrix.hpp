#pragma once

// Traffic demands. dSDN measures demand in-band and aggregates it by
// (egress router, priority class) at each source (§3.2), so the canonical
// unit here is a Demand: (src router, dst router, class) -> rate.

#include <cstddef>
#include <vector>

#include "metrics/slo.hpp"
#include "topo/topology.hpp"

namespace dsdn::traffic {

struct Demand {
  topo::NodeId src = topo::kInvalidNode;
  topo::NodeId dst = topo::kInvalidNode;
  metrics::PriorityClass priority = metrics::PriorityClass::kHigh;
  double rate_gbps = 0.0;

  bool operator==(const Demand&) const = default;
};

class TrafficMatrix {
 public:
  TrafficMatrix() = default;
  explicit TrafficMatrix(std::vector<Demand> demands);

  void add(const Demand& d);

  std::size_t size() const { return demands_.size(); }
  bool empty() const { return demands_.empty(); }
  const std::vector<Demand>& demands() const { return demands_; }

  double total_rate_gbps() const;

  // Returns a copy with every rate multiplied by `factor` (Fig 14's demand
  // multiplier experiments).
  TrafficMatrix scaled(double factor) const;

  // In-place rescale of the rows originating at `src` -- or every row
  // when src == topo::kInvalidNode (demand surge/shift events in the
  // scenario harness).
  void scale_rate(topo::NodeId src, double factor);

  // Demands originating at `src`, i.e. the rows a headend places.
  std::vector<Demand> from(topo::NodeId src) const;

  // Merges duplicate (src, dst, class) rows by summing rates -- the
  // aggregation dSDN performs on in-band measured demand.
  TrafficMatrix aggregated() const;

 private:
  std::vector<Demand> demands_;
};

}  // namespace dsdn::traffic
