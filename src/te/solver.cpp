#include "te/solver.hpp"

#include <algorithm>
#include <chrono>
#include <map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "te/batch_solver.hpp"
#include "te/dijkstra.hpp"
#include "te/parallel_solver.hpp"

namespace dsdn::te {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ActiveDemand {
  std::size_t alloc_index;  // into Solution::allocations
  double remaining_gbps;
  double satisfied_below;  // freeze threshold (tolerance * original rate)
  // Per-round chosen path (empty = none found this round).
  Path round_path;
  // The min_residual the round path was searched with; a smaller
  // bottleneck at grant time means earlier demands drained it.
  double search_min_residual;
};

// te.solver.* counters cover every solve regardless of backend; the batch
// solver additionally records te.batch.* internals.
void record_solver_obs(const SolveStats& s) {
  auto& reg = obs::Registry::global();
  static obs::Counter& m_solves = reg.counter("te.solver.solves");
  static obs::Counter& m_rounds = reg.counter("te.solver.rounds");
  static obs::Counter& m_searches = reg.counter("te.solver.path_searches");
  static obs::Counter& m_frozen = reg.counter("te.solver.frozen_demands");
  static obs::Counter& m_frozen_np =
      reg.counter("te.solver.frozen_no_path");
  static obs::Counter& m_frozen_rc =
      reg.counter("te.solver.frozen_round_cap");
  static obs::Histogram& m_wall = reg.histogram("te.solver.wall_s");
  static obs::Histogram& m_search_t =
      reg.histogram("te.solver.path_search_s");
  static obs::Histogram& m_alloc_t = reg.histogram("te.solver.allocation_s");
  m_solves.inc();
  m_rounds.add(s.rounds);
  m_searches.add(s.path_searches);
  m_frozen.add(s.frozen_demands);
  m_frozen_np.add(s.frozen_no_path);
  m_frozen_rc.add(s.frozen_round_cap);
  m_wall.record(s.wall_time_s);
  m_search_t.record(s.path_search_time_s);
  m_alloc_t.record(s.allocation_time_s);
}

}  // namespace

Solution Solver::solve(const topo::Topology& topo,
                       const traffic::TrafficMatrix& tm, SolveStats* stats,
                       const std::vector<double>* residual_override) const {
  if (options_.backend == SolverBackend::kBatch) {
    SolveStats batch_stats;
    Solution solution =
        BatchSolver(options_).solve(topo, tm, &batch_stats, residual_override);
    record_solver_obs(batch_stats);
    if (stats) *stats = batch_stats;
    return solution;
  }

  DSDN_TRACE_SPAN("te.solve");
  SolveStats local_stats;

  Solution solution;
  solution.allocations.reserve(tm.size());
  for (const traffic::Demand& d : tm.demands()) {
    Allocation a;
    a.demand = d;
    solution.allocations.push_back(std::move(a));
  }

  std::vector<double> residual;
  if (residual_override) {
    residual = *residual_override;
  } else {
    residual.resize(topo.num_links());
    for (std::size_t l = 0; l < topo.num_links(); ++l)
      residual[l] = topo.link(static_cast<topo::LinkId>(l)).capacity_gbps;
  }
  // A down link contributes no capacity -- also when the caller seeded
  // residuals (an override computed before the link failed may carry
  // leftover headroom the allocator must never hand out).
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    if (!topo.link(static_cast<topo::LinkId>(l)).up) residual[l] = 0.0;
  }

  // The pool's workers start once -- here when solver-owned, or at the
  // caller's pool construction when shared across solves.
  ThreadPool local_pool(options_.pool ? 1 : options_.num_threads);
  const ThreadPool& pool = options_.pool ? *options_.pool : local_pool;

  // Clock starts after pool setup: wall_time_s measures the solve, not
  // thread spawning, so single-shot and pooled runs report comparably.
  const auto t_start = Clock::now();

  // Accumulates (path -> rate) per allocation; converted to weights at
  // the end.
  std::vector<std::map<std::vector<topo::LinkId>, double>> placed(
      solution.allocations.size());

  // Strict priority: satisfy higher classes before lower ones.
  for (int cls = 0; cls < metrics::kNumPriorityClasses; ++cls) {
    std::vector<ActiveDemand> active;
    for (std::size_t i = 0; i < solution.allocations.size(); ++i) {
      const auto& d = solution.allocations[i].demand;
      if (static_cast<int>(d.priority) == cls &&
          d.rate_gbps > options_.epsilon_gbps) {
        active.push_back(
            {i, d.rate_gbps,
             std::max(options_.epsilon_gbps,
                      options_.satisfied_tolerance * d.rate_gbps),
             {},
             0.0});
      }
    }

    std::size_t round = 0;
    while (!active.empty() && round < options_.max_rounds) {
      ++round;
      ++local_stats.rounds;

      // Quantum for this round: a fraction of the largest remaining
      // demand; geometric shrink gives log-round convergence while
      // approximating progressive filling.
      double max_remaining = 0.0;
      for (const ActiveDemand& ad : active)
        max_remaining = std::max(max_remaining, ad.remaining_gbps);
      const double quantum = detail::round_quantum(options_, max_remaining);

      // ---- Step 1: data-parallel path search ----
      DSDN_TRACE_SPAN("te.round");
      const auto t_search = Clock::now();
      {
        DSDN_TRACE_SPAN("te.path_search");
        pool.parallel_for(active.size(), [&](std::size_t i) {
          ActiveDemand& ad = active[i];
          const auto& d = solution.allocations[ad.alloc_index].demand;
          SpConstraints c;
          c.residual_gbps = &residual;
          // Require room for at least a sliver of this round's grant so
          // we don't select paths we cannot use.
          c.min_residual =
              detail::sliver_threshold(options_, quantum, ad.remaining_gbps);
          std::optional<Path> p =
              options_.cache
                  ? options_.cache->get(topo, d.src, d.dst, c)
                  : shortest_path(topo, d.src, d.dst, c);
          ad.round_path = p ? std::move(*p) : Path{};
          ad.search_min_residual = c.min_residual;
        });
      }
      local_stats.path_searches += active.size();
      local_stats.path_search_time_s += seconds_since(t_search);

      // ---- Step 2: serialized fair allocation ----
      DSDN_TRACE_SPAN("te.waterfill");
      const auto t_alloc = Clock::now();
      std::vector<ActiveDemand> next_active;
      next_active.reserve(active.size());
      for (ActiveDemand& ad : active) {
        Allocation& alloc = solution.allocations[ad.alloc_index];
        if (ad.round_path.empty()) {
          // No feasible path: freeze (possibly partially filled).
          ++local_stats.frozen_no_path;
          continue;
        }
        // Grant: at most the quantum, the remaining demand, and the
        // path's bottleneck residual.
        double bottleneck = std::numeric_limits<double>::infinity();
        for (topo::LinkId l : ad.round_path.links)
          bottleneck = std::min(bottleneck, residual[l]);
        // Earlier demands in this serialized loop may have drained the
        // path below the residual floor it was searched with. Granting
        // the sub-sliver remainder would leave the demand spinning on an
        // infeasible path until max_rounds; re-search against current
        // residuals instead, and freeze if nothing is left.
        if (bottleneck < ad.search_min_residual) {
          SpConstraints c;
          c.residual_gbps = &residual;
          c.min_residual = ad.search_min_residual;
          const auto& d = alloc.demand;
          std::optional<Path> p =
              options_.cache
                  ? options_.cache->get(topo, d.src, d.dst, c)
                  : shortest_path(topo, d.src, d.dst, c);
          ++local_stats.path_searches;
          if (!p) {
            ++local_stats.frozen_no_path;
            continue;
          }
          ad.round_path = std::move(*p);
          bottleneck = std::numeric_limits<double>::infinity();
          for (topo::LinkId l : ad.round_path.links)
            bottleneck = std::min(bottleneck, residual[l]);
        }
        double grant = std::min({quantum, ad.remaining_gbps, bottleneck});
        // Top off: when the remainder after this grant would fall under
        // the satisfaction tolerance and the path has room, finish the
        // demand exactly rather than leaving a sliver unserved.
        if (ad.remaining_gbps - grant <= ad.satisfied_below &&
            bottleneck >= ad.remaining_gbps) {
          grant = ad.remaining_gbps;
        }
        if (grant > options_.epsilon_gbps) {
          for (topo::LinkId l : ad.round_path.links) residual[l] -= grant;
          placed[ad.alloc_index][ad.round_path.links] += grant;
          alloc.allocated_gbps += grant;
          ad.remaining_gbps -= grant;
        }
        if (ad.remaining_gbps > ad.satisfied_below) {
          next_active.push_back(std::move(ad));
        }
      }
      active = std::move(next_active);
      local_stats.allocation_time_s += seconds_since(t_alloc);
    }
    // Demands still wanting capacity when the round cap fired: they are
    // frozen (possibly part-filled) without a feasibility verdict.
    // Account them so starvation is visible instead of silent.
    local_stats.frozen_round_cap += active.size();
  }
  local_stats.frozen_demands =
      local_stats.frozen_no_path + local_stats.frozen_round_cap;

  // Convert accumulated per-path rates into weighted paths.
  for (std::size_t i = 0; i < solution.allocations.size(); ++i) {
    Allocation& a = solution.allocations[i];
    if (a.allocated_gbps <= options_.epsilon_gbps) {
      a.allocated_gbps = 0.0;
      continue;
    }
    for (const auto& [links, rate] : placed[i]) {
      WeightedPath wp;
      wp.path.links = links;
      wp.weight = rate / a.allocated_gbps;
      a.paths.push_back(std::move(wp));
    }
  }

  const ThreadPool::Stats pool_stats = pool.stats();
  local_stats.pool_parallel_calls = pool_stats.parallel_calls;
  local_stats.pool_tasks = pool_stats.tasks_executed;
  local_stats.pool_imbalance = pool_stats.imbalance();

  local_stats.wall_time_s = seconds_since(t_start);
  record_solver_obs(local_stats);
  if (stats) *stats = local_stats;
  return solution;
}

}  // namespace dsdn::te
