#pragma once

// When should a controller re-run TE as demand estimates drift?
//
// "Near-optimal Online Traffic Engineering" frames the online problem:
// recomputing every epoch chases estimator noise and burns solver time;
// recomputing too rarely accumulates regret against the moving optimum.
// RecomputePolicy is the pluggable decision: every controller ticks its
// policy once per measurement epoch with its current (converged) demand
// view, and recomputes only when the policy fires.
//
// Fleet consistency (§3.1) rests on determinism: the policy's decision
// is a pure function of its options and the sequence of views it was
// shown. Because the emulation quiesces flooding before ticking, every
// controller sees the identical view sequence and fires on the same
// epochs -- identical views, identical solutions, no consensus round.
// Crash/restart barriers must reset the policy fleet-wide (alongside
// the warm-start TE reset) or the survivors' baselines would diverge
// from the restarted router's.

#include <cstdint>

#include "traffic/matrix.hpp"

namespace dsdn::te {

enum class RecomputeTrigger {
  kEvery,      // recompute on every demand epoch (the implicit old behavior)
  kPeriodic,   // every `period_epochs` epochs, drift-blind
  kThreshold,  // when demand drift vs. the last-solved view crosses a bar
  kHybrid,     // threshold, with `period_epochs` as a staleness cap
};

struct RecomputePolicyOptions {
  RecomputeTrigger kind = RecomputeTrigger::kEvery;
  // kPeriodic: the recompute period. kHybrid: max epochs without a
  // recompute regardless of drift.
  std::uint32_t period_epochs = 8;
  // kThreshold/kHybrid: recompute when
  //   sum |rate_now - rate_solved| / sum rate_solved >= drift_threshold
  // over the union of (src, dst, class) keys.
  double drift_threshold = 0.10;
};

class RecomputePolicy {
 public:
  explicit RecomputePolicy(RecomputePolicyOptions options);

  // One measurement epoch elapsed; `view` is this controller's current
  // converged demand view. Returns true when TE should run now.
  // Always true until the first note_recompute (something must be
  // programmed before there is anything to defer to).
  bool on_epoch(const traffic::TrafficMatrix& view);

  // TE ran: `solved_view` becomes the drift baseline.
  void note_recompute(const traffic::TrafficMatrix& solved_view);

  // Forget baseline and staleness (fleet-wide crash barrier): the next
  // on_epoch fires unconditionally, mirroring the warm-state TE reset.
  void reset();

  const RecomputePolicyOptions& options() const { return options_; }
  std::uint32_t epochs_since_recompute() const { return epochs_since_; }

  // L1 demand drift of `now` vs. `solved`, normalized by the solved
  // total (union of keys: appearing and vanishing rows both count).
  static double drift_fraction(const traffic::TrafficMatrix& solved,
                               const traffic::TrafficMatrix& now);

 private:
  RecomputePolicyOptions options_;
  traffic::TrafficMatrix solved_;
  bool has_baseline_ = false;
  std::uint32_t epochs_since_ = 0;
};

}  // namespace dsdn::te
