#include "te/segment_routing.hpp"

#include <algorithm>
#include <functional>
#include <queue>

namespace dsdn::te {

SrUnderlay SrUnderlay::build(const topo::Topology& topo) {
  SrUnderlay u;
  u.n_ = topo.num_nodes();
  u.dist_to_.assign(u.n_, std::vector<double>(u.n_, kInf));
  // One reverse Dijkstra per target over up links (in_links traversal)
  // gives dist(v, t) for every v in a single pass.
  using QueueEntry = std::pair<double, topo::NodeId>;
  for (topo::NodeId t = 0; t < u.n_; ++t) {
    std::vector<double>& dist = u.dist_to_[t];
    std::priority_queue<QueueEntry, std::vector<QueueEntry>,
                        std::greater<QueueEntry>>
        pq;
    dist[t] = 0.0;
    pq.push({0.0, t});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[v]) continue;
      for (topo::LinkId lid : topo.node(v).in_links) {
        const topo::Link& l = topo.link(lid);
        if (!l.up) continue;
        const double nd = d + l.igp_metric;
        if (nd < dist[l.src]) {
          dist[l.src] = nd;
          pq.push({nd, l.src});
        }
      }
    }
  }
  return u;
}

std::vector<topo::LinkId> SrUnderlay::ecmp_members(const topo::Topology& topo,
                                                   topo::NodeId u,
                                                   topo::NodeId t) const {
  std::vector<topo::LinkId> members;
  if (u == t) return members;
  const double du = dist(u, t);
  if (du >= kInf) return members;
  const double eps = sr_eps(du);
  for (topo::LinkId lid : topo.node(u).out_links) {
    const topo::Link& l = topo.link(lid);
    if (!l.up) continue;
    const double through = l.igp_metric + dist(l.dst, t);
    if (through <= du + eps) members.push_back(lid);
  }
  std::sort(members.begin(), members.end());
  return members;
}

std::vector<topo::NodeId> rank_middlepoints(const SrUnderlay& underlay,
                                            std::size_t k) {
  const std::size_t n = underlay.num_nodes();
  // score(v) = ordered pairs (s, t) whose shortest path can pass v.
  std::vector<std::uint64_t> score(n, 0);
  for (topo::NodeId s = 0; s < n; ++s) {
    for (topo::NodeId t = 0; t < n; ++t) {
      if (s == t) continue;
      const double dst = underlay.dist(s, t);
      if (dst >= SrUnderlay::kInf) continue;
      const double eps = sr_eps(dst);
      for (topo::NodeId v = 0; v < n; ++v) {
        if (v == s || v == t) continue;
        const double via = underlay.dist(s, v) + underlay.dist(v, t);
        if (via <= dst + eps) ++score[v];
      }
    }
  }
  std::vector<topo::NodeId> ranked(n);
  for (topo::NodeId v = 0; v < n; ++v) ranked[v] = v;
  std::sort(ranked.begin(), ranked.end(),
            [&](topo::NodeId a, topo::NodeId b) {
              if (score[a] != score[b]) return score[a] > score[b];
              return a < b;
            });
  if (ranked.size() > k) ranked.resize(k);
  return ranked;
}

std::vector<SegmentRoute> segment_route_candidates(
    const SrUnderlay& underlay, topo::NodeId src, topo::NodeId dst,
    const std::vector<topo::NodeId>& middlepoints, const SrOptions& opts) {
  std::vector<SegmentRoute> routes;
  if (src == dst) return routes;

  const auto leg = [&](topo::NodeId a, topo::NodeId b) {
    return underlay.dist(a, b);
  };
  if (underlay.reachable(src, dst)) {
    routes.push_back({{dst}, leg(src, dst)});
  }
  const auto usable = [&](topo::NodeId m) { return m != src && m != dst; };
  if (opts.max_segments >= 2) {
    const std::size_t pool =
        std::min(opts.num_middlepoints, middlepoints.size());
    for (std::size_t i = 0; i < pool; ++i) {
      const topo::NodeId m = middlepoints[i];
      if (!usable(m)) continue;
      const double c = leg(src, m) + leg(m, dst);
      if (c >= SrUnderlay::kInf) continue;
      routes.push_back({{m, dst}, c});
    }
  }
  if (opts.max_segments >= 3) {
    const std::size_t pool =
        std::min(opts.pair_middlepoints, middlepoints.size());
    for (std::size_t i = 0; i < pool; ++i) {
      for (std::size_t j = 0; j < pool; ++j) {
        if (i == j) continue;
        const topo::NodeId m1 = middlepoints[i];
        const topo::NodeId m2 = middlepoints[j];
        if (!usable(m1) || !usable(m2)) continue;
        const double c = leg(src, m1) + leg(m1, m2) + leg(m2, dst);
        if (c >= SrUnderlay::kInf) continue;
        routes.push_back({{m1, m2, dst}, c});
      }
    }
  }
  std::sort(routes.begin(), routes.end(),
            [](const SegmentRoute& a, const SegmentRoute& b) {
              if (a.cost != b.cost) return a.cost < b.cost;
              if (a.segments.size() != b.segments.size())
                return a.segments.size() < b.segments.size();
              return a.segments < b.segments;
            });
  if (routes.size() > opts.max_candidates) routes.resize(opts.max_candidates);
  return routes;
}

namespace {

struct SegPath {
  std::vector<topo::LinkId> links;
  double frac = 1.0;
};

// DFS over the ECMP DAG from s to t, members in link-id order, frac =
// product of per-node uniform splits; capped + renormalized.
std::vector<SegPath> enumerate_segment_paths(const topo::Topology& topo,
                                             const SrUnderlay& underlay,
                                             topo::NodeId s, topo::NodeId t,
                                             std::size_t cap) {
  std::vector<SegPath> paths;
  if (s == t) {
    paths.push_back({{}, 1.0});
    return paths;
  }
  std::vector<topo::LinkId> links;
  const std::function<void(topo::NodeId, double)> dfs =
      [&](topo::NodeId u, double frac) {
        if (paths.size() >= cap) return;
        if (u == t) {
          paths.push_back({links, frac});
          return;
        }
        const std::vector<topo::LinkId> members =
            underlay.ecmp_members(topo, u, t);
        if (members.empty()) return;  // partitioned mid-DFS view: dead end
        const double split = frac / static_cast<double>(members.size());
        for (topo::LinkId lid : members) {
          if (paths.size() >= cap) return;
          links.push_back(lid);
          dfs(topo.link(lid).dst, split);
          links.pop_back();
        }
      };
  dfs(s, 1.0);
  double total = 0.0;
  for (const SegPath& p : paths) total += p.frac;
  if (total > 0.0) {
    for (SegPath& p : paths) p.frac /= total;
  }
  return paths;
}

}  // namespace

std::vector<WeightedPath> expand_segment_route(
    const topo::Topology& topo, const SrUnderlay& underlay, topo::NodeId src,
    const std::vector<topo::NodeId>& segments, const SrOptions& opts) {
  // Per-segment enumeration, then a capped cross-product concatenation.
  std::vector<SegPath> combos = {{{}, 1.0}};
  topo::NodeId at = src;
  for (topo::NodeId target : segments) {
    const std::vector<SegPath> seg_paths = enumerate_segment_paths(
        topo, underlay, at, target, opts.max_paths_per_segment);
    if (seg_paths.empty()) return {};
    std::vector<SegPath> next;
    for (const SegPath& c : combos) {
      for (const SegPath& sp : seg_paths) {
        if (next.size() >= opts.max_expansions_per_route) break;
        SegPath joined;
        joined.links = c.links;
        joined.links.insert(joined.links.end(), sp.links.begin(),
                            sp.links.end());
        joined.frac = c.frac * sp.frac;
        next.push_back(std::move(joined));
      }
      if (next.size() >= opts.max_expansions_per_route) break;
    }
    combos = std::move(next);
    at = target;
  }

  // Drop concatenations that revisit a node -- Path feasibility (and the
  // dataplane hop bound) requires loop-freedom -- and renormalize.
  std::vector<WeightedPath> out;
  double total = 0.0;
  for (SegPath& c : combos) {
    bool loop_free = true;
    std::vector<topo::NodeId> seen = {src};
    for (topo::LinkId lid : c.links) {
      const topo::NodeId nxt = topo.link(lid).dst;
      if (std::find(seen.begin(), seen.end(), nxt) != seen.end()) {
        loop_free = false;
        break;
      }
      seen.push_back(nxt);
    }
    if (!loop_free || c.links.empty()) continue;
    WeightedPath wp;
    wp.path.links = std::move(c.links);
    wp.weight = c.frac;
    wp.segments = segments;
    total += c.frac;
    out.push_back(std::move(wp));
  }
  if (total <= 0.0) return {};
  for (WeightedPath& wp : out) wp.weight /= total;
  return out;
}

Solution SrSolver::solve(const topo::Topology& topo,
                         const traffic::TrafficMatrix& tm,
                         const std::vector<double>* residual_override) const {
  const auto& demands = tm.demands();
  Solution sol;
  sol.allocations.resize(demands.size());
  for (std::size_t i = 0; i < demands.size(); ++i)
    sol.allocations[i].demand = demands[i];

  std::vector<double> residual;
  if (residual_override) {
    residual = *residual_override;
  } else {
    residual.resize(topo.num_links());
    for (topo::LinkId l = 0; l < topo.num_links(); ++l)
      residual[l] = topo.link(l).capacity_gbps;
  }

  const SrUnderlay underlay = SrUnderlay::build(topo);
  const std::vector<topo::NodeId> middlepoints = rank_middlepoints(
      underlay, std::max(sr_.num_middlepoints, sr_.pair_middlepoints));

  // Per-candidate placement state: the ECMP expansions and the per-link
  // charge fraction they imply (sum of the fracs of expansions crossing
  // the link). Granting g Gbps deducts g*frac from each touched link, and
  // the same products become the output weights -- so conservation is
  // exact by construction.
  struct Candidate {
    std::vector<topo::NodeId> segments;
    std::vector<WeightedPath> expansions;       // frac in weight, sums to 1
    std::vector<std::pair<topo::LinkId, double>> link_frac;
    double mass = 0.0;  // Gbps granted to this candidate
  };
  struct DemandState {
    std::size_t index = 0;
    double rate = 0.0;
    double remaining = 0.0;
    bool active = false;
    std::vector<Candidate> candidates;
  };

  for (int cls = 0; cls < metrics::kNumPriorityClasses; ++cls) {
    std::vector<DemandState> states;
    for (std::size_t i = 0; i < demands.size(); ++i) {
      const traffic::Demand& d = demands[i];
      if (static_cast<int>(d.priority) != cls) continue;
      if (d.rate_gbps <= options_.epsilon_gbps) continue;
      DemandState st;
      st.index = i;
      st.rate = d.rate_gbps;
      st.remaining = d.rate_gbps;
      const std::vector<SegmentRoute> routes =
          segment_route_candidates(underlay, d.src, d.dst, middlepoints, sr_);
      for (const SegmentRoute& route : routes) {
        Candidate cand;
        cand.segments = route.segments;
        cand.expansions =
            expand_segment_route(topo, underlay, d.src, route.segments, sr_);
        if (cand.expansions.empty()) continue;
        std::vector<double> frac(topo.num_links(), 0.0);
        for (const WeightedPath& wp : cand.expansions) {
          for (topo::LinkId l : wp.path.links) frac[l] += wp.weight;
        }
        for (topo::LinkId l = 0; l < topo.num_links(); ++l) {
          if (frac[l] > 0.0) cand.link_frac.push_back({l, frac[l]});
        }
        st.candidates.push_back(std::move(cand));
      }
      st.active = !st.candidates.empty();
      states.push_back(std::move(st));
    }

    // Progressive filling, same round discipline as te::Solver.
    for (std::size_t round = 0; round < options_.max_rounds; ++round) {
      double max_remaining = 0.0;
      for (const DemandState& st : states) {
        if (st.active && st.remaining > max_remaining)
          max_remaining = st.remaining;
      }
      if (max_remaining <= options_.epsilon_gbps) break;
      const double quantum = detail::round_quantum(options_, max_remaining);
      bool progressed = false;
      for (DemandState& st : states) {
        if (!st.active) continue;
        const double sliver =
            detail::sliver_threshold(options_, quantum, st.remaining);
        Candidate* chosen = nullptr;
        double grant = 0.0;
        // First candidate (cost order) able to carry a meaningful sliver
        // of this round's quantum wins -- shortest-first, like the strict
        // solver's preferred-path step.
        for (Candidate& cand : st.candidates) {
          double g = std::min(quantum, st.remaining);
          for (const auto& [l, f] : cand.link_frac) {
            const double cap = residual[l] / f;
            if (cap < g) g = cap;
          }
          if (g > sliver) {
            chosen = &cand;
            grant = g;
            break;
          }
        }
        if (!chosen) {
          st.active = false;  // frozen: no capacity-feasible candidate
          continue;
        }
        for (const auto& [l, f] : chosen->link_frac) {
          residual[l] = std::max(0.0, residual[l] - grant * f);
        }
        chosen->mass += grant;
        st.remaining -= grant;
        progressed = true;
        if (st.remaining <= st.rate * options_.satisfied_tolerance)
          st.active = false;  // satisfied
      }
      if (!progressed) break;
    }

    for (DemandState& st : states) {
      Allocation& a = sol.allocations[st.index];
      double total = 0.0;
      for (const Candidate& cand : st.candidates) total += cand.mass;
      a.allocated_gbps = total;
      if (total <= options_.epsilon_gbps) {
        a.allocated_gbps = 0.0;
        continue;
      }
      for (const Candidate& cand : st.candidates) {
        if (cand.mass <= 0.0) continue;
        for (const WeightedPath& wp : cand.expansions) {
          WeightedPath placed = wp;
          placed.weight = cand.mass * wp.weight / total;
          a.paths.push_back(std::move(placed));
        }
      }
    }
  }
  return sol;
}

}  // namespace dsdn::te
