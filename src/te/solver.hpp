#pragma once

// The traffic-engineering solver shared by cSDN and dSDN (§3.2).
//
// Based on B4's TE [27]: an approximate max-min fair allocator that
// balances short paths against high utilization, with the paper's
// modification of removing per-service utility curves (demand is measured
// in-band and aggregated by (egress router, priority class)).
//
// Algorithm: strict priority across classes; within a class, progressive
// filling ("waterfill") in rounds. Each round every still-active demand
// (1) finds its current preferred path -- the shortest path with residual
// capacity, via Dijkstra or the PathCache -- this step is data-parallel
// across demands; then (2) a *serialized* allocation step grants each
// demand a fair increment along its path, updating residual capacity.
// Demands freeze when satisfied or when no capacity-feasible path remains
// (they may be partially allocated). Decreasing available capacity makes
// demands churn through more rounds, matching the paper's observation
// that TE runtime grows as allocation gets harder (§5.3).
//
// The serialized step (2) is what limits parallel speedup ("our current
// TE algorithm serializes on the final step in flow assignment", Fig 13).
//
// Determinism: the solver is a pure function of (topology, demands,
// options). Every dSDN controller running it on an identical NodeStateDB
// computes the identical Solution -- the consensus-free property.

#include <cstddef>

#include "te/path_cache.hpp"
#include "te/types.hpp"

namespace dsdn::te {

class ThreadPool;
class BatchSolverBackend;

// Which waterfill implementation Solver::solve runs. Both compute the
// same algorithm; without a PathCache they produce bit-identical
// Solutions (asserted in tests/test_batch_solver.cpp), so the backend is
// a pure performance choice and every router in a fleet may pick either.
enum class SolverBackend {
  // One heap-allocating Dijkstra per demand per round (the paper's
  // original shape; kept as the differential-testing reference).
  kLegacy,
  // Structure-of-arrays batch solver (te::BatchSolver): demands bucketed
  // by source, one multi-destination SSSP per bucket per round over flat
  // arrays, interned path IDs. The GATE direction (PAPERS.md).
  kBatch,
};

struct SolverOptions {
  // Waterfill implementation. Batch is the default: same results,
  // order-of-magnitude faster cold solves on large topologies.
  SolverBackend backend = SolverBackend::kBatch;
  // Optional accelerator backend for the batch solver's path-search
  // kernels. Null = the process-wide CPU backend. Ignored by kLegacy.
  BatchSolverBackend* batch_backend = nullptr;
  // Threads for the path-search step. 1 = fully serial.
  std::size_t num_threads = 1;
  // Optional externally owned thread pool, reused across solves so the
  // workers are spawned exactly once per process instead of once per
  // solve. When set it takes precedence over num_threads. May be null.
  ThreadPool* pool = nullptr;
  // Optional shortest-path cache (Fig 15 optimization). May be null.
  const PathCache* cache = nullptr;
  // Waterfill quantum: each round grants up to max_remaining/quantum_divisor
  // per demand; smaller quanta => closer to exact max-min, more rounds.
  double quantum_divisor = 8.0;
  // When > 0, overrides the adaptive quantum with a fixed per-round grant
  // (Gbps). With a fixed quantum, solver work scales with offered demand
  // -- the progressive-filling behavior behind Fig 14's linear growth.
  double quantum_gbps = 0.0;
  // A demand is considered satisfied once its unserved remainder drops
  // below this fraction of its original rate.
  double satisfied_tolerance = 1e-3;
  // Hard cap on waterfill rounds per class (safety valve).
  std::size_t max_rounds = 400;
  // Allocation below this is treated as zero (Gbps).
  double epsilon_gbps = 1e-9;
};

struct SolveStats {
  double wall_time_s = 0.0;
  double path_search_time_s = 0.0;  // parallelizable portion
  double allocation_time_s = 0.0;   // serialized portion
  std::size_t rounds = 0;
  std::size_t path_searches = 0;
  // Demands frozen before satisfaction, by cause. frozen_demands is the
  // total (kept for existing consumers); the split tells starvation
  // (no_path: the network genuinely ran out of residual capacity) apart
  // from under-convergence (round_cap: the max_rounds safety valve fired
  // with no feasibility verdict -- persistent non-zero values mean the
  // round cap is starving traffic).
  std::size_t frozen_demands = 0;
  std::size_t frozen_no_path = 0;
  std::size_t frozen_round_cap = 0;
  // Thread-pool scheduling counters, snapshotted at solve end (for a
  // solver-owned pool these cover exactly this solve; for an external
  // SolverOptions::pool they are the pool's lifetime totals).
  std::size_t pool_parallel_calls = 0;
  std::size_t pool_tasks = 0;
  double pool_imbalance = 1.0;  // max/mean per-worker busy time
};

class Solver {
 public:
  explicit Solver(SolverOptions options = {}) : options_(options) {}

  // Computes the full-network solution. `residual_override`, when
  // non-null, seeds residual capacities (defaults to link capacities);
  // used for what-if solves.
  Solution solve(const topo::Topology& topo,
                 const traffic::TrafficMatrix& tm,
                 SolveStats* stats = nullptr,
                 const std::vector<double>* residual_override = nullptr) const;

  const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

namespace detail {

// Round math shared by the legacy and batch solvers. Bit-parity between
// the two backends depends on both computing quantum and the sliver
// threshold with the exact same expressions, so they live here instead
// of being duplicated.

// Per-round grant quantum for a class whose largest remaining demand is
// max_remaining.
inline double round_quantum(const SolverOptions& options,
                            double max_remaining) {
  if (options.quantum_gbps > 0.0) return options.quantum_gbps;
  double quantum = max_remaining / options.quantum_divisor;
  return quantum > options.epsilon_gbps * 10.0 ? quantum
                                               : options.epsilon_gbps * 10.0;
}

// Minimum usable link residual for a demand's path search this round: a
// link is worth taking only if it can carry a meaningful sliver of the
// round's grant.
inline double sliver_threshold(const SolverOptions& options, double quantum,
                               double remaining_gbps) {
  double grant = quantum < remaining_gbps ? quantum : remaining_gbps;
  return grant * 1e-3 + options.epsilon_gbps;
}

}  // namespace detail

}  // namespace dsdn::te
