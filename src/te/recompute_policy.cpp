#include "te/recompute_policy.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <tuple>

namespace dsdn::te {

RecomputePolicy::RecomputePolicy(RecomputePolicyOptions options)
    : options_(options) {
  if (options.period_epochs == 0)
    throw std::invalid_argument("RecomputePolicy: period_epochs == 0");
  if (options.drift_threshold < 0.0)
    throw std::invalid_argument("RecomputePolicy: negative drift_threshold");
}

bool RecomputePolicy::on_epoch(const traffic::TrafficMatrix& view) {
  ++epochs_since_;
  if (!has_baseline_) return true;
  // A baseline that allocated nothing must never defer a non-empty view:
  // the bootstrap solve runs before the first measurement epoch, and a
  // periodic policy seeded with that empty matrix would otherwise sit on
  // an empty routing for a whole period.
  if (solved_.total_rate_gbps() <= 0.0 && view.total_rate_gbps() > 0.0)
    return true;
  switch (options_.kind) {
    case RecomputeTrigger::kEvery:
      return true;
    case RecomputeTrigger::kPeriodic:
      return epochs_since_ >= options_.period_epochs;
    case RecomputeTrigger::kThreshold:
      return drift_fraction(solved_, view) >= options_.drift_threshold;
    case RecomputeTrigger::kHybrid:
      return epochs_since_ >= options_.period_epochs ||
             drift_fraction(solved_, view) >= options_.drift_threshold;
  }
  return true;
}

void RecomputePolicy::note_recompute(const traffic::TrafficMatrix& solved_view) {
  solved_ = solved_view;
  has_baseline_ = true;
  epochs_since_ = 0;
}

void RecomputePolicy::reset() {
  solved_ = traffic::TrafficMatrix{};
  has_baseline_ = false;
  epochs_since_ = 0;
}

double RecomputePolicy::drift_fraction(const traffic::TrafficMatrix& solved,
                                       const traffic::TrafficMatrix& now) {
  using Key = std::tuple<topo::NodeId, topo::NodeId, int>;
  std::map<Key, double> delta;
  double solved_total = 0.0;
  for (const auto& d : solved.demands()) {
    delta[{d.src, d.dst, static_cast<int>(d.priority)}] -= d.rate_gbps;
    solved_total += d.rate_gbps;
  }
  for (const auto& d : now.demands()) {
    delta[{d.src, d.dst, static_cast<int>(d.priority)}] += d.rate_gbps;
  }
  double l1 = 0.0;
  for (const auto& [key, dv] : delta) l1 += std::abs(dv);
  if (solved_total <= 0.0) return l1 > 0.0 ? 1.0 : 0.0;
  return l1 / solved_total;
}

}  // namespace dsdn::te
