#pragma once

// A persistent blocking thread pool used for the solver's data-parallel
// path-search step. Workers are started once, at construction, and live
// for the pool's lifetime; parallel_for hands them dynamically scheduled
// index blocks (atomic grab of small chunks, so a skewed per-index cost
// does not strand work on one worker the way static contiguous chunking
// does). The solver's correctness never depends on scheduling: every
// index runs exactly once and parallel_for does not return before all of
// them have.
//
// Exceptions thrown by fn are captured on the worker, the remaining index
// space is abandoned (already-started chunks still finish), and the first
// exception is rethrown on the calling thread.
//
// A parallel_for issued from inside a pool worker (nested use) runs
// inline on that worker -- never deadlocks, never oversubscribes.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dsdn::te {

class ThreadPool {
 public:
  // Lifetime counters, exposed through core::render_pool_stats so benches
  // can report scheduling overhead and balance (Fig 13 methodology).
  struct WorkerStats {
    std::uint64_t tasks = 0;  // fn invocations executed by this worker
    double busy_s = 0.0;      // wall time spent inside fn
  };
  struct Stats {
    std::size_t workers = 1;            // parallelism incl. the caller
    std::uint64_t parallel_calls = 0;   // parallel_for invocations
    std::uint64_t inline_calls = 0;     // ... of which ran inline
    std::uint64_t tasks_executed = 0;   // total fn invocations
    std::vector<WorkerStats> per_worker;  // [0..workers-2] pool threads,
                                          // [workers-1] the caller's slot
    // max / mean per-worker busy time; 1.0 = perfectly balanced. Returns
    // 1.0 when nothing has run in parallel yet.
    double imbalance() const;
  };

  // n_threads == 0 or 1 means "run inline on the caller" (no workers are
  // started). Otherwise n_threads-1 persistent workers are spawned once,
  // here, and the calling thread participates as the n_threads-th worker.
  explicit ThreadPool(std::size_t n_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_threads() const { return n_threads_ == 0 ? 1 : n_threads_; }

  // Invokes fn(i) for i in [0, n), dynamically partitioned across the
  // persistent workers plus the calling thread. Blocks until every
  // invocation completes. fn must be safe to call concurrently for
  // distinct i. Concurrent parallel_for calls from different external
  // threads are serialized; calls from inside a worker run inline.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) const;

  Stats stats() const;
  void reset_stats();

 private:
  void worker_main(std::size_t slot);
  // Grabs chunks until the index space is exhausted; returns tasks run
  // and accumulates busy time. On exception, records it and drains the
  // remaining indices.
  void run_chunks(std::size_t slot);
  void run_inline(std::size_t n, const std::function<void(std::size_t)>& fn)
      const;

  std::size_t n_threads_;
  std::vector<std::thread> workers_;

  // Serializes whole parallel_for invocations from external threads.
  mutable std::mutex submit_mu_;

  // Job handoff state, guarded by mu_.
  mutable std::mutex mu_;
  mutable std::condition_variable work_cv_;  // workers: "a job is posted"
  mutable std::condition_variable done_cv_;  // caller: "all workers idle"
  bool stop_ = false;
  std::uint64_t job_epoch_ = 0;  // bumped once per posted job
  std::size_t workers_active_ = 0;
  const std::function<void(std::size_t)>* job_fn_ = nullptr;
  std::size_t job_n_ = 0;
  std::size_t job_chunk_ = 1;
  mutable std::atomic<std::size_t> next_index_{0};
  mutable std::exception_ptr first_error_;

  // Stats, guarded by stats_mu_ (separate so stats() never contends with
  // the job-handoff path more than briefly).
  mutable std::mutex stats_mu_;
  mutable Stats stats_;
};

}  // namespace dsdn::te
