#pragma once

// A small blocking thread pool used for the solver's data-parallel
// path-search step. Kept deliberately simple: parallel_for partitions the
// index space into contiguous chunks, one per worker, and joins before
// returning -- the solver's correctness never depends on scheduling.

#include <cstddef>
#include <functional>

namespace dsdn::te {

class ThreadPool {
 public:
  // n_threads == 0 or 1 means "run inline on the caller".
  explicit ThreadPool(std::size_t n_threads) : n_threads_(n_threads) {}

  std::size_t n_threads() const { return n_threads_ == 0 ? 1 : n_threads_; }

  // Invokes fn(i) for i in [0, n), partitioned across workers. Blocks
  // until every invocation completes. fn must be safe to call
  // concurrently for distinct i.
  void parallel_for(std::size_t n,
                    const std::function<void(std::size_t)>& fn) const;

 private:
  std::size_t n_threads_;
};

}  // namespace dsdn::te
