#include "te/path_cache.hpp"

namespace dsdn::te {

PathCache::PathCache(const topo::Topology& topo) : n_(topo.num_nodes()) {
  paths_.resize(n_ * n_);
  SpConstraints ignore_state;
  ignore_state.require_up = false;  // capacity- and state-oblivious
  for (topo::NodeId s = 0; s < n_; ++s) {
    auto tree = shortest_path_tree(topo, s, ignore_state);
    for (topo::NodeId d = 0; d < n_; ++d) {
      if (d == s) continue;
      paths_[index(s, d)] = std::move(tree[d]);
    }
  }
}

std::optional<Path> PathCache::get(const topo::Topology& topo,
                                   topo::NodeId src, topo::NodeId dst,
                                   const SpConstraints& c) const {
  const Path& cached = paths_[index(src, dst)];
  if (!cached.empty()) {
    bool feasible = true;
    for (topo::LinkId lid : cached.links) {
      const topo::Link& l = topo.link(lid);
      if (c.require_up && !l.up) {
        feasible = false;
        break;
      }
      if (c.link_allowed && !(*c.link_allowed)[lid]) {
        feasible = false;
        break;
      }
      if (c.residual_gbps && (*c.residual_gbps)[lid] < c.min_residual) {
        feasible = false;
        break;
      }
    }
    if (feasible) {
      hits_.fetch_add(1, std::memory_order_relaxed);
      return cached;
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return shortest_path(topo, src, dst, c);
}

void PathCache::reset_counters() {
  hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace dsdn::te
