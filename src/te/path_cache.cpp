#include "te/path_cache.hpp"

#include <mutex>

#include "obs/metrics.hpp"

namespace dsdn::te {

namespace {

// Process-wide cache effectiveness, aggregated across every PathCache
// instance (per-instance exactness stays on the member atomics, which
// the Fig 15 report reads). Sharded adds: get() runs concurrently on
// every path-search worker.
obs::Counter& cache_hits() {
  static obs::Counter& c = obs::Registry::global().counter("te.cache.hits");
  return c;
}
obs::Counter& cache_repair_hits() {
  static obs::Counter& c =
      obs::Registry::global().counter("te.cache.repair_hits");
  return c;
}
obs::Counter& cache_misses() {
  static obs::Counter& c = obs::Registry::global().counter("te.cache.misses");
  return c;
}

bool path_feasible(const Path& path, const topo::Topology& topo,
                   const SpConstraints& c) {
  if (path.empty()) return false;
  for (topo::LinkId lid : path.links) {
    if (lid >= topo.num_links()) return false;  // stale table, new topology
    const topo::Link& l = topo.link(lid);
    if (c.require_up && !l.up) return false;
    if (c.link_allowed && !(*c.link_allowed)[lid]) return false;
    if (c.residual_gbps && (*c.residual_gbps)[lid] < c.min_residual)
      return false;
  }
  return true;
}

}  // namespace

std::shared_ptr<const PathCache::Table> PathCache::build_table(
    const topo::Topology& topo) {
  auto table = std::make_shared<Table>();
  table->n = topo.num_nodes();
  table->paths.assign(table->n * table->n, Path{});
  SpConstraints ignore_state;
  ignore_state.require_up = false;  // capacity- and state-oblivious
  for (topo::NodeId s = 0; s < table->n; ++s) {
    auto tree = shortest_path_tree(topo, s, ignore_state);
    for (topo::NodeId d = 0; d < table->n; ++d) {
      if (d == s) continue;
      table->paths[table->index(s, d)] = std::move(tree[d]);
    }
  }
  return table;
}

PathCache::PathCache(const topo::Topology& topo)
    : table_(build_table(topo)) {
  std::unique_lock<std::shared_mutex> lock(repair_mu_);
  repair_.assign(topo.num_nodes() * topo.num_nodes(), Path{});
}

void PathCache::invalidate(const topo::Topology& topo) {
  // Build off to the side -- concurrent get() calls keep reading the old
  // snapshot -- then swap the finished table in and drop the repair
  // entries of the closed epoch.
  auto fresh = build_table(topo);
  {
    std::lock_guard<std::mutex> tlock(table_mu_);
    table_ = std::move(fresh);
  }
  std::unique_lock<std::shared_mutex> lock(repair_mu_);
  repair_.assign(topo.num_nodes() * topo.num_nodes(), Path{});
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

std::optional<Path> PathCache::get(const topo::Topology& topo,
                                   topo::NodeId src, topo::NodeId dst,
                                   const SpConstraints& c) const {
  // Pin this lookup's snapshot: a concurrent invalidate() swaps the
  // pointer but never mutates a published table.
  const std::shared_ptr<const Table> table = snapshot();
  const std::size_t idx = table->index(src, dst);
  if (idx < table->paths.size() &&
      path_feasible(table->paths[idx], topo, c)) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    cache_hits().inc();
    return table->paths[idx];
  }
  // The primary entry is saturated (or down). Try the repair path
  // memoized by an earlier miss for this pair before paying for another
  // Dijkstra; it is subject to the same feasibility check, so a stale
  // repair entry can cost a recompute but never an infeasible answer.
  {
    std::shared_lock<std::shared_mutex> lock(repair_mu_);
    if (idx < repair_.size()) {
      const Path& memo = repair_[idx];
      if (path_feasible(memo, topo, c)) {
        Path copy = memo;
        lock.unlock();
        repair_hits_.fetch_add(1, std::memory_order_relaxed);
        cache_repair_hits().inc();
        return copy;
      }
    }
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  cache_misses().inc();
  std::optional<Path> found = shortest_path(topo, src, dst, c);
  if (found) {
    std::unique_lock<std::shared_mutex> lock(repair_mu_);
    if (idx < repair_.size()) repair_[idx] = *found;
  }
  return found;
}

void PathCache::reset_counters() {
  hits_.store(0, std::memory_order_relaxed);
  repair_hits_.store(0, std::memory_order_relaxed);
  misses_.store(0, std::memory_order_relaxed);
}

}  // namespace dsdn::te
