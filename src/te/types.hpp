#pragma once

// Shared path/allocation types for the TE layer.
//
// A Path is a sequence of *directed link ids* -- exactly the representation
// a dSDN headend compiles into an MPLS label stack (§3.2). Keeping link
// ids (not node ids) makes parallel links unambiguous and the dataplane
// encoding trivial.

#include <string>
#include <vector>

#include "metrics/slo.hpp"
#include "topo/topology.hpp"
#include "traffic/matrix.hpp"

namespace dsdn::te {

struct Path {
  std::vector<topo::LinkId> links;

  bool empty() const { return links.empty(); }
  std::size_t hops() const { return links.size(); }

  topo::NodeId src(const topo::Topology& topo) const;
  topo::NodeId dst(const topo::Topology& topo) const;

  double igp_cost(const topo::Topology& topo) const;
  double latency_s(const topo::Topology& topo) const;

  // True iff consecutive links share endpoints, every link is up, and no
  // node repeats (loop-free).
  bool is_valid(const topo::Topology& topo) const;

  // Node sequence src, ..., dst (empty path -> empty).
  std::vector<topo::NodeId> node_sequence(const topo::Topology& topo) const;

  std::string to_string(const topo::Topology& topo) const;

  bool operator==(const Path&) const = default;
};

// One weighted path assignment for a demand. A demand may be split across
// several paths; weights are the fraction of the demand's *allocated*
// rate on each path.
struct WeightedPath {
  Path path;
  double weight = 1.0;
  // Non-empty iff this path was placed by the segment-routing solver: the
  // node-segment stack (1-3 middlepoints then the egress, outermost
  // first). `path` then holds ONE concrete ECMP expansion of the segment
  // route (for capacity accounting); the dataplane encodes `segments`,
  // not `path`, and fans out over the underlay ECMP DAG per segment.
  std::vector<topo::NodeId> segments;

  bool operator==(const WeightedPath&) const = default;
};

// TE's output for a single demand.
struct Allocation {
  traffic::Demand demand;
  // Rate actually admitted (<= demand.rate_gbps when capacity is short).
  double allocated_gbps = 0.0;
  std::vector<WeightedPath> paths;
};

// The full TE solution: one Allocation per input demand, same order.
struct Solution {
  std::vector<Allocation> allocations;

  // Residual capacity per link after placing the solution.
  std::vector<double> residual_capacity(const topo::Topology& topo) const;

  // Max over links of placed_load / capacity.
  double max_utilization(const topo::Topology& topo) const;

  // Sum over demands of allocated rate.
  double total_allocated_gbps() const;

  // Allocations whose demand originates at `src` -- the subset a dSDN
  // headend programs (§3.2: "selects the subset of paths that start at R").
  std::vector<const Allocation*> originating_at(topo::NodeId src) const;
};

}  // namespace dsdn::te
