#include "te/dijkstra.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

namespace dsdn::te {

// ---- Path methods (types.hpp) ----

topo::NodeId Path::src(const topo::Topology& topo) const {
  if (links.empty()) return topo::kInvalidNode;
  return topo.link(links.front()).src;
}

topo::NodeId Path::dst(const topo::Topology& topo) const {
  if (links.empty()) return topo::kInvalidNode;
  return topo.link(links.back()).dst;
}

double Path::igp_cost(const topo::Topology& topo) const {
  double cost = 0.0;
  for (topo::LinkId l : links) cost += topo.link(l).igp_metric;
  return cost;
}

double Path::latency_s(const topo::Topology& topo) const {
  double s = 0.0;
  for (topo::LinkId l : links) s += topo.link(l).delay_s;
  return s;
}

bool Path::is_valid(const topo::Topology& topo) const {
  if (links.empty()) return false;
  std::unordered_set<topo::NodeId> visited;
  visited.insert(topo.link(links.front()).src);
  topo::NodeId at = topo.link(links.front()).src;
  for (topo::LinkId lid : links) {
    const topo::Link& l = topo.link(lid);
    if (!l.up || l.src != at) return false;
    at = l.dst;
    if (!visited.insert(at).second) return false;  // node repeats => loop
  }
  return true;
}

std::vector<topo::NodeId> Path::node_sequence(
    const topo::Topology& topo) const {
  std::vector<topo::NodeId> seq;
  if (links.empty()) return seq;
  seq.push_back(topo.link(links.front()).src);
  for (topo::LinkId lid : links) seq.push_back(topo.link(lid).dst);
  return seq;
}

std::string Path::to_string(const topo::Topology& topo) const {
  std::ostringstream os;
  bool first = true;
  for (topo::NodeId n : node_sequence(topo)) {
    if (!first) os << "->";
    os << topo.node(n).name;
    first = false;
  }
  return os.str();
}

// ---- Solution methods (types.hpp) ----

std::vector<double> Solution::residual_capacity(
    const topo::Topology& topo) const {
  std::vector<double> residual(topo.num_links());
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    residual[l] = topo.link(static_cast<topo::LinkId>(l)).capacity_gbps;
  }
  for (const Allocation& a : allocations) {
    for (const WeightedPath& wp : a.paths) {
      const double rate = a.allocated_gbps * wp.weight;
      for (topo::LinkId l : wp.path.links) residual[l] -= rate;
    }
  }
  return residual;
}

double Solution::max_utilization(const topo::Topology& topo) const {
  const auto residual = residual_capacity(topo);
  double worst = 0.0;
  for (std::size_t l = 0; l < residual.size(); ++l) {
    const double cap = topo.link(static_cast<topo::LinkId>(l)).capacity_gbps;
    worst = std::max(worst, (cap - residual[l]) / cap);
  }
  return worst;
}

double Solution::total_allocated_gbps() const {
  double total = 0.0;
  for (const Allocation& a : allocations) total += a.allocated_gbps;
  return total;
}

std::vector<const Allocation*> Solution::originating_at(
    topo::NodeId src) const {
  std::vector<const Allocation*> out;
  for (const Allocation& a : allocations) {
    if (a.demand.src == src) out.push_back(&a);
  }
  return out;
}

// ---- Dijkstra ----

namespace {

bool link_usable(const topo::Link& l, const SpConstraints& c) {
  if (c.require_up && !l.up) return false;
  if (c.link_allowed && !(*c.link_allowed)[l.id]) return false;
  if (c.residual_gbps && (*c.residual_gbps)[l.id] < c.min_residual)
    return false;
  return true;
}

struct DijkstraResult {
  std::vector<double> dist;
  std::vector<topo::LinkId> pred_link;  // link arriving at each node
};

template <typename CostFn>
DijkstraResult run_dijkstra(const topo::Topology& topo, topo::NodeId src,
                            const SpConstraints& c, CostFn cost,
                            topo::NodeId early_stop = topo::kInvalidNode) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  DijkstraResult r;
  r.dist.assign(topo.num_nodes(), kInf);
  r.pred_link.assign(topo.num_nodes(), topo::kInvalidLink);
  using Entry = std::pair<double, topo::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  r.dist[src] = 0.0;
  pq.emplace(0.0, src);
  while (!pq.empty()) {
    const auto [d, u] = pq.top();
    pq.pop();
    if (d > r.dist[u]) continue;
    if (u == early_stop) break;
    for (topo::LinkId lid : topo.node(u).out_links) {
      const topo::Link& l = topo.link(lid);
      if (!link_usable(l, c)) continue;
      const double nd = d + cost(l);
      if (nd < r.dist[l.dst]) {
        r.dist[l.dst] = nd;
        r.pred_link[l.dst] = lid;
        pq.emplace(nd, l.dst);
      }
    }
  }
  return r;
}

Path extract_path(const topo::Topology& topo, const DijkstraResult& r,
                  topo::NodeId src, topo::NodeId dst) {
  Path p;
  topo::NodeId at = dst;
  while (at != src) {
    const topo::LinkId lid = r.pred_link[at];
    if (lid == topo::kInvalidLink) return {};  // unreachable
    p.links.push_back(lid);
    at = topo.link(lid).src;
  }
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

}  // namespace

std::optional<Path> shortest_path(const topo::Topology& topo,
                                  topo::NodeId src, topo::NodeId dst,
                                  const SpConstraints& c) {
  if (src == dst) throw std::invalid_argument("shortest_path: src == dst");
  const auto r = run_dijkstra(
      topo, src, c, [](const topo::Link& l) { return l.igp_metric; }, dst);
  Path p = extract_path(topo, r, src, dst);
  if (p.empty()) return std::nullopt;
  return p;
}

std::vector<Path> shortest_path_tree(const topo::Topology& topo,
                                     topo::NodeId src,
                                     const SpConstraints& c) {
  const auto r = run_dijkstra(
      topo, src, c, [](const topo::Link& l) { return l.igp_metric; });
  std::vector<Path> out(topo.num_nodes());
  for (topo::NodeId d = 0; d < topo.num_nodes(); ++d) {
    if (d == src) continue;
    out[d] = extract_path(topo, r, src, d);
  }
  return out;
}

std::optional<Path> min_latency_path(const topo::Topology& topo,
                                     topo::NodeId src, topo::NodeId dst,
                                     const SpConstraints& c) {
  if (src == dst) throw std::invalid_argument("min_latency_path: src == dst");
  const auto r = run_dijkstra(
      topo, src, c, [](const topo::Link& l) { return l.delay_s; }, dst);
  Path p = extract_path(topo, r, src, dst);
  if (p.empty()) return std::nullopt;
  return p;
}

}  // namespace dsdn::te
