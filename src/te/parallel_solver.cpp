#include "te/parallel_solver.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"

namespace dsdn::te {

namespace {

using Clock = std::chrono::steady_clock;

// Process-wide scheduling counters across every pool instance; the
// per-worker breakdown (tasks, busy, imbalance) stays on the instance
// Stats that core::render_pool_stats renders.
struct PoolMetrics {
  obs::Counter& parallel_calls;
  obs::Counter& inline_calls;
  obs::Counter& tasks;
  obs::Counter& busy_us;  // integrated worker busy time, microseconds

  static PoolMetrics& get() {
    auto& reg = obs::Registry::global();
    static PoolMetrics m{reg.counter("te.pool.parallel_calls"),
                         reg.counter("te.pool.inline_calls"),
                         reg.counter("te.pool.tasks"),
                         reg.counter("te.pool.busy_us")};
    return m;
  }
};

// Pool whose run_chunks the current thread is executing (nullptr outside
// the pool). Used to run nested parallel_for calls inline instead of
// deadlocking on the pool's own idle workers.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

double ThreadPool::Stats::imbalance() const {
  double max_busy = 0.0, total_busy = 0.0;
  for (const WorkerStats& w : per_worker) {
    max_busy = std::max(max_busy, w.busy_s);
    total_busy += w.busy_s;
  }
  if (per_worker.empty() || total_busy <= 0.0) return 1.0;
  return max_busy / (total_busy / static_cast<double>(per_worker.size()));
}

ThreadPool::ThreadPool(std::size_t n_threads) : n_threads_(n_threads) {
  stats_.workers = this->n_threads();
  stats_.per_worker.resize(this->n_threads());
  if (this->n_threads() <= 1) return;
  workers_.reserve(this->n_threads() - 1);
  for (std::size_t slot = 0; slot + 1 < this->n_threads(); ++slot) {
    workers_.emplace_back([this, slot] { worker_main(slot); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::worker_main(std::size_t slot) {
  std::uint64_t seen_epoch = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk,
                    [&] { return stop_ || job_epoch_ != seen_epoch; });
      if (stop_) return;
      seen_epoch = job_epoch_;
    }
    run_chunks(slot);
    {
      std::lock_guard<std::mutex> lk(mu_);
      if (--workers_active_ == 0) done_cv_.notify_one();
    }
  }
}

void ThreadPool::run_chunks(std::size_t slot) {
  const ThreadPool* outer = t_current_pool;
  t_current_pool = this;
  std::uint64_t tasks = 0;
  const auto t0 = Clock::now();
  while (true) {
    const std::size_t lo =
        next_index_.fetch_add(job_chunk_, std::memory_order_relaxed);
    if (lo >= job_n_) break;
    const std::size_t hi = std::min(job_n_, lo + job_chunk_);
    try {
      for (std::size_t i = lo; i < hi; ++i) {
        (*job_fn_)(i);
        ++tasks;
      }
    } catch (...) {
      std::lock_guard<std::mutex> lk(mu_);
      if (!first_error_) first_error_ = std::current_exception();
      // Abandon the untouched remainder of the index space; chunks
      // already claimed by other workers still run to completion.
      next_index_.store(job_n_, std::memory_order_relaxed);
    }
  }
  const double busy = std::chrono::duration<double>(Clock::now() - t0).count();
  t_current_pool = outer;
  PoolMetrics::get().busy_us.add(static_cast<std::uint64_t>(busy * 1e6));
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.per_worker[slot].tasks += tasks;
  stats_.per_worker[slot].busy_s += busy;
}

void ThreadPool::run_inline(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < n; ++i) fn(i);
  const double busy = std::chrono::duration<double>(Clock::now() - t0).count();
  PoolMetrics& pm = PoolMetrics::get();
  pm.parallel_calls.inc();
  pm.inline_calls.inc();
  pm.tasks.add(n);
  pm.busy_us.add(static_cast<std::uint64_t>(busy * 1e6));
  std::lock_guard<std::mutex> lk(stats_mu_);
  ++stats_.parallel_calls;
  ++stats_.inline_calls;
  stats_.tasks_executed += n;
  WorkerStats& caller = stats_.per_worker.back();
  caller.tasks += n;
  caller.busy_s += busy;
}

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  // Nested use from inside one of our own workers: the pool's threads are
  // all busy on the outer job, so the only deadlock-free option is to run
  // on the current thread.
  if (t_current_pool == this || workers_.empty() || n == 1) {
    run_inline(n, fn);
    return;
  }
  auto* self = const_cast<ThreadPool*>(this);
  // One job at a time: external callers queue up here.
  std::lock_guard<std::mutex> submit(self->submit_mu_);
  {
    std::lock_guard<std::mutex> lk(self->mu_);
    self->job_fn_ = &fn;
    self->job_n_ = n;
    // Small dynamic blocks (several per worker) so a skewed per-index
    // cost rebalances instead of stranding one static chunk per worker.
    self->job_chunk_ = std::max<std::size_t>(1, n / (n_threads() * 8));
    self->next_index_.store(0, std::memory_order_relaxed);
    self->first_error_ = nullptr;
    self->workers_active_ = workers_.size();
    ++self->job_epoch_;
  }
  self->work_cv_.notify_all();
  self->run_chunks(n_threads() - 1);  // the caller takes the last slot
  {
    std::unique_lock<std::mutex> lk(self->mu_);
    self->done_cv_.wait(lk, [&] { return self->workers_active_ == 0; });
    self->job_fn_ = nullptr;
  }
  {
    PoolMetrics& pm = PoolMetrics::get();
    pm.parallel_calls.inc();
    pm.tasks.add(n);
    std::lock_guard<std::mutex> lk(stats_mu_);
    ++self->stats_.parallel_calls;
    self->stats_.tasks_executed += n;
  }
  if (self->first_error_) {
    std::exception_ptr e = self->first_error_;
    self->first_error_ = nullptr;
    std::rethrow_exception(e);
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  return stats_;
}

void ThreadPool::reset_stats() {
  std::lock_guard<std::mutex> lk(stats_mu_);
  stats_.parallel_calls = 0;
  stats_.inline_calls = 0;
  stats_.tasks_executed = 0;
  for (WorkerStats& w : stats_.per_worker) w = WorkerStats{};
}

}  // namespace dsdn::te
