#include "te/parallel_solver.hpp"

#include <algorithm>
#include <thread>
#include <vector>

namespace dsdn::te {

void ThreadPool::parallel_for(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (n == 0) return;
  const std::size_t workers = std::min(n_threads(), n);
  if (workers <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> threads;
  threads.reserve(workers);
  const std::size_t chunk = (n + workers - 1) / workers;
  for (std::size_t w = 0; w < workers; ++w) {
    const std::size_t lo = w * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo >= hi) break;
    threads.emplace_back([lo, hi, &fn] {
      for (std::size_t i = lo; i < hi; ++i) fn(i);
    });
  }
  for (auto& t : threads) t.join();
}

}  // namespace dsdn::te
