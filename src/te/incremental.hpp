#pragma once

// Warm-start incremental TE recompute.
//
// The paper's convergence time (Fig 8/9) is dominated by the local TE
// recompute every router runs after a topology or demand NSU, yet a
// single link flap invalidates only the allocations whose paths cross
// that link. IncrementalSolver keeps the previous Solution and, given
// the ViewDelta since the last recompute:
//
//   1. keeps every allocation whose paths touch no changed link and
//      whose demand did not change;
//   2. releases the affected demands (changed-demand origins, new or
//      re-rated demands, path-touches-changed-link); any change that
//      *frees* capacity -- a repair, a capacity restoration, or a
//      demand now offering less than its previous allocation -- instead
//      falls back to a full solve, because freed capacity cascades
//      through the strict-priority waterfill and no locally-computed
//      released set keeps cold-solve parity;
//   3. re-waterfills only the released set against the residual
//      capacity left by the kept allocations (the full solver with a
//      residual override);
//   4. falls back to a full solve when the affected fraction exceeds
//      a threshold (a large delta converges to a from-scratch solve,
//      so reuse would only add overhead and fairness drift).
//
// The result is *not* bit-identical to a from-scratch solve: kept
// allocations retain their rates, so exact max-min fairness across the
// kept/released boundary is approximated. The DiffChecker makes this
// drift a checked contract instead of a leap of faith: in debug/CI
// mode every incremental solve is re-run through the full solver and
// the invariants below are asserted.
//
// Determinism: IncrementalSolver is deterministic given the same
// sequence of (topology, demands, delta) inputs -- routers that
// recompute at the same points (as the emulation's quiescence barrier
// guarantees) still converge to identical solutions. Routers with
// different recompute *histories* may briefly differ within the
// checker tolerance; dSDN deployments that require strict per-view
// determinism keep the feature off (the default in core::Controller).
//
// Not thread-safe: one IncrementalSolver per controller, like the
// Solution it caches.

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "te/solver.hpp"
#include "te/view_delta.hpp"

namespace dsdn::te {

struct IncrementalOptions {
  // Options for the underlying solver (also used by full-solve
  // fallbacks and the DiffChecker's reference solve).
  SolverOptions solver;
  // Fall back to a full solve when more than this fraction of demands
  // is affected by the delta.
  double full_solve_threshold = 0.35;
  // Differential correctness checking: after every incremental solve,
  // re-run the full solver on the same inputs and verify conservation,
  // feasibility, and throughput parity. Debug/CI only -- it costs a
  // full solve per recompute.
  bool diff_check = false;
  // Throw std::logic_error on the first checker violation instead of
  // only counting it.
  bool diff_check_fatal = false;
  // Allowed relative drift of total allocated throughput vs the full
  // solve (the waterfill is itself approximate; warm-start adds
  // boundary drift bounded by the fallback threshold).
  double throughput_tolerance = 0.05;
};

struct IncrementalStats {
  // Stats of the solve actually performed: the sub-solve over released
  // demands on the incremental path, or the full solve otherwise.
  SolveStats solve;
  // Whole-call wall time including delta classification and merge.
  double wall_time_s = 0.0;
  bool incremental = false;  // false = full solve (cold, reset, or fallback)
  bool fallback = false;     // full solve forced by the affected fraction
  std::size_t total_demands = 0;
  std::size_t affected_demands = 0;
  std::size_t reused_allocations = 0;
  double reuse_fraction = 0.0;  // reused / total (0 on the full path)
  std::size_t checker_violations = 0;
};

// Differential correctness checker: validates an (incremental) Solution
// against a from-scratch solve of the same inputs.
class DiffChecker {
 public:
  struct Options {
    double throughput_tolerance = 0.05;
    double capacity_slack_gbps = 1e-6;
  };

  struct Report {
    std::vector<std::string> violations;
    double solution_total_gbps = 0.0;
    double reference_total_gbps = 0.0;

    bool ok() const { return violations.empty(); }
  };

  // Re-runs the full solver on (topo, tm) with `solver_options` and
  // checks `solution` for:
  //   - shape: one allocation per demand, same order, rate not exceeded;
  //   - link-capacity conservation: per-link placed load <= capacity
  //     (+slack) and zero load on down links;
  //   - path feasibility: every weighted path is valid on up links,
  //     connects the demand's endpoints, and weights sum to 1;
  //   - throughput parity: total allocated within throughput_tolerance
  //     (relative) of the reference solve.
  static Report check(const topo::Topology& topo,
                      const traffic::TrafficMatrix& tm,
                      const Solution& solution,
                      const SolverOptions& solver_options,
                      const Options& options);
  static Report check(const topo::Topology& topo,
                      const traffic::TrafficMatrix& tm,
                      const Solution& solution,
                      const SolverOptions& solver_options) {
    return check(topo, tm, solution, solver_options, Options{});
  }

  // Same checks against a caller-supplied reference Solution instead of
  // a fresh stock solve -- for solutions the stock solver cannot
  // reproduce (mixed-algorithm fleets, segment routing), where the
  // reference comes from re-running the matching solver.
  static Report check_against(const topo::Topology& topo,
                              const traffic::TrafficMatrix& tm,
                              const Solution& solution,
                              const Solution& reference,
                              const Options& options);
};

class IncrementalSolver {
 public:
  explicit IncrementalSolver(IncrementalOptions options = {});

  // Warm-start solve. `delta` describes what changed since the previous
  // call; a `full` delta (or the first call, or a changed inventory
  // size) forces a from-scratch solve. The returned Solution has one
  // allocation per `tm` demand, same order, like Solver::solve.
  Solution solve(const topo::Topology& topo,
                 const traffic::TrafficMatrix& tm, const ViewDelta& delta,
                 IncrementalStats* stats = nullptr);

  // Drops the warm state; the next solve is a full solve.
  void reset();

  const IncrementalOptions& options() const { return options_; }

  // Lifetime accounting (also exported as te.incremental.* counters).
  std::size_t incremental_solves() const { return incremental_solves_; }
  std::size_t full_solves() const { return full_solves_; }
  std::size_t fallbacks() const { return fallbacks_; }
  std::size_t checker_violations() const { return checker_violations_; }

 private:
  Solution full_solve(const topo::Topology& topo,
                      const traffic::TrafficMatrix& tm,
                      IncrementalStats& stats);
  void adopt(const topo::Topology& topo, const traffic::TrafficMatrix& tm,
             const Solution& solution);
  void run_checker(const topo::Topology& topo,
                   const traffic::TrafficMatrix& tm,
                   const Solution& solution, IncrementalStats& stats);

  IncrementalOptions options_;
  Solver solver_;

  // Warm state: the previous solution, its residual capacities (down
  // links clamped to zero), the link liveness/capacity snapshot it was
  // computed against, and a (src, dst, class) -> allocation index map.
  bool warm_ = false;
  Solution prev_;
  std::size_t prev_num_nodes_ = 0;
  std::vector<double> prev_residual_;
  std::vector<char> prev_link_up_;
  std::vector<double> prev_link_cap_;
  std::unordered_map<std::uint64_t, std::size_t> prev_index_;

  std::size_t incremental_solves_ = 0;
  std::size_t full_solves_ = 0;
  std::size_t fallbacks_ = 0;
  std::size_t checker_violations_ = 0;
};

}  // namespace dsdn::te
