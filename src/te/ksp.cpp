#include "te/ksp.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dsdn::te {

namespace {

struct Candidate {
  double cost;
  Path path;
  bool operator<(const Candidate& other) const {
    if (cost != other.cost) return cost < other.cost;
    return path.links < other.path.links;
  }
};

}  // namespace

std::vector<Path> k_shortest_paths(const topo::Topology& topo,
                                   topo::NodeId src, topo::NodeId dst,
                                   std::size_t k, const SpConstraints& c) {
  if (src == dst) throw std::invalid_argument("k_shortest_paths: src == dst");
  std::vector<Path> result;
  if (k == 0) return result;

  auto first = shortest_path(topo, src, dst, c);
  if (!first) return result;
  result.push_back(*first);

  std::set<Candidate> candidates;
  std::vector<char> allowed_base(
      topo.num_links(), 1);
  if (c.link_allowed) {
    for (std::size_t l = 0; l < topo.num_links(); ++l)
      allowed_base[l] = (*c.link_allowed)[l];
  }

  while (result.size() < k) {
    const Path& prev = result.back();
    const auto prev_nodes = prev.node_sequence(topo);
    // Spur from each node of the previous path (except dst).
    for (std::size_t i = 0; i + 1 < prev_nodes.size(); ++i) {
      const topo::NodeId spur_node = prev_nodes[i];
      Path root;
      root.links.assign(prev.links.begin(),
                        prev.links.begin() + static_cast<std::ptrdiff_t>(i));

      std::vector<char> allowed = allowed_base;
      // Remove links that would recreate an already-found path sharing
      // this root.
      for (const Path& found : result) {
        if (found.links.size() > i &&
            std::equal(root.links.begin(), root.links.end(),
                       found.links.begin())) {
          allowed[found.links[i]] = 0;
        }
      }
      // Remove root nodes (except spur) to keep paths loopless: ban all
      // links touching them.
      for (std::size_t j = 0; j < i; ++j) {
        const topo::NodeId banned = prev_nodes[j];
        for (topo::LinkId lid : topo.node(banned).out_links) allowed[lid] = 0;
        for (topo::LinkId lid : topo.node(banned).in_links) allowed[lid] = 0;
      }

      SpConstraints spur_c = c;
      spur_c.link_allowed = &allowed;
      auto spur = shortest_path(topo, spur_node, dst, spur_c);
      if (!spur) continue;

      Path total = root;
      total.links.insert(total.links.end(), spur->links.begin(),
                         spur->links.end());
      if (!total.is_valid(topo)) continue;
      candidates.insert({total.igp_cost(topo), std::move(total)});
    }
    if (candidates.empty()) break;
    auto best = candidates.begin();
    // Skip duplicates of already-selected paths.
    while (best != candidates.end() &&
           std::find(result.begin(), result.end(), best->path) !=
               result.end()) {
      best = candidates.erase(best);
    }
    if (best == candidates.end()) break;
    result.push_back(best->path);
    candidates.erase(best);
  }
  return result;
}

}  // namespace dsdn::te
