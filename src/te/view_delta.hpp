#pragma once

// The change set between two TE recomputes, as tracked by the
// NodeStateDB: which links changed (liveness or capacity) and which
// origins' advertised demands changed since the previous recompute.
//
// This is the warm-start contract between core::StateDb (which
// accumulates the delta as NSUs are applied) and te::IncrementalSolver
// (which uses it to decide which allocations of the previous Solution
// can be kept). A delta with `full` set means "unknown baseline" --
// the consumer must treat everything as changed.

#include <vector>

#include "topo/topology.hpp"

namespace dsdn::te {

struct ViewDelta {
  // Directed link ids whose up/down state or capacity changed.
  std::vector<topo::LinkId> changed_links;
  // Origins whose advertised demand set changed (dSDN aggregates demand
  // by source router, so one origin churn invalidates exactly its rows).
  std::vector<topo::NodeId> changed_demand_origins;
  // No usable baseline: the consumer must recompute from scratch.
  bool full = true;

  bool empty() const {
    return !full && changed_links.empty() && changed_demand_origins.empty();
  }
};

}  // namespace dsdn::te
