#include "te/incremental.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dsdn::te {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// (src, dst, class) -> key. Demands are aggregated per (egress, class)
// at each source, so the key is unique within one origin's adverts; the
// adopt() step verifies global uniqueness before trusting the map.
std::uint64_t demand_key(const traffic::Demand& d, std::size_t num_nodes) {
  return (static_cast<std::uint64_t>(d.src) * num_nodes + d.dst) * 4 +
         static_cast<std::uint64_t>(d.priority);
}

// Placed rate per link of one allocation, accumulated into `load` with
// the given sign (+1 to place, -1 to release).
void accumulate_load(const Allocation& a, double sign,
                     std::vector<double>& load) {
  for (const WeightedPath& wp : a.paths) {
    const double rate = sign * a.allocated_gbps * wp.weight;
    for (topo::LinkId l : wp.path.links) load[l] += rate;
  }
}

}  // namespace

// ---- DiffChecker ----

DiffChecker::Report DiffChecker::check(const topo::Topology& topo,
                                       const traffic::TrafficMatrix& tm,
                                       const Solution& solution,
                                       const SolverOptions& solver_options,
                                       const Options& options) {
  return check_against(topo, tm, solution,
                       Solver(solver_options).solve(topo, tm), options);
}

DiffChecker::Report DiffChecker::check_against(
    const topo::Topology& topo, const traffic::TrafficMatrix& tm,
    const Solution& solution, const Solution& reference,
    const Options& options) {
  DSDN_TRACE_SPAN("te.diff_check");
  Report report;
  constexpr std::size_t kMaxViolations = 64;
  auto violate = [&](std::string msg) {
    if (report.violations.size() < kMaxViolations)
      report.violations.push_back(std::move(msg));
  };

  // ---- Shape: one allocation per demand, same order, rate respected.
  const auto& demands = tm.demands();
  if (solution.allocations.size() != demands.size()) {
    violate("shape: " + std::to_string(solution.allocations.size()) +
            " allocations for " + std::to_string(demands.size()) +
            " demands");
    return report;  // nothing below is meaningful with a shape mismatch
  }

  std::vector<double> load(topo.num_links(), 0.0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const Allocation& a = solution.allocations[i];
    const traffic::Demand& d = demands[i];
    const std::string who = "demand " + std::to_string(i) + " (" +
                            std::to_string(d.src) + "->" +
                            std::to_string(d.dst) + ")";
    if (!(a.demand == d)) violate("shape: " + who + " row mismatch");
    if (a.allocated_gbps > d.rate_gbps * (1.0 + 1e-9) + 1e-9)
      violate("shape: " + who + " over-allocated " +
              std::to_string(a.allocated_gbps) + " > " +
              std::to_string(d.rate_gbps));

    // ---- Path feasibility on the *current* topology.
    double weight_sum = 0.0;
    for (const WeightedPath& wp : a.paths) {
      weight_sum += wp.weight;
      if (!wp.path.is_valid(topo)) {
        violate("feasibility: " + who + " has an invalid path (down link, "
                "broken chain, or loop)");
        continue;
      }
      if (wp.path.src(topo) != d.src || wp.path.dst(topo) != d.dst)
        violate("feasibility: " + who + " path endpoints mismatch");
    }
    if (a.allocated_gbps > 1e-9 && std::abs(weight_sum - 1.0) > 1e-6)
      violate("feasibility: " + who + " path weights sum to " +
              std::to_string(weight_sum));
    accumulate_load(a, +1.0, load);
  }

  // ---- Link-capacity conservation (down links carry nothing).
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const topo::Link& link = topo.link(static_cast<topo::LinkId>(l));
    if (!link.up && load[l] > options.capacity_slack_gbps)
      violate("conservation: down link " + std::to_string(l) + " carries " +
              std::to_string(load[l]) + " Gbps");
    if (load[l] > link.capacity_gbps + options.capacity_slack_gbps)
      violate("conservation: link " + std::to_string(l) + " carries " +
              std::to_string(load[l]) + " Gbps > capacity " +
              std::to_string(link.capacity_gbps));
  }

  // ---- Throughput parity vs the reference solve.
  report.solution_total_gbps = solution.total_allocated_gbps();
  report.reference_total_gbps = reference.total_allocated_gbps();
  const double denom = std::max(report.reference_total_gbps, 1e-6);
  const double drift =
      std::abs(report.solution_total_gbps - report.reference_total_gbps) /
      denom;
  if (drift > options.throughput_tolerance)
    violate("parity: total " + std::to_string(report.solution_total_gbps) +
            " Gbps vs reference " +
            std::to_string(report.reference_total_gbps) + " Gbps (" +
            std::to_string(drift * 100.0) + "% drift)");
  return report;
}

// ---- IncrementalSolver ----

IncrementalSolver::IncrementalSolver(IncrementalOptions options)
    : options_(options), solver_(options.solver) {}

void IncrementalSolver::reset() {
  warm_ = false;
  prev_ = Solution{};
  prev_residual_.clear();
  prev_link_up_.clear();
  prev_link_cap_.clear();
  prev_index_.clear();
}

void IncrementalSolver::adopt(const topo::Topology& topo,
                              const traffic::TrafficMatrix& tm,
                              const Solution& solution) {
  prev_ = solution;
  prev_residual_ = solution.residual_capacity(topo);
  prev_link_up_.assign(topo.num_links(), 0);
  prev_link_cap_.assign(topo.num_links(), 0.0);
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const topo::Link& link = topo.link(static_cast<topo::LinkId>(l));
    prev_link_up_[l] = link.up ? 1 : 0;
    prev_link_cap_[l] = link.capacity_gbps;
    // A down link offers no capacity, whatever its configured rate.
    if (!link.up) prev_residual_[l] = 0.0;
    prev_residual_[l] = std::max(prev_residual_[l], 0.0);
  }
  prev_num_nodes_ = topo.num_nodes();
  prev_index_.clear();
  prev_index_.reserve(tm.size() * 2);
  for (std::size_t i = 0; i < tm.size(); ++i) {
    const auto [it, inserted] = prev_index_.emplace(
        demand_key(tm.demands()[i], topo.num_nodes()), i);
    (void)it;
    if (!inserted) {
      // Duplicate (src, dst, class) rows: the key map cannot represent
      // them, so refuse to warm-start off this matrix.
      warm_ = false;
      return;
    }
  }
  warm_ = true;
}

Solution IncrementalSolver::full_solve(const topo::Topology& topo,
                                       const traffic::TrafficMatrix& tm,
                                       IncrementalStats& stats) {
  Solution solution = solver_.solve(topo, tm, &stats.solve);
  stats.incremental = false;
  stats.affected_demands = tm.size();
  ++full_solves_;
  adopt(topo, tm, solution);
  return solution;
}

void IncrementalSolver::run_checker(const topo::Topology& topo,
                                    const traffic::TrafficMatrix& tm,
                                    const Solution& solution,
                                    IncrementalStats& stats) {
  DiffChecker::Options copts;
  copts.throughput_tolerance = options_.throughput_tolerance;
  const DiffChecker::Report report =
      DiffChecker::check(topo, tm, solution, options_.solver, copts);
  stats.checker_violations = report.violations.size();
  checker_violations_ += report.violations.size();
  if (!report.ok()) {
    static obs::Counter& m_violations =
        obs::Registry::global().counter("te.incremental.checker_violations");
    m_violations.add(report.violations.size());
    if (options_.diff_check_fatal)
      throw std::logic_error("te::DiffChecker: " + report.violations.front());
  }
}

Solution IncrementalSolver::solve(const topo::Topology& topo,
                                  const traffic::TrafficMatrix& tm,
                                  const ViewDelta& delta,
                                  IncrementalStats* stats) {
  DSDN_TRACE_SPAN("te.incremental_solve");
  auto& reg = obs::Registry::global();
  static obs::Counter& m_solves = reg.counter("te.incremental.solves");
  static obs::Counter& m_full = reg.counter("te.incremental.full_solves");
  static obs::Counter& m_fallbacks = reg.counter("te.incremental.fallbacks");
  static obs::Counter& m_affected =
      reg.counter("te.incremental.affected_demands");
  static obs::Counter& m_reused =
      reg.counter("te.incremental.reused_allocations");
  static obs::Histogram& m_reuse_frac =
      reg.histogram("te.incremental.reuse_fraction");
  static obs::Histogram& m_wall = reg.histogram("te.incremental.wall_s");

  const auto t_start = Clock::now();
  IncrementalStats local;
  local.total_demands = tm.size();

  auto finish = [&](Solution solution) {
    local.wall_time_s = seconds_since(t_start);
    m_wall.record(local.wall_time_s);
    m_affected.add(local.affected_demands);
    m_reused.add(local.reused_allocations);
    m_reuse_frac.record(local.reuse_fraction);
    if (stats) *stats = local;
    return solution;
  };

  // ---- Cold path: no baseline to warm-start from.
  const bool inventory_changed =
      prev_link_up_.size() != topo.num_links() ||
      prev_num_nodes_ != topo.num_nodes();
  if (!warm_ || delta.full || inventory_changed) {
    m_full.inc();
    return finish(full_solve(topo, tm, local));
  }

  // ---- Classify the delta.
  std::vector<char> link_changed(topo.num_links(), 0);
  bool capacity_freed = false;
  for (topo::LinkId l : delta.changed_links) {
    if (l >= topo.num_links()) continue;
    link_changed[l] = 1;
    // A repaired link or a capacity restoration frees headroom; see the
    // full-solve fallback below.
    const topo::Link& link = topo.link(l);
    if (link.up &&
        (!prev_link_up_[l] || link.capacity_gbps > prev_link_cap_[l] + 1e-9))
      capacity_freed = true;
  }
  std::vector<char> origin_changed(topo.num_nodes(), 0);
  for (topo::NodeId n : delta.changed_demand_origins) {
    if (n < topo.num_nodes()) origin_changed[n] = 1;
  }

  // Demand churn frees capacity too: a changed origin whose row now
  // offers less than the previous solve *allocated* it gives that
  // capacity back when re-placed.
  if (!capacity_freed && !delta.changed_demand_origins.empty()) {
    std::unordered_map<std::uint64_t, double> now_rate;
    for (const traffic::Demand& d : tm.demands()) {
      if (origin_changed[d.src])
        now_rate[demand_key(d, topo.num_nodes())] = d.rate_gbps;
    }
    for (const Allocation& prev : prev_.allocations) {
      if (prev.demand.src >= topo.num_nodes() ||
          !origin_changed[prev.demand.src])
        continue;
      const auto it = now_rate.find(demand_key(prev.demand,
                                               topo.num_nodes()));
      const double now = it == now_rate.end() ? 0.0 : it->second;
      if (prev.allocated_gbps > now + 1e-9) {
        capacity_freed = true;
        break;
      }
    }
  }

  // Freed capacity -- a repaired link, a capacity restoration, or a
  // demand giving back headroom -- cascades through the strict-priority
  // waterfill: kept allocations sitting on detour paths block capacity
  // a cold solve would place through the freed links, and the displaced
  // demands free capacity elsewhere in turn. No locally-computed
  // released set is parity-safe (the scenario swarm measured 10%
  // throughput drift after an SRLG repair under surges, and 5.7% after
  // a surge *down*), so take the full solve. Warm speedup survives in
  // the latency-critical direction: failures and demand growth.
  if (capacity_freed) {
    local.fallback = true;
    ++fallbacks_;
    m_fallbacks.inc();
    m_full.inc();
    return finish(full_solve(topo, tm, local));
  }

  // ---- Pick the affected demand set.
  const auto& demands = tm.demands();
  std::vector<char> affected(demands.size(), 0);
  std::vector<std::size_t> prev_of(demands.size(), SIZE_MAX);
  std::size_t n_affected = 0;
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const traffic::Demand& d = demands[i];
    bool hit = origin_changed[d.src];
    std::size_t prev_idx = SIZE_MAX;
    if (!hit) {
      const auto it = prev_index_.find(demand_key(d, topo.num_nodes()));
      if (it == prev_index_.end()) {
        hit = true;  // new demand row
      } else {
        prev_idx = it->second;
        const Allocation& prev = prev_.allocations[prev_idx];
        if (std::abs(prev.demand.rate_gbps - d.rate_gbps) > 1e-12) {
          hit = true;  // re-rated (an unchanged origin should not do
                       // this, but the delta is advisory, not trusted)
        } else {
          for (const WeightedPath& wp : prev.paths) {
            for (topo::LinkId l : wp.path.links) {
              if (link_changed[l]) {
                hit = true;
                break;
              }
            }
            if (hit) break;
          }
        }
      }
    }
    if (hit) {
      affected[i] = 1;
      ++n_affected;
    } else {
      prev_of[i] = prev_idx;
    }
  }
  local.affected_demands = n_affected;
  local.reused_allocations = demands.size() - n_affected;
  local.reuse_fraction =
      demands.empty()
          ? 0.0
          : static_cast<double>(local.reused_allocations) / demands.size();

  // ---- Fallback: the delta touches too much to be worth warm-starting.
  if (static_cast<double>(n_affected) >
      options_.full_solve_threshold * static_cast<double>(demands.size())) {
    local.fallback = true;
    local.reused_allocations = 0;
    local.reuse_fraction = 0.0;
    ++fallbacks_;
    m_fallbacks.inc();
    m_full.inc();
    return finish(full_solve(topo, tm, local));
  }

  // ---- Build the kept solution and the residual the released set sees.
  DSDN_TRACE_SPAN("te.incremental_merge");
  Solution merged;
  merged.allocations.resize(demands.size());
  std::vector<char> prev_kept(prev_.allocations.size(), 0);
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (affected[i]) continue;
    prev_kept[prev_of[i]] = 1;
    merged.allocations[i] = prev_.allocations[prev_of[i]];
    merged.allocations[i].demand = demands[i];
  }
  // Start from the previous residuals, release the loads of every
  // previous allocation that is *not* kept (affected or dropped rows),
  // then overwrite changed links with their current capacity -- kept
  // paths never touch a changed link, so the kept load there is zero.
  std::vector<double> residual = prev_residual_;
  for (std::size_t j = 0; j < prev_.allocations.size(); ++j) {
    // Releasing an allocation returns its placed load to the residual
    // (sign +1: residual is the inverse of load).
    if (!prev_kept[j]) accumulate_load(prev_.allocations[j], +1.0, residual);
  }
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const topo::Link& link = topo.link(static_cast<topo::LinkId>(l));
    if (link_changed[l]) residual[l] = link.up ? link.capacity_gbps : 0.0;
    residual[l] = std::max(residual[l], 0.0);
  }

  // ---- Re-waterfill only the released demands.
  if (n_affected > 0) {
    traffic::TrafficMatrix sub_tm;
    std::vector<std::size_t> positions;
    positions.reserve(n_affected);
    for (std::size_t i = 0; i < demands.size(); ++i) {
      if (!affected[i]) continue;
      sub_tm.add(demands[i]);
      positions.push_back(i);
    }
    Solution sub = solver_.solve(topo, sub_tm, &local.solve, &residual);
    for (std::size_t k = 0; k < positions.size(); ++k) {
      merged.allocations[positions[k]] = std::move(sub.allocations[k]);
    }
  }

  local.incremental = true;
  ++incremental_solves_;
  m_solves.inc();
  if (options_.diff_check) run_checker(topo, tm, merged, local);
  adopt(topo, tm, merged);
  return finish(std::move(merged));
}

}  // namespace dsdn::te
