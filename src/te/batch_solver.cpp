#include "te/batch_solver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <mutex>
#include <unordered_map>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "te/dijkstra.hpp"
#include "te/parallel_solver.hpp"

namespace dsdn::te {

namespace {

using Clock = std::chrono::steady_clock;
constexpr double kInf = std::numeric_limits<double>::infinity();

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

BatchGraph build_graph(const topo::Topology& topo) {
  BatchGraph g;
  g.num_nodes = static_cast<std::uint32_t>(topo.num_nodes());
  g.link_src.resize(topo.num_links());
  for (std::size_t l = 0; l < topo.num_links(); ++l)
    g.link_src[l] = topo.link(static_cast<topo::LinkId>(l)).src;
  g.row_offsets.reserve(g.num_nodes + 1);
  g.row_offsets.push_back(0);
  for (std::uint32_t u = 0; u < g.num_nodes; ++u) {
    // out_links order is the legacy Dijkstra's relaxation order; keeping
    // it is what makes equal-cost tie-breaks match. Down links are
    // excluded up front (the solver always requires up, and link state
    // is immutable for the duration of a solve).
    for (topo::LinkId lid : topo.node(u).out_links) {
      const topo::Link& l = topo.link(lid);
      if (!l.up) continue;
      g.edge_dst.push_back(l.dst);
      g.edge_link.push_back(lid);
      g.edge_cost.push_back(l.igp_metric);
    }
    g.row_offsets.push_back(static_cast<std::uint32_t>(g.edge_dst.size()));
  }
  return g;
}

class CpuBatchBackend final : public BatchSolverBackend {
 public:
  const char* name() const override { return "cpu"; }

  void sssp(const BatchGraph& g, const std::vector<double>& residual,
            double min_residual, std::uint32_t src,
            const std::uint32_t* targets, std::size_t num_targets,
            SsspWorkspace& ws) const override {
    ws.ensure(g.num_nodes);
    if (++ws.epoch == 0) {  // stamp wrap: one full clear every 2^32 runs
      std::fill(ws.stamp.begin(), ws.stamp.end(), 0u);
      std::fill(ws.target_stamp.begin(), ws.target_stamp.end(), 0u);
      ws.epoch = 1;
    }
    const std::uint32_t epoch = ws.epoch;
    std::size_t remaining = 0;
    for (std::size_t i = 0; i < num_targets; ++i) {
      if (ws.target_stamp[targets[i]] != epoch) {
        ws.target_stamp[targets[i]] = epoch;
        ++remaining;
      }
    }
    auto touch = [&](std::uint32_t v) {
      if (ws.stamp[v] != epoch) {
        ws.stamp[v] = epoch;
        ws.dist[v] = kInf;
        ws.pred_link[v] = topo::kInvalidLink;
      }
    };
    const auto cmp = std::greater<std::pair<double, std::uint32_t>>{};
    ws.heap.clear();
    touch(src);
    ws.dist[src] = 0.0;
    ws.heap.emplace_back(0.0, src);
    while (!ws.heap.empty() && remaining > 0) {
      std::pop_heap(ws.heap.begin(), ws.heap.end(), cmp);
      const auto [d, u] = ws.heap.back();
      ws.heap.pop_back();
      // (dist, node) keys are unique -- relaxation requires strict
      // improvement -- so pops follow the same total order as the legacy
      // std::priority_queue, and a node is finalized on its first
      // non-stale pop.
      if (d > ws.dist[u]) continue;
      if (ws.target_stamp[u] == epoch) {
        ws.target_stamp[u] = epoch - 1;  // finalize each target once
        if (--remaining == 0) break;
      }
      for (std::uint32_t e = g.row_offsets[u]; e < g.row_offsets[u + 1];
           ++e) {
        if (residual[g.edge_link[e]] < min_residual) continue;
        const std::uint32_t v = g.edge_dst[e];
        const double nd = d + g.edge_cost[e];
        touch(v);
        if (nd < ws.dist[v]) {
          ws.dist[v] = nd;
          ws.pred_link[v] = g.edge_link[e];
          ws.heap.emplace_back(nd, v);
          std::push_heap(ws.heap.begin(), ws.heap.end(), cmp);
        }
      }
    }
  }
};

// Walks the predecessor chain dst -> src. Only targets of the preceding
// sssp() call may be extracted: their chains consist of finalized nodes
// and are therefore stable even under early stop.
void extract_links(const BatchGraph& g, const SsspWorkspace& ws,
                   std::uint32_t src, std::uint32_t dst,
                   std::vector<topo::LinkId>& out) {
  out.clear();
  if (!ws.reached(dst)) return;
  std::uint32_t at = dst;
  while (at != src) {
    const std::uint32_t lid = ws.pred_link[at];
    if (lid == topo::kInvalidLink) {
      out.clear();
      return;
    }
    out.push_back(lid);
    at = g.link_src[lid];
  }
  std::reverse(out.begin(), out.end());
}

// Mutex-guarded freelist: SSSP scratch scales with concurrency, not with
// the number of distinct sources.
class WorkspacePool {
 public:
  std::unique_ptr<SsspWorkspace> acquire() {
    std::lock_guard<std::mutex> lock(mu_);
    if (free_.empty()) return std::make_unique<SsspWorkspace>();
    auto ws = std::move(free_.back());
    free_.pop_back();
    return ws;
  }
  void release(std::unique_ptr<SsspWorkspace> ws) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(ws));
  }

 private:
  std::mutex mu_;
  std::vector<std::unique_ptr<SsspWorkspace>> free_;
};

std::uint64_t hash_links(const std::vector<topo::LinkId>& links) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a over link ids
  for (topo::LinkId l : links) {
    h ^= l;
    h *= 1099511628211ull;
  }
  return h;
}

// One demand's grant history entry; per-allocation histories are
// singly-linked chains through one flat array (newest first).
struct GrantEntry {
  std::uint32_t path_id;
  std::uint32_t prev;  // previous entry for the same allocation
  double rate;
};
constexpr std::uint32_t kNoEntry = std::numeric_limits<std::uint32_t>::max();

// A (source, residual-rank) search bucket: every member demand has the
// same usable-link set this round, so one multi-destination SSSP serves
// all of them exactly.
struct Bucket {
  std::uint32_t src = 0;
  double min_residual = 0.0;  // any member's threshold (all equivalent)
  std::vector<std::uint32_t> slots;
  std::vector<std::uint32_t> targets;
};

}  // namespace

void SsspWorkspace::ensure(std::uint32_t num_nodes) {
  if (dist.size() < num_nodes) {
    dist.resize(num_nodes);
    pred_link.resize(num_nodes);
    stamp.resize(num_nodes, 0u);
    target_stamp.resize(num_nodes, 0u);
  }
}

const BatchSolverBackend& cpu_batch_backend() {
  static const CpuBatchBackend backend;
  return backend;
}

Solution BatchSolver::solve(
    const topo::Topology& topo, const traffic::TrafficMatrix& tm,
    SolveStats* stats, const std::vector<double>* residual_override) const {
  DSDN_TRACE_SPAN("te.batch.solve");
  auto& reg = obs::Registry::global();
  static obs::Counter& m_solves = reg.counter("te.batch.solves");
  static obs::Counter& m_batches = reg.counter("te.batch.sssp_batches");
  static obs::Counter& m_batched = reg.counter("te.batch.batched_searches");
  static obs::Counter& m_rechecks = reg.counter("te.batch.grant_rechecks");
  static obs::Counter& m_reused = reg.counter("te.batch.path_reuses");
  static obs::Counter& m_interned = reg.counter("te.batch.interned_paths");
  static obs::Histogram& m_fill = reg.histogram("te.batch.batch_fill");

  SolveStats local_stats;

  Solution solution;
  solution.allocations.reserve(tm.size());
  for (const traffic::Demand& d : tm.demands()) {
    Allocation a;
    a.demand = d;
    solution.allocations.push_back(std::move(a));
  }

  std::vector<double> residual;
  if (residual_override) {
    residual = *residual_override;
  } else {
    residual.resize(topo.num_links());
    for (std::size_t l = 0; l < topo.num_links(); ++l)
      residual[l] = topo.link(static_cast<topo::LinkId>(l)).capacity_gbps;
  }
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    if (!topo.link(static_cast<topo::LinkId>(l)).up) residual[l] = 0.0;
  }

  ThreadPool local_pool(options_.pool ? 1 : options_.num_threads);
  const ThreadPool& pool = options_.pool ? *options_.pool : local_pool;

  // Clock starts after pool setup, matching the legacy backend.
  const auto t_start = Clock::now();

  const BatchGraph graph = build_graph(topo);
  const BatchSolverBackend& backend =
      options_.batch_backend ? *options_.batch_backend : cpu_batch_backend();

  WorkspacePool ws_pool;
  SsspWorkspace grant_ws;  // dedicated scratch for serialized re-searches

  // Interned paths: concatenated link sequences plus offsets; the id is
  // the insertion index. Duplicate detection via hash buckets with full
  // sequence compare on collision.
  std::vector<topo::LinkId> path_pool;
  std::vector<std::uint32_t> path_offsets{0};
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> path_by_hash;
  auto path_span = [&](std::uint32_t id) {
    return std::pair<const topo::LinkId*, const topo::LinkId*>{
        path_pool.data() + path_offsets[id],
        path_pool.data() + path_offsets[id + 1]};
  };
  auto intern_path = [&](const std::vector<topo::LinkId>& links) {
    auto& bucket = path_by_hash[hash_links(links)];
    for (std::uint32_t id : bucket) {
      auto [b, e] = path_span(id);
      if (static_cast<std::size_t>(e - b) == links.size() &&
          std::equal(b, e, links.begin()))
        return id;
    }
    const auto id = static_cast<std::uint32_t>(path_offsets.size() - 1);
    path_pool.insert(path_pool.end(), links.begin(), links.end());
    path_offsets.push_back(static_cast<std::uint32_t>(path_pool.size()));
    bucket.push_back(id);
    m_interned.inc();
    return id;
  };

  // Flat grant log, chained per allocation (replaces the legacy
  // per-allocation std::map<links, double>).
  std::vector<GrantEntry> grant_entries;
  std::vector<std::uint32_t> grant_head(solution.allocations.size(), kNoEntry);
  auto accumulate_grant = [&](std::size_t alloc, std::uint32_t path_id,
                              double grant) {
    for (std::uint32_t at = grant_head[alloc]; at != kNoEntry;
         at = grant_entries[at].prev) {
      if (grant_entries[at].path_id == path_id) {
        grant_entries[at].rate += grant;
        return;
      }
    }
    grant_entries.push_back({path_id, grant_head[alloc], grant});
    grant_head[alloc] = static_cast<std::uint32_t>(grant_entries.size() - 1);
  };

  // Per-class demand state, SoA keyed by slot.
  std::vector<std::size_t> alloc_index;
  std::vector<std::uint32_t> slot_src, slot_dst;
  std::vector<double> remaining, satisfied_below, threshold;
  std::vector<std::vector<topo::LinkId>> round_path;
  // The sliver threshold round_path was last searched or validated at;
  // negative = no cached path yet.
  std::vector<double> cached_at;

  // Round-local scratch, reused across rounds.
  std::vector<std::uint32_t> active, next_active, search_list;
  std::vector<double> rank_values;
  std::vector<Bucket> buckets;
  std::unordered_map<std::uint64_t, std::uint32_t> bucket_of;

  // Cross-class path carry: residuals decrease monotonically across the
  // whole solve, so a path validated in an earlier class obeys the same
  // reuse invariant as one from an earlier round. Classes share (src,
  // dst) pairs, which turns class boundaries from cold restarts into
  // warm ones. Keyed (src << 32) | dst into parallel arrays.
  std::unordered_map<std::uint64_t, std::uint32_t> carry_of;
  std::vector<std::vector<topo::LinkId>> carry_path;
  std::vector<double> carry_at;

  for (int cls = 0; cls < metrics::kNumPriorityClasses; ++cls) {
    alloc_index.clear();
    slot_src.clear();
    slot_dst.clear();
    remaining.clear();
    satisfied_below.clear();
    threshold.clear();
    round_path.clear();
    cached_at.clear();
    active.clear();
    for (std::size_t i = 0; i < solution.allocations.size(); ++i) {
      const auto& d = solution.allocations[i].demand;
      if (static_cast<int>(d.priority) == cls &&
          d.rate_gbps > options_.epsilon_gbps) {
        active.push_back(static_cast<std::uint32_t>(alloc_index.size()));
        alloc_index.push_back(i);
        slot_src.push_back(d.src);
        slot_dst.push_back(d.dst);
        remaining.push_back(d.rate_gbps);
        satisfied_below.push_back(
            std::max(options_.epsilon_gbps,
                     options_.satisfied_tolerance * d.rate_gbps));
        threshold.push_back(0.0);
        round_path.emplace_back();
        cached_at.push_back(-1.0);
        if (!options_.cache) {
          const std::uint64_t key =
              (static_cast<std::uint64_t>(d.src) << 32) | d.dst;
          const auto it = carry_of.find(key);
          if (it != carry_of.end()) {
            round_path.back() = carry_path[it->second];
            cached_at.back() = carry_at[it->second];
          }
        }
      }
    }

    std::size_t round = 0;
    while (!active.empty() && round < options_.max_rounds) {
      ++round;
      ++local_stats.rounds;

      double max_remaining = 0.0;
      for (std::uint32_t slot : active)
        max_remaining = std::max(max_remaining, remaining[slot]);
      const double quantum = detail::round_quantum(options_, max_remaining);
      for (std::uint32_t slot : active)
        threshold[slot] =
            detail::sliver_threshold(options_, quantum, remaining[slot]);

      // ---- Step 1: batched path search ----
      DSDN_TRACE_SPAN("te.batch.round");
      const auto t_search = Clock::now();
      if (options_.cache) {
        // The cache's primary table already amortizes the Dijkstra;
        // delegate per demand exactly as the legacy backend does.
        DSDN_TRACE_SPAN("te.batch.path_search");
        const PathCache* cache = options_.cache;
        pool.parallel_for(active.size(), [&](std::size_t i) {
          const std::uint32_t slot = active[i];
          SpConstraints c;
          c.residual_gbps = &residual;
          c.min_residual = threshold[slot];
          std::optional<Path> p =
              cache->get(topo, slot_src[slot], slot_dst[slot], c);
          round_path[slot] = p ? std::move(p->links)
                               : std::vector<topo::LinkId>{};
        });
      } else {
        DSDN_TRACE_SPAN("te.batch.path_search");
        // Residual-rank values: thresholds t1 <= t2 see the same
        // usable-link set iff no link residual lies in [t1, t2), so the
        // rank of a threshold among the sorted distinct sub-threshold
        // residuals is an exact equivalence key -- used both to bucket
        // fresh searches and to validate cached round paths. value_cap
        // bounds every threshold in play this round (current thresholds
        // via t_max, cached ones explicitly).
        const double t_max =
            detail::sliver_threshold(options_, quantum, max_remaining);
        double value_cap = t_max;
        for (std::uint32_t slot : active)
          value_cap = std::max(value_cap, cached_at[slot]);
        rank_values.clear();
        for (std::size_t e = 0; e < graph.edge_link.size(); ++e) {
          const double r = residual[graph.edge_link[e]];
          if (r < value_cap) rank_values.push_back(r);
        }
        std::sort(rank_values.begin(), rank_values.end());
        rank_values.erase(
            std::unique(rank_values.begin(), rank_values.end()),
            rank_values.end());

        // Path reuse: within a class, residuals only decrease, so the
        // usable-link set for this demand can only have grown through
        // links whose residual now sits in [threshold, cached_at). If
        // none does and the cached path still clears the new threshold,
        // a fresh Dijkstra would reproduce the cached path bit-exactly
        // (shrinking the usable set can neither beat it on cost nor
        // steal its tie-breaks) -- skip the search.
        search_list.clear();
        std::size_t reused = 0;
        for (std::uint32_t slot : active) {
          bool reuse = false;
          if (cached_at[slot] >= 0.0) {
            const double t_new = threshold[slot];
            const auto lo = std::lower_bound(rank_values.begin(),
                                             rank_values.end(), t_new);
            const auto hi =
                std::lower_bound(lo, rank_values.end(), cached_at[slot]);
            if (lo == hi) {
              double bn = kInf;
              for (topo::LinkId l : round_path[slot])
                bn = std::min(bn, residual[l]);
              reuse = bn >= t_new;
            }
          }
          if (reuse) {
            cached_at[slot] = threshold[slot];
            ++reused;
          } else {
            search_list.push_back(slot);
          }
        }
        m_reused.add(reused);

        buckets.clear();
        bucket_of.clear();
        for (std::uint32_t slot : search_list) {
          const auto rank = static_cast<std::uint64_t>(
              std::lower_bound(rank_values.begin(), rank_values.end(),
                               threshold[slot]) -
              rank_values.begin());
          const std::uint64_t key =
              (static_cast<std::uint64_t>(slot_src[slot]) << 32) | rank;
          auto [it, inserted] = bucket_of.try_emplace(
              key, static_cast<std::uint32_t>(buckets.size()));
          if (inserted) {
            buckets.emplace_back();
            buckets.back().src = slot_src[slot];
            buckets.back().min_residual = threshold[slot];
          }
          Bucket& b = buckets[it->second];
          b.slots.push_back(slot);
          b.targets.push_back(slot_dst[slot]);
        }

        pool.parallel_for(buckets.size(), [&](std::size_t bi) {
          const Bucket& b = buckets[bi];
          auto ws = ws_pool.acquire();
          backend.sssp(graph, residual, b.min_residual, b.src,
                       b.targets.data(), b.targets.size(), *ws);
          for (std::uint32_t slot : b.slots) {
            extract_links(graph, *ws, b.src, slot_dst[slot],
                          round_path[slot]);
            cached_at[slot] = threshold[slot];
          }
          ws_pool.release(std::move(ws));
        });
        m_batches.add(buckets.size());
        m_batched.add(search_list.size());
        for (const Bucket& b : buckets)
          m_fill.record(static_cast<double>(b.slots.size()));
      }
      // Searches actually performed (reused paths are free, so this can
      // undercut the legacy backend's one-per-active-demand count).
      local_stats.path_searches +=
          options_.cache ? active.size() : search_list.size();
      local_stats.path_search_time_s += seconds_since(t_search);

      // ---- Step 2: serialized grant kernel ----
      // Same order, arithmetic, and freeze rules as the legacy backend;
      // paths are contiguous LinkId runs so the bottleneck scan and the
      // residual subtraction are flat-array loops.
      DSDN_TRACE_SPAN("te.batch.waterfill");
      const auto t_alloc = Clock::now();
      next_active.clear();
      for (std::uint32_t slot : active) {
        Allocation& alloc = solution.allocations[alloc_index[slot]];
        std::vector<topo::LinkId>& rp = round_path[slot];
        if (rp.empty()) {
          ++local_stats.frozen_no_path;
          continue;
        }
        double bottleneck = kInf;
        for (topo::LinkId l : rp) bottleneck = std::min(bottleneck, residual[l]);
        if (bottleneck < threshold[slot]) {
          // Earlier demands drained this round's path below the residual
          // floor it was searched with; re-search at current residuals
          // rather than granting a sub-sliver and spinning.
          m_rechecks.inc();
          ++local_stats.path_searches;
          if (options_.cache) {
            SpConstraints c;
            c.residual_gbps = &residual;
            c.min_residual = threshold[slot];
            std::optional<Path> p = options_.cache->get(
                topo, slot_src[slot], slot_dst[slot], c);
            rp = p ? std::move(p->links) : std::vector<topo::LinkId>{};
          } else {
            const std::uint32_t target = slot_dst[slot];
            backend.sssp(graph, residual, threshold[slot], slot_src[slot],
                         &target, 1, grant_ws);
            extract_links(graph, grant_ws, slot_src[slot], target, rp);
            cached_at[slot] = threshold[slot];
          }
          if (rp.empty()) {
            ++local_stats.frozen_no_path;
            continue;
          }
          bottleneck = kInf;
          for (topo::LinkId l : rp)
            bottleneck = std::min(bottleneck, residual[l]);
        }
        double grant = std::min({quantum, remaining[slot], bottleneck});
        if (remaining[slot] - grant <= satisfied_below[slot] &&
            bottleneck >= remaining[slot]) {
          grant = remaining[slot];
        }
        if (grant > options_.epsilon_gbps) {
          for (topo::LinkId l : rp) residual[l] -= grant;
          accumulate_grant(alloc_index[slot], intern_path(rp), grant);
          alloc.allocated_gbps += grant;
          remaining[slot] -= grant;
        }
        if (remaining[slot] > satisfied_below[slot])
          next_active.push_back(slot);
      }
      std::swap(active, next_active);
      local_stats.allocation_time_s += seconds_since(t_alloc);
    }
    local_stats.frozen_round_cap += active.size();
    if (!options_.cache) {
      for (std::size_t slot = 0; slot < alloc_index.size(); ++slot) {
        // An empty path records "nothing found", which a later class at
        // a lower threshold must not inherit; keep the older positive
        // entry instead (still valid -- validation re-proves it).
        if (cached_at[slot] < 0.0 || round_path[slot].empty()) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(slot_src[slot]) << 32) |
            slot_dst[slot];
        const auto [it, inserted] = carry_of.try_emplace(
            key, static_cast<std::uint32_t>(carry_path.size()));
        if (inserted) {
          carry_path.emplace_back();
          carry_at.push_back(0.0);
        }
        carry_path[it->second] = std::move(round_path[slot]);
        carry_at[it->second] = cached_at[slot];
      }
    }
  }
  local_stats.frozen_demands =
      local_stats.frozen_no_path + local_stats.frozen_round_cap;

  // Finalize: gather each allocation's grant chain, merge order already
  // guaranteed by accumulate_grant, and emit paths sorted by link
  // sequence -- the iteration order of the legacy per-allocation map.
  std::vector<std::pair<std::uint32_t, double>> entries;
  for (std::size_t i = 0; i < solution.allocations.size(); ++i) {
    Allocation& a = solution.allocations[i];
    if (a.allocated_gbps <= options_.epsilon_gbps) {
      a.allocated_gbps = 0.0;
      continue;
    }
    entries.clear();
    for (std::uint32_t at = grant_head[i]; at != kNoEntry;
         at = grant_entries[at].prev)
      entries.emplace_back(grant_entries[at].path_id, grant_entries[at].rate);
    std::sort(entries.begin(), entries.end(),
              [&](const auto& lhs, const auto& rhs) {
                auto [lb, le] = path_span(lhs.first);
                auto [rb, re] = path_span(rhs.first);
                return std::lexicographical_compare(lb, le, rb, re);
              });
    a.paths.reserve(entries.size());
    for (const auto& [path_id, rate] : entries) {
      auto [b, e] = path_span(path_id);
      WeightedPath wp;
      wp.path.links.assign(b, e);
      wp.weight = rate / a.allocated_gbps;
      a.paths.push_back(std::move(wp));
    }
  }

  const ThreadPool::Stats pool_stats = pool.stats();
  local_stats.pool_parallel_calls = pool_stats.parallel_calls;
  local_stats.pool_tasks = pool_stats.tasks_executed;
  local_stats.pool_imbalance = pool_stats.imbalance();

  local_stats.wall_time_s = seconds_since(t_start);
  m_solves.inc();
  if (stats) *stats = local_stats;
  return solution;
}

}  // namespace dsdn::te
