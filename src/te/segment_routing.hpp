#pragma once

// Segment routing over the IS-IS underlay (§3.2 coexistence, Fig 8/10/15
// trade study): instead of a strict per-link label stack, a headend
// pushes 1-3 *node segments* (middlepoints, then the egress). Each
// segment is forwarded over the underlay's ECMP shortest paths toward
// the segment target; the label pops at the target and the next segment
// takes over. The stack is tiny (<= 3 labels vs up to 12) and the
// transit state is per-*target* instead of per-route, at the price of a
// wider blast radius: a link flap reroutes every flow whose ECMP DAG
// used it, not just the strict routes pinned through it.
//
// Everything here is a pure function of (topology view, options), so
// every dSDN router running it on an identical NodeStateDB computes the
// identical placement -- the consensus-free property holds for SR
// exactly as it does for strict TE.

#include <limits>

#include "te/solver.hpp"
#include "te/types.hpp"

namespace dsdn::te {

struct SrOptions {
  // Max node segments per route, egress included (the TLV/encoder cap).
  std::size_t max_segments = 3;
  // Centrality-ranked middlepoint pool: single middlepoints come from the
  // top `num_middlepoints`, middlepoint *pairs* from the top
  // `pair_middlepoints` (quadratic, so a smaller pool).
  std::size_t num_middlepoints = 8;
  std::size_t pair_middlepoints = 4;
  // ECMP expansion caps: DFS paths enumerated per segment, and concrete
  // underlay paths kept per whole segment route (weights renormalize).
  std::size_t max_paths_per_segment = 4;
  std::size_t max_expansions_per_route = 8;
  // Candidate segment routes considered per demand.
  std::size_t max_candidates = 12;
};

// All-pairs shortest-path distances and ECMP DAG membership over the
// *up* links of a topology view, igp_metric cost. Built once per solve
// (one reverse Dijkstra per target).
class SrUnderlay {
 public:
  static SrUnderlay build(const topo::Topology& topo);

  std::size_t num_nodes() const { return n_; }
  // +inf when t is unreachable from s over up links.
  double dist(topo::NodeId s, topo::NodeId t) const {
    return dist_to_[t][s];
  }
  bool reachable(topo::NodeId s, topo::NodeId t) const {
    return dist(s, t) < kInf;
  }
  // ECMP DAG members at `u` toward `t`: up out-links l with
  // metric(l) + dist(l.dst, t) <= dist(u, t) + eps, sorted by link id.
  // Empty when u == t or t is unreachable.
  std::vector<topo::LinkId> ecmp_members(const topo::Topology& topo,
                                         topo::NodeId u,
                                         topo::NodeId t) const;

  static constexpr double kInf = std::numeric_limits<double>::infinity();

 private:
  std::size_t n_ = 0;
  // dist_to_[t][u] = shortest distance u -> t (reverse Dijkstra per t).
  std::vector<std::vector<double>> dist_to_;
};

// Comparison slack for "on a shortest path" tests, scaled to the
// distance magnitude so metric sums compare stably across fp orderings.
inline double sr_eps(double dist) { return 1e-9 * (dist > 1.0 ? dist : 1.0); }

// Middlepoint candidates ranked by coverage centrality: score(v) = number
// of ordered pairs (s, t), s != t, v != s, v != t, for which v lies on a
// shortest s->t path (dist(s,v) + dist(v,t) <= dist(s,t) + eps). Ties
// break toward the lower node id; top `k` returned in rank order.
std::vector<topo::NodeId> rank_middlepoints(const SrUnderlay& underlay,
                                            std::size_t k);

// A candidate segment route for one demand: the node-segment stack
// (middlepoints then egress, outermost first) and its underlay cost.
struct SegmentRoute {
  std::vector<topo::NodeId> segments;
  double cost = 0.0;
};

// Candidate segment routes src -> dst, ordered by (cost, #segments,
// lexicographic segments): the direct route [dst], one-middlepoint
// routes [m, dst], and two-middlepoint routes [m1, m2, dst], drawn from
// `middlepoints` (rank order, from rank_middlepoints).
std::vector<SegmentRoute> segment_route_candidates(
    const SrUnderlay& underlay, topo::NodeId src, topo::NodeId dst,
    const std::vector<topo::NodeId>& middlepoints, const SrOptions& opts);

// Expands a segment route into concrete loop-free underlay paths with
// per-path split fractions (summing to 1): per-segment DFS over the ECMP
// DAG (members in link-id order, frac = product of per-node uniform
// splits, capped + renormalized), then a capped cross-product across
// segments. Concatenations that revisit a node are dropped (Path
// feasibility requires loop-freedom) and the rest renormalized. Empty
// when no loop-free expansion exists.
std::vector<WeightedPath> expand_segment_route(
    const topo::Topology& topo, const SrUnderlay& underlay, topo::NodeId src,
    const std::vector<topo::NodeId>& segments, const SrOptions& opts);

// Max-min fair waterfill over segment-space candidates: the same
// progressive-filling shape as te::Solver (strict priority classes,
// round quantum, sliver freeze) but each demand's path choices are its
// segment routes, and capacity is charged against the routes' ECMP
// expansions. Deterministic; allocations come back in tm order with
// WeightedPath::segments set.
class SrSolver {
 public:
  explicit SrSolver(SolverOptions options = {}, SrOptions sr = {})
      : options_(options), sr_(sr) {}

  Solution solve(const topo::Topology& topo, const traffic::TrafficMatrix& tm,
                 const std::vector<double>* residual_override = nullptr) const;

  const SrOptions& sr_options() const { return sr_; }

 private:
  SolverOptions options_;
  SrOptions sr_;
};

}  // namespace dsdn::te
