#pragma once

// Shortest-path pre-computation cache (§5.3, Fig 15).
//
// The solver originally recomputed the shortest path whenever available
// capacity changed. Instead we pre-compute the capacity-oblivious shortest
// path for every (src, dst) pair once per topology; at runtime the solver
// first checks whether the cached path still has the required residual
// capacity on every hop, and only falls back to a constrained Dijkstra
// when it does not. The cache stays valid across any capacity change --
// including full loss and restoration of a link -- and only needs
// rebuilding when a *new link* is added (a network upgrade event).

#include <atomic>
#include <optional>

#include "te/dijkstra.hpp"

namespace dsdn::te {

class PathCache {
 public:
  // Pre-computes all-pairs shortest paths on the given topology,
  // ignoring capacity and link up/down state.
  explicit PathCache(const topo::Topology& topo);

  // Returns the cached shortest path if it satisfies the constraints
  // (links up, residual >= min_residual on every hop); otherwise runs a
  // constrained Dijkstra. nullopt when no feasible path exists at all.
  std::optional<Path> get(const topo::Topology& topo, topo::NodeId src,
                          topo::NodeId dst, const SpConstraints& c) const;

  // Hit counters, for the Fig 15 report.
  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  void reset_counters();

 private:
  std::size_t index(topo::NodeId src, topo::NodeId dst) const {
    return static_cast<std::size_t>(src) * n_ + dst;
  }

  std::size_t n_;
  std::vector<Path> paths_;  // row-major (src, dst); empty = disconnected
  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace dsdn::te
