#pragma once

// Shortest-path pre-computation cache (§5.3, Fig 15).
//
// The solver originally recomputed the shortest path whenever available
// capacity changed. Instead we pre-compute the capacity-oblivious shortest
// path for every (src, dst) pair once per topology; at runtime the solver
// first checks whether the cached path still has the required residual
// capacity on every hop, and only falls back to a constrained Dijkstra
// when it does not. The cache stays valid across any capacity change --
// including full loss and restoration of a link -- and only needs
// rebuilding when link *metrics* change or a new link is added (a network
// upgrade event): call invalidate() then.
//
// Miss memoization: the constrained fallback result is remembered per
// (src, dst). On the next miss for the same pair -- the common case, since
// a saturated shortest path stays saturated across waterfill rounds --
// the remembered repair path is revalidated against the current
// constraints and returned when still feasible, instead of rerunning
// Dijkstra. Like the primary entries, repair entries are never trusted
// blindly: every returned path passed the feasibility check against the
// caller's constraints, so memoization never changes feasibility.
// invalidate() starts a new epoch, discarding all repair entries.
//
// Thread safety: get() is called concurrently from the solver's
// path-search workers and may overlap invalidate(). The primary table is
// an immutable snapshot behind a mutex-guarded shared_ptr: invalidate()
// builds the new table off to the side and swaps the pointer in
// wholesale, so a reader either sees the old table or the new one, never
// a partial rebuild. (A plain mutex around the pointer copy, not
// std::atomic<shared_ptr>: libstdc++'s _Sp_atomic lock-bit protocol is
// opaque to TSan, and the critical section is two refcount ops.)
// Repair entries are guarded by a shared_mutex, counters are atomics.

#include <atomic>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>

#include "te/dijkstra.hpp"

namespace dsdn::te {

class PathCache {
 public:
  // Pre-computes all-pairs shortest paths on the given topology,
  // ignoring capacity and link up/down state.
  explicit PathCache(const topo::Topology& topo);

  // Returns the cached shortest path if it satisfies the constraints
  // (links up, residual >= min_residual on every hop); otherwise the
  // memoized repair path for the pair if that is feasible; otherwise runs
  // a constrained Dijkstra and memoizes it. nullopt when no feasible path
  // exists at all.
  std::optional<Path> get(const topo::Topology& topo, topo::NodeId src,
                          topo::NodeId dst, const SpConstraints& c) const;

  // Rebuilds the primary all-pairs entries against the (possibly
  // metric-changed or link-grown) topology and drops every memoized
  // repair entry. Safe to run while other threads call get(): in-flight
  // lookups finish against the snapshot they loaded.
  void invalidate(const topo::Topology& topo);

  // Number of invalidate() calls; repair entries never outlive an epoch.
  std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_relaxed);
  }

  // Hit counters, for the Fig 15 report. A get() resolves to exactly one
  // of: primary hit, repair hit (memoized miss), or miss (full Dijkstra).
  std::size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::size_t repair_hits() const {
    return repair_hits_.load(std::memory_order_relaxed);
  }
  std::size_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  void reset_counters();

 private:
  // One immutable all-pairs snapshot; replaced wholesale by invalidate().
  struct Table {
    std::size_t n = 0;
    std::vector<Path> paths;  // row-major (src, dst); empty = disconnected

    std::size_t index(topo::NodeId src, topo::NodeId dst) const {
      return static_cast<std::size_t>(src) * n + dst;
    }
  };

  static std::shared_ptr<const Table> build_table(
      const topo::Topology& topo);

  // Pin the current snapshot (refcount bump under the pointer mutex).
  std::shared_ptr<const Table> snapshot() const {
    std::lock_guard<std::mutex> lock(table_mu_);
    return table_;
  }

  mutable std::mutex table_mu_;
  std::shared_ptr<const Table> table_;
  std::atomic<std::uint64_t> epoch_{0};

  // Memoized constrained-fallback paths; empty = nothing memoized (or
  // the last fallback found no path, which is never memoized).
  mutable std::shared_mutex repair_mu_;
  mutable std::vector<Path> repair_;

  mutable std::atomic<std::size_t> hits_{0};
  mutable std::atomic<std::size_t> repair_hits_{0};
  mutable std::atomic<std::size_t> misses_{0};
};

}  // namespace dsdn::te
