#pragma once

// Yen's k-shortest loopless paths. Used by the FRR multi-path bypass
// strategies (Appendix C) and available to the solver for candidate-path
// generation.

#include <vector>

#include "te/dijkstra.hpp"

namespace dsdn::te {

// Up to k loopless paths src->dst in nondecreasing IGP-cost order,
// honoring the constraints. Fewer than k are returned when the graph
// doesn't admit them.
std::vector<Path> k_shortest_paths(const topo::Topology& topo,
                                   topo::NodeId src, topo::NodeId dst,
                                   std::size_t k,
                                   const SpConstraints& c = {});

}  // namespace dsdn::te
