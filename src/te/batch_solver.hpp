#pragma once

// Structure-of-arrays batch TE solver (the GATE direction, ROADMAP
// item 2): the same approximate max-min waterfill as te::Solver's legacy
// backend, restructured so the per-round path-search step runs one
// batched multi-destination SSSP per (source, residual-rank) bucket over
// flat CSR arrays instead of one heap-allocating Dijkstra per demand.
//
// Bit-parity contract: without a PathCache, BatchSolver produces a
// Solution bit-identical to the legacy backend for any (topology,
// demands, options, thread count). The load-bearing arguments:
//
//  * A Dijkstra run popping (dist, node) pairs in total order finalizes
//    each node exactly once, and a finalized target's predecessor chain
//    consists only of already-finalized nodes -- so continuing the run
//    past one target (to finalize the bucket's remaining targets) can
//    never change an extracted path. One multi-destination run therefore
//    yields exactly the per-demand paths of N single-target runs.
//  * Two demands share a usable-link set iff no link residual falls in
//    the half-open interval between their sliver thresholds. Bucketing
//    by (source, rank of threshold among sub-threshold link residuals)
//    makes sharing exact, not approximate.
//  * CSR adjacency is laid out in topo.node(u).out_links order and the
//    heap key is (dist, node), so relaxation and pop order -- and hence
//    tie-breaks among equal-cost paths -- match te/dijkstra.cpp.
//  * Grants accumulate into flat (path_id, rate) runs in round order and
//    finalize in lexicographic link-sequence order, reproducing the
//    legacy per-allocation std::map<links, double> both in float
//    summation order and in output path order.
//
// With a PathCache the search step delegates to PathCache::get per
// demand exactly as the legacy backend does (the cache's primary table
// already amortizes the Dijkstra), keeping cached parity trivially.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "te/solver.hpp"
#include "te/types.hpp"

namespace dsdn::te {

// Immutable per-solve CSR view of the topology, restricted to up links
// when the solver's constraints require up (they always do). SoA so an
// accelerator backend can upload it wholesale.
struct BatchGraph {
  std::uint32_t num_nodes = 0;
  std::vector<std::uint32_t> row_offsets;  // num_nodes + 1
  std::vector<std::uint32_t> edge_dst;     // per edge: head node
  std::vector<std::uint32_t> edge_link;    // per edge: topo::LinkId
  std::vector<double> edge_cost;           // per edge: igp metric
  std::vector<std::uint32_t> link_src;     // per topo link: tail node
};

// Reusable scratch for one SSSP run: flat dist/pred arrays with epoch
// stamping (O(1) reset) and a d-ary heap vector. Workspaces are pooled
// per solve so memory scales with concurrency, not with the number of
// distinct sources.
struct SsspWorkspace {
  std::vector<double> dist;
  std::vector<std::uint32_t> pred_link;  // link arriving at each node
  std::vector<std::uint32_t> stamp;      // dist/pred valid iff == epoch
  std::vector<std::uint32_t> target_stamp;
  std::uint32_t epoch = 0;
  std::vector<std::pair<double, std::uint32_t>> heap;

  void ensure(std::uint32_t num_nodes);
  // True iff `node` was finalized by the last run (reachable).
  bool reached(std::uint32_t node) const {
    return stamp[node] == epoch;
  }
};

// Accelerator seam for the batch solver's path-search kernel. The CPU
// implementation below is the reference; a GPU backend slots in by
// overriding sssp() (upload residual deltas, run the frontier kernel,
// read back predecessor arrays) without touching the waterfill.
class BatchSolverBackend {
 public:
  virtual ~BatchSolverBackend() = default;
  virtual const char* name() const = 0;

  // One batched multi-destination shortest-path run: from `src`, over
  // links with residual[link] >= min_residual, finalizing at least every
  // reachable node in targets[0..num_targets) (early-stopping once all
  // are finalized). Results land in ws (dist/pred_link valid where
  // ws.reached()). Must be deterministic and safe to call concurrently
  // on distinct workspaces.
  virtual void sssp(const BatchGraph& g, const std::vector<double>& residual,
                    double min_residual, std::uint32_t src,
                    const std::uint32_t* targets, std::size_t num_targets,
                    SsspWorkspace& ws) const = 0;
};

// Process-wide CPU backend (stateless).
const BatchSolverBackend& cpu_batch_backend();

// Drop-in implementation behind Solver's options/solve API; Solver
// dispatches here when options.backend == SolverBackend::kBatch.
class BatchSolver {
 public:
  explicit BatchSolver(SolverOptions options) : options_(options) {}

  Solution solve(const topo::Topology& topo,
                 const traffic::TrafficMatrix& tm,
                 SolveStats* stats = nullptr,
                 const std::vector<double>* residual_override = nullptr) const;

  const SolverOptions& options() const { return options_; }

 private:
  SolverOptions options_;
};

}  // namespace dsdn::te
