#pragma once

// Dijkstra shortest paths and CSPF (constrained shortest path first):
// shortest path by IGP metric subject to a minimum-residual-capacity
// constraint -- the primitive under both the TE solver and the RSVP-TE
// baseline headend computation [48].

#include <optional>
#include <vector>

#include "te/types.hpp"

namespace dsdn::te {

struct SpConstraints {
  // When set, a link is usable only if residual_gbps[link] >= min_residual.
  const std::vector<double>* residual_gbps = nullptr;
  double min_residual = 0.0;
  // When set, link ids marked false are excluded (e.g. the protected link
  // in FRR bypass computation).
  const std::vector<char>* link_allowed = nullptr;
  // Skip links that are administratively/operationally down (default on).
  bool require_up = true;
};

// Shortest src->dst path under the constraints, or nullopt if disconnected.
std::optional<Path> shortest_path(const topo::Topology& topo,
                                  topo::NodeId src, topo::NodeId dst,
                                  const SpConstraints& c = {});

// One Dijkstra run: predecessors for all destinations from src.
// paths[d] is empty when d is unreachable (or d == src).
std::vector<Path> shortest_path_tree(const topo::Topology& topo,
                                     topo::NodeId src,
                                     const SpConstraints& c = {});

// Latency-weighted variant (cost = link delay), used for FRR latency
// inflation accounting.
std::optional<Path> min_latency_path(const topo::Topology& topo,
                                     topo::NodeId src, topo::NodeId dst,
                                     const SpConstraints& c = {});

}  // namespace dsdn::te
