#pragma once

// Sharded dSDN (§6, future work): the paper observes that EBB's and
// BlastShield's sharding principle is orthogonal to dSDN and could be
// combined with it -- "dSDN could run on a horizontally sharded network
// (akin to EBB), thus containing data plane failures to a single shard."
//
// This module realizes that combination. The WAN is built as K parallel
// *planes*: every router participates in every plane, but each plane has
// its own fibers (EBB builds parallel global networks the same way). Each
// plane runs a fully independent dSDN instance -- its own NSU flooding,
// StateDbs, TE, and FIBs -- so both control- and data-plane faults are
// contained: a fiber cut or a controller bug in plane k is invisible to
// the other K-1 planes. Flows are pinned to planes by entropy hash.

#include <memory>

#include "sim/emulation.hpp"

namespace dsdn::shard {

// Splits a base topology into `k` parallel planes: the node set is
// shared; every base duplex fiber appears once per plane with 1/k of the
// base capacity (EBB-style striping). Returns one topology per plane;
// link ids are plane-local.
std::vector<topo::Topology> make_planes(const topo::Topology& base,
                                        std::size_t k);

// Stable plane assignment for a flow key; demands and their packets must
// agree, so both sides hash (src, dst, class).
std::size_t plane_of_flow(topo::NodeId src, topo::NodeId dst,
                          metrics::PriorityClass priority, std::size_t k);

// Splits a traffic matrix across planes by flow-key hash.
std::vector<traffic::TrafficMatrix> split_demands(
    const traffic::TrafficMatrix& tm, std::size_t k);

class ShardedWan {
 public:
  // Builds k independent dSDN planes from the base network and demands.
  ShardedWan(const topo::Topology& base, const traffic::TrafficMatrix& tm,
             std::size_t k, sim::EmulationConfig config = {});

  std::size_t num_planes() const { return planes_.size(); }
  sim::DsdnEmulation& plane(std::size_t k) { return *planes_.at(k); }
  const sim::DsdnEmulation& plane(std::size_t k) const {
    return *planes_.at(k);
  }

  // Boots every plane's controllers. Planes are fully independent dSDN
  // instances (no shared state), so with n_threads > 1 their bootstraps
  // run concurrently on a te::ThreadPool; 1 (the default) runs inline.
  void bootstrap(std::size_t n_threads = 1);

  // Fails the plane-local fiber in plane `k` only (the other planes'
  // parallel fibers stay up).
  void fail_fiber_in_plane(std::size_t k, topo::LinkId fiber);
  void repair_fiber_in_plane(std::size_t k, topo::LinkId fiber);

  // Sends a packet toward router `dst` on the plane its flow key hashes
  // to -- the same plane that carries the flow's demand.
  dataplane::ForwardResult send_packet(
      topo::NodeId ingress, topo::NodeId dst,
      metrics::PriorityClass priority = metrics::PriorityClass::kHigh,
      std::uint64_t entropy = 1) const;

  // True iff every plane's views are internally converged. Planes never
  // exchange state with each other.
  bool all_planes_converged() const;

  // Demands assigned to plane k.
  const traffic::TrafficMatrix& plane_demands(std::size_t k) const {
    return demands_.at(k);
  }

 private:
  std::vector<std::unique_ptr<sim::DsdnEmulation>> planes_;
  std::vector<traffic::TrafficMatrix> demands_;
};

}  // namespace dsdn::shard
