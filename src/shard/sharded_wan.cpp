#include "shard/sharded_wan.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "te/parallel_solver.hpp"
#include "util/rng.hpp"

namespace dsdn::shard {

std::vector<topo::Topology> make_planes(const topo::Topology& base,
                                        std::size_t k) {
  if (k == 0) throw std::invalid_argument("make_planes: k == 0");
  // Striping is exact in integer kbps units so that the K planes' stripes
  // sum to the base fiber's capacity even when it does not divide evenly
  // (naive capacity/k loses up to (k-1)/k kbps per fiber). The remainder
  // units rotate across planes by duplex-fiber index, so no plane is
  // systematically fatter than the others.
  constexpr double kUnitsPerGbps = 1e6;  // 1 kbps resolution
  std::vector<topo::Topology> planes;
  planes.reserve(k);
  for (std::size_t p = 0; p < k; ++p) {
    topo::Topology plane;
    for (const topo::Node& n : base.nodes()) {
      plane.add_node(n.name, n.metro, n.gravity_weight);
    }
    std::size_t fiber_index = 0;
    for (const topo::Link& l : base.links()) {
      // One pass per duplex fiber.
      if (l.reverse == topo::kInvalidLink || l.id < l.reverse) {
        const auto units = static_cast<std::uint64_t>(
            std::llround(l.capacity_gbps * kUnitsPerGbps));
        std::uint64_t stripe = units / k;
        if ((p + fiber_index) % k < units % k) ++stripe;
        plane.add_duplex(l.src, l.dst,
                         static_cast<double>(stripe) / kUnitsPerGbps,
                         l.igp_metric, l.delay_s);
        ++fiber_index;
      }
    }
    plane.validate();
    planes.push_back(std::move(plane));
  }
  return planes;
}

std::size_t plane_of_flow(topo::NodeId src, topo::NodeId dst,
                          metrics::PriorityClass priority, std::size_t k) {
  const std::uint64_t key = (static_cast<std::uint64_t>(src) << 34) ^
                            (static_cast<std::uint64_t>(dst) << 4) ^
                            static_cast<std::uint64_t>(priority);
  return util::splitmix64(key) % k;
}

std::vector<traffic::TrafficMatrix> split_demands(
    const traffic::TrafficMatrix& tm, std::size_t k) {
  if (k == 0) throw std::invalid_argument("split_demands: k == 0");
  std::vector<traffic::TrafficMatrix> out(k);
  for (const traffic::Demand& d : tm.demands()) {
    out[plane_of_flow(d.src, d.dst, d.priority, k)].add(d);
  }
  return out;
}

ShardedWan::ShardedWan(const topo::Topology& base,
                       const traffic::TrafficMatrix& tm, std::size_t k,
                       sim::EmulationConfig config) {
  auto plane_topos = make_planes(base, k);
  demands_ = split_demands(tm, k);
  planes_.reserve(k);
  for (std::size_t p = 0; p < k; ++p) {
    planes_.push_back(std::make_unique<sim::DsdnEmulation>(
        std::move(plane_topos[p]), demands_[p], config));
  }
}

void ShardedWan::bootstrap(std::size_t n_threads) {
  te::ThreadPool pool(std::min(n_threads, planes_.size()));
  pool.parallel_for(planes_.size(),
                    [&](std::size_t p) { planes_[p]->bootstrap(); });
}

void ShardedWan::fail_fiber_in_plane(std::size_t k, topo::LinkId fiber) {
  planes_.at(k)->fail_fiber(fiber);
}

void ShardedWan::repair_fiber_in_plane(std::size_t k, topo::LinkId fiber) {
  planes_.at(k)->repair_fiber(fiber);
}

dataplane::ForwardResult ShardedWan::send_packet(
    topo::NodeId ingress, topo::NodeId dst,
    metrics::PriorityClass priority, std::uint64_t entropy) const {
  const auto& plane =
      *planes_[plane_of_flow(ingress, dst, priority, planes_.size())];
  return plane.send_packet(ingress, plane.address_of(dst), priority,
                           entropy);
}

bool ShardedWan::all_planes_converged() const {
  for (const auto& plane : planes_) {
    if (!plane->views_converged()) return false;
  }
  return true;
}

}  // namespace dsdn::shard
