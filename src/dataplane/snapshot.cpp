#include "dataplane/snapshot.hpp"

#include <stdexcept>

namespace dsdn::dataplane {

SnapshotHub::SnapshotHub(const topo::Topology& topo, std::size_t num_cores)
    : num_routers_(topo.num_nodes()) {
  if (num_cores == 0)
    throw std::invalid_argument("SnapshotHub: need at least one core");
  auto initial = std::make_shared<FibSnapshot>();
  initial->epoch = 0;
  initial->routers.reserve(num_routers_);
  // All routers share one empty table set until the controllers program
  // real state -- same as hardware coming up with blank banks.
  const auto blank = std::make_shared<const RouterDataplane>();
  for (std::size_t i = 0; i < num_routers_; ++i)
    initial->routers.push_back(blank);
  initial->link_up.resize(topo.num_links());
  for (std::size_t l = 0; l < topo.num_links(); ++l)
    initial->link_up[l] = topo.link(static_cast<topo::LinkId>(l)).up ? 1 : 0;

  latest_ = initial;
  slots_.reserve(num_cores);
  for (std::size_t c = 0; c < num_cores; ++c) {
    auto slot = std::make_unique<Slot>();
    slot->snap = initial;
    slots_.push_back(std::move(slot));
  }
}

std::shared_ptr<const FibSnapshot> SnapshotHub::acquire(
    std::size_t core) const {
  const Slot& slot = *slots_.at(core);
  std::lock_guard<std::mutex> lock(slot.mu);
  return slot.snap;
}

void SnapshotHub::install(std::shared_ptr<const FibSnapshot> next) {
  latest_ = next;
  for (auto& slot : slots_) {
    std::lock_guard<std::mutex> lock(slot->mu);
    slot->snap = next;
  }
}

std::uint64_t SnapshotHub::publish_router(topo::NodeId node,
                                          const RouterDataplane& tables) {
  std::lock_guard<std::mutex> publish(publish_mu_);
  auto next = std::make_shared<FibSnapshot>();
  next->epoch = latest_->epoch + 1;
  next->routers = latest_->routers;  // share every unchanged router
  next->routers.at(node) = std::make_shared<const RouterDataplane>(tables);
  next->link_up = latest_->link_up;
  install(std::move(next));
  return latest_->epoch;
}

std::uint64_t SnapshotHub::publish_link_state(const topo::Topology& topo) {
  std::lock_guard<std::mutex> publish(publish_mu_);
  auto next = std::make_shared<FibSnapshot>();
  next->epoch = latest_->epoch + 1;
  next->routers = latest_->routers;
  next->link_up.resize(topo.num_links());
  for (std::size_t l = 0; l < topo.num_links(); ++l)
    next->link_up[l] = topo.link(static_cast<topo::LinkId>(l)).up ? 1 : 0;
  install(std::move(next));
  return latest_->epoch;
}

std::uint64_t SnapshotHub::publish_all(
    std::vector<std::shared_ptr<const RouterDataplane>> routers) {
  if (routers.size() != num_routers_)
    throw std::invalid_argument("publish_all: wrong router count");
  for (const auto& r : routers)
    if (!r) throw std::invalid_argument("publish_all: null router");
  std::lock_guard<std::mutex> publish(publish_mu_);
  auto next = std::make_shared<FibSnapshot>();
  next->epoch = latest_->epoch + 1;
  next->routers = std::move(routers);
  next->link_up = latest_->link_up;
  install(std::move(next));
  return latest_->epoch;
}

std::uint64_t SnapshotHub::epoch() const {
  std::lock_guard<std::mutex> publish(publish_mu_);
  return latest_->epoch;
}

}  // namespace dsdn::dataplane
