#include "dataplane/frr.hpp"

#include <algorithm>
#include <queue>

#include "te/ksp.hpp"
#include "util/rng.hpp"

namespace dsdn::dataplane {

const std::vector<te::Path> BypassPlan::kEmpty;

const char* bypass_strategy_name(BypassStrategy s) {
  switch (s) {
    case BypassStrategy::kShortestPath: return "FRR";
    case BypassStrategy::kCapacityAware: return "Capacity-Aware";
    case BypassStrategy::kKShortestPaths: return "k-Shortest-Paths";
    case BypassStrategy::kKCapacityAware: return "k-Capacity-Aware";
  }
  return "?";
}

std::optional<te::Path> widest_path(const topo::Topology& topo,
                                    topo::NodeId src, topo::NodeId dst,
                                    const std::vector<double>& residual,
                                    const te::SpConstraints& c) {
  // Dijkstra variant maximizing the bottleneck residual; ties broken by
  // fewer hops (secondary cost) for determinism and short bypasses.
  constexpr double kNegInf = -1.0;
  std::vector<double> width(topo.num_nodes(), kNegInf);
  std::vector<std::size_t> hops(topo.num_nodes(), 0);
  std::vector<topo::LinkId> pred(topo.num_nodes(), topo::kInvalidLink);
  using Entry = std::tuple<double, std::size_t, topo::NodeId>;
  auto cmp = [](const Entry& a, const Entry& b) {
    if (std::get<0>(a) != std::get<0>(b))
      return std::get<0>(a) < std::get<0>(b);  // wider first
    return std::get<1>(a) > std::get<1>(b);    // fewer hops first
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(cmp)> pq(cmp);
  width[src] = std::numeric_limits<double>::infinity();
  pq.emplace(width[src], 0, src);
  while (!pq.empty()) {
    const auto [w, h, u] = pq.top();
    pq.pop();
    if (w < width[u]) continue;
    if (u == dst) break;
    for (topo::LinkId lid : topo.node(u).out_links) {
      const topo::Link& l = topo.link(lid);
      if (c.require_up && !l.up) continue;
      if (c.link_allowed && !(*c.link_allowed)[lid]) continue;
      const double nw = std::min(w, residual[lid]);
      if (nw > width[l.dst] ||
          (nw == width[l.dst] && pred[l.dst] != topo::kInvalidLink &&
           h + 1 < hops[l.dst])) {
        width[l.dst] = nw;
        hops[l.dst] = h + 1;
        pred[l.dst] = lid;
        pq.emplace(nw, h + 1, l.dst);
      }
    }
  }
  if (pred[dst] == topo::kInvalidLink) return std::nullopt;
  te::Path p;
  topo::NodeId at = dst;
  while (at != src) {
    p.links.push_back(pred[at]);
    at = topo.link(pred[at]).src;
  }
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

BypassPlan BypassPlan::compute(const topo::Topology& topo, BypassStrategy s,
                               const std::vector<double>& residual_gbps,
                               std::size_t k) {
  std::vector<topo::LinkId> links;
  links.reserve(topo.num_links());
  for (const topo::Link& l : topo.links()) {
    if (l.up) links.push_back(l.id);
  }
  return compute_for_links(topo, s, links, residual_gbps, k);
}

BypassPlan BypassPlan::compute_for_links(
    const topo::Topology& topo, BypassStrategy s,
    const std::vector<topo::LinkId>& links,
    const std::vector<double>& residual_gbps, std::size_t k) {
  BypassPlan plan;
  plan.strategy_ = s;

  std::vector<double> residual = residual_gbps;
  if (residual.empty()) {
    residual.resize(topo.num_links());
    for (std::size_t l = 0; l < topo.num_links(); ++l)
      residual[l] = topo.link(static_cast<topo::LinkId>(l)).capacity_gbps;
  }

  for (topo::LinkId lid : links) {
    const topo::Link& protectee = topo.link(lid);
    // The bypass must avoid the protected link and its reverse (a fiber
    // cut takes both directions down).
    std::vector<char> allowed(topo.num_links(), 1);
    allowed[protectee.id] = 0;
    if (protectee.reverse != topo::kInvalidLink)
      allowed[protectee.reverse] = 0;
    te::SpConstraints c;
    c.link_allowed = &allowed;

    std::vector<te::Path> cands;
    switch (s) {
      case BypassStrategy::kShortestPath: {
        if (auto p = te::shortest_path(topo, protectee.src, protectee.dst, c))
          cands.push_back(std::move(*p));
        break;
      }
      case BypassStrategy::kCapacityAware: {
        if (auto p =
                widest_path(topo, protectee.src, protectee.dst, residual, c))
          cands.push_back(std::move(*p));
        break;
      }
      case BypassStrategy::kKShortestPaths: {
        cands =
            te::k_shortest_paths(topo, protectee.src, protectee.dst, k, c);
        break;
      }
      case BypassStrategy::kKCapacityAware: {
        // k widest: take k shortest candidates, re-rank by bottleneck
        // residual (widest first).
        cands =
            te::k_shortest_paths(topo, protectee.src, protectee.dst, k, c);
        auto bottleneck = [&](const te::Path& p) {
          double b = std::numeric_limits<double>::infinity();
          for (topo::LinkId l : p.links) b = std::min(b, residual[l]);
          return b;
        };
        std::stable_sort(cands.begin(), cands.end(),
                         [&](const te::Path& a, const te::Path& b) {
                           return bottleneck(a) > bottleneck(b);
                         });
        break;
      }
    }
    if (!cands.empty()) plan.bypasses_[protectee.id] = std::move(cands);
  }
  return plan;
}

const std::vector<te::Path>& BypassPlan::candidates(topo::LinkId link) const {
  const auto it = bypasses_.find(link);
  return it == bypasses_.end() ? kEmpty : it->second;
}

std::optional<te::Path> BypassPlan::select(
    const topo::Topology& topo, topo::LinkId link, double rate_gbps,
    std::uint64_t entropy, const std::vector<double>& residual_gbps) const {
  const auto& cands = candidates(link);
  if (cands.empty()) return std::nullopt;

  auto bottleneck = [&](const te::Path& p) {
    double b = std::numeric_limits<double>::infinity();
    for (topo::LinkId l : p.links) {
      if (!topo.link(l).up) return -1.0;  // candidate itself is broken
      b = std::min(b, residual_gbps.empty()
                          ? topo.link(l).capacity_gbps
                          : residual_gbps[l]);
    }
    return b;
  };

  switch (strategy_) {
    case BypassStrategy::kShortestPath:
    case BypassStrategy::kCapacityAware: {
      if (bottleneck(cands.front()) < 0) return std::nullopt;
      return cands.front();
    }
    case BypassStrategy::kKShortestPaths: {
      // Shortest candidate with room for this flow; else the widest one.
      const te::Path* widest = nullptr;
      double widest_b = -1.0;
      for (const te::Path& p : cands) {
        const double b = bottleneck(p);
        if (b >= rate_gbps) return p;
        if (b > widest_b) {
          widest_b = b;
          widest = &p;
        }
      }
      if (!widest || widest_b < 0) return std::nullopt;
      return *widest;
    }
    case BypassStrategy::kKCapacityAware: {
      // Load-balance across candidates proportionally to spare capacity.
      std::vector<double> weights;
      weights.reserve(cands.size());
      double total = 0.0;
      for (const te::Path& p : cands) {
        const double b = std::max(0.0, bottleneck(p));
        weights.push_back(b);
        total += b;
      }
      if (total <= 0) return std::nullopt;
      const double point =
          static_cast<double>(util::splitmix64(entropy) >> 11) /
          static_cast<double>(1ull << 53) * total;
      double acc = 0.0;
      for (std::size_t i = 0; i < cands.size(); ++i) {
        acc += weights[i];
        if (point <= acc) return cands[i];
      }
      return cands.back();
    }
  }
  return std::nullopt;
}

std::optional<LabelStack> BypassPlan::select_encoded(
    const topo::Topology& topo, topo::LinkId link, double rate_gbps,
    std::uint64_t entropy, const std::vector<double>& residual_gbps) const {
  const auto path = select(topo, link, rate_gbps, entropy, residual_gbps);
  if (!path) return std::nullopt;
  return encode_strict_route(*path, /*enforce_depth=*/false);
}

}  // namespace dsdn::dataplane
