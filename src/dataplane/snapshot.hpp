#pragma once

// RCU-style immutable FIB snapshots for the batched dataplane (§3.2).
//
// The scalar Forwarder reads router tables through a DataplaneProvider
// that may be backed by *live* controller FIBs -- fine single-threaded,
// but a reprogram concurrent with forwarding would tear a table mid-walk.
// Real forwarding ASICs avoid this with all-or-nothing table banks; we
// model the same property in software the way the PR 4 PathCache does:
//
//  - A FibSnapshot is a deeply immutable view of every router's tables
//    (shared_ptr<const RouterDataplane> per router) tagged with a
//    monotonically increasing epoch.
//  - A SnapshotHub holds one published snapshot per forwarding core in a
//    cache-line-padded, mutex-guarded shared_ptr slot. acquire(core) pins
//    the current snapshot (two refcount ops under the slot mutex -- a
//    plain mutex rather than std::atomic<shared_ptr>, whose libstdc++
//    lock-bit protocol is opaque to TSan). publish_*() builds the new
//    snapshot off to the side and swaps it into every slot, so a batch
//    either runs entirely on the old epoch or entirely on the new one --
//    never a torn mix.
//  - Publication is copy-on-write at router granularity: publish_router()
//    copies the one changed router plus the pointer vector; the other
//    routers' tables are shared with the previous epoch.
//
// core::Controller::recompute() publishes one epoch per reprogram, after
// *all* tables (prefixes, encap, bypasses) for its router are installed;
// in-flight batches finish on the epoch they pinned.

#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "dataplane/forwarder.hpp"

namespace dsdn::dataplane {

// One immutable epoch of the whole fabric's forwarding state: per-router
// tables plus the link up/down flags as the dataplane saw them when the
// epoch was published. Forwarding cores must read liveness from here, not
// from a live Topology a churn driver may be flipping concurrently.
struct FibSnapshot {
  std::uint64_t epoch = 0;
  std::vector<std::shared_ptr<const RouterDataplane>> routers;
  std::vector<char> link_up;

  const RouterDataplane& at(topo::NodeId node) const {
    return *routers.at(node);
  }
  bool up(topo::LinkId link) const { return link_up[link] != 0; }
  std::size_t size() const { return routers.size(); }
};

class SnapshotHub {
 public:
  // Sizes the fabric (routers, links) and seeds the link flags from
  // `topo`'s current state; `num_cores` is the number of forwarding
  // cores (>= 1). Epoch 0 is published immediately with empty tables.
  SnapshotHub(const topo::Topology& topo, std::size_t num_cores);

  // Read side: pin the snapshot currently published to `core`. The
  // returned snapshot is immutable and valid for as long as the caller
  // holds the pointer, regardless of concurrent publishes.
  std::shared_ptr<const FibSnapshot> acquire(std::size_t core) const;

  // Write side (serialized internally). publish_router swaps in a new
  // epoch where `node`'s tables are replaced by a copy of `tables` and
  // every other router is shared with the previous epoch. publish_all
  // replaces every router at once (bulk install / test setup).
  std::uint64_t publish_router(topo::NodeId node,
                               const RouterDataplane& tables);
  std::uint64_t publish_all(
      std::vector<std::shared_ptr<const RouterDataplane>> routers);
  // Publishes `topo`'s current link up/down flags as a new epoch (tables
  // shared with the previous one) -- the dataplane-local port-state
  // detection that fires before the control plane reconverges.
  std::uint64_t publish_link_state(const topo::Topology& topo);

  std::uint64_t epoch() const;
  std::size_t num_cores() const { return slots_.size(); }
  std::size_t num_routers() const { return num_routers_; }

 private:
  struct alignas(64) Slot {
    mutable std::mutex mu;
    std::shared_ptr<const FibSnapshot> snap;
  };

  void install(std::shared_ptr<const FibSnapshot> next);

  std::size_t num_routers_;
  // Serializes publishers; slot mutexes only guard the pointer swap so
  // readers are never blocked behind a snapshot build.
  mutable std::mutex publish_mu_;
  std::shared_ptr<const FibSnapshot> latest_;  // guarded by publish_mu_
  std::vector<std::unique_ptr<Slot>> slots_;
};

// Adapts one pinned FibSnapshot to the scalar Forwarder's provider
// interface -- the differential tests and the pipeline's rare slow path
// run the scalar walk against the exact snapshot a batch pinned.
class SnapshotView final : public DataplaneProvider {
 public:
  explicit SnapshotView(std::shared_ptr<const FibSnapshot> snap)
      : snap_(std::move(snap)) {}

  const RouterDataplane& at(topo::NodeId node) const override {
    return snap_->at(node);
  }
  const FibSnapshot& snapshot() const { return *snap_; }

 private:
  std::shared_ptr<const FibSnapshot> snap_;
};

}  // namespace dsdn::dataplane
