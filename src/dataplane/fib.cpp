#include "dataplane/fib.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace dsdn::dataplane {
namespace {

// Deterministic weighted choice by hashing the entropy field -- the
// ASIC's ECMP hash stand-in. `salt` decorrelates independent tables
// keyed by the same flow entropy (encap vs bypass picks).
const WeightedRoute* pick_weighted(const std::vector<WeightedRoute>& routes,
                                   std::uint64_t entropy,
                                   std::uint64_t salt) {
  double total = 0.0;
  for (const WeightedRoute& r : routes) total += r.weight;
  const double point =
      static_cast<double>(util::splitmix64(entropy ^ salt) >> 11) /
      static_cast<double>(1ull << 53) * total;
  double acc = 0.0;
  for (const WeightedRoute& r : routes) {
    acc += r.weight;
    if (point <= acc) return &r;
  }
  return &routes.back();
}

}  // namespace

void IngressFib::set_prefix(const topo::Prefix& p, topo::NodeId egress) {
  prefixes_.insert(p, egress);
}

void IngressFib::clear_prefixes() { prefixes_.clear(); }

void IngressFib::set_routes(topo::NodeId egress,
                            metrics::PriorityClass priority,
                            EncapEntry entry) {
  if (entry.routes.empty()) {
    encap_.erase({egress, static_cast<int>(priority)});
    return;
  }
  double total = 0.0;
  for (const WeightedRoute& r : entry.routes) {
    if (r.weight < 0) throw std::invalid_argument("negative route weight");
    total += r.weight;
  }
  if (total <= 0) throw std::invalid_argument("route weights sum to zero");
  encap_[{egress, static_cast<int>(priority)}] = std::move(entry);
}

void IngressFib::clear_routes() { encap_.clear(); }

const EncapEntry* IngressFib::routes_for(topo::NodeId egress,
                                         metrics::PriorityClass priority)
    const {
  const auto it = encap_.find({egress, static_cast<int>(priority)});
  return it == encap_.end() ? nullptr : &it->second;
}

std::optional<topo::NodeId> IngressFib::egress_for(
    std::uint32_t dst_ip) const {
  return prefixes_.lookup(dst_ip);
}

std::optional<LabelStack> IngressFib::lookup(std::uint32_t dst_ip,
                                             metrics::PriorityClass priority,
                                             std::uint64_t entropy) const {
  const LabelStack* stack = lookup_stack(dst_ip, priority, entropy);
  if (!stack) return std::nullopt;
  return *stack;
}

const LabelStack* IngressFib::lookup_stack(std::uint32_t dst_ip,
                                           metrics::PriorityClass priority,
                                           std::uint64_t entropy) const {
  const auto egress = prefixes_.lookup(dst_ip);
  if (!egress) return nullptr;
  const auto it = encap_.find({*egress, static_cast<int>(priority)});
  if (it == encap_.end()) return nullptr;
  return &pick_weighted(it->second.routes, entropy, /*salt=*/0)->stack;
}

void TransitFib::set_entry(Label label, topo::LinkId out_link) {
  entries_[label] = out_link;
}

std::optional<topo::LinkId> TransitFib::lookup(Label label) const {
  const auto it = entries_.find(label);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

TransitFib build_transit_fib(const topo::Topology& topo, topo::NodeId node) {
  TransitFib fib;
  for (topo::LinkId lid : topo.node(node).out_links) {
    fib.set_entry(link_label(lid), lid);
  }
  return fib;
}

void SrFib::set_members(topo::NodeId target, std::vector<SrNextHop> members) {
  if (members.empty()) {
    entries_.erase(target);
    return;
  }
  std::sort(members.begin(), members.end(),
            [](const SrNextHop& a, const SrNextHop& b) {
              return a.link < b.link;
            });
  entries_[target] = std::move(members);
}

void SrFib::clear() { entries_.clear(); }

const std::vector<SrNextHop>* SrFib::members(topo::NodeId target) const {
  const auto it = entries_.find(target);
  if (it == entries_.end()) return nullptr;
  return &it->second;
}

std::size_t SrFib::num_next_hops() const {
  std::size_t n = 0;
  for (const auto& [target, members] : entries_) n += members.size();
  return n;
}

std::size_t sr_ecmp_pick(std::uint64_t entropy, topo::NodeId at,
                         std::size_t n_up) {
  if (n_up <= 1) return 0;
  const std::uint64_t h = util::splitmix64(
      entropy ^ (static_cast<std::uint64_t>(at) * 0x9E3779B97F4A7C15ULL) ^
      0x5E6D17A6ULL);
  return static_cast<std::size_t>(h % n_up);
}

void BypassFib::set_bypasses(topo::LinkId link,
                             std::vector<WeightedRoute> routes) {
  if (routes.empty()) {
    bypasses_.erase(link);
    return;
  }
  double total = 0.0;
  for (const WeightedRoute& r : routes) {
    if (r.weight < 0) throw std::invalid_argument("negative bypass weight");
    total += r.weight;
  }
  if (total <= 0) throw std::invalid_argument("bypass weights sum to zero");
  bypasses_[link] = std::move(routes);
}

void BypassFib::clear() { bypasses_.clear(); }

bool BypassFib::protects(topo::LinkId link) const {
  return bypasses_.contains(link);
}

std::optional<LabelStack> BypassFib::select(topo::LinkId link,
                                            std::uint64_t entropy) const {
  const LabelStack* stack = select_stack(link, entropy);
  if (!stack) return std::nullopt;
  return *stack;
}

const LabelStack* BypassFib::select_stack(topo::LinkId link,
                                          std::uint64_t entropy) const {
  const auto it = bypasses_.find(link);
  if (it == bypasses_.end()) return nullptr;
  return &pick_weighted(it->second, entropy, /*salt=*/0xFBFB)->stack;
}

}  // namespace dsdn::dataplane
