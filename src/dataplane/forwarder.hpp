#pragma once

// Packet-level forwarding across the simulated WAN data plane: the life of
// a packet from Fig 5. The headend performs the two-stage ingress lookup
// and pushes the label stack; transit routers pop the outer label and
// forward on the named link; a down link triggers local FRR repair.

#include <optional>

#include "dataplane/fib.hpp"
#include "dataplane/frr.hpp"

namespace dsdn::dataplane {

struct RouterDataplane {
  IngressFib ingress;
  TransitFib transit;
  BypassFib bypass;
  SrFib sr;  // node-segment entries (empty unless the fleet runs SR)
};

// Where the forwarder reads each router's tables from. Implemented over a
// plain vector, or over live controllers in the emulation.
class DataplaneProvider {
 public:
  virtual ~DataplaneProvider() = default;
  virtual const RouterDataplane& at(topo::NodeId node) const = 0;
};

class VectorDataplanes final : public DataplaneProvider {
 public:
  explicit VectorDataplanes(std::size_t n) : routers_(n) {}

  RouterDataplane& mutable_at(topo::NodeId node) { return routers_.at(node); }
  const RouterDataplane& at(topo::NodeId node) const override {
    return routers_.at(node);
  }
  std::size_t size() const { return routers_.size(); }

 private:
  std::vector<RouterDataplane> routers_;
};

enum class ForwardOutcome {
  kDelivered,
  kDroppedNoIngressRoute,   // headend has no route to the destination
  kDroppedUnknownLabel,     // transit FIB miss (malformed/stale route)
  kDroppedLinkDownNoBypass, // hit a dead link and FRR had no path
  kDroppedTtlExpired,
  kDroppedNotLocal,         // stack ran out at a router not owning the dst
  kDroppedLoop,             // exceeded the topology hop bound (FIB cycle)
};

const char* forward_outcome_name(ForwardOutcome o);

// A walk that takes more hops than this on an n-node topology must be
// cycling: strict source routes are bounded by the label-depth limits and
// each FRR splice only detours around one link. Matches the TTL budget the
// sublabel walk uses. A caller-supplied ttl below the bound still wins
// (kDroppedTtlExpired), preserving small-ttl semantics.
inline std::size_t forward_hop_bound(const topo::Topology& topo) {
  return 4 * topo.num_nodes() + 8;
}

struct ForwardResult {
  ForwardOutcome outcome = ForwardOutcome::kDroppedNoIngressRoute;
  topo::NodeId final_node = topo::kInvalidNode;
  double latency_s = 0.0;     // accumulated propagation delay
  std::size_t hops = 0;
  std::size_t frr_activations = 0;
  std::vector<topo::NodeId> trace;  // nodes visited, ingress first
};

class Forwarder {
 public:
  // `provider` must outlive the Forwarder.
  Forwarder(const topo::Topology& topo, const DataplaneProvider* provider,
            const BypassPlan* bypasses = nullptr);

  // Injects `packet` at `ingress_node` and walks it to completion.
  // `residual_gbps` feeds capacity-aware bypass selection (may be empty).
  ForwardResult forward(Packet packet, topo::NodeId ingress_node,
                        const std::vector<double>& residual_gbps = {}) const;

 private:
  const topo::Topology& topo_;
  const DataplaneProvider* provider_;
  const BypassPlan* bypasses_;
};

}  // namespace dsdn::dataplane
