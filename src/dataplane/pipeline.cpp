#include "dataplane/pipeline.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.hpp"

namespace dsdn::dataplane {
namespace {

// Same counter the scalar forwarder bumps, so packet-level down-link
// drops aggregate regardless of which path forwarded the packet.
obs::Counter& down_link_drops() {
  static obs::Counter& c =
      obs::Registry::global().counter("dataplane.down_link_drops");
  return c;
}

}  // namespace

// Flat working record for one in-flight packet. Labels are stored
// bottom-first (top of stack = labels[depth - 1]) so a transit pop is a
// decrement and an FRR splice appends -- no memmove on the hot path.
struct BatchPipeline::BatchPacket {
  std::uint32_t dst_ip;
  metrics::PriorityClass priority;
  std::uint64_t entropy;
  int ttl;
  topo::NodeId at;
  topo::NodeId ingress;   // original injection point (slow-path rerun)
  int orig_ttl;           // original ttl budget (slow-path rerun)
  std::uint16_t index;    // slot in the batch: out[index], trace addressing
  std::uint16_t depth;
  std::uint32_t hops;
  std::uint32_t frr;
  double latency_s;
  Label labels[kInlineLabels];
};

BatchPipeline::BatchPipeline(const topo::Topology& topo,
                             const SnapshotHub* hub, PipelineOptions opts)
    : topo_(topo), hub_(hub), opts_(std::move(opts)),
      max_hops_(forward_hop_bound(topo)) {
  if (!hub_) throw std::invalid_argument("BatchPipeline: null hub");
  if (opts_.core >= hub_->num_cores())
    throw std::invalid_argument("BatchPipeline: core out of range");
}

void BatchPipeline::process(std::span<const PacketSpec> specs,
                            std::vector<PacketVerdict>& out) {
  out.resize(specs.size());
  traces_.clear();
  if (opts_.record_traces) traces_.resize(specs.size());
  for (std::size_t off = 0; off < specs.size(); off += kBatchSize) {
    const std::size_t n = std::min(kBatchSize, specs.size() - off);
    run_batch(specs.data() + off, n, out.data() + off, off);
  }
}

std::vector<PacketVerdict> BatchPipeline::process(
    std::span<const PacketSpec> specs) {
  std::vector<PacketVerdict> out;
  process(specs, out);
  return out;
}

void BatchPipeline::run_batch(const PacketSpec* specs, std::size_t n,
                              PacketVerdict* out, std::size_t trace_base) {
  // RCU read side: pin one immutable epoch for the whole batch. A
  // reprogram that publishes mid-batch is observed only by later batches.
  pinned_ = hub_->acquire(opts_.core);
  last_epoch_.store(pinned_->epoch, std::memory_order_relaxed);
  batches_.fetch_add(1, std::memory_order_relaxed);

  BatchPacket pkts[kBatchSize];
  std::size_t live = stage_ingress(specs, pkts, n, out, trace_base);
  while (live > 0) live = stage_round(pkts, live, out, trace_base);
  pinned_.reset();
}

std::size_t BatchPipeline::stage_ingress(const PacketSpec* specs,
                                         BatchPacket* pkts, std::size_t n,
                                         PacketVerdict* out,
                                         std::size_t trace_base) {
  const FibSnapshot& snap = *pinned_;
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const PacketSpec& s = specs[i];
    BatchPacket& p = pkts[live];
    p.dst_ip = s.dst_ip;
    p.priority = s.priority;
    p.entropy = s.entropy;
    p.ttl = s.ttl;
    p.at = s.ingress;
    p.ingress = s.ingress;
    p.orig_ttl = s.ttl;
    p.index = static_cast<std::uint16_t>(i);
    p.depth = 0;
    p.hops = 0;
    p.frr = 0;
    p.latency_s = 0.0;
    if (opts_.record_traces) traces_[trace_base + i].push_back(p.at);

    const RouterDataplane& rd = snap.at(p.at);
    const LabelStack* stack =
        rd.ingress.lookup_stack(p.dst_ip, p.priority, p.entropy);
    if (!stack) {
      const auto egress = rd.ingress.egress_for(p.dst_ip);
      finish(p, egress && *egress == p.at
                    ? ForwardOutcome::kDelivered
                    : ForwardOutcome::kDroppedNoIngressRoute,
             out);
      continue;
    }
    const auto& labels = stack->labels();  // top-first
    if (labels.size() > kInlineLabels) {
      slow_path(p, out, trace_base);
      continue;
    }
    p.depth = static_cast<std::uint16_t>(labels.size());
    for (std::size_t j = 0; j < labels.size(); ++j)
      p.labels[labels.size() - 1 - j] = labels[j];
    ++live;
  }
  return live;
}

std::size_t BatchPipeline::stage_round(BatchPacket* pkts, std::size_t live,
                                       PacketVerdict* out,
                                       std::size_t trace_base) {
  const FibSnapshot& snap = *pinned_;
  std::size_t keep = 0;
  for (std::size_t i = 0; i < live; ++i) {
    BatchPacket& p = pkts[i];
    // Exactly one iteration of the scalar forward loop (see
    // Forwarder::forward) -- an FRR splice consumes a ttl tick without
    // advancing, matching the scalar `continue`.
    if (--p.ttl <= 0) {
      finish(p, ForwardOutcome::kDroppedTtlExpired, out);
      continue;
    }
    if (p.depth == 0) {
      const auto egress = snap.at(p.at).ingress.egress_for(p.dst_ip);
      finish(p, egress && *egress == p.at ? ForwardOutcome::kDelivered
                                          : ForwardOutcome::kDroppedNotLocal,
             out);
      continue;
    }

    const Label outer = p.labels[p.depth - 1];
    if (is_node_segment_label(outer)) {
      const topo::NodeId target = segment_node(outer);
      if (target == p.at) {
        --p.depth;  // segment complete: pop, consuming this ttl tick
        if (&p != &pkts[keep]) pkts[keep] = p;
        ++keep;
        continue;
      }
      const std::vector<SrNextHop>* members =
          snap.at(p.at).sr.members(target);
      if (!members) {
        finish(p, ForwardOutcome::kDroppedUnknownLabel, out);
        continue;
      }
      // ECMP re-pick among up members (snapshot liveness) IS the local
      // repair for segment routing; no FRR splice.
      std::size_t n_up = 0;
      for (const SrNextHop& m : *members) {
        if (snap.up(m.link)) ++n_up;
      }
      if (n_up == 0) {
        down_link_drops().inc();
        finish(p, ForwardOutcome::kDroppedLinkDownNoBypass, out);
        continue;
      }
      std::size_t pick = sr_ecmp_pick(p.entropy, p.at, n_up);
      const SrNextHop* chosen = nullptr;
      for (const SrNextHop& m : *members) {
        if (!snap.up(m.link)) continue;
        if (pick-- == 0) {
          chosen = &m;
          break;
        }
      }
      const topo::Link& link = topo_.link(chosen->link);
      p.at = link.dst;  // keep the label: consumed only at the target
      p.latency_s += link.delay_s;
      ++p.hops;
      if (opts_.record_traces) traces_[trace_base + p.index].push_back(p.at);
      if (p.hops > max_hops_) {
        finish(p, ForwardOutcome::kDroppedLoop, out);
        continue;
      }
      if (&p != &pkts[keep]) pkts[keep] = p;
      ++keep;
      continue;
    }
    const auto out_link = snap.at(p.at).transit.lookup(outer);
    if (!out_link) {
      finish(p, ForwardOutcome::kDroppedUnknownLabel, out);
      continue;
    }
    const topo::Link& link = topo_.link(*out_link);

    if (!snap.up(*out_link)) {
      --p.depth;  // pop the invalid label
      const LabelStack* bypass =
          snap.at(p.at).bypass.select_stack(*out_link, p.entropy);
      std::optional<LabelStack> plan_stack;
      if (!bypass && opts_.bypasses) {
        plan_stack = opts_.bypasses->select_encoded(
            topo_, *out_link, /*rate_gbps=*/0.0, p.entropy,
            opts_.residual_gbps);
        if (plan_stack) bypass = &*plan_stack;
      }
      if (!bypass) {
        down_link_drops().inc();
        finish(p, ForwardOutcome::kDroppedLinkDownNoBypass, out);
        continue;
      }
      const auto& bl = bypass->labels();  // top-first
      if (p.depth + bl.size() > kInlineLabels) {
        slow_path(p, out, trace_base);
        continue;
      }
      for (std::size_t j = 0; j < bl.size(); ++j)
        p.labels[p.depth + j] = bl[bl.size() - 1 - j];
      p.depth = static_cast<std::uint16_t>(p.depth + bl.size());
      ++p.frr;
      if (&p != &pkts[keep]) pkts[keep] = p;
      ++keep;
      continue;
    }

    // Normal transit: pop the outer label and forward.
    --p.depth;
    p.at = link.dst;
    p.latency_s += link.delay_s;
    ++p.hops;
    if (opts_.record_traces) traces_[trace_base + p.index].push_back(p.at);
    if (p.hops > max_hops_) {
      finish(p, ForwardOutcome::kDroppedLoop, out);
      continue;
    }
    if (&p != &pkts[keep]) pkts[keep] = p;
    ++keep;
  }
  return keep;
}

void BatchPipeline::finish(BatchPacket& p, ForwardOutcome o,
                           PacketVerdict* out) {
  PacketVerdict& v = out[p.index];
  v.outcome = o;
  v.final_node = p.at;
  v.latency_s = p.latency_s;
  v.hops = p.hops;
  v.frr_activations = p.frr;
  account(v);
}

void BatchPipeline::account(const PacketVerdict& v) {
  packets_.fetch_add(1, std::memory_order_relaxed);
  if (v.outcome == ForwardOutcome::kDelivered)
    delivered_.fetch_add(1, std::memory_order_relaxed);
  else
    dropped_.fetch_add(1, std::memory_order_relaxed);
  if (v.frr_activations)
    frr_.fetch_add(v.frr_activations, std::memory_order_relaxed);
  by_outcome_[static_cast<std::size_t>(v.outcome)].fetch_add(
      1, std::memory_order_relaxed);
}

void BatchPipeline::slow_path(const BatchPacket& p, PacketVerdict* out,
                              std::size_t trace_base) {
  // Rerun the whole packet from scratch with an unbounded heap stack,
  // on the snapshot this batch pinned. Same steps as the fast path (and
  // the scalar Forwarder), so the verdict is identical to what the fast
  // path would have produced with an unlimited inline array. Reads only
  // snapshot + immutable topology fields: safe under concurrent churn.
  const FibSnapshot& snap = *pinned_;
  std::vector<Label> stack;  // bottom-first, like the inline array
  std::vector<topo::NodeId>* trace =
      opts_.record_traces ? &traces_[trace_base + p.index] : nullptr;
  if (trace) {
    trace->clear();
    trace->push_back(p.ingress);
  }

  PacketVerdict& v = out[p.index];
  v = PacketVerdict{};
  v.final_node = p.ingress;
  topo::NodeId at = p.ingress;
  int ttl = p.orig_ttl;

  const auto finish_slow = [&](ForwardOutcome o) {
    v.outcome = o;
    v.final_node = at;
    slow_path_.fetch_add(1, std::memory_order_relaxed);
    account(v);
  };

  const RouterDataplane& ird = snap.at(at);
  const LabelStack* head =
      ird.ingress.lookup_stack(p.dst_ip, p.priority, p.entropy);
  if (!head) {
    const auto egress = ird.ingress.egress_for(p.dst_ip);
    finish_slow(egress && *egress == at
                    ? ForwardOutcome::kDelivered
                    : ForwardOutcome::kDroppedNoIngressRoute);
    return;
  }
  stack.assign(head->labels().rbegin(), head->labels().rend());

  while (true) {
    if (--ttl <= 0) return finish_slow(ForwardOutcome::kDroppedTtlExpired);
    if (stack.empty()) {
      const auto egress = snap.at(at).ingress.egress_for(p.dst_ip);
      return finish_slow(egress && *egress == at
                             ? ForwardOutcome::kDelivered
                             : ForwardOutcome::kDroppedNotLocal);
    }
    const Label outer = stack.back();
    if (is_node_segment_label(outer)) {
      const topo::NodeId target = segment_node(outer);
      if (target == at) {
        stack.pop_back();  // segment complete (ttl tick consumed)
        continue;
      }
      const std::vector<SrNextHop>* members = snap.at(at).sr.members(target);
      if (!members)
        return finish_slow(ForwardOutcome::kDroppedUnknownLabel);
      std::size_t n_up = 0;
      for (const SrNextHop& m : *members) {
        if (snap.up(m.link)) ++n_up;
      }
      if (n_up == 0) {
        down_link_drops().inc();
        return finish_slow(ForwardOutcome::kDroppedLinkDownNoBypass);
      }
      std::size_t pick = sr_ecmp_pick(p.entropy, at, n_up);
      const SrNextHop* chosen = nullptr;
      for (const SrNextHop& m : *members) {
        if (!snap.up(m.link)) continue;
        if (pick-- == 0) {
          chosen = &m;
          break;
        }
      }
      const topo::Link& link = topo_.link(chosen->link);
      at = link.dst;
      v.latency_s += link.delay_s;
      ++v.hops;
      if (trace) trace->push_back(at);
      if (v.hops > max_hops_)
        return finish_slow(ForwardOutcome::kDroppedLoop);
      continue;
    }
    const auto out_link = snap.at(at).transit.lookup(outer);
    if (!out_link) return finish_slow(ForwardOutcome::kDroppedUnknownLabel);
    const topo::Link& link = topo_.link(*out_link);
    if (!snap.up(*out_link)) {
      stack.pop_back();
      const LabelStack* bypass =
          snap.at(at).bypass.select_stack(*out_link, p.entropy);
      std::optional<LabelStack> plan_stack;
      if (!bypass && opts_.bypasses) {
        plan_stack = opts_.bypasses->select_encoded(
            topo_, *out_link, /*rate_gbps=*/0.0, p.entropy,
            opts_.residual_gbps);
        if (plan_stack) bypass = &*plan_stack;
      }
      if (!bypass) {
        down_link_drops().inc();
        return finish_slow(ForwardOutcome::kDroppedLinkDownNoBypass);
      }
      stack.insert(stack.end(), bypass->labels().rbegin(),
                   bypass->labels().rend());
      ++v.frr_activations;
      continue;
    }
    stack.pop_back();
    at = link.dst;
    v.latency_s += link.delay_s;
    ++v.hops;
    if (trace) trace->push_back(at);
    if (v.hops > max_hops_)
      return finish_slow(ForwardOutcome::kDroppedLoop);
  }
}

// Flat working record for one in-flight sublabel packet (Appendix A
// walk). Labels bottom-first, like BatchPacket; a Table-1 pop is a
// depth decrement.
struct BatchPipeline::SubPacket {
  topo::NodeId at;
  std::uint32_t ttl;      // remaining iterations of the scalar while-loop
  std::uint16_t index;    // slot in the batch: out[index]
  std::uint16_t depth;
  std::uint32_t hops;
  Label labels[kInlineLabels];
};

void BatchPipeline::process_sublabel(std::span<const SublabelSpec> specs,
                                     const std::vector<SublabelFib>& fibs,
                                     std::vector<SublabelForwardResult>& out) {
  out.assign(specs.size(), SublabelForwardResult{});
  for (std::size_t off = 0; off < specs.size(); off += kBatchSize) {
    const std::size_t n = std::min(kBatchSize, specs.size() - off);
    run_sublabel_batch(specs.data() + off, n, fibs, out.data() + off);
  }
}

void BatchPipeline::run_sublabel_batch(const SublabelSpec* specs,
                                       std::size_t n,
                                       const std::vector<SublabelFib>& fibs,
                                       SublabelForwardResult* out) {
  batches_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t ttl_budget =
      static_cast<std::uint32_t>(4 * topo_.num_nodes() + 8);

  SubPacket pkts[kBatchSize];
  std::size_t live = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const SublabelSpec& s = specs[i];
    const auto& labels = s.stack.labels();  // top-first
    if (labels.size() > kInlineLabels) {
      // Scalar rerun: deterministic, so the verdict matches what the
      // fast path would produce with an unlimited inline array.
      out[i] = forward_sublabel(topo_, fibs, s.start, s.stack);
      slow_path_.fetch_add(1, std::memory_order_relaxed);
      sublabel_packets_.fetch_add(1, std::memory_order_relaxed);
      if (out[i].delivered)
        sublabel_delivered_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    SubPacket& p = pkts[live];
    p.at = s.start;
    p.ttl = ttl_budget;
    p.index = static_cast<std::uint16_t>(i);
    p.depth = static_cast<std::uint16_t>(labels.size());
    p.hops = 0;
    for (std::size_t j = 0; j < labels.size(); ++j)
      p.labels[labels.size() - 1 - j] = labels[j];
    out[i].trace.push_back(p.at);
    ++live;
  }
  while (live > 0) live = sublabel_round(pkts, live, fibs, out);
}

std::size_t BatchPipeline::sublabel_round(SubPacket* pkts, std::size_t live,
                                          const std::vector<SublabelFib>& fibs,
                                          SublabelForwardResult* out) {
  std::size_t keep = 0;
  const auto finish_sub = [&](SubPacket& p, bool delivered) {
    SublabelForwardResult& r = out[p.index];
    r.delivered = delivered;
    r.final_node = p.at;
    r.hops = p.hops;
    sublabel_packets_.fetch_add(1, std::memory_order_relaxed);
    if (delivered) sublabel_delivered_.fetch_add(1, std::memory_order_relaxed);
  };
  for (std::size_t i = 0; i < live; ++i) {
    SubPacket& p = pkts[i];
    // Exactly one iteration of forward_sublabel's `while (ttl-- > 0)`.
    if (p.ttl == 0) {
      finish_sub(p, false);
      continue;
    }
    --p.ttl;
    if (p.depth == 0) {
      finish_sub(p, true);
      continue;
    }
    if (p.at >= fibs.size()) {
      finish_sub(p, false);  // uncovered node: miss, not out-of-range index
      continue;
    }
    const auto entry = fibs[p.at].lookup(p.labels[p.depth - 1]);
    if (!entry) {
      finish_sub(p, false);  // table miss: drop
      continue;
    }
    bool done = false;
    switch (entry->action) {
      case SublabelAction::kPopDeliver:
        --p.depth;
        finish_sub(p, p.depth == 0);
        done = true;
        break;
      case SublabelAction::kPopForward:
        --p.depth;
        break;
      case SublabelAction::kKeepForward:
        break;
    }
    if (done) continue;
    const topo::Link& l = topo_.link(entry->out_link);
    if (!l.up) {
      finish_sub(p, false);  // no FRR modeled in the sublabel walk
      continue;
    }
    p.at = l.dst;
    ++p.hops;
    out[p.index].trace.push_back(p.at);
    if (&p != &pkts[keep]) pkts[keep] = p;
    ++keep;
  }
  return keep;
}

PipelineStats BatchPipeline::stats() const {
  PipelineStats s;
  s.packets = packets_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.delivered = delivered_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  s.frr_activations = frr_.load(std::memory_order_relaxed);
  s.slow_path_packets = slow_path_.load(std::memory_order_relaxed);
  s.sublabel_packets = sublabel_packets_.load(std::memory_order_relaxed);
  s.sublabel_delivered = sublabel_delivered_.load(std::memory_order_relaxed);
  s.last_epoch = last_epoch_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < s.by_outcome.size(); ++i)
    s.by_outcome[i] = by_outcome_[i].load(std::memory_order_relaxed);
  return s;
}

}  // namespace dsdn::dataplane
