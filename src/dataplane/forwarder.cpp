#include "dataplane/forwarder.hpp"

#include <stdexcept>

#include "obs/metrics.hpp"

namespace dsdn::dataplane {
namespace {

// Packets dropped at a transit router because the out-link was down and
// no bypass (local or plan-level) could repair around it. The packet-level
// counterpart of flow_eval's structural loss scoring.
obs::Counter& down_link_drops() {
  static obs::Counter& c =
      obs::Registry::global().counter("dataplane.down_link_drops");
  return c;
}

}  // namespace

const char* forward_outcome_name(ForwardOutcome o) {
  switch (o) {
    case ForwardOutcome::kDelivered: return "delivered";
    case ForwardOutcome::kDroppedNoIngressRoute: return "no-ingress-route";
    case ForwardOutcome::kDroppedUnknownLabel: return "unknown-label";
    case ForwardOutcome::kDroppedLinkDownNoBypass: return "link-down-no-bypass";
    case ForwardOutcome::kDroppedTtlExpired: return "ttl-expired";
    case ForwardOutcome::kDroppedNotLocal: return "not-local";
    case ForwardOutcome::kDroppedLoop: return "loop";
  }
  return "?";
}

Forwarder::Forwarder(const topo::Topology& topo,
                     const DataplaneProvider* provider,
                     const BypassPlan* bypasses)
    : topo_(topo), provider_(provider), bypasses_(bypasses) {
  if (!provider) throw std::invalid_argument("Forwarder: null provider");
}

ForwardResult Forwarder::forward(Packet packet, topo::NodeId ingress_node,
                                 const std::vector<double>& residual) const {
  ForwardResult r;
  topo::NodeId at = ingress_node;
  r.trace.push_back(at);
  const std::size_t max_hops = forward_hop_bound(topo_);

  // Headend: two-stage lookup to build the source route.
  if (packet.stack.empty()) {
    const RouterDataplane& rd = provider_->at(at);
    const LabelStack* stack = rd.ingress.lookup_stack(
        packet.dst_ip, packet.priority, packet.entropy);
    if (!stack) {
      // Destination may be attached locally (no WAN hop needed).
      const auto egress = rd.ingress.egress_for(packet.dst_ip);
      if (egress && *egress == at) {
        r.outcome = ForwardOutcome::kDelivered;
        r.final_node = at;
        return r;
      }
      r.outcome = ForwardOutcome::kDroppedNoIngressRoute;
      r.final_node = at;
      return r;
    }
    packet.stack = *stack;
  }

  while (true) {
    if (--packet.ttl <= 0) {
      r.outcome = ForwardOutcome::kDroppedTtlExpired;
      r.final_node = at;
      return r;
    }
    if (packet.stack.empty()) {
      // Source route consumed: the packet must be at its egress router.
      const auto egress = provider_->at(at).ingress.egress_for(packet.dst_ip);
      r.final_node = at;
      r.outcome = (egress && *egress == at)
                      ? ForwardOutcome::kDelivered
                      : ForwardOutcome::kDroppedNotLocal;
      return r;
    }

    const Label outer = packet.stack.top();
    if (is_node_segment_label(outer)) {
      const topo::NodeId target = segment_node(outer);
      if (target == at) {
        // Segment complete: pop and re-examine (consumes a ttl tick, like
        // an FRR splice in the strict walk).
        packet.stack.pop();
        continue;
      }
      const std::vector<SrNextHop>* members =
          provider_->at(at).sr.members(target);
      if (!members) {
        r.outcome = ForwardOutcome::kDroppedUnknownLabel;
        r.final_node = at;
        return r;
      }
      // Segment routing's local repair is the ECMP re-pick itself: choose
      // among the members whose links are still up. All dead -> drop (no
      // FRR splice for node segments; the next recompute reprograms).
      std::size_t n_up = 0;
      for (const SrNextHop& m : *members) {
        if (topo_.link(m.link).up) ++n_up;
      }
      if (n_up == 0) {
        down_link_drops().inc();
        r.outcome = ForwardOutcome::kDroppedLinkDownNoBypass;
        r.final_node = at;
        return r;
      }
      std::size_t pick = sr_ecmp_pick(packet.entropy, at, n_up);
      const SrNextHop* chosen = nullptr;
      for (const SrNextHop& m : *members) {
        if (!topo_.link(m.link).up) continue;
        if (pick-- == 0) {
          chosen = &m;
          break;
        }
      }
      // Forward toward the segment target WITHOUT popping: the label is
      // consumed only at the target itself.
      const topo::Link& link = topo_.link(chosen->link);
      at = link.dst;
      r.latency_s += link.delay_s;
      ++r.hops;
      r.trace.push_back(at);
      if (r.hops > max_hops) {
        // Transiently divergent segment FIBs can micro-loop; the hop
        // bound converts that into an explicit loop drop.
        r.outcome = ForwardOutcome::kDroppedLoop;
        r.final_node = at;
        return r;
      }
      continue;
    }
    const auto out_link = provider_->at(at).transit.lookup(outer);
    if (!out_link) {
      r.outcome = ForwardOutcome::kDroppedUnknownLabel;
      r.final_node = at;
      return r;
    }
    const topo::Link& link = topo_.link(*out_link);

    if (!link.up) {
      // Local repair: pop the invalid label, prepend a bypass route to the
      // link's far end, continue as the headend intended (§3.2). The
      // router's own pre-installed BypassFib is consulted first; a
      // simulation-level BypassPlan (if any) is the fallback.
      packet.stack.pop();
      const LabelStack* bypass_stack =
          provider_->at(at).bypass.select_stack(*out_link, packet.entropy);
      std::optional<LabelStack> plan_stack;
      if (!bypass_stack && bypasses_) {
        plan_stack = bypasses_->select_encoded(
            topo_, *out_link, /*rate_gbps=*/0.0, packet.entropy, residual);
        if (plan_stack) bypass_stack = &*plan_stack;
      }
      if (!bypass_stack) {
        down_link_drops().inc();
        r.outcome = ForwardOutcome::kDroppedLinkDownNoBypass;
        r.final_node = at;
        return r;
      }
      packet.stack.push_all_on_top(*bypass_stack);
      ++r.frr_activations;
      continue;
    }

    // Normal transit: pop the outer label and forward.
    packet.stack.pop();
    at = link.dst;
    r.latency_s += link.delay_s;
    ++r.hops;
    r.trace.push_back(at);
    if (r.hops > max_hops) {
      // Even a generous caller ttl cannot save a cycling FIB; report it
      // as what it is rather than a ttl artifact.
      r.outcome = ForwardOutcome::kDroppedLoop;
      r.final_node = at;
      return r;
    }
  }
}

}  // namespace dsdn::dataplane
