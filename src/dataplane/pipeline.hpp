#pragma once

// Batched per-core dataplane pipeline (§3.2, BESS-style run-to-completion).
//
// Packets flow through the forwarding stages in fixed-size batches of
// kBatchSize: one ingress stage performs the two-stage lookup for the
// whole batch, then transit rounds advance every still-live packet one
// scalar-loop step (transit label lookup -> down-link check -> FRR bypass
// splice -> advance) until the batch drains. Working state lives in a
// flat array of BatchPacket records with an inline label array, so a
// round touches contiguous memory instead of chasing per-packet heap
// stacks.
//
// Snapshot discipline: each batch pins one immutable FibSnapshot from the
// core's SnapshotHub slot at batch start (the RCU read side) and runs to
// completion on it; a reprogram publishing a new epoch never affects a
// batch already in flight.
//
// Parity contract: for the same (snapshot, packet) this pipeline returns
// bit-for-bit the verdict the scalar Forwarder computes -- same weighted
// route and bypass picks, same ttl accounting (an FRR splice consumes a
// ttl tick, exactly like the scalar loop's `continue`), same hop bound.
// The one divergence risk -- repeated FRR splices overflowing the inline
// label array -- is handled by rerunning that packet from scratch through
// the scalar Forwarder on the *same pinned snapshot* (deterministic, so
// the verdict is identical); such packets are counted as slow path. The
// differential test in tests/test_batch_pipeline.cpp enforces the
// contract across seeds and churn.

#include <array>
#include <atomic>
#include <span>

#include "dataplane/snapshot.hpp"
#include "dataplane/sublabel.hpp"

namespace dsdn::dataplane {

inline constexpr std::size_t kBatchSize = 32;
// Inline label capacity per packet; deeper stacks (repeated FRR splices)
// take the scalar slow path.
inline constexpr std::size_t kInlineLabels = 64;

// What the bench / traffic generator injects: a packet before the headend
// lookup, at its ingress router.
struct PacketSpec {
  std::uint32_t dst_ip = 0;
  metrics::PriorityClass priority = metrics::PriorityClass::kHigh;
  std::uint64_t entropy = 0;
  int ttl = 64;
  topo::NodeId ingress = 0;
};

// A sublabel-encoded packet (Appendix A): injected at `start` with its
// packed sublabel-pair stack already built by encode_sublabel_route.
struct SublabelSpec {
  topo::NodeId start = 0;
  LabelStack stack;
};

// Per-packet result, mirroring ForwardResult minus the trace (traces are
// opt-in via PipelineOptions::record_traces; the hot path skips them).
struct PacketVerdict {
  ForwardOutcome outcome = ForwardOutcome::kDroppedNoIngressRoute;
  topo::NodeId final_node = topo::kInvalidNode;
  double latency_s = 0.0;
  std::uint32_t hops = 0;
  std::uint32_t frr_activations = 0;
};

struct PipelineOptions {
  std::size_t core = 0;             // SnapshotHub slot this pipeline reads
  // Plan-level FRR fallback. BypassPlan::select validates candidates
  // against *live* topology link state, so set this only when nothing
  // mutates the topology concurrently (single-threaded tests); routers'
  // snapshot-resident BypassFib tables are always safe.
  const BypassPlan* bypasses = nullptr;
  std::vector<double> residual_gbps;     // for capacity-aware bypass picks
  bool record_traces = false;            // per-packet node traces (tests)
};

// Aggregate counters, safe to read from another thread while the
// pipeline's owner is forwarding (relaxed atomics; exact once the owner
// is quiescent). The bench's churn thread reads these live.
struct PipelineStats {
  std::uint64_t packets = 0;
  std::uint64_t batches = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped = 0;
  std::uint64_t frr_activations = 0;
  std::uint64_t slow_path_packets = 0;
  std::uint64_t sublabel_packets = 0;
  std::uint64_t sublabel_delivered = 0;
  std::uint64_t last_epoch = 0;  // epoch of the most recent batch
  // Drops by ForwardOutcome enum value (kDelivered slot unused).
  std::array<std::uint64_t, 8> by_outcome{};
};

class BatchPipeline {
 public:
  // `hub` must outlive the pipeline; opts.core must be < hub->num_cores().
  BatchPipeline(const topo::Topology& topo, const SnapshotHub* hub,
                PipelineOptions opts = {});

  // Runs every spec to completion in kBatchSize batches; verdicts land in
  // `out` (resized) in spec order. One snapshot acquire per batch.
  void process(std::span<const PacketSpec> specs,
               std::vector<PacketVerdict>& out);
  std::vector<PacketVerdict> process(std::span<const PacketSpec> specs);

  // Batched sublabel walk (Appendix A). Runs every sublabel-encoded
  // packet through the Table-1 walk in kBatchSize batches of flat
  // records, bit-for-bit matching forward_sublabel: same live-topology
  // liveness, same 4n+8 ttl budget, no FRR, kPopDeliver delivers only if
  // the pop empties the stack. `fibs` are the static per-router tables --
  // they are not snapshot-resident, so no snapshot epoch is pinned.
  // Stacks deeper than kInlineLabels rerun through the scalar walk
  // (counted as slow path). Results land in `out` in spec order.
  void process_sublabel(std::span<const SublabelSpec> specs,
                        const std::vector<SublabelFib>& fibs,
                        std::vector<SublabelForwardResult>& out);

  PipelineStats stats() const;

  // Node traces of the packets from the most recent process() call, in
  // spec order (empty unless opts.record_traces).
  const std::vector<std::vector<topo::NodeId>>& traces() const {
    return traces_;
  }

 private:
  struct BatchPacket;
  struct SubPacket;

  void run_batch(const PacketSpec* specs, std::size_t n, PacketVerdict* out,
                 std::size_t trace_base);
  void run_sublabel_batch(const SublabelSpec* specs, std::size_t n,
                          const std::vector<SublabelFib>& fibs,
                          SublabelForwardResult* out);
  // One scalar sublabel-loop step for every live packet; compacts and
  // returns the still-live count.
  std::size_t sublabel_round(SubPacket* pkts, std::size_t live,
                             const std::vector<SublabelFib>& fibs,
                             SublabelForwardResult* out);
  // Headend two-stage lookup for the whole batch; returns live count
  // (live packets compacted to the front of `pkts`).
  std::size_t stage_ingress(const PacketSpec* specs, BatchPacket* pkts,
                            std::size_t n, PacketVerdict* out,
                            std::size_t trace_base);
  // One scalar-loop step for every live packet; compacts and returns the
  // still-live count.
  std::size_t stage_round(BatchPacket* pkts, std::size_t live,
                          PacketVerdict* out, std::size_t trace_base);
  void finish(BatchPacket& p, ForwardOutcome o, PacketVerdict* out);
  void account(const PacketVerdict& v);
  // Deterministic scalar rerun on the pinned snapshot (inline overflow).
  void slow_path(const BatchPacket& p, PacketVerdict* out,
                 std::size_t trace_base);

  const topo::Topology& topo_;
  const SnapshotHub* hub_;
  PipelineOptions opts_;
  std::size_t max_hops_;
  // Snapshot pinned by the batch currently in flight (run_batch only; the
  // pipeline has a single owning thread).
  std::shared_ptr<const FibSnapshot> pinned_;

  std::vector<std::vector<topo::NodeId>> traces_;

  std::atomic<std::uint64_t> packets_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> frr_{0};
  std::atomic<std::uint64_t> slow_path_{0};
  std::atomic<std::uint64_t> sublabel_packets_{0};
  std::atomic<std::uint64_t> sublabel_delivered_{0};
  std::atomic<std::uint64_t> last_epoch_{0};
  std::array<std::atomic<std::uint64_t>, 8> by_outcome_{};
};

}  // namespace dsdn::dataplane
