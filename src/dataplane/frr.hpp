#pragma once

// Fast Reroute bypass paths (§3.2 fault tolerance, Appendices C & D).
//
// When a link dies, traffic from stale headends still arrives intending
// to traverse it. Each router pre-installs bypass paths around every
// local link: on hitting a down link the invalid label is popped and the
// bypass source route is prepended, delivering the packet to its original
// next hop, where the remaining labels resume the intended path.
//
// Four selection strategies from Appendix C:
//   kShortestPath      -- IGP-shortest bypass (today's production behavior)
//   kCapacityAware     -- bypass with the most spare capacity (widest path)
//   kKShortestPaths    -- k IGP-shortest bypasses; per flow pick the
//                         shortest with enough spare capacity, else the
//                         widest of them
//   kKCapacityAware    -- k widest bypasses, load-balanced by spare
//                         capacity
// dSDN's on-box view of demand and capacity is what enables the
// capacity-aware variants (recomputable as demand changes).

#include <map>
#include <optional>

#include "dataplane/label.hpp"
#include "te/dijkstra.hpp"

namespace dsdn::dataplane {

enum class BypassStrategy {
  kShortestPath,
  kCapacityAware,
  kKShortestPaths,
  kKCapacityAware,
};

const char* bypass_strategy_name(BypassStrategy s);

// Widest (maximum bottleneck residual) path src->dst honoring the
// constraints; nullopt when disconnected. `residual` must be sized to
// topo.num_links().
std::optional<te::Path> widest_path(const topo::Topology& topo,
                                    topo::NodeId src, topo::NodeId dst,
                                    const std::vector<double>& residual,
                                    const te::SpConstraints& c = {});

class BypassPlan {
 public:
  BypassPlan() = default;

  // Computes bypasses for every *up* link under the given strategy.
  // `residual_gbps` is the spare capacity per link under the current TE
  // placement (raw capacities used when empty). k applies to the
  // multi-path strategies (the paper settled on k = 16).
  static BypassPlan compute(const topo::Topology& topo, BypassStrategy s,
                            const std::vector<double>& residual_gbps = {},
                            std::size_t k = 16);

  // Computes bypasses only for the named links (up or down) -- what a
  // router actually needs installed while specific links are failed.
  // Simulators use this to avoid protecting thousands of healthy links.
  static BypassPlan compute_for_links(const topo::Topology& topo,
                                      BypassStrategy s,
                                      const std::vector<topo::LinkId>& links,
                                      const std::vector<double>& residual_gbps
                                      = {},
                                      std::size_t k = 16);

  BypassStrategy strategy() const { return strategy_; }

  // All bypass candidates protecting `link` (empty if none exist).
  const std::vector<te::Path>& candidates(topo::LinkId link) const;

  // Strategy-specific per-flow choice. `rate_gbps` is the flow's rate
  // (used by capacity admission in kKShortestPaths), `entropy` spreads
  // flows across candidates for load-balancing strategies,
  // `residual_gbps` is the current spare capacity per link.
  std::optional<te::Path> select(const topo::Topology& topo,
                                 topo::LinkId link, double rate_gbps,
                                 std::uint64_t entropy,
                                 const std::vector<double>& residual_gbps)
      const;

  // select() plus strict-route encoding, the form the forwarders splice
  // onto a packet's stack (depth enforcement off: FRR legitimately
  // deepens a stack past what a headend would push).
  std::optional<LabelStack> select_encoded(
      const topo::Topology& topo, topo::LinkId link, double rate_gbps,
      std::uint64_t entropy, const std::vector<double>& residual_gbps) const;

  std::size_t num_protected_links() const { return bypasses_.size(); }

 private:
  BypassStrategy strategy_ = BypassStrategy::kShortestPath;
  std::map<topo::LinkId, std::vector<te::Path>> bypasses_;
  static const std::vector<te::Path> kEmpty;
};

}  // namespace dsdn::dataplane
