#pragma once

// MPLS label representation for strict source routing (§3.2).
//
// A source route is encoded as a stack of labels enumerating each
// *directed link* to be traversed, identified by the unique link ID
// learned from NSUs -- the adjacency-SID style MPLS-SR data plane [3].
// Values 0..15 are reserved by MPLS, so link k maps to label k + 16.
//
// Modern routers can push / read past 12 labels [47]; paths longer than
// kMaxLabelDepth must use the sublabel encoding (Appendix A, sublabel.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/slo.hpp"
#include "te/types.hpp"
#include "topo/topology.hpp"

namespace dsdn::dataplane {

using Label = std::uint32_t;  // 20-bit MPLS label value

inline constexpr Label kReservedLabels = 16;
inline constexpr Label kMaxLabelValue = (1u << 20) - 1;
inline constexpr std::size_t kMaxLabelDepth = 12;

Label link_label(topo::LinkId link);
topo::LinkId label_link(Label label);

// Node-segment labels (segment routing, §3.2 coexistence): the top half
// of the 20-bit label space carries *node* SIDs -- "reach this router via
// ECMP shortest paths" -- disjoint from the adjacency-style link labels
// (link id + 16) for any WAN-sized topology. A segment-routed stack is
// 1-3 node segments, outermost first; each is consumed when the packet
// reaches the named router.
inline constexpr Label kNodeSegmentBase = 1u << 19;

inline constexpr bool is_node_segment_label(Label label) {
  return label >= kNodeSegmentBase && label <= kMaxLabelValue;
}
Label node_segment_label(topo::NodeId node);
topo::NodeId segment_node(Label label);

class LabelStack {
 public:
  LabelStack() = default;
  explicit LabelStack(std::vector<Label> labels) : labels_(std::move(labels)) {}

  bool empty() const { return labels_.empty(); }
  std::size_t depth() const { return labels_.size(); }

  // Top of stack = next label to act on.
  Label top() const;
  Label pop();
  void push(Label l);  // becomes the new top
  // Prepends a whole (bypass) stack on top, preserving its order.
  void push_all_on_top(const LabelStack& other);

  const std::vector<Label>& labels() const { return labels_; }

  std::string to_string() const;

  bool operator==(const LabelStack&) const = default;

 private:
  // Stored top-first: labels_[0] is the outermost label.
  std::vector<Label> labels_;
};

// Compiles a segment list (middlepoints then egress, in traversal order)
// into a node-SID stack. Throws std::length_error past kMaxLabelDepth.
LabelStack encode_segment_route(const std::vector<topo::NodeId>& segments);

// Compiles a TE path into a per-link label stack (top = first hop's link).
// Throws std::length_error when the path exceeds kMaxLabelDepth and
// enforce_depth is set (FRR splicing may legitimately deepen a stack
// beyond what a headend would push, so bypass encoding disables it).
LabelStack encode_strict_route(const te::Path& path,
                               bool enforce_depth = true);

// Inverse of encode_strict_route (for tests / debugging).
te::Path decode_strict_route(const LabelStack& stack);

// A packet traversing the simulated data plane. (Visited-node traces
// live on ForwardResult, which the forwarder fills in.)
struct Packet {
  std::uint32_t dst_ip = 0;
  metrics::PriorityClass priority = metrics::PriorityClass::kHigh;
  std::uint64_t entropy = 0;  // 5-tuple hash stand-in for load balancing
  LabelStack stack;
  int ttl = 64;
};

}  // namespace dsdn::dataplane
