#include "dataplane/label.hpp"

#include <sstream>
#include <stdexcept>

namespace dsdn::dataplane {

Label link_label(topo::LinkId link) {
  const Label l = link + kReservedLabels;
  if (l >= kNodeSegmentBase)
    throw std::overflow_error("link id overlaps node-segment label space");
  return l;
}

topo::LinkId label_link(Label label) {
  if (label < kReservedLabels)
    throw std::invalid_argument("reserved MPLS label");
  if (is_node_segment_label(label))
    throw std::invalid_argument("node-segment label is not a link label");
  return label - kReservedLabels;
}

Label node_segment_label(topo::NodeId node) {
  const Label l = kNodeSegmentBase + node;
  if (l > kMaxLabelValue)
    throw std::overflow_error("node id exceeds segment label space");
  return l;
}

topo::NodeId segment_node(Label label) {
  if (!is_node_segment_label(label))
    throw std::invalid_argument("not a node-segment label");
  return label - kNodeSegmentBase;
}

LabelStack encode_segment_route(const std::vector<topo::NodeId>& segments) {
  if (segments.size() > kMaxLabelDepth)
    throw std::length_error("segment list exceeds MPLS label depth");
  std::vector<Label> labels;
  labels.reserve(segments.size());
  for (topo::NodeId n : segments) labels.push_back(node_segment_label(n));
  return LabelStack(std::move(labels));
}

Label LabelStack::top() const {
  if (labels_.empty()) throw std::logic_error("top of empty label stack");
  return labels_.front();
}

Label LabelStack::pop() {
  if (labels_.empty()) throw std::logic_error("pop of empty label stack");
  const Label l = labels_.front();
  labels_.erase(labels_.begin());
  return l;
}

void LabelStack::push(Label l) { labels_.insert(labels_.begin(), l); }

void LabelStack::push_all_on_top(const LabelStack& other) {
  labels_.insert(labels_.begin(), other.labels_.begin(), other.labels_.end());
}

std::string LabelStack::to_string() const {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (i) os << ",";
    os << labels_[i];
  }
  os << "]";
  return os.str();
}

LabelStack encode_strict_route(const te::Path& path, bool enforce_depth) {
  if (enforce_depth && path.hops() > kMaxLabelDepth)
    throw std::length_error(
        "path exceeds MPLS label depth; use sublabel encoding");
  std::vector<Label> labels;
  labels.reserve(path.hops());
  for (topo::LinkId l : path.links) labels.push_back(link_label(l));
  return LabelStack(std::move(labels));
}

te::Path decode_strict_route(const LabelStack& stack) {
  te::Path p;
  p.links.reserve(stack.depth());
  for (Label l : stack.labels()) p.links.push_back(label_link(l));
  return p;
}

}  // namespace dsdn::dataplane
