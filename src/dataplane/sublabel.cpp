#include "dataplane/sublabel.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>

namespace dsdn::dataplane {

std::size_t SublabelAssignment::num_sublabels_used() const {
  std::set<Sublabel> used(link_sublabel.begin(), link_sublabel.end());
  used.erase(kNullSublabel);
  return used.size();
}

SublabelAssignment assign_sublabels(const topo::Topology& topo) {
  SublabelAssignment out;
  out.link_sublabel.assign(topo.num_links(), kNullSublabel);

  // Colors already used by fibers incident to each node.
  std::vector<std::set<std::size_t>> used(topo.num_nodes());

  std::size_t max_color = 0;
  for (const topo::Link& l : topo.links()) {
    // One pass per fiber: the duplex representative is the lower link id;
    // standalone directed links are their own fiber.
    const bool representative =
        l.reverse == topo::kInvalidLink || l.id < l.reverse;
    if (!representative) continue;

    std::size_t color = 0;
    while (used[l.src].contains(color) || used[l.dst].contains(color))
      ++color;
    used[l.src].insert(color);
    used[l.dst].insert(color);
    max_color = std::max(max_color, color);

    // Directed sublabel: 2*color + direction bit, shifted past the null
    // sequence. The representative direction takes bit 0.
    const auto base = static_cast<Sublabel>(2 * color + 1);
    if (base + 1 > kMaxSublabel)
      throw std::overflow_error("sublabel space exhausted (degree too high)");
    out.link_sublabel[l.id] = base;
    if (l.reverse != topo::kInvalidLink)
      out.link_sublabel[l.reverse] = static_cast<Sublabel>(base + 1);
  }
  out.num_colors = max_color + 1;
  return out;
}

Label pack_sublabels(Sublabel s1, Sublabel s2) {
  if (s1 > kMaxSublabel || s2 > kMaxSublabel)
    throw std::invalid_argument("sublabel exceeds 10 bits");
  return (static_cast<Label>(s1) << 10) | s2;
}

std::pair<Sublabel, Sublabel> unpack_sublabels(Label label) {
  return {static_cast<Sublabel>((label >> 10) & kMaxSublabel),
          static_cast<Sublabel>(label & kMaxSublabel)};
}

LabelStack encode_sublabel_route(const te::Path& path,
                                 const SublabelAssignment& assignment) {
  std::vector<Label> labels;
  labels.reserve((path.hops() + 1) / 2);
  for (std::size_t i = 0; i < path.links.size(); i += 2) {
    const Sublabel s1 = assignment.link_sublabel[path.links[i]];
    const Sublabel s2 = i + 1 < path.links.size()
                            ? assignment.link_sublabel[path.links[i + 1]]
                            : kNullSublabel;
    if (s1 == kNullSublabel)
      throw std::logic_error("link without sublabel on path");
    labels.push_back(pack_sublabels(s1, s2));
  }
  return LabelStack(std::move(labels));
}

std::vector<Sublabel> decode_sublabel_route(const LabelStack& stack) {
  std::vector<Sublabel> out;
  out.reserve(stack.depth() * 2);
  const auto& labels = stack.labels();
  for (std::size_t i = 0; i < labels.size(); ++i) {
    const auto [s1, s2] = unpack_sublabels(labels[i]);
    if (s1 == kNullSublabel)
      throw std::invalid_argument("null first sublabel in stack");
    out.push_back(s1);
    if (s2 == kNullSublabel) {
      if (i + 1 != labels.size())
        throw std::invalid_argument("null pad before the final label");
      return out;  // odd-length path: trailing pad dropped
    }
    out.push_back(s2);
  }
  return out;
}

SublabelFib SublabelFib::build(const topo::Topology& topo, topo::NodeId node,
                               const SublabelAssignment& a) {
  SublabelFib fib;
  auto sub = [&](topo::LinkId l) { return a.link_sublabel[l]; };
  auto insert = [&](Label key, SublabelEntry e) {
    const auto [it, fresh] = fib.entries_.emplace(key, e);
    if (!fresh && (it->second.action != e.action ||
                   it->second.out_link != e.out_link)) {
      throw std::logic_error("ambiguous sublabel table entry");
    }
  };

  const topo::Node& n = topo.node(node);
  // Row 1: concat(l_in, l_out) -> pop, forward on l_out. Skip immediate
  // U-turns: they cannot appear on a loop-free strict route.
  for (topo::LinkId in : n.in_links) {
    for (topo::LinkId out : n.out_links) {
      if (topo.link(in).reverse == out) continue;
      insert(pack_sublabels(sub(in), sub(out)),
             {SublabelAction::kPopForward, out});
    }
  }
  // Row 2: concat(l_out, l_neighbor_out) -> keep, forward on l_out.
  for (topo::LinkId out : n.out_links) {
    const topo::NodeId neighbor = topo.link(out).dst;
    for (topo::LinkId nout : topo.node(neighbor).out_links) {
      if (topo.link(out).reverse == nout) continue;
      insert(pack_sublabels(sub(out), sub(nout)),
             {SublabelAction::kKeepForward, out});
    }
  }
  // Row 3: concat(l_in, null) -> pop, deliver to the IP destination.
  for (topo::LinkId in : n.in_links) {
    insert(pack_sublabels(sub(in), kNullSublabel),
           {SublabelAction::kPopDeliver, topo::kInvalidLink});
  }
  // Row 4: concat(l_out, null) -> keep, forward on l_out.
  for (topo::LinkId out : n.out_links) {
    insert(pack_sublabels(sub(out), kNullSublabel),
           {SublabelAction::kKeepForward, out});
  }
  return fib;
}

std::optional<SublabelEntry> SublabelFib::lookup(Label label) const {
  const auto it = entries_.find(label);
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

SublabelForwardResult forward_sublabel(const topo::Topology& topo,
                                       const std::vector<SublabelFib>& fibs,
                                       topo::NodeId start, LabelStack stack) {
  SublabelForwardResult r;
  topo::NodeId at = start;
  r.trace.push_back(at);
  std::size_t ttl = 4 * topo.num_nodes() + 8;

  while (ttl-- > 0) {
    if (stack.empty()) {
      r.delivered = true;
      r.final_node = at;
      return r;
    }
    // A caller can hand us a start node (or a table set) that does not
    // cover `at`; treat it as a miss instead of indexing out of range.
    if (at >= fibs.size()) {
      r.final_node = at;
      return r;
    }
    const auto entry = fibs[at].lookup(stack.top());
    if (!entry) {
      r.final_node = at;
      return r;  // table miss: drop
    }
    switch (entry->action) {
      case SublabelAction::kPopDeliver:
        stack.pop();
        r.delivered = stack.empty();
        r.final_node = at;
        return r;
      case SublabelAction::kPopForward:
        stack.pop();
        break;
      case SublabelAction::kKeepForward:
        break;
    }
    const topo::Link& l = topo.link(entry->out_link);
    if (!l.up) {
      r.final_node = at;
      return r;  // no FRR modeled in the sublabel walk
    }
    at = l.dst;
    ++r.hops;
    r.trace.push_back(at);
  }
  r.final_node = at;
  return r;
}

}  // namespace dsdn::dataplane
