#pragma once

// MPLS sublabels (Appendix A): strict source routing with two hops per
// 20-bit MPLS label, for networks whose paths exceed the hardware's
// 12-label push/read-past limit.
//
// Each directed link gets a 10-bit sublabel; an MPLS label carries a pair
// (sublabel1, sublabel2) of *consecutive* path links, with the 10-bit
// all-zeros null sequence padding odd-length paths. A router's static
// table holds the four entry types of Table 1, derivable purely from its
// own links and its immediate neighbors' advertised link sublabels -- no
// coordination beyond the standard link-state exchange, preserving the
// consensus-free property.
//
// For large networks (A.2) global sublabel uniqueness is relaxed to
// *local* uniqueness: at every node the sublabels of its ingress and
// egress links are mutually unique. We realize that with a greedy edge
// coloring of the fiber multigraph: each duplex fiber gets a color
// distinct from all fibers sharing an endpoint, and the directed sublabel
// is 2*color + direction_bit (+1 to keep 0 as the null sequence). For max
// degree k this needs at most 2*(2k-1) sublabel values -- within the same
// small-constant-times-k budget the paper derives, and far inside the
// 1023 values available (max degree 50 needs ~200).

#include <optional>
#include <unordered_map>

#include "dataplane/label.hpp"

namespace dsdn::dataplane {

using Sublabel = std::uint16_t;  // 10-bit value; 0 is the null sequence

inline constexpr Sublabel kNullSublabel = 0;
inline constexpr Sublabel kMaxSublabel = (1u << 10) - 1;

struct SublabelAssignment {
  // Per directed link id.
  std::vector<Sublabel> link_sublabel;
  std::size_t num_colors = 0;

  // Count of distinct sublabel values in use.
  std::size_t num_sublabels_used() const;
};

// Greedy fiber edge coloring; throws std::overflow_error if more than
// kMaxSublabel values would be needed (cannot happen for degree <= ~255).
SublabelAssignment assign_sublabels(const topo::Topology& topo);

// Packs/unpacks a pair of sublabels into one 20-bit MPLS label
// (sublabel1 in the high 10 bits -- it is acted on first).
Label pack_sublabels(Sublabel s1, Sublabel s2);
std::pair<Sublabel, Sublabel> unpack_sublabels(Label label);

// Compresses a strict route into ceil(hops/2) sublabel-pair labels.
LabelStack encode_sublabel_route(const te::Path& path,
                                 const SublabelAssignment& assignment);

// Inverse of encode_sublabel_route (for tests / debugging): unpacks the
// stack back into the flat sublabel sequence, dropping the trailing null
// pad. Throws std::invalid_argument on a malformed stack (a null
// sublabel anywhere but the final pad position -- no valid encoding
// produces one, since every path link carries a non-null sublabel).
std::vector<Sublabel> decode_sublabel_route(const LabelStack& stack);

enum class SublabelAction {
  kPopForward,   // concat(l_in, l_out): pop, forward on intf(l_out)
  kKeepForward,  // concat(l_out, l_next) / concat(l_out, null): keep label
  kPopDeliver,   // concat(l_in, null): pop, deliver to the IP destination
};

struct SublabelEntry {
  SublabelAction action = SublabelAction::kPopForward;
  topo::LinkId out_link = topo::kInvalidLink;  // invalid for kPopDeliver
};

// The static per-router MPLS table of Table 1.
class SublabelFib {
 public:
  // Builds router `node`'s table from the assignment (which it learns
  // from its own config plus neighbors' NSUs).
  static SublabelFib build(const topo::Topology& topo, topo::NodeId node,
                           const SublabelAssignment& assignment);

  std::optional<SublabelEntry> lookup(Label label) const;
  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<Label, SublabelEntry> entries_;
};

struct SublabelForwardResult {
  bool delivered = false;
  topo::NodeId final_node = topo::kInvalidNode;
  std::size_t hops = 0;
  std::vector<topo::NodeId> trace;
};

// Walks a sublabel-encoded packet from `start` until delivery or drop.
SublabelForwardResult forward_sublabel(const topo::Topology& topo,
                                       const std::vector<SublabelFib>& fibs,
                                       topo::NodeId start, LabelStack stack);

}  // namespace dsdn::dataplane
