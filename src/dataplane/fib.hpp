#pragma once

// Per-router forwarding state: the two-stage ingress lookup plus the
// static transit label table (§3.2).
//
// Stage 1 (prefix -> egress router) is built from prefix originations
// carried in NSUs. Stage 2 (egress router -> weighted source routes) is
// programmed by the dSDN Pathing/Programmer from the TE solution; one
// route is picked per packet by hashing header entropy. Transit packets
// bypass both stages: the outer label indexes the static transit table,
// which the controller programs once from its own link IDs.

#include <map>
#include <optional>
#include <unordered_map>

#include "dataplane/label.hpp"
#include "topo/prefix.hpp"

namespace dsdn::dataplane {

struct WeightedRoute {
  LabelStack stack;
  double weight = 1.0;
};

struct EncapEntry {
  std::vector<WeightedRoute> routes;
};

class IngressFib {
 public:
  // Stage-1 programming.
  void set_prefix(const topo::Prefix& p, topo::NodeId egress);
  void clear_prefixes();

  // Stage-2 programming: replaces the route set for an (egress, class).
  void set_routes(topo::NodeId egress, metrics::PriorityClass priority,
                  EncapEntry entry);
  void clear_routes();

  // Full two-stage lookup. nullopt when the destination is unknown or no
  // route is programmed. Deterministic in `entropy`.
  std::optional<LabelStack> lookup(std::uint32_t dst_ip,
                                   metrics::PriorityClass priority,
                                   std::uint64_t entropy) const;

  // Allocation-free variant for the batched pipeline's hot path: returns
  // a pointer into the installed route set (same weighted choice as
  // lookup()), or null on a miss. The pointer is valid as long as the
  // table is not reprogrammed -- which immutable FIB snapshots guarantee.
  const LabelStack* lookup_stack(std::uint32_t dst_ip,
                                 metrics::PriorityClass priority,
                                 std::uint64_t entropy) const;

  // Stage-1 only (exposed for the forwarder's local-delivery check).
  std::optional<topo::NodeId> egress_for(std::uint32_t dst_ip) const;

  std::size_t num_prefixes() const { return prefixes_.size(); }
  std::size_t num_encap_entries() const { return encap_.size(); }

  // Introspection for invariant checkers / status renderers: the routes
  // currently installed for one (egress, class), or null when none are.
  const EncapEntry* routes_for(topo::NodeId egress,
                               metrics::PriorityClass priority) const;
  // The full stage-2 table, keyed by (egress, class). Deterministic
  // iteration order (std::map) so checkers walking it stay reproducible.
  const std::map<std::pair<topo::NodeId, int>, EncapEntry>& encap_table()
      const {
    return encap_;
  }

 private:
  topo::PrefixTable prefixes_;
  std::map<std::pair<topo::NodeId, int>, EncapEntry> encap_;
};

class TransitFib {
 public:
  // Programs one static entry: packets whose outer label names `link`
  // leave through it. Installed when the controller comes up.
  void set_entry(Label label, topo::LinkId out_link);

  std::optional<topo::LinkId> lookup(Label label) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::unordered_map<Label, topo::LinkId> entries_;
};

// Convenience: builds the complete transit table for router `node` --
// one entry per local outgoing link ID, as advertised in its NSUs.
TransitFib build_transit_fib(const topo::Topology& topo, topo::NodeId node);

// One ECMP next hop of a segment entry. Carrying the far-end node makes
// the entry self-contained: checkers and flow evaluation can replay a
// segment walk from dataplane state alone, without the topology.
struct SrNextHop {
  topo::LinkId link = topo::kInvalidLink;
  topo::NodeId next = topo::kInvalidNode;

  bool operator==(const SrNextHop&) const = default;
};

// Segment-routing FIB: node-segment target -> the router's ECMP next
// hops on IGP shortest paths toward it (the IS-IS underlay, §3.2). The
// controller reprograms it from its converged view on every recompute;
// at forward time the dataplane re-picks among the members that are
// still *up*, which is segment routing's local repair -- no FRR splice.
class SrFib {
 public:
  // Replaces the member set for `target` (members sorted by link id for
  // deterministic ECMP picks). An empty vector removes the entry.
  void set_members(topo::NodeId target, std::vector<SrNextHop> members);
  void clear();

  // Null when no entry is programmed for `target`.
  const std::vector<SrNextHop>* members(topo::NodeId target) const;

  std::size_t num_targets() const { return entries_.size(); }
  std::size_t num_next_hops() const;

  // Deterministic iteration for invariant checkers.
  const std::map<topo::NodeId, std::vector<SrNextHop>>& table() const {
    return entries_;
  }

 private:
  std::map<topo::NodeId, std::vector<SrNextHop>> entries_;
};

// Deterministic ECMP pick for segment forwarding: index into the up
// subset of a segment entry's members, hashed from (flow entropy,
// current node) so a flow re-picks independently at every hop but
// identically across the scalar forwarder, the batched pipeline, and
// its slow path (the parity contract).
std::size_t sr_ecmp_pick(std::uint64_t entropy, topo::NodeId at,
                         std::size_t n_up);

// Pre-installed FRR bypasses for this router's local links (§3.2 fault
// tolerance, Appendix C): when an outgoing link dies, the invalid label
// is popped and one of these source routes is prepended, carrying the
// packet to the link's far end. Programmed by the on-box controller,
// which can pick them capacity-aware thanks to its NSU-fed global view.
class BypassFib {
 public:
  // Replaces the bypass set protecting `link`.
  void set_bypasses(topo::LinkId link, std::vector<WeightedRoute> routes);
  void clear();

  // Weighted pick for one flow; nullopt if the link is unprotected.
  std::optional<LabelStack> select(topo::LinkId link,
                                   std::uint64_t entropy) const;

  // Allocation-free variant (see IngressFib::lookup_stack): a pointer to
  // the picked bypass stack, or null when the link is unprotected.
  const LabelStack* select_stack(topo::LinkId link,
                                 std::uint64_t entropy) const;

  bool protects(topo::LinkId link) const;
  std::size_t num_protected_links() const { return bypasses_.size(); }

 private:
  std::unordered_map<topo::LinkId, std::vector<WeightedRoute>> bypasses_;
};

}  // namespace dsdn::dataplane
