#pragma once

// Node State Update (NSU) messages (§3.2).
//
// Each dSDN controller periodically (and on change) snapshots its local
// state -- link status and utilization, attached prefixes, and aggregate
// traffic demands toward each egress router -- and floods it with a
// monotonically increasing sequence number. Listening to everyone else's
// NSUs gives every controller the global view.
//
// NSUs are extensible with opaque TLVs (like IS-IS [39]) so operators can
// ship new controller versions that exchange extra information without
// breaking old ones.

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/slo.hpp"
#include "topo/prefix.hpp"
#include "topo/topology.hpp"

namespace dsdn::core {

struct LinkAdvert {
  topo::LinkId link = topo::kInvalidLink;
  topo::NodeId peer = topo::kInvalidNode;
  bool up = true;
  double capacity_gbps = 0.0;
  double igp_metric = 1.0;
  double delay_s = 0.0;
  // Operator-configured sublabel for this directed link (Appendix A);
  // 0 when the plain per-link-ID encoding is in use.
  std::uint16_t sublabel = 0;
};

struct DemandAdvert {
  topo::NodeId egress = topo::kInvalidNode;
  metrics::PriorityClass priority = metrics::PriorityClass::kHigh;
  double rate_gbps = 0.0;

  bool operator==(const DemandAdvert&) const = default;
};

struct OpaqueTlv {
  std::uint32_t type = 0;
  std::string value;

  bool operator==(const OpaqueTlv&) const = default;
};

struct NodeStateUpdate {
  topo::NodeId origin = topo::kInvalidNode;
  std::uint64_t seq = 0;
  std::vector<LinkAdvert> links;
  std::vector<topo::Prefix> prefixes;
  std::vector<DemandAdvert> demands;
  std::vector<OpaqueTlv> tlvs;
};

enum class NsuValidity {
  kValid,
  kBadOrigin,
  kDuplicateLinkAdvert,
  kNegativeCapacity,
  kNegativeDemand,
  kSelfDemand,  // demand whose egress is the origin itself
  kBadPrefix,
};

const char* nsu_validity_name(NsuValidity v);

// Invariant checks for malformed NSUs (§3.2 fault tolerance): run by
// every receiver before applying; invalid NSUs are dropped, not flooded.
NsuValidity validate_nsu(const NodeStateUpdate& nsu);

// Approximate wire size in bytes (for propagation-cost accounting; the
// paper notes worst-case demand adds ~4KB per router).
std::size_t nsu_wire_size(const NodeStateUpdate& nsu);

}  // namespace dsdn::core
