#pragma once

// The NodeStateDB (§3.3): merges the stream of flooded NSUs with local
// readings into a global network view over which TE runs.
//
// The *structural* inventory (which routers and links exist) comes from
// configuration, as in production networks; NSUs carry the *dynamic*
// state: link liveness, capacity, attached prefixes, and measured demand.
// Stale sequence numbers are rejected, which makes flooding idempotent
// and order-insensitive -- after quiescence every router's StateDb
// converges to the same digest (tested as the consensus-free invariant).

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "core/nsu.hpp"
#include "te/view_delta.hpp"
#include "traffic/matrix.hpp"

namespace dsdn::core {

class StateDb {
 public:
  // `configured` is the structural inventory; its dynamic state seeds the
  // initial view.
  explicit StateDb(const topo::Topology& configured);

  // Applies an NSU. Returns true if accepted (valid and strictly newer
  // than anything seen from the origin); false for stale, duplicate, or
  // malformed updates. Accepted updates refresh the view.
  bool apply(const NodeStateUpdate& nsu);

  // The current global network view.
  const topo::Topology& view() const { return view_; }

  // All advertised demands, aggregated by (src, egress, class).
  traffic::TrafficMatrix demands() const;

  // Prefix -> egress table assembled from NSUs.
  const topo::PrefixTable& prefixes() const { return prefixes_; }

  // Flat (prefix, egress) list in deterministic order, for programming.
  std::vector<std::pair<topo::Prefix, topo::NodeId>> prefix_entries() const;

  // Sublabel assignment advertised in NSUs (0 where unset).
  const std::vector<std::uint16_t>& sublabels() const { return sublabels_; }

  // Latest accepted NSU from an origin (nullptr if none) -- used by
  // extensions that read opaque TLVs (e.g. algorithm coexistence).
  const NodeStateUpdate* latest(topo::NodeId origin) const;

  // Every stored NSU, ordered by origin (for database resynchronization
  // after an adjacency comes up -- the CSNP-style exchange of [7]).
  std::vector<const NodeStateUpdate*> all_latest() const;

  std::uint64_t seq_of(topo::NodeId origin) const;
  bool heard_from(topo::NodeId origin) const;
  std::size_t num_origins() const { return latest_.size(); }

  // Order-insensitive digest of the dynamic state; equal digests on two
  // routers mean they will compute identical TE solutions.
  std::uint64_t digest() const;

  // Counters for monitoring/debugging.
  std::size_t accepted() const { return accepted_; }
  std::size_t rejected_stale() const { return rejected_stale_; }
  std::size_t rejected_invalid() const { return rejected_invalid_; }

  // Crash recovery (§3.2 fault tolerance): adopt a neighbor's entire
  // NSU database (the restart technique of IS-IS [55]).
  void load_from(const StateDb& neighbor);

  // The view changes since the previous take_delta() call (links whose
  // liveness/capacity changed, origins whose demand adverts changed),
  // for warm-starting the TE recompute. The first call returns a `full`
  // delta, meaning "no usable baseline". Taking the delta refreshes the
  // baseline.
  //
  // The delta is computed by *diffing* the current state against a
  // snapshot of the state at the previous call -- deliberately not by
  // accumulating marks during apply(). The accumulated form is a
  // function of the NSU arrival history, which lossy/reordered flooding
  // makes receiver-specific: a flap's down-NSU arriving after its up-NSU
  // is rejected as stale and marks nothing, so two routers with
  // identical digests could warm-solve different released sets and
  // their headends jointly overcommit a link. The snapshot diff is a
  // pure function of two digest-agreed states, preserving
  // identical-views => identical-solutions under warm start.
  te::ViewDelta take_delta();

 private:
  void apply_to_view(const NodeStateUpdate& nsu);

  topo::Topology view_;
  std::unordered_map<topo::NodeId, NodeStateUpdate> latest_;
  topo::PrefixTable prefixes_;
  std::vector<std::uint16_t> sublabels_;
  std::size_t accepted_ = 0;
  std::size_t rejected_stale_ = 0;
  std::size_t rejected_invalid_ = 0;

  // Baseline for take_delta(): the dynamic state as of the previous
  // call (bounded memory however many NSUs arrive between recomputes).
  struct LinkBaseline {
    bool up = false;
    double capacity_gbps = 0.0;
  };
  bool has_baseline_ = false;
  std::vector<LinkBaseline> base_links_;  // by LinkId
  std::unordered_map<topo::NodeId, std::vector<DemandAdvert>> base_demands_;
};

}  // namespace dsdn::core
