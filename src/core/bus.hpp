#pragma once

// The controller-internal pub-sub bus (§3.3, Fig 6): standalone modules
// (NodeStateExchange, StateDB, LocalState, Pathing, Programmer)
// communicate by publishing typed messages to topics rather than calling
// each other directly, keeping them independently replaceable.
//
// Delivery is synchronous and in subscription order -- the controller is
// single-threaded by design (the heavy lifting happens in the separately
// containerized TE solver).

#include <any>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace dsdn::core {

class Bus {
 public:
  using Handler = std::function<void(const std::any&)>;

  // Subscribes to a topic; returns a token usable with unsubscribe().
  std::size_t subscribe(const std::string& topic, Handler handler);
  void unsubscribe(const std::string& topic, std::size_t token);

  // Synchronously delivers to all current subscribers of the topic.
  void publish(const std::string& topic, const std::any& message) const;

  // Typed convenience: publishes T and lets subscribers any_cast it.
  template <typename T>
  void publish_as(const std::string& topic, const T& message) const {
    publish(topic, std::any(message));
  }

  std::size_t num_subscribers(const std::string& topic) const;

 private:
  struct Sub {
    std::size_t token;
    Handler handler;
  };
  std::map<std::string, std::vector<Sub>> subs_;
  std::size_t next_token_ = 1;
};

// Well-known topics used by the stock controller wiring.
namespace topics {
inline constexpr const char* kNsuReceived = "nsu.received";     // NodeStateUpdate
inline constexpr const char* kStateChanged = "state.changed";   // uint64 digest
inline constexpr const char* kSolutionReady = "solution.ready"; // te::Solution
}  // namespace topics

}  // namespace dsdn::core
