#pragma once

// The Programmer module (§3.3): installs this router's slice of the TE
// solution into the forwarding hardware. In production this speaks gRIBI
// to the NOS; here it programs the dataplane::RouterDataplane directly.
//
// Programming is entirely *local* -- the decisive difference from cSDN's
// two-phase network-wide process (§4): a dSDN router only ever touches
// its own tables, so Tprog is a single-router operation.

#include "core/state_db.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/frr.hpp"
#include "te/types.hpp"

namespace dsdn::core {

class Programmer {
 public:
  explicit Programmer(topo::NodeId self) : self_(self) {}

  // One-time setup when the controller comes up: static transit entries
  // for every local link ID (§3.2).
  void program_static_transit(const topo::Topology& configured,
                              dataplane::RouterDataplane& hw) const;

  // Installs prefix->egress mappings from the current global view.
  void program_prefixes(const StateDb& state,
                        dataplane::RouterDataplane& hw) const;

  // Replaces the encap (egress -> weighted source routes) entries with
  // this router's allocations. Paths longer than the hardware label
  // depth are skipped and counted (callers alert on it; such networks
  // should move to the sublabel encoding).
  struct EncapReport {
    std::size_t routes_installed = 0;
    std::size_t routes_too_deep = 0;
  };
  EncapReport program_encap(const std::vector<te::Allocation>& own,
                            dataplane::RouterDataplane& hw) const;

  // Pre-installs FRR bypasses for this router's local links (Appendix C).
  // dSDN's on-box view lets the selection be capacity-aware: `residual`
  // is spare capacity under the current TE placement, from the NSU-fed
  // view. Multi-path strategies are realized as weighted ECMP groups
  // (weights: spare capacity for k-capacity-aware, rank-biased for
  // k-shortest), which is how the ASIC would hold them.
  struct BypassReport {
    std::size_t links_protected = 0;
    std::size_t routes_installed = 0;
  };
  BypassReport program_bypasses(const topo::Topology& view,
                                const std::vector<double>& residual_gbps,
                                dataplane::BypassStrategy strategy,
                                std::size_t k,
                                dataplane::RouterDataplane& hw) const;

 private:
  topo::NodeId self_;
};

}  // namespace dsdn::core
