#pragma once

// The Programmer module (§3.3): installs this router's slice of the TE
// solution into the forwarding hardware. In production this speaks gRIBI
// to the NOS; here it programs the dataplane::RouterDataplane directly.
//
// Programming is entirely *local* -- the decisive difference from cSDN's
// two-phase network-wide process (§4): a dSDN router only ever touches
// its own tables, so Tprog is a single-router operation.

#include <functional>

#include "core/state_db.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/frr.hpp"
#include "te/types.hpp"
#include "util/rng.hpp"

namespace dsdn::core {

// Retry/backoff policy for gRIBI-style install operations. A real NOS
// RPC can time out or transiently fail (Fig 19's programming tail); the
// Programmer retries each install with exponential backoff plus jitter
// and gives up after max_attempts so one wedged route cannot stall the
// whole batch.
struct ProgramRetryPolicy {
  int max_attempts = 4;
  double attempt_timeout_s = 0.200;  // wall time charged per failed attempt
  double backoff_base_s = 0.050;
  double backoff_multiplier = 2.0;
  double backoff_jitter = 0.2;  // fraction of the backoff added uniformly
};

// Transient-failure oracle for install attempts: returns true when the
// attempt succeeds. op_index identifies the route within the batch,
// attempt counts from 0. Null gate = the hardware never fails (the
// in-process dataplane of this repo).
using InstallGate = std::function<bool(std::size_t op_index, int attempt)>;

class Programmer {
 public:
  explicit Programmer(topo::NodeId self) : self_(self) {}

  // One-time setup when the controller comes up: static transit entries
  // for every local link ID (§3.2).
  void program_static_transit(const topo::Topology& configured,
                              dataplane::RouterDataplane& hw) const;

  // Installs prefix->egress mappings from the current global view.
  void program_prefixes(const StateDb& state,
                        dataplane::RouterDataplane& hw) const;

  // Replaces the encap (egress -> weighted source routes) entries with
  // this router's allocations. Paths longer than the hardware label
  // depth are skipped and counted (callers alert on it; such networks
  // should move to the sublabel encoding).
  struct EncapReport {
    std::size_t routes_installed = 0;
    std::size_t routes_too_deep = 0;
    // Of routes_installed, how many were segment stacks (1-3 node
    // segments) rather than strict per-link stacks.
    std::size_t sr_routes_installed = 0;
    // Retry accounting (meaningful when a gate is supplied).
    std::size_t install_retries = 0;
    std::size_t routes_gave_up = 0;
    // Wall time the failed attempts cost: per-attempt timeouts plus
    // backoff waits. Success latency itself is sampled by the Tprog
    // calibration; this is the *extra* tail retries add (Fig 19).
    double retry_time_s = 0.0;
  };
  EncapReport program_encap(const std::vector<te::Allocation>& own,
                            dataplane::RouterDataplane& hw) const;

  // Flaky-channel variant: each route install is attempted through
  // `gate` under `policy`; routes whose installs exhaust max_attempts
  // are counted in routes_gave_up and left uninstalled. `rng` (optional)
  // drives backoff jitter.
  EncapReport program_encap(const std::vector<te::Allocation>& own,
                            dataplane::RouterDataplane& hw,
                            const ProgramRetryPolicy& policy,
                            const InstallGate& gate,
                            util::Rng* rng = nullptr) const;

  // Installs this router's node-segment FIB (SrFib): for every reachable
  // target, the ECMP shortest-path members toward it over the view's up
  // links. Purely local, derived from the same converged view the SR
  // solver expanded against, so transit behavior matches the headend's
  // capacity accounting once views agree.
  struct SrReport {
    std::size_t targets = 0;
    std::size_t next_hops = 0;
  };
  SrReport program_sr(const topo::Topology& view,
                      dataplane::RouterDataplane& hw) const;

  // Pre-installs FRR bypasses for this router's local links (Appendix C).
  // dSDN's on-box view lets the selection be capacity-aware: `residual`
  // is spare capacity under the current TE placement, from the NSU-fed
  // view. Multi-path strategies are realized as weighted ECMP groups
  // (weights: spare capacity for k-capacity-aware, rank-biased for
  // k-shortest), which is how the ASIC would hold them.
  struct BypassReport {
    std::size_t links_protected = 0;
    std::size_t routes_installed = 0;
  };
  BypassReport program_bypasses(const topo::Topology& view,
                                const std::vector<double>& residual_gbps,
                                dataplane::BypassStrategy strategy,
                                std::size_t k,
                                dataplane::RouterDataplane& hw) const;

 private:
  topo::NodeId self_;
};

}  // namespace dsdn::core
