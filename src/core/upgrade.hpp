#pragma once

// Algorithm coexistence during controller rollouts (§3.2, "Upgrades").
//
// dSDN assumes every controller solves the global TE problem identically,
// but operator code upgrades mean different algorithm versions coexist
// mid-rollout. Source routing keeps forwarding *correct* regardless
// (packets follow the headend's choice, loop-free); the risk is
// congestion from controllers mispredicting each other's placement.
//
// The paper's remedy, implemented here: each controller advertises which
// algorithm it runs in an opaque NSU TLV; TE controllers first compute
// the placement the non-TE controllers will make (e.g. capacity-oblivious
// shortest path), deduct it from capacity, and run TE for the remaining
// demands. Every router -- old or new -- thereby predicts the same global
// placement, preserving the consensus-free property across the rollout.

#include <functional>
#include <optional>

#include "core/pathing.hpp"
#include "te/segment_routing.hpp"

namespace dsdn::core {

enum class PathingAlgorithm {
  kMaxMinFairTe = 0,   // the stock solver
  kShortestPath = 1,   // capacity-oblivious IGP shortest path (legacy)
  kSegmentRouting = 2, // node-segment stacks over underlay ECMP (te::SrSolver)
};

const char* pathing_algorithm_name(PathingAlgorithm a);

// TLV carrying the originator's algorithm (one byte of payload).
inline constexpr std::uint32_t kAlgorithmTlvType = 0xA190;

OpaqueTlv make_algorithm_tlv(PathingAlgorithm a);

// TLV carrying a node-segment stack (diagnostics / rollout audit): one
// count byte then count little-endian uint16 node ids, count in [1,3].
inline constexpr std::uint32_t kSegmentStackTlvType = 0xA191;
inline constexpr std::size_t kMaxSegmentStackDepth = 3;

OpaqueTlv make_segment_stack_tlv(const std::vector<topo::NodeId>& segments);

// Strict decode of a segment-stack TLV: wrong type, bad count, short or
// oversized payload, or a node id >= num_nodes all yield nullopt (the
// wire-fuzz target feeds this arbitrary bytes).
std::optional<std::vector<topo::NodeId>> parse_segment_stack_tlv(
    const OpaqueTlv& tlv, std::size_t num_nodes);

// Reads the algorithm TLV from an NSU; nullopt when absent/garbled.
// Absent means "pre-TLV controller", which the rollout plan treats as
// kMaxMinFairTe by default.
std::optional<PathingAlgorithm> parse_algorithm_tlv(const NodeStateUpdate&);

// Per-router algorithm map assembled from a StateDb's TLVs. Routers we
// have not heard an algorithm from are assumed to run `fallback`.
std::vector<PathingAlgorithm> algorithm_map_from_state(
    const StateDb& state,
    PathingAlgorithm fallback = PathingAlgorithm::kMaxMinFairTe);

// SolveApi that accounts for what algorithm each headend runs, in a
// globally agreed precedence order so every router predicts the same
// placement regardless of which algorithm it runs itself:
//   1. demands originated by kShortestPath routers are placed on their
//      IGP shortest paths (capacity-oblivious, full rate), draining
//      residual capacity;
//   2. demands originated by kSegmentRouting routers are placed by the
//      SR waterfill on what remains;
//   3. the stock solver places the remaining demands on what is left.
// The output covers all demands in input order, so Pathing/Programmer
// work unchanged.
class MixedAlgorithmSolver final : public SolveApi {
 public:
  using AlgorithmOf = std::function<PathingAlgorithm(topo::NodeId)>;

  MixedAlgorithmSolver(te::SolverOptions options, AlgorithmOf algorithm_of,
                       te::SrOptions sr_options = {})
      : solver_(options), sr_solver_(options, sr_options),
        algorithm_of_(std::move(algorithm_of)) {}

  te::Solution solve(const topo::Topology& view,
                     const traffic::TrafficMatrix& demands,
                     te::SolveStats* stats) const override;

 private:
  te::Solver solver_;
  te::SrSolver sr_solver_;
  AlgorithmOf algorithm_of_;
};

}  // namespace dsdn::core
