#include "core/wire.hpp"

#include <cstring>

namespace dsdn::core {

namespace {

// Section types.
constexpr std::uint16_t kSectionLinks = 1;
constexpr std::uint16_t kSectionPrefixes = 2;
constexpr std::uint16_t kSectionDemands = 3;
constexpr std::uint16_t kSectionTlv = 4;

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) {
    std::uint64_t raw;
    std::memcpy(&raw, &v, sizeof(raw));
    u64(raw);
  }
  void raw(const std::string& s) {
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  // Patches a previously reserved u32 length slot.
  std::size_t reserve_u32() {
    const std::size_t at = bytes_.size();
    u32(0);
    return at;
  }
  void patch_u32(std::size_t at, std::uint32_t v) {
    bytes_[at] = static_cast<std::uint8_t>(v);
    bytes_[at + 1] = static_cast<std::uint8_t>(v >> 8);
    bytes_[at + 2] = static_cast<std::uint8_t>(v >> 16);
    bytes_[at + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes) {}

  bool u8(std::uint8_t& v) {
    if (at_ + 1 > limit_) return false;
    v = bytes_[at_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t a, b;
    if (!u8(a) || !u8(b)) return false;
    v = static_cast<std::uint16_t>(a | (b << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t a, b;
    if (!u16(a) || !u16(b)) return false;
    v = static_cast<std::uint32_t>(a) | (static_cast<std::uint32_t>(b) << 16);
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint32_t a, b;
    if (!u32(a) || !u32(b)) return false;
    v = static_cast<std::uint64_t>(a) | (static_cast<std::uint64_t>(b) << 32);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    std::memcpy(&v, &raw, sizeof(v));
    return true;
  }
  bool str(std::size_t n, std::string& out) {
    if (at_ + n > limit_) return false;
    out.assign(bytes_.begin() + static_cast<std::ptrdiff_t>(at_),
               bytes_.begin() + static_cast<std::ptrdiff_t>(at_ + n));
    at_ += n;
    return true;
  }
  bool skip(std::size_t n) {
    if (at_ + n > limit_) return false;
    at_ += n;
    return true;
  }
  std::size_t at() const { return at_; }
  std::size_t remaining() const { return limit_ - at_; }
  bool done() const { return at_ == limit_; }

  // Narrows the readable window to the next n bytes; returns the old
  // limit for restore.
  bool push_limit(std::size_t n, std::size_t& saved) {
    if (at_ + n > limit_) return false;
    saved = limit_;
    limit_ = at_ + n;
    return true;
  }
  void pop_limit(std::size_t saved) { limit_ = saved; }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t at_ = 0;
  std::size_t limit_ = SIZE_MAX;

 public:
  void init_limit() { limit_ = bytes_.size(); }
};

}  // namespace

std::vector<std::uint8_t> serialize_nsu(const NodeStateUpdate& nsu) {
  Writer w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u32(nsu.origin);
  w.u64(nsu.seq);

  auto begin_section = [&](std::uint16_t type) {
    w.u16(type);
    return w.reserve_u32();
  };
  auto end_section = [&](std::size_t len_at) {
    w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - len_at - 4));
  };

  {
    const auto at = begin_section(kSectionLinks);
    w.u32(static_cast<std::uint32_t>(nsu.links.size()));
    for (const LinkAdvert& l : nsu.links) {
      w.u32(l.link);
      w.u32(l.peer);
      w.u8(l.up ? 1 : 0);
      w.f64(l.capacity_gbps);
      w.f64(l.igp_metric);
      w.f64(l.delay_s);
      w.u16(l.sublabel);
    }
    end_section(at);
  }
  {
    const auto at = begin_section(kSectionPrefixes);
    w.u32(static_cast<std::uint32_t>(nsu.prefixes.size()));
    for (const topo::Prefix& p : nsu.prefixes) {
      w.u32(p.addr);
      w.u8(static_cast<std::uint8_t>(p.len));
    }
    end_section(at);
  }
  {
    const auto at = begin_section(kSectionDemands);
    w.u32(static_cast<std::uint32_t>(nsu.demands.size()));
    for (const DemandAdvert& d : nsu.demands) {
      w.u32(d.egress);
      w.u8(static_cast<std::uint8_t>(d.priority));
      w.f64(d.rate_gbps);
    }
    end_section(at);
  }
  for (const OpaqueTlv& tlv : nsu.tlvs) {
    const auto at = begin_section(kSectionTlv);
    w.u32(tlv.type);
    w.u32(static_cast<std::uint32_t>(tlv.value.size()));
    w.raw(tlv.value);
    end_section(at);
  }
  return w.take();
}

std::optional<NodeStateUpdate> parse_nsu(
    const std::vector<std::uint8_t>& bytes) {
  if (bytes.size() > kMaxWireSize) return std::nullopt;
  Reader r(bytes);
  r.init_limit();

  std::uint32_t magic;
  std::uint16_t version;
  NodeStateUpdate nsu;
  if (!r.u32(magic) || magic != kWireMagic) return std::nullopt;
  if (!r.u16(version) || version != kWireVersion) return std::nullopt;
  if (!r.u32(nsu.origin)) return std::nullopt;
  if (!r.u64(nsu.seq)) return std::nullopt;

  while (!r.done()) {
    std::uint16_t type;
    std::uint32_t length;
    if (!r.u16(type) || !r.u32(length)) return std::nullopt;
    if (length > r.remaining()) return std::nullopt;
    std::size_t saved;
    if (!r.push_limit(length, saved)) return std::nullopt;
    switch (type) {
      case kSectionLinks: {
        std::uint32_t n;
        if (!r.u32(n)) return std::nullopt;
        // 35 bytes per advert (u32+u32+u8+3*f64+u16); bound n before
        // reserving.
        if (static_cast<std::size_t>(n) * 35 != r.remaining())
          return std::nullopt;
        nsu.links.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          LinkAdvert l;
          std::uint8_t up;
          if (!r.u32(l.link) || !r.u32(l.peer) || !r.u8(up) ||
              !r.f64(l.capacity_gbps) || !r.f64(l.igp_metric) ||
              !r.f64(l.delay_s) || !r.u16(l.sublabel)) {
            return std::nullopt;
          }
          l.up = up != 0;
          nsu.links.push_back(l);
        }
        break;
      }
      case kSectionPrefixes: {
        std::uint32_t n;
        if (!r.u32(n)) return std::nullopt;
        if (static_cast<std::size_t>(n) * 5 != r.remaining())
          return std::nullopt;
        nsu.prefixes.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          topo::Prefix p;
          std::uint8_t len;
          if (!r.u32(p.addr) || !r.u8(len)) return std::nullopt;
          p.len = len;
          nsu.prefixes.push_back(p);
        }
        break;
      }
      case kSectionDemands: {
        std::uint32_t n;
        if (!r.u32(n)) return std::nullopt;
        if (static_cast<std::size_t>(n) * 13 != r.remaining())
          return std::nullopt;
        nsu.demands.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          DemandAdvert d;
          std::uint8_t cls;
          if (!r.u32(d.egress) || !r.u8(cls) || !r.f64(d.rate_gbps))
            return std::nullopt;
          if (cls >= metrics::kNumPriorityClasses) return std::nullopt;
          d.priority = static_cast<metrics::PriorityClass>(cls);
          nsu.demands.push_back(d);
        }
        break;
      }
      case kSectionTlv: {
        OpaqueTlv tlv;
        std::uint32_t value_len;
        if (!r.u32(tlv.type) || !r.u32(value_len)) return std::nullopt;
        if (value_len != r.remaining()) return std::nullopt;
        if (!r.str(value_len, tlv.value)) return std::nullopt;
        nsu.tlvs.push_back(std::move(tlv));
        break;
      }
      default:
        // Unknown section from a newer controller: skip it whole.
        if (!r.skip(r.remaining())) return std::nullopt;
        break;
    }
    if (!r.done()) return std::nullopt;  // trailing bytes inside section
    r.pop_limit(saved);
  }
  return nsu;
}

}  // namespace dsdn::core
