#include "core/wire.hpp"

#include <cstring>
#include <sstream>

namespace dsdn::core {

namespace {

// Per-record encoded sizes (see serialize_nsu).
constexpr std::size_t kLinkAdvertBytes = 35;  // u32+u32+u8+3*f64+u16
constexpr std::size_t kPrefixBytes = 5;       // u32+u8
constexpr std::size_t kDemandBytes = 13;      // u32+u8+f64

class Writer {
 public:
  void u8(std::uint8_t v) { bytes_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void f64(double v) {
    std::uint64_t raw;
    std::memcpy(&raw, &v, sizeof(raw));
    u64(raw);
  }
  void raw(const std::string& s) {
    bytes_.insert(bytes_.end(), s.begin(), s.end());
  }
  // Patches a previously reserved u32 length slot.
  std::size_t reserve_u32() {
    const std::size_t at = bytes_.size();
    u32(0);
    return at;
  }
  void patch_u32(std::size_t at, std::uint32_t v) {
    bytes_[at] = static_cast<std::uint8_t>(v);
    bytes_[at + 1] = static_cast<std::uint8_t>(v >> 8);
    bytes_[at + 2] = static_cast<std::uint8_t>(v >> 16);
    bytes_[at + 3] = static_cast<std::uint8_t>(v >> 24);
  }
  std::size_t size() const { return bytes_.size(); }
  std::vector<std::uint8_t> take() { return std::move(bytes_); }

 private:
  std::vector<std::uint8_t> bytes_;
};

// Bounds-checked reader over an immutable byte window. Every primitive
// read goes through need(), which compares the request against the bytes
// *remaining* (never forming at_ + n, which could wrap); the first
// failure latches status, offset, and the enclosing section into the
// DecodeError and every subsequent read short-circuits.
class Reader {
 public:
  Reader(std::span<const std::uint8_t> bytes, DecodeError& err)
      : bytes_(bytes), limit_(bytes.size()), err_(err) {}

  void enter_section(std::uint16_t type) { section_ = type; }

  bool fail(DecodeStatus status) {
    if (err_.status == DecodeStatus::kOk) {
      err_.status = status;
      err_.offset = at_;
      err_.section = section_;
    }
    return false;
  }

  bool u8(std::uint8_t& v) {
    if (!need(1)) return false;
    v = bytes_[at_++];
    return true;
  }
  bool u16(std::uint16_t& v) {
    std::uint8_t a, b;
    if (!u8(a) || !u8(b)) return false;
    v = static_cast<std::uint16_t>(a | (b << 8));
    return true;
  }
  bool u32(std::uint32_t& v) {
    std::uint16_t a, b;
    if (!u16(a) || !u16(b)) return false;
    v = static_cast<std::uint32_t>(a) | (static_cast<std::uint32_t>(b) << 16);
    return true;
  }
  bool u64(std::uint64_t& v) {
    std::uint32_t a, b;
    if (!u32(a) || !u32(b)) return false;
    v = static_cast<std::uint64_t>(a) | (static_cast<std::uint64_t>(b) << 32);
    return true;
  }
  bool f64(double& v) {
    std::uint64_t raw;
    if (!u64(raw)) return false;
    std::memcpy(&v, &raw, sizeof(v));
    return true;
  }
  bool str(std::size_t n, std::string& out) {
    if (!need(n)) return false;
    out.assign(reinterpret_cast<const char*>(bytes_.data() + at_), n);
    at_ += n;
    return true;
  }
  bool skip(std::size_t n) {
    if (!need(n)) return false;
    at_ += n;
    return true;
  }
  std::size_t at() const { return at_; }
  std::size_t remaining() const { return limit_ - at_; }
  bool done() const { return at_ == limit_; }

  // Narrows the readable window to the next n bytes; returns the old
  // limit for restore.
  bool push_limit(std::size_t n, std::size_t& saved) {
    if (n > limit_ - at_) return fail(DecodeStatus::kBadSectionLength);
    saved = limit_;
    limit_ = at_ + n;
    return true;
  }
  void pop_limit(std::size_t saved) { limit_ = saved; }

 private:
  bool need(std::size_t n) {
    if (n > limit_ - at_) return fail(DecodeStatus::kTruncated);
    return true;
  }

  std::span<const std::uint8_t> bytes_;
  std::size_t at_ = 0;
  std::size_t limit_;
  std::uint16_t section_ = 0;
  DecodeError& err_;
};

}  // namespace

const char* decode_status_name(DecodeStatus s) {
  switch (s) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kOversized: return "oversized";
    case DecodeStatus::kTruncated: return "truncated";
    case DecodeStatus::kBadMagic: return "bad-magic";
    case DecodeStatus::kBadVersion: return "bad-version";
    case DecodeStatus::kBadSectionLength: return "bad-section-length";
    case DecodeStatus::kBadCount: return "bad-count";
    case DecodeStatus::kBadValue: return "bad-value";
  }
  return "?";
}

const char* wire_section_name(std::uint16_t section) {
  switch (section) {
    case 0: return "header";
    case kSectionLinks: return "links";
    case kSectionPrefixes: return "prefixes";
    case kSectionDemands: return "demands";
    case kSectionTlv: return "tlv";
  }
  return "unknown";
}

std::string DecodeError::to_string() const {
  std::ostringstream os;
  os << decode_status_name(status) << " at byte " << offset << " in section "
     << section << " (" << wire_section_name(section) << ")";
  return os.str();
}

std::vector<std::uint8_t> serialize_nsu(const NodeStateUpdate& nsu) {
  Writer w;
  w.u32(kWireMagic);
  w.u16(kWireVersion);
  w.u32(nsu.origin);
  w.u64(nsu.seq);

  auto begin_section = [&](std::uint16_t type) {
    w.u16(type);
    return w.reserve_u32();
  };
  auto end_section = [&](std::size_t len_at) {
    w.patch_u32(len_at, static_cast<std::uint32_t>(w.size() - len_at - 4));
  };

  {
    const auto at = begin_section(kSectionLinks);
    w.u32(static_cast<std::uint32_t>(nsu.links.size()));
    for (const LinkAdvert& l : nsu.links) {
      w.u32(l.link);
      w.u32(l.peer);
      w.u8(l.up ? 1 : 0);
      w.f64(l.capacity_gbps);
      w.f64(l.igp_metric);
      w.f64(l.delay_s);
      w.u16(l.sublabel);
    }
    end_section(at);
  }
  {
    const auto at = begin_section(kSectionPrefixes);
    w.u32(static_cast<std::uint32_t>(nsu.prefixes.size()));
    for (const topo::Prefix& p : nsu.prefixes) {
      w.u32(p.addr);
      w.u8(static_cast<std::uint8_t>(p.len));
    }
    end_section(at);
  }
  {
    const auto at = begin_section(kSectionDemands);
    w.u32(static_cast<std::uint32_t>(nsu.demands.size()));
    for (const DemandAdvert& d : nsu.demands) {
      w.u32(d.egress);
      w.u8(static_cast<std::uint8_t>(d.priority));
      w.f64(d.rate_gbps);
    }
    end_section(at);
  }
  for (const OpaqueTlv& tlv : nsu.tlvs) {
    const auto at = begin_section(kSectionTlv);
    w.u32(tlv.type);
    w.u32(static_cast<std::uint32_t>(tlv.value.size()));
    w.raw(tlv.value);
    end_section(at);
  }
  return w.take();
}

DecodeResult decode_nsu(std::span<const std::uint8_t> bytes) {
  DecodeResult result;
  if (bytes.size() > kMaxWireSize) {
    result.error = {DecodeStatus::kOversized, bytes.size(), 0};
    return result;
  }
  Reader r(bytes, result.error);

  std::uint32_t magic;
  std::uint16_t version;
  NodeStateUpdate nsu;
  if (!r.u32(magic)) return result;
  if (magic != kWireMagic) {
    r.fail(DecodeStatus::kBadMagic);
    return result;
  }
  if (!r.u16(version)) return result;
  if (version != kWireVersion) {
    r.fail(DecodeStatus::kBadVersion);
    return result;
  }
  if (!r.u32(nsu.origin) || !r.u64(nsu.seq)) return result;

  while (!r.done()) {
    std::uint16_t type;
    std::uint32_t length;
    r.enter_section(0);
    if (!r.u16(type) || !r.u32(length)) return result;
    std::size_t saved;
    if (!r.push_limit(length, saved)) return result;
    r.enter_section(type);
    switch (type) {
      case kSectionLinks: {
        std::uint32_t n;
        if (!r.u32(n)) return result;
        // Bound n against the section window before reserving; bytes a
        // newer version appends after the records are skipped below.
        if (n > r.remaining() / kLinkAdvertBytes) {
          r.fail(DecodeStatus::kBadCount);
          return result;
        }
        nsu.links.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          LinkAdvert l;
          std::uint8_t up;
          if (!r.u32(l.link) || !r.u32(l.peer) || !r.u8(up) ||
              !r.f64(l.capacity_gbps) || !r.f64(l.igp_metric) ||
              !r.f64(l.delay_s) || !r.u16(l.sublabel)) {
            return result;
          }
          l.up = up != 0;
          nsu.links.push_back(l);
        }
        break;
      }
      case kSectionPrefixes: {
        std::uint32_t n;
        if (!r.u32(n)) return result;
        if (n > r.remaining() / kPrefixBytes) {
          r.fail(DecodeStatus::kBadCount);
          return result;
        }
        nsu.prefixes.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          topo::Prefix p;
          std::uint8_t len;
          if (!r.u32(p.addr) || !r.u8(len)) return result;
          p.len = len;
          nsu.prefixes.push_back(p);
        }
        break;
      }
      case kSectionDemands: {
        std::uint32_t n;
        if (!r.u32(n)) return result;
        if (n > r.remaining() / kDemandBytes) {
          r.fail(DecodeStatus::kBadCount);
          return result;
        }
        nsu.demands.reserve(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          DemandAdvert d;
          std::uint8_t cls;
          if (!r.u32(d.egress) || !r.u8(cls) || !r.f64(d.rate_gbps))
            return result;
          if (cls >= metrics::kNumPriorityClasses) {
            r.fail(DecodeStatus::kBadValue);
            return result;
          }
          d.priority = static_cast<metrics::PriorityClass>(cls);
          nsu.demands.push_back(d);
        }
        break;
      }
      case kSectionTlv: {
        OpaqueTlv tlv;
        std::uint32_t value_len;
        if (!r.u32(tlv.type) || !r.u32(value_len)) return result;
        if (value_len > r.remaining()) {
          r.fail(DecodeStatus::kBadCount);
          return result;
        }
        if (!r.str(value_len, tlv.value)) return result;
        nsu.tlvs.push_back(std::move(tlv));
        break;
      }
      default:
        // Unknown section from a newer controller: skip it whole.
        break;
    }
    // Skip any trailer a newer version appended inside a known section
    // (and the whole payload of unknown sections).
    if (!r.skip(r.remaining())) return result;
    r.pop_limit(saved);
  }
  result.nsu = std::move(nsu);
  return result;
}

std::optional<NodeStateUpdate> parse_nsu(
    const std::vector<std::uint8_t>& bytes) {
  return decode_nsu(bytes).nsu;
}

}  // namespace dsdn::core
