#include "core/controller.hpp"

#include <stdexcept>

#include "dataplane/snapshot.hpp"
#include "obs/trace.hpp"

namespace dsdn::core {

Controller::Controller(const ControllerConfig& config,
                       const topo::Topology& configured)
    : config_(config),
      state_(configured),
      local_(config.self),
      solve_api_(std::make_unique<LocalSolver>(config.solver_options)),
      programmer_(config.self) {
  if (config.self >= configured.num_nodes())
    throw std::invalid_argument("Controller: bad self id");
  if (config.mixed_fleet) {
    // Peers' algorithms come from their latest NSU TLV (absent = stock
    // solver, the pre-TLV assumption); our own from config, so the
    // prediction works even before our first origination circulates.
    solve_api_ = std::make_unique<MixedAlgorithmSolver>(
        config.solver_options, [this](topo::NodeId n) {
          if (n == config_.self) return config_.algorithm;
          if (const NodeStateUpdate* nsu = state_.latest(n)) {
            if (const auto a = parse_algorithm_tlv(*nsu)) return *a;
          }
          return PathingAlgorithm::kMaxMinFairTe;
        });
    config_.incremental_te = false;  // warm cache only speaks te::Solver
  } else if (config.incremental_te) {
    set_incremental_te(true);
  }
  programmer_.program_static_transit(configured, hw_);
  transit_programmed_ = true;
}

void Controller::set_incremental_te(bool enabled) {
  if (enabled && config_.mixed_fleet) return;  // incompatible; stay off
  config_.incremental_te = enabled;
  if (!enabled) {
    incremental_.reset();
    return;
  }
  if (incremental_) return;  // keep the existing warm state
  te::IncrementalOptions io;
  io.solver = config_.solver_options;
  io.full_solve_threshold = config_.incremental_full_solve_threshold;
  io.diff_check = config_.te_diff_check;
  io.diff_check_fatal = config_.te_diff_check;
  incremental_ = std::make_unique<te::IncrementalSolver>(io);
}

void Controller::reset_incremental_te() {
  if (incremental_) incremental_->reset();
}

bool Controller::demand_epoch_due() {
  if (!recompute_policy_) return true;
  return recompute_policy_->on_epoch(state_.demands());
}

std::vector<topo::LinkId> Controller::flood_links(
    topo::LinkId except_arrival) const {
  std::vector<topo::LinkId> out;
  const topo::Topology& view = state_.view();
  const topo::LinkId reverse_of_arrival =
      except_arrival == topo::kInvalidLink
          ? topo::kInvalidLink
          : view.link(except_arrival).reverse;
  for (topo::LinkId lid : view.node(config_.self).out_links) {
    if (!view.link(lid).up) continue;
    if (lid == reverse_of_arrival) continue;  // don't echo to the sender
    out.push_back(lid);
  }
  return out;
}

FloodDirective Controller::originate(const TelemetrySource& telemetry) {
  FloodDirective d;
  d.nsu = local_.snapshot(telemetry);
  if (config_.advertise_algorithm) {
    d.nsu.tlvs.push_back(make_algorithm_tlv(config_.algorithm));
  }
  if (!state_.apply(d.nsu))
    throw std::logic_error("own NSU rejected by own StateDb");
  bus_.publish_as(topics::kStateChanged, state_.digest());
  d.out_links = flood_links(topo::kInvalidLink);
  return d;
}

FloodDirective Controller::handle_nsu(const NodeStateUpdate& nsu,
                                      topo::LinkId arrival_link) {
  FloodDirective d;
  if (nsu.origin == config_.self) {
    // Our own NSU echoed back through the network: never re-flood (the
    // sequence number check would reject it anyway). After a cold
    // restart the echo carries a pre-crash sequence number our reset
    // counter knows nothing about -- adopt it (IS-IS own-LSP recovery)
    // so the next origination supersedes the stale copy network-wide.
    local_.resume_after(nsu.seq);
    return d;
  }
  if (!state_.apply(nsu)) return d;  // stale/malformed: flooding stops here
  bus_.publish_as(topics::kNsuReceived, nsu);
  bus_.publish_as(topics::kStateChanged, state_.digest());
  d.nsu = nsu;
  d.out_links = flood_links(arrival_link);
  return d;
}

Controller::RecomputeResult Controller::recompute() {
  DSDN_TRACE_SPAN("ctrl.recompute");
  RecomputeResult result;
  PathingResult pr;
  if (incremental_) {
    // Warm-start path: consume the view delta accumulated since the
    // previous recompute and reuse every allocation it did not touch.
    const te::ViewDelta delta = state_.take_delta();
    pr.solution = incremental_->solve(state_.view(), state_.demands(), delta,
                                      &result.incremental);
    pr.stats = result.incremental.solve;
    for (const te::Allocation* a :
         pr.solution.originating_at(config_.self)) {
      pr.own.push_back(*a);
    }
  } else {
    Pathing pathing(config_.self, solve_api_.get());
    pr = pathing.compute(state_);
  }
  result.stats = pr.stats;
  result.own_allocations = pr.own.size();
  last_solve_ = pr.stats;
  last_incremental_ = result.incremental;
  last_solution_ = pr.solution;
  programmer_.program_prefixes(state_, hw_);
  result.encap = programmer_.program_encap(pr.own, hw_);
  ++recomputes_;
  encap_totals_.routes_installed += result.encap.routes_installed;
  encap_totals_.routes_too_deep += result.encap.routes_too_deep;
  encap_totals_.sr_routes_installed += result.encap.sr_routes_installed;
  encap_totals_.install_retries += result.encap.install_retries;
  encap_totals_.routes_gave_up += result.encap.routes_gave_up;
  encap_totals_.retry_time_s += result.encap.retry_time_s;
  if (config_.program_sr) {
    result.sr = programmer_.program_sr(state_.view(), hw_);
  }
  if (config_.program_bypasses) {
    result.bypasses = programmer_.program_bypasses(
        state_.view(), pr.solution.residual_capacity(state_.view()),
        config_.bypass_strategy, config_.bypass_k, hw_);
  }
  // All tables for this epoch are installed; publish them as one atomic
  // snapshot swap. Batches already in flight finish on the old epoch.
  if (fib_hub_) fib_hub_->publish_router(config_.self, hw_);
  if (recompute_policy_) recompute_policy_->note_recompute(state_.demands());
  bus_.publish_as(topics::kSolutionReady, pr.solution);
  return result;
}

void Controller::attach_fib_hub(dataplane::SnapshotHub* hub) {
  fib_hub_ = hub;
  if (fib_hub_) fib_hub_->publish_router(config_.self, hw_);
}

void Controller::recover_from(const Controller& neighbor) {
  state_.load_from(neighbor.state_);
  local_.resume_after(state_.seq_of(config_.self));
  bus_.publish_as(topics::kStateChanged, state_.digest());
}

std::vector<FloodDirective> Controller::resync_with(
    const Controller& neighbor) {
  state_.load_from(neighbor.state_);
  bus_.publish_as(topics::kStateChanged, state_.digest());
  return advertise_database();
}

std::vector<FloodDirective> Controller::advertise_database() const {
  std::vector<FloodDirective> out;
  const auto links = flood_links(topo::kInvalidLink);
  for (const NodeStateUpdate* nsu : state_.all_latest()) {
    FloodDirective d;
    d.nsu = *nsu;
    d.out_links = links;
    out.push_back(std::move(d));
  }
  return out;
}

void Controller::set_solve_api(std::unique_ptr<SolveApi> api) {
  if (!api) throw std::invalid_argument("set_solve_api: null");
  solve_api_ = std::move(api);
  // A replacement Solve API has unknown semantics; the warm-start cache
  // of the built-in solver cannot speak for it.
  incremental_.reset();
}

}  // namespace dsdn::core
