#pragma once

// Monitoring/debugging interfaces (§3.3: "additional supporting modules
// provide interfaces for monitoring internal state, debugging, and
// configuration purposes"). Produces operator-readable snapshots of a
// controller's state: StateDb summary, view health, FIB occupancy, and
// the last solve's statistics.

#include <string>

#include "core/controller.hpp"
#include "obs/metrics.hpp"
#include "te/parallel_solver.hpp"

namespace dsdn::core {

struct ControllerStatus {
  topo::NodeId self = topo::kInvalidNode;
  std::uint64_t view_digest = 0;
  std::size_t origins_heard = 0;
  std::size_t nsus_accepted = 0;
  std::size_t nsus_rejected_stale = 0;
  std::size_t nsus_rejected_invalid = 0;
  std::size_t links_up_in_view = 0;
  std::size_t links_down_in_view = 0;
  std::size_t prefixes = 0;
  std::size_t encap_entries = 0;
  std::size_t transit_entries = 0;
  std::size_t protected_links = 0;
  // Programming accounting (PR 2's retry/give-up counters), from the
  // controller's lifetime totals.
  std::size_t recomputes = 0;
  std::size_t routes_installed = 0;
  std::size_t install_retries = 0;
  std::size_t installs_gave_up = 0;
  std::size_t routes_too_deep = 0;
  // Flooding-plane accounting (PR 2's retransmit counters). The flooder
  // is host-owned (the emulation transport), so these arrive via
  // merge_flood_counters() from the host's metrics registry; zero when
  // no host registry was merged.
  std::size_t flood_transmissions = 0;
  std::size_t flood_retransmits = 0;
  std::size_t flood_gave_up = 0;
  std::size_t flood_decode_errors = 0;
  // TE solver health, from the last recompute: demands frozen
  // unsatisfied, split by cause -- no feasible path left (capacity
  // starvation) vs the max_rounds cap firing (under-convergence;
  // persistent non-zero = the cap is starving traffic) -- and the
  // warm-start accounting when incremental recompute is enabled.
  std::size_t te_frozen_demands = 0;  // total of the two causes below
  std::size_t te_frozen_no_path = 0;
  std::size_t te_frozen_round_cap = 0;
  std::size_t te_incremental_solves = 0;
  std::size_t te_full_solves = 0;
  std::size_t te_incremental_fallbacks = 0;
  double te_last_reuse_fraction = 0.0;
};

ControllerStatus collect_status(const Controller& controller);

// Fills the flood_* fields from the "flood.*" counters of the hosting
// transport's registry (e.g. DsdnEmulation::obs()).
void merge_flood_counters(ControllerStatus& status,
                          const obs::Snapshot& host_metrics);

// Operator rendering of a full registry snapshot ("show dsdn metrics");
// thin alias of obs::to_text so every surface prints metrics one way.
std::string render_metrics(const obs::Snapshot& snapshot);

// Multi-line human-readable rendering ("show dsdn status").
std::string render_status(const ControllerStatus& status,
                          const topo::Topology& view);

// One-line per-router fleet summary for a set of controllers.
std::string render_fleet_digest(
    const std::vector<ControllerStatus>& statuses);

// Operator-readable rendering of the TE solver's thread-pool counters
// ("show dsdn te workers"): per-worker tasks and busy time, call counts,
// and the imbalance ratio. Benches use this to report scheduling
// efficiency next to the Fig 13 curves.
std::string render_pool_stats(const te::ThreadPool::Stats& stats);

}  // namespace dsdn::core
