#include "core/pathing.hpp"

namespace dsdn::core {

PathingResult Pathing::compute(const StateDb& state) const {
  PathingResult result;
  result.solution = api_->solve(state.view(), state.demands(), &result.stats);
  for (const te::Allocation* a : result.solution.originating_at(self_)) {
    result.own.push_back(*a);
  }
  return result;
}

}  // namespace dsdn::core
