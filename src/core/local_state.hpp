#pragma once

// The LocalState module (§3.3): reads the router's own state -- link
// status/utilization, attached prefixes, and measured aggregate demand --
// and produces the NSU the controller floods. In production this
// subscribes to gNMI telemetry paths on OpenConfig data models; here the
// "hardware" is the ground-truth Topology plus a demand observation,
// injected through a narrow interface so the controller logic is
// identical.

#include "core/nsu.hpp"
#include "traffic/matrix.hpp"

namespace dsdn::core {

// Narrow stand-in for the gNMI subscription surface: what LocalState is
// allowed to see about its own router.
class TelemetrySource {
 public:
  virtual ~TelemetrySource() = default;

  // Current state of this router's outgoing links.
  virtual std::vector<LinkAdvert> read_links(topo::NodeId self) const = 0;
  // Prefixes attached to this router.
  virtual std::vector<topo::Prefix> read_prefixes(topo::NodeId self) const = 0;
  // In-band measured demand originating here, aggregated per
  // (egress router, priority class).
  virtual std::vector<DemandAdvert> read_demands(topo::NodeId self) const = 0;
};

// TelemetrySource backed by the simulation's ground truth.
class SimTelemetry final : public TelemetrySource {
 public:
  SimTelemetry(const topo::Topology* topo,
               const traffic::TrafficMatrix* demands,
               std::vector<topo::Prefix> router_prefixes,
               std::vector<std::uint16_t> sublabels = {});

  std::vector<LinkAdvert> read_links(topo::NodeId self) const override;
  std::vector<topo::Prefix> read_prefixes(topo::NodeId self) const override;
  std::vector<DemandAdvert> read_demands(topo::NodeId self) const override;

 private:
  const topo::Topology* topo_;
  const traffic::TrafficMatrix* demands_;
  std::vector<topo::Prefix> router_prefixes_;  // indexed by NodeId
  std::vector<std::uint16_t> sublabels_;       // indexed by LinkId; optional
};

class LocalState {
 public:
  explicit LocalState(topo::NodeId self) : self_(self) {}

  // Snapshots current local state into a fresh NSU with the next
  // sequence number.
  NodeStateUpdate snapshot(const TelemetrySource& telemetry);

  topo::NodeId self() const { return self_; }
  std::uint64_t last_seq() const { return seq_; }

  // Restart recovery: resume sequence numbers above anything the network
  // may have seen from us (learned from a neighbor's StateDb).
  void resume_after(std::uint64_t seq_seen_in_network);

 private:
  topo::NodeId self_;
  std::uint64_t seq_ = 0;
};

}  // namespace dsdn::core
