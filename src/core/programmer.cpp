#include "core/programmer.hpp"

#include <cmath>
#include <map>

#include "dataplane/label.hpp"
#include "te/segment_routing.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace dsdn::core {

void Programmer::program_static_transit(const topo::Topology& configured,
                                        dataplane::RouterDataplane& hw) const {
  hw.transit = dataplane::build_transit_fib(configured, self_);
}

void Programmer::program_prefixes(const StateDb& state,
                                  dataplane::RouterDataplane& hw) const {
  hw.ingress.clear_prefixes();
  for (const auto& [prefix, egress] : state.prefix_entries()) {
    hw.ingress.set_prefix(prefix, egress);
  }
}

Programmer::EncapReport Programmer::program_encap(
    const std::vector<te::Allocation>& own,
    dataplane::RouterDataplane& hw) const {
  return program_encap(own, hw, ProgramRetryPolicy{}, nullptr, nullptr);
}

Programmer::EncapReport Programmer::program_encap(
    const std::vector<te::Allocation>& own, dataplane::RouterDataplane& hw,
    const ProgramRetryPolicy& policy, const InstallGate& gate,
    util::Rng* rng) const {
  DSDN_TRACE_SPAN("program.encap");
  auto& reg = obs::Registry::global();
  static obs::Counter& m_installed = reg.counter("program.routes_installed");
  static obs::Counter& m_too_deep = reg.counter("program.routes_too_deep");
  static obs::Counter& m_retries = reg.counter("program.retries");
  static obs::Counter& m_gave_up = reg.counter("program.gave_up");
  static obs::Histogram& m_retry_time = reg.histogram("program.retry_time_s");
  EncapReport report;
  hw.ingress.clear_routes();
  std::size_t op_index = 0;
  // One install op per route: attempt through the gate, retrying with
  // exponential backoff; an exhausted route is skipped (gave up), never
  // half-programmed.
  auto install_succeeds = [&](std::size_t op) {
    if (!gate) return true;
    for (int attempt = 0; attempt < policy.max_attempts; ++attempt) {
      if (gate(op, attempt)) return true;
      report.retry_time_s += policy.attempt_timeout_s;
      if (attempt + 1 >= policy.max_attempts) break;
      double backoff =
          policy.backoff_base_s * std::pow(policy.backoff_multiplier, attempt);
      if (rng && policy.backoff_jitter > 0) {
        backoff *= 1.0 + rng->uniform(0.0, policy.backoff_jitter);
      }
      report.retry_time_s += backoff;
      ++report.install_retries;
    }
    return false;
  };
  for (const te::Allocation& a : own) {
    dataplane::EncapEntry entry;
    // An SR allocation carries one WeightedPath per ECMP *expansion*, many
    // sharing one segment stack; the hardware holds one route per stack,
    // so fold the expansion weights per distinct segment list first.
    std::map<std::vector<topo::NodeId>, double> sr_weights;
    for (const te::WeightedPath& wp : a.paths) {
      if (!wp.segments.empty()) {
        sr_weights[wp.segments] += wp.weight;
        continue;
      }
      if (wp.path.hops() > dataplane::kMaxLabelDepth) {
        ++report.routes_too_deep;
        continue;
      }
      if (!install_succeeds(op_index++)) {
        ++report.routes_gave_up;
        continue;
      }
      dataplane::WeightedRoute route;
      route.stack = dataplane::encode_strict_route(wp.path);
      route.weight = wp.weight;
      entry.routes.push_back(std::move(route));
      ++report.routes_installed;
    }
    for (const auto& [segments, weight] : sr_weights) {
      if (!install_succeeds(op_index++)) {
        ++report.routes_gave_up;
        continue;
      }
      dataplane::WeightedRoute route;
      route.stack = dataplane::encode_segment_route(segments);
      route.weight = weight;
      entry.routes.push_back(std::move(route));
      ++report.routes_installed;
      ++report.sr_routes_installed;
    }
    if (!entry.routes.empty()) {
      hw.ingress.set_routes(a.demand.dst, a.demand.priority, std::move(entry));
    }
  }
  m_installed.add(report.routes_installed);
  m_too_deep.add(report.routes_too_deep);
  m_retries.add(report.install_retries);
  m_gave_up.add(report.routes_gave_up);
  if (report.retry_time_s > 0.0) m_retry_time.record(report.retry_time_s);
  return report;
}

Programmer::SrReport Programmer::program_sr(
    const topo::Topology& view, dataplane::RouterDataplane& hw) const {
  SrReport report;
  hw.sr.clear();
  // Same underlay math the SR solver expands against: membership from
  // one build over the converged view keeps transit splits and headend
  // capacity accounting consistent.
  const te::SrUnderlay underlay = te::SrUnderlay::build(view);
  for (topo::NodeId t = 0; t < view.num_nodes(); ++t) {
    if (t == self_) continue;
    const std::vector<topo::LinkId> members =
        underlay.ecmp_members(view, self_, t);
    if (members.empty()) continue;
    std::vector<dataplane::SrNextHop> hops;
    hops.reserve(members.size());
    for (topo::LinkId lid : members) {
      hops.push_back({lid, view.link(lid).dst});
    }
    report.next_hops += hops.size();
    hw.sr.set_members(t, std::move(hops));
    ++report.targets;
  }
  return report;
}

Programmer::BypassReport Programmer::program_bypasses(
    const topo::Topology& view, const std::vector<double>& residual_gbps,
    dataplane::BypassStrategy strategy, std::size_t k,
    dataplane::RouterDataplane& hw) const {
  BypassReport report;
  hw.bypass.clear();
  for (topo::LinkId lid : view.node(self_).out_links) {
    if (!view.link(lid).up) continue;
    const auto plan = dataplane::BypassPlan::compute_for_links(
        view, strategy, {lid}, residual_gbps, k);
    const auto& candidates = plan.candidates(lid);
    if (candidates.empty()) continue;

    std::vector<dataplane::WeightedRoute> routes;
    routes.reserve(candidates.size());
    for (std::size_t rank = 0; rank < candidates.size(); ++rank) {
      const te::Path& p = candidates[rank];
      double weight = 1.0;
      switch (strategy) {
        case dataplane::BypassStrategy::kShortestPath:
        case dataplane::BypassStrategy::kCapacityAware:
          weight = 1.0;  // single candidate
          break;
        case dataplane::BypassStrategy::kKShortestPaths:
          weight = 1.0 / static_cast<double>(rank + 1);
          break;
        case dataplane::BypassStrategy::kKCapacityAware: {
          double bottleneck = std::numeric_limits<double>::infinity();
          for (topo::LinkId l : p.links) {
            bottleneck = std::min(
                bottleneck, residual_gbps.empty()
                                ? view.link(l).capacity_gbps
                                : residual_gbps[l]);
          }
          weight = std::max(bottleneck, 1e-9);
          break;
        }
      }
      routes.push_back(dataplane::WeightedRoute{
          dataplane::encode_strict_route(p, /*enforce_depth=*/false),
          weight});
      ++report.routes_installed;
    }
    hw.bypass.set_bypasses(lid, std::move(routes));
    ++report.links_protected;
  }
  return report;
}

}  // namespace dsdn::core
