#include "core/programmer.hpp"

#include "dataplane/label.hpp"

namespace dsdn::core {

void Programmer::program_static_transit(const topo::Topology& configured,
                                        dataplane::RouterDataplane& hw) const {
  hw.transit = dataplane::build_transit_fib(configured, self_);
}

void Programmer::program_prefixes(const StateDb& state,
                                  dataplane::RouterDataplane& hw) const {
  hw.ingress.clear_prefixes();
  for (const auto& [prefix, egress] : state.prefix_entries()) {
    hw.ingress.set_prefix(prefix, egress);
  }
}

Programmer::EncapReport Programmer::program_encap(
    const std::vector<te::Allocation>& own,
    dataplane::RouterDataplane& hw) const {
  EncapReport report;
  hw.ingress.clear_routes();
  for (const te::Allocation& a : own) {
    dataplane::EncapEntry entry;
    for (const te::WeightedPath& wp : a.paths) {
      if (wp.path.hops() > dataplane::kMaxLabelDepth) {
        ++report.routes_too_deep;
        continue;
      }
      dataplane::WeightedRoute route;
      route.stack = dataplane::encode_strict_route(wp.path);
      route.weight = wp.weight;
      entry.routes.push_back(std::move(route));
      ++report.routes_installed;
    }
    if (!entry.routes.empty()) {
      hw.ingress.set_routes(a.demand.dst, a.demand.priority, std::move(entry));
    }
  }
  return report;
}

Programmer::BypassReport Programmer::program_bypasses(
    const topo::Topology& view, const std::vector<double>& residual_gbps,
    dataplane::BypassStrategy strategy, std::size_t k,
    dataplane::RouterDataplane& hw) const {
  BypassReport report;
  hw.bypass.clear();
  for (topo::LinkId lid : view.node(self_).out_links) {
    if (!view.link(lid).up) continue;
    const auto plan = dataplane::BypassPlan::compute_for_links(
        view, strategy, {lid}, residual_gbps, k);
    const auto& candidates = plan.candidates(lid);
    if (candidates.empty()) continue;

    std::vector<dataplane::WeightedRoute> routes;
    routes.reserve(candidates.size());
    for (std::size_t rank = 0; rank < candidates.size(); ++rank) {
      const te::Path& p = candidates[rank];
      double weight = 1.0;
      switch (strategy) {
        case dataplane::BypassStrategy::kShortestPath:
        case dataplane::BypassStrategy::kCapacityAware:
          weight = 1.0;  // single candidate
          break;
        case dataplane::BypassStrategy::kKShortestPaths:
          weight = 1.0 / static_cast<double>(rank + 1);
          break;
        case dataplane::BypassStrategy::kKCapacityAware: {
          double bottleneck = std::numeric_limits<double>::infinity();
          for (topo::LinkId l : p.links) {
            bottleneck = std::min(
                bottleneck, residual_gbps.empty()
                                ? view.link(l).capacity_gbps
                                : residual_gbps[l]);
          }
          weight = std::max(bottleneck, 1e-9);
          break;
        }
      }
      routes.push_back(dataplane::WeightedRoute{
          dataplane::encode_strict_route(p, /*enforce_depth=*/false),
          weight});
      ++report.routes_installed;
    }
    hw.bypass.set_bypasses(lid, std::move(routes));
    ++report.links_protected;
  }
  return report;
}

}  // namespace dsdn::core
