#include "core/nsu.hpp"

#include <algorithm>
#include <limits>
#include <utility>

namespace dsdn::core {

const char* nsu_validity_name(NsuValidity v) {
  switch (v) {
    case NsuValidity::kValid: return "valid";
    case NsuValidity::kBadOrigin: return "bad-origin";
    case NsuValidity::kDuplicateLinkAdvert: return "duplicate-link-advert";
    case NsuValidity::kNegativeCapacity: return "negative-capacity";
    case NsuValidity::kNegativeDemand: return "negative-demand";
    case NsuValidity::kSelfDemand: return "self-demand";
    case NsuValidity::kBadPrefix: return "bad-prefix";
  }
  return "?";
}

NsuValidity validate_nsu(const NodeStateUpdate& nsu) {
  if (nsu.origin == topo::kInvalidNode) return NsuValidity::kBadOrigin;
  // Duplicate-link-advert detection without a per-NSU heap allocation:
  // this runs once per flooded NSU per receiving router. A real NSU
  // carries one advert per attached link -- a few dozen at WAN router
  // degree -- so a quadratic scan over the inline array beats building a
  // std::set; implausibly large advert lists fall back to one sorted
  // vector. Both paths report the same error the old element-at-a-time
  // loop did: the first (duplicate-before-capacity) violation in advert
  // order.
  const std::size_t n = nsu.links.size();
  constexpr std::size_t kQuadraticLimit = 64;
  if (n <= kQuadraticLimit) {
    for (std::size_t i = 0; i < n; ++i) {
      const LinkAdvert& l = nsu.links[i];
      for (std::size_t j = 0; j < i; ++j) {
        if (nsu.links[j].link == l.link)
          return NsuValidity::kDuplicateLinkAdvert;
      }
      if (l.capacity_gbps < 0) return NsuValidity::kNegativeCapacity;
    }
  } else {
    constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
    std::size_t dup_at = kNone;      // index of a second occurrence
    std::size_t neg_cap_at = kNone;  // index of a negative capacity
    for (std::size_t i = 0; i < n && neg_cap_at == kNone; ++i) {
      if (nsu.links[i].capacity_gbps < 0) neg_cap_at = i;
    }
    std::vector<std::pair<topo::LinkId, std::size_t>> ids;
    ids.reserve(n);
    for (std::size_t i = 0; i < n; ++i) ids.emplace_back(nsu.links[i].link, i);
    std::sort(ids.begin(), ids.end());
    for (std::size_t k = 1; k < n; ++k) {
      if (ids[k].first == ids[k - 1].first)
        dup_at = std::min(dup_at, ids[k].second);
    }
    // At equal indices the duplicate check fires first (matching the
    // original scan order).
    if (dup_at <= neg_cap_at && dup_at != kNone)
      return NsuValidity::kDuplicateLinkAdvert;
    if (neg_cap_at != kNone) return NsuValidity::kNegativeCapacity;
  }
  for (const DemandAdvert& d : nsu.demands) {
    if (d.rate_gbps < 0) return NsuValidity::kNegativeDemand;
    if (d.egress == nsu.origin) return NsuValidity::kSelfDemand;
  }
  for (const topo::Prefix& p : nsu.prefixes) {
    if (p.len < 0 || p.len > 32) return NsuValidity::kBadPrefix;
  }
  return NsuValidity::kValid;
}

std::size_t nsu_wire_size(const NodeStateUpdate& nsu) {
  std::size_t bytes = 16;  // origin + seq + framing
  bytes += nsu.links.size() * 28;
  bytes += nsu.prefixes.size() * 5;
  bytes += nsu.demands.size() * 13;
  for (const OpaqueTlv& t : nsu.tlvs) bytes += 8 + t.value.size();
  return bytes;
}

}  // namespace dsdn::core
