#include "core/nsu.hpp"

#include <set>

namespace dsdn::core {

const char* nsu_validity_name(NsuValidity v) {
  switch (v) {
    case NsuValidity::kValid: return "valid";
    case NsuValidity::kBadOrigin: return "bad-origin";
    case NsuValidity::kDuplicateLinkAdvert: return "duplicate-link-advert";
    case NsuValidity::kNegativeCapacity: return "negative-capacity";
    case NsuValidity::kNegativeDemand: return "negative-demand";
    case NsuValidity::kSelfDemand: return "self-demand";
    case NsuValidity::kBadPrefix: return "bad-prefix";
  }
  return "?";
}

NsuValidity validate_nsu(const NodeStateUpdate& nsu) {
  if (nsu.origin == topo::kInvalidNode) return NsuValidity::kBadOrigin;
  std::set<topo::LinkId> seen;
  for (const LinkAdvert& l : nsu.links) {
    if (!seen.insert(l.link).second)
      return NsuValidity::kDuplicateLinkAdvert;
    if (l.capacity_gbps < 0) return NsuValidity::kNegativeCapacity;
  }
  for (const DemandAdvert& d : nsu.demands) {
    if (d.rate_gbps < 0) return NsuValidity::kNegativeDemand;
    if (d.egress == nsu.origin) return NsuValidity::kSelfDemand;
  }
  for (const topo::Prefix& p : nsu.prefixes) {
    if (p.len < 0 || p.len > 32) return NsuValidity::kBadPrefix;
  }
  return NsuValidity::kValid;
}

std::size_t nsu_wire_size(const NodeStateUpdate& nsu) {
  std::size_t bytes = 16;  // origin + seq + framing
  bytes += nsu.links.size() * 28;
  bytes += nsu.prefixes.size() * 5;
  bytes += nsu.demands.size() * 13;
  for (const OpaqueTlv& t : nsu.tlvs) bytes += 8 + t.value.size();
  return bytes;
}

}  // namespace dsdn::core
