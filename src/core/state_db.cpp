#include "core/state_db.hpp"

#include <algorithm>
#include <map>

#include "util/rng.hpp"

namespace dsdn::core {

StateDb::StateDb(const topo::Topology& configured)
    : view_(configured), sublabels_(configured.num_links(), 0) {}

bool StateDb::apply(const NodeStateUpdate& nsu) {
  if (validate_nsu(nsu) != NsuValidity::kValid) {
    ++rejected_invalid_;
    return false;
  }
  const auto it = latest_.find(nsu.origin);
  if (it != latest_.end() && nsu.seq <= it->second.seq) {
    ++rejected_stale_;
    return false;
  }
  latest_[nsu.origin] = nsu;
  apply_to_view(nsu);
  ++accepted_;
  return true;
}

void StateDb::apply_to_view(const NodeStateUpdate& nsu) {
  for (const LinkAdvert& la : nsu.links) {
    if (la.link >= view_.num_links()) continue;  // unknown inventory
    view_.set_link_up(la.link, la.up);
    if (la.capacity_gbps > 0) {
      // Partial capacity loss/restoration is advertised like liveness.
      view_.set_link_capacity(la.link, la.capacity_gbps);
    }
    if (la.sublabel != 0) sublabels_[la.link] = la.sublabel;
  }
  for (const topo::Prefix& p : nsu.prefixes) {
    prefixes_.insert(p, nsu.origin);
  }
}

te::ViewDelta StateDb::take_delta() {
  static const std::vector<DemandAdvert> kNoRows;
  te::ViewDelta delta;
  delta.full = !has_baseline_;
  if (has_baseline_) {
    for (std::size_t l = 0; l < view_.num_links(); ++l) {
      const topo::Link& link = view_.link(static_cast<topo::LinkId>(l));
      const LinkBaseline& base = base_links_[l];
      if (base.up != link.up || base.capacity_gbps != link.capacity_gbps)
        delta.changed_links.push_back(static_cast<topo::LinkId>(l));
    }
    // Ascending origin order, so every router derives the identical
    // delta from the identical digest.
    for (std::size_t n = 0; n < view_.num_nodes(); ++n) {
      const auto origin = static_cast<topo::NodeId>(n);
      const auto now_it = latest_.find(origin);
      const auto& now =
          now_it == latest_.end() ? kNoRows : now_it->second.demands;
      const auto base_it = base_demands_.find(origin);
      const auto& before =
          base_it == base_demands_.end() ? kNoRows : base_it->second;
      if (!(now == before)) delta.changed_demand_origins.push_back(origin);
    }
  }
  base_links_.resize(view_.num_links());
  for (std::size_t l = 0; l < view_.num_links(); ++l) {
    const topo::Link& link = view_.link(static_cast<topo::LinkId>(l));
    base_links_[l] = LinkBaseline{link.up, link.capacity_gbps};
  }
  base_demands_.clear();
  for (const auto& [origin, nsu] : latest_) {
    if (!nsu.demands.empty()) base_demands_[origin] = nsu.demands;
  }
  has_baseline_ = true;
  return delta;
}

traffic::TrafficMatrix StateDb::demands() const {
  // Deterministic order: iterate origins ascending so every router
  // assembles the identical matrix.
  std::map<topo::NodeId, const NodeStateUpdate*> ordered;
  for (const auto& [origin, nsu] : latest_) ordered[origin] = &nsu;
  traffic::TrafficMatrix tm;
  for (const auto& [origin, nsu] : ordered) {
    for (const DemandAdvert& d : nsu->demands) {
      if (d.rate_gbps <= 0) continue;
      // An egress outside the configured inventory (possible only from a
      // corrupted-yet-decodable NSU) must never reach the TE solver.
      if (d.egress >= view_.num_nodes()) continue;
      tm.add(traffic::Demand{origin, d.egress, d.priority, d.rate_gbps});
    }
  }
  return tm;
}

std::vector<std::pair<topo::Prefix, topo::NodeId>> StateDb::prefix_entries()
    const {
  std::map<topo::NodeId, const NodeStateUpdate*> ordered;
  for (const auto& [origin, nsu] : latest_) ordered[origin] = &nsu;
  std::vector<std::pair<topo::Prefix, topo::NodeId>> out;
  for (const auto& [origin, nsu] : ordered) {
    for (const topo::Prefix& p : nsu->prefixes) out.emplace_back(p, origin);
  }
  return out;
}

const NodeStateUpdate* StateDb::latest(topo::NodeId origin) const {
  const auto it = latest_.find(origin);
  return it == latest_.end() ? nullptr : &it->second;
}

std::vector<const NodeStateUpdate*> StateDb::all_latest() const {
  std::map<topo::NodeId, const NodeStateUpdate*> ordered;
  for (const auto& [origin, nsu] : latest_) ordered[origin] = &nsu;
  std::vector<const NodeStateUpdate*> out;
  out.reserve(ordered.size());
  for (const auto& [origin, nsu] : ordered) out.push_back(nsu);
  return out;
}

std::uint64_t StateDb::seq_of(topo::NodeId origin) const {
  const auto it = latest_.find(origin);
  return it == latest_.end() ? 0 : it->second.seq;
}

bool StateDb::heard_from(topo::NodeId origin) const {
  return latest_.contains(origin);
}

std::uint64_t StateDb::digest() const {
  // XOR of per-origin hashes: order-insensitive by construction.
  std::uint64_t acc = 0x5DDA5DDAULL;
  for (const auto& [origin, nsu] : latest_) {
    std::uint64_t h = util::splitmix64(origin * 0x1000193ULL + nsu.seq);
    for (const LinkAdvert& la : nsu.links) {
      h = util::splitmix64(h ^ (la.link * 2 + (la.up ? 1 : 0)));
      h = util::splitmix64(
          h ^ static_cast<std::uint64_t>(la.capacity_gbps * 1e3));
    }
    for (const DemandAdvert& d : nsu.demands) {
      h = util::splitmix64(h ^ (static_cast<std::uint64_t>(d.egress) << 3) ^
                           static_cast<std::uint64_t>(d.priority));
      h = util::splitmix64(h ^ static_cast<std::uint64_t>(d.rate_gbps * 1e6));
    }
    for (const topo::Prefix& p : nsu.prefixes) {
      h = util::splitmix64(h ^ ((static_cast<std::uint64_t>(p.addr) << 6) |
                                static_cast<std::uint64_t>(p.len)));
    }
    acc ^= h;
  }
  return acc;
}

void StateDb::load_from(const StateDb& neighbor) {
  for (const auto& [origin, nsu] : neighbor.latest_) {
    apply(nsu);
  }
}

}  // namespace dsdn::core
