#include "core/introspection.hpp"

#include <sstream>

#include "obs/export.hpp"
#include "util/format.hpp"

namespace dsdn::core {

namespace {

std::uint64_t counter_or_zero(const obs::Snapshot& s, const char* name) {
  const auto it = s.counters.find(name);
  return it == s.counters.end() ? 0 : it->second;
}

}  // namespace

ControllerStatus collect_status(const Controller& controller) {
  ControllerStatus s;
  s.self = controller.self();
  const StateDb& db = controller.state();
  s.view_digest = db.digest();
  s.origins_heard = db.num_origins();
  s.nsus_accepted = db.accepted();
  s.nsus_rejected_stale = db.rejected_stale();
  s.nsus_rejected_invalid = db.rejected_invalid();
  for (const topo::Link& l : db.view().links()) {
    if (l.up) {
      ++s.links_up_in_view;
    } else {
      ++s.links_down_in_view;
    }
  }
  const auto& hw = controller.dataplane();
  s.prefixes = hw.ingress.num_prefixes();
  s.encap_entries = hw.ingress.num_encap_entries();
  s.transit_entries = hw.transit.size();
  s.protected_links = hw.bypass.num_protected_links();
  const auto& encap = controller.encap_totals();
  s.recomputes = controller.recomputes();
  s.routes_installed = encap.routes_installed;
  s.install_retries = encap.install_retries;
  s.installs_gave_up = encap.routes_gave_up;
  s.routes_too_deep = encap.routes_too_deep;
  s.te_frozen_demands = controller.last_solve_stats().frozen_demands;
  s.te_frozen_no_path = controller.last_solve_stats().frozen_no_path;
  s.te_frozen_round_cap = controller.last_solve_stats().frozen_round_cap;
  if (const te::IncrementalSolver* inc = controller.incremental_solver()) {
    s.te_incremental_solves = inc->incremental_solves();
    s.te_full_solves = inc->full_solves();
    s.te_incremental_fallbacks = inc->fallbacks();
    s.te_last_reuse_fraction =
        controller.last_incremental_stats().reuse_fraction;
  }
  return s;
}

void merge_flood_counters(ControllerStatus& s,
                          const obs::Snapshot& host_metrics) {
  s.flood_transmissions =
      counter_or_zero(host_metrics, "flood.transmissions");
  s.flood_retransmits = counter_or_zero(host_metrics, "flood.retransmits");
  s.flood_gave_up = counter_or_zero(host_metrics, "flood.gave_up");
  s.flood_decode_errors =
      counter_or_zero(host_metrics, "flood.decode_errors");
}

std::string render_metrics(const obs::Snapshot& snapshot) {
  return obs::to_text(snapshot);
}

std::string render_status(const ControllerStatus& s,
                          const topo::Topology& view) {
  std::ostringstream os;
  os << "dSDN controller @ " << view.node(s.self).name << " (router "
     << s.self << ")\n";
  os << "  view digest     : " << std::hex << s.view_digest << std::dec
     << "\n";
  os << "  origins heard   : " << s.origins_heard << " / "
     << view.num_nodes() << "\n";
  os << "  NSUs            : " << s.nsus_accepted << " accepted, "
     << s.nsus_rejected_stale << " stale, " << s.nsus_rejected_invalid
     << " invalid\n";
  os << "  view link state : " << s.links_up_in_view << " up, "
     << s.links_down_in_view << " down\n";
  os << "  FIBs            : " << s.prefixes << " prefixes, "
     << s.encap_entries << " encap groups, " << s.transit_entries
     << " transit labels, " << s.protected_links << " FRR-protected links\n";
  os << "  programming     : " << s.recomputes << " recomputes, "
     << s.routes_installed << " routes installed, " << s.install_retries
     << " retries, " << s.installs_gave_up << " gave up, "
     << s.routes_too_deep << " too deep\n";
  os << "  flooding        : " << s.flood_transmissions << " transmissions, "
     << s.flood_retransmits << " retransmits, " << s.flood_gave_up
     << " gave up, " << s.flood_decode_errors << " decode errors\n";
  os << "  TE solver       : " << s.te_frozen_demands
     << " frozen demands (" << s.te_frozen_no_path << " no-path, "
     << s.te_frozen_round_cap << " round-cap); incremental "
     << s.te_incremental_solves << " warm / " << s.te_full_solves
     << " full (" << s.te_incremental_fallbacks << " fallbacks), last reuse "
     << util::format_double(s.te_last_reuse_fraction * 100.0, 1) << "%\n";
  return os.str();
}

std::string render_pool_stats(const te::ThreadPool::Stats& stats) {
  std::ostringstream os;
  os << "TE thread pool: " << stats.workers << " workers, "
     << stats.parallel_calls << " parallel_for calls ("
     << stats.inline_calls << " inline), " << stats.tasks_executed
     << " tasks, imbalance " << util::format_double(stats.imbalance(), 2)
     << "x\n";
  for (std::size_t w = 0; w < stats.per_worker.size(); ++w) {
    const auto& ws = stats.per_worker[w];
    os << "  worker " << util::pad_left(std::to_string(w), 2)
       << (w + 1 == stats.per_worker.size() ? " (caller)" : "         ")
       << " : " << ws.tasks << " tasks, "
       << util::format_duration(ws.busy_s) << " busy\n";
  }
  return os.str();
}

std::string render_fleet_digest(
    const std::vector<ControllerStatus>& statuses) {
  std::ostringstream os;
  std::size_t converged = 0;
  if (!statuses.empty()) {
    const std::uint64_t head = statuses.front().view_digest;
    for (const auto& s : statuses) {
      if (s.view_digest == head) ++converged;
    }
  }
  os << "fleet: " << statuses.size() << " controllers, " << converged
     << " sharing the lead digest\n";
  for (const auto& s : statuses) {
    os << "  r" << util::pad_left(std::to_string(s.self), 4) << "  digest="
       << std::hex << (s.view_digest >> 40) << std::dec << "..  heard="
       << s.origins_heard << "  encap=" << s.encap_entries << "  frr="
       << s.protected_links << "  retries=" << s.install_retries << "\n";
  }
  return os.str();
}

}  // namespace dsdn::core
