#pragma once

// The Pathing module (§3.3): feeds the NodeStateDB view into the TE
// solver over the Solve API and extracts the subset of paths originating
// at this router. Running the solver for the *whole network* and then
// keeping only our own rows is the crux of dSDN: with identical views,
// every router's full-network solution is identical, so the union of
// everyone's own rows is exactly the single-controller solution.

#include "core/state_db.hpp"
#include "te/solver.hpp"

namespace dsdn::core {

// The "Solve API" boundary between the controller container and the TE
// solver container (Fig 6): pluggable so the algorithm can be replaced or
// moved off-box.
class SolveApi {
 public:
  virtual ~SolveApi() = default;
  virtual te::Solution solve(const topo::Topology& view,
                             const traffic::TrafficMatrix& demands,
                             te::SolveStats* stats) const = 0;
};

// Default SolveApi: the in-process B4-style solver.
class LocalSolver final : public SolveApi {
 public:
  explicit LocalSolver(te::SolverOptions options = {}) : solver_(options) {}

  te::Solution solve(const topo::Topology& view,
                     const traffic::TrafficMatrix& demands,
                     te::SolveStats* stats) const override {
    return solver_.solve(view, demands, stats);
  }

 private:
  te::Solver solver_;
};

struct PathingResult {
  // Full-network solution (kept for diagnostics / tests).
  te::Solution solution;
  // This router's rows: what the Programmer installs.
  std::vector<te::Allocation> own;
  te::SolveStats stats;
};

class Pathing {
 public:
  Pathing(topo::NodeId self, const SolveApi* api) : self_(self), api_(api) {}

  PathingResult compute(const StateDb& state) const;

 private:
  topo::NodeId self_;
  const SolveApi* api_;
};

}  // namespace dsdn::core
