#pragma once

// The dSDN controller (§3.3, Fig 6): one per router, wiring
// NodeStateExchange (flooding), StateDB, LocalState, Pathing, and
// Programmer over the pub-sub Bus.
//
// The controller is transport-agnostic: originate()/handle_nsu() return
// FloodDirectives naming the links an NSU should be sent on, and the
// host (the event-driven emulation, or a gRPC transport in production)
// performs the delivery. This keeps routing logic cleanly isolated from
// communication details, mirroring the gRPC + link-local design.

#include <memory>

#include "core/bus.hpp"
#include "core/local_state.hpp"
#include "core/pathing.hpp"
#include "core/programmer.hpp"
#include "core/state_db.hpp"

namespace dsdn::core {

struct ControllerConfig {
  topo::NodeId self = topo::kInvalidNode;
  te::SolverOptions solver_options;
  // Pre-install FRR bypasses for local links on every recompute
  // (Appendix C: dSDN recomputes them as demand/capacity changes).
  bool program_bypasses = true;
  dataplane::BypassStrategy bypass_strategy =
      dataplane::BypassStrategy::kCapacityAware;
  std::size_t bypass_k = 4;
};

// An NSU to transmit and the local out-links to flood it on.
struct FloodDirective {
  NodeStateUpdate nsu;
  std::vector<topo::LinkId> out_links;

  bool empty() const { return out_links.empty(); }
};

class Controller {
 public:
  Controller(const ControllerConfig& config,
             const topo::Topology& configured);

  topo::NodeId self() const { return config_.self; }

  // Snapshots local state, applies it to the own StateDb, and returns
  // the NSU with every up out-link to flood it on.
  FloodDirective originate(const TelemetrySource& telemetry);

  // Processes an NSU received on `arrival_link` (kInvalidLink for a
  // locally injected update). When accepted, the directive re-floods it
  // on all up out-links except the reverse of the arrival link; stale or
  // malformed NSUs yield an empty directive (flooding terminates).
  FloodDirective handle_nsu(const NodeStateUpdate& nsu,
                            topo::LinkId arrival_link);

  struct RecomputeResult {
    te::SolveStats stats;
    Programmer::EncapReport encap;
    Programmer::BypassReport bypasses;
    std::size_t own_allocations = 0;
  };

  // Runs TE on the current view and programs the local dataplane:
  // prefixes, encap routes, and (once) static transit entries.
  RecomputeResult recompute();

  const StateDb& state() const { return state_; }

  // Programming accounting accumulated over every recompute() in this
  // controller's lifetime (per-call numbers are in RecomputeResult).
  // collect_status reports these, so "show dsdn status" surfaces install
  // retries/give-ups instead of silently dropping them.
  const Programmer::EncapReport& encap_totals() const {
    return encap_totals_;
  }
  std::size_t recomputes() const { return recomputes_; }

  const dataplane::RouterDataplane& dataplane() const { return hw_; }
  dataplane::RouterDataplane& mutable_dataplane() { return hw_; }
  Bus& bus() { return bus_; }

  // Crash recovery (§3.2): rebuild state from an immediate neighbor and
  // resume NSU sequence numbers past anything the network saw from us.
  void recover_from(const Controller& neighbor);

  // Adjacency-up database resynchronization (IS-IS CSNP-style [7]):
  // merges the neighbor's database, then returns flood directives for
  // every NSU in the merged database so updates that crossed a partition
  // reach the rest of the network. Sequence-number dedup at receivers
  // terminates the reflood cheaply when nothing actually changed.
  std::vector<FloodDirective> resync_with(const Controller& neighbor);

  // Replaces the Solve API implementation (operator-defined control code;
  // also how the solver could move off-box).
  void set_solve_api(std::unique_ptr<SolveApi> api);

 private:
  std::vector<topo::LinkId> flood_links(topo::LinkId except_arrival) const;

  ControllerConfig config_;
  Bus bus_;
  StateDb state_;
  LocalState local_;
  std::unique_ptr<SolveApi> solve_api_;
  Programmer programmer_;
  dataplane::RouterDataplane hw_;
  bool transit_programmed_ = false;
  Programmer::EncapReport encap_totals_;
  std::size_t recomputes_ = 0;
};

}  // namespace dsdn::core
