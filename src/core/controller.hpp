#pragma once

// The dSDN controller (§3.3, Fig 6): one per router, wiring
// NodeStateExchange (flooding), StateDB, LocalState, Pathing, and
// Programmer over the pub-sub Bus.
//
// The controller is transport-agnostic: originate()/handle_nsu() return
// FloodDirectives naming the links an NSU should be sent on, and the
// host (the event-driven emulation, or a gRPC transport in production)
// performs the delivery. This keeps routing logic cleanly isolated from
// communication details, mirroring the gRPC + link-local design.

#include <memory>

#include "core/bus.hpp"
#include "core/local_state.hpp"
#include "core/pathing.hpp"
#include "core/programmer.hpp"
#include "core/state_db.hpp"
#include "core/upgrade.hpp"
#include "te/incremental.hpp"
#include "te/recompute_policy.hpp"

namespace dsdn::dataplane {
class SnapshotHub;
}

namespace dsdn::core {

struct ControllerConfig {
  topo::NodeId self = topo::kInvalidNode;
  te::SolverOptions solver_options;
  // Pre-install FRR bypasses for local links on every recompute
  // (Appendix C: dSDN recomputes them as demand/capacity changes).
  bool program_bypasses = true;
  dataplane::BypassStrategy bypass_strategy =
      dataplane::BypassStrategy::kCapacityAware;
  std::size_t bypass_k = 4;
  // Warm-start incremental TE recompute (te::IncrementalSolver): reuse
  // the previous solution's allocations that no view change touched,
  // re-waterfill only the affected set. Off by default: with it on,
  // routers converge to identical solutions only when their recompute
  // *histories* match (which the emulation's quiescence barrier
  // provides), not per isolated view. Ignored after set_solve_api().
  bool incremental_te = false;
  // Fraction of affected demands above which the incremental solver
  // falls back to a from-scratch solve.
  double incremental_full_solve_threshold = 0.35;
  // Differential checker (debug/CI): verify every incremental solve
  // against a fresh full solve; violations throw std::logic_error.
  bool te_diff_check = false;
  // Algorithm coexistence (§3.2, upgrades). `algorithm` is what this
  // controller runs; with advertise_algorithm it is announced in the NSU
  // algorithm TLV so peers can predict this router's placement.
  PathingAlgorithm algorithm = PathingAlgorithm::kMaxMinFairTe;
  bool advertise_algorithm = false;
  // Solve with MixedAlgorithmSolver: predict each headend's placement
  // from its advertised algorithm (self uses `algorithm` directly).
  // Forces incremental_te off -- the warm-start cache only speaks the
  // stock solver.
  bool mixed_fleet = false;
  // Install the node-segment FIB (SrFib) on every recompute. Required on
  // EVERY router as soon as any fleet member runs kSegmentRouting, since
  // all routers transit segment-labeled packets.
  bool program_sr = false;
};

// An NSU to transmit and the local out-links to flood it on.
struct FloodDirective {
  NodeStateUpdate nsu;
  std::vector<topo::LinkId> out_links;

  bool empty() const { return out_links.empty(); }
};

class Controller {
 public:
  Controller(const ControllerConfig& config,
             const topo::Topology& configured);

  topo::NodeId self() const { return config_.self; }

  // Snapshots local state, applies it to the own StateDb, and returns
  // the NSU with every up out-link to flood it on.
  FloodDirective originate(const TelemetrySource& telemetry);

  // Processes an NSU received on `arrival_link` (kInvalidLink for a
  // locally injected update). When accepted, the directive re-floods it
  // on all up out-links except the reverse of the arrival link; stale or
  // malformed NSUs yield an empty directive (flooding terminates).
  FloodDirective handle_nsu(const NodeStateUpdate& nsu,
                            topo::LinkId arrival_link);

  struct RecomputeResult {
    te::SolveStats stats;
    // Warm-start accounting; `incremental.incremental` is false when the
    // controller ran a plain full solve (the default configuration).
    te::IncrementalStats incremental;
    Programmer::EncapReport encap;
    Programmer::BypassReport bypasses;
    Programmer::SrReport sr;
    std::size_t own_allocations = 0;
  };

  // Runs TE on the current view and programs the local dataplane:
  // prefixes, encap routes, and (once) static transit entries.
  RecomputeResult recompute();

  const StateDb& state() const { return state_; }

  // Programming accounting accumulated over every recompute() in this
  // controller's lifetime (per-call numbers are in RecomputeResult).
  // collect_status reports these, so "show dsdn status" surfaces install
  // retries/give-ups instead of silently dropping them.
  const Programmer::EncapReport& encap_totals() const {
    return encap_totals_;
  }
  std::size_t recomputes() const { return recomputes_; }

  // Stats of the most recent recompute's solve (zero before the first),
  // surfaced by collect_status so solver health (e.g. round-cap-frozen
  // demands) is visible in "show dsdn status".
  const te::SolveStats& last_solve_stats() const { return last_solve_; }
  const te::IncrementalStats& last_incremental_stats() const {
    return last_incremental_;
  }
  // Null unless incremental_te was configured (and no custom Solve API
  // has replaced it).
  const te::IncrementalSolver* incremental_solver() const {
    return incremental_.get();
  }

  // The solution installed by the most recent recompute() (empty before
  // the first). Invariant checkers diff this against a cold full solve
  // of the same view to bound warm-start drift across whole histories.
  const te::Solution& last_solution() const { return last_solution_; }

  // Runtime toggle for warm-start TE (scenario harness: mid-history
  // on/off flips). Turning it off discards the warm state; turning it on
  // starts cold (the next recompute is a full solve). Idempotent.
  void set_incremental_te(bool enabled);

  // Drops the warm-start state (keeping the feature enabled): the next
  // recompute is a from-scratch full solve. Used when a peer restarts --
  // warm histories are history-dependent within the checker tolerance,
  // so a restarted router's cold solve can disagree with its peers'
  // evolved solutions; realigning the whole fleet on a cold solve at the
  // same barrier restores the identical-solutions property (§3.1).
  void reset_incremental_te();

  // Online-TE recompute policy (closed-loop demand epochs). Null (the
  // default) preserves the classic behavior: every demand epoch
  // recomputes. The policy's decisions are deterministic in its view
  // sequence, so a lockstep fleet running the same policy stays
  // consistent without coordination.
  void set_recompute_policy(std::unique_ptr<te::RecomputePolicy> policy) {
    recompute_policy_ = std::move(policy);
  }
  const te::RecomputePolicy* recompute_policy() const {
    return recompute_policy_.get();
  }

  // One measurement epoch elapsed; should this controller re-run TE?
  // Ticks the policy against the current converged demand view (and
  // always answers yes when no policy is attached).
  bool demand_epoch_due();

  // Fleet-wide crash barrier: forget the policy's drift baseline, in
  // lockstep with reset_incremental_te() (both protect the §3.1
  // identical-solutions property across restarts).
  void reset_recompute_policy() {
    if (recompute_policy_) recompute_policy_->reset();
  }

  const dataplane::RouterDataplane& dataplane() const { return hw_; }
  dataplane::RouterDataplane& mutable_dataplane() { return hw_; }
  Bus& bus() { return bus_; }

  // Attaches the RCU snapshot hub of the batched dataplane: every
  // recompute() then ends by publishing this router's fully programmed
  // tables as one new epoch -- the all-or-nothing bank swap -- after
  // prefixes, encap routes, AND bypasses are all installed. Attaching
  // publishes the current tables immediately; null detaches.
  void attach_fib_hub(dataplane::SnapshotHub* hub);
  dataplane::SnapshotHub* fib_hub() const { return fib_hub_; }

  // Crash recovery (§3.2): rebuild state from an immediate neighbor and
  // resume NSU sequence numbers past anything the network saw from us.
  void recover_from(const Controller& neighbor);

  // Adjacency-up database resynchronization (IS-IS CSNP-style [7]):
  // merges the neighbor's database, then returns flood directives for
  // every NSU in the merged database so updates that crossed a partition
  // reach the rest of the network. Sequence-number dedup at receivers
  // terminates the reflood cheaply when nothing actually changed.
  std::vector<FloodDirective> resync_with(const Controller& neighbor);

  // The reflood half of resync_with without the merge: directives for
  // every NSU in the own database, flooded on all up out-links. This is
  // what a router sends when an adjacency comes up toward a peer that
  // lost its database (cold restart): the restarted router rebuilds its
  // StateDb purely from these re-flooded NSUs.
  std::vector<FloodDirective> advertise_database() const;

  // Replaces the Solve API implementation (operator-defined control code;
  // also how the solver could move off-box).
  void set_solve_api(std::unique_ptr<SolveApi> api);

 private:
  std::vector<topo::LinkId> flood_links(topo::LinkId except_arrival) const;

  ControllerConfig config_;
  Bus bus_;
  StateDb state_;
  LocalState local_;
  std::unique_ptr<SolveApi> solve_api_;
  std::unique_ptr<te::IncrementalSolver> incremental_;
  std::unique_ptr<te::RecomputePolicy> recompute_policy_;
  Programmer programmer_;
  dataplane::RouterDataplane hw_;
  dataplane::SnapshotHub* fib_hub_ = nullptr;
  bool transit_programmed_ = false;
  Programmer::EncapReport encap_totals_;
  std::size_t recomputes_ = 0;
  te::SolveStats last_solve_;
  te::IncrementalStats last_incremental_;
  te::Solution last_solution_;
};

}  // namespace dsdn::core
