#include "core/local_state.hpp"

#include <algorithm>
#include <map>

namespace dsdn::core {

SimTelemetry::SimTelemetry(const topo::Topology* topo,
                           const traffic::TrafficMatrix* demands,
                           std::vector<topo::Prefix> router_prefixes,
                           std::vector<std::uint16_t> sublabels)
    : topo_(topo),
      demands_(demands),
      router_prefixes_(std::move(router_prefixes)),
      sublabels_(std::move(sublabels)) {}

std::vector<LinkAdvert> SimTelemetry::read_links(topo::NodeId self) const {
  std::vector<LinkAdvert> out;
  for (topo::LinkId lid : topo_->node(self).out_links) {
    const topo::Link& l = topo_->link(lid);
    LinkAdvert la;
    la.link = lid;
    la.peer = l.dst;
    la.up = l.up;
    la.capacity_gbps = l.capacity_gbps;
    la.igp_metric = l.igp_metric;
    la.delay_s = l.delay_s;
    if (lid < sublabels_.size()) la.sublabel = sublabels_[lid];
    out.push_back(la);
  }
  return out;
}

std::vector<topo::Prefix> SimTelemetry::read_prefixes(
    topo::NodeId self) const {
  if (self < router_prefixes_.size()) return {router_prefixes_[self]};
  return {};
}

std::vector<DemandAdvert> SimTelemetry::read_demands(topo::NodeId self) const {
  // Aggregate by (egress, class) -- dSDN measures demand in-band and
  // aggregates exactly this way (§3.2).
  std::map<std::pair<topo::NodeId, int>, double> agg;
  for (const traffic::Demand& d : demands_->demands()) {
    if (d.src != self) continue;
    agg[{d.dst, static_cast<int>(d.priority)}] += d.rate_gbps;
  }
  std::vector<DemandAdvert> out;
  out.reserve(agg.size());
  for (const auto& [key, rate] : agg) {
    out.push_back(DemandAdvert{key.first,
                               static_cast<metrics::PriorityClass>(key.second),
                               rate});
  }
  return out;
}

NodeStateUpdate LocalState::snapshot(const TelemetrySource& telemetry) {
  NodeStateUpdate nsu;
  nsu.origin = self_;
  nsu.seq = ++seq_;
  nsu.links = telemetry.read_links(self_);
  nsu.prefixes = telemetry.read_prefixes(self_);
  nsu.demands = telemetry.read_demands(self_);
  return nsu;
}

void LocalState::resume_after(std::uint64_t seq_seen_in_network) {
  seq_ = std::max(seq_, seq_seen_in_network);
}

}  // namespace dsdn::core
