#include "core/upgrade.hpp"

#include <algorithm>

#include "te/dijkstra.hpp"

namespace dsdn::core {

const char* pathing_algorithm_name(PathingAlgorithm a) {
  switch (a) {
    case PathingAlgorithm::kMaxMinFairTe: return "max-min-fair-te";
    case PathingAlgorithm::kShortestPath: return "shortest-path";
  }
  return "?";
}

OpaqueTlv make_algorithm_tlv(PathingAlgorithm a) {
  OpaqueTlv tlv;
  tlv.type = kAlgorithmTlvType;
  tlv.value = std::string(1, static_cast<char>(a));
  return tlv;
}

std::optional<PathingAlgorithm> parse_algorithm_tlv(
    const NodeStateUpdate& nsu) {
  for (const OpaqueTlv& tlv : nsu.tlvs) {
    if (tlv.type != kAlgorithmTlvType || tlv.value.size() != 1) continue;
    const auto v = static_cast<int>(tlv.value[0]);
    if (v == static_cast<int>(PathingAlgorithm::kMaxMinFairTe) ||
        v == static_cast<int>(PathingAlgorithm::kShortestPath)) {
      return static_cast<PathingAlgorithm>(v);
    }
  }
  return std::nullopt;
}

std::vector<PathingAlgorithm> algorithm_map_from_state(
    const StateDb& state, PathingAlgorithm fallback) {
  std::vector<PathingAlgorithm> map(state.view().num_nodes(), fallback);
  for (topo::NodeId n = 0; n < state.view().num_nodes(); ++n) {
    if (const NodeStateUpdate* nsu = state.latest(n)) {
      if (const auto algo = parse_algorithm_tlv(*nsu)) map[n] = *algo;
    }
  }
  return map;
}

te::Solution MixedAlgorithmSolver::solve(const topo::Topology& view,
                                         const traffic::TrafficMatrix& demands,
                                         te::SolveStats* stats) const {
  // Phase 1: predict the legacy routers' capacity-oblivious placement.
  std::vector<double> residual(view.num_links());
  for (std::size_t l = 0; l < view.num_links(); ++l) {
    const auto& link = view.link(static_cast<topo::LinkId>(l));
    residual[l] = link.up ? link.capacity_gbps : 0.0;
  }

  std::vector<te::Allocation> legacy(demands.size());
  traffic::TrafficMatrix te_demands;
  std::vector<std::size_t> te_index;  // back-map into the output

  std::vector<std::vector<te::Path>> sp_tree(view.num_nodes());
  std::vector<char> have_tree(view.num_nodes(), 0);

  const auto& rows = demands.demands();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const traffic::Demand& d = rows[i];
    if (algorithm_of_(d.src) != PathingAlgorithm::kShortestPath) {
      te_index.push_back(i);
      te_demands.add(d);
      continue;
    }
    if (!have_tree[d.src]) {
      sp_tree[d.src] = te::shortest_path_tree(view, d.src);
      have_tree[d.src] = 1;
    }
    te::Allocation a;
    a.demand = d;
    const te::Path& p = sp_tree[d.src][d.dst];
    if (!p.empty()) {
      a.allocated_gbps = d.rate_gbps;  // legacy sends regardless of room
      a.paths.push_back(te::WeightedPath{p, 1.0});
      for (topo::LinkId l : p.links) {
        residual[l] = std::max(0.0, residual[l] - d.rate_gbps);
      }
    }
    legacy[i] = std::move(a);
  }

  // Phase 2: TE for everything else, on what capacity remains.
  const te::Solution te_solution =
      solver_.solve(view, te_demands, stats, &residual);

  // Merge in input order.
  te::Solution out;
  out.allocations = std::move(legacy);
  for (std::size_t k = 0; k < te_index.size(); ++k) {
    out.allocations[te_index[k]] = te_solution.allocations[k];
  }
  // Demands with no rows yet (legacy but disconnected) keep empty
  // allocations with their demand filled in.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (out.allocations[i].demand.src == topo::kInvalidNode) {
      out.allocations[i].demand = rows[i];
    }
  }
  return out;
}

}  // namespace dsdn::core
