#include "core/upgrade.hpp"

#include <algorithm>
#include <stdexcept>

#include "te/dijkstra.hpp"

namespace dsdn::core {

const char* pathing_algorithm_name(PathingAlgorithm a) {
  switch (a) {
    case PathingAlgorithm::kMaxMinFairTe: return "max-min-fair-te";
    case PathingAlgorithm::kShortestPath: return "shortest-path";
    case PathingAlgorithm::kSegmentRouting: return "segment-routing";
  }
  return "?";
}

OpaqueTlv make_algorithm_tlv(PathingAlgorithm a) {
  OpaqueTlv tlv;
  tlv.type = kAlgorithmTlvType;
  tlv.value = std::string(1, static_cast<char>(a));
  return tlv;
}

std::optional<PathingAlgorithm> parse_algorithm_tlv(
    const NodeStateUpdate& nsu) {
  for (const OpaqueTlv& tlv : nsu.tlvs) {
    if (tlv.type != kAlgorithmTlvType || tlv.value.size() != 1) continue;
    const auto v = static_cast<int>(tlv.value[0]);
    if (v == static_cast<int>(PathingAlgorithm::kMaxMinFairTe) ||
        v == static_cast<int>(PathingAlgorithm::kShortestPath) ||
        v == static_cast<int>(PathingAlgorithm::kSegmentRouting)) {
      return static_cast<PathingAlgorithm>(v);
    }
  }
  return std::nullopt;
}

OpaqueTlv make_segment_stack_tlv(const std::vector<topo::NodeId>& segments) {
  if (segments.empty() || segments.size() > kMaxSegmentStackDepth)
    throw std::length_error("segment stack depth out of range");
  OpaqueTlv tlv;
  tlv.type = kSegmentStackTlvType;
  tlv.value.push_back(static_cast<char>(segments.size()));
  for (topo::NodeId n : segments) {
    if (n > 0xFFFF)
      throw std::out_of_range("segment node id exceeds uint16 encoding");
    tlv.value.push_back(static_cast<char>(n & 0xFF));
    tlv.value.push_back(static_cast<char>((n >> 8) & 0xFF));
  }
  return tlv;
}

std::optional<std::vector<topo::NodeId>> parse_segment_stack_tlv(
    const OpaqueTlv& tlv, std::size_t num_nodes) {
  if (tlv.type != kSegmentStackTlvType) return std::nullopt;
  if (tlv.value.empty()) return std::nullopt;
  const std::size_t count = static_cast<unsigned char>(tlv.value[0]);
  if (count < 1 || count > kMaxSegmentStackDepth) return std::nullopt;
  if (tlv.value.size() != 1 + 2 * count) return std::nullopt;
  std::vector<topo::NodeId> segments;
  segments.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const auto lo = static_cast<unsigned char>(tlv.value[1 + 2 * i]);
    const auto hi = static_cast<unsigned char>(tlv.value[2 + 2 * i]);
    const topo::NodeId n = static_cast<topo::NodeId>(lo) |
                           (static_cast<topo::NodeId>(hi) << 8);
    if (n >= num_nodes) return std::nullopt;
    segments.push_back(n);
  }
  return segments;
}

std::vector<PathingAlgorithm> algorithm_map_from_state(
    const StateDb& state, PathingAlgorithm fallback) {
  std::vector<PathingAlgorithm> map(state.view().num_nodes(), fallback);
  for (topo::NodeId n = 0; n < state.view().num_nodes(); ++n) {
    if (const NodeStateUpdate* nsu = state.latest(n)) {
      if (const auto algo = parse_algorithm_tlv(*nsu)) map[n] = *algo;
    }
  }
  return map;
}

te::Solution MixedAlgorithmSolver::solve(const topo::Topology& view,
                                         const traffic::TrafficMatrix& demands,
                                         te::SolveStats* stats) const {
  // Phase 1: predict the legacy routers' capacity-oblivious placement.
  std::vector<double> residual(view.num_links());
  for (std::size_t l = 0; l < view.num_links(); ++l) {
    const auto& link = view.link(static_cast<topo::LinkId>(l));
    residual[l] = link.up ? link.capacity_gbps : 0.0;
  }

  std::vector<te::Allocation> legacy(demands.size());
  traffic::TrafficMatrix sr_demands;
  std::vector<std::size_t> sr_index;  // back-map into the output
  traffic::TrafficMatrix te_demands;
  std::vector<std::size_t> te_index;  // back-map into the output

  std::vector<std::vector<te::Path>> sp_tree(view.num_nodes());
  std::vector<char> have_tree(view.num_nodes(), 0);

  const auto& rows = demands.demands();
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const traffic::Demand& d = rows[i];
    const PathingAlgorithm algo = algorithm_of_(d.src);
    if (algo == PathingAlgorithm::kSegmentRouting) {
      sr_index.push_back(i);
      sr_demands.add(d);
      continue;
    }
    if (algo != PathingAlgorithm::kShortestPath) {
      te_index.push_back(i);
      te_demands.add(d);
      continue;
    }
    if (!have_tree[d.src]) {
      sp_tree[d.src] = te::shortest_path_tree(view, d.src);
      have_tree[d.src] = 1;
    }
    te::Allocation a;
    a.demand = d;
    const te::Path& p = sp_tree[d.src][d.dst];
    if (!p.empty()) {
      a.allocated_gbps = d.rate_gbps;  // legacy sends regardless of room
      a.paths.push_back(te::WeightedPath{p, 1.0});
      for (topo::LinkId l : p.links) {
        residual[l] = std::max(0.0, residual[l] - d.rate_gbps);
      }
    }
    legacy[i] = std::move(a);
  }

  // Phase 2: segment-routing routers place next, on what the legacy
  // prediction left. Deduct their placement before the strict solve so
  // phase 3 sees the capacity SR will actually consume.
  te::Solution sr_solution;
  if (sr_index.size() > 0) {
    sr_solution = sr_solver_.solve(view, sr_demands, &residual);
    for (const te::Allocation& a : sr_solution.allocations) {
      for (const te::WeightedPath& wp : a.paths) {
        const double load = a.allocated_gbps * wp.weight;
        for (topo::LinkId l : wp.path.links) {
          residual[l] = std::max(0.0, residual[l] - load);
        }
      }
    }
  }

  // Phase 3: TE for everything else, on what capacity remains.
  const te::Solution te_solution =
      solver_.solve(view, te_demands, stats, &residual);

  // Merge in input order.
  te::Solution out;
  out.allocations = std::move(legacy);
  for (std::size_t k = 0; k < sr_index.size(); ++k) {
    out.allocations[sr_index[k]] = sr_solution.allocations[k];
  }
  for (std::size_t k = 0; k < te_index.size(); ++k) {
    out.allocations[te_index[k]] = te_solution.allocations[k];
  }
  // Demands with no rows yet (legacy but disconnected) keep empty
  // allocations with their demand filled in.
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (out.allocations[i].demand.src == topo::kInvalidNode) {
      out.allocations[i].demand = rows[i];
    }
  }
  return out;
}

}  // namespace dsdn::core
