#pragma once

// NSU wire format: the byte encoding dSDN controllers exchange over
// gRPC (§3.3). gRPC abstracts chunking and reliable transfer; this layer
// defines the payload itself -- a compact TLV-framed binary format so
// that old controllers skip fields they don't understand (the
// extensibility story of §3.2, mirroring IS-IS TLVs [39]).
//
// Layout (little-endian):
//   magic   u32  'DSDN'
//   version u16
//   origin  u32
//   seq     u64
//   then a sequence of sections, each: type u16 | length u32 | payload
//
// parse() never trusts input: truncated, oversized, or inconsistent
// buffers yield std::nullopt, and a parsed NSU still goes through
// validate_nsu() before a StateDb accepts it.

#include <cstdint>
#include <optional>
#include <vector>

#include "core/nsu.hpp"

namespace dsdn::core {

inline constexpr std::uint32_t kWireMagic = 0x4453444Eu;  // "DSDN"
inline constexpr std::uint16_t kWireVersion = 1;

// Hard cap on accepted message size (a malformed length field must not
// drive allocation).
inline constexpr std::size_t kMaxWireSize = 1 << 22;  // 4 MiB

std::vector<std::uint8_t> serialize_nsu(const NodeStateUpdate& nsu);

// Strict parse; nullopt on any malformation. Unknown section types are
// skipped (forward compatibility); unknown *field* bytes inside known
// sections are rejected.
std::optional<NodeStateUpdate> parse_nsu(
    const std::vector<std::uint8_t>& bytes);

}  // namespace dsdn::core
