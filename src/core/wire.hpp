#pragma once

// NSU wire format: the byte encoding dSDN controllers exchange over
// gRPC (§3.3). gRPC abstracts chunking and reliable transfer; this layer
// defines the payload itself -- a compact TLV-framed binary format so
// that old controllers skip fields they don't understand (the
// extensibility story of §3.2, mirroring IS-IS TLVs [39]).
//
// Layout (little-endian):
//   magic   u32  'DSDN'
//   version u16
//   origin  u32
//   seq     u64
//   then a sequence of sections, each: type u16 | length u32 | payload
//
// decode_nsu() never trusts input: every read is bounds-checked against
// the buffer and the enclosing section window, so a truncated, oversized,
// or inconsistent buffer yields a DecodeError (with the failing offset
// and section) -- never undefined behavior. Two skip-forward rules give
// old routers tolerance for new fields (the core/upgrade rollout story):
// whole sections of unknown type are skipped, and bytes a newer version
// appends *after* the records of a known section are skipped too. A
// decoded NSU still goes through validate_nsu() before a StateDb accepts
// it.

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/nsu.hpp"

namespace dsdn::core {

inline constexpr std::uint32_t kWireMagic = 0x4453444Eu;  // "DSDN"
inline constexpr std::uint16_t kWireVersion = 1;

// Hard cap on accepted message size (a malformed length field must not
// drive allocation).
inline constexpr std::size_t kMaxWireSize = 1 << 22;  // 4 MiB

// Section types (public so tests and fuzzers can frame sections).
inline constexpr std::uint16_t kSectionLinks = 1;
inline constexpr std::uint16_t kSectionPrefixes = 2;
inline constexpr std::uint16_t kSectionDemands = 3;
inline constexpr std::uint16_t kSectionTlv = 4;

enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kOversized,         // buffer exceeds kMaxWireSize
  kTruncated,         // a read ran past the buffer or section window
  kBadMagic,          // first four bytes are not 'DSDN'
  kBadVersion,        // incompatible wire version
  kBadSectionLength,  // section length field exceeds the remaining bytes
  kBadCount,          // record count inconsistent with the section length
  kBadValue,          // a field holds a value outside its domain
};

const char* decode_status_name(DecodeStatus s);

// Section the decoder was inside when it failed; 0 = the fixed header.
const char* wire_section_name(std::uint16_t section);

struct DecodeError {
  DecodeStatus status = DecodeStatus::kOk;
  std::size_t offset = 0;     // byte offset at which decoding failed
  std::uint16_t section = 0;  // section type being decoded (0 = header)

  // "truncated at byte 17 in section 1 (links)" -- for logs/monitoring.
  std::string to_string() const;
};

struct DecodeResult {
  std::optional<NodeStateUpdate> nsu;
  DecodeError error;  // meaningful iff !nsu

  explicit operator bool() const { return nsu.has_value(); }
};

std::vector<std::uint8_t> serialize_nsu(const NodeStateUpdate& nsu);

// Bounds-checked decode; on failure the error names the status, byte
// offset, and enclosing section. Unknown section types and known-section
// trailers are skipped (forward compatibility); structurally inconsistent
// buffers are rejected.
DecodeResult decode_nsu(std::span<const std::uint8_t> bytes);

// Legacy strict-parse surface: nullopt on any malformation.
std::optional<NodeStateUpdate> parse_nsu(const std::vector<std::uint8_t>& bytes);

}  // namespace dsdn::core
