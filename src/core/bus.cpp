#include "core/bus.hpp"

#include <algorithm>

namespace dsdn::core {

std::size_t Bus::subscribe(const std::string& topic, Handler handler) {
  const std::size_t token = next_token_++;
  subs_[topic].push_back({token, std::move(handler)});
  return token;
}

void Bus::unsubscribe(const std::string& topic, std::size_t token) {
  auto it = subs_.find(topic);
  if (it == subs_.end()) return;
  auto& vec = it->second;
  vec.erase(std::remove_if(vec.begin(), vec.end(),
                           [token](const Sub& s) { return s.token == token; }),
            vec.end());
}

void Bus::publish(const std::string& topic, const std::any& message) const {
  const auto it = subs_.find(topic);
  if (it == subs_.end()) return;
  // Copy so handlers can (un)subscribe during delivery.
  const auto handlers = it->second;
  for (const Sub& s : handlers) s.handler(message);
}

std::size_t Bus::num_subscribers(const std::string& topic) const {
  const auto it = subs_.find(topic);
  return it == subs_.end() ? 0 : it->second.size();
}

}  // namespace dsdn::core
