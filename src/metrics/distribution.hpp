#pragma once

// Empirical distributions: the workhorse of the evaluation.
//
// The paper's transient-impact simulator (§5.2) samples component latencies
// (Tprop, Tcomp, Tprog, per-router programming times) from *measured
// distributions*. EmpiricalDistribution plays that role here: it collects
// samples (from real solver runs or calibrated synthetic models), answers
// percentile/CDF queries for reporting, and can be re-sampled inside the
// simulator.

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace dsdn::metrics {

class EmpiricalDistribution {
 public:
  EmpiricalDistribution() = default;
  explicit EmpiricalDistribution(std::vector<double> samples);

  void add(double sample);
  void add_all(std::span<const double> samples);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double min() const;
  double max() const;
  double mean() const;
  double stddev() const;

  // Percentile in [0, 100] with linear interpolation between order
  // statistics. Requires a non-empty distribution.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }

  // Batch percentile sweep: one sorted-cache validation for the whole
  // query set (the fast path behind dist_row / run-artifact series,
  // benchmark-visible as BM_PercentileSweep). Returns one value per
  // entry of `ps`, each as percentile() would.
  std::vector<double> percentiles(std::span<const double> ps) const;

  // Fraction of samples <= x.
  double cdf(double x) const;

  // Draws one sample uniformly from the collected data (bootstrap).
  double sample(util::Rng& rng) const;

  // Returns a copy with every sample multiplied by `factor` (used to model
  // CPU-speed scaling between router and server cores).
  EmpiricalDistribution scaled(double factor) const;

  const std::vector<double>& samples() const { return samples_; }

  // One-line summary "n=... mean=... p50=... p90=... p99=..." for logs.
  std::string summary() const;

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  // Sorted cache, maintained incrementally: samples_[0..sorted_merged_)
  // are already merged into sorted_; a query sorts only the appended
  // tail and merges it in, so interleaved add()/percentile() sequences
  // (the simulators' per-event reporting pattern) cost
  // O(tail log tail + n) per query instead of a full re-sort.
  mutable std::vector<double> sorted_;
  mutable std::size_t sorted_merged_ = 0;
};

}  // namespace dsdn::metrics
