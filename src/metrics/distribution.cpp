#include "metrics/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace dsdn::metrics {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> samples)
    : samples_(std::move(samples)) {}

void EmpiricalDistribution::add(double sample) {
  samples_.push_back(sample);
}

void EmpiricalDistribution::add_all(std::span<const double> samples) {
  samples_.insert(samples_.end(), samples.begin(), samples.end());
}

void EmpiricalDistribution::ensure_sorted() const {
  // Samples are append-only, so the cache only ever needs the new tail:
  // sort it and merge it into the already-sorted prefix.
  if (sorted_merged_ == samples_.size()) return;
  const auto merged = static_cast<std::ptrdiff_t>(sorted_.size());
  sorted_.insert(sorted_.end(), samples_.begin() + merged, samples_.end());
  std::sort(sorted_.begin() + merged, sorted_.end());
  std::inplace_merge(sorted_.begin(), sorted_.begin() + merged, sorted_.end());
  sorted_merged_ = samples_.size();
}

double EmpiricalDistribution::min() const {
  if (empty()) throw std::logic_error("min of empty distribution");
  ensure_sorted();
  return sorted_.front();
}

double EmpiricalDistribution::max() const {
  if (empty()) throw std::logic_error("max of empty distribution");
  ensure_sorted();
  return sorted_.back();
}

double EmpiricalDistribution::mean() const {
  if (empty()) throw std::logic_error("mean of empty distribution");
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double EmpiricalDistribution::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double s : samples_) acc += (s - m) * (s - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double EmpiricalDistribution::percentile(double p) const {
  if (empty()) throw std::logic_error("percentile of empty distribution");
  if (p < 0.0 || p > 100.0)
    throw std::invalid_argument("percentile out of [0,100]");
  ensure_sorted();
  if (sorted_.size() == 1) return sorted_[0];
  const double rank = p / 100.0 * static_cast<double>(sorted_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

std::vector<double> EmpiricalDistribution::percentiles(
    std::span<const double> ps) const {
  std::vector<double> out;
  out.reserve(ps.size());
  for (const double p : ps) out.push_back(percentile(p));
  return out;
}

double EmpiricalDistribution::cdf(double x) const {
  if (empty()) throw std::logic_error("cdf of empty distribution");
  ensure_sorted();
  const auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::sample(util::Rng& rng) const {
  if (empty()) throw std::logic_error("sample of empty distribution");
  const auto i = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(samples_.size()) - 1));
  return samples_[i];
}

EmpiricalDistribution EmpiricalDistribution::scaled(double factor) const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (double s : samples_) out.push_back(s * factor);
  return EmpiricalDistribution(std::move(out));
}

std::string EmpiricalDistribution::summary() const {
  if (empty()) return "n=0";
  std::ostringstream os;
  os << "n=" << size() << " mean=" << util::format_duration(mean())
     << " p50=" << util::format_duration(percentile(50))
     << " p90=" << util::format_duration(percentile(90))
     << " p99=" << util::format_duration(percentile(99));
  return os.str();
}

}  // namespace dsdn::metrics
