#include "metrics/slo.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/format.hpp"

namespace dsdn::metrics {

const char* priority_name(PriorityClass c) {
  switch (c) {
    case PriorityClass::kHigh: return "P-high";
    case PriorityClass::kIntermediate: return "P-intermediate";
    case PriorityClass::kLow: return "P-low";
  }
  return "?";
}

double slo_loss_threshold(PriorityClass c) {
  // kHigh: <0.01% loss; each lower class one nine less.
  return 1e-4 * std::pow(10.0, static_cast<double>(c));
}

void BadSecondsIntegrator::advance(double now, double blast_radius_since_last) {
  if (now < last_time_)
    throw std::invalid_argument("BadSecondsIntegrator: time went backwards");
  if (blast_radius_since_last < 0.0 || blast_radius_since_last > 1.0)
    throw std::invalid_argument("BadSecondsIntegrator: blast radius out of [0,1]");
  bad_seconds_ += (now - last_time_) * blast_radius_since_last;
  last_time_ = now;
}

std::string render_timeline(const std::vector<BlastSample>& samples,
                            int width) {
  std::ostringstream os;
  double max_br = 0.0;
  for (const auto& s : samples) max_br = std::max(max_br, s.blast_radius);
  if (max_br <= 0) max_br = 1.0;
  for (const auto& s : samples) {
    const int bars = static_cast<int>(
        std::lround(s.blast_radius / max_br * static_cast<double>(width)));
    os << util::pad_left(util::format_double(s.time, 2), 10) << "s |"
       << std::string(static_cast<std::size_t>(bars), '#')
       << " " << util::format_double(s.blast_radius * 100.0, 2) << "%\n";
  }
  return os.str();
}

}  // namespace dsdn::metrics
