#pragma once

// SLO model for transient-impact measurement (§5.2).
//
// Flows are grouped by (priority class, source metro, destination metro).
// Each class has a loss SLO: 99.99% delivery for the highest class, one
// "nine" less per subsequent class. A flow group violates its SLO when
// more than 5% of its flows lose traffic beyond the class threshold.
// Blast radius (Eq 1) is the fraction of groups in violation; bad seconds
// (Eq 2) integrates blast radius over the convergence window.

#include <cstddef>
#include <string>
#include <vector>

namespace dsdn::metrics {

// Priority classes, highest first. The paper evaluates 3 representative
// classes (Fig 10: highest / intermediate / lowest of 5 production classes).
enum class PriorityClass : int {
  kHigh = 0,
  kIntermediate = 1,
  kLow = 2,
};

inline constexpr int kNumPriorityClasses = 3;

const char* priority_name(PriorityClass c);

// Loss-rate SLO threshold for a class: 1e-4 for kHigh (four nines), one
// order of magnitude looser per lower class.
double slo_loss_threshold(PriorityClass c);

// Fraction of flows within a group that must exceed the threshold for the
// group to count as violating (the paper uses 5%).
inline constexpr double kGroupViolationFraction = 0.05;

// Integrates blast radius over piecewise-constant intervals.
// add(t, blast_radius) records that `blast_radius` held from the previous
// timestamp until t. Total is available as bad_seconds().
class BadSecondsIntegrator {
 public:
  explicit BadSecondsIntegrator(double start_time)
      : last_time_(start_time) {}

  // Advances to `now`, accumulating the blast radius that held since the
  // previous call. `now` must be monotonically non-decreasing.
  void advance(double now, double blast_radius_since_last);

  double bad_seconds() const { return bad_seconds_; }
  double last_time() const { return last_time_; }

 private:
  double last_time_;
  double bad_seconds_ = 0.0;
};

// A single sample of blast radius at a point in time (for Fig 12's
// timeline plot).
struct BlastSample {
  double time = 0.0;
  double blast_radius = 0.0;  // fraction of flow groups violating SLO
};

std::string render_timeline(const std::vector<BlastSample>& samples,
                            int width = 64);

}  // namespace dsdn::metrics
