#pragma once

// Calibrated latency models substituting for production measurements.
//
// The paper derives cSDN's Tprop / Tcomp / Tprog and per-router
// programming times from Google's B4 telemetry (Figs 8 and 19). We have no
// access to that telemetry, so this module encodes samplers whose medians
// and spreads match the values the paper reports:
//
//   - cSDN Tprop: hierarchy of collection services, median ~2 s, spread
//     covering 10^2..10^4 ms (Fig 8a, log axis). dSDN's Tprop is *not*
//     calibrated; it is produced by the hop-by-hop flooding simulation.
//   - Tcomp: ~190 ms mean on the 40x2.8 GHz server; dSDN runs the same
//     algorithm on 3x1.9 GHz router cores, ~35% slower (Fig 8b). For the
//     scalability figures we instead *measure* our real solver and apply
//     the CPU-speed ratio.
//   - cSDN Tprog: two-phase network-wide programming; per-path time gated
//     by the slowest transit router; median >50 s with 10^2..10^5 ms
//     spread (Fig 8c), reconstructed from the per-router transit/encap
//     model of Appendix B (Fig 19). dSDN Tprog is local FIB programming,
//     ~1000x lower (tens of ms).
//   - RSVP-TE signaling: per-hop setup latency and crankback backoff
//     calibrated so a large B2-scale failure reconverges with median
//     ~45 s and a multi-minute tail (§5.1.2).
//
// All samplers take an explicit Rng: deterministic under a fixed seed.

#include <cstddef>

#include "metrics/distribution.hpp"
#include "util/rng.hpp"

namespace dsdn::metrics {

// Ratio of router control-CPU speed to datacenter server core speed
// (1.9 GHz / 2.8 GHz, §5.1.1). Multiply server-measured compute times by
// 1/kRouterCpuSpeedRatio to model the router.
inline constexpr double kRouterCpuSpeedRatio = 1.9 / 2.8;

struct CsdnCalibration {
  // Event propagation through CPN + collection hierarchy to the central
  // controller, seconds. Lognormal(median, sigma).
  double tprop_median_s = 2.0;
  double tprop_sigma = 0.7;

  // Central TE computation on the datacenter server, seconds.
  double tcomp_median_s = 0.19;
  double tcomp_sigma = 0.12;

  // Per-router *transit entry* programming (phase one of make-before-break).
  // Routers are heterogeneous: each router r has a base latency drawn once
  // from Lognormal(transit_router_median_s, transit_router_sigma) -- this
  // produces the ~10x spread across routers Fig 19 reports -- and each
  // event multiplies the base by a Pareto tail (4x-11x median-to-p99:
  // alpha = 2.2 gives p99/p50 = 100^(1/2.2) ~= 8x).
  double transit_router_median_s = 1.0;
  double transit_router_sigma = 0.9;
  double transit_tail_alpha = 2.2;

  // Headend *encap entry* programming (phase two), same structure, faster.
  double encap_router_median_s = 0.12;
  double encap_router_sigma = 0.8;
  double encap_tail_alpha = 2.0;
};

struct DsdnCalibration {
  // Per-hop NSU processing + transmission delay used when flooding is
  // simulated hop-by-hop (§5.2 footnote: consistent with measured IS-IS
  // propagation -- IS-IS implementations pace LSP processing/flooding at
  // tens of ms per hop). Seconds per hop, plus per-link propagation delay
  // taken from the topology. Calibrated so B4-scale dSDN Tprop lands near
  // the paper's ~100 ms median (Fig 8a).
  double nsu_hop_process_median_s = 0.020;
  double nsu_hop_process_sigma = 0.45;

  // Local FIB programming of all headend paths at one router (gRIBI batch).
  double tprog_median_s = 0.045;
  double tprog_sigma = 0.5;

  // Router-local TE compute for B4-scale inputs (used when not measuring
  // the real solver): 35% above the cSDN server's Tcomp.
  double tcomp_median_s = 0.19 * 1.35;
  double tcomp_sigma = 0.12;
};

struct RsvpCalibration {
  // One hop of RSVP PATH/RESV processing, seconds.
  double hop_setup_median_s = 0.035;
  double hop_setup_sigma = 0.6;
  // Per-router signaling-message service time: each router processes
  // RSVP messages serially, so simultaneous restoration of hundreds of
  // LSPs queues up at shared routers -- the "signaling stampede" that
  // drives B2's 45.5 s median / multi-minute tail (§5.1.2).
  double signal_service_median_s = 0.025;
  double signal_service_sigma = 0.35;
  // Headend CSPF recomputation before (re)signaling.
  double cspf_median_s = 0.35;
  double cspf_sigma = 0.4;
  // Exponential backoff base after a crankback (reservation failure).
  double backoff_base_s = 1.0;
  double backoff_multiplier = 2.0;
  double backoff_max_s = 60.0;
};

// Per-router programming latency model (Appendix B). A PerRouterLatency is
// drawn once per router; sample_* then draw per-event latencies.
class ProgrammingLatencyModel {
 public:
  ProgrammingLatencyModel(const CsdnCalibration& calib, std::size_t n_routers,
                          util::Rng& rng);

  // Per-event transit-entry programming time at router r, seconds.
  double sample_transit(std::size_t router, util::Rng& rng) const;
  // Per-event encap-entry programming time at router r, seconds.
  double sample_encap(std::size_t router, util::Rng& rng) const;

  std::size_t n_routers() const { return transit_base_.size(); }
  // Router with the largest transit base latency ("most loaded", Fig 19).
  std::size_t slowest_router() const;

 private:
  CsdnCalibration calib_;
  std::vector<double> transit_base_;
  std::vector<double> encap_base_;
};

// Convenience samplers for whole-component times.
double sample_csdn_tprop(const CsdnCalibration& c, util::Rng& rng);
double sample_csdn_tcomp(const CsdnCalibration& c, util::Rng& rng);
double sample_dsdn_hop_process(const DsdnCalibration& c, util::Rng& rng);
double sample_dsdn_tprog(const DsdnCalibration& c, util::Rng& rng);
double sample_dsdn_tcomp(const DsdnCalibration& c, util::Rng& rng);

// Builds an empirical distribution by drawing n samples from a sampler.
template <typename Sampler>
EmpiricalDistribution materialize(Sampler&& s, std::size_t n, util::Rng& rng) {
  EmpiricalDistribution d;
  for (std::size_t i = 0; i < n; ++i) d.add(s(rng));
  return d;
}

}  // namespace dsdn::metrics
