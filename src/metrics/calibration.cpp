#include "metrics/calibration.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsdn::metrics {

ProgrammingLatencyModel::ProgrammingLatencyModel(const CsdnCalibration& calib,
                                                 std::size_t n_routers,
                                                 util::Rng& rng)
    : calib_(calib) {
  if (n_routers == 0)
    throw std::invalid_argument("ProgrammingLatencyModel: zero routers");
  transit_base_.reserve(n_routers);
  encap_base_.reserve(n_routers);
  for (std::size_t i = 0; i < n_routers; ++i) {
    transit_base_.push_back(rng.lognormal_median(calib.transit_router_median_s,
                                                 calib.transit_router_sigma));
    encap_base_.push_back(rng.lognormal_median(calib.encap_router_median_s,
                                               calib.encap_router_sigma));
  }
}

double ProgrammingLatencyModel::sample_transit(std::size_t router,
                                               util::Rng& rng) const {
  if (router >= transit_base_.size())
    throw std::out_of_range("sample_transit: router index");
  // Pareto(1, alpha) multiplier: median-to-tail stretch per Fig 19.
  return transit_base_[router] * rng.pareto(1.0, calib_.transit_tail_alpha);
}

double ProgrammingLatencyModel::sample_encap(std::size_t router,
                                             util::Rng& rng) const {
  if (router >= encap_base_.size())
    throw std::out_of_range("sample_encap: router index");
  return encap_base_[router] * rng.pareto(1.0, calib_.encap_tail_alpha);
}

std::size_t ProgrammingLatencyModel::slowest_router() const {
  return static_cast<std::size_t>(
      std::max_element(transit_base_.begin(), transit_base_.end()) -
      transit_base_.begin());
}

double sample_csdn_tprop(const CsdnCalibration& c, util::Rng& rng) {
  return rng.lognormal_median(c.tprop_median_s, c.tprop_sigma);
}

double sample_csdn_tcomp(const CsdnCalibration& c, util::Rng& rng) {
  return rng.lognormal_median(c.tcomp_median_s, c.tcomp_sigma);
}

double sample_dsdn_hop_process(const DsdnCalibration& c, util::Rng& rng) {
  return rng.lognormal_median(c.nsu_hop_process_median_s,
                              c.nsu_hop_process_sigma);
}

double sample_dsdn_tprog(const DsdnCalibration& c, util::Rng& rng) {
  return rng.lognormal_median(c.tprog_median_s, c.tprog_sigma);
}

double sample_dsdn_tcomp(const DsdnCalibration& c, util::Rng& rng) {
  return rng.lognormal_median(c.tcomp_median_s, c.tcomp_sigma);
}

}  // namespace dsdn::metrics
