#pragma once

// Functional WAN emulation: *real* dSDN controllers -- real NSU flooding,
// real StateDBs, the real TE solver, real FIB programming -- running on
// the discrete-event queue with per-link message delays. This is the
// closest thing to the paper's lab deployment: after quiescence, packets
// are forwarded hop-by-hop through the programmed tables and checked for
// delivery.
//
// Used by the integration tests, the quickstart, and the examples; the
// statistical simulators (convergence.hpp / transient.hpp) are used where
// 1,000-day workloads make functional emulation impractical.

#include <memory>
#include <span>

#include "core/controller.hpp"
#include "core/introspection.hpp"
#include "dataplane/forwarder.hpp"
#include "dataplane/snapshot.hpp"
#include "obs/metrics.hpp"
#include "sim/event_queue.hpp"
#include "sim/faulty_bus.hpp"
#include "traffic/estimator.hpp"
#include "traffic/matrix.hpp"

namespace dsdn::sim {

// Bounded retransmission for NSU transfers over one link. The flooder
// treats a transmit attempt as failed when no intact copy reaches the
// far end (gRPC would surface this as a deadline-exceeded RPC) and
// retries with exponential backoff plus jitter, up to max_retransmits,
// after which it gives up on that link (the NSU can still arrive via
// other flooding paths, or with the next originated sequence number).
struct FloodRetryPolicy {
  double base_s = 0.050;
  double multiplier = 2.0;
  double jitter = 0.2;  // fraction of the backoff added uniformly
  int max_retransmits = 5;
};

struct EmulationConfig {
  te::SolverOptions solver_options;
  // Fixed per-hop NSU processing delay added to link propagation.
  double nsu_process_s = 0.002;
  // Controllers pre-install per-router FRR bypasses on every recompute
  // (the on-box Smart-FRR capability of Appendix C).
  bool use_bypasses = true;
  dataplane::BypassStrategy bypass_strategy =
      dataplane::BypassStrategy::kCapacityAware;
  FloodRetryPolicy flood_retry;
  // Warm-start incremental TE recompute on every controller. Safe here
  // because the emulation recomputes all dirty controllers at the same
  // quiescent points, keeping warm-state histories in lockstep; a
  // member crash/restart forces a *fleet-wide* warm-state reset at the
  // recovery barrier, because a restarted instance's cold solve may
  // disagree with its peers' evolved solutions (bounded drift is still
  // drift) and disagreeing headends can jointly overcommit a link.
  bool incremental_te = false;
  // Run the differential checker on every incremental recompute
  // (throws on an invariant violation). Debug/CI: one extra full solve
  // per recompute per controller.
  bool te_diff_check = false;
  // Online-TE recompute policy for closed-loop demand epochs
  // (measurement_epoch): controllers defer TE while their policy says
  // the drift isn't worth a re-solve. kEvery (the default) attaches no
  // policy and preserves the classic recompute-every-epoch behavior.
  // Like incremental_te, safety rests on lockstep: every controller
  // ticks its policy on the same converged views, and crash barriers
  // reset the policies fleet-wide.
  te::RecomputePolicyOptions recompute_policy;
  // Per-router pathing algorithm (§3.2 upgrades / SR rollout). Empty =
  // every router runs the stock solver via the classic LocalSolver path
  // (zero behavior change). Non-empty (size num_nodes): every controller
  // runs a MixedAlgorithmSolver keyed off the advertised TLVs, routers
  // advertise their assigned algorithm, incremental_te is forced off,
  // and -- when any member runs kSegmentRouting -- every router programs
  // its node-segment FIB on each recompute.
  std::vector<core::PathingAlgorithm> algorithms;
};

class DsdnEmulation final : public dataplane::DataplaneProvider {
 public:
  DsdnEmulation(topo::Topology topo, traffic::TrafficMatrix tm,
                EmulationConfig config = {});

  // Boots every controller: originates initial NSUs, floods to
  // quiescence, recomputes and programs all routers.
  void bootstrap();

  // Injects a fiber cut / repair: updates ground truth, has the incident
  // routers originate fresh NSUs, floods to quiescence, then recomputes
  // every controller whose view changed.
  void fail_fiber(topo::LinkId fiber);
  void repair_fiber(topo::LinkId fiber);

  // Correlated SRLG-style multi-failure: every fiber goes down and all
  // incident routers originate before a *single* quiescence barrier, so
  // the NSUs of the member failures overlap in flight.
  void fail_fibers(std::span<const topo::LinkId> fibers);

  // Link flap: down then back up with both originations in flight before
  // one quiescence barrier -- receivers can see the up-NSU before the
  // down-NSU (sequence numbers resolve the race).
  void flap_fiber(topo::LinkId fiber);

  // Partial capacity loss (Appendix C): scales the fiber's capacity in
  // both directions; incident routers advertise the change and every
  // headend re-solves against the reduced capacity.
  void degrade_fiber(topo::LinkId fiber, double capacity_gbps);

  // Crashes a controller and recovers it from a live neighbor (§3.2).
  void crash_and_recover(topo::NodeId node);

  // Crash plus *cold* restart: unlike crash_and_recover, nothing is
  // copied out-of-band -- every up neighbor refloods its full database
  // over the wire (IS-IS CSNP adjacency-up resync) and the fresh
  // controller rebuilds its StateDb from the re-flooded NSUs alone. Its
  // own pre-crash NSU comes back too; the controller adopts its sequence
  // number so the post-restart origination supersedes it everywhere.
  // Warm-start TE state is discarded with the crashed instance (the
  // first recompute after restart is a full solve).
  void crash_and_cold_restart(topo::NodeId node);

  // Demand surge/shift: scales the oracle matrix rows originating at
  // `origin` (every row when origin == topo::kInvalidNode) by `factor`,
  // re-advertises the origins whose aggregated advertisement actually
  // changed (an origin with no demand rows floods nothing), floods to
  // quiescence, and recomputes. Only meaningful without in-band
  // measurement.
  void scale_demands(double factor,
                     topo::NodeId origin = topo::kInvalidNode);

  // Replaces the oracle demand matrix wholesale: origins whose rows
  // changed re-advertise, the fleet floods to quiescence and recomputes.
  // This is how the hierarchical plane runtime rebalances a failed
  // plane's flows onto survivors (hier::PlaneRuntime). Only meaningful
  // without in-band measurement.
  void update_demands(traffic::TrafficMatrix tm);

  // Flips warm-start incremental TE on every controller mid-run (the
  // scenario harness toggles this across histories). Also updates the
  // config used for controllers created by future crash recoveries.
  void set_incremental_te(bool enabled);

  // --- Batched dataplane (RCU FIB snapshots) ---
  // Creates a SnapshotHub with `num_cores` forwarding slots and attaches
  // it to every controller: each recompute publishes that router's
  // tables as one atomic epoch, and BatchPipelines forward from the hub
  // concurrently with reprogramming. Controllers created by later crash
  // recoveries attach automatically. Idempotent scale: calling again
  // replaces the hub.
  void enable_fib_snapshots(std::size_t num_cores = 1);
  dataplane::SnapshotHub* fib_hub() const { return fib_hub_.get(); }

  const EmulationConfig& config() const { return config_; }

  // --- In-band demand measurement (§3.2) ---
  // When enabled, controllers advertise EWMA-estimated demand from
  // traffic observed at their ingress instead of the oracle matrix.
  // Call observe_traffic() to feed an epoch of offered load (e.g. the
  // current matrix, or any drifted variant), then measurement_epoch() to
  // roll estimators, re-originate NSUs, and reconverge.
  void enable_in_band_measurement(traffic::DemandEstimator::Options options
                                  = {});
  void observe_traffic(const traffic::TrafficMatrix& offered);
  void measurement_epoch();
  bool in_band_measurement() const { return !estimators_.empty(); }

  // Replaces the oracle matrix withOUT flooding anything: with in-band
  // measurement the controllers must only ever learn demand through
  // their estimators, while invariant checkers and flow evaluation read
  // the live truth from demands(). This is how closed-loop scenarios
  // evolve the ground truth each epoch.
  void set_oracle_demands(traffic::TrafficMatrix tm);

  // --- Fault injection on the flooding plane ---
  // Interposes a FaultyBus between flooders and links: per-link
  // drop/dup/corrupt/reorder/jitter with seeded per-link RNG streams.
  // Transfers that lose every intact copy are retransmitted per
  // config.flood_retry. Deterministic: same seed, same run.
  void enable_fault_injection(const LinkFaultProfile& default_profile,
                              std::uint64_t seed);
  void set_link_fault_profile(topo::LinkId link, const LinkFaultProfile& p);
  FaultyBus* faulty_bus() { return faults_.get(); }

  // Flooding accounting, stored in this emulation's metrics registry
  // (obs(), counters "flood.*") -- the one source of truth the status
  // renderers and run artifacts also read. This struct is the typed
  // view assembled on demand.
  struct FloodStats {
    std::size_t transmissions = 0;  // attempts incl. retransmits
    std::size_t retransmits = 0;
    std::size_t gave_up = 0;        // transfers abandoned after max retx
    std::size_t decode_errors = 0;  // corrupted copies rejected by decode

    bool operator==(const FloodStats&) const = default;
  };
  FloodStats flood_stats() const;

  // Per-instance metrics registry: flood.* counters, nsu bytes, message
  // counts. Exporters (obs::to_json / to_text) and the introspection
  // renderers read from here.
  const obs::Registry& obs() const { return obs_; }

  // collect_status for one controller with this emulation's flooding
  // counters merged in (the controller alone cannot see the transport).
  core::ControllerStatus status_of(topo::NodeId node) const;

  // True iff all controllers' StateDb digests are identical.
  bool views_converged() const;

  // Sends one packet from `ingress` toward `dst_ip`.
  dataplane::ForwardResult send_packet(
      topo::NodeId ingress, std::uint32_t dst_ip,
      metrics::PriorityClass priority = metrics::PriorityClass::kHigh,
      std::uint64_t entropy = 1) const;

  // Convenience: a host address attached to router `dst`.
  std::uint32_t address_of(topo::NodeId dst) const;

  const topo::Topology& network() const { return topo_; }
  const traffic::TrafficMatrix& demands() const { return tm_; }
  const core::Controller& controller(topo::NodeId n) const;
  core::Controller& mutable_controller(topo::NodeId n);
  double sim_time() const { return queue_.now(); }
  std::size_t messages_delivered() const { return messages_; }

  // DataplaneProvider: the forwarder reads live controller FIBs.
  const dataplane::RouterDataplane& at(topo::NodeId node) const override;

 private:
  std::unique_ptr<core::Controller> make_controller(topo::NodeId n) const;
  // Flips a duplex fiber in ground truth AND publishes the new link state
  // to the snapshot hub (dataplane port-down detection precedes control-
  // plane reconvergence).
  void set_fiber_up(topo::LinkId fiber, bool up);
  void originate_and_flood(topo::NodeId n);
  void flood(const core::FloodDirective& directive, topo::NodeId from);
  // One transmit attempt (attempt 0 = first try) of a serialized NSU
  // over a link; schedules deliveries and, on loss, the retransmit.
  void transmit(std::shared_ptr<const std::vector<std::uint8_t>> bytes,
                topo::LinkId lid, int attempt);
  void deliver(const core::NodeStateUpdate& nsu, topo::LinkId via);
  void run_to_quiescence();
  void recompute_dirty();
  const core::TelemetrySource& telemetry_for(topo::NodeId node) const;
  // Does n's current estimator advertisement differ from its last
  // originated NSU demand section (beyond FP wobble)?
  bool advert_changed(topo::NodeId n) const;

  topo::Topology topo_;  // ground truth
  traffic::TrafficMatrix tm_;
  EmulationConfig config_;
  std::vector<topo::Prefix> prefixes_;
  std::unique_ptr<core::SimTelemetry> telemetry_;
  // In-band measurement state (empty unless enabled).
  std::vector<traffic::DemandEstimator> estimators_;
  std::vector<std::unique_ptr<traffic::EstimatingTelemetry>>
      estimating_telemetry_;
  std::vector<std::unique_ptr<core::Controller>> controllers_;
  std::unique_ptr<dataplane::SnapshotHub> fib_hub_;
  std::vector<char> dirty_;
  sim::EventQueue queue_;
  std::size_t messages_ = 0;
  std::unique_ptr<FaultyBus> faults_;
  // Declared before the counter handles below, which point into it.
  obs::Registry obs_;
  obs::Counter& c_transmissions_;
  obs::Counter& c_retransmits_;
  obs::Counter& c_gave_up_;
  obs::Counter& c_decode_errors_;
  obs::Counter& c_nsu_bytes_;
};

}  // namespace dsdn::sim
