#include "sim/packet_score.hpp"

#include <stdexcept>

#include "dataplane/pipeline.hpp"
#include "util/rng.hpp"

namespace dsdn::sim {

PacketScoreReport score_packets(const DsdnEmulation& emu,
                                const PacketScoreOptions& options) {
  const dataplane::SnapshotHub* hub = emu.fib_hub();
  if (!hub)
    throw std::invalid_argument(
        "score_packets: call enable_fib_snapshots() first");

  const auto& demands = emu.demands().demands();
  PacketScoreReport report;
  std::vector<double> weights;
  weights.reserve(demands.size());
  double total = 0.0;
  for (const traffic::Demand& d : demands) {
    const double w = d.src != d.dst && d.rate_gbps > 0 ? d.rate_gbps : 0.0;
    weights.push_back(w);
    total += w;
  }
  if (total <= 0.0) return report;  // nothing to score

  const int ttl =
      options.ttl > 0
          ? options.ttl
          : static_cast<int>(4 * emu.network().num_nodes() + 16);

  util::Rng rng(util::splitmix64(options.seed ^ 0x9AC4E7500ULL));
  std::vector<dataplane::PacketSpec> specs;
  specs.reserve(options.packets);
  for (std::size_t i = 0; i < options.packets; ++i) {
    const traffic::Demand& d = demands[rng.weighted_pick(weights)];
    dataplane::PacketSpec s;
    s.dst_ip = emu.address_of(d.dst);
    s.priority = d.priority;
    s.entropy = rng.engine()();
    s.ttl = ttl;
    s.ingress = d.src;
    specs.push_back(s);
  }

  dataplane::PipelineOptions po;
  po.core = options.core;
  dataplane::BatchPipeline pipeline(emu.network(), hub, po);
  std::vector<dataplane::PacketVerdict> verdicts;
  pipeline.process(specs, verdicts);

  for (std::size_t i = 0; i < verdicts.size(); ++i) {
    const dataplane::PacketVerdict& v = verdicts[i];
    ++report.packets;
    ++report.by_outcome[static_cast<std::size_t>(v.outcome)];
    if (v.outcome == dataplane::ForwardOutcome::kDelivered) {
      ++report.delivered;
    } else if (v.outcome ==
               dataplane::ForwardOutcome::kDroppedNoIngressRoute) {
      ++report.no_ingress_route;
    } else {
      ++report.hard_drops;
      if (report.violations.size() < options.max_violations) {
        report.violations.push_back(
            "packet " + std::to_string(i) + " ingress " +
            std::to_string(specs[i].ingress) + " -> node " +
            std::to_string(v.final_node) + ": " +
            dataplane::forward_outcome_name(v.outcome));
      }
    }
  }
  return report;
}

}  // namespace dsdn::sim
