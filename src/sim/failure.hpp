#pragma once

// Failure/repair workload generation standing in for the paper's replayed
// production failure logs (§5.2): each duplex fiber fails as a Poisson
// process and repairs after an exponential holding time. The churn
// multiplier scales failure rates uniformly (Fig 11's 10x / 20x stress).

#include <vector>

#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace dsdn::sim {

struct NetEvent {
  double time_s = 0.0;
  topo::LinkId fiber = topo::kInvalidLink;  // duplex representative link
  bool up = false;                          // false = failure, true = repair
};

struct FailureParams {
  double days = 30.0;
  // Mean time between failures for one fiber, in days (baseline rate).
  double mttf_days = 120.0;
  // Mean time to repair, in hours.
  double mttr_hours = 4.0;
  // Fig 11's churn multiplier: scales the failure rate.
  double churn_multiplier = 1.0;
  std::uint64_t seed = 7;
};

// Generates a time-ordered event stream over the duplex fibers of the
// topology. A fiber that is down cannot fail again until repaired.
std::vector<NetEvent> generate_failures(const topo::Topology& topo,
                                        const FailureParams& params);

}  // namespace dsdn::sim
