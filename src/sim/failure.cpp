#include "sim/failure.hpp"

#include <algorithm>

namespace dsdn::sim {

std::vector<NetEvent> generate_failures(const topo::Topology& topo,
                                        const FailureParams& params) {
  util::Rng rng(params.seed);
  const double horizon_s = params.days * 86400.0;
  const double mttf_s =
      params.mttf_days * 86400.0 / std::max(1e-9, params.churn_multiplier);
  const double mttr_s = params.mttr_hours * 3600.0;

  std::vector<NetEvent> events;
  for (const topo::Link& l : topo.links()) {
    // One process per fiber: the duplex representative.
    const bool representative =
        l.reverse == topo::kInvalidLink || l.id < l.reverse;
    if (!representative) continue;
    double t = rng.exponential(mttf_s);
    while (t < horizon_s) {
      events.push_back(NetEvent{t, l.id, false});
      const double repair = t + rng.exponential(mttr_s);
      if (repair >= horizon_s) break;
      events.push_back(NetEvent{repair, l.id, true});
      t = repair + rng.exponential(mttf_s);
    }
  }
  std::sort(events.begin(), events.end(),
            [](const NetEvent& a, const NetEvent& b) {
              if (a.time_s != b.time_s) return a.time_s < b.time_s;
              return a.fiber < b.fiber;
            });
  return events;
}

}  // namespace dsdn::sim
