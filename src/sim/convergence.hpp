#pragma once

// Convergence-time measurement (§4, §5.1): decomposes Tconv into Tprop,
// Tcomp, Tprog for dSDN and cSDN after link-failure events.
//
// dSDN: NSUs propagate hop-by-hop through the data plane (flooding);
// Tprop(i) is router i's earliest arrival time. Every router then runs TE
// (Tcomp(i)) and programs only its own paths locally (Tprog(i)).
// Network-wide Tconv = max_i (Tprop(i) + Tcomp(i) + Tprog(i)).
//
// cSDN: one Tprop through the CPN + collection hierarchy, one central
// Tcomp, then two-phase programming of every changed path; Tconv is gated
// by the slowest path (Appendix B).

#include "core/programmer.hpp"
#include "csdn/controller.hpp"
#include "metrics/calibration.hpp"
#include "metrics/distribution.hpp"
#include "te/incremental.hpp"
#include "te/solver.hpp"

namespace dsdn::sim {

// Statistical counterpart of the emulation's FaultyBus + FloodRetryPolicy
// (sim/faulty_bus.hpp): each hop-level NSU transfer is lost with
// loss_prob; a lost transfer is retried after exponential backoff with
// jitter, up to max_retransmits, then abandoned (the hop contributes +inf
// and flooding must route around it).
struct LossyFloodModel {
  double loss_prob = 0.0;  // 0 = lossless (the baseline Fig 8/9 setting)
  double retx_base_s = 0.050;
  double retx_multiplier = 2.0;
  double retx_jitter = 0.2;
  int max_retransmits = 5;
};

// Earliest NSU arrival time at every router when `origin` floods after
// the (already applied) failure. Per-hop cost = link propagation delay +
// a sampled per-hop processing time. Unreachable routers get +inf.
std::vector<double> nsu_arrival_times(const topo::Topology& topo,
                                      topo::NodeId origin,
                                      const metrics::DsdnCalibration& calib,
                                      util::Rng& rng);

// Lossy-flood variant: each hop additionally pays the retransmission
// backoff of its sampled loss run (Fig 9/10 under 1-10% flood loss).
std::vector<double> nsu_arrival_times(const topo::Topology& topo,
                                      topo::NodeId origin,
                                      const metrics::DsdnCalibration& calib,
                                      const LossyFloodModel& loss,
                                      util::Rng& rng);

struct ComponentDistributions {
  metrics::EmpiricalDistribution tprop;
  metrics::EmpiricalDistribution tcomp;
  metrics::EmpiricalDistribution tprog;
  metrics::EmpiricalDistribution total;  // per-event network convergence
};

struct DsdnConvergenceConfig {
  metrics::DsdnCalibration calib;
  // When non-empty, Tcomp is sampled from this measured distribution
  // (e.g. real solver runs scaled by the router CPU ratio) instead of the
  // calibrated lognormal.
  metrics::EmpiricalDistribution measured_tcomp;
  std::size_t n_events = 200;
  std::uint64_t seed = 21;
  // Flood loss injected on every NSU hop (loss_prob 0 = off).
  LossyFloodModel flood;
  // Per-attempt local-programming failure probability; failed attempts
  // pay timeout + backoff per prog_retry before Tprog's success sample,
  // so the Fig 19 programming tail reflects retries.
  double prog_fail_prob = 0.0;
  core::ProgramRetryPolicy prog_retry;
};

// Measures dSDN's convergence components over random fiber failures.
ComponentDistributions measure_dsdn_convergence(
    const topo::Topology& topo, const DsdnConvergenceConfig& config);

struct CsdnConvergenceConfig {
  metrics::CsdnCalibration calib;
  te::SolverOptions solver_options;
  // When non-empty, Tcomp is sampled from this measured distribution
  // (real solver runs at server speed) instead of the calibrated value,
  // keeping the cSDN-vs-dSDN Tcomp comparison apples-to-apples.
  metrics::EmpiricalDistribution measured_tcomp;
  std::size_t n_events = 200;
  std::uint64_t seed = 22;
};

// Measures cSDN's convergence components over random fiber failures.
// Runs the real TE solver per event to obtain the changed path set whose
// two-phase programming is timed.
ComponentDistributions measure_csdn_convergence(
    const topo::Topology& topo, const traffic::TrafficMatrix& tm,
    const CsdnConvergenceConfig& config);

// Random duplex fiber ids (representatives) usable as failure targets:
// only fibers whose removal keeps the graph connected are returned, so
// convergence is always achievable.
std::vector<topo::LinkId> pick_failure_fibers(const topo::Topology& topo,
                                              std::size_t count,
                                              std::uint64_t seed);

// ---- Warm-start TE recompute timing (the Fig 8/9 Tcomp term) ----
//
// Per connectivity-preserving fiber failure, times the router's local TE
// recompute twice on the identical post-failure view: once from scratch
// (the seed behavior) and once warm-started off the pre-failure solution
// via te::IncrementalSolver. The repair-side recompute restores the warm
// state between events, so every failure is measured against a converged
// baseline -- exactly the single-link-flap recompute a dSDN router runs.
struct IncrementalTcompConfig {
  te::SolverOptions solver_options;
  double full_solve_threshold = 0.35;
  // Run the differential checker on every warm recompute (adds a full
  // solve per event; the check result is reported, not thrown).
  bool diff_check = false;
  std::size_t n_events = 50;
  std::uint64_t seed = 23;
};

struct IncrementalTcompResult {
  metrics::EmpiricalDistribution full_s;         // scratch solve per event
  metrics::EmpiricalDistribution incremental_s;  // warm-start per event
  metrics::EmpiricalDistribution reuse_fraction; // per warm recompute
  std::size_t fallbacks = 0;
  std::size_t checker_violations = 0;
};

IncrementalTcompResult measure_incremental_tcomp(
    const topo::Topology& topo, const traffic::TrafficMatrix& tm,
    const IncrementalTcompConfig& config);

}  // namespace dsdn::sim
