#pragma once

// System-level invariant checkers for the scenario harness: properties
// that must hold at every quiescent point of a churn history, no matter
// which failures, restarts, surges, or solver-mode flips produced it.
// No single router can see these locally -- each one cross-checks global
// state (every FIB, every view, ground truth) the way the paper's lab
// validation does after convergence:
//
//   1. Converged views: all StateDb digests identical, and the agreed
//      view's per-link liveness matches ground truth (the consensus-free
//      foundation everything else builds on).
//   2. FIB walk: every installed headend route, replayed label by label
//      through the *transit* FIBs of the routers it visits, reaches its
//      egress without revisiting a node (no forwarding loop), without
//      crossing a down link (down-link zeroing -- no stale routes past
//      the convergence bound), and without a transit-table miss.
//   3. No persistent blackholes: flow_eval loss over the FIB-derived
//      routing; a demand whose endpoints are connected on up links must
//      not lose everything after reconvergence (congestion loss < 1 from
//      oversubscription is legitimate and reported via max_demand_loss).
//   4. Capacity conservation: summing every router's *own* installed
//      allocations (what the network actually carries), per-link placed
//      load stays within capacity (+slack) and is exactly zero on down
//      links.
//   5. Cold-solve parity: one router's history-evolved solution is
//      diffed (te::DiffChecker) against a from-scratch full solve of its
//      current view -- extending PR 4's per-solve check across whole
//      recompute histories.

#include <string>
#include <vector>

#include "sim/emulation.hpp"

namespace dsdn::sim {

struct InvariantOptions {
  // Slack for per-link conservation sums (floating-point accumulation).
  double capacity_slack_gbps = 1e-6;
  // Allowed relative throughput drift of the history-evolved solution vs
  // the cold full solve (DiffChecker's bound; warm-start drift is capped
  // by the incremental solver's fallback threshold).
  double throughput_tolerance = 0.05;
  // The parity check costs one full solve per call; scenario sweeps over
  // big topologies can disable it.
  bool check_solution_parity = true;
  // Closed-loop mode: a recompute policy may legitimately leave the
  // installed solution behind the current demand view (bounded staleness
  // is the whole point). Diff the solution against a cold solve of the
  // demands it actually solved (reconstructed from the solution itself --
  // one allocation per input demand) instead of the live view. The
  // topology still comes from the current view: churn events recompute
  // unconditionally, so solutions are never stale against topology.
  bool parity_against_solved_demands = false;
};

struct InvariantReport {
  std::vector<std::string> violations;
  std::size_t checks_run = 0;   // individual assertions evaluated
  double max_demand_loss = 0.0; // max flow_eval loss across demands

  bool ok() const { return violations.empty(); }
};

// Runs the full checker suite against the emulation's current quiescent
// state. Pure observer: never mutates the emulation.
InvariantReport check_invariants(const DsdnEmulation& emu,
                                 const InvariantOptions& options = {});

}  // namespace dsdn::sim
