#pragma once

// Fault injection for the NSU flooding plane (§4-5, Figs 8-12: the
// paper's failure experiments only mean something if flooding itself can
// misbehave). A FaultyBus sits between a flooder and the wire: every
// transmit attempt over a link rolls that link's fault profile and yields
// zero or more copies to actually deliver -- dropped, duplicated,
// corrupted, reordered (extra delay), or jittered.
//
// Determinism: each link gets its own RNG stream derived from the bus
// seed via splitmix64 (NOT seed + link_id, which correlates neighboring
// streams), and streams are consumed in event order, so a fixed seed
// reproduces a lossy run bit-for-bit.

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "topo/topology.hpp"
#include "util/rng.hpp"

namespace dsdn::sim {

// Per-link fault probabilities, rolled once per transmit attempt.
struct LinkFaultProfile {
  double drop = 0.0;       // copy never reaches the far end
  double duplicate = 0.0;  // a second copy is delivered
  double corrupt = 0.0;    // payload bytes are garbled in flight
  double reorder = 0.0;    // copy is held back by an extra random delay
  // Maximum hold-back applied to reordered copies, seconds (uniform).
  double reorder_delay_s = 0.050;
  // Uniform extra latency on every copy, seconds (0 = none).
  double jitter_s = 0.0;

  bool quiet() const {
    return drop == 0.0 && duplicate == 0.0 && corrupt == 0.0 &&
           reorder == 0.0 && jitter_s == 0.0;
  }
};

class FaultyBus {
 public:
  explicit FaultyBus(std::uint64_t seed) : seed_(seed) {}

  void set_default_profile(const LinkFaultProfile& p) { default_ = p; }
  void set_link_profile(topo::LinkId link, const LinkFaultProfile& p) {
    per_link_[link] = p;
  }
  const LinkFaultProfile& profile(topo::LinkId link) const;

  // One copy placed on the wire.
  struct Copy {
    double extra_delay_s = 0.0;
    bool corrupted = false;
  };

  // One transmit attempt over `link`: rolls the link's profile and
  // returns the copies that actually go out (empty = dropped).
  std::vector<Copy> transmit(topo::LinkId link);

  // Deterministically garbles 1-4 bytes of the payload using the link's
  // stream (no-op on an empty payload).
  void corrupt_payload(topo::LinkId link, std::vector<std::uint8_t>& bytes);

  // Uniform draw from the link's stream (for retransmit backoff jitter,
  // so the whole lossy run stays on seeded randomness).
  double uniform(topo::LinkId link, double lo, double hi);

  struct Stats {
    std::size_t attempts = 0;
    std::size_t dropped = 0;
    std::size_t duplicated = 0;
    std::size_t corrupted = 0;
    std::size_t reordered = 0;

    bool operator==(const Stats&) const = default;
  };
  const Stats& stats() const { return stats_; }

 private:
  util::Rng& rng_for(topo::LinkId link);

  std::uint64_t seed_;
  LinkFaultProfile default_;
  std::unordered_map<topo::LinkId, LinkFaultProfile> per_link_;
  std::unordered_map<topo::LinkId, util::Rng> rngs_;
  Stats stats_;
};

}  // namespace dsdn::sim
