#include "sim/flow_eval.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace dsdn::sim {

InstalledRouting InstalledRouting::from_solution(
    const te::Solution& solution) {
  InstalledRouting r;
  r.rows.reserve(solution.allocations.size());
  for (const te::Allocation& a : solution.allocations) {
    r.rows.push_back(a.paths);
  }
  return r;
}

namespace {

// Branch cap per SR route expansion: generous relative to real ECMP
// fan-out (<= 3 segments, small per-hop width), so dropped branches --
// which get charged as loss -- only occur on pathological FIBs.
constexpr std::size_t kMaxSrExpansions = 64;

// DFS through the installed SrFibs: follow the up members toward each
// segment target with uniform per-hop splits; a node whose members are
// all down terminates its branch ON the dead link (structurally scored
// as dropped, like the forwarder); a missing entry abandons the branch
// (its weight is charged as loss).
void expand_sr_route(const topo::Topology& topo,
                     const dataplane::DataplaneProvider& dataplanes,
                     topo::NodeId at, std::size_t seg_idx,
                     const std::vector<topo::NodeId>& segments,
                     std::vector<topo::LinkId>& links, double frac,
                     std::size_t max_hops,
                     std::vector<te::WeightedPath>& out) {
  if (out.size() >= kMaxSrExpansions) return;
  if (seg_idx == segments.size()) {
    te::WeightedPath wp;
    wp.path.links = links;
    wp.weight = frac;
    wp.segments = segments;
    out.push_back(std::move(wp));
    return;
  }
  const topo::NodeId target = segments[seg_idx];
  if (at == target) {
    expand_sr_route(topo, dataplanes, at, seg_idx + 1, segments, links, frac,
                    max_hops, out);
    return;
  }
  if (links.size() >= max_hops) return;  // cycling FIBs: abandon branch
  const std::vector<dataplane::SrNextHop>* members =
      dataplanes.at(at).sr.members(target);
  if (!members) return;
  std::vector<const dataplane::SrNextHop*> up;
  for (const dataplane::SrNextHop& m : *members) {
    if (topo.link(m.link).up) up.push_back(&m);
  }
  if (up.empty()) {
    te::WeightedPath wp;
    wp.path.links = links;
    wp.path.links.push_back(members->front().link);  // the dead hop
    wp.weight = frac;
    wp.segments = segments;
    out.push_back(std::move(wp));
    return;
  }
  const double split = frac / static_cast<double>(up.size());
  for (const dataplane::SrNextHop* m : up) {
    links.push_back(m->link);
    expand_sr_route(topo, dataplanes, m->next, seg_idx, segments, links,
                    split, max_hops, out);
    links.pop_back();
  }
}

}  // namespace

InstalledRouting InstalledRouting::from_dataplane(
    const traffic::TrafficMatrix& tm,
    const dataplane::DataplaneProvider& dataplanes,
    const topo::Topology* topo) {
  InstalledRouting r;
  r.rows.resize(tm.size());
  const auto& demands = tm.demands();
  for (std::size_t i = 0; i < demands.size(); ++i) {
    const traffic::Demand& d = demands[i];
    const dataplane::EncapEntry* entry =
        dataplanes.at(d.src).ingress.routes_for(d.dst, d.priority);
    if (!entry) continue;  // nothing installed: scored as blackholed
    for (const dataplane::WeightedRoute& wr : entry->routes) {
      const auto& labels = wr.stack.labels();
      if (!labels.empty() && dataplane::is_node_segment_label(labels[0])) {
        if (!topo) continue;  // cannot expand: weight charged as loss
        std::vector<topo::NodeId> segments;
        segments.reserve(labels.size());
        bool well_formed = true;
        for (dataplane::Label l : labels) {
          if (!dataplane::is_node_segment_label(l)) {
            well_formed = false;  // mixed stack: no encoder emits this
            break;
          }
          segments.push_back(dataplane::segment_node(l));
        }
        if (!well_formed) continue;
        std::vector<te::WeightedPath> expanded;
        std::vector<topo::LinkId> links;
        expand_sr_route(*topo, dataplanes, d.src, 0, segments, links,
                        wr.weight, dataplane::forward_hop_bound(*topo),
                        expanded);
        for (te::WeightedPath& wp : expanded) {
          r.rows[i].push_back(std::move(wp));
        }
        continue;
      }
      r.rows[i].push_back(te::WeightedPath{
          dataplane::decode_strict_route(wr.stack), wr.weight});
    }
  }
  return r;
}

namespace {

// A demand's traffic on one installed path, after splicing bypasses
// around down links. dropped == true when a down link had no usable
// bypass (that traffic is lost entirely).
struct EffectivePath {
  std::vector<topo::LinkId> links;
  std::vector<topo::LinkId> bypass_links;  // the spliced-in detour hops
  bool dropped = false;
};

EffectivePath splice_bypasses(const topo::Topology& topo,
                              const te::Path& path, double rate,
                              std::uint64_t entropy,
                              const dataplane::BypassPlan* bypasses,
                              const std::vector<double>& residual) {
  EffectivePath out;
  for (topo::LinkId lid : path.links) {
    const topo::Link& l = topo.link(lid);
    if (l.up) {
      out.links.push_back(lid);
      continue;
    }
    if (!bypasses) {
      out.dropped = true;
      return out;
    }
    const auto bypass = bypasses->select(topo, lid, rate, entropy, residual);
    if (!bypass) {
      out.dropped = true;
      return out;
    }
    // The bypass was computed on the healthy topology; links inside it
    // may themselves be down now (select() filters that, but re-check
    // defensively -- a second concurrent failure can slip through for
    // multi-candidate strategies).
    for (topo::LinkId bl : bypass->links) {
      if (!topo.link(bl).up) {
        out.dropped = true;
        return out;
      }
      out.links.push_back(bl);
      out.bypass_links.push_back(bl);
    }
  }
  return out;
}

}  // namespace

LossReport evaluate_loss(const topo::Topology& topo,
                         const traffic::TrafficMatrix& tm,
                         const InstalledRouting& routing,
                         const dataplane::BypassPlan* bypasses,
                         const LossOptions& options) {
  const auto& demands = tm.demands();
  LossReport report;
  report.loss.assign(demands.size(), 0.0);
  report.utilization.assign(topo.num_links(), 0.0);

  // Offered load per (link, class), plus the effective paths we need for
  // the second pass.
  std::vector<std::array<double, metrics::kNumPriorityClasses>> offered(
      topo.num_links(), std::array<double, metrics::kNumPriorityClasses>{});
  struct Portion {
    std::size_t demand;
    double weight;
    EffectivePath eff;
  };
  std::vector<Portion> portions;
  portions.reserve(demands.size());

  // Live spare-capacity view for bypass admission: flows rerouted onto a
  // bypass drain it for subsequent flows, which is what spreads load
  // across candidates in the multi-path strategies.
  std::vector<double> live_residual;
  if (options.bypass_residual) {
    live_residual = *options.bypass_residual;
  } else {
    live_residual.resize(topo.num_links());
    for (std::size_t l = 0; l < topo.num_links(); ++l)
      live_residual[l] = topo.link(static_cast<topo::LinkId>(l)).capacity_gbps;
  }

  for (std::size_t i = 0; i < demands.size(); ++i) {
    const auto& rows = routing.rows;
    if (demands[i].rate_gbps <= 0) continue;  // offers nothing, loses nothing
    if (i >= rows.size() || rows[i].empty()) {
      report.loss[i] = 1.0;  // nothing installed: blackholed
      continue;
    }
    for (const te::WeightedPath& wp : rows[i]) {
      if (wp.weight <= 0) continue;  // carries no share of the demand
      const double rate = demands[i].rate_gbps * wp.weight;
      EffectivePath eff =
          splice_bypasses(topo, wp.path, rate,
                          util::splitmix64(i * 2654435761u), bypasses,
                          live_residual);
      if (!eff.dropped) {
        const auto cls = static_cast<int>(demands[i].priority);
        for (topo::LinkId l : eff.links) offered[l][cls] += rate;
        for (topo::LinkId l : eff.bypass_links) live_residual[l] -= rate;
      }
      portions.push_back(Portion{i, wp.weight, std::move(eff)});
    }
  }

  // Per-link strict-priority capacity grant.
  std::vector<std::array<double, metrics::kNumPriorityClasses>> drop_frac(
      topo.num_links(), std::array<double, metrics::kNumPriorityClasses>{});
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const double capacity =
        topo.link(static_cast<topo::LinkId>(l)).capacity_gbps;
    double total_offered = 0.0;
    for (int c = 0; c < metrics::kNumPriorityClasses; ++c)
      total_offered += offered[l][c];
    if (!options.congestion) {
      // Structural-only scoring: every class granted in full.
    } else if (options.strict_priority) {
      double remaining = capacity;
      for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
        const double o = offered[l][c];
        if (o <= 0) continue;
        const double granted = std::min(remaining, o);
        drop_frac[l][c] = 1.0 - granted / o;
        remaining -= granted;
      }
    } else if (total_offered > capacity) {
      const double shared_drop = 1.0 - capacity / total_offered;
      for (int c = 0; c < metrics::kNumPriorityClasses; ++c)
        drop_frac[l][c] = shared_drop;
    }
    report.utilization[l] = total_offered / capacity;
  }

  // Per-demand loss: weighted across installed paths; per path, the
  // worst drop fraction along it (bottleneck discipline).
  std::vector<double> weight_seen(demands.size(), 0.0);
  for (const Portion& p : portions) {
    double path_loss;
    if (p.eff.dropped) {
      path_loss = 1.0;
    } else {
      path_loss = 0.0;
      const auto cls = static_cast<int>(demands[p.demand].priority);
      for (topo::LinkId l : p.eff.links)
        path_loss = std::max(path_loss, drop_frac[l][cls]);
    }
    report.loss[p.demand] += p.weight * path_loss;
    weight_seen[p.demand] += p.weight;
  }
  // Partial-install accounting: weights might not sum to 1 (routes
  // skipped at programming time -- too deep, or install gave up). The
  // missing share of the demand is charged as loss *proportionally*;
  // only a demand with no installed route at all is the full blackhole
  // handled above. A demand offering zero rate keeps loss 0 either way.
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].rate_gbps <= 0) continue;
    if (i < routing.rows.size() && !routing.rows[i].empty()) {
      report.loss[i] += std::max(0.0, 1.0 - weight_seen[i]);
      report.loss[i] = std::clamp(report.loss[i], 0.0, 1.0);
    }
  }
  return report;
}

double blast_radius(const traffic::TrafficMatrix& tm,
                    const std::vector<traffic::FlowGroup>& class_groups,
                    const LossReport& report) {
  if (class_groups.empty()) return 0.0;
  std::size_t violating = 0;
  for (const traffic::FlowGroup& g : class_groups) {
    const double threshold = metrics::slo_loss_threshold(g.key.priority);
    double hurt_volume = 0.0;
    for (std::size_t idx : g.demand_indices) {
      if (report.loss[idx] > threshold)
        hurt_volume += tm.demands()[idx].rate_gbps;
    }
    if (g.total_rate_gbps > 0 &&
        hurt_volume / g.total_rate_gbps > metrics::kGroupViolationFraction) {
      ++violating;
    }
  }
  return static_cast<double>(violating) /
         static_cast<double>(class_groups.size());
}

double median_latency_inflation(const topo::Topology& topo,
                                const traffic::TrafficMatrix& tm,
                                const InstalledRouting& reference,
                                const InstalledRouting& current,
                                const dataplane::BypassPlan* bypasses,
                                const std::vector<double>* bypass_residual) {
  auto mean_latency = [&](const std::vector<te::WeightedPath>& row,
                          std::size_t demand_idx,
                          bool splice) -> std::optional<double> {
    double total = 0.0;
    double weight = 0.0;
    for (const te::WeightedPath& wp : row) {
      double lat = 0.0;
      if (splice) {
        EffectivePath eff = splice_bypasses(
            topo, wp.path, tm.demands()[demand_idx].rate_gbps * wp.weight,
            util::splitmix64(demand_idx * 2654435761u), bypasses,
            bypass_residual ? *bypass_residual : std::vector<double>{});
        if (eff.dropped) continue;
        for (topo::LinkId l : eff.links) lat += topo.link(l).delay_s;
      } else {
        lat = wp.path.latency_s(topo);
      }
      total += wp.weight * lat;
      weight += wp.weight;
    }
    if (weight <= 0) return std::nullopt;
    return total / weight;
  };

  std::vector<double> inflations;
  for (std::size_t i = 0; i < tm.size(); ++i) {
    if (i >= reference.rows.size() || i >= current.rows.size()) continue;
    const auto ref = mean_latency(reference.rows[i], i, /*splice=*/false);
    const auto cur = mean_latency(current.rows[i], i, /*splice=*/true);
    if (!ref || !cur || *ref <= 0) continue;
    inflations.push_back(*cur / *ref);
  }
  if (inflations.empty()) return 1.0;
  std::nth_element(inflations.begin(),
                   inflations.begin() + inflations.size() / 2,
                   inflations.end());
  return inflations[inflations.size() / 2];
}

}  // namespace dsdn::sim
