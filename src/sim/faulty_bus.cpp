#include "sim/faulty_bus.hpp"

namespace dsdn::sim {

const LinkFaultProfile& FaultyBus::profile(topo::LinkId link) const {
  const auto it = per_link_.find(link);
  return it == per_link_.end() ? default_ : it->second;
}

util::Rng& FaultyBus::rng_for(topo::LinkId link) {
  auto it = rngs_.find(link);
  if (it == rngs_.end()) {
    // splitmix64-derived child seed: streams for links i and i+1 share no
    // structure (unlike seed + i, which feeds mt19937_64 nearly identical
    // initial states).
    it = rngs_
             .emplace(link, util::Rng(util::splitmix64(
                                seed_ ^ util::splitmix64(link + 1))))
             .first;
  }
  return it->second;
}

std::vector<FaultyBus::Copy> FaultyBus::transmit(topo::LinkId link) {
  const LinkFaultProfile& p = profile(link);
  ++stats_.attempts;
  if (p.quiet()) return {Copy{}};
  util::Rng& rng = rng_for(link);
  if (p.drop > 0 && rng.bernoulli(p.drop)) {
    ++stats_.dropped;
    return {};
  }
  const std::size_t copies =
      (p.duplicate > 0 && rng.bernoulli(p.duplicate)) ? 2 : 1;
  if (copies == 2) ++stats_.duplicated;
  std::vector<Copy> out;
  out.reserve(copies);
  for (std::size_t i = 0; i < copies; ++i) {
    Copy c;
    if (p.corrupt > 0 && rng.bernoulli(p.corrupt)) {
      c.corrupted = true;
      ++stats_.corrupted;
    }
    if (p.jitter_s > 0) c.extra_delay_s += rng.uniform(0.0, p.jitter_s);
    if (p.reorder > 0 && rng.bernoulli(p.reorder)) {
      c.extra_delay_s += rng.uniform(0.0, p.reorder_delay_s);
      ++stats_.reordered;
    }
    out.push_back(c);
  }
  return out;
}

void FaultyBus::corrupt_payload(topo::LinkId link,
                                std::vector<std::uint8_t>& bytes) {
  if (bytes.empty()) return;
  util::Rng& rng = rng_for(link);
  const int flips = 1 + static_cast<int>(rng.uniform_int(0, 3));
  for (int f = 0; f < flips; ++f) {
    const auto at = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(bytes.size()) - 1));
    bytes[at] ^= static_cast<std::uint8_t>(rng.uniform_int(1, 255));
  }
}

double FaultyBus::uniform(topo::LinkId link, double lo, double hi) {
  return rng_for(link).uniform(lo, hi);
}

}  // namespace dsdn::sim
