#include "sim/event_queue.hpp"

#include <stdexcept>

namespace dsdn::sim {

void EventQueue::schedule(double when, Callback cb) {
  if (when < now_)
    throw std::invalid_argument("EventQueue: scheduling into the past");
  queue_.push(Entry{when, seq_++, std::move(cb)});
}

void EventQueue::schedule_in(double delay, Callback cb) {
  schedule(now_ + delay, std::move(cb));
}

bool EventQueue::step() {
  if (queue_.empty()) return false;
  // Invariant: pop must precede invoke -- the callback may schedule new
  // events, which reshuffles the heap under us if the entry were still in
  // it. Move (not copy) the entry out first: top() is const-qualified
  // only because mutating the *ordering key* would break the heap, and
  // pop() compares solely on the scalar (when, seq) fields, which a move
  // leaves intact -- so stealing the std::function is safe and saves a
  // captured-state allocation on every event of the hot loop.
  Entry e = std::move(const_cast<Entry&>(queue_.top()));
  queue_.pop();
  now_ = e.when;
  e.cb();
  return true;
}

std::size_t EventQueue::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

std::size_t EventQueue::run_until(double horizon) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().when <= horizon) {
    step();
    ++n;
  }
  now_ = std::max(now_, horizon);
  return n;
}

}  // namespace dsdn::sim
