#include "sim/convergence.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <queue>

#include "obs/trace.hpp"
#include "topo/builder.hpp"

namespace dsdn::sim {

namespace {

// Extra hop latency from a sampled run of lost transfers: exponential
// backoff with jitter per retry; +inf when the transfer exhausts its
// retransmit budget (the flooder gives up on this hop).
double sample_retx_delay(const LossyFloodModel& loss, util::Rng& rng) {
  if (loss.loss_prob <= 0) return 0.0;
  double delay = 0.0;
  for (int attempt = 0;; ++attempt) {
    if (!rng.bernoulli(loss.loss_prob)) return delay;
    if (attempt >= loss.max_retransmits)
      return std::numeric_limits<double>::infinity();
    double backoff =
        loss.retx_base_s * std::pow(loss.retx_multiplier, attempt);
    if (loss.retx_jitter > 0)
      backoff *= 1.0 + rng.uniform(0.0, loss.retx_jitter);
    delay += backoff;
  }
}

// Tprog under transient programming failures: failed attempts pay
// timeout + backoff before the (bounded) final success sample.
double sample_tprog_with_retries(const DsdnConvergenceConfig& config,
                                 util::Rng& rng) {
  double t = 0.0;
  if (config.prog_fail_prob > 0) {
    const core::ProgramRetryPolicy& p = config.prog_retry;
    for (int attempt = 0; attempt + 1 < p.max_attempts; ++attempt) {
      if (!rng.bernoulli(config.prog_fail_prob)) break;
      t += p.attempt_timeout_s;
      double backoff =
          p.backoff_base_s * std::pow(p.backoff_multiplier, attempt);
      if (p.backoff_jitter > 0)
        backoff *= 1.0 + rng.uniform(0.0, p.backoff_jitter);
      t += backoff;
    }
  }
  return t + metrics::sample_dsdn_tprog(config.calib, rng);
}

}  // namespace

std::vector<double> nsu_arrival_times(const topo::Topology& topo,
                                      topo::NodeId origin,
                                      const metrics::DsdnCalibration& calib,
                                      util::Rng& rng) {
  return nsu_arrival_times(topo, origin, calib, LossyFloodModel{}, rng);
}

std::vector<double> nsu_arrival_times(const topo::Topology& topo,
                                      topo::NodeId origin,
                                      const metrics::DsdnCalibration& calib,
                                      const LossyFloodModel& loss,
                                      util::Rng& rng) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  // Sample one processing delay per link for this event, then run
  // earliest-arrival Dijkstra over delay + processing (+ any sampled
  // retransmission backoff under flood loss).
  std::vector<double> hop_cost(topo.num_links(), kInf);
  for (const topo::Link& l : topo.links()) {
    if (!l.up) continue;
    hop_cost[l.id] = l.delay_s + metrics::sample_dsdn_hop_process(calib, rng) +
                     sample_retx_delay(loss, rng);
  }
  std::vector<double> arrival(topo.num_nodes(), kInf);
  using Entry = std::pair<double, topo::NodeId>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
  arrival[origin] = 0.0;
  pq.emplace(0.0, origin);
  while (!pq.empty()) {
    const auto [t, u] = pq.top();
    pq.pop();
    if (t > arrival[u]) continue;
    for (topo::LinkId lid : topo.node(u).out_links) {
      const topo::Link& l = topo.link(lid);
      if (!l.up) continue;
      const double nt = t + hop_cost[lid];
      if (nt < arrival[l.dst]) {
        arrival[l.dst] = nt;
        pq.emplace(nt, l.dst);
      }
    }
  }
  return arrival;
}

std::vector<topo::LinkId> pick_failure_fibers(const topo::Topology& topo,
                                              std::size_t count,
                                              std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<topo::LinkId> fibers;
  for (const topo::Link& l : topo.links()) {
    if (l.reverse != topo::kInvalidLink && l.id < l.reverse)
      fibers.push_back(l.id);
  }
  rng.shuffle(fibers);

  // Keep only fibers whose loss preserves connectivity.
  topo::Topology scratch = topo;
  std::vector<topo::LinkId> out;
  for (topo::LinkId f : fibers) {
    if (out.size() >= count) break;
    scratch.set_duplex_up(f, false);
    if (topo::is_strongly_connected(scratch)) out.push_back(f);
    scratch.set_duplex_up(f, true);
  }
  // Cycle if the caller wants more events than distinct safe fibers.
  const std::size_t distinct = out.size();
  while (distinct > 0 && out.size() < count)
    out.push_back(out[out.size() % distinct]);
  return out;
}

ComponentDistributions measure_dsdn_convergence(
    const topo::Topology& topo, const DsdnConvergenceConfig& config) {
  DSDN_TRACE_SPAN("sim.dsdn_convergence");
  util::Rng rng(config.seed);
  ComponentDistributions out;
  const auto fibers = pick_failure_fibers(topo, config.n_events,
                                          util::splitmix64(config.seed));
  topo::Topology scratch = topo;
  for (topo::LinkId fiber : fibers) {
    scratch.set_duplex_up(fiber, false);
    // Both fiber endpoints originate NSUs; each router converges at its
    // earliest arrival from either.
    const topo::NodeId a = scratch.link(fiber).src;
    const topo::NodeId b = scratch.link(fiber).dst;
    const auto from_a =
        nsu_arrival_times(scratch, a, config.calib, config.flood, rng);
    const auto from_b =
        nsu_arrival_times(scratch, b, config.calib, config.flood, rng);

    double event_total = 0.0;
    for (topo::NodeId i = 0; i < scratch.num_nodes(); ++i) {
      const double tprop = std::min(from_a[i], from_b[i]);
      if (!std::isfinite(tprop)) continue;  // disconnected (shouldn't happen)
      const double tcomp =
          config.measured_tcomp.empty()
              ? metrics::sample_dsdn_tcomp(config.calib, rng)
              : config.measured_tcomp.sample(rng);
      const double tprog = sample_tprog_with_retries(config, rng);
      out.tprop.add(tprop);
      out.tcomp.add(tcomp);
      out.tprog.add(tprog);
      event_total = std::max(event_total, tprop + tcomp + tprog);
    }
    out.total.add(event_total);
    scratch.set_duplex_up(fiber, true);
  }
  return out;
}

IncrementalTcompResult measure_incremental_tcomp(
    const topo::Topology& topo, const traffic::TrafficMatrix& tm,
    const IncrementalTcompConfig& config) {
  DSDN_TRACE_SPAN("sim.incremental_tcomp");
  using Clock = std::chrono::steady_clock;
  const auto elapsed = [](Clock::time_point start) {
    return std::chrono::duration<double>(Clock::now() - start).count();
  };

  IncrementalTcompResult out;
  te::IncrementalOptions io;
  io.solver = config.solver_options;
  io.full_solve_threshold = config.full_solve_threshold;
  io.diff_check = config.diff_check;
  te::IncrementalSolver warm(io);
  te::Solver scratch(config.solver_options);

  topo::Topology view = topo;
  // Converged pre-failure baseline (full solve; not measured).
  te::ViewDelta cold;
  warm.solve(view, tm, cold, nullptr);

  const auto fibers = pick_failure_fibers(topo, config.n_events,
                                          util::splitmix64(config.seed));
  for (topo::LinkId fiber : fibers) {
    view.set_duplex_up(fiber, false);
    te::ViewDelta delta;
    delta.full = false;
    delta.changed_links = {fiber, view.link(fiber).reverse};

    te::IncrementalStats istats;
    auto t0 = Clock::now();
    warm.solve(view, tm, delta, &istats);
    out.incremental_s.add(elapsed(t0));
    out.reuse_fraction.add(istats.reuse_fraction);
    if (istats.fallback) ++out.fallbacks;
    out.checker_violations += istats.checker_violations;

    t0 = Clock::now();
    scratch.solve(view, tm);
    out.full_s.add(elapsed(t0));

    // Repair and re-warm (not measured) so the next event starts from a
    // converged no-failure solution again.
    view.set_duplex_up(fiber, true);
    warm.solve(view, tm, delta, nullptr);
  }
  return out;
}

ComponentDistributions measure_csdn_convergence(
    const topo::Topology& topo, const traffic::TrafficMatrix& tm,
    const CsdnConvergenceConfig& config) {
  DSDN_TRACE_SPAN("sim.csdn_convergence");
  ComponentDistributions out;
  topo::Topology scratch = topo;
  csdn::CsdnController controller(&scratch, config.calib,
                                  config.solver_options, config.seed);
  if (!config.measured_tcomp.empty()) {
    controller.set_measured_tcomp(config.measured_tcomp);
  }
  const auto fibers = pick_failure_fibers(topo, config.n_events,
                                          util::splitmix64(config.seed ^ 1));
  const te::Solution baseline = controller.solve(tm);

  for (topo::LinkId fiber : fibers) {
    scratch.set_duplex_up(fiber, false);
    const te::Solution after = controller.solve(tm);
    const auto changed = csdn::changed_demands(baseline, after);
    const auto timing = controller.time_reconvergence(0.0, after, changed);

    out.tprop.add(timing.t_learned);
    out.tcomp.add(timing.t_computed - timing.t_learned);
    // Tprog per §4: the time to install computed paths at *all* routers
    // -- gated by the slowest path's two-phase programming.
    if (!timing.demand_switch.empty()) {
      out.tprog.add(timing.t_converged - timing.t_computed);
    }
    out.total.add(timing.t_converged);
    scratch.set_duplex_up(fiber, true);
  }
  return out;
}

}  // namespace dsdn::sim
