#include "sim/online.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "sim/flow_eval.hpp"
#include "te/solver.hpp"
#include "util/rng.hpp"

namespace dsdn::sim {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return util::splitmix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) h = mix(h, c);
  return mix(h, s.size());
}

std::size_t fleet_recomputes(const DsdnEmulation& emu) {
  std::size_t total = 0;
  for (topo::NodeId n = 0; n < emu.network().num_nodes(); ++n) {
    total += emu.controller(n).recomputes();
  }
  return total;
}

}  // namespace

std::uint64_t OnlineTeResult::fingerprint() const {
  std::uint64_t h = 0x0E11'31E0'07'BADULL;
  h = mix(h, epochs);
  h = mix(h, churn_applied);
  h = mix(h, recomputes);
  h = mix(h, std::bit_cast<std::uint64_t>(achieved_gbps_sum));
  h = mix(h, std::bit_cast<std::uint64_t>(omniscient_gbps_sum));
  h = mix(h, std::bit_cast<std::uint64_t>(regret_fraction));
  h = mix(h, std::bit_cast<std::uint64_t>(max_epoch_regret));
  h = mix(h, bad_epochs);
  h = mix(h, std::bit_cast<std::uint64_t>(bad_seconds));
  h = mix(h, invariant_checks);
  h = mix(h, nsu_messages);
  for (const std::string& v : violations) h = mix_string(h, v);
  return h;
}

OnlineTeResult run_online_te(const topo::Topology& topo,
                             const traffic::TrafficMatrix& base_tm,
                             const OnlineTeOptions& options,
                             std::uint64_t seed) {
  if (options.epochs == 0)
    throw std::invalid_argument("run_online_te: zero epochs");

  // The dynamics horizon must cover the run (flash events beyond it
  // simply never fire).
  traffic::DemandDynamicsOptions dyn_opt = options.dynamics;
  dyn_opt.horizon_epochs = std::max<std::uint32_t>(
      dyn_opt.horizon_epochs, static_cast<std::uint32_t>(options.epochs));
  const traffic::DemandDynamics dynamics(base_tm, dyn_opt,
                                         util::splitmix64(seed ^ 0xD71AULL));

  EmulationConfig cfg;
  cfg.solver_options = options.solver;
  cfg.incremental_te = options.incremental_te;
  cfg.recompute_policy = options.policy;
  DsdnEmulation emu(topo, dynamics.matrix_at(0), cfg);
  emu.enable_in_band_measurement(options.estimator);
  emu.bootstrap();

  // Concurrent link churn: reuse the PR 5 schedule generator (same
  // runtime guards via apply_scenario_event), then pin each event to a
  // seeded epoch. Demand-affecting kinds are disabled -- demand motion
  // is the dynamics' job here.
  std::vector<ScenarioEvent> churn;
  std::vector<std::uint64_t> churn_epochs;
  if (options.churn_events > 0 && options.epochs >= 2) {
    ScenarioOptions so;
    so.n_events = options.churn_events;
    so.w_surge = 0.0;
    so.w_toggle = 0.0;
    so.w_crash = 0.0;
    so.w_cold_restart = 0.0;
    so.solver = options.solver;
    so.incremental_te = options.incremental_te;
    const Scenario generator(topo, base_tm, so, seed);
    churn = generator.schedule();
    util::Rng er(util::splitmix64(seed ^ 0xC4'4E'11ULL));
    for (std::size_t i = 0; i < churn.size(); ++i) {
      churn_epochs.push_back(static_cast<std::uint64_t>(
          er.uniform_int(1, static_cast<std::int64_t>(options.epochs) - 1)));
    }
    std::sort(churn_epochs.begin(), churn_epochs.end());
  }

  InvariantOptions inv = options.invariants;
  inv.parity_against_solved_demands = true;

  const te::Solver omniscient(options.solver);
  OnlineTeResult r;
  std::size_t next_churn = 0;

  for (std::uint64_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Ground truth moves first; controllers cannot see it directly.
    traffic::TrafficMatrix oracle = dynamics.matrix_at(epoch);
    emu.set_oracle_demands(oracle);

    // Topology churn scheduled at this epoch (recomputes unconditionally,
    // exactly like production reacting to a link event).
    while (next_churn < churn.size() && churn_epochs[next_churn] == epoch) {
      if (apply_scenario_event(emu, churn[next_churn])) ++r.churn_applied;
      ++next_churn;
    }

    // The measurement loop: routers observe what they actually carry,
    // roll estimators, re-advertise material changes, and let their
    // recompute policy decide whether TE runs.
    emu.observe_traffic(oracle);
    emu.measurement_epoch();

    // Score against the omniscient same-tick cold solve of the truth.
    const InstalledRouting routing =
        InstalledRouting::from_dataplane(oracle, emu, &emu.network());
    const LossReport loss = evaluate_loss(emu.network(), oracle, routing);
    double achieved = 0.0;
    const auto& rows = oracle.demands();
    for (std::size_t i = 0; i < rows.size(); ++i) {
      achieved += rows[i].rate_gbps * (1.0 - loss.loss[i]);
    }
    const double omni =
        omniscient.solve(emu.network(), oracle).total_allocated_gbps();
    r.achieved_gbps_sum += achieved;
    r.omniscient_gbps_sum += omni;
    if (omni > 0.0) {
      const double epoch_regret = std::max(0.0, 1.0 - achieved / omni);
      r.max_epoch_regret = std::max(r.max_epoch_regret, epoch_regret);
      if (epoch_regret > options.bad_loss_fraction) {
        ++r.bad_epochs;
        r.bad_seconds += options.epoch_s;
      }
    }

    if (epoch % options.check_every == 0 || epoch + 1 == options.epochs) {
      const InvariantReport rep = check_invariants(emu, inv);
      r.invariant_checks += rep.checks_run;
      if (!rep.ok()) {
        for (const auto& v : rep.violations) {
          r.violations.push_back("epoch " + std::to_string(epoch) + ": " + v);
        }
        r.epochs = epoch + 1;
        break;
      }
    }
    r.epochs = epoch + 1;
  }

  r.recomputes = fleet_recomputes(emu);
  if (r.omniscient_gbps_sum > 0.0) {
    r.regret_fraction =
        std::max(0.0, 1.0 - r.achieved_gbps_sum / r.omniscient_gbps_sum);
  }
  r.nsu_messages = emu.messages_delivered();
  return r;
}

}  // namespace dsdn::sim
