#pragma once

// Transient-impact simulator (§5.2): replays a failure/repair event
// stream against cSDN, dSDN, or an omniscient instantly-converging
// baseline, tracking each demand's *installed* (possibly stale) routing
// over time, evaluating flow loss piecewise-constantly between routing
// changes, and integrating per-class blast radius into bad seconds.
//
// Scheme timing:
//   kOmniscient -- new paths install at the instant of the event; any
//                  residual loss is pure capacity shortfall.
//   kCsdn       -- event -> Tprop (CPN) -> central Tcomp -> per-demand
//                  two-phase programming switch times.
//   kDsdn       -- NSUs flood hop-by-hop; each headend switches its own
//                  demands at Tprop(i) + Tcomp(i) + Tprog(i).
//
// Under churn (Fig 11) events overlap; bad seconds accrued in an
// interval are attributed to the most recent failure/repair event.

#include <memory>
#include <unordered_map>

#include "csdn/controller.hpp"
#include "dataplane/frr.hpp"
#include "sim/convergence.hpp"
#include "sim/failure.hpp"
#include "sim/flow_eval.hpp"
#include "te/solver.hpp"

namespace dsdn::sim {

enum class Scheme { kOmniscient, kCsdn, kDsdn };

const char* scheme_name(Scheme s);

// Memoizes full-network TE solutions keyed by the topology's link-state
// bitmap: failure/repair cycles revisit the same states constantly, and
// all schemes share one provider within an experiment.
class SolutionProvider {
 public:
  SolutionProvider(const traffic::TrafficMatrix* tm,
                   te::SolverOptions options)
      : tm_(tm), solver_(options) {}

  const te::Solution& get(const topo::Topology& state);

  std::size_t solves() const { return solves_; }
  std::size_t hits() const { return hits_; }

 private:
  const traffic::TrafficMatrix* tm_;
  te::Solver solver_;
  std::unordered_map<std::uint64_t, te::Solution> cache_;
  std::size_t solves_ = 0;
  std::size_t hits_ = 0;
};

struct TransientConfig {
  Scheme scheme = Scheme::kDsdn;
  FailureParams failures;
  metrics::CsdnCalibration csdn_calib;
  metrics::DsdnCalibration dsdn_calib;
  // Flood loss injected on every dSDN NSU hop (loss_prob 0 = off); lost
  // transfers pay bounded retransmit backoff (Fig 10 under lossy flood).
  LossyFloodModel flood;
  te::SolverOptions solver_options;
  // Pre-installed bypass paths (Appendix D). Recomputed per topology
  // state when enabled.
  bool use_bypasses = false;
  dataplane::BypassStrategy bypass_strategy =
      dataplane::BypassStrategy::kKCapacityAware;
  // Switch-time quantization: at most this many loss evaluations per
  // event (keeps 1000-day streams tractable; conservative rounding).
  std::size_t max_eval_points_per_event = 16;
  // Event whose per-interval blast radius should be recorded as a
  // timeline (Fig 12); SIZE_MAX disables.
  std::size_t timeline_event = SIZE_MAX;
  std::uint64_t seed = 33;
};

struct EventImpact {
  double time_s = 0.0;
  bool was_failure = false;
  double bad_seconds[metrics::kNumPriorityClasses] = {};
  double convergence_span_s = 0.0;
};

struct TransientResult {
  std::vector<EventImpact> events;
  // Per-interval blast radius (lowest class) around config.timeline_event.
  std::vector<metrics::BlastSample> timeline;

  metrics::EmpiricalDistribution bad_seconds_distribution(
      metrics::PriorityClass c, bool failures_only = true) const;
};

class TransientSimulator {
 public:
  // `provider` may be shared across simulators (schemes/configs) over the
  // same topology+matrix; pass nullptr to use a private one.
  TransientSimulator(const topo::Topology& topo,
                     const traffic::TrafficMatrix& tm, TransientConfig config,
                     SolutionProvider* provider = nullptr);

  TransientResult run();

 private:
  struct PendingSwitch {
    double time;
    std::size_t demand;
    const te::Allocation* target;
  };

  // Computes scheme-specific switch times for the changed demands.
  std::vector<PendingSwitch> schedule_switches(
      double t0, const topo::Topology& state, const te::Solution& target,
      const std::vector<char>& changed);

  const topo::Topology& topo_;
  const traffic::TrafficMatrix& tm_;
  TransientConfig config_;
  SolutionProvider own_provider_;
  SolutionProvider* provider_;
  std::unique_ptr<csdn::CsdnController> csdn_;
  topo::Topology scratch_;
  util::Rng rng_;
};

}  // namespace dsdn::sim
