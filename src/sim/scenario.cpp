#include "sim/scenario.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

#include "sim/packet_score.hpp"
#include "topo/builder.hpp"
#include "util/format.hpp"
#include "util/rng.hpp"

namespace dsdn::sim {
namespace {

std::uint64_t mix(std::uint64_t h, std::uint64_t v) {
  return util::splitmix64(h ^ (v + 0x9e3779b97f4a7c15ULL));
}

std::uint64_t mix_string(std::uint64_t h, const std::string& s) {
  for (unsigned char c : s) h = mix(h, c);
  return mix(h, s.size());
}

std::string join_fibers(const std::vector<topo::LinkId>& fibers) {
  std::string out = "{";
  for (std::size_t i = 0; i < fibers.size(); ++i) {
    if (i) out += ",";
    out += std::to_string(fibers[i]);
  }
  return out + "}";
}

// One LinkId per physical fiber: the lower-id direction of each duplex
// pair (events operate on whole fibers via set_duplex_up).
std::vector<topo::LinkId> fiber_reps(const topo::Topology& topo) {
  std::vector<topo::LinkId> reps;
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    const auto lid = static_cast<topo::LinkId>(l);
    const topo::Link& link = topo.link(lid);
    if (link.reverse == topo::kInvalidLink || lid < link.reverse)
      reps.push_back(lid);
  }
  return reps;
}

std::vector<topo::LinkId> reps_in_state(const topo::Topology& topo,
                                        const std::vector<topo::LinkId>& reps,
                                        bool up) {
  std::vector<topo::LinkId> out;
  for (topo::LinkId lid : reps) {
    if (topo.link(lid).up == up) out.push_back(lid);
  }
  return out;
}

// Cuts `lid` on the scratch topology iff the network stays strongly
// connected without it; reports whether the cut was taken.
bool try_cut(topo::Topology& scratch, topo::LinkId lid) {
  scratch.set_duplex_up(lid, false);
  if (topo::is_strongly_connected(scratch)) return true;
  scratch.set_duplex_up(lid, true);
  return false;
}

}  // namespace

std::string ScenarioEvent::to_string() const {
  switch (kind) {
    case ScenarioEventKind::kFiberCut:
      return "fiber-cut " + join_fibers(fibers);
    case ScenarioEventKind::kFiberRepair:
      return "fiber-repair " + join_fibers(fibers);
    case ScenarioEventKind::kFiberFlap:
      return "fiber-flap " + join_fibers(fibers);
    case ScenarioEventKind::kSrlgCut:
      return "srlg-cut " + join_fibers(fibers);
    case ScenarioEventKind::kNodeCrashRecover:
      return "crash+recover node " + std::to_string(node);
    case ScenarioEventKind::kNodeColdRestart:
      return "cold-restart node " + std::to_string(node);
    case ScenarioEventKind::kDemandSurge:
      return "demand-surge node " + std::to_string(node) + " x" +
             util::format_double(factor, 2);
    case ScenarioEventKind::kToggleIncrementalTe:
      return std::string("incremental-te ") + (enable ? "on" : "off");
  }
  return "unknown-event";
}

std::uint64_t ScenarioResult::fingerprint() const {
  std::uint64_t h = 0x5CE9A210C0FFEEULL;
  h = mix(h, final_digest);
  h = mix(h, messages);
  h = mix(h, events_applied);
  h = mix(h, events_skipped);
  h = mix(h, invariant_checks);
  h = mix(h, packets_scored);
  h = mix(h, std::bit_cast<std::uint64_t>(max_loss));
  h = mix(h, std::bit_cast<std::uint64_t>(sim_time_s));
  h = mix(h, static_cast<std::uint64_t>(
                 static_cast<std::int64_t>(first_violation_event)));
  for (const std::string& v : violations) h = mix_string(h, v);
  return h;
}

Scenario::Scenario(topo::Topology topo, traffic::TrafficMatrix tm,
                   ScenarioOptions options, std::uint64_t seed)
    : topo_(std::move(topo)),
      tm_(std::move(tm)),
      options_(std::move(options)),
      seed_(seed) {
  if (!topo::is_strongly_connected(topo_)) {
    throw std::invalid_argument(
        "Scenario: topology must start strongly connected");
  }
  generate_schedule();
}

void Scenario::generate_schedule() {
  // Decorrelated from the FaultyBus stream (which hashes the same seed
  // with a different salt in run_masked).
  util::Rng rng(util::splitmix64(seed_ ^ 0x5C4ED01EULL));

  // Scratch liveness model: the generator tracks which fibers its own
  // events have taken down so later picks stay plausible. Runtime guards
  // in apply_event() re-check against the real emulation (a masked
  // replay can diverge from this model), so this is best-effort only.
  topo::Topology scratch = topo_;
  const std::vector<topo::LinkId> reps = fiber_reps(topo_);

  // Surge targets: origins that actually have demand rows.
  std::vector<topo::NodeId> surge_origins;
  {
    std::vector<char> has(topo_.num_nodes(), 0);
    for (const traffic::Demand& d : tm_.demands()) {
      if (d.rate_gbps > 0) has[d.src] = 1;
    }
    for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
      if (has[n]) surge_origins.push_back(n);
    }
  }

  bool incremental_on = options_.incremental_te;
  constexpr std::size_t kPickAttempts = 8;

  using K = ScenarioEventKind;
  const K kinds[] = {K::kFiberCut,          K::kFiberRepair,
                     K::kFiberFlap,         K::kSrlgCut,
                     K::kNodeCrashRecover,  K::kNodeColdRestart,
                     K::kDemandSurge,       K::kToggleIncrementalTe};

  schedule_.clear();
  schedule_.reserve(options_.n_events);
  while (schedule_.size() < options_.n_events) {
    const std::vector<topo::LinkId> up = reps_in_state(scratch, reps, true);
    const std::vector<topo::LinkId> down = reps_in_state(scratch, reps, false);

    double weights[] = {up.empty() ? 0.0 : options_.w_cut,
                        down.empty() ? 0.0 : options_.w_repair,
                        up.empty() ? 0.0 : options_.w_flap,
                        up.empty() ? 0.0 : options_.w_srlg,
                        topo_.num_nodes() < 2 ? 0.0 : options_.w_crash,
                        topo_.num_nodes() < 2 ? 0.0 : options_.w_cold_restart,
                        surge_origins.empty() ? 0.0 : options_.w_surge,
                        options_.w_toggle};
    double total = 0.0;
    for (double w : weights) total += w;
    if (total <= 0.0) break;  // nothing left to schedule

    ScenarioEvent ev;
    ev.kind = kinds[rng.weighted_pick(weights)];
    bool generated = false;
    switch (ev.kind) {
      case K::kFiberCut: {
        for (std::size_t a = 0; a < kPickAttempts && !generated; ++a) {
          const topo::LinkId lid = rng.pick(up);
          if (scratch.link(lid).up && try_cut(scratch, lid)) {
            ev.fibers = {lid};
            generated = true;
          }
        }
        break;
      }
      case K::kSrlgCut: {
        std::vector<topo::LinkId> members;
        for (std::size_t a = 0;
             a < kPickAttempts * options_.srlg_size &&
             members.size() < options_.srlg_size;
             ++a) {
          const topo::LinkId lid = rng.pick(up);
          if (scratch.link(lid).up && try_cut(scratch, lid))
            members.push_back(lid);
        }
        if (!members.empty()) {
          std::sort(members.begin(), members.end());
          ev.fibers = std::move(members);
          generated = true;
        }
        break;
      }
      case K::kFiberRepair: {
        const topo::LinkId lid = rng.pick(down);
        scratch.set_duplex_up(lid, true);
        ev.fibers = {lid};
        generated = true;
        break;
      }
      case K::kFiberFlap: {
        ev.fibers = {rng.pick(up)};  // down + up: no net scratch change
        generated = true;
        break;
      }
      case K::kNodeCrashRecover:
      case K::kNodeColdRestart: {
        for (std::size_t a = 0; a < kPickAttempts && !generated; ++a) {
          const auto n = static_cast<topo::NodeId>(rng.uniform_int(
              0, static_cast<std::int64_t>(topo_.num_nodes()) - 1));
          if (!scratch.up_neighbors(n).empty()) {
            ev.node = n;
            generated = true;
          }
        }
        break;
      }
      case K::kDemandSurge: {
        ev.node = rng.pick(surge_origins);
        const double span = std::max(options_.surge_span, 1.0 + 1e-9);
        ev.factor = std::exp(rng.uniform(-std::log(span), std::log(span)));
        generated = true;
        break;
      }
      case K::kToggleIncrementalTe: {
        incremental_on = !incremental_on;
        ev.enable = incremental_on;
        generated = true;
        break;
      }
    }
    if (!generated) {
      // Candidate hunt came up dry (e.g. every remaining fiber is a
      // bridge): fall back to an always-applicable event so the schedule
      // keeps its length.
      if (!surge_origins.empty()) {
        ev = ScenarioEvent{};
        ev.kind = K::kDemandSurge;
        ev.node = rng.pick(surge_origins);
        const double span = std::max(options_.surge_span, 1.0 + 1e-9);
        ev.factor = std::exp(rng.uniform(-std::log(span), std::log(span)));
      } else {
        ev = ScenarioEvent{};
        ev.kind = K::kToggleIncrementalTe;
        incremental_on = !incremental_on;
        ev.enable = incremental_on;
      }
    }
    schedule_.push_back(std::move(ev));
  }
}

bool apply_scenario_event(DsdnEmulation& emu, const ScenarioEvent& ev) {
  const topo::Topology& net = emu.network();
  bool applied = false;
  switch (ev.kind) {
    case ScenarioEventKind::kFiberCut: {
      const topo::LinkId lid = ev.fibers.front();
      if (net.link(lid).up) {
        topo::Topology scratch = net;
        if (try_cut(scratch, lid)) {
          emu.fail_fiber(lid);
          applied = true;
        }
      }
      break;
    }
    case ScenarioEventKind::kSrlgCut: {
      // Re-filter the member list against the live network: masked
      // replays may have left some members already down or turned them
      // into bridges.
      topo::Topology scratch = net;
      std::vector<topo::LinkId> members;
      for (topo::LinkId lid : ev.fibers) {
        if (scratch.link(lid).up && try_cut(scratch, lid))
          members.push_back(lid);
      }
      if (!members.empty()) {
        emu.fail_fibers(members);
        applied = true;
      }
      break;
    }
    case ScenarioEventKind::kFiberRepair: {
      const topo::LinkId lid = ev.fibers.front();
      if (!net.link(lid).up) {
        emu.repair_fiber(lid);
        applied = true;
      }
      break;
    }
    case ScenarioEventKind::kFiberFlap: {
      const topo::LinkId lid = ev.fibers.front();
      if (net.link(lid).up) {
        emu.flap_fiber(lid);
        applied = true;
      }
      break;
    }
    case ScenarioEventKind::kNodeCrashRecover:
    case ScenarioEventKind::kNodeColdRestart: {
      if (ev.node < net.num_nodes() && !net.up_neighbors(ev.node).empty()) {
        if (ev.kind == ScenarioEventKind::kNodeCrashRecover) {
          emu.crash_and_recover(ev.node);
        } else {
          emu.crash_and_cold_restart(ev.node);
        }
        applied = true;
      }
      break;
    }
    case ScenarioEventKind::kDemandSurge: {
      emu.scale_demands(ev.factor, ev.node);
      applied = true;
      break;
    }
    case ScenarioEventKind::kToggleIncrementalTe: {
      emu.set_incremental_te(ev.enable);
      applied = true;
      break;
    }
  }
  return applied;
}

bool Scenario::apply_event(DsdnEmulation& emu, const ScenarioEvent& ev) const {
  const topo::Topology& net = emu.network();
  const bool fiber_down_event = ev.kind == ScenarioEventKind::kFiberCut ||
                                ev.kind == ScenarioEventKind::kSrlgCut;
  // kSkipReprogramOnCut: capture the victim's encap FIB before a
  // fiber-down event and silently restore it afterwards -- the router
  // "forgot" to reprogram, leaving stale routes over the dead fiber.
  std::optional<dataplane::IngressFib> pre_bug_fib;
  if (options_.bug == ScenarioBug::kSkipReprogramOnCut && fiber_down_event &&
      options_.bug_node < net.num_nodes()) {
    pre_bug_fib = emu.at(options_.bug_node).ingress;
  }

  const bool applied = apply_scenario_event(emu, ev);

  if (applied && pre_bug_fib) {
    emu.mutable_controller(options_.bug_node).mutable_dataplane().ingress =
        std::move(*pre_bug_fib);
  }
  return applied;
}

ScenarioResult Scenario::run() const {
  return run_masked(std::vector<char>(schedule_.size(), 1));
}

ScenarioResult Scenario::run_masked(const std::vector<char>& keep) const {
  if (keep.size() != schedule_.size()) {
    throw std::invalid_argument("run_masked: mask/schedule length mismatch");
  }
  EmulationConfig cfg;
  cfg.solver_options = options_.solver;
  cfg.incremental_te = options_.incremental_te;
  cfg.te_diff_check = false;  // the invariant suite runs its own diffs
  cfg.algorithms = options_.algorithms;
  DsdnEmulation emu(topo_, tm_, cfg);
  if (options_.lossy_flooding) {
    emu.enable_fault_injection(options_.fault_profile,
                               util::splitmix64(seed_ ^ 0xFA017B05ULL));
  }
  if (options_.packet_scoring) emu.enable_fib_snapshots(1);

  ScenarioResult r;
  emu.bootstrap();
  const auto check = [&](int idx, const std::string& what) {
    const InvariantReport rep = check_invariants(emu, options_.invariants);
    r.invariant_checks += rep.checks_run;
    r.max_loss = std::max(r.max_loss, rep.max_demand_loss);
    if (!rep.ok()) {
      r.first_violation_event = idx;
      for (const std::string& v : rep.violations) {
        r.violations.push_back(what + v);
      }
      return false;
    }
    if (options_.packet_scoring) {
      PacketScoreOptions po;
      po.packets = options_.packets_per_check;
      // Deterministic per check point, decorrelated across events.
      po.seed = util::splitmix64(
          seed_ ^ (static_cast<std::uint64_t>(idx + 2) * 0xD0A7A5C0DEULL));
      const PacketScoreReport score = score_packets(emu, po);
      r.packets_scored += score.packets;
      if (!score.ok()) {
        r.first_violation_event = idx;
        for (const std::string& v : score.violations) {
          r.violations.push_back(what + "packet-score: " + v);
        }
        return false;
      }
    }
    return true;
  };

  if (check(-1, "bootstrap: ")) {
    for (std::size_t i = 0; i < schedule_.size(); ++i) {
      if (!keep[i]) continue;
      if (!apply_event(emu, schedule_[i])) {
        ++r.events_skipped;
        continue;
      }
      ++r.events_applied;
      if (!check(static_cast<int>(i),
                 "after event #" + std::to_string(i) + " (" +
                     schedule_[i].to_string() + "): ")) {
        break;
      }
    }
  }

  r.final_digest = emu.controller(0).state().digest();
  r.messages = emu.messages_delivered();
  r.sim_time_s = emu.sim_time();
  return r;
}

std::vector<char> Scenario::shrink() const {
  const ScenarioResult full = run();
  if (full.ok()) return {};

  std::vector<char> keep(schedule_.size(), 1);
  const auto truncate_past = [&](int first_violation) {
    if (first_violation < 0) {
      std::fill(keep.begin(), keep.end(), 0);  // bootstrap alone fails
      return;
    }
    for (std::size_t i = static_cast<std::size_t>(first_violation) + 1;
         i < keep.size(); ++i) {
      keep[i] = 0;
    }
  };
  truncate_past(full.first_violation_event);

  const auto kept_indices = [&] {
    std::vector<std::size_t> out;
    for (std::size_t i = 0; i < keep.size(); ++i) {
      if (keep[i]) out.push_back(i);
    }
    return out;
  };

  // Greedy event bisection: try dropping chunks of kept events, halving
  // the chunk size until single events; every successful drop re-runs
  // the truncation (the failure may now fire earlier). Each success
  // strictly shrinks the kept set, so this terminates.
  std::size_t chunk = std::max<std::size_t>(kept_indices().size() / 2, 1);
  while (true) {
    bool removed = false;
    std::vector<std::size_t> kept = kept_indices();
    std::size_t start = 0;
    while (start < kept.size()) {
      std::vector<char> trial = keep;
      const std::size_t end = std::min(start + chunk, kept.size());
      for (std::size_t j = start; j < end; ++j) trial[kept[j]] = 0;
      const ScenarioResult res = run_masked(trial);
      if (!res.ok()) {
        keep = std::move(trial);
        truncate_past(res.first_violation_event);
        kept = kept_indices();
        removed = true;
        // Do not advance: position `start` now holds different events.
      } else {
        start += chunk;
      }
    }
    if (!removed && chunk == 1) break;
    chunk = std::max<std::size_t>(1, chunk / 2);
  }
  return keep;
}

std::string Scenario::describe(const std::vector<char>& keep) const {
  std::string out;
  for (std::size_t i = 0; i < schedule_.size() && i < keep.size(); ++i) {
    if (!keep[i]) continue;
    out += "  [" + std::to_string(i) + "] " + schedule_[i].to_string() + "\n";
  }
  if (out.empty()) out = "  (no events: the bootstrap state violates)\n";
  return out;
}

obs::RunArtifact Scenario::artifact(const ScenarioResult& result,
                                    const std::string& name) const {
  obs::RunArtifact a(name);
  a.param("seed", static_cast<std::uint64_t>(seed_));
  a.param("nodes", static_cast<std::uint64_t>(topo_.num_nodes()));
  a.param("links", static_cast<std::uint64_t>(topo_.num_links()));
  a.param("demands", static_cast<std::uint64_t>(tm_.size()));
  a.param("events", static_cast<std::uint64_t>(schedule_.size()));
  a.param("lossy_flooding", options_.lossy_flooding);
  a.param("incremental_te", options_.incremental_te);
  a.metric("events_applied", static_cast<double>(result.events_applied));
  a.metric("violations", static_cast<double>(result.violations.size()));
  a.metric("packets_scored", static_cast<double>(result.packets_scored));
  a.metric("max_loss_window", result.max_loss);
  a.metric("sim_time_s", result.sim_time_s);

  obs::Registry reg;
  reg.counter("scenario.events_applied").add(result.events_applied);
  reg.counter("scenario.events_skipped").add(result.events_skipped);
  reg.counter("scenario.invariant_checks").add(result.invariant_checks);
  reg.counter("scenario.violations").add(result.violations.size());
  reg.gauge("scenario.max_loss_window").set(result.max_loss);
  reg.gauge("scenario.messages").set(static_cast<double>(result.messages));
  a.attach_registry(reg.snapshot());
  return a;
}

std::optional<SwarmFailure> run_seed_swarm(const topo::Topology& topo,
                                           const traffic::TrafficMatrix& tm,
                                           const ScenarioOptions& options,
                                           std::uint64_t first_seed,
                                           std::size_t n_seeds) {
  for (std::uint64_t s = first_seed; s < first_seed + n_seeds; ++s) {
    const Scenario scenario(topo, tm, options, s);
    ScenarioResult res = scenario.run();
    if (res.ok()) continue;

    SwarmFailure f;
    f.seed = s;
    f.minimal_mask = scenario.shrink();
    const std::size_t kept = static_cast<std::size_t>(
        std::count(f.minimal_mask.begin(), f.minimal_mask.end(), 1));
    f.reproducer = "seed " + std::to_string(s) +
                   " fails; minimal reproducer (" + std::to_string(kept) +
                   " of " + std::to_string(scenario.schedule().size()) +
                   " events):\n" + scenario.describe(f.minimal_mask);
    for (const std::string& v :
         scenario.run_masked(f.minimal_mask).violations) {
      f.reproducer += "  ! " + v + "\n";
    }
    f.result = std::move(res);
    return f;
  }
  return std::nullopt;
}

}  // namespace dsdn::sim
