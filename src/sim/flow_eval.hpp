#pragma once

// Flow-level loss evaluation: given each demand's currently *installed*
// routing (which may be stale relative to the live topology), compute
// per-demand loss fractions, per-class blast radius (Eq 1), and the data
// for bad-seconds integration (Eq 2).
//
// Model (matching the paper's flow-granularity simulator):
//  - Traffic on a weighted path that crosses a *down* link is either
//    spliced onto a pre-installed FRR bypass (adding its load there) or
//    dropped entirely.
//  - Each link grants capacity to offered load in strict priority order;
//    the over-subscribed remainder of each class is dropped
//    proportionally.
//  - A demand's loss is the max over its links of its class's drop
//    fraction there, averaged across its weighted paths.

#include <optional>

#include "dataplane/forwarder.hpp"
#include "dataplane/frr.hpp"
#include "metrics/slo.hpp"
#include "te/types.hpp"
#include "traffic/flow_group.hpp"

namespace dsdn::sim {

// Installed routing state: one row per demand (same order as the
// TrafficMatrix). A row's weights may sum below 1 when only part of the
// demand's route set is installed (programming skipped too-deep or
// gate-exhausted routes); evaluate_loss charges the missing weight as
// loss *proportionally* -- only a demand with no installed route at all
// is scored as fully blackholed.
struct InstalledRouting {
  std::vector<std::vector<te::WeightedPath>> rows;

  static InstalledRouting from_solution(const te::Solution& solution);

  // What the network has *actually* programmed: decodes each demand's
  // headend encap routes (stage-2 FIB) back into paths. Unlike
  // from_solution, this sees partial installs, stale routes left over a
  // dead link, and missing entries -- which is exactly what the scenario
  // invariant checkers need to audit.
  //
  // Segment-routed entries (node-segment stacks) are expanded through
  // the routers' installed SrFibs into concrete weighted underlay paths
  // (uniform per-hop ECMP split); this needs link liveness, so pass
  // `topo`. Without it SR routes are skipped (their weight is charged as
  // loss, like any uninstalled route). A transit whose members toward
  // the segment target are all down contributes a branch ending on the
  // dead link, which the structural evaluator scores as dropped --
  // mirroring the forwarder's link-down drop.
  static InstalledRouting from_dataplane(
      const traffic::TrafficMatrix& tm,
      const dataplane::DataplaneProvider& dataplanes,
      const topo::Topology* topo = nullptr);
};

struct LossReport {
  // Loss fraction in [0,1] per demand.
  std::vector<double> loss;
  // Per-link utilization (offered / capacity) for diagnostics.
  std::vector<double> utilization;
};

struct LossOptions {
  // Strict-priority link scheduling (the steady-state QoS model). Set to
  // false for FRR-window analysis (Appendix C): transient bypass
  // congestion overflows shallow hardware queues before scheduler
  // protection engages, so drops hit all classes proportionally -- which
  // is how FRR congestion incidents impact high-priority traffic in
  // production despite QoS.
  bool strict_priority = true;
  // Spare-capacity view used by capacity-aware bypass *selection* (what a
  // dSDN router knows from NSU-advertised utilization). When null,
  // selection sees raw link capacities.
  const std::vector<double>* bypass_residual = nullptr;
  // When false, links grant every class in full: loss counts only
  // *structural* failures (no installed route, paths over down links
  // without a bypass, missing install weight). The invariant checkers use
  // this to separate programming bugs from legitimate strict-priority
  // starvation -- under oversubscription a scavenger-class demand can
  // lose everything on perfectly healthy, correctly programmed routes.
  bool congestion = true;
};

LossReport evaluate_loss(const topo::Topology& topo,
                         const traffic::TrafficMatrix& tm,
                         const InstalledRouting& routing,
                         const dataplane::BypassPlan* bypasses = nullptr,
                         const LossOptions& options = {});

// Blast radius (Eq 1) for one priority class: fraction of that class's
// flow groups violating their SLO, where a group violates when more than
// kGroupViolationFraction of its flow volume loses beyond the class
// threshold.
double blast_radius(const traffic::TrafficMatrix& tm,
                    const std::vector<traffic::FlowGroup>& class_groups,
                    const LossReport& report);

// Median end-to-end latency inflation across demands whose paths changed
// vs a reference routing (Table 2's latency column). Demands with no
// live path are skipped.
double median_latency_inflation(const topo::Topology& topo,
                                const traffic::TrafficMatrix& tm,
                                const InstalledRouting& reference,
                                const InstalledRouting& current,
                                const dataplane::BypassPlan* bypasses,
                                const std::vector<double>* bypass_residual
                                = nullptr);

}  // namespace dsdn::sim
