#include "sim/transient.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <map>
#include <queue>

#include "obs/trace.hpp"

namespace dsdn::sim {

const char* scheme_name(Scheme s) {
  switch (s) {
    case Scheme::kOmniscient: return "Omniscient";
    case Scheme::kCsdn: return "cSDN";
    case Scheme::kDsdn: return "dSDN";
  }
  return "?";
}

namespace {

std::uint64_t state_digest(const topo::Topology& topo) {
  std::uint64_t h = 0x9E3779B97F4A7C15ULL;
  for (const topo::Link& l : topo.links()) {
    if (!l.up) h = util::splitmix64(h ^ (l.id + 1));
  }
  return h;
}

}  // namespace

const te::Solution& SolutionProvider::get(const topo::Topology& state) {
  const std::uint64_t key = state_digest(state);
  const auto it = cache_.find(key);
  if (it != cache_.end()) {
    ++hits_;
    return it->second;
  }
  ++solves_;
  return cache_.emplace(key, solver_.solve(state, *tm_)).first->second;
}

metrics::EmpiricalDistribution TransientResult::bad_seconds_distribution(
    metrics::PriorityClass c, bool failures_only) const {
  metrics::EmpiricalDistribution d;
  for (const EventImpact& e : events) {
    if (failures_only && !e.was_failure) continue;
    d.add(e.bad_seconds[static_cast<int>(c)]);
  }
  return d;
}

TransientSimulator::TransientSimulator(const topo::Topology& topo,
                                       const traffic::TrafficMatrix& tm,
                                       TransientConfig config,
                                       SolutionProvider* provider)
    : topo_(topo),
      tm_(tm),
      config_(config),
      own_provider_(&tm_, config.solver_options),
      provider_(provider ? provider : &own_provider_),
      scratch_(topo),
      rng_(config.seed) {
  if (config_.scheme == Scheme::kCsdn) {
    csdn_ = std::make_unique<csdn::CsdnController>(
        &scratch_, config_.csdn_calib, config_.solver_options,
        util::splitmix64(config_.seed ^ 0xC5D0));
  }
}

std::vector<TransientSimulator::PendingSwitch>
TransientSimulator::schedule_switches(double t0, const topo::Topology& state,
                                      const te::Solution& target,
                                      const std::vector<char>& changed) {
  (void)state;  // dSDN scheduling needs the flood origins; handled in run()
  std::vector<PendingSwitch> out;
  switch (config_.scheme) {
    case Scheme::kOmniscient: {
      for (std::size_t i = 0; i < target.allocations.size(); ++i) {
        if (!changed[i]) continue;
        out.push_back(PendingSwitch{t0, i, &target.allocations[i]});
      }
      break;
    }
    case Scheme::kCsdn: {
      const auto timing = csdn_->time_reconvergence(t0, target, changed);
      for (const auto& [demand, when] : timing.demand_switch) {
        out.push_back(PendingSwitch{when, demand, &target.allocations[demand]});
      }
      break;
    }
    case Scheme::kDsdn: {
      // Per-headend convergence: Tprop from the flooding origins (we use
      // the earliest arrival over all routers adjacent to changed state;
      // here: every router is a potential origin of the event's NSUs, so
      // we flood from the routers whose links changed).
      // Identify origins: endpoints of links whose up-state differs
      // between the configured topology's current scratch and... the
      // caller passes `state` == live topology; origins are supplied via
      // the most recent event, tracked in origins_.
      break;
    }
  }
  return out;
}

TransientResult TransientSimulator::run() {
  DSDN_TRACE_SPAN("sim.transient_run");
  TransientResult result;
  const auto events = generate_failures(topo_, config_.failures);

  // Flow groups per class, fixed for the whole run.
  std::vector<std::vector<traffic::FlowGroup>> groups;
  groups.reserve(metrics::kNumPriorityClasses);
  for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
    groups.push_back(traffic::group_flows_of_class(
        topo_, tm_, static_cast<metrics::PriorityClass>(c)));
  }

  // Installed routing starts from the healthy-state solution.
  InstalledRouting installed =
      InstalledRouting::from_solution(provider_->get(scratch_));

  // Bypass plans per topology state (computed lazily), plus the spare
  // capacity under the target placement, which capacity-aware bypass
  // selection reads (what NSU utilization reporting gives a router).
  std::map<std::uint64_t, dataplane::BypassPlan> bypass_cache;
  const dataplane::BypassPlan* live_bypasses = nullptr;
  std::vector<double> live_residual;
  auto refresh_bypasses = [&](const te::Solution& target) {
    if (!config_.use_bypasses) return;
    live_residual = target.residual_capacity(scratch_);
    const std::uint64_t key = state_digest(scratch_);
    auto it = bypass_cache.find(key);
    if (it == bypass_cache.end()) {
      // Only down links ever exercise their bypass; computing just those
      // keeps 1,000-day streams tractable.
      std::vector<topo::LinkId> down;
      for (const topo::Link& l : scratch_.links()) {
        if (!l.up) down.push_back(l.id);
      }
      it = bypass_cache
               .emplace(key, dataplane::BypassPlan::compute_for_links(
                                 scratch_, config_.bypass_strategy, down,
                                 target.residual_capacity(scratch_)))
               .first;
    }
    live_bypasses = &it->second;
  };
  refresh_bypasses(provider_->get(scratch_));

  // Per-demand switch epoch: a newer event's schedule supersedes stale
  // pending switches for the same demand.
  std::vector<std::uint64_t> epoch(tm_.size(), 0);
  struct Queued {
    double time;
    std::size_t demand;
    const te::Allocation* target;
    std::uint64_t epoch;
    bool operator>(const Queued& o) const { return time > o.time; }
  };
  std::priority_queue<Queued, std::vector<Queued>, std::greater<>> pending;

  double now = 0.0;
  std::array<double, metrics::kNumPriorityClasses> blast{};
  auto evaluate_blast = [&]() {
    LossOptions opts;
    if (config_.use_bypasses && !live_residual.empty()) {
      opts.bypass_residual = &live_residual;
    }
    const LossReport report =
        evaluate_loss(scratch_, tm_, installed, live_bypasses, opts);
    for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
      blast[static_cast<std::size_t>(c)] =
          blast_radius(tm_, groups[static_cast<std::size_t>(c)], report);
    }
  };
  evaluate_blast();

  auto integrate_to = [&](double t) {
    if (result.events.empty() || t <= now) {
      now = std::max(now, t);
      return;
    }
    EventImpact& attr = result.events.back();
    for (int c = 0; c < metrics::kNumPriorityClasses; ++c) {
      attr.bad_seconds[c] += (t - now) * blast[static_cast<std::size_t>(c)];
    }
    if (result.events.size() - 1 == config_.timeline_event) {
      result.timeline.push_back(metrics::BlastSample{
          now - attr.time_s,
          blast[static_cast<std::size_t>(metrics::kNumPriorityClasses - 1)]});
    }
    now = t;
  };

  auto drain_until = [&](double horizon) {
    while (!pending.empty() && pending.top().time <= horizon) {
      const double t = pending.top().time;
      integrate_to(t);
      bool switched = false;
      while (!pending.empty() && pending.top().time == t) {
        const Queued q = pending.top();
        pending.pop();
        if (q.epoch == epoch[q.demand]) {
          installed.rows[q.demand] = q.target->paths;
          switched = true;
        }
      }
      if (switched) evaluate_blast();
    }
    integrate_to(horizon);
  };

  for (const NetEvent& e : events) {
    drain_until(e.time_s);

    // Apply the event.
    scratch_.set_duplex_up(e.fiber, e.up);
    const te::Solution& target = provider_->get(scratch_);
    refresh_bypasses(target);

    // Which demands need to move?
    std::vector<char> changed(tm_.size(), 0);
    for (std::size_t i = 0; i < target.allocations.size(); ++i) {
      if (installed.rows[i] != target.allocations[i].paths) changed[i] = 1;
    }

    EventImpact impact;
    impact.time_s = e.time_s;
    impact.was_failure = !e.up;
    result.events.push_back(impact);

    // Scheme-specific switch schedule.
    std::vector<PendingSwitch> switches;
    if (config_.scheme == Scheme::kDsdn) {
      // Flood from both fiber endpoints on the post-event topology.
      const topo::NodeId a = scratch_.link(e.fiber).src;
      const topo::NodeId b = scratch_.link(e.fiber).dst;
      const auto from_a =
          nsu_arrival_times(scratch_, a, config_.dsdn_calib, config_.flood,
                            rng_);
      const auto from_b =
          nsu_arrival_times(scratch_, b, config_.dsdn_calib, config_.flood,
                            rng_);
      // One convergence instant per headend.
      std::vector<double> headend_switch(topo_.num_nodes(), -1.0);
      for (std::size_t i = 0; i < target.allocations.size(); ++i) {
        if (!changed[i]) continue;
        const topo::NodeId r = target.allocations[i].demand.src;
        if (headend_switch[r] < 0) {
          const double tprop = std::min(from_a[r], from_b[r]);
          const double tcomp =
              metrics::sample_dsdn_tcomp(config_.dsdn_calib, rng_);
          const double tprog =
              metrics::sample_dsdn_tprog(config_.dsdn_calib, rng_);
          headend_switch[r] = std::isfinite(tprop)
                                  ? e.time_s + tprop + tcomp + tprog
                                  : std::numeric_limits<double>::infinity();
        }
        if (std::isfinite(headend_switch[r])) {
          switches.push_back(
              {headend_switch[r], i, &target.allocations[i]});
        }
      }
    } else {
      switches = schedule_switches(e.time_s, scratch_, target, changed);
    }

    // Quantize switch times to bound evaluation cost (conservative:
    // switches are only delayed, never advanced).
    if (switches.size() > config_.max_eval_points_per_event &&
        config_.max_eval_points_per_event > 0) {
      std::vector<double> times;
      times.reserve(switches.size());
      for (const auto& s : switches) times.push_back(s.time);
      std::sort(times.begin(), times.end());
      std::vector<double> buckets;
      const std::size_t k = config_.max_eval_points_per_event;
      for (std::size_t b = 1; b <= k; ++b) {
        buckets.push_back(times[(times.size() - 1) * b / k]);
      }
      for (auto& s : switches) {
        const auto it =
            std::lower_bound(buckets.begin(), buckets.end(), s.time);
        s.time = it == buckets.end() ? buckets.back() : *it;
      }
    }

    double last_switch = e.time_s;
    for (const PendingSwitch& s : switches) {
      epoch[s.demand] += 1;
      pending.push(Queued{s.time, s.demand, s.target, epoch[s.demand]});
      last_switch = std::max(last_switch, s.time);
    }
    result.events.back().convergence_span_s = last_switch - e.time_s;

    // Loss changes instantly at the event itself.
    evaluate_blast();
  }

  // Settle: drain every remaining switch, then integrate a short margin.
  double tail = now;
  {
    // Peek max pending time.
    auto copy = pending;
    while (!copy.empty()) {
      tail = std::max(tail, copy.top().time);
      copy.pop();
    }
  }
  drain_until(tail + 1.0);
  return result;
}

}  // namespace dsdn::sim
