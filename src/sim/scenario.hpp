#pragma once

// Deterministic long-horizon churn scenarios: a seeded generator of
// multi-event histories -- fiber cuts/repairs, overlapping link flaps,
// correlated SRLG multi-failures, node crash/cold-restart, demand
// surges, lossy flooding, mid-history incremental-TE toggles -- executed
// on a fresh DsdnEmulation with the full invariant checker suite
// (sim/invariants.hpp) run after every event.
//
// Everything is a pure function of (topology, traffic matrix, options,
// seed): the same seed replays bit-identically, including the FaultyBus
// fault streams, so any violation a seed swarm finds reproduces with one
// command. run_masked() executes an arbitrary subset of the schedule
// (events carry runtime applicability guards, so subsets stay legal) --
// the greedy event-bisection shrinker uses it to cut a failing history
// down to a minimal reproducer.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/artifact.hpp"
#include "sim/emulation.hpp"
#include "sim/faulty_bus.hpp"
#include "sim/invariants.hpp"

namespace dsdn::sim {

enum class ScenarioEventKind {
  kFiberCut,
  kFiberRepair,
  kFiberFlap,          // down + up inside one quiescence window
  kSrlgCut,            // correlated multi-fiber failure
  kNodeCrashRecover,   // neighbor-DB copy recovery (§3.2)
  kNodeColdRestart,    // rebuild purely from re-flooded NSUs
  kDemandSurge,        // scale one origin's demand rows
  kToggleIncrementalTe,
};

struct ScenarioEvent {
  ScenarioEventKind kind = ScenarioEventKind::kFiberCut;
  std::vector<topo::LinkId> fibers;  // cut/repair/flap/srlg members
  topo::NodeId node = topo::kInvalidNode;  // crash/restart/surge target
  double factor = 1.0;                     // surge multiplier
  bool enable = false;                     // toggle target state

  std::string to_string() const;
};

// Deliberate faults the harness can plant to prove the checkers catch
// real bugs (and that the shrinker produces short reproducers).
enum class ScenarioBug {
  kNone,
  // After every fiber-down event, one router's encap FIB is silently
  // restored to its pre-event routes: models a programmer that skipped
  // down-link zeroing, leaving stale routes over dead links.
  kSkipReprogramOnCut,
};

struct ScenarioOptions {
  std::size_t n_events = 24;
  // Relative pick weights per event kind (a kind with no applicable
  // target at generation time drops out of the draw).
  double w_cut = 4.0;
  double w_repair = 3.0;
  double w_flap = 2.0;
  double w_srlg = 1.0;
  double w_crash = 1.0;
  double w_cold_restart = 1.0;
  double w_surge = 1.5;
  double w_toggle = 0.5;
  std::size_t srlg_size = 3;  // fibers per SRLG cut (best effort)
  // Surge factors are log-uniform in [1/surge_span, surge_span].
  double surge_span = 2.5;

  // Flooding-plane faults (FaultyBus), seeded from the scenario seed.
  bool lossy_flooding = false;
  LinkFaultProfile fault_profile{
      .drop = 0.02, .duplicate = 0.02, .corrupt = 0.01, .reorder = 0.05,
      .jitter_s = 0.002};

  bool incremental_te = true;  // initial state; toggles flip it mid-run
  te::SolverOptions solver;
  InvariantOptions invariants;

  // Per-router pathing algorithms (EmulationConfig::algorithms): empty =
  // the classic all-TE fleet; non-empty runs the mixed-algorithm solver
  // on every router (SR / shortest-path / strict TE coexistence), forces
  // incremental_te off, and exercises the SR dataplane under churn.
  std::vector<core::PathingAlgorithm> algorithms;

  // Packet-level scoring (sim/packet_score.hpp): after every applied
  // event, sample packets from the current demand matrix and drive them
  // through the batched pipeline over RCU FIB snapshots; any outcome
  // besides delivered / no-ingress-route is a violation. Off by default
  // (attaches a SnapshotHub to the emulation when on).
  bool packet_scoring = false;
  std::size_t packets_per_check = 512;

  ScenarioBug bug = ScenarioBug::kNone;
  topo::NodeId bug_node = 0;
};

struct ScenarioResult {
  std::vector<std::string> violations;
  // Schedule index of the first violating event; -1 when the bootstrap
  // state itself violated. Only meaningful when !ok().
  int first_violation_event = -1;
  std::size_t events_applied = 0;
  std::size_t events_skipped = 0;  // runtime guards (e.g. would partition)
  std::size_t invariant_checks = 0;
  std::size_t packets_scored = 0;  // 0 unless options.packet_scoring
  double max_loss = 0.0;  // max flow_eval demand loss seen at any step
  std::uint64_t final_digest = 0;
  std::size_t messages = 0;
  double sim_time_s = 0.0;

  bool ok() const { return violations.empty(); }
  // Order-sensitive hash of everything above: two runs of the same seed
  // must produce equal fingerprints (bit-identical replay).
  std::uint64_t fingerprint() const;
};

class Scenario {
 public:
  // Generates the event schedule from `seed` immediately; run() is then
  // deterministic given identical construction arguments.
  Scenario(topo::Topology topo, traffic::TrafficMatrix tm,
           ScenarioOptions options, std::uint64_t seed);

  const std::vector<ScenarioEvent>& schedule() const { return schedule_; }
  std::uint64_t seed() const { return seed_; }

  // Executes the whole schedule on a fresh emulation, stopping at the
  // first invariant violation.
  ScenarioResult run() const;
  // Executes only the events whose mask bit is set (same length as the
  // schedule). Runtime guards skip events made inapplicable by the
  // omitted ones, so every subset is a legal history.
  ScenarioResult run_masked(const std::vector<char>& keep) const;

  // Greedy event-bisection shrinking: starting from a failing full run,
  // drops chunks of halving size (re-running the masked schedule each
  // time) until no kept event can be removed without the failure
  // disappearing. Returns the minimal mask, or an empty vector when the
  // full run passes.
  std::vector<char> shrink() const;

  // Human-readable reproducer listing of the kept events.
  std::string describe(const std::vector<char>& keep) const;

  // Per-scenario obs counters (events applied, invariant checks run,
  // max loss window, ...) wired into a RunArtifact for BENCH_ JSON.
  obs::RunArtifact artifact(const ScenarioResult& result,
                            const std::string& name) const;

 private:
  void generate_schedule();
  bool apply_event(DsdnEmulation& emu, const ScenarioEvent& ev) const;

  topo::Topology topo_;
  traffic::TrafficMatrix tm_;
  ScenarioOptions options_;
  std::uint64_t seed_;
  std::vector<ScenarioEvent> schedule_;
};

// Applies one churn event to a live emulation with the same runtime
// applicability guards Scenario::run uses (cuts that would partition are
// skipped, repairs of up fibers are no-ops, ...). Returns true when the
// event was applied. Exposed as a free function so closed-loop online-TE
// runs (sim/online.hpp) can interleave churn events with measurement
// epochs on an emulation they own, without a Scenario.
bool apply_scenario_event(DsdnEmulation& emu, const ScenarioEvent& ev);

// Runs seeds [first_seed, first_seed + n_seeds); on the first failing
// seed, shrinks it and returns the reproducer. nullopt = all passed.
struct SwarmFailure {
  std::uint64_t seed = 0;
  ScenarioResult result;            // the failing full run
  std::vector<char> minimal_mask;   // shrunk reproducer
  std::string reproducer;           // describe(minimal_mask) + violations
};

std::optional<SwarmFailure> run_seed_swarm(const topo::Topology& topo,
                                           const traffic::TrafficMatrix& tm,
                                           const ScenarioOptions& options,
                                           std::uint64_t first_seed,
                                           std::size_t n_seeds);

}  // namespace dsdn::sim
