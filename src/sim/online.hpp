#pragma once

// Closed-loop online TE at scenario scale (ROADMAP item 5): the oracle
// demand matrix drifts every epoch (traffic::DemandDynamics), routers
// only ever see their in-band EWMA estimates (traffic::DemandEstimator
// feeding NSUs), a te::RecomputePolicy decides when each controller
// re-runs TE, and concurrent link churn from the PR 5 scenario
// generator hits the same emulation in between.
//
// Scoring follows "Near-optimal Online Traffic Engineering": each epoch
// the achieved throughput (flow_eval of the *installed* routing against
// the live oracle matrix) is compared to an omniscient same-tick cold
// solve of the true demand; the shortfall integrates into a throughput
// regret fraction, and epochs losing more than `bad_loss_fraction` of
// the achievable throughput accumulate bad-seconds (Eq 2 at network
// granularity).
//
// Deterministic: the whole run is a pure function of (topology, base
// matrix, options, seed) -- fingerprinted, so swarm failures replay.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/invariants.hpp"
#include "sim/scenario.hpp"
#include "te/recompute_policy.hpp"
#include "traffic/dynamics.hpp"

namespace dsdn::sim {

struct OnlineTeOptions {
  std::size_t epochs = 200;
  double epoch_s = 1.0;  // wall-clock length of one measurement epoch

  traffic::DemandDynamicsOptions dynamics;
  traffic::DemandEstimator::Options estimator;
  te::RecomputePolicyOptions policy;
  te::SolverOptions solver;
  bool incremental_te = true;

  // Concurrent link churn: this many events from the PR 5 generator
  // (cuts/repairs/flaps/SRLGs; surge, toggle, and crash weights are
  // zeroed -- demand motion comes from the dynamics, and restarts get
  // their own scenarios) at seeded epochs throughout the run.
  std::size_t churn_events = 0;

  // An epoch is "bad" when it loses more than this fraction of the
  // omniscient same-tick throughput.
  double bad_loss_fraction = 0.01;

  // Run the invariant suite every `check_every` epochs (and always on
  // the final epoch). Parity is checked against the demands each
  // solution actually solved (policies legitimately defer).
  std::size_t check_every = 16;
  InvariantOptions invariants;
};

struct OnlineTeResult {
  std::size_t epochs = 0;
  std::size_t churn_applied = 0;
  // Sum of every controller's recompute() count, bootstrap included --
  // the cost side of the recompute-policy trade.
  std::size_t recomputes = 0;

  double achieved_gbps_sum = 0.0;
  double omniscient_gbps_sum = 0.0;
  double regret_fraction = 0.0;   // 1 - achieved/omniscient, floored at 0
  double max_epoch_regret = 0.0;
  std::size_t bad_epochs = 0;
  double bad_seconds = 0.0;

  std::size_t invariant_checks = 0;
  std::vector<std::string> violations;
  std::size_t nsu_messages = 0;

  bool ok() const { return violations.empty(); }
  // Order-sensitive hash over everything above: same seed, same run.
  std::uint64_t fingerprint() const;
};

// Runs the closed loop for options.epochs measurement epochs on a fresh
// emulation. Stops early at the first invariant violation.
OnlineTeResult run_online_te(const topo::Topology& topo,
                             const traffic::TrafficMatrix& base_tm,
                             const OnlineTeOptions& options,
                             std::uint64_t seed);

}  // namespace dsdn::sim
