#include "sim/invariants.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <map>

#include "core/upgrade.hpp"
#include "sim/flow_eval.hpp"
#include "te/incremental.hpp"
#include "util/format.hpp"

namespace dsdn::sim {
namespace {

// Nodes reachable from `src` over up links in the ground-truth topology.
std::vector<char> reachable_from(const topo::Topology& topo,
                                 topo::NodeId src) {
  std::vector<char> seen(topo.num_nodes(), 0);
  std::deque<topo::NodeId> frontier{src};
  seen[src] = 1;
  while (!frontier.empty()) {
    const topo::NodeId at = frontier.front();
    frontier.pop_front();
    for (topo::LinkId lid : topo.node(at).out_links) {
      const topo::Link& l = topo.link(lid);
      if (!l.up || seen[l.dst]) continue;
      seen[l.dst] = 1;
      frontier.push_back(l.dst);
    }
  }
  return seen;
}

void check_converged_views(const DsdnEmulation& emu, InvariantReport& out) {
  ++out.checks_run;
  if (!emu.views_converged()) {
    out.violations.push_back("views diverged: StateDb digests differ");
    return;
  }
  // The agreed view must also be *right*: per-link liveness equal to
  // ground truth (identical-but-wrong views would satisfy the digest).
  const topo::Topology& truth = emu.network();
  const topo::Topology& view = emu.controller(0).state().view();
  for (std::size_t l = 0; l < truth.num_links(); ++l) {
    ++out.checks_run;
    const auto lid = static_cast<topo::LinkId>(l);
    if (view.link(lid).up != truth.link(lid).up) {
      out.violations.push_back(
          "converged view wrong about link " + std::to_string(l) +
          ": view says " + (view.link(lid).up ? "up" : "down") +
          ", ground truth " + (truth.link(lid).up ? "up" : "down"));
    }
  }
}

// Walks one node segment through the installed SrFibs: every ECMP
// branch from `from` must reach `target` over up links without cycling.
// DFS with on-stack marking -- a back edge IS a potential forwarding
// loop, since the ECMP hash can pick any up member.
bool walk_segment(const DsdnEmulation& emu, const topo::Topology& topo,
                  topo::NodeId from, topo::NodeId target,
                  const std::string& where, InvariantReport& out) {
  // 0 = unvisited, 1 = on the DFS stack, 2 = verified to reach target.
  std::vector<char> state(topo.num_nodes(), 0);
  const std::function<bool(topo::NodeId)> dfs = [&](topo::NodeId v) {
    if (v == target) return true;
    if (state[v] == 2) return true;
    if (state[v] == 1) {
      out.violations.push_back(where + ": SR cycle via node " +
                               std::to_string(v) + " toward segment " +
                               std::to_string(target));
      return false;
    }
    state[v] = 1;
    const std::vector<dataplane::SrNextHop>* members =
        emu.at(v).sr.members(target);
    if (!members) {
      out.violations.push_back(where + ": SR FIB miss at node " +
                               std::to_string(v) + " toward segment " +
                               std::to_string(target));
      return false;
    }
    std::size_t n_up = 0;
    for (const dataplane::SrNextHop& m : *members) {
      const topo::Link& l = topo.link(m.link);
      if (l.src != v) {
        out.violations.push_back(where + ": SR entry at node " +
                                 std::to_string(v) + " leaves from node " +
                                 std::to_string(l.src));
        return false;
      }
      if (!l.up) continue;
      ++n_up;
      if (!dfs(l.dst)) return false;
    }
    if (n_up == 0) {
      out.violations.push_back(
          where + ": SR members all down at node " + std::to_string(v) +
          " toward segment " + std::to_string(target) +
          " (stale FIB past convergence)");
      return false;
    }
    state[v] = 2;
    return true;
  };
  return dfs(from);
}

// Replays every installed headend route label-by-label through the
// transit FIBs of the routers it visits: no loops, no down links, no
// table misses, ends at the route's egress.
void check_fib_walk(const DsdnEmulation& emu, InvariantReport& out) {
  const topo::Topology& topo = emu.network();
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (const auto& [key, entry] : emu.at(n).ingress.encap_table()) {
      const topo::NodeId egress = key.first;
      std::size_t route_idx = 0;
      for (const dataplane::WeightedRoute& wr : entry.routes) {
        ++out.checks_run;
        const std::string where =
            "router " + std::to_string(n) + " route " +
            std::to_string(route_idx++) + " to egress " +
            std::to_string(egress) + " class " + std::to_string(key.second);
        const auto& labels = wr.stack.labels();
        if (!labels.empty() && dataplane::is_node_segment_label(labels[0])) {
          // Segment-routed: each node segment must be reachable over the
          // installed ECMP DAG (revisits across segments are legal -- a
          // later segment may cross an earlier one's territory -- so the
          // walk state resets per segment).
          topo::NodeId sr_at = n;
          bool sr_broken = false;
          for (dataplane::Label label : labels) {
            if (!dataplane::is_node_segment_label(label)) {
              out.violations.push_back(
                  where + ": mixed segment/strict label stack");
              sr_broken = true;
              break;
            }
            const topo::NodeId target = dataplane::segment_node(label);
            if (target == sr_at) continue;
            if (!walk_segment(emu, topo, sr_at, target, where, out)) {
              sr_broken = true;
              break;
            }
            sr_at = target;
          }
          if (!sr_broken && sr_at != egress) {
            out.violations.push_back(where + ": segment route ends at node " +
                                     std::to_string(sr_at) +
                                     " short of its egress");
          }
          continue;
        }
        std::vector<char> visited(topo.num_nodes(), 0);
        topo::NodeId at = n;
        visited[at] = 1;
        bool broken = false;
        for (dataplane::Label label : wr.stack.labels()) {
          const auto next = emu.at(at).transit.lookup(label);
          if (!next) {
            out.violations.push_back(where + ": transit FIB miss at node " +
                                     std::to_string(at));
            broken = true;
            break;
          }
          const topo::Link& l = topo.link(*next);
          if (l.src != at) {
            out.violations.push_back(where +
                                     ": transit entry leaves from node " +
                                     std::to_string(l.src) + ", not " +
                                     std::to_string(at));
            broken = true;
            break;
          }
          if (!l.up) {
            out.violations.push_back(
                where + ": installed route crosses down link " +
                std::to_string(*next) + " (stale FIB past convergence)");
            broken = true;
            break;
          }
          at = l.dst;
          if (visited[at]) {
            out.violations.push_back(where + ": forwarding loop via node " +
                                     std::to_string(at));
            broken = true;
            break;
          }
          visited[at] = 1;
        }
        if (!broken && at != egress) {
          out.violations.push_back(where + ": route ends at node " +
                                   std::to_string(at) +
                                   " short of its egress");
        }
      }
    }
  }
}

// flow_eval over the FIB-derived routing: demands the headend *intended*
// to carry (nonzero allocation in its own solution) must not be
// *structurally* blackholed after reconvergence while their endpoints are
// connected -- no installed route, or every installed path dead. The
// structural pass disables congestion scoring: under oversubscription
// (flow_eval offers full demand rates, the solver admits less) strict
// priority legitimately starves scavenger-class demands to 100% loss on
// healthy, correctly programmed routes. A zero allocation is likewise
// fine (admission control, not a programming bug).
void check_no_blackholes(const DsdnEmulation& emu, InvariantReport& out) {
  const topo::Topology& topo = emu.network();
  const traffic::TrafficMatrix& tm = emu.demands();
  const InstalledRouting routing =
      InstalledRouting::from_dataplane(tm, emu, &topo);
  const LossReport congested = evaluate_loss(topo, tm, routing);
  LossOptions structural_only;
  structural_only.congestion = false;
  const LossReport report =
      evaluate_loss(topo, tm, routing, nullptr, structural_only);

  // Headend intent: per source, (dst, class) -> allocated rate from its
  // own installed solution.
  std::vector<std::map<std::pair<topo::NodeId, int>, double>> intent(
      topo.num_nodes());
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    for (const te::Allocation* a :
         emu.controller(n).last_solution().originating_at(n)) {
      intent[n][{a->demand.dst, static_cast<int>(a->demand.priority)}] +=
          a->allocated_gbps;
    }
  }

  std::vector<std::vector<char>> reach(topo.num_nodes());
  const auto& demands = tm.demands();
  for (std::size_t i = 0; i < demands.size(); ++i) {
    if (demands[i].rate_gbps <= 0) continue;
    ++out.checks_run;
    out.max_demand_loss = std::max(out.max_demand_loss, congested.loss[i]);
    if (report.loss[i] < 1.0 - 1e-9) continue;
    const auto it = intent[demands[i].src].find(
        {demands[i].dst, static_cast<int>(demands[i].priority)});
    if (it == intent[demands[i].src].end() || it->second <= 1e-9) continue;
    if (reach[demands[i].src].empty()) {
      reach[demands[i].src] = reachable_from(topo, demands[i].src);
    }
    if (!reach[demands[i].src][demands[i].dst]) continue;  // partitioned
    out.violations.push_back(
        "persistent blackhole: demand " + std::to_string(i) + " (" +
        std::to_string(demands[i].src) + " -> " +
        std::to_string(demands[i].dst) + " class " +
        std::to_string(static_cast<int>(demands[i].priority)) +
        ") has no working installed path while its endpoints are connected "
        "and its headend allocated " +
        util::format_double(it->second, 3) + "G");
  }
}

// Sums every router's own installed allocations: per-link placed load
// within capacity (+slack), exactly zero on down links.
void check_capacity_conservation(const DsdnEmulation& emu,
                                 const InvariantOptions& options,
                                 InvariantReport& out) {
  const topo::Topology& topo = emu.network();
  std::vector<double> placed(topo.num_links(), 0.0);
  for (topo::NodeId n = 0; n < topo.num_nodes(); ++n) {
    const te::Solution& solution = emu.controller(n).last_solution();
    for (const te::Allocation* a : solution.originating_at(n)) {
      for (const te::WeightedPath& wp : a->paths) {
        const double rate = a->allocated_gbps * wp.weight;
        if (rate <= 0) continue;
        for (topo::LinkId lid : wp.path.links) placed[lid] += rate;
      }
    }
  }
  for (std::size_t l = 0; l < topo.num_links(); ++l) {
    ++out.checks_run;
    const topo::Link& link = topo.link(static_cast<topo::LinkId>(l));
    if (!link.up && placed[l] > options.capacity_slack_gbps) {
      out.violations.push_back(
          "allocated load " + util::format_double(placed[l], 3) +
          "G on down link " + std::to_string(l));
    } else if (placed[l] > link.capacity_gbps + options.capacity_slack_gbps) {
      out.violations.push_back(
          "link " + std::to_string(l) + " overcommitted: " +
          util::format_double(placed[l], 3) + "G placed on " +
          util::format_double(link.capacity_gbps, 3) + "G capacity");
    }
  }
}

// One router's history-evolved solution vs a from-scratch full solve of
// its current view (the eventual-convergence contract of §3.1, extended
// across arbitrary recompute histories by te::DiffChecker).
void check_cold_solve_parity(const DsdnEmulation& emu,
                             const InvariantOptions& options,
                             InvariantReport& out) {
  const core::Controller& c = emu.controller(0);
  if (c.recomputes() == 0) return;
  ++out.checks_run;
  te::DiffChecker::Options dc;
  dc.throughput_tolerance = options.throughput_tolerance;
  dc.capacity_slack_gbps = options.capacity_slack_gbps;
  traffic::TrafficMatrix solved_tm;
  if (options.parity_against_solved_demands) {
    // Rebuild the matrix this solution actually solved (one allocation
    // per input demand, same order): under a deferring recompute policy
    // the live view can be ahead of the installed solution.
    std::vector<traffic::Demand> rows;
    rows.reserve(c.last_solution().allocations.size());
    for (const te::Allocation& a : c.last_solution().allocations) {
      rows.push_back(a.demand);
    }
    solved_tm = traffic::TrafficMatrix(std::move(rows));
  }
  const traffic::TrafficMatrix& parity_tm =
      options.parity_against_solved_demands ? solved_tm : c.state().demands();
  te::DiffChecker::Report report;
  if (!emu.config().algorithms.empty()) {
    // Mixed-algorithm fleet: the stock solver cannot reproduce the
    // placement, so the reference is the same MixedAlgorithmSolver the
    // controllers run, keyed off the *configured* per-router algorithms
    // (identical to the converged TLVs, since every member advertises
    // its configured algorithm).
    const std::vector<core::PathingAlgorithm> algos =
        emu.config().algorithms;
    const core::MixedAlgorithmSolver reference_solver(
        emu.config().solver_options,
        [algos](topo::NodeId node) { return algos.at(node); });
    const te::Solution reference =
        reference_solver.solve(c.state().view(), parity_tm, nullptr);
    report = te::DiffChecker::check_against(c.state().view(), parity_tm,
                                            c.last_solution(), reference, dc);
  } else {
    report = te::DiffChecker::check(c.state().view(), parity_tm,
                                    c.last_solution(),
                                    emu.config().solver_options, dc);
  }
  for (const std::string& v : report.violations) {
    out.violations.push_back("cold-solve parity: " + v);
  }
}

}  // namespace

InvariantReport check_invariants(const DsdnEmulation& emu,
                                 const InvariantOptions& options) {
  InvariantReport out;
  check_converged_views(emu, out);
  // A diverged network fails fast: the remaining checkers assume an
  // agreed view (e.g. parity reads controller 0 as a representative).
  if (!out.ok()) return out;
  check_fib_walk(emu, out);
  check_no_blackholes(emu, out);
  check_capacity_conservation(emu, options, out);
  if (options.check_solution_parity) {
    check_cold_solve_parity(emu, options, out);
  }
  return out;
}

}  // namespace dsdn::sim
