#include "sim/emulation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/wire.hpp"
#include "obs/trace.hpp"

namespace dsdn::sim {

DsdnEmulation::DsdnEmulation(topo::Topology topo, traffic::TrafficMatrix tm,
                             EmulationConfig config)
    : topo_(std::move(topo)),
      tm_(std::move(tm)),
      config_(config),
      c_transmissions_(obs_.counter("flood.transmissions")),
      c_retransmits_(obs_.counter("flood.retransmits")),
      c_gave_up_(obs_.counter("flood.gave_up")),
      c_decode_errors_(obs_.counter("flood.decode_errors")),
      c_nsu_bytes_(obs_.counter("flood.nsu_bytes")) {
  prefixes_ = topo::assign_router_prefixes(topo_);
  telemetry_ = std::make_unique<core::SimTelemetry>(&topo_, &tm_, prefixes_);
  controllers_.reserve(topo_.num_nodes());
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    controllers_.push_back(make_controller(n));
  }
  dirty_.assign(topo_.num_nodes(), 0);
}

std::unique_ptr<core::Controller> DsdnEmulation::make_controller(
    topo::NodeId n) const {
  core::ControllerConfig cc;
  cc.self = n;
  cc.solver_options = config_.solver_options;
  cc.program_bypasses = config_.use_bypasses;
  cc.bypass_strategy = config_.bypass_strategy;
  cc.incremental_te = config_.incremental_te;
  cc.te_diff_check = config_.te_diff_check;
  if (!config_.algorithms.empty()) {
    if (config_.algorithms.size() != topo_.num_nodes())
      throw std::invalid_argument("EmulationConfig::algorithms size mismatch");
    cc.algorithm = config_.algorithms[n];
    cc.advertise_algorithm = true;
    cc.mixed_fleet = true;
    cc.incremental_te = false;  // mixed fleets solve cold each recompute
    // Any SR member means every router transits segment labels.
    cc.program_sr = std::any_of(
        config_.algorithms.begin(), config_.algorithms.end(),
        [](core::PathingAlgorithm a) {
          return a == core::PathingAlgorithm::kSegmentRouting;
        });
  }
  auto c = std::make_unique<core::Controller>(cc, topo_);
  // A non-trivial recompute policy rides on measurement epochs; kEvery
  // attaches nothing so the classic paths stay byte-identical. A
  // controller replaced by crash recovery starts with a reset policy --
  // the recovery barriers reset the survivors to match.
  if (config_.recompute_policy.kind != te::RecomputeTrigger::kEvery) {
    c->set_recompute_policy(
        std::make_unique<te::RecomputePolicy>(config_.recompute_policy));
  }
  // Replacement controllers (crash recovery) publish to the same hub the
  // crashed instance did, so forwarding cores keep working through the
  // restart on the last published epoch.
  if (fib_hub_) c->attach_fib_hub(fib_hub_.get());
  return c;
}

void DsdnEmulation::enable_fib_snapshots(std::size_t num_cores) {
  fib_hub_ = std::make_unique<dataplane::SnapshotHub>(topo_, num_cores);
  for (auto& c : controllers_) c->attach_fib_hub(fib_hub_.get());
}

void DsdnEmulation::set_fiber_up(topo::LinkId fiber, bool up) {
  topo_.set_duplex_up(fiber, up);
  // Dataplane-local port-state detection: forwarding cores see the flip
  // (and engage FRR on down links) immediately, long before the control
  // plane floods, recomputes, and republishes tables.
  if (fib_hub_) fib_hub_->publish_link_state(topo_);
}

void DsdnEmulation::originate_and_flood(topo::NodeId n) {
  const auto directive = controllers_[n]->originate(telemetry_for(n));
  dirty_[n] = 1;
  flood(directive, n);
}

const core::Controller& DsdnEmulation::controller(topo::NodeId n) const {
  return *controllers_.at(n);
}

core::Controller& DsdnEmulation::mutable_controller(topo::NodeId n) {
  return *controllers_.at(n);
}

const dataplane::RouterDataplane& DsdnEmulation::at(topo::NodeId node) const {
  return controllers_.at(node)->dataplane();
}

std::uint32_t DsdnEmulation::address_of(topo::NodeId dst) const {
  return topo::host_in(prefixes_.at(dst));
}

void DsdnEmulation::flood(const core::FloodDirective& directive,
                          topo::NodeId from) {
  (void)from;
  // NSUs cross the wire as bytes: every delivery round-trips through the
  // real serialization so the emulation exercises the gRPC payload path.
  const auto bytes =
      std::make_shared<const std::vector<std::uint8_t>>(
          core::serialize_nsu(directive.nsu));
  for (topo::LinkId lid : directive.out_links) {
    transmit(bytes, lid, /*attempt=*/0);
  }
}

void DsdnEmulation::transmit(
    std::shared_ptr<const std::vector<std::uint8_t>> bytes, topo::LinkId lid,
    int attempt) {
  c_transmissions_.inc();
  c_nsu_bytes_.add(bytes->size());
  const topo::Link& l = topo_.link(lid);
  const double base_delay = l.delay_s + config_.nsu_process_s;
  auto deliver_payload =
      [this, lid](std::shared_ptr<const std::vector<std::uint8_t>> payload,
                  double delay, bool corrupted) {
        queue_.schedule_in(delay, [this, payload, lid, corrupted] {
          const auto decoded = core::decode_nsu(*payload);
          if (!decoded) {
            c_decode_errors_.inc();
            return;
          }
          // A garbled copy can still decode (flips in float payloads are
          // just different numbers); the transport checksum catches what
          // the framing cannot, so it never reaches the StateDb either
          // way -- but the decoder was exercised on the garbled bytes.
          if (corrupted) {
            c_decode_errors_.inc();
            return;
          }
          deliver(*decoded.nsu, lid);
        });
      };
  if (!faults_) {
    deliver_payload(std::move(bytes), base_delay, /*corrupted=*/false);
    return;
  }

  bool intact_copy_sent = false;
  for (const FaultyBus::Copy& copy : faults_->transmit(lid)) {
    auto payload = bytes;
    if (copy.corrupted) {
      auto garbled = *bytes;
      faults_->corrupt_payload(lid, garbled);
      payload = std::make_shared<const std::vector<std::uint8_t>>(
          std::move(garbled));
    } else {
      intact_copy_sent = true;
    }
    deliver_payload(std::move(payload), base_delay + copy.extra_delay_s,
                    copy.corrupted);
  }
  if (intact_copy_sent) return;

  // No intact copy made it onto the wire: the transfer times out at the
  // sender (gRPC deadline) and is retransmitted with exponential backoff
  // plus jitter -- bounded, so a dead link cannot retransmit forever.
  const FloodRetryPolicy& retry = config_.flood_retry;
  if (attempt >= retry.max_retransmits) {
    c_gave_up_.inc();
    return;
  }
  double backoff = retry.base_s * std::pow(retry.multiplier, attempt);
  if (retry.jitter > 0) {
    backoff *= 1.0 + faults_->uniform(lid, 0.0, retry.jitter);
  }
  c_retransmits_.inc();
  queue_.schedule_in(base_delay + backoff, [this, bytes, lid, attempt] {
    transmit(bytes, lid, attempt + 1);
  });
}

void DsdnEmulation::deliver(const core::NodeStateUpdate& nsu,
                            topo::LinkId via) {
  const topo::Link& l = topo_.link(via);
  if (!l.up) return;  // lost with the link (sender retries via next NSU)
  ++messages_;
  core::Controller& receiver = *controllers_[l.dst];
  const core::FloodDirective onward = receiver.handle_nsu(nsu, via);
  if (!onward.empty() || receiver.state().seq_of(nsu.origin) == nsu.seq) {
    dirty_[l.dst] = 1;
  }
  if (!onward.empty()) flood(onward, l.dst);
}

void DsdnEmulation::run_to_quiescence() {
  DSDN_TRACE_SPAN("emu.flood");
  // 16M message budget: loop-free flooding over a connected graph always
  // terminates far below this; the cap turns a logic bug into an error.
  const std::size_t executed = queue_.run(16'000'000);
  if (executed >= 16'000'000)
    throw std::runtime_error("emulation: flooding did not quiesce");
}

void DsdnEmulation::recompute_dirty() {
  DSDN_TRACE_SPAN("emu.recompute");
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    if (!dirty_[n]) continue;
    controllers_[n]->recompute();
    dirty_[n] = 0;
  }
}

void DsdnEmulation::bootstrap() {
  DSDN_TRACE_SPAN("emu.bootstrap");
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    originate_and_flood(n);
  }
  run_to_quiescence();
  recompute_dirty();
}

void DsdnEmulation::fail_fiber(topo::LinkId fiber) {
  DSDN_TRACE_SPAN("emu.fail_fiber");
  const topo::NodeId a = topo_.link(fiber).src;
  const topo::NodeId b = topo_.link(fiber).dst;
  set_fiber_up(fiber, false);
  for (topo::NodeId origin : {a, b}) originate_and_flood(origin);
  run_to_quiescence();
  recompute_dirty();
}

void DsdnEmulation::fail_fibers(std::span<const topo::LinkId> fibers) {
  DSDN_TRACE_SPAN("emu.fail_fibers");
  // All member fibers go down before any origination: the incident
  // routers then advertise the full SRLG damage in overlapping floods.
  std::vector<topo::NodeId> origins;
  for (topo::LinkId fiber : fibers) {
    set_fiber_up(fiber, false);
    for (topo::NodeId n : {topo_.link(fiber).src, topo_.link(fiber).dst}) {
      if (std::find(origins.begin(), origins.end(), n) == origins.end())
        origins.push_back(n);
    }
  }
  for (topo::NodeId origin : origins) originate_and_flood(origin);
  run_to_quiescence();
  recompute_dirty();
}

void DsdnEmulation::flap_fiber(topo::LinkId fiber) {
  DSDN_TRACE_SPAN("emu.flap_fiber");
  const topo::NodeId a = topo_.link(fiber).src;
  const topo::NodeId b = topo_.link(fiber).dst;
  set_fiber_up(fiber, false);
  for (topo::NodeId origin : {a, b}) originate_and_flood(origin);
  // Back up before the down-NSUs quiesce: both generations are in flight
  // together and receivers may apply them out of order (the sequence
  // check discards whichever arrives stale).
  set_fiber_up(fiber, true);
  for (topo::NodeId origin : {a, b}) originate_and_flood(origin);
  run_to_quiescence();
  recompute_dirty();
}

void DsdnEmulation::repair_fiber(topo::LinkId fiber) {
  DSDN_TRACE_SPAN("emu.repair_fiber");
  const topo::NodeId a = topo_.link(fiber).src;
  const topo::NodeId b = topo_.link(fiber).dst;
  set_fiber_up(fiber, true);
  // Adjacency-up database resync (IS-IS CSNP-style): the endpoints merge
  // databases and reflood, so updates that happened across a partition
  // reach both sides. Receivers' sequence checks stop the reflood where
  // nothing is new.
  for (const auto& directive : controllers_[a]->resync_with(*controllers_[b])) {
    flood(directive, a);
  }
  for (const auto& directive : controllers_[b]->resync_with(*controllers_[a])) {
    flood(directive, b);
  }
  for (topo::NodeId origin : {a, b}) originate_and_flood(origin);
  run_to_quiescence();
  recompute_dirty();
}

void DsdnEmulation::degrade_fiber(topo::LinkId fiber, double capacity_gbps) {
  const topo::NodeId a = topo_.link(fiber).src;
  const topo::NodeId b = topo_.link(fiber).dst;
  topo_.set_duplex_capacity(fiber, capacity_gbps);
  for (topo::NodeId origin : {a, b}) originate_and_flood(origin);
  run_to_quiescence();
  recompute_dirty();
}

void DsdnEmulation::crash_and_recover(topo::NodeId node) {
  // Fresh controller instance: empty StateDb, seq counter reset, cold
  // incremental warm state (its first recompute is a full solve).
  controllers_[node] = make_controller(node);

  // Recover state from any live neighbor, then re-originate (with a
  // sequence number above anything the network has seen from us).
  const auto neighbors = topo_.up_neighbors(node);
  if (neighbors.empty())
    throw std::runtime_error("crash_and_recover: isolated node");
  controllers_[node]->recover_from(*controllers_[neighbors.front()]);
  originate_and_flood(node);
  run_to_quiescence();
  // A restarted member forces a fleet-wide cold solve: warm incremental
  // histories drift within the checker tolerance, so the fresh
  // instance's full solve could disagree with its peers' evolved
  // solutions -- and disagreeing headends can jointly overcommit a link
  // (found by the scenario swarm: surge + cut + restart). Everyone
  // resets at the same barrier and re-solves the same view identically.
  // Recompute policies reset at the same barrier: the replacement
  // instance starts with no drift baseline, and survivors keeping theirs
  // would defer while it recomputes -- divergent solutions.
  for (auto& c : controllers_) {
    c->reset_incremental_te();
    c->reset_recompute_policy();
  }
  recompute_dirty();
}

void DsdnEmulation::crash_and_cold_restart(topo::NodeId node) {
  DSDN_TRACE_SPAN("emu.cold_restart");
  controllers_[node] = make_controller(node);
  const auto neighbors = topo_.up_neighbors(node);
  if (neighbors.empty())
    throw std::runtime_error("crash_and_cold_restart: isolated node");
  // Adjacency-up resync from every live neighbor: full databases cross
  // the wire as ordinary NSU floods; the restarted router rebuilds its
  // StateDb from what it hears, nothing else. Receivers elsewhere
  // discard the copies as stale, terminating the reflood.
  for (topo::NodeId nb : neighbors) {
    for (const auto& directive : controllers_[nb]->advertise_database()) {
      flood(directive, nb);
    }
  }
  run_to_quiescence();
  // By now the echo of our own pre-crash NSU advanced the sequence
  // counter: this origination supersedes the stale copy everywhere.
  originate_and_flood(node);
  run_to_quiescence();
  // Same fleet-wide cold-solve rule as crash_and_recover (see there).
  for (auto& c : controllers_) {
    c->reset_incremental_te();
    c->reset_recompute_policy();
  }
  recompute_dirty();
}

void DsdnEmulation::scale_demands(double factor, topo::NodeId origin) {
  DSDN_TRACE_SPAN("emu.scale_demands");
  // Route through update_demands' per-origin diff: a fleet-wide surge
  // (origin == kInvalidNode) used to re-originate every router, flooding
  // N full NSUs even from routers with no demand rows at all. Only
  // origins whose aggregated advertisement changed flood now.
  traffic::TrafficMatrix scaled = tm_;
  scaled.scale_rate(origin, factor);
  update_demands(std::move(scaled));
}

void DsdnEmulation::update_demands(traffic::TrafficMatrix tm) {
  DSDN_TRACE_SPAN("emu.update_demands");
  // Diff per-origin aggregated rows so only origins whose advertised
  // demand actually changed re-originate (NSU churn stays proportional to
  // the rebalance, not the fleet size).
  std::vector<char> changed(topo_.num_nodes(), 0);
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    auto before = traffic::TrafficMatrix(tm_.from(n)).aggregated();
    auto after = traffic::TrafficMatrix(tm.from(n)).aggregated();
    if (before.demands() != after.demands()) changed[n] = 1;
  }
  // tm_'s address is stable (SimTelemetry holds a pointer to it); assign
  // in place.
  tm_ = std::move(tm);
  bool any = false;
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    if (changed[n]) {
      originate_and_flood(n);
      any = true;
    }
  }
  if (!any) return;
  run_to_quiescence();
  recompute_dirty();
}

void DsdnEmulation::set_incremental_te(bool enabled) {
  config_.incremental_te = enabled;
  for (auto& c : controllers_) c->set_incremental_te(enabled);
}

const core::TelemetrySource& DsdnEmulation::telemetry_for(
    topo::NodeId node) const {
  if (!estimating_telemetry_.empty()) return *estimating_telemetry_[node];
  return *telemetry_;
}

void DsdnEmulation::enable_in_band_measurement(
    traffic::DemandEstimator::Options options) {
  estimators_.clear();
  estimating_telemetry_.clear();
  estimators_.reserve(topo_.num_nodes());
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    estimators_.emplace_back(n, options);
  }
  // Estimators must not reallocate once telemetry holds pointers.
  estimating_telemetry_.reserve(topo_.num_nodes());
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    estimating_telemetry_.push_back(
        std::make_unique<traffic::EstimatingTelemetry>(&topo_, prefixes_,
                                                       &estimators_[n]));
  }
}

void DsdnEmulation::observe_traffic(const traffic::TrafficMatrix& offered) {
  if (estimators_.empty())
    throw std::logic_error("observe_traffic: measurement not enabled");
  // Each ingress router measures what it forwards this epoch.
  for (const traffic::Demand& d : offered.demands()) {
    estimators_[d.src].observe(d.dst, d.priority, d.rate_gbps);
  }
}

void DsdnEmulation::set_oracle_demands(traffic::TrafficMatrix tm) {
  if (estimators_.empty())
    throw std::logic_error(
        "set_oracle_demands: requires in-band measurement (otherwise "
        "controllers would silently diverge from the oracle; use "
        "update_demands)");
  // tm_'s address is stable (SimTelemetry points at it); assign in place.
  tm_ = std::move(tm);
}

bool DsdnEmulation::advert_changed(topo::NodeId n) const {
  const core::NodeStateUpdate* last = controllers_[n]->state().latest(n);
  if (!last) return true;
  const auto now = estimators_[n].advertised();
  const auto& prev = last->demands;
  if (now.size() != prev.size()) return true;
  for (std::size_t i = 0; i < now.size(); ++i) {
    if (now[i].egress != prev[i].egress ||
        now[i].priority != prev[i].priority) {
      return true;
    }
    // Bias-corrected estimates of perfectly constant traffic wobble in
    // the last ulps across epochs; an exact comparison would re-flood
    // the whole fleet every epoch for nothing.
    const double a = now[i].rate_gbps, b = prev[i].rate_gbps;
    const double scale = std::max({1.0, std::abs(a), std::abs(b)});
    if (std::abs(a - b) > 1e-9 * scale) return true;
  }
  return false;
}

void DsdnEmulation::measurement_epoch() {
  if (estimators_.empty())
    throw std::logic_error("measurement_epoch: measurement not enabled");
  for (auto& est : estimators_) est.roll_epoch();
  // Only routers whose advertisement materially moved re-originate (the
  // same diff discipline as update_demands: NSU churn tracks demand
  // change, not fleet size).
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    if (!advert_changed(n)) continue;
    const auto directive = controllers_[n]->originate(telemetry_for(n));
    dirty_[n] = 1;
    flood(directive, n);
  }
  run_to_quiescence();
  // Tick every controller's recompute policy on its converged view --
  // every epoch, recompute or not, so staleness counts stay in fleet
  // lockstep. A dirty controller whose policy defers keeps its dirty
  // bit; the TE it is running is stale but fleet-consistent, and a later
  // epoch (or any topology event, which recomputes unconditionally)
  // picks it up.
  for (topo::NodeId n = 0; n < topo_.num_nodes(); ++n) {
    const bool due = controllers_[n]->demand_epoch_due();
    if (dirty_[n] && due) {
      controllers_[n]->recompute();
      dirty_[n] = 0;
    }
  }
}

void DsdnEmulation::enable_fault_injection(
    const LinkFaultProfile& default_profile, std::uint64_t seed) {
  faults_ = std::make_unique<FaultyBus>(seed);
  faults_->set_default_profile(default_profile);
  // Fresh fault run, fresh flooding counters (bootstrap traffic from
  // before the faults were enabled would drown the lossy-run numbers).
  c_transmissions_.reset();
  c_retransmits_.reset();
  c_gave_up_.reset();
  c_decode_errors_.reset();
  c_nsu_bytes_.reset();
}

DsdnEmulation::FloodStats DsdnEmulation::flood_stats() const {
  FloodStats s;
  s.transmissions = c_transmissions_.value();
  s.retransmits = c_retransmits_.value();
  s.gave_up = c_gave_up_.value();
  s.decode_errors = c_decode_errors_.value();
  return s;
}

core::ControllerStatus DsdnEmulation::status_of(topo::NodeId node) const {
  core::ControllerStatus s = core::collect_status(controller(node));
  core::merge_flood_counters(s, obs_.snapshot());
  return s;
}

void DsdnEmulation::set_link_fault_profile(topo::LinkId link,
                                           const LinkFaultProfile& p) {
  if (!faults_)
    throw std::logic_error("set_link_fault_profile: faults not enabled");
  faults_->set_link_profile(link, p);
}

bool DsdnEmulation::views_converged() const {
  if (controllers_.empty()) return true;
  const std::uint64_t digest = controllers_.front()->state().digest();
  for (const auto& c : controllers_) {
    if (c->state().digest() != digest) return false;
  }
  return true;
}

dataplane::ForwardResult DsdnEmulation::send_packet(
    topo::NodeId ingress, std::uint32_t dst_ip,
    metrics::PriorityClass priority, std::uint64_t entropy) const {
  dataplane::Packet pkt;
  pkt.dst_ip = dst_ip;
  pkt.priority = priority;
  pkt.entropy = entropy;
  pkt.ttl = static_cast<int>(4 * topo_.num_nodes() + 16);
  // Bypasses come from each router's controller-programmed BypassFib.
  const dataplane::Forwarder forwarder(topo_, this);
  return forwarder.forward(std::move(pkt), ingress);
}

}  // namespace dsdn::sim
