#pragma once

// Discrete-event engine. Deterministic: events at equal timestamps run in
// scheduling order (stable FIFO), so a fixed seed reproduces a run
// exactly.

#include <cstdint>
#include <functional>
#include <queue>

namespace dsdn::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  // Schedules `cb` at absolute time `when` (must be >= now()).
  void schedule(double when, Callback cb);
  // Schedules `cb` `delay` seconds from now.
  void schedule_in(double delay, Callback cb);

  double now() const { return now_; }
  std::size_t pending() const { return queue_.size(); }
  bool empty() const { return queue_.empty(); }

  // Runs the earliest event; returns false when the queue is empty.
  bool step();

  // Runs events until the queue drains or `max_events` is hit.
  // Returns the number of events executed.
  std::size_t run(std::size_t max_events = SIZE_MAX);

  // Runs events with time <= horizon; now() advances to the horizon.
  std::size_t run_until(double horizon);

 private:
  struct Entry {
    double when;
    std::uint64_t seq;
    Callback cb;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

}  // namespace dsdn::sim
