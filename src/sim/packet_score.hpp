#pragma once

// Packet-level scoring of a converged network through the batched
// dataplane: samples packets from the demand matrix (weighted by rate),
// drives them through a BatchPipeline over the emulation's RCU FIB
// snapshots, and classifies the outcomes.
//
// At a quiescent point every router has recomputed on the same view, so
// the only acceptable outcomes are kDelivered and kDroppedNoIngressRoute
// (a headend can legitimately have no feasible route while the network
// is degraded). Anything else -- unknown labels, loops, packets walking
// into down links with no bypass -- is a forwarding bug or a stale FIB,
// exactly what the structural fib-walk invariant asserts can't happen;
// this is the packet-level cross-check of that claim, and of
// flow_eval's structural loss scoring.

#include <array>
#include <string>

#include "sim/emulation.hpp"

namespace dsdn::sim {

struct PacketScoreOptions {
  std::size_t packets = 2048;
  std::size_t core = 0;     // SnapshotHub slot to forward from
  std::uint64_t seed = 1;   // sampling stream (deterministic)
  int ttl = 0;              // 0 = the emulation's default budget (4n+16)
  std::size_t max_violations = 5;  // reported examples, not a scan cap
};

struct PacketScoreReport {
  std::size_t packets = 0;
  std::size_t delivered = 0;
  std::size_t no_ingress_route = 0;  // acceptable while degraded
  std::size_t hard_drops = 0;        // everything else: a violation
  // Counts by ForwardOutcome enum value.
  std::array<std::size_t, 8> by_outcome{};
  std::vector<std::string> violations;  // first few offending packets

  bool ok() const { return hard_drops == 0; }
};

// Requires emu.enable_fib_snapshots() to have been called (throws
// otherwise). Pure function of (emulation state, options).
PacketScoreReport score_packets(const DsdnEmulation& emu,
                                const PacketScoreOptions& options = {});

}  // namespace dsdn::sim
