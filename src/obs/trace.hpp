#pragma once

// Low-overhead span tracer: DSDN_TRACE_SPAN("te.waterfill") records a
// begin/end pair into a per-thread ring buffer, exportable as a
// chrome://tracing JSON ("Trace Event Format", ph:"X" complete events)
// for flame-style inspection of a solve or a convergence run.
//
// Cost model:
//  - Tracer disabled (the default): a span is one relaxed atomic load.
//  - Tracer enabled: two steady_clock reads plus one ring push under an
//    uncontended per-thread mutex (the mutex exists so export can run
//    while other threads still trace; it is never shared across
//    recording threads).
//  - Compiled out: building a TU with -DDSDN_OBS_DISABLED expands
//    DSDN_TRACE_SPAN to ((void)0) -- zero code, zero data, no tracer
//    reference. The class definitions are unchanged either way, so mixed
//    TUs link cleanly (no ODR hazard).
//
// Span names must be string literals (or otherwise outlive the tracer):
// the ring stores the pointer, not a copy.
//
// Ring wraparound: each thread's ring holds the most recent `capacity`
// spans; older ones are overwritten and counted in dropped().

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace dsdn::obs {

struct SpanEvent {
  const char* name = nullptr;
  std::uint64_t begin_ns = 0;  // steady clock, process-relative
  std::uint64_t end_ns = 0;
  std::uint32_t tid = 0;  // tracer-assigned thread index (stable per ring)
};

class Tracer {
 public:
  static Tracer& global();

  // Starts recording. Drops any previously recorded spans and applies
  // `ring_capacity` (spans kept per thread) to every thread's ring.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all recorded spans (rings stay registered).
  void clear();

  void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

  // All recorded spans, merged across threads, ordered by begin time.
  std::vector<SpanEvent> events() const;
  std::size_t total_recorded() const;  // including overwritten
  std::size_t dropped() const;         // overwritten by wraparound

  // Trace Event Format JSON ({"traceEvents":[...]}), loadable in
  // chrome://tracing or https://ui.perfetto.dev. Timestamps are
  // microseconds relative to the earliest recorded span.
  std::string chrome_trace_json() const;
  bool write_chrome_trace(const std::string& path) const;

  // Monotonic nanoseconds since the first call in this process.
  static std::uint64_t now_ns();

  static constexpr std::size_t kDefaultRingCapacity = 1 << 15;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::vector<SpanEvent> buf;  // size = capacity at registration
    std::size_t next = 0;        // wraparound write cursor
    std::uint64_t total = 0;     // spans ever pushed
    std::uint32_t tid = 0;
  };

  Ring& ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  std::atomic<std::size_t> capacity_{kDefaultRingCapacity};
  // Bumped by clear()/enable(); threads with a stale epoch re-register,
  // which is how capacity changes and clears reach thread-local rings.
  std::atomic<std::uint64_t> epoch_{1};
  mutable std::mutex rings_mu_;
  std::vector<std::shared_ptr<Ring>> rings_;  // kept alive past thread exit
  std::uint32_t next_tid_ = 0;
};

// RAII span against the global tracer. Prefer the DSDN_TRACE_SPAN macro,
// which the DSDN_OBS_DISABLED kill switch can compile away entirely.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Tracer::global().enabled()) {
      name_ = name;
      begin_ns_ = Tracer::now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_) Tracer::global().record(name_, begin_ns_, Tracer::now_ns());
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;  // null = tracer was disabled at entry
  std::uint64_t begin_ns_ = 0;
};

}  // namespace dsdn::obs

#define DSDN_OBS_CONCAT_INNER(a, b) a##b
#define DSDN_OBS_CONCAT(a, b) DSDN_OBS_CONCAT_INNER(a, b)

#if defined(DSDN_OBS_DISABLED)
// Kill switch: spans compile to nothing (valid in constexpr contexts,
// proven by tests/obs_disabled_probe.cpp).
#define DSDN_TRACE_SPAN(name) ((void)0)
#else
#define DSDN_TRACE_SPAN(name) \
  ::dsdn::obs::ScopedSpan DSDN_OBS_CONCAT(dsdn_obs_span_, __LINE__)(name)
#endif
