#pragma once

// Machine-readable run artifacts: one JSON document per benchmark run
// capturing the workload parameters, headline scalar metrics, percentile
// series from EmpiricalDistributions, and a metrics-registry snapshot.
// bench_common writes one as BENCH_<name>.json when DSDN_BENCH_JSON=<dir>
// is set, giving the repo a perf trajectory that survives the run (the
// human-readable tables do not). scripts/validate_bench_json.py checks
// emitted artifacts against scripts/bench_schema.json in tier-1.

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/distribution.hpp"
#include "obs/metrics.hpp"

namespace dsdn::obs {

// The percentile sweep every series reports (one batch query per
// distribution via EmpiricalDistribution::percentiles()).
std::span<const double> artifact_percentiles();

class RunArtifact {
 public:
  explicit RunArtifact(std::string name);

  // Workload parameters ("nodes", "demands", "scale"...).
  void param(const std::string& key, double v);
  void param(const std::string& key, std::uint64_t v);
  void param(const std::string& key, std::int64_t v);
  void param(const std::string& key, int v) {
    param(key, static_cast<std::int64_t>(v));
  }
  void param(const std::string& key, const std::string& v);
  void param(const std::string& key, bool v);

  // Headline scalars (speedups, ratios, best-of times).
  void metric(const std::string& key, double v);

  // Percentile series of a measured distribution.
  void series(const std::string& key,
              const metrics::EmpiricalDistribution& d);

  // Registry snapshot to embed (typically Registry::global().snapshot(),
  // or a diff covering just this run). Last call wins.
  void attach_registry(Snapshot snapshot);

  const std::string& name() const { return name_; }
  std::string to_json() const;

  // Writes <dir>/BENCH_<name>.json (dir must exist). Returns false on
  // I/O failure.
  bool write(const std::string& dir) const;
  std::string file_name() const { return "BENCH_" + name_ + ".json"; }

  static constexpr int kSchemaVersion = 1;

 private:
  struct ParamValue {
    enum class Kind { kDouble, kInt, kUint, kString, kBool } kind;
    double d = 0;
    std::int64_t i = 0;
    std::uint64_t u = 0;
    std::string s;
    bool b = false;
  };
  struct Series {
    std::string key;
    std::size_t n = 0;
    double mean = 0, min = 0, max = 0;
    std::vector<double> percentile_values;  // parallel to artifact_percentiles()
  };

  std::string name_;
  std::vector<std::pair<std::string, ParamValue>> params_;
  std::vector<std::pair<std::string, double>> metrics_;
  std::vector<Series> series_;
  Snapshot registry_;
};

}  // namespace dsdn::obs
