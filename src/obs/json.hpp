#pragma once

// Minimal streaming JSON writer for the observability exporters (machine
// artifacts, chrome traces, registry snapshots). Emits compact,
// deterministic output: keys in the order written, doubles via shortest
// round-trip %.17g-style formatting, non-finite doubles as null. No
// external dependency, no DOM.
//
// Correct nesting is the caller's responsibility; the writer asserts the
// basics (a value must follow a key inside an object) in debug builds
// only via its internal state -- misuse yields malformed JSON rather
// than UB.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dsdn::obs {

std::string json_escape(std::string_view s);

class JsonWriter {
 public:
  void begin_object();
  void end_object();
  void begin_array();
  void end_array();
  void key(std::string_view k);

  void value(std::string_view v);
  void value(const char* v) { value(std::string_view(v)); }
  void value(double v);
  void value(std::uint64_t v);
  void value(std::int64_t v);
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(bool v);
  void null();

  // One-shot helpers: key + value.
  template <typename T>
  void kv(std::string_view k, const T& v) {
    key(k);
    value(v);
  }

  std::string str() && { return std::move(out_); }
  const std::string& str() const& { return out_; }

 private:
  void comma_if_needed();
  void raw(std::string_view s) { out_.append(s); }

  std::string out_;
  // true = a value has already been written at this nesting level (a
  // comma is due before the next element).
  std::vector<bool> need_comma_{false};
  bool after_key_ = false;
};

}  // namespace dsdn::obs
