#include "obs/json.hpp"

#include <cmath>
#include <cstdio>

namespace dsdn::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma_if_needed() {
  if (after_key_) {
    after_key_ = false;
    return;  // value directly follows its key
  }
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
}

void JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  need_comma_.push_back(false);
}

void JsonWriter::end_object() {
  need_comma_.pop_back();
  out_ += '}';
}

void JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  need_comma_.push_back(false);
}

void JsonWriter::end_array() {
  need_comma_.pop_back();
  out_ += ']';
}

void JsonWriter::key(std::string_view k) {
  if (need_comma_.back()) out_ += ',';
  need_comma_.back() = true;
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  after_key_ = true;
}

void JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
}

void JsonWriter::value(double v) {
  comma_if_needed();
  if (!std::isfinite(v)) {
    out_ += "null";
    return;
  }
  char buf[32];
  // Shortest representation that round-trips: try increasing precision.
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    double back;
    if (std::sscanf(buf, "%lf", &back) == 1 && back == v) break;
  }
  out_ += buf;
}

void JsonWriter::value(std::uint64_t v) {
  comma_if_needed();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
}

void JsonWriter::value(std::int64_t v) {
  comma_if_needed();
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  out_ += buf;
}

void JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
}

void JsonWriter::null() {
  comma_if_needed();
  out_ += "null";
}

}  // namespace dsdn::obs
