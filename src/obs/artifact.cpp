#include "obs/artifact.hpp"

#include <cstdio>

#include "obs/export.hpp"
#include "obs/json.hpp"

namespace dsdn::obs {

std::span<const double> artifact_percentiles() {
  static const double kPs[] = {1,  2,  5,  10, 25, 50,   75,
                               90, 95, 98, 99, 99.9};
  return kPs;
}

RunArtifact::RunArtifact(std::string name) : name_(std::move(name)) {}

void RunArtifact::param(const std::string& key, double v) {
  params_.emplace_back(key, ParamValue{ParamValue::Kind::kDouble, v, 0, 0,
                                       {}, false});
}
void RunArtifact::param(const std::string& key, std::int64_t v) {
  params_.emplace_back(key,
                       ParamValue{ParamValue::Kind::kInt, 0, v, 0, {}, false});
}
void RunArtifact::param(const std::string& key, std::uint64_t v) {
  params_.emplace_back(key,
                       ParamValue{ParamValue::Kind::kUint, 0, 0, v, {}, false});
}
void RunArtifact::param(const std::string& key, const std::string& v) {
  params_.emplace_back(
      key, ParamValue{ParamValue::Kind::kString, 0, 0, 0, v, false});
}
void RunArtifact::param(const std::string& key, bool v) {
  params_.emplace_back(key,
                       ParamValue{ParamValue::Kind::kBool, 0, 0, 0, {}, v});
}

void RunArtifact::metric(const std::string& key, double v) {
  metrics_.emplace_back(key, v);
}

void RunArtifact::series(const std::string& key,
                         const metrics::EmpiricalDistribution& d) {
  Series s;
  s.key = key;
  s.n = d.size();
  if (!d.empty()) {
    s.mean = d.mean();
    s.min = d.min();
    s.max = d.max();
    s.percentile_values = d.percentiles(artifact_percentiles());
  }
  series_.push_back(std::move(s));
}

void RunArtifact::attach_registry(Snapshot snapshot) {
  registry_ = std::move(snapshot);
}

std::string RunArtifact::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.kv("name", name_);
  w.kv("schema_version", kSchemaVersion);
  w.key("params");
  w.begin_object();
  for (const auto& [key, v] : params_) {
    w.key(key);
    switch (v.kind) {
      case ParamValue::Kind::kDouble:
        w.value(v.d);
        break;
      case ParamValue::Kind::kInt:
        w.value(v.i);
        break;
      case ParamValue::Kind::kUint:
        w.value(v.u);
        break;
      case ParamValue::Kind::kString:
        w.value(v.s);
        break;
      case ParamValue::Kind::kBool:
        w.value(v.b);
        break;
    }
  }
  w.end_object();
  w.key("metrics");
  w.begin_object();
  for (const auto& [key, v] : metrics_) w.kv(key, v);
  w.end_object();
  w.key("series");
  w.begin_object();
  for (const Series& s : series_) {
    w.key(s.key);
    w.begin_object();
    w.kv("n", static_cast<std::uint64_t>(s.n));
    w.kv("mean", s.mean);
    w.kv("min", s.min);
    w.kv("max", s.max);
    w.key("percentiles");
    w.begin_object();
    const auto ps = artifact_percentiles();
    for (std::size_t i = 0; i < s.percentile_values.size(); ++i) {
      char key_buf[16];
      // p50, p99, p99.9 -- trim trailing ".0".
      std::snprintf(key_buf, sizeof(key_buf), "p%g", ps[i]);
      w.kv(key_buf, s.percentile_values[i]);
    }
    w.end_object();
    w.end_object();
  }
  w.end_object();
  // Embedded, not stringified: the artifact is one coherent document.
  w.key("registry");
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : registry_.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : registry_.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : registry_.histograms) {
    w.key(name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (const std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

bool RunArtifact::write(const std::string& dir) const {
  const std::string path = dir + "/" + file_name();
  const std::string json = to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dsdn::obs
