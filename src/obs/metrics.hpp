#pragma once

// Unified metrics registry (the observability subsystem's data plane).
//
// The paper's evaluation decomposes every headline number into per-phase
// counters -- Fig 8 splits convergence into detection/flooding/compute/
// programming, Fig 13/14 profile solver CPU scaling -- so the repo needs
// one place where hot paths can cheaply record what happened and the
// reporting layers (introspection, benches, artifacts) can read it back.
//
// Design:
//  - Named metrics with hierarchical dotted names ("te.solver.rounds",
//    "flood.retransmits", "program.retries"). Registration (name lookup)
//    takes a mutex and is done once per call site; recording through the
//    returned handle is lock-free.
//  - Hot-path recording is a relaxed atomic add on a per-thread *shard*
//    (cache-line padded, thread -> shard by a stable per-thread slot), so
//    concurrent writers do not bounce one cache line. Shards are merged
//    on read (value() / snapshot()).
//  - Snapshot / diff / reset: snapshot() captures every metric by value;
//    Snapshot::diff(earlier) subtracts counters and histogram buckets
//    (gauges keep the later value) so callers can meter one solve, one
//    convergence run, or one bench out of a shared registry.
//
// Consistency: recording uses relaxed atomics and readers do not stop
// writers, so a snapshot taken while threads are recording is a
// per-metric-approximate view. Exact totals are guaranteed once the
// writing threads have finished (joined or otherwise synchronized-with),
// which is how the benches and tests use it.
//
// There is one process-global registry (Registry::global()) used by the
// library's built-in instrumentation, and components that need
// per-instance accounting (e.g. one DsdnEmulation among many in a test
// binary) own a private Registry.

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace dsdn::obs {

// Number of per-metric shards. Threads map to shards by a stable
// per-thread slot (round-robin at first use); more threads than shards
// just share slots, which is still correct (atomics), merely contended.
inline constexpr std::size_t kShards = 16;

// Stable shard slot of the calling thread, in [0, kShards).
std::size_t this_thread_shard();

namespace detail {
struct alignas(64) PaddedU64 {
  std::atomic<std::uint64_t> v{0};
};
struct alignas(64) PaddedF64 {
  std::atomic<double> v{0.0};
};
// Relaxed add for pre-C++20-fetch_add-on-double toolchains.
inline void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Monotonic event count. add() is a relaxed fetch_add on the caller's
// shard; value() sums the shards.
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  void add(std::uint64_t n = 1) {
    shards_[this_thread_shard()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void inc() { add(1); }

  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : shards_) sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (auto& s : shards_) s.v.store(0, std::memory_order_relaxed);
  }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  detail::PaddedU64 shards_[kShards];
};

// Last-writer-wins scalar (queue depth, worker count, config knobs).
// add() is a CAS loop; gauges are not meant for per-item hot loops.
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  void add(double delta) { detail::atomic_add(value_, delta); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { set(0.0); }

  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<double> value_{0.0};
};

struct HistogramData {
  // Upper bounds of the finite buckets; counts has bounds.size() + 1
  // entries, the last being the overflow (+inf) bucket.
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;
  std::uint64_t count = 0;
  double sum = 0.0;

  bool operator==(const HistogramData&) const = default;
};

// Fixed-bucket histogram. record() finds the bucket (binary search over
// the immutable bounds) and does one relaxed fetch_add on the caller's
// shard, plus a CAS add into the shard's sum.
class Histogram {
 public:
  Histogram(std::string name, std::span<const double> upper_bounds);

  void record(double v);

  HistogramData data() const;  // shards merged
  std::uint64_t count() const { return data().count; }
  void reset();

  const std::string& name() const { return name_; }
  const std::vector<double>& bounds() const { return bounds_; }

 private:
  std::string name_;
  std::vector<double> bounds_;  // sorted, strictly increasing
  std::size_t n_cells_;         // bounds_.size() + 1
  // Shard-major bucket counts: shard s, bucket b -> cells_[s*n_cells_+b].
  std::unique_ptr<std::atomic<std::uint64_t>[]> cells_;
  detail::PaddedF64 sums_[kShards];
  detail::PaddedU64 counts_[kShards];
};

// Default histogram bounds for durations in seconds: 1us .. 100s,
// roughly 3 buckets per decade.
std::span<const double> default_time_bounds_s();

// Point-in-time capture of a registry; plain data, safe to copy, diff,
// and export after the registry (or its writers) moved on.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;

  // this - earlier, for metering an interval: counters and histogram
  // buckets subtract (clamped at 0 so a mid-interval reset() cannot
  // produce wrapped values); gauges keep this snapshot's value. Metrics
  // absent from `earlier` are kept whole.
  Snapshot diff(const Snapshot& earlier) const;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
  bool operator==(const Snapshot&) const = default;
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create by name. Handles are stable for the registry's
  // lifetime; call sites cache the reference (e.g. a function-local
  // static for the global registry). Registering the same name as two
  // different metric kinds throws std::logic_error.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  // `upper_bounds` empty = default_time_bounds_s(). The first
  // registration fixes the bounds; later calls ignore theirs.
  Histogram& histogram(std::string_view name,
                       std::span<const double> upper_bounds = {});

  Snapshot snapshot() const;
  // Zeroes every metric's value; registrations (and handles) survive.
  void reset();

  // The process-global registry used by built-in instrumentation.
  static Registry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace dsdn::obs
