#include "obs/export.hpp"

#include <algorithm>
#include <sstream>

#include "obs/json.hpp"
#include "util/format.hpp"

namespace dsdn::obs {

std::string to_json(const Snapshot& s) {
  JsonWriter w;
  w.begin_object();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : s.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : s.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : s.histograms) {
    w.key(name);
    w.begin_object();
    w.key("bounds");
    w.begin_array();
    for (const double b : h.bounds) w.value(b);
    w.end_array();
    w.key("counts");
    w.begin_array();
    for (const std::uint64_t c : h.counts) w.value(c);
    w.end_array();
    w.kv("count", h.count);
    w.kv("sum", h.sum);
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return std::move(w).str();
}

double histogram_quantile(const HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(h.count);
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < h.counts.size(); ++b) {
    const std::uint64_t in_bucket = h.counts[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(seen + in_bucket) >= target) {
      const double lo = b == 0 ? 0.0 : h.bounds[b - 1];
      if (b >= h.bounds.size()) return lo;  // overflow bucket: lower bound
      const double hi = h.bounds[b];
      const double frac =
          (target - static_cast<double>(seen)) / static_cast<double>(in_bucket);
      return lo + (hi - lo) * std::clamp(frac, 0.0, 1.0);
    }
    seen += in_bucket;
  }
  return h.bounds.empty() ? 0.0 : h.bounds.back();
}

std::string to_text(const Snapshot& s) {
  std::ostringstream os;
  std::size_t width = 0;
  for (const auto& [name, v] : s.counters) width = std::max(width, name.size());
  for (const auto& [name, v] : s.gauges) width = std::max(width, name.size());
  for (const auto& [name, h] : s.histograms)
    width = std::max(width, name.size());
  for (const auto& [name, v] : s.counters) {
    os << util::pad_right(name, width) << "  " << v << "\n";
  }
  for (const auto& [name, v] : s.gauges) {
    os << util::pad_right(name, width) << "  " << util::format_double(v, 3)
       << "\n";
  }
  for (const auto& [name, h] : s.histograms) {
    os << util::pad_right(name, width) << "  n=" << h.count;
    if (h.count > 0) {
      os << " mean=" << util::format_double(h.sum / h.count, 6)
         << " ~p50=" << util::format_double(histogram_quantile(h, 0.50), 6)
         << " ~p90=" << util::format_double(histogram_quantile(h, 0.90), 6)
         << " ~p99=" << util::format_double(histogram_quantile(h, 0.99), 6);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace dsdn::obs
