#pragma once

// Snapshot exporters: JSON for machines (run artifacts, the tier-1
// schema check), plaintext for operators ("show dsdn metrics"). Both
// render the identical Snapshot, so every reporting surface reads from
// one source of truth.

#include <string>

#include "obs/metrics.hpp"

namespace dsdn::obs {

// {"counters":{...},"gauges":{...},"histograms":{name:{"bounds":[...],
// "counts":[...],"count":N,"sum":S}}}. Keys sorted (std::map order),
// output deterministic for golden tests.
std::string to_json(const Snapshot& snapshot);

// Aligned "name value" lines grouped by kind; histograms render count,
// mean, and an approximate p50/p90/p99 interpolated within buckets.
std::string to_text(const Snapshot& snapshot);

// Approximate quantile (q in [0,1]) from histogram buckets: linear
// interpolation inside the containing bucket; the overflow bucket
// reports its lower bound. Returns 0 for an empty histogram.
double histogram_quantile(const HistogramData& h, double q);

}  // namespace dsdn::obs
