#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace dsdn::obs {

std::size_t this_thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

// ---- Histogram ----

Histogram::Histogram(std::string name, std::span<const double> upper_bounds)
    : name_(std::move(name)),
      bounds_(upper_bounds.begin(), upper_bounds.end()) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end()) {
    throw std::invalid_argument("Histogram '" + name_ +
                                "': bounds must be strictly increasing");
  }
  n_cells_ = bounds_.size() + 1;
  cells_ = std::make_unique<std::atomic<std::uint64_t>[]>(kShards * n_cells_);
  for (std::size_t i = 0; i < kShards * n_cells_; ++i) cells_[i] = 0;
}

void Histogram::record(double v) {
  // Inclusive upper bounds (Prometheus "le"): v == bounds[b] lands in b.
  const std::size_t bucket = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  const std::size_t shard = this_thread_shard();
  cells_[shard * n_cells_ + bucket].fetch_add(1, std::memory_order_relaxed);
  counts_[shard].v.fetch_add(1, std::memory_order_relaxed);
  detail::atomic_add(sums_[shard].v, v);
}

HistogramData Histogram::data() const {
  HistogramData d;
  d.bounds = bounds_;
  d.counts.assign(n_cells_, 0);
  for (std::size_t s = 0; s < kShards; ++s) {
    for (std::size_t b = 0; b < n_cells_; ++b) {
      d.counts[b] += cells_[s * n_cells_ + b].load(std::memory_order_relaxed);
    }
    d.count += counts_[s].v.load(std::memory_order_relaxed);
    d.sum += sums_[s].v.load(std::memory_order_relaxed);
  }
  return d;
}

void Histogram::reset() {
  for (std::size_t i = 0; i < kShards * n_cells_; ++i) {
    cells_[i].store(0, std::memory_order_relaxed);
  }
  for (std::size_t s = 0; s < kShards; ++s) {
    counts_[s].v.store(0, std::memory_order_relaxed);
    sums_[s].v.store(0.0, std::memory_order_relaxed);
  }
}

std::span<const double> default_time_bounds_s() {
  static const double kBounds[] = {
      1e-6, 2e-6, 5e-6, 1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3,
      5e-3, 1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0,
      20.0, 50.0, 100.0};
  return kBounds;
}

// ---- Snapshot ----

Snapshot Snapshot::diff(const Snapshot& earlier) const {
  Snapshot out = *this;
  for (auto& [name, v] : out.counters) {
    const auto it = earlier.counters.find(name);
    if (it != earlier.counters.end()) v = v >= it->second ? v - it->second : 0;
  }
  for (auto& [name, h] : out.histograms) {
    const auto it = earlier.histograms.find(name);
    if (it == earlier.histograms.end()) continue;
    const HistogramData& e = it->second;
    if (e.bounds != h.bounds) continue;  // re-registered differently: keep whole
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      h.counts[b] = h.counts[b] >= e.counts[b] ? h.counts[b] - e.counts[b] : 0;
    }
    h.count = h.count >= e.count ? h.count - e.count : 0;
    h.sum -= e.sum;
  }
  return out;
}

// ---- Registry ----

Counter& Registry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (gauges_.count(name) || histograms_.count(name)) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name),
                      std::make_unique<Counter>(std::string(name)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lk(mu_);
  if (counters_.count(name) || histograms_.count(name)) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name),
                      std::make_unique<Gauge>(std::string(name)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name,
                               std::span<const double> upper_bounds) {
  std::lock_guard<std::mutex> lk(mu_);
  if (counters_.count(name) || gauges_.count(name)) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' already registered as a different kind");
  }
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    const std::span<const double> bounds =
        upper_bounds.empty() ? default_time_bounds_s() : upper_bounds;
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::string(name), bounds))
             .first;
  }
  return *it->second;
}

Snapshot Registry::snapshot() const {
  std::lock_guard<std::mutex> lk(mu_);
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, g] : gauges_) s.gauges[name] = g->value();
  for (const auto& [name, h] : histograms_) s.histograms[name] = h->data();
  return s;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

Registry& Registry::global() {
  static Registry* r = new Registry();  // never destroyed: instrumentation
  return *r;                            // may outlive static teardown order
}

}  // namespace dsdn::obs
