#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "obs/json.hpp"

namespace dsdn::obs {

Tracer& Tracer::global() {
  static Tracer* t = new Tracer();  // never destroyed (see Registry::global)
  return *t;
}

std::uint64_t Tracer::now_ns() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point t0 = Clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - t0)
          .count());
}

void Tracer::enable(std::size_t ring_capacity) {
  capacity_.store(ring_capacity == 0 ? 1 : ring_capacity,
                  std::memory_order_relaxed);
  clear();
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::clear() {
  std::lock_guard<std::mutex> lk(rings_mu_);
  rings_.clear();
  epoch_.fetch_add(1, std::memory_order_relaxed);
}

Tracer::Ring& Tracer::ring_for_this_thread() {
  struct Tls {
    Tracer* owner = nullptr;
    std::uint64_t epoch = 0;
    std::shared_ptr<Ring> ring;
  };
  thread_local Tls tls;
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  if (tls.owner != this || tls.epoch != epoch) {
    auto ring = std::make_shared<Ring>();
    ring->buf.resize(capacity_.load(std::memory_order_relaxed));
    {
      std::lock_guard<std::mutex> lk(rings_mu_);
      ring->tid = next_tid_++;
      rings_.push_back(ring);
    }
    tls = {this, epoch, std::move(ring)};
  }
  return *tls.ring;
}

void Tracer::record(const char* name, std::uint64_t begin_ns,
                    std::uint64_t end_ns) {
  Ring& ring = ring_for_this_thread();
  std::lock_guard<std::mutex> lk(ring.mu);
  ring.buf[ring.next] = SpanEvent{name, begin_ns, end_ns, ring.tid};
  ring.next = (ring.next + 1) % ring.buf.size();
  ++ring.total;
}

std::vector<SpanEvent> Tracer::events() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lk(rings_mu_);
    rings = rings_;
  }
  std::vector<SpanEvent> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lk(ring->mu);
    const std::size_t kept =
        std::min<std::uint64_t>(ring->total, ring->buf.size());
    // Oldest kept span sits at `next` once the ring has wrapped.
    const std::size_t start = ring->total > ring->buf.size() ? ring->next : 0;
    for (std::size_t i = 0; i < kept; ++i) {
      out.push_back(ring->buf[(start + i) % ring->buf.size()]);
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              // Equal begins: parents (larger spans) first, so nesting
              // renders stably in trace viewers.
              if (a.begin_ns != b.begin_ns) return a.begin_ns < b.begin_ns;
              return a.end_ns > b.end_ns;
            });
  return out;
}

std::size_t Tracer::total_recorded() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::size_t total = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    total += ring->total;
  }
  return total;
}

std::size_t Tracer::dropped() const {
  std::lock_guard<std::mutex> lk(rings_mu_);
  std::size_t dropped = 0;
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    if (ring->total > ring->buf.size()) dropped += ring->total - ring->buf.size();
  }
  return dropped;
}

std::string Tracer::chrome_trace_json() const {
  const std::vector<SpanEvent> evs = events();
  std::uint64_t t0 = evs.empty() ? 0 : evs.front().begin_ns;
  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit");
  w.value("ms");
  w.key("traceEvents");
  w.begin_array();
  for (const SpanEvent& e : evs) {
    w.begin_object();
    w.key("name");
    w.value(e.name);
    w.key("ph");
    w.value("X");
    w.key("ts");
    w.value(static_cast<double>(e.begin_ns - t0) / 1e3);
    w.key("dur");
    w.value(static_cast<double>(e.end_ns - e.begin_ns) / 1e3);
    w.key("pid");
    w.value(std::uint64_t{1});
    w.key("tid");
    w.value(std::uint64_t{e.tid});
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return std::move(w).str();
}

bool Tracer::write_chrome_trace(const std::string& path) const {
  const std::string json = chrome_trace_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace dsdn::obs
