#pragma once

// Seeded churn scenarios for the hierarchical plane runtime, mirroring
// sim/scenario.hpp one level up: events target *planes* rather than one
// flat network -- plane-local fiber cuts/repairs (the containment case),
// cross-plane SRLG conduit cuts (all planes share the physical conduit),
// and plane crash/restore with HRW rebalancing.
//
// After every applied event the harness asserts, per live plane, the full
// sim::check_invariants suite, plus the cross-plane properties no single
// plane can see:
//   - demand conservation: total flows and total rate across live planes
//     equal the base workload (nothing lost or duplicated by rebalancing);
//   - placement agreement: every demand row sits on the plane its flow
//     key HRW-hashes to under the current live set (packets follow the
//     same hash, so agreement here is packet/demand plane agreement);
//   - blast radius: a plane crash exposes < 1/alive + slack of flows.
//
// Pure function of (base topology, base matrix, options, seed): identical
// seeds replay bit-identically (asserted via fingerprints in tests).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "hier/plane_runtime.hpp"
#include "sim/invariants.hpp"

namespace dsdn::hier {

enum class PlaneEventKind {
  kPlaneLocalCut,     // one plane's parallel fiber only
  kPlaneLocalRepair,
  kCrossPlaneSrlg,    // conduit cut: the fiber fails in every live plane
  kPlaneCrash,        // kill a plane, rebalance its flows onto survivors
  kPlaneRestore,      // revive it, HRW moves exactly its flows back
};

const char* plane_event_name(PlaneEventKind kind);

struct PlaneScenarioOptions {
  std::size_t planes = 4;
  std::size_t n_events = 10;
  // Relative draw weights; kinds with no applicable target drop out.
  double w_cut = 3.0;
  double w_repair = 2.0;
  double w_srlg = 1.5;
  double w_crash = 1.5;
  double w_restore = 2.0;
  // Allowed overshoot of the 1/alive blast-radius bound (hash variance
  // on small workloads).
  double exposure_slack = 0.05;
  sim::EmulationConfig emulation;
  sim::InvariantOptions invariants;
  // RCU snapshot cores per plane; > 0 enables rebalance packet scoring.
  std::size_t fib_cores = 1;
  std::size_t score_packets = 256;
  // Score packets on every live plane after every event too (slower).
  bool packet_scoring = false;
  // Threads for concurrent plane bootstrap/reprogram (0 = planes).
  std::size_t n_threads = 0;
};

struct PlaneScenarioResult {
  std::vector<std::string> violations;
  std::vector<std::string> events;  // applied, human-readable
  std::size_t events_applied = 0;
  std::size_t events_skipped = 0;  // no applicable target / guard refused
  std::size_t invariant_checks = 0;
  std::size_t packets_scored = 0;
  std::size_t rebalances = 0;
  double max_exposed_fraction = 0.0;

  bool ok() const { return violations.empty(); }
  // Order-sensitive hash over events and outcomes: equal seeds must
  // produce equal fingerprints.
  std::uint64_t fingerprint() const;
};

// Builds a PlaneRuntime from (base, tm), bootstraps it, and drives
// `options.n_events` seeded events through it with the checker battery
// after each. Stops at the first violation.
PlaneScenarioResult run_plane_scenario(const topo::Topology& base,
                                       const traffic::TrafficMatrix& tm,
                                       const PlaneScenarioOptions& options,
                                       std::uint64_t seed);

struct PlaneSwarmFailure {
  std::uint64_t seed = 0;
  PlaneScenarioResult result;
};

// Runs seeds [first_seed, first_seed + n_seeds); returns the first
// failing seed's result, or nullopt when every seed passed.
std::optional<PlaneSwarmFailure> run_plane_swarm(
    const topo::Topology& base, const traffic::TrafficMatrix& tm,
    const PlaneScenarioOptions& options, std::uint64_t first_seed,
    std::size_t n_seeds);

}  // namespace dsdn::hier
